// Differential suite for the guest-execution fast path.
//
// Every workload here runs twice -- once with the fast path (micro-TLB +
// decoded-instruction cache + batched cycle accounting) and once with
// --fastpath=off (every access through the virtual GuestBus, charged
// immediately) -- and ALL simulated state must be bit-identical: CPU clocks,
// machine time, TLB hit/miss counters, kernel statistics, fault and signal
// counts, and final guest register state. This is the cycle-exactness
// invariant of docs/PERFORMANCE.md, enforced.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "src/isa/assembler.h"
#include "src/unixemu/unix_emulator.h"
#include "tests/test_harness.h"

namespace {

using ckbase::CkStatus;
using cktest::TestWorld;
using cktest::WorldOptions;

ckisa::Program MustAssemble(const char* source, uint32_t base) {
  ckisa::AssembleResult result = ckisa::Assemble(source, base);
  EXPECT_TRUE(result.ok) << result.error;
  return result.program;
}

// Everything a run is judged by: named simulated-state observables, in a
// deterministic order so two runs can be compared entry by entry.
struct Snapshot {
  std::vector<std::pair<std::string, uint64_t>> values;

  void Add(const std::string& name, uint64_t value) { values.emplace_back(name, value); }
};

void CaptureMachineState(Snapshot& s, TestWorld& world) {
  s.Add("machine.now", world.machine().Now());
  for (uint32_t c = 0; c < world.machine().cpu_count(); ++c) {
    cksim::Cpu& cpu = world.machine().cpu(c);
    std::string prefix = "cpu" + std::to_string(c) + ".";
    s.Add(prefix + "clock", cpu.clock());
    s.Add(prefix + "busy", cpu.busy_cycles);
    s.Add(prefix + "tlb_hits", cpu.mmu().tlb().hits());
    s.Add(prefix + "tlb_misses", cpu.mmu().tlb().misses());
  }
  const ck::CkStats& st = world.ck().stats();
  s.Add("ck.faults_forwarded", st.faults_forwarded);
  s.Add("ck.traps_forwarded", st.traps_forwarded);
  s.Add("ck.consistency_faults", st.consistency_faults);
  s.Add("ck.guest_instructions", st.guest_instructions);
  s.Add("ck.context_switches", st.context_switches);
  s.Add("ck.preemptions", st.preemptions);
  s.Add("ck.idle_turns", st.idle_turns);
  s.Add("ck.quota_degradations", st.quota_degradations);
  s.Add("ck.signals_fast", st.signals_delivered_fast);
  s.Add("ck.signals_slow", st.signals_delivered_slow);
  s.Add("ck.signals_queued", st.signals_queued);
  s.Add("ck.signals_dropped", st.signals_dropped);
  s.Add("ck.load_failures", st.load_failures);
  for (uint32_t t = 0; t < ck::kObjectTypeCount; ++t) {
    s.Add("ck.loads." + std::to_string(t), st.loads[t]);
    s.Add("ck.writebacks." + std::to_string(t), st.writebacks[t]);
  }
  s.Add("ck.invariant_violations", world.ck().ValidateInvariants().size());
}

void CaptureRegs(Snapshot& s, const ckapp::ThreadRec& rec, const std::string& prefix) {
  for (int r = 0; r < 32; ++r) {
    s.Add(prefix + ".r" + std::to_string(r), rec.saved.regs[r]);
  }
  s.Add(prefix + ".pc", rec.saved.pc);
}

// Assert two runs observed exactly the same simulated history.
void ExpectIdentical(const Snapshot& fast, const Snapshot& slow) {
  ASSERT_EQ(fast.values.size(), slow.values.size());
  for (size_t i = 0; i < fast.values.size(); ++i) {
    ASSERT_EQ(fast.values[i].first, slow.values[i].first) << "snapshot shape differs";
    EXPECT_EQ(fast.values[i].second, slow.values[i].second)
        << "fast/slow divergence at " << fast.values[i].first;
  }
}

WorldOptions Options(bool fastpath) {
  WorldOptions options;
  options.ck.fastpath = fastpath;
  return options;
}

// Plain app kernel that answers trap 16 with 123 and terminates on others.
class TrapAppKernel : public ckapp::AppKernelBase {
 public:
  TrapAppKernel() : ckapp::AppKernelBase("fp-app", 512) {}

  ck::TrapAction HandleTrap(const ck::TrapForward& trap, ck::CkApi& api) override {
    (void)api;
    ck::TrapAction action;
    if (trap.number == 16) {
      action.has_return_value = true;
      action.return_value = 123;
    } else {
      action.action = ck::HandlerAction::kTerminate;
    }
    return action;
  }
};

// ---------------------------------------------------------------------------
// Workload 1: demand paging + arithmetic + trap forwarding.
// ---------------------------------------------------------------------------

Snapshot RunDemandPaging(bool fastpath) {
  TestWorld world(Options(fastpath));
  TrapAppKernel app;
  world.Launch(app);
  ck::CkApi api(world.ck(), app.self(), world.machine().cpu(0));

  uint32_t space = app.CreateSpace(api);
  ckisa::Program program = MustAssemble(R"(
      addi t0, r0, 0
      addi t1, r0, 1
      li   t2, 2000
      li   t3, 0x00f00000
    loop:
      add  t0, t0, t1
      addi t1, t1, 1
      sw   t0, 0(t3)
      lw   t4, 0(t3)
      bge  t2, t1, loop
      mv   s0, t4
      trap 16
      mv   s1, a0
      halt
  )", 0x10000);
  app.LoadProgramImage(space, program, /*writable=*/false);
  app.DefineZeroRegion(space, 0x00f00000, 8, /*writable=*/true);

  ckapp::GuestThreadParams params;
  params.space_index = space;
  params.entry = 0x10000;
  uint32_t thread = app.CreateGuestThread(api, params);
  EXPECT_TRUE(world.RunUntil([&] { return app.thread(thread).finished; }, 2000000));

  Snapshot s;
  CaptureMachineState(s, world);
  CaptureRegs(s, app.thread(thread), "t0");
  return s;
}

TEST(FastPathDifferential, DemandPagingAndTraps) {
  ExpectIdentical(RunDemandPaging(true), RunDemandPaging(false));
}

// ---------------------------------------------------------------------------
// Workload 2: fault storm -- a tiny frame grant forces continuous eviction,
// page-out and re-fault while the guest dirties 200 pages.
// ---------------------------------------------------------------------------

Snapshot RunFaultStorm(bool fastpath) {
  TestWorld world(Options(fastpath));
  TrapAppKernel app;
  cksrm::LaunchParams launch;
  launch.page_groups = 1;  // 128 frames for 200 dirty pages
  EXPECT_TRUE(world.srm().Launch(app, launch).ok());
  ck::CkApi api(world.ck(), app.self(), world.machine().cpu(0));

  uint32_t space = app.CreateSpace(api);
  ckisa::Program program = MustAssemble(R"(
      li   t0, 0x00400000
      addi t1, r0, 200
      li   t3, 4096
    loop:
      sw   t1, 0(t0)
      lw   t4, 0(t0)
      add  t0, t0, t3
      addi t1, t1, -1
      bne  t1, r0, loop
      mv   s0, t4
      halt
  )", 0x10000);
  app.LoadProgramImage(space, program, /*writable=*/false);
  app.DefineZeroRegion(space, 0x00400000, 256, /*writable=*/true);

  ckapp::GuestThreadParams params;
  params.space_index = space;
  params.entry = 0x10000;
  uint32_t thread = app.CreateGuestThread(api, params);
  EXPECT_TRUE(world.RunUntil([&] { return app.thread(thread).finished; }, 3000000));
  EXPECT_GE(app.paging_stats().evictions, 50u);

  Snapshot s;
  CaptureMachineState(s, world);
  CaptureRegs(s, app.thread(thread), "t0");
  s.Add("paging.faults", app.paging_stats().faults);
  s.Add("paging.evictions", app.paging_stats().evictions);
  s.Add("paging.pages_out", app.paging_stats().pages_out);
  return s;
}

TEST(FastPathDifferential, FaultStorm) {
  ExpectIdentical(RunFaultStorm(true), RunFaultStorm(false));
}

// ---------------------------------------------------------------------------
// Workload 3: guest-to-guest memory-based messaging -- sender writes and
// signals, receiver takes the signal in a handler and signal-returns.
// ---------------------------------------------------------------------------

Snapshot RunMessaging(bool fastpath) {
  TestWorld world(Options(fastpath));
  TrapAppKernel app;
  world.Launch(app);
  ck::CkApi api(world.ck(), app.self(), world.machine().cpu(0));

  uint32_t space = app.CreateSpace(api);
  cksim::PhysAddr frame = app.frames().Allocate();
  EXPECT_NE(frame, 0u);

  // Receiver: awaits a signal, handler records the address, then halts.
  ckisa::Program receiver_prog = MustAssemble(R"(
      li   t0, 0x00a00000
    wait:
      trap 3
      lw   t1, 0(t0)
      beq  t1, r0, wait
      mv   s0, t1
      halt
    handler:
      li   t2, 0x00a00000
      sw   a0, 0(t2)
      trap 1
  )", 0x10000);
  app.LoadProgramImage(space, receiver_prog, /*writable=*/false);
  app.DefineZeroRegion(space, 0x00a00000, 1, /*writable=*/true);
  app.DefineFrameRegion(space, 0x00900000, 1, frame, /*writable=*/false, /*message=*/true,
                        ckapp::kNoThread);

  ckapp::GuestThreadParams rparams;
  rparams.space_index = space;
  rparams.entry = 0x10000;
  rparams.signal_handler = receiver_prog.labels.at("handler");
  uint32_t receiver = app.CreateGuestThread(api, rparams);
  app.space(space).FindPage(0x00900000)->signal_thread = receiver;
  EXPECT_EQ(app.EnsureMappingLoaded(api, space, 0x00900000), CkStatus::kOk);

  // Sender view of the same frame, writable + message mode.
  app.DefineFrameRegion(space, 0x00800000, 1, frame, /*writable=*/true, /*message=*/true);

  // Let the receiver reach its await before the sender starts.
  EXPECT_TRUE(world.RunUntil([&] {
    ckbase::Result<ck::ThreadState> state = world.ck().GetThreadState(app.thread(receiver).ck_id);
    return state.ok() && state.value() == ck::ThreadState::kBlocked;
  }, 500000));

  // Sender: write the payload into the message page, then signal it.
  ckisa::Program sender_prog = MustAssemble(R"(
      li   t0, 0x00800000
      li   t1, 0xc0ffee
      sw   t1, 32(t0)
      addi a0, t0, 32
      trap 2
      halt
  )", 0x20000);
  app.LoadProgramImage(space, sender_prog, /*writable=*/false);
  ckapp::GuestThreadParams sparams;
  sparams.space_index = space;
  sparams.entry = 0x20000;
  uint32_t sender = app.CreateGuestThread(api, sparams);

  EXPECT_TRUE(world.RunUntil(
      [&] { return app.thread(sender).finished && app.thread(receiver).finished; }, 1000000));

  Snapshot s;
  CaptureMachineState(s, world);
  CaptureRegs(s, app.thread(receiver), "recv");
  CaptureRegs(s, app.thread(sender), "send");
  return s;
}

TEST(FastPathDifferential, GuestMessaging) {
  ExpectIdentical(RunMessaging(true), RunMessaging(false));
}

// ---------------------------------------------------------------------------
// Workload 4: the UNIX emulator -- exec, syscalls, exit, with the emulator's
// own scheduler threads running alongside.
// ---------------------------------------------------------------------------

Snapshot RunUnixEmu(bool fastpath) {
  TestWorld world(Options(fastpath));
  ckunix::UnixEmulator emulator(world.ck(), ckunix::UnixConfig());
  cksrm::LaunchParams launch;
  launch.page_groups = 8;
  launch.max_priority = 31;
  launch.locked_kernel_object = true;
  EXPECT_TRUE(world.srm().Launch(emulator, launch).ok());
  ck::CkApi api(world.ck(), emulator.self(), world.machine().cpu(0));
  emulator.Start(api);

  ckisa::Program program = MustAssemble(R"(
      trap 16         ; getpid
      mv   s0, a0
      addi t0, r0, 0
      li   t1, 500
    loop:
      addi t0, t0, 1
      bne  t0, t1, loop
      mv   s1, t0
      addi a0, r0, 0
      trap 17         ; exit(0)
  )", 0x10000);
  int pid1 = emulator.Exec(api, program);
  int pid2 = emulator.Exec(api, program);
  EXPECT_TRUE(world.RunUntil(
      [&] {
        return emulator.process(pid1).state == ckunix::Process::State::kZombie &&
               emulator.process(pid2).state == ckunix::Process::State::kZombie;
      },
      5000000));

  Snapshot s;
  CaptureMachineState(s, world);
  CaptureRegs(s, emulator.thread(emulator.process(pid1).thread_index), "p1");
  CaptureRegs(s, emulator.thread(emulator.process(pid2).thread_index), "p2");
  return s;
}

TEST(FastPathDifferential, UnixEmulator) {
  ExpectIdentical(RunUnixEmu(true), RunUnixEmu(false));
}

// ---------------------------------------------------------------------------
// Workload 5: self-modifying code. The guest patches an instruction in its
// own (writable) text page and re-executes it; the decoded-instruction cache
// must observe the store (frame generation bump) and re-decode.
// ---------------------------------------------------------------------------

Snapshot RunSelfModifying(bool fastpath, uint32_t* s0_out, uint32_t* s1_out) {
  TestWorld world(Options(fastpath));
  TrapAppKernel app;
  world.Launch(app);
  ck::CkApi api(world.ck(), app.self(), world.machine().cpu(0));

  uint32_t space = app.CreateSpace(api);
  // The word for `addi s0, r0, 99`, patched over the `addi s0, r0, 1` at
  // label `patch` after that instruction has already executed once.
  uint32_t patched = ckisa::Encode(ckisa::Op::kAddi, ckisa::kRegS0, ckisa::kRegZero, 99);
  char source[1024];
  std::snprintf(source, sizeof(source), R"(
      ; first pass: run the subroutine as assembled (s0 = 1)
      call sub
      mv   s1, s0
      ; patch: overwrite the addi at `patch` with "addi s0, r0, 99"
      li   t0, 0x%08x
      la   t1, patch
      sw   t0, 0(t1)
      ; second pass: the patched instruction must execute
      call sub
      halt
    sub:
    patch:
      addi s0, r0, 1
      ret
  )", patched);
  ckisa::Program program = MustAssemble(source, 0x10000);
  app.LoadProgramImage(space, program, /*writable=*/true);
  app.DefineZeroRegion(space, 0x00f00000, 2, /*writable=*/true);

  ckapp::GuestThreadParams params;
  params.space_index = space;
  params.entry = 0x10000;
  params.stack_top = 0x00f02000 - 16;
  uint32_t thread = app.CreateGuestThread(api, params);
  EXPECT_TRUE(world.RunUntil([&] { return app.thread(thread).finished; }, 1000000));

  if (s0_out != nullptr) {
    *s0_out = app.thread(thread).saved.regs[ckisa::kRegS0];
  }
  if (s1_out != nullptr) {
    *s1_out = app.thread(thread).saved.regs[ckisa::kRegS0 + 1];
  }
  Snapshot s;
  CaptureMachineState(s, world);
  CaptureRegs(s, app.thread(thread), "t0");
  return s;
}

TEST(FastPathDifferential, SelfModifyingCode) {
  uint32_t fast_s0 = 0, fast_s1 = 0, slow_s0 = 0, slow_s1 = 0;
  Snapshot fast = RunSelfModifying(true, &fast_s0, &fast_s1);
  Snapshot slow = RunSelfModifying(false, &slow_s0, &slow_s1);
  // Semantics first: the pre-patch pass saw the original instruction, the
  // post-patch pass the new one -- in BOTH modes.
  EXPECT_EQ(fast_s1, 1u);
  EXPECT_EQ(fast_s0, 99u) << "fast path executed stale decoded instructions";
  EXPECT_EQ(slow_s1, 1u);
  EXPECT_EQ(slow_s0, 99u);
  ExpectIdentical(fast, slow);
}

// ---------------------------------------------------------------------------
// Workload 6: remapping a virtual page to a different frame mid-run. After
// UnloadMapping the TLB entry is flushed; the micro-TLB hint must die with it
// and the re-fault must fetch (and decode) from the NEW frame.
// ---------------------------------------------------------------------------

// App kernel whose trap 18 rebinds vaddr 0x00500000 to a second frame.
class RemapAppKernel : public ckapp::AppKernelBase {
 public:
  RemapAppKernel() : ckapp::AppKernelBase("fp-remap", 512) {}

  ck::TrapAction HandleTrap(const ck::TrapForward& trap, ck::CkApi& api) override {
    ck::TrapAction action;
    if (trap.number == 18) {
      EXPECT_EQ(api.UnloadMapping(space(space_index).ck_id, 0x00500000), CkStatus::kOk);
      ckapp::PageRecord* page = space(space_index).FindPage(0x00500000);
      EXPECT_NE(page, nullptr);
      page->fixed_frame = frame_b;
      page->frame = frame_b;
      remaps++;
    } else {
      action.action = ck::HandlerAction::kTerminate;
    }
    return action;
  }

  uint32_t space_index = 0;
  cksim::PhysAddr frame_b = 0;
  int remaps = 0;
};

Snapshot RunRemap(bool fastpath, uint32_t* s1_out, uint32_t* s2_out) {
  TestWorld world(Options(fastpath));
  RemapAppKernel app;
  world.Launch(app);
  ck::CkApi api(world.ck(), app.self(), world.machine().cpu(0));

  uint32_t space = app.CreateSpace(api);
  app.space_index = space;

  // Two frames holding two versions of the subroutine at vaddr 0x00500000.
  cksim::PhysAddr frame_a = app.frames().Allocate();
  cksim::PhysAddr frame_b = app.frames().Allocate();
  EXPECT_NE(frame_a, 0u);
  EXPECT_NE(frame_b, 0u);
  app.frame_b = frame_b;

  ckisa::Program sub_a = MustAssemble(R"(
      addi s0, r0, 11
      ret
  )", 0x00500000);
  ckisa::Program sub_b = MustAssemble(R"(
      addi s0, r0, 22
      ret
  )", 0x00500000);
  EXPECT_EQ(api.WritePhys(frame_a, sub_a.words.data(), sub_a.SizeBytes()), CkStatus::kOk);
  EXPECT_EQ(api.WritePhys(frame_b, sub_b.words.data(), sub_b.SizeBytes()), CkStatus::kOk);
  app.DefineFrameRegion(space, 0x00500000, 1, frame_a, /*writable=*/false, /*message=*/false);

  ckisa::Program main_prog = MustAssemble(R"(
      ; first call runs frame A's code, then trap 18 rebinds to frame B
      li   t5, 0x00500000
      jalr ra, t5
      mv   s1, s0
      trap 18
      jalr ra, t5
      mv   s2, s0
      halt
  )", 0x10000);
  app.LoadProgramImage(space, main_prog, /*writable=*/false);
  app.DefineZeroRegion(space, 0x00f00000, 2, /*writable=*/true);

  ckapp::GuestThreadParams params;
  params.space_index = space;
  params.entry = 0x10000;
  params.stack_top = 0x00f02000 - 16;
  uint32_t thread = app.CreateGuestThread(api, params);
  EXPECT_TRUE(world.RunUntil([&] { return app.thread(thread).finished; }, 1000000));
  EXPECT_EQ(app.remaps, 1);

  if (s1_out != nullptr) {
    *s1_out = app.thread(thread).saved.regs[ckisa::kRegS0 + 1];
  }
  if (s2_out != nullptr) {
    *s2_out = app.thread(thread).saved.regs[ckisa::kRegS0 + 2];
  }
  Snapshot s;
  CaptureMachineState(s, world);
  CaptureRegs(s, app.thread(thread), "t0");
  return s;
}

TEST(FastPathDifferential, RemapAfterUnloadMapping) {
  uint32_t fast_s1 = 0, fast_s2 = 0, slow_s1 = 0, slow_s2 = 0;
  Snapshot fast = RunRemap(true, &fast_s1, &fast_s2);
  Snapshot slow = RunRemap(false, &slow_s1, &slow_s2);
  EXPECT_EQ(fast_s1, 11u);
  EXPECT_EQ(fast_s2, 22u) << "fast path kept executing the unmapped frame";
  EXPECT_EQ(slow_s1, 11u);
  EXPECT_EQ(slow_s2, 22u);
  ExpectIdentical(fast, slow);
}

// ---------------------------------------------------------------------------
// Consistency faults: marking a frame remote mid-run must fault identically.
// ---------------------------------------------------------------------------

Snapshot RunRemoteFrame(bool fastpath) {
  TestWorld world(Options(fastpath));
  TrapAppKernel app;
  world.Launch(app);
  ck::CkApi api(world.ck(), app.self(), world.machine().cpu(0));

  uint32_t space = app.CreateSpace(api);
  ckisa::Program program = MustAssemble(R"(
      li   t0, 0x00700000
      li   t2, 2000
    loop:
      lw   t1, 0(t0)
      addi t2, t2, -1
      bne  t2, r0, loop
      halt
  )", 0x10000);
  app.LoadProgramImage(space, program, /*writable=*/false);
  app.DefineZeroRegion(space, 0x00700000, 1, /*writable=*/true);

  ckapp::GuestThreadParams params;
  params.space_index = space;
  params.entry = 0x10000;
  uint32_t thread = app.CreateGuestThread(api, params);

  // Let the loop run hot (the micro-TLB is certainly populated), then mark
  // the data frame remote: the NEXT load must raise a consistency fault even
  // though the hint is still valid.
  bool marked = false;
  EXPECT_TRUE(world.RunUntil(
      [&] {
        if (!marked) {
          ckapp::PageRecord* page = app.space(space).FindPage(0x00700000);
          if (page != nullptr && page->where == ckapp::PageRecord::Where::kResident &&
              world.ck().stats().guest_instructions > 500) {
            world.ck().MarkFrameRemote(page->frame >> cksim::kPageShift, true);
            marked = true;
          }
        }
        return app.thread(thread).finished;
      },
      2000000));
  EXPECT_TRUE(marked);
  EXPECT_GE(world.ck().stats().consistency_faults, 1u);

  Snapshot s;
  CaptureMachineState(s, world);
  return s;
}

TEST(FastPathDifferential, RemoteFrameConsistencyFault) {
  ExpectIdentical(RunRemoteFrame(true), RunRemoteFrame(false));
}

// ---------------------------------------------------------------------------
// Superblock traces: self-modifying code INSIDE a cached superblock. The hot
// call/return loop builds a trace through `sub`; the guest then rewrites the
// addi inside it. The store bumps the frame generation, so the next trace
// entry must see the mismatch, invalidate, rebuild, and execute the patched
// instruction -- with bit-identical simulated history in all three modes.
// ---------------------------------------------------------------------------

struct TraceModeOptions {
  bool fastpath = true;
  bool trace_exec = true;
};

WorldOptions Options(const TraceModeOptions& mode) {
  WorldOptions options;
  options.ck.fastpath = mode.fastpath;
  options.ck.trace_exec = mode.trace_exec;
  return options;
}

Snapshot RunTraceSmc(const TraceModeOptions& mode, uint32_t* s1_out, uint32_t* s2_out) {
  TestWorld world(Options(mode));
  TrapAppKernel app;
  world.Launch(app);
  ck::CkApi api(world.ck(), app.self(), world.machine().cpu(0));

  uint32_t space = app.CreateSpace(api);
  // "addi s0, s0, 5", patched over the "addi s0, s0, 1" at `patchpt` once
  // the first loop has run it hot enough to live in a cached superblock.
  uint32_t patched = ckisa::Encode(ckisa::Op::kAddi, ckisa::kRegS0, ckisa::kRegS0, 5);
  char source[1024];
  std::snprintf(source, sizeof(source), R"(
      li   t6, 200
      addi t0, r0, 0
    warm:
      call sub
      addi t0, t0, 1
      bne  t0, t6, warm
      mv   s1, s0
      ; patch the increment inside the (by now cached) superblock
      li   t1, 0x%08x
      la   t2, patchpt
      sw   t1, 0(t2)
      addi t0, r0, 0
    hot:
      call sub
      addi t0, t0, 1
      bne  t0, t6, hot
      mv   s2, s0
      halt
    sub:
    patchpt:
      addi s0, s0, 1
      ret
  )", patched);
  ckisa::Program program = MustAssemble(source, 0x10000);
  app.LoadProgramImage(space, program, /*writable=*/true);

  ckapp::GuestThreadParams params;
  params.space_index = space;
  params.entry = 0x10000;
  uint32_t thread = app.CreateGuestThread(api, params);
  EXPECT_TRUE(world.RunUntil([&] { return app.thread(thread).finished; }, 1000000));

  if (mode.fastpath && mode.trace_exec) {
    EXPECT_GE(world.ck().stats().exec_trace_builds, 1u);
    EXPECT_GE(world.ck().stats().exec_trace_hits, 1u);
    EXPECT_GE(world.ck().stats().exec_trace_invalidations, 1u)
        << "the patch store should have stale-ified a cached superblock";
  } else {
    EXPECT_EQ(world.ck().stats().exec_trace_builds, 0u);
  }

  if (s1_out != nullptr) {
    *s1_out = app.thread(thread).saved.regs[ckisa::kRegS0 + 1];
  }
  if (s2_out != nullptr) {
    *s2_out = app.thread(thread).saved.regs[ckisa::kRegS0 + 2];
  }
  Snapshot s;
  CaptureMachineState(s, world);
  CaptureRegs(s, app.thread(thread), "t0");
  return s;
}

TEST(TraceExecDifferential, SelfModifyingCodeInsideSuperblock) {
  uint32_t trace_s1 = 0, trace_s2 = 0, fast_s1 = 0, fast_s2 = 0, slow_s1 = 0, slow_s2 = 0;
  Snapshot trace = RunTraceSmc({true, true}, &trace_s1, &trace_s2);
  Snapshot fast = RunTraceSmc({true, false}, &fast_s1, &fast_s2);
  Snapshot slow = RunTraceSmc({false, false}, &slow_s1, &slow_s2);
  // Semantics: 200 increments of 1, then 200 of the patched 5.
  EXPECT_EQ(trace_s1, 200u);
  EXPECT_EQ(trace_s2, 1200u) << "trace executor ran stale decoded steps";
  EXPECT_EQ(fast_s1, 200u);
  EXPECT_EQ(fast_s2, 1200u);
  EXPECT_EQ(slow_s1, 200u);
  EXPECT_EQ(slow_s2, 1200u);
  ExpectIdentical(trace, fast);
  ExpectIdentical(trace, slow);
}

// ---------------------------------------------------------------------------
// Superblock traces: a trace whose steps cross a page boundary, with the
// second page unloaded mid-run. The next trace entry finds the page gone from
// the TLB (a cold miss, not an invalidation), single-steps into the demand
// refault, and the run must stay bit-identical across all modes.
// ---------------------------------------------------------------------------

Snapshot RunTraceCrossPageUnload(const TraceModeOptions& mode) {
  TestWorld world(Options(mode));
  TrapAppKernel app;
  world.Launch(app);
  ck::CkApi api(world.ck(), app.self(), world.machine().cpu(0));

  uint32_t space = app.CreateSpace(api);
  // The image base must stay page-aligned (LoadProgramImage packs whole
  // pages), so nop padding pushes `loop` to 15 instructions short of the
  // 0x11000 page boundary: the loop body (20 addi steps) runs straight
  // across it and the built superblock records two code pages.
  const uint32_t base = 0x10000;
  const uint32_t kLoopTarget = 0x11000 - 15 * 4;
  std::string source =
      "      li   t6, 600\n"
      "      addi t0, r0, 0\n";
  uint32_t preamble_words = MustAssemble(source.c_str(), base).words.size();
  for (uint32_t w = preamble_words; w < (kLoopTarget - base) / 4; ++w) {
    source += "      nop\n";
  }
  source += R"(
    loop:
      addi t0, t0, 1
      addi s0, s0, 1
      addi s0, s0, 1
      addi s0, s0, 1
      addi s0, s0, 1
      addi s0, s0, 1
      addi s0, s0, 1
      addi s0, s0, 1
      addi s0, s0, 1
      addi s0, s0, 1
      addi s0, s0, 1
      addi s0, s0, 1
      addi s0, s0, 1
      addi s0, s0, 1
      addi s0, s0, 1
      addi s0, s0, 1
      addi s0, s0, 1
      addi s0, s0, 1
      addi s0, s0, 1
      addi s0, s0, 1
      addi s0, s0, 1
      bne  t0, t6, loop
      halt
  )";
  ckisa::Program program = MustAssemble(source.c_str(), base);
  EXPECT_GT(base + program.SizeBytes(), 0x11000u) << "loop does not cross the page boundary";
  app.LoadProgramImage(space, program, /*writable=*/false);

  ckapp::GuestThreadParams params;
  params.space_index = space;
  params.entry = base;
  uint32_t thread = app.CreateGuestThread(api, params);

  // Once the loop is hot (any superblock spans both pages by construction),
  // unload the second code page. Keyed on guest_instructions, which advances
  // identically in every mode, so the unload lands at the same point in all
  // runs.
  bool unloaded = false;
  EXPECT_TRUE(world.RunUntil(
      [&] {
        if (!unloaded && world.ck().stats().guest_instructions > 3000) {
          EXPECT_EQ(api.UnloadMapping(app.space(space).ck_id, 0x11000), CkStatus::kOk);
          unloaded = true;
        }
        return app.thread(thread).finished;
      },
      2000000));
  EXPECT_TRUE(unloaded);

  if (mode.fastpath && mode.trace_exec) {
    EXPECT_GE(world.ck().stats().exec_trace_builds, 1u);
    EXPECT_GE(world.ck().stats().exec_trace_hits, 1u);
  }

  Snapshot s;
  CaptureMachineState(s, world);
  CaptureRegs(s, app.thread(thread), "t0");
  return s;
}

TEST(TraceExecDifferential, TraceCrossesPageBoundaryWithMidRunUnload) {
  Snapshot trace = RunTraceCrossPageUnload({true, true});
  Snapshot fast = RunTraceCrossPageUnload({true, false});
  Snapshot slow = RunTraceCrossPageUnload({false, false});
  ExpectIdentical(trace, fast);
  ExpectIdentical(trace, slow);
}

// ---------------------------------------------------------------------------
// Profiler differential: with --profile armed, the guest-PC histogram must be
// identical with and without trace execution -- samples latch at quantum-exit
// flush points, and those see the same (clock, pc) pairs in both modes. (The
// slow path takes no samples at all -- see observability.h -- so the
// comparison is trace-on vs trace-off, both on the fast path.)
// ---------------------------------------------------------------------------

std::map<uint32_t, uint64_t> RunProfiledHistogram(bool trace_exec, uint64_t* total) {
  WorldOptions options;
  options.ck.trace_exec = trace_exec;
  options.ck.profile_period = 3000;
  TestWorld world(options);
  TrapAppKernel app;
  world.Launch(app);
  ck::CkApi api(world.ck(), app.self(), world.machine().cpu(0));

  uint32_t space = app.CreateSpace(api);
  ckisa::Program program = MustAssemble(R"(
      li   t3, 0x00600000
      li   t6, 4000
      addi t0, r0, 0
    loop:
      addi t0, t0, 1
      add  t1, t1, t0
      sw   t1, 0(t3)
      lw   t2, 4(t3)
      bne  t0, t6, loop
      halt
  )", 0x10000);
  app.LoadProgramImage(space, program, /*writable=*/false);
  app.DefineZeroRegion(space, 0x00600000, 1, /*writable=*/true);

  ckapp::GuestThreadParams params;
  params.space_index = space;
  params.entry = 0x10000;
  uint32_t thread = app.CreateGuestThread(api, params);
  EXPECT_TRUE(world.RunUntil([&] { return app.thread(thread).finished; }, 2000000));

  if (total != nullptr) {
    *total = world.ck().profile_samples_total();
  }
  // Merge across kernel slots (only the app's slot has samples).
  std::map<uint32_t, uint64_t> merged;
  for (const auto& hist : world.ck().profile_pcs()) {
    for (const auto& [pc, count] : hist) {
      merged[pc] += count;
    }
  }
  return merged;
}

TEST(TraceExecDifferential, ProfilerHistogramsMatch) {
  uint64_t trace_total = 0, fast_total = 0;
  std::map<uint32_t, uint64_t> trace = RunProfiledHistogram(true, &trace_total);
  std::map<uint32_t, uint64_t> fast = RunProfiledHistogram(false, &fast_total);
  EXPECT_GT(trace_total, 0u) << "profiler collected no samples";
  EXPECT_EQ(trace_total, fast_total);
  EXPECT_EQ(trace, fast) << "trace execution moved profiler sample points";
}

// ---------------------------------------------------------------------------
// Intra-MPM parallel dispatch: the batch protocol on host worker threads must
// be bit-identical to the same protocol run inline (cpu_host_threads=0), and
// cycle-exactness must hold under batching for every execution mode.
// ---------------------------------------------------------------------------

Snapshot RunParallelWorkload(bool cpus_parallel, uint32_t host_threads, bool fastpath,
                             bool trace_exec) {
  WorldOptions options;
  options.cpus = 4;
  options.ck.fastpath = fastpath;
  options.ck.trace_exec = trace_exec;
  options.ck.cpus_parallel = cpus_parallel;
  options.ck.cpu_host_threads = host_threads;
  TestWorld world(options);
  TrapAppKernel app;
  world.Launch(app);
  ck::CkApi api(world.ck(), app.self(), world.machine().cpu(0));

  ckisa::Program program = MustAssemble(R"(
      li   t3, 0x00400000
      li   t6, 3000
      addi t0, r0, 0
    loop:
      addi t0, t0, 1
      add  t1, t1, t0
      sw   t1, 0(t3)
      lw   t2, 4(t3)
      slt  t4, t2, t1
      bne  t0, t6, loop
      trap 16
      mv   s0, a0
      halt
  )", 0x10000);

  // One guest thread per CPU, each in its own space: every batch collects
  // four independent quanta, the shape the worker pool parallelizes.
  std::vector<uint32_t> threads;
  for (uint32_t c = 0; c < 4; ++c) {
    uint32_t space = app.CreateSpace(api);
    app.LoadProgramImage(space, program, /*writable=*/false);
    app.DefineZeroRegion(space, 0x00400000, 1, /*writable=*/true);
    ckapp::GuestThreadParams params;
    params.space_index = space;
    params.entry = 0x10000;
    params.cpu_hint = static_cast<uint8_t>(c);
    threads.push_back(app.CreateGuestThread(api, params));
  }

  EXPECT_TRUE(world.RunUntil(
      [&] {
        for (uint32_t t : threads) {
          if (!app.thread(t).finished) {
            return false;
          }
        }
        return true;
      },
      4000000));

  Snapshot s;
  CaptureMachineState(s, world);
  for (size_t i = 0; i < threads.size(); ++i) {
    CaptureRegs(s, app.thread(threads[i]), "t" + std::to_string(i));
  }
  return s;
}

TEST(IntraMpmParallelDifferential, WorkerThreadsMatchInlineBatch) {
  // The determinism contract: batch dispatch on host worker threads is
  // bit-identical to the same batch protocol run inline.
  ExpectIdentical(RunParallelWorkload(true, 4, true, true),
                  RunParallelWorkload(true, 0, true, true));
}

TEST(IntraMpmParallelDifferential, WorkerThreadsMatchInlineBatchTwoThreads) {
  // An uneven worker count (2 threads, 4 jobs) exercises queue draining.
  ExpectIdentical(RunParallelWorkload(true, 2, true, true),
                  RunParallelWorkload(true, 0, true, true));
}

TEST(IntraMpmParallelDifferential, FastSlowDifferentialUnderBatching) {
  // Cycle-exactness holds inside the batch protocol too: fast path (with
  // traces) vs slow path, both batched on worker threads.
  ExpectIdentical(RunParallelWorkload(true, 4, true, true),
                  RunParallelWorkload(true, 4, false, false));
}

TEST(IntraMpmParallelDifferential, TraceOnOffUnderBatching) {
  ExpectIdentical(RunParallelWorkload(true, 4, true, true),
                  RunParallelWorkload(true, 4, true, false));
}

}  // namespace

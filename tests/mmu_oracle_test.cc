// Property test: the MMU + page tables + TLB against a reference model.
//
// Random mapping load/unload churn interleaved with random translated
// accesses; every access outcome (paddr, fault type, protection) must match
// a simple map<vpage, (frame, flags)> oracle. This hammers exactly the
// coherence the Cache Kernel must maintain: TLB flushes on unload, PTE
// updates on load, referenced/modified bit behavior.

#include <gtest/gtest.h>

#include <map>

#include "src/base/rng.h"
#include "src/ck/cache_kernel.h"
#include "src/sim/machine.h"

namespace {

using ck::CacheKernel;
using ck::CkApi;
using ck::MappingSpec;
using ck::SpaceId;
using ckbase::CkStatus;

class NullKernel : public ck::AppKernel {
 public:
  ck::HandlerAction HandleFault(const ck::FaultForward&, CkApi&) override {
    return ck::HandlerAction::kTerminate;
  }
  ck::TrapAction HandleTrap(const ck::TrapForward&, CkApi&) override { return {}; }
  void OnMappingWriteback(const ck::MappingWriteback&, CkApi&) override {}
  void OnThreadWriteback(const ck::ThreadWriteback&, CkApi&) override {}
  void OnSpaceWriteback(const ck::SpaceWriteback&, CkApi&) override {}
};

struct OracleEntry {
  uint32_t frame;
  bool writable;
};

class MmuOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MmuOracleTest, TranslationsAlwaysMatchTheOracle) {
  cksim::MachineConfig mc;
  mc.memory_bytes = 8u << 20;
  cksim::Machine machine(mc);
  ck::CacheKernelConfig config;
  config.mapping_slots = 2048;  // ample: the oracle does not model reclaim
  CacheKernel ck(machine, config);
  NullKernel null_kernel;
  ck::KernelId kid = ck.BootFirstKernel(&null_kernel, 0);
  CkApi api(ck, kid, machine.cpu(0));
  SpaceId space = api.LoadSpace(0, false).value();
  // The freshly loaded space occupies slot 0 -> asid 0. Derive the root the
  // MMU would use from a thread's perspective via translated probes only.

  ckbase::Rng rng(GetParam());
  std::map<uint32_t, OracleEntry> oracle;  // vpage -> entry
  constexpr uint32_t kVpages = 64;         // virtual window: pages 0x400..0x43f
  constexpr uint32_t kVbase = 0x400;
  constexpr uint32_t kFrames = 32;
  constexpr uint32_t kFrameBase = 0x100000 / cksim::kPageSize;

  // Use a second CPU's MMU for raw probes (api charges cpu0). The space's
  // root table address: QueryMapping does the walk for us, so instead probe
  // through the Mmu directly using the root from a loaded mapping's PTE walk.
  // Simpler: probe through QueryMapping (authoritative PTE view) AND through
  // the raw MMU using the root obtained from the Cache Kernel's own leaf
  // lookups -- QueryMapping already exercises LeafPteAddr; for the TLB view
  // we translate via cpu(1)'s MMU bound to the same tables. To get the root,
  // load one bootstrap mapping and read the machine's page-table arena...
  // That is kernel-internal; instead validate the TLB path indirectly via
  // GuestLoad/GuestStore on a loaded thread, which is the real access path.

  ck::ThreadSpec tspec;
  tspec.space = space;
  tspec.start_blocked = true;
  ck::ThreadId thread = api.LoadThread(tspec).value();

  for (int op = 0; op < 4000; ++op) {
    uint32_t choice = static_cast<uint32_t>(rng.Below(10));
    uint32_t vpage = kVbase + static_cast<uint32_t>(rng.Below(kVpages));
    cksim::VirtAddr vaddr = vpage * cksim::kPageSize +
                            static_cast<uint32_t>(rng.Below(cksim::kPageSize / 4)) * 4;

    if (choice < 3) {  // load/replace a mapping
      MappingSpec spec;
      spec.space = space;
      spec.vaddr = vpage * cksim::kPageSize;
      spec.paddr = (kFrameBase + static_cast<uint32_t>(rng.Below(kFrames))) * cksim::kPageSize;
      spec.flags.writable = rng.Chance(1, 2);
      ASSERT_EQ(api.LoadMapping(spec), CkStatus::kOk);
      oracle[vpage] = OracleEntry{spec.paddr >> cksim::kPageShift, spec.flags.writable};
    } else if (choice < 5) {  // unload
      CkStatus status = api.UnloadMapping(space, vpage * cksim::kPageSize);
      if (oracle.count(vpage) != 0) {
        ASSERT_EQ(status, CkStatus::kOk);
        oracle.erase(vpage);
      } else {
        ASSERT_EQ(status, CkStatus::kNotFound);
      }
    } else if (choice < 8) {  // read access through the real path
      ckbase::Result<uint32_t> value = ck.GuestLoad(kid, machine.cpu(0), thread, vaddr);
      if (oracle.count(vpage) != 0) {
        ASSERT_TRUE(value.ok()) << "mapped read must succeed at op " << op;
      } else {
        // The access faulted; the null kernel terminated the thread. Reload.
        ASSERT_FALSE(value.ok());
        tspec.cookie = static_cast<uint64_t>(op);
        ck.UnloadThread(kid, machine.cpu(0), thread);
        thread = api.LoadThread(tspec).value();
      }
    } else {  // write access
      uint32_t marker = 0xbeef0000u + static_cast<uint32_t>(op);
      CkStatus status = ck.GuestStore(kid, machine.cpu(0), thread, vaddr, marker);
      auto it = oracle.find(vpage);
      if (it != oracle.end() && it->second.writable) {
        ASSERT_EQ(status, CkStatus::kOk) << "writable page at op " << op;
        // The word must land in the oracle's frame.
        uint32_t stored = machine.memory().ReadWord(
            (it->second.frame << cksim::kPageShift) | (vaddr & cksim::kPageOffsetMask & ~3u));
        ASSERT_EQ(stored, marker);
        // And the modified bit must be visible to the owner.
        ckbase::Result<ck::MappingInfo> info =
            api.QueryMapping(space, vpage * cksim::kPageSize);
        ASSERT_TRUE(info.ok());
        EXPECT_TRUE(info.value().modified);
      } else {
        ASSERT_NE(status, CkStatus::kOk) << "unmapped/read-only write at op " << op;
        tspec.cookie = static_cast<uint64_t>(op);
        ck.UnloadThread(kid, machine.cpu(0), thread);
        thread = api.LoadThread(tspec).value();
      }
    }
  }

  // Final sweep: every oracle entry agrees with QueryMapping.
  for (const auto& [vpage, entry] : oracle) {
    ckbase::Result<ck::MappingInfo> info = api.QueryMapping(space, vpage * cksim::kPageSize);
    ASSERT_TRUE(info.ok()) << "vpage " << vpage;
    EXPECT_EQ(info.value().paddr >> cksim::kPageShift, entry.frame);
    EXPECT_EQ(info.value().writable, entry.writable);
  }
  EXPECT_TRUE(ck.ValidateInvariants().empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MmuOracleTest, ::testing::Values(101u, 202u, 303u, 404u, 505u));

// Configuration sweep: the same guest workload must complete on 1-4 CPU
// machines ("these extensions are relatively easy to omit ... especially
// with uniprocessor configurations", section 4.1).
class CpuCountTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(CpuCountTest, StandardWorkloadCompletesOnAnyCpuCount) {
  cksim::MachineConfig mc;
  mc.cpu_count = GetParam();
  mc.memory_bytes = 8u << 20;
  cksim::Machine machine(mc);
  ck::CacheKernelConfig config;
  CacheKernel ck(machine, config);
  NullKernel null_kernel;
  ck::KernelId kid = ck.BootFirstKernel(&null_kernel, 0);
  CkApi api(ck, kid, machine.cpu(0));
  SpaceId space = api.LoadSpace(0, false).value();

  // A dozen blocked threads + mapping churn + unload everything.
  std::vector<ck::ThreadId> threads;
  for (int i = 0; i < 12; ++i) {
    ck::ThreadSpec spec;
    spec.space = space;
    spec.cookie = static_cast<uint64_t>(i);
    spec.start_blocked = true;
    ckbase::Result<ck::ThreadId> t = api.LoadThread(spec);
    ASSERT_TRUE(t.ok());
    threads.push_back(t.value());
  }
  for (int i = 0; i < 64; ++i) {
    MappingSpec spec;
    spec.space = space;
    spec.vaddr = 0x100000 + i * cksim::kPageSize;
    spec.paddr = 0x100000 + (i % 32) * cksim::kPageSize;
    spec.flags.writable = true;
    ASSERT_EQ(api.LoadMapping(spec), CkStatus::kOk);
  }
  machine.RunFor(100000);
  EXPECT_TRUE(ck.ValidateInvariants().empty());
  ASSERT_EQ(api.UnloadSpace(space), CkStatus::kOk);
  EXPECT_EQ(ck.loaded_count(ck::ObjectType::kThread), 0u);
  EXPECT_EQ(ck.loaded_count(ck::ObjectType::kMapping), 0u);
  EXPECT_TRUE(ck.ValidateInvariants().empty());
}

INSTANTIATE_TEST_SUITE_P(CpuCounts, CpuCountTest, ::testing::Values(1u, 2u, 3u, 4u));

}  // namespace

// Checkpoint/restore subsystem (src/ckpt, docs/CHECKPOINT.md):
//   * serializer and image framing round-trips, CRC corruption detection
//     ("never load a partial kernel");
//   * writeback -> serialize -> deserialize -> reload round-trips bit-exact
//     for every object type (kernel grant, spaces, threads, page records of
//     every residency class) on a generic application kernel;
//   * same-MPM checkpoint transparency (differential against an untouched
//     control world, the fastpath_test.cc pattern);
//   * cross-MPM live migration of the UNIX emulator with stable pids;
//   * crash failover from the last stable-store image;
//   * database kernel round-trip (app-extra state: recency list, query
//     engine progress).

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/ckpt/checkpoint.h"
#include "src/ckpt/image.h"
#include "src/ckpt/serializer.h"
#include "src/db/db_kernel.h"
#include "src/isa/assembler.h"
#include "src/sim/devices.h"
#include "src/unixemu/unix_emulator.h"
#include "tests/test_harness.h"

namespace {

using ckbase::CkStatus;
using ckckpt::AppKernelState;
using ckckpt::CkptImage;
using ckckpt::FrameRemap;
using ckckpt::Reader;
using ckckpt::RecordType;
using ckckpt::RestoreOptions;
using ckckpt::Writer;
using ckunix::Process;
using ckunix::UnixConfig;
using ckunix::UnixEmulator;
using cktest::TestWorld;

ckisa::Program MustAssemble(const char* source, uint32_t base = 0x10000) {
  ckisa::AssembleResult result = ckisa::Assemble(source, base);
  EXPECT_TRUE(result.ok) << result.error;
  return result.program;
}

using Digest = std::vector<std::pair<std::string, uint64_t>>;

void ExpectDigestsEqual(const Digest& a, const Digest& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].first, b[i].first) << "digest key order diverges at " << i;
    EXPECT_EQ(a[i].second, b[i].second) << "observable '" << a[i].first << "' differs";
  }
}

// ---------------------------------------------------------------------------
// Serializer.
// ---------------------------------------------------------------------------

TEST(CkptSerializer, RoundTripAllTypes) {
  Writer w;
  w.U8(0xab);
  w.U16(0xbeef);
  w.U32(0xdeadbeef);
  w.U64(0x0123456789abcdefull);
  w.Bool(true);
  w.Bool(false);
  w.Str("writeback completeness");
  const uint8_t raw[4] = {1, 2, 3, 4};
  w.Bytes(raw, sizeof(raw));

  Reader r(w.data());
  EXPECT_EQ(r.U8(), 0xab);
  EXPECT_EQ(r.U16(), 0xbeef);
  EXPECT_EQ(r.U32(), 0xdeadbeefu);
  EXPECT_EQ(r.U64(), 0x0123456789abcdefull);
  EXPECT_TRUE(r.Bool());
  EXPECT_FALSE(r.Bool());
  EXPECT_EQ(r.Str(), "writeback completeness");
  uint8_t out[4] = {0};
  r.Bytes(out, sizeof(out));
  EXPECT_EQ(std::memcmp(out, raw, sizeof(raw)), 0);
  EXPECT_TRUE(r.Done());
}

TEST(CkptSerializer, CrcMatchesKnownVector) {
  // The standard CRC-32 (IEEE, reflected) check value.
  EXPECT_EQ(ckckpt::Crc32("123456789", 9), 0xcbf43926u);
}

TEST(CkptSerializer, ReaderOverrunIsSticky) {
  Writer w;
  w.U16(7);
  Reader r(w.data());
  r.U32();                  // overrun
  EXPECT_EQ(r.U64(), 0u);   // sticky: subsequent reads return zeros
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error(), "record truncated");
  EXPECT_FALSE(r.Done());
}

// ---------------------------------------------------------------------------
// Image container.
// ---------------------------------------------------------------------------

CkptImage SmallImage() {
  CkptImage image;
  Writer header;
  header.U32(0x1234);
  header.Str("tiny");
  image.Append(RecordType::kHeader, header.Take());
  Writer extra;
  for (uint8_t i = 0; i < 16; ++i) {
    extra.U8(i);
  }
  image.Append(RecordType::kAppExtra, extra.Take());
  image.Append(RecordType::kEnd, {});
  return image;
}

TEST(CkptImage, SerializeParseRoundTrip) {
  CkptImage image = SmallImage();
  std::vector<uint8_t> bytes = image.Serialize();
  EXPECT_EQ(bytes.size(), image.SizeBytes());

  CkptImage out;
  std::string error;
  ASSERT_TRUE(CkptImage::Parse(bytes, &out, &error)) << error;
  ASSERT_EQ(out.records().size(), image.records().size());
  for (size_t i = 0; i < out.records().size(); ++i) {
    EXPECT_EQ(out.records()[i].type, image.records()[i].type);
    EXPECT_EQ(out.records()[i].payload, image.records()[i].payload);
  }
  EXPECT_NE(out.Find(RecordType::kAppExtra), nullptr);
  EXPECT_EQ(out.Find(RecordType::kThread), nullptr);
}

TEST(CkptImage, EveryFlippedByteIsDetected) {
  std::vector<uint8_t> bytes = SmallImage().Serialize();
  {
    CkptImage ok_image;
    std::string error;
    ASSERT_TRUE(CkptImage::Parse(bytes, &ok_image, &error)) << error;
  }
  // One flipped bit anywhere -- magic, version, framing, payload, CRC --
  // must fail Parse and leave the output image untouched.
  for (size_t i = 0; i < bytes.size(); ++i) {
    for (uint8_t bit : {uint8_t{0x01}, uint8_t{0x80}}) {
      std::vector<uint8_t> corrupt = bytes;
      corrupt[i] ^= bit;
      CkptImage out;
      std::string error;
      EXPECT_FALSE(CkptImage::Parse(corrupt, &out, &error))
          << "flip of bit " << int(bit) << " at offset " << i << " went undetected";
      EXPECT_TRUE(out.records().empty()) << "output mutated on failure at offset " << i;
      EXPECT_FALSE(error.empty());
    }
  }
}

// ---------------------------------------------------------------------------
// Bit-exact round trip of a generic kernel exercising every object type.
// ---------------------------------------------------------------------------

constexpr const char* kWorkerSrc = R"(
      li   t0, 0x40000000
  loop:
      lw   t1, 0(t0)
      addi t1, t1, 1
      sw   t1, 0(t0)
      j    loop
)";

constexpr const char* kFinisherSrc = R"(
      addi s0, r0, 7
      halt
)";

TEST(CkptRoundTrip, RichKernelBitExactAcrossMachines) {
  TestWorld a;
  // A fixed device/channel region on A (the SRM controls device placement).
  uint32_t group_a = a.srm().ReserveGroups(1).value();
  cksim::PhysAddr fixed_a = group_a * cksim::kPageGroupBytes;

  ckapp::AppKernelBase app_a("rich", 64);
  cksrm::LaunchParams params;
  params.page_groups = 4;
  params.max_priority = 30;
  ASSERT_TRUE(a.srm().Launch(app_a, params).ok());
  ASSERT_EQ(a.srm().GrantSharedGroups(app_a, group_a, 1, ck::GroupAccess::kReadWrite),
            CkStatus::kOk);
  ck::CkApi api_a(a.ck(), app_a.self(), a.machine().cpu(0));

  uint32_t sp0 = app_a.CreateSpace(api_a);
  uint32_t sp1 = app_a.CreateSpace(api_a);

  // Zero-fill region: touch three pages (resident dirty owned frames).
  app_a.DefineZeroRegion(sp0, 0x40000000, 8, /*writable=*/true);
  for (uint32_t p = 0; p < 3; ++p) {
    uint32_t value = 0xabc00000u + p;
    ASSERT_TRUE(app_a.WriteGuest(api_a, sp0, 0x40000000 + p * cksim::kPageSize, &value, 4));
  }

  // Backing-store region: preload distinctive bytes, fault two pages in.
  uint32_t backed_first = 32;
  for (uint32_t p = 0; p < 4; ++p) {
    std::vector<uint8_t> data(cksim::kPageSize);
    for (uint32_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<uint8_t>(p * 31 + i);
    }
    app_a.backing().WriteBytes(backed_first + p, 0, data.data(),
                               static_cast<uint32_t>(data.size()));
  }
  app_a.DefineBackedRegion(sp0, 0x41000000, 4, backed_first, /*writable=*/true);
  uint32_t probe = 0;
  ASSERT_TRUE(app_a.ReadGuest(api_a, sp0, 0x41000000, &probe, 4));
  ASSERT_TRUE(app_a.ReadGuest(api_a, sp0, 0x41000000 + cksim::kPageSize, &probe, 4));

  // Guest threads: a worker that loops forever and a finisher that halts.
  app_a.DefineZeroRegion(sp0, 0x70000000, 4, /*writable=*/true);  // stacks
  ckisa::Program worker = MustAssemble(kWorkerSrc, 0x10000);
  ckisa::Program finisher = MustAssemble(kFinisherSrc, 0x14000);
  app_a.LoadProgramImage(sp0, worker, /*writable=*/false);
  app_a.LoadProgramImage(sp0, finisher, /*writable=*/false);
  ckapp::GuestThreadParams worker_params;
  worker_params.space_index = sp0;
  worker_params.entry = worker.base;
  worker_params.stack_top = 0x70002000;
  uint32_t worker_index = app_a.CreateGuestThread(api_a, worker_params);
  ckapp::GuestThreadParams fin_params;
  fin_params.space_index = sp0;
  fin_params.entry = finisher.base;
  fin_params.stack_top = 0x70004000;
  uint32_t fin_index = app_a.CreateGuestThread(api_a, fin_params);

  // Message page on the fixed frame, signalling the worker; carries payload.
  app_a.DefineFrameRegion(sp1, 0x50000000, 1, fixed_a, /*writable=*/true,
                          /*message=*/true, /*signal_thread=*/worker_index);
  const char payload[] = "channel payload survives migration";
  ASSERT_EQ(api_a.WritePhys(fixed_a, payload, sizeof(payload)), CkStatus::kOk);

  // Deferred-copy region off a template frame in the fixed region: write one
  // page (forces the copy), leave the other deferred (kSharedFrame record).
  cksim::PhysAddr template_frame = fixed_a + cksim::kPageSize;
  const char template_data[] = "cow template";
  ASSERT_EQ(api_a.WritePhys(template_frame, template_data, sizeof(template_data)),
            CkStatus::kOk);
  app_a.DefineCowRegion(sp0, 0x60000000, 2, template_frame);
  uint32_t cow_touch = 0x5a5a5a5a;
  ASSERT_TRUE(app_a.WriteGuest(api_a, sp0, 0x60000000 + 64, &cow_touch, 4));

  // Run until the finisher halts and the worker has made progress.
  ASSERT_TRUE(a.RunUntil([&] { return app_a.thread(fin_index).finished; }));
  a.RunUntil([] { return false; }, 20000);
  uint32_t counter_at_capture = 0;
  ASSERT_TRUE(app_a.ReadGuest(api_a, sp0, 0x40000000, &counter_at_capture, 4));
  ASSERT_GT(counter_at_capture, 0u);

  // Checkpoint in place; the image is observably bit-exact with the kernel.
  CkptImage image;
  ASSERT_EQ(a.srm().Checkpoint(app_a, &image), CkStatus::kOk);
  ck::CkApi srm_api_a = a.Api();
  Digest digest_a = AppKernelState::Digest(app_a, srm_api_a);

  // Ship through the serialized form (what migration/failover moves).
  std::vector<uint8_t> bytes = image.Serialize();
  CkptImage shipped;
  std::string error;
  ASSERT_TRUE(CkptImage::Parse(bytes, &shipped, &error)) << error;

  // Target machine: the fixed region lives at a different physical base.
  TestWorld b;
  ASSERT_TRUE(b.srm().ReserveGroups(1).ok());
  uint32_t group_b = b.srm().ReserveGroups(1).value();
  cksim::PhysAddr fixed_b = group_b * cksim::kPageGroupBytes;
  ASSERT_NE(fixed_b, fixed_a);

  ckapp::AppKernelBase app_b("rich", 64);
  RestoreOptions options;
  options.frame_remaps.push_back(FrameRemap{fixed_a, fixed_b, 2});
  ASSERT_EQ(b.srm().Restore(app_b, shipped, options, &error), CkStatus::kOk) << error;

  ck::CkApi srm_api_b = b.Api();
  Digest digest_b = AppKernelState::Digest(app_b, srm_api_b);
  ExpectDigestsEqual(digest_a, digest_b);
  EXPECT_TRUE(b.ck().ValidateInvariants().empty());

  // The migrated channel payload is readable at the remapped fixed frame.
  char migrated[sizeof(payload)] = {0};
  ASSERT_EQ(srm_api_b.ReadPhys(fixed_b, migrated, sizeof(migrated)), CkStatus::kOk);
  EXPECT_STREQ(migrated, payload);

  // Execution continues on the target: the worker keeps counting.
  b.RunUntil([] { return false; }, 20000);
  ck::CkApi api_b(b.ck(), app_b.self(), b.machine().cpu(0));
  uint32_t counter_after = 0;
  ASSERT_TRUE(app_b.ReadGuest(api_b, sp0, 0x40000000, &counter_after, 4));
  EXPECT_GT(counter_after, counter_at_capture);
  EXPECT_TRUE(b.ck().ValidateInvariants().empty());
}

// ---------------------------------------------------------------------------
// Tiered physical memory: placement is observable state and must survive
// both restore paths (docs/TIERING.md, docs/CHECKPOINT.md).
// ---------------------------------------------------------------------------

TEST(CkptRoundTrip, TierPlacementSurvivesRestoreAndMigrate) {
  cktest::WorldOptions tiered;
  tiered.ck.tier_dram_frames = 12;  // below the app's resident set
  TestWorld a(tiered);

  ckapp::AppKernelBase app_a("tiered", 64);
  a.Launch(app_a, /*page_groups=*/2);
  ck::CkApi api_a(a.ck(), app_a.self(), a.machine().cpu(0));

  // Touch well past the DRAM budget so the maintenance scan demotes the
  // overshoot; the resident set then straddles both tiers.
  uint32_t sp = app_a.CreateSpace(api_a);
  app_a.DefineZeroRegion(sp, 0x40000000, 32, /*writable=*/true);
  for (uint32_t p = 0; p < 32; ++p) {
    uint32_t value = 0x7e500000u + p;
    ASSERT_TRUE(app_a.WriteGuest(api_a, sp, 0x40000000 + p * cksim::kPageSize, &value, 4));
  }
  a.RunUntil([] { return false; }, 30000);
  ASSERT_GT(a.machine().memory().tier_count(cksim::MemTier::kSlow), 0u)
      << "DRAM squeeze demoted nothing; the round trip would not cover slow frames";

  // Leg 1: checkpoint, ship the serialized bytes, restore on a tiered peer.
  CkptImage image;
  ASSERT_EQ(a.srm().Checkpoint(app_a, &image), CkStatus::kOk);
  ck::CkApi srm_api_a = a.Api();
  Digest digest_a = AppKernelState::Digest(app_a, srm_api_a);
  uint64_t slow_pages_in_digest = 0;
  for (const auto& [key, value] : digest_a) {
    if (key.size() > 5 && key.compare(key.size() - 5, 5, ".tier") == 0 &&
        value == static_cast<uint64_t>(cksim::MemTier::kSlow)) {
      ++slow_pages_in_digest;
    }
  }
  EXPECT_GT(slow_pages_in_digest, 0u);

  std::vector<uint8_t> bytes = image.Serialize();
  CkptImage shipped;
  std::string error;
  ASSERT_TRUE(CkptImage::Parse(bytes, &shipped, &error)) << error;

  TestWorld b(tiered);
  ckapp::AppKernelBase app_b("tiered", 64);
  ASSERT_EQ(b.srm().Restore(app_b, shipped, RestoreOptions{}, &error), CkStatus::kOk) << error;
  ck::CkApi srm_api_b = b.Api();
  Digest digest_b = AppKernelState::Digest(app_b, srm_api_b);
  ExpectDigestsEqual(digest_a, digest_b);
  EXPECT_TRUE(b.ck().ValidateInvariants().empty());

  // Leg 2: live migration over the fiber channel moves the same placement.
  TestWorld c(tiered);
  uint32_t group_a = a.srm().ReserveGroups(1).value();
  uint32_t group_c = c.srm().ReserveGroups(1).value();
  cksim::FiberChannelDevice fc_a(a.machine().memory(), &a.ck(),
                                 group_a * cksim::kPageGroupBytes, 4, 4, 2500);
  cksim::FiberChannelDevice fc_c(c.machine().memory(), &c.ck(),
                                 group_c * cksim::kPageGroupBytes, 4, 4, 2500);
  cksim::FiberChannelDevice::Connect(fc_a, fc_c);
  a.machine().AttachDevice(&fc_a);
  c.machine().AttachDevice(&fc_c);

  ASSERT_EQ(a.srm().Migrate(app_a, fc_a), CkStatus::kOk);
  Digest digest_at_migrate = AppKernelState::Digest(app_a, srm_api_a);

  ckapp::AppKernelBase app_c("tiered", 64);
  CkStatus accepted = CkStatus::kRetry;
  for (uint64_t i = 0; i < 200000 && accepted == CkStatus::kRetry; ++i) {
    c.machine().Step();
    accepted = c.srm().AcceptMigration(fc_c, app_c, RestoreOptions{}, &error);
  }
  ASSERT_EQ(accepted, CkStatus::kOk) << error;
  ck::CkApi srm_api_c = c.Api();
  Digest digest_c = AppKernelState::Digest(app_c, srm_api_c);
  ExpectDigestsEqual(digest_at_migrate, digest_c);
  EXPECT_TRUE(c.ck().ValidateInvariants().empty());
}

// ---------------------------------------------------------------------------
// Corruption and mismatch: a bad image never loads a partial kernel.
// ---------------------------------------------------------------------------

TEST(CkptCorruption, CorruptStoreImageRestoresNothing) {
  TestWorld a;
  ckapp::AppKernelBase app_a("victim", 16);
  ASSERT_TRUE(a.srm().Launch(app_a, cksrm::LaunchParams{}).ok());
  ck::CkApi api_a(a.ck(), app_a.self(), a.machine().cpu(0));
  uint32_t sp = app_a.CreateSpace(api_a);
  app_a.DefineZeroRegion(sp, 0x40000000, 2, true);
  uint32_t v = 0x11223344;
  ASSERT_TRUE(app_a.WriteGuest(api_a, sp, 0x40000000, &v, 4));

  CkptImage image;
  ASSERT_EQ(a.srm().Checkpoint(app_a, &image), CkStatus::kOk);
  std::vector<uint8_t> bytes = image.Serialize();
  bytes[bytes.size() / 2] ^= 0x40;  // one flipped bit, mid-payload

  cksim::StableStore store;
  store.Put("victim", bytes);

  TestWorld b;
  ckapp::AppKernelBase app_b("victim", 16);
  std::string error;
  EXPECT_EQ(b.srm().RestoreFromStore(app_b, store, "victim", RestoreOptions{}, &error),
            CkStatus::kInvalidArgument);
  EXPECT_NE(error.find("CRC"), std::string::npos) << error;
  // Clean failure: nothing of the kernel was created, let alone loaded.
  EXPECT_EQ(app_b.space_count(), 0u);
  EXPECT_EQ(app_b.thread_count(), 0u);
  EXPECT_TRUE(b.ck().ValidateInvariants().empty());

  std::string missing_error;
  EXPECT_EQ(b.srm().RestoreFromStore(app_b, store, "absent", RestoreOptions{}, &missing_error),
            CkStatus::kNotFound);
}

TEST(CkptCorruption, MismatchedTargetLoadsNoObjects) {
  TestWorld a;
  UnixEmulator emu_a(a.ck());
  cksrm::LaunchParams params;
  params.page_groups = 8;
  params.max_priority = 31;
  params.locked_kernel_object = true;
  ASSERT_TRUE(a.srm().Launch(emu_a, params).ok());
  ck::CkApi api_a(a.ck(), emu_a.self(), a.machine().cpu(0));
  emu_a.Start(api_a);
  int pid = emu_a.Exec(api_a, MustAssemble(R"(
      addi a0, r0, 3
      trap 17
  )"));
  ASSERT_TRUE(a.RunUntil(
      [&] { return emu_a.process(pid).state == Process::State::kZombie; }));

  CkptImage image;
  ASSERT_EQ(a.srm().Checkpoint(emu_a, &image), CkStatus::kOk);

  // A target instance configured differently is rejected by the emulator's
  // RestoreExtra; the Cache Kernel ends up with no objects for it.
  TestWorld b;
  UnixConfig other;
  other.default_priority = 5;  // != default fingerprint
  UnixEmulator emu_b(b.ck(), other);
  std::string error;
  EXPECT_EQ(b.srm().Restore(emu_b, image, RestoreOptions{}, &error),
            CkStatus::kInvalidArgument);
  EXPECT_NE(error.find("config mismatch"), std::string::npos) << error;
  for (uint32_t i = 0; i < emu_b.thread_count(); ++i) {
    EXPECT_FALSE(emu_b.thread(i).loaded) << "thread " << i << " loaded on failed restore";
  }
  EXPECT_TRUE(b.ck().ValidateInvariants().empty());
}

// ---------------------------------------------------------------------------
// UNIX emulator: checkpoint transparency, migration, failover.
// ---------------------------------------------------------------------------

// Deterministic per-process workload (console output and exit codes do not
// depend on cross-process timing, so a checkpoint-induced delay is invisible).
constexpr const char* kTickerSrc = R"(
      addi s0, r0, 3
  loop:
      la   a0, msg
      addi a1, r0, 4
      trap 18         ; write "tik."
      li   a0, 12000
      trap 20         ; sleep 12ms (crosses the thread-unload threshold)
      addi s0, s0, -1
      beq  s0, r0, done
      j    loop
  done:
      addi a0, r0, 7
      trap 17
  msg:
      .word 0x2e6b6974  ; "tik."
)";

constexpr const char* kChildSrc = R"(
      la   a0, msg
      addi a1, r0, 3
      trap 18         ; write "c!\n"
      addi a0, r0, 9
      trap 17
  msg:
      .word 0x000a2163
)";

constexpr const char* kSpawnerSrc = R"(
      addi a0, r0, 0
      trap 24         ; spawn(registered program 0)
      trap 25         ; waitpid(child) -> exit code
      addi a0, a0, 1
      trap 17         ; exit(child code + 1)
)";

constexpr const char* kReceiverSrc = R"(
      addi a0, r0, 1
      trap 19         ; sbrk(1 page) -> buffer
      mv   s1, a0
      mv   a0, s1
      addi a1, r0, 16
      trap 27         ; recv -> len
      mv   a1, a0
      mv   a0, s1
      trap 18         ; echo the received bytes to the console
      addi a0, r0, 0
      trap 17
)";

constexpr const char* kSenderSrc = R"(
      li   a0, 4000
      trap 20         ; let the receiver block first
      addi a0, r0, 3  ; receiver pid (third exec)
      la   a1, msg
      addi a2, r0, 4
      trap 26         ; send "ping"
      addi a0, r0, 0
      trap 17
  msg:
      .word 0x676e6970
)";

// One world running the full workload. pids: ticker=1, spawner=2,
// receiver=3, sender=4, spawned child=5.
struct UnixWorld {
  explicit UnixWorld(const UnixConfig& config = UnixConfig()) : emu(world.ck(), config) {
    cksrm::LaunchParams params;
    params.page_groups = 8;
    params.max_priority = 31;
    params.locked_kernel_object = true;
    EXPECT_TRUE(world.srm().Launch(emu, params).ok());
    ck::CkApi api = Api();
    emu.Start(api);
  }

  ck::CkApi Api() { return ck::CkApi(world.ck(), emu.self(), world.machine().cpu(0)); }

  void ExecWorkload() {
    ck::CkApi api = Api();
    emu.RegisterProgram(MustAssemble(kChildSrc));
    EXPECT_EQ(emu.Exec(api, MustAssemble(kTickerSrc)), 1);
    EXPECT_EQ(emu.Exec(api, MustAssemble(kSpawnerSrc)), 2);
    EXPECT_EQ(emu.Exec(api, MustAssemble(kReceiverSrc)), 3);
    EXPECT_EQ(emu.Exec(api, MustAssemble(kSenderSrc)), 4);
  }

  TestWorld world;
  UnixEmulator emu;
};

void ExpectWorkloadComplete(UnixEmulator& emu) {
  ASSERT_EQ(emu.process_count(), 5u);
  EXPECT_EQ(emu.process(1).console, "tik.tik.tik.");
  EXPECT_EQ(emu.process(1).exit_code, 7);
  EXPECT_EQ(emu.process(2).exit_code, 10);  // child's 9 + 1, via waitpid
  EXPECT_EQ(emu.process(3).console, "ping");
  EXPECT_EQ(emu.process(3).exit_code, 0);
  EXPECT_EQ(emu.process(4).exit_code, 0);
  EXPECT_EQ(emu.process(5).console, "c!\n");
  EXPECT_EQ(emu.process(5).exit_code, 9);
  for (uint32_t p = 1; p <= emu.process_count(); ++p) {
    EXPECT_EQ(emu.process(p).pid, static_cast<int>(p)) << "pid not stable";
    EXPECT_EQ(emu.process(p).state, Process::State::kZombie);
  }
}

TEST(CkptUnix, SameMpmCheckpointIsTransparent) {
  UnixWorld control;
  UnixWorld probed;
  control.ExecWorkload();
  probed.ExecWorkload();

  // Checkpoint the probed world mid-run (the ticker is mid-sequence, the
  // spawner/receiver are blocked in syscalls).
  ASSERT_TRUE(probed.world.RunUntil([&] { return probed.emu.process(1).console.size() >= 8; }));
  CkptImage image;
  ASSERT_EQ(probed.world.srm().Checkpoint(probed.emu, &image), CkStatus::kOk);
  EXPECT_GT(image.SizeBytes(), 0u);

  ASSERT_TRUE(control.world.RunUntil([&] { return control.emu.AllExited(); }));
  ASSERT_TRUE(probed.world.RunUntil([&] { return probed.emu.AllExited(); }));

  // Differential: every process observable matches the untouched control.
  ExpectWorkloadComplete(control.emu);
  ExpectWorkloadComplete(probed.emu);
  ASSERT_EQ(control.emu.process_count(), probed.emu.process_count());
  for (uint32_t p = 1; p <= control.emu.process_count(); ++p) {
    EXPECT_EQ(control.emu.process(p).console, probed.emu.process(p).console);
    EXPECT_EQ(control.emu.process(p).exit_code, probed.emu.process(p).exit_code);
  }
  EXPECT_TRUE(probed.world.ck().ValidateInvariants().empty());
}

TEST(CkptUnix, CrossMpmMigrationPreservesPids) {
  UnixWorld a;
  TestWorld b;

  // Fiber channel between the MPMs (device regions placed by each SRM).
  uint32_t group_a = a.world.srm().ReserveGroups(1).value();
  uint32_t group_b = b.srm().ReserveGroups(1).value();
  cksim::FiberChannelDevice fc_a(a.world.machine().memory(), &a.world.ck(),
                                 group_a * cksim::kPageGroupBytes, 4, 4, 2500);
  cksim::FiberChannelDevice fc_b(b.machine().memory(), &b.ck(),
                                 group_b * cksim::kPageGroupBytes, 4, 4, 2500);
  cksim::FiberChannelDevice::Connect(fc_a, fc_b);
  a.world.machine().AttachDevice(&fc_a);
  b.machine().AttachDevice(&fc_b);

  a.ExecWorkload();
  ASSERT_TRUE(a.world.RunUntil([&] { return a.emu.process(1).console.size() >= 8; }));

  // Quiesce, capture and ship. The source instance stays swapped out.
  ASSERT_EQ(a.world.srm().Migrate(a.emu, fc_a), CkStatus::kOk);
  EXPECT_TRUE(a.world.srm().IsSwappedOut(a.emu));
  EXPECT_EQ(fc_a.bulk_sent(), 1u);

  // Target emulator: fresh instance, same configuration; its schedulers and
  // process table come from the image (Start is NOT called).
  UnixEmulator emu_b(b.ck());
  std::string error;
  CkStatus accepted = CkStatus::kRetry;
  for (uint64_t i = 0; i < 200000 && accepted == CkStatus::kRetry; ++i) {
    b.machine().Step();
    accepted = b.srm().AcceptMigration(fc_b, emu_b, RestoreOptions{}, &error);
  }
  ASSERT_EQ(accepted, CkStatus::kOk) << error;
  EXPECT_EQ(fc_b.bulk_received(), 1u);

  // All guest processes resume on B and run to completion with stable pids.
  ASSERT_TRUE(b.RunUntil([&] { return emu_b.AllExited(); }));
  ExpectWorkloadComplete(emu_b);
  // Pre-migration output was preserved, not replayed from scratch: the part
  // the source had already produced is a prefix of the final console.
  EXPECT_EQ(emu_b.process(1).console.compare(0, 8, a.emu.process(1).console, 0, 8), 0);
  EXPECT_TRUE(b.ck().ValidateInvariants().empty());
}

TEST(CkptUnix, FailoverRestartsFromLastCheckpoint) {
  cksim::StableStore store;
  UnixWorld a;
  a.ExecWorkload();

  // Periodic checkpoints to stable store while A runs.
  ASSERT_TRUE(a.world.RunUntil([&] { return a.emu.process(1).console.size() >= 4; }));
  ASSERT_EQ(a.world.srm().CheckpointToStore(a.emu, store, "unix"), CkStatus::kOk);
  ASSERT_TRUE(a.world.RunUntil([&] { return a.emu.process(1).console.size() >= 8; }));
  ASSERT_EQ(a.world.srm().CheckpointToStore(a.emu, store, "unix"), CkStatus::kOk);
  EXPECT_EQ(store.puts(), 2u);
  std::string console_at_last_checkpoint = a.emu.process(1).console;

  // Post-checkpoint progress, then the MPM fails.
  a.world.RunUntil([] { return false; }, 5000);
  a.world.machine().Halt();

  // The surviving SRM restarts the lost kernel from the last image; only
  // work since that checkpoint is lost (and is deterministically redone).
  TestWorld b;
  UnixEmulator emu_b(b.ck());
  std::string error;
  ASSERT_EQ(b.srm().RestoreFromStore(emu_b, store, "unix", RestoreOptions{}, &error),
            CkStatus::kOk) << error;
  EXPECT_GE(emu_b.process(1).console.size(), console_at_last_checkpoint.size());

  ASSERT_TRUE(b.RunUntil([&] { return emu_b.AllExited(); }));
  ExpectWorkloadComplete(emu_b);
  EXPECT_TRUE(b.ck().ValidateInvariants().empty());
}

// ---------------------------------------------------------------------------
// Database kernel: app-extra state (recency list, engine progress, stats).
// ---------------------------------------------------------------------------

TEST(CkptDb, RoundTripPreservesEngineState) {
  TestWorld a;
  ckdb::DbConfig config;
  config.table_pages = 48;
  config.buffer_pages = 16;
  ckdb::DbKernel db_a(a.ck(), config);
  a.Launch(db_a, /*page_groups=*/2);
  ck::CkApi api_a(a.ck(), db_a.self(), a.machine().cpu(0));
  db_a.Setup(api_a);
  uint64_t sum = db_a.RunScan();
  db_a.RunPointLookups(32);  // builds up recency + stats state

  CkptImage image;
  ASSERT_EQ(a.srm().Checkpoint(db_a, &image), CkStatus::kOk);
  ck::CkApi srm_api_a = a.Api();
  Digest digest_a = AppKernelState::Digest(db_a, srm_api_a);

  TestWorld b;
  ckdb::DbKernel db_b(b.ck(), config);
  std::string error;
  ASSERT_EQ(b.srm().Restore(db_b, image, RestoreOptions{}, &error), CkStatus::kOk) << error;
  ck::CkApi srm_api_b = b.Api();
  Digest digest_b = AppKernelState::Digest(db_b, srm_api_b);
  ExpectDigestsEqual(digest_a, digest_b);

  // Query history carried over; the restored engine still answers correctly.
  EXPECT_EQ(db_b.query_stats().queries, db_a.query_stats().queries);
  EXPECT_EQ(db_b.query_stats().rows_read, db_a.query_stats().rows_read);
  EXPECT_EQ(db_b.RunScan(), sum);
  EXPECT_TRUE(b.ck().ValidateInvariants().empty());
}

}  // namespace

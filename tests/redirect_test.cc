// On-demand thread loading via signal redirection (sections 2.2, 2.3): a
// parked thread consumes no Cache Kernel descriptors, yet the next signal
// for its message page reloads it and delivers.

#include <gtest/gtest.h>

#include "src/appkernel/signal_redirect.h"
#include "tests/test_harness.h"

namespace {

using ckbase::CkStatus;
using cktest::TestWorld;

class CountingReceiver : public ck::NativeProgram {
 public:
  ck::NativeOutcome Step(ck::NativeCtx&) override {
    ck::NativeOutcome outcome;
    outcome.action = ck::NativeOutcome::Action::kBlock;
    return outcome;
  }
  void OnSignal(cksim::VirtAddr addr, ck::NativeCtx&) override { signals.push_back(addr); }
  std::vector<cksim::VirtAddr> signals;
};

class RedirectTest : public ::testing::Test {
 protected:
  RedirectTest() : app_("redir", 64), redirector_(app_) {
    world_ = std::make_unique<TestWorld>();
    world_->Launch(app_);
    ck::CkApi api = Api();
    space_ = app_.CreateSpace(api);
    frame_ = app_.frames().Allocate();
    redirector_.Start(api, space_);

    receiver_thread_ = app_.CreateNativeThread(api, space_, &receiver_, 12);
    app_.DefineFrameRegion(space_, kSenderView, 1, frame_, true, true);
    app_.DefineFrameRegion(space_, kReceiverView, 1, frame_, false, true, receiver_thread_);
    app_.EnsureMappingLoaded(api, space_, kSenderView);
    app_.EnsureMappingLoaded(api, space_, kReceiverView);
  }

  ck::CkApi Api() { return ck::CkApi(world_->ck(), app_.self(), world_->machine().cpu(0)); }

  // Repointing the receiver's signal mapping flushes the sender's writable
  // mapping too (multi-mapping consistency, section 4.2), so senders reload
  // all their mappings of a message page before signaling.
  CkStatus SendSignal(ck::CkApi& api, cksim::VirtAddr vaddr) {
    CkStatus status = app_.EnsureMappingLoaded(api, space_, kSenderView);
    if (status != CkStatus::kOk) {
      return status;
    }
    return api.Signal(app_.space(space_).ck_id, vaddr);
  }

  static constexpr cksim::VirtAddr kSenderView = 0x00800000;
  static constexpr cksim::VirtAddr kReceiverView = 0x00900000;

  std::unique_ptr<TestWorld> world_;
  ckapp::AppKernelBase app_;
  ckapp::SignalRedirector redirector_;
  CountingReceiver receiver_;
  uint32_t space_ = 0;
  cksim::PhysAddr frame_ = 0;
  uint32_t receiver_thread_ = 0;
};

TEST_F(RedirectTest, ParkUnloadsDescriptorAndSignalReloads) {
  ck::CkApi api = Api();
  uint32_t threads_before = world_->ck().loaded_count(ck::ObjectType::kThread);

  ASSERT_EQ(redirector_.Park(api, space_, kReceiverView, receiver_thread_), CkStatus::kOk);
  EXPECT_FALSE(app_.thread(receiver_thread_).loaded)
      << "parked thread consumes no Cache Kernel descriptors";
  EXPECT_EQ(world_->ck().loaded_count(ck::ObjectType::kThread), threads_before - 1);
  EXPECT_EQ(redirector_.parked_count(), 1u);

  // A signal on the page reloads the thread and delivers.
  ASSERT_EQ(SendSignal(api, kSenderView + 0x30), CkStatus::kOk);
  ASSERT_TRUE(world_->RunUntil([&] { return !receiver_.signals.empty(); }, 300000));
  EXPECT_EQ(receiver_.signals[0], kReceiverView + 0x30);
  EXPECT_TRUE(app_.thread(receiver_thread_).loaded);
  EXPECT_EQ(redirector_.reloads(), 1u);
  EXPECT_EQ(redirector_.parked_count(), 0u);
}

TEST_F(RedirectTest, DirectDeliveryResumesAfterReload) {
  ck::CkApi api = Api();
  ASSERT_EQ(redirector_.Park(api, space_, kReceiverView, receiver_thread_), CkStatus::kOk);
  ASSERT_EQ(SendSignal(api, kSenderView), CkStatus::kOk);
  ASSERT_TRUE(world_->RunUntil([&] { return receiver_.signals.size() >= 1; }, 300000));

  // Registration restored: the next signal goes straight to the receiver
  // without the redirector in the loop.
  uint64_t reloads = redirector_.reloads();
  ASSERT_EQ(SendSignal(api, kSenderView + 0x40), CkStatus::kOk);
  ASSERT_TRUE(world_->RunUntil([&] { return receiver_.signals.size() >= 2; }, 300000));
  EXPECT_EQ(receiver_.signals[1], kReceiverView + 0x40);
  EXPECT_EQ(redirector_.reloads(), reloads) << "no further redirector involvement";
}

TEST_F(RedirectTest, ParkSurvivesDescriptorPressure) {
  // With the thread parked, churn the thread cache hard: the parked thread
  // cannot be a reclamation victim (it holds no descriptor), and it still
  // comes back on signal.
  cktest::WorldOptions options;
  options.ck.thread_slots = 8;
  TestWorld world(options);
  ckapp::AppKernelBase app("redir2", 64);
  world.Launch(app);
  ck::CkApi api(world.ck(), app.self(), world.machine().cpu(0));
  uint32_t space = app.CreateSpace(api);
  cksim::PhysAddr frame = app.frames().Allocate();

  ckapp::SignalRedirector redirector(app);
  redirector.Start(api, space);
  CountingReceiver receiver;
  uint32_t receiver_thread = app.CreateNativeThread(api, space, &receiver, 12);
  app.DefineFrameRegion(space, 0x00800000, 1, frame, true, true);
  app.DefineFrameRegion(space, 0x00900000, 1, frame, false, true, receiver_thread);
  ASSERT_EQ(app.EnsureMappingLoaded(api, space, 0x00800000), CkStatus::kOk);
  ASSERT_EQ(app.EnsureMappingLoaded(api, space, 0x00900000), CkStatus::kOk);

  ASSERT_EQ(redirector.Park(api, space, 0x00900000, receiver_thread), CkStatus::kOk);

  // Churn: 32 thread loads through an 8-slot cache.
  for (int i = 0; i < 32; ++i) {
    ck::ThreadSpec spec;
    spec.space = app.space(space).ck_id;
    spec.cookie = 9999;
    spec.start_blocked = true;
    api.LoadThread(spec);
  }

  ASSERT_EQ(app.EnsureMappingLoaded(api, space, 0x00800000), CkStatus::kOk);
  ASSERT_EQ(api.Signal(app.space(space).ck_id, 0x00800000), CkStatus::kOk);
  ASSERT_TRUE(world.RunUntil([&] { return !receiver.signals.empty(); }, 500000));
  EXPECT_TRUE(world.ck().ValidateInvariants().empty());
}

}  // namespace

// Distributed cached file service (src/fs, docs/FILESERVICE.md):
// hit/miss/bitmap accounting, version invalidation, read-ahead safety, LRU
// eviction under frame pressure, and the serial-vs-parallel cluster
// differential for the netboot file workload.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/fs/fs_cluster.h"
#include "src/obs/metrics.h"

namespace {

using ckfs::ClientFileCache;
using ckfs::FileByte;
using ckfs::FsCluster;
using ckfs::FsClusterConfig;

// ---- cold scan, warm scan, accounting ----

TEST(FsTest, ColdScanFillsCacheAndAccounts) {
  FsClusterConfig config;
  config.clients = 1;
  config.files = 3;
  config.file_pages = 6;
  ASSERT_TRUE(FsCluster(config).Run());  // smoke: world construction is sane

  FsCluster world(config);
  ASSERT_TRUE(world.Run());
  ckfs::FileScanWorkload& scan = world.workload(0);
  EXPECT_TRUE(scan.done());
  EXPECT_FALSE(scan.failed()) << "content verification failed";
  EXPECT_EQ(scan.pages_read(), 3u * 6u);

  const ckfs::FsClientStats& stats = world.cache(0).stats();
  // Every page entered the cache exactly once: demand misses plus useful
  // read-ahead covers the whole tree.
  EXPECT_EQ(stats.misses + stats.readahead_useful, 3u * 6u);
  EXPECT_GT(stats.misses, 0u);
  EXPECT_GT(stats.readahead_issued, 0u) << "sequential scan never armed read-ahead";
  EXPECT_LE(stats.readahead_useful, stats.readahead_issued);
  EXPECT_EQ(stats.invalidations, 0u);
  EXPECT_EQ(stats.stale_bulk_dropped, 0u);

  // Bitmaps: every file fully resident.
  for (uint32_t i = 0; i < config.files; ++i) {
    EXPECT_EQ(world.cache(0).CachedPages(i + 1), config.file_pages);
    EXPECT_EQ(world.cache(0).CachedVersion(i + 1), 1u);
  }
  // The server shipped exactly the installed pages.
  EXPECT_EQ(world.server().fs_stats().pages_shipped, 3u * 6u + stats.stale_bulk_dropped);
}

TEST(FsTest, WarmScanIsZeroWireTraffic) {
  FsClusterConfig config;
  config.clients = 1;
  config.files = 3;
  config.file_pages = 6;
  FsCluster world(config);
  ASSERT_TRUE(world.Run());
  ASSERT_FALSE(world.workload(0).failed());

  uint64_t cold_traffic = world.WireTraffic(0);
  uint64_t cold_hits = world.cache(0).stats().hits;
  ASSERT_GT(cold_traffic, 0u);

  // Re-scan the same tree: every open and every read must be served from
  // the cache without a single packet or bulk payload crossing the link.
  world.workload(0).Resume(1);
  ASSERT_TRUE(world.Run());
  EXPECT_FALSE(world.workload(0).failed());
  EXPECT_EQ(world.WireTraffic(0), cold_traffic) << "warm scan touched the wire";
  EXPECT_EQ(world.cache(0).stats().hits, cold_hits + 3u * 6u);
  EXPECT_EQ(world.cache(0).stats().misses + world.cache(0).stats().readahead_useful, 3u * 6u);
}

TEST(FsTest, FsCountersReachTenantAccountsAndMetrics) {
  FsClusterConfig config;
  config.clients = 1;
  config.files = 2;
  config.file_pages = 4;
  FsCluster world(config);
  ASSERT_TRUE(world.Run());
  world.workload(0).Resume(1);  // some hits
  ASSERT_TRUE(world.Run());

  const ckfs::FsClientStats& stats = world.cache(0).stats();
  // Per-tenant CostAccount attribution: the client kernel's slot carries
  // exactly what the cache recorded.
  uint32_t slot = 0;
  bool found = false;
  const auto& tenants = world.client_ck(0).tenant_accounts();
  for (uint32_t i = 0; i < tenants.size(); ++i) {
    if (tenants[i].fs_hits == stats.hits && tenants[i].fs_misses == stats.misses &&
        stats.hits > 0) {
      slot = i;
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found) << "no tenant slot carries the cache's fs counters";
  if (found) {
    EXPECT_EQ(tenants[slot].fs_readahead_issued, stats.readahead_issued);
    EXPECT_EQ(tenants[slot].fs_readahead_useful, stats.readahead_useful);
    EXPECT_EQ(tenants[slot].fs_invalidations, stats.invalidations);
  }

  // Machine-level ck.fs.* metrics are registered and sum the tenants.
  obs::Registry registry;
  world.client_ck(0).RegisterMetrics(registry);
  std::string json = registry.DumpJson();
  EXPECT_NE(json.find("ck.fs.hits"), std::string::npos);
  EXPECT_NE(json.find("ck.fs.readahead_issued"), std::string::npos);
  EXPECT_NE(json.find("ck.fs.invalidations"), std::string::npos);
}

// ---- versioning ----

TEST(FsTest, InvalidationDropsStalePagesOnAllClients) {
  FsClusterConfig config;
  config.clients = 2;
  config.files = 2;
  config.file_pages = 4;
  FsCluster world(config);
  ASSERT_TRUE(world.Run());
  for (uint32_t c = 0; c < 2; ++c) {
    ASSERT_EQ(world.cache(c).CachedPages(1), 4u);
    ASSERT_EQ(world.cache(c).CachedVersion(1), 1u);
  }

  // Server-side write to file 1 at a barrier; invalidations push to both
  // registered clients.
  ck::CkApi api = world.ServerApi();
  uint8_t patch[16] = {0};
  ASSERT_TRUE(world.server().WriteLocal(1, 100, patch, sizeof(patch), &api));
  ASSERT_EQ(world.server().file_version(1), 2u);

  // Run until both clients have processed the push.
  bool arrived = world.RunUntil(
      [&] {
        return world.cache(0).CachedVersion(1) == 2 && world.cache(1).CachedVersion(1) == 2;
      },
      2000000);
  ASSERT_TRUE(arrived) << "invalidation push never reached the clients";
  for (uint32_t c = 0; c < 2; ++c) {
    EXPECT_EQ(world.cache(c).CachedPages(1), 0u) << "stale bitmap survived on client " << c;
    EXPECT_GE(world.cache(c).stats().invalidations, 1u);
    // The untouched file keeps its pages.
    EXPECT_EQ(world.cache(c).CachedPages(2), 4u);
  }

  // Re-scan: both clients re-fetch file 1 under version 2 and verify its new
  // contents (the workload checks bytes against FileByte under the cached
  // version -- here the server regenerated nothing, so just require success
  // on the unmodified file and fresh fetches on the modified one).
  uint64_t misses_before = world.cache(0).stats().misses;
  world.workload(0).Resume(1);
  world.workload(1).Resume(1);
  ASSERT_TRUE(world.Run());
  EXPECT_GT(world.cache(0).stats().misses, misses_before) << "stale file not re-fetched";
}

TEST(FsTest, ReadaheadNeverReturnsWrongVersionData) {
  // Writes land while scans are in flight: version checks at the ack and at
  // bulk install must discard every stale payload, and the workload's
  // byte-for-byte verification (against the version the cache holds at read
  // time) proves no wrong-version page is ever returned.
  FsClusterConfig config;
  config.clients = 2;
  config.files = 2;
  config.file_pages = 8;
  config.scan_rounds = 4;
  FsCluster world(config);

  // Rewrite file 1 wholesale (so its bytes match FileByte under the new
  // version) a few times, spaced so pushes land mid-scan.
  uint32_t writes_done = 0;
  uint32_t file_len = config.file_pages * cksim::kPageSize - cksim::kPageSize / 2;
  bool ok = world.RunUntil(
      [&] {
        if (writes_done < 4 &&
            world.cluster().Now() > (writes_done + 1) * 60000) {
          ck::CkApi api = world.ServerApi();
          uint32_t version = world.server().file_version(1) + 1;
          std::vector<uint8_t> fresh = ckfs::FileBytes(1, version, file_len);
          world.server().WriteLocal(1, 0, fresh.data(), file_len, &api);
          ++writes_done;
        }
        return world.AllDone();
      },
      40000000);
  ASSERT_TRUE(ok);
  EXPECT_EQ(writes_done, 4u);
  for (uint32_t c = 0; c < 2; ++c) {
    EXPECT_FALSE(world.workload(c).failed())
        << "client " << c << " observed wrong-version data";
    EXPECT_TRUE(world.workload(c).done());
  }
  // The cached copies converge to the final version.
  EXPECT_EQ(world.server().file_version(1), 5u);
}

// ---- replacement ----

TEST(FsTest, LruEvictionUnderFramePoolPressure) {
  FsClusterConfig config;
  config.clients = 1;
  config.files = 16;
  config.file_pages = 16;
  config.scan_rounds = 2;
  config.client_page_groups = 1;  // 128 frames < 16 files * 16 pages
  config.cache.entries = 32;
  config.cache.max_file_pages = 16;
  FsCluster world(config);
  ASSERT_TRUE(world.Run(400000000));
  ckfs::FileScanWorkload& scan = world.workload(0);
  EXPECT_TRUE(scan.done());
  EXPECT_FALSE(scan.failed());

  const ckfs::FsClientStats& stats = world.cache(0).stats();
  EXPECT_GT(stats.evictions, 0u) << "working set exceeds the pool but nothing was evicted";
  EXPECT_LE(world.cache(0).frames_held(), 128u);
  // Round 2 re-misses the evicted files: more misses than one full sweep.
  EXPECT_GT(stats.misses + stats.readahead_issued, 16u * 16u);
}

// ---- protocol odds and ends ----

TEST(FsTest, ReaddirListsTheTree) {
  FsClusterConfig config;
  config.clients = 1;
  config.files = 5;
  config.file_pages = 2;
  FsCluster world(config);
  ASSERT_TRUE(world.Run());

  ClientFileCache::DirListing listing;
  // Drive the poll-style call from a barrier predicate.
  ClientFileCache::Status status = ClientFileCache::Status::kPending;
  bool ok = world.RunUntil(
      [&] {
        ck::CkApi barrier_api = world.ClientApi(0);
        status = world.cache(0).Readdir(barrier_api, &listing);
        return status != ClientFileCache::Status::kPending;
      },
      2000000);
  ASSERT_TRUE(ok);
  ASSERT_EQ(status, ClientFileCache::Status::kHit);
  ASSERT_EQ(listing.entries.size(), 5u);
  for (uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(listing.entries[i].fileid, i + 1);
    EXPECT_EQ(listing.entries[i].version, 1u);
    EXPECT_EQ(listing.names[i], ckfs::FileName(i));
  }
}

// ---- determinism ----

struct DifferentialSnapshot {
  std::vector<cksim::Cycles> clocks;
  std::vector<uint64_t> checksums;
  std::vector<ckfs::FsClientStats> stats;
  std::vector<uint64_t> traffic;
  std::vector<uint64_t> tier_events;  // demotions+promotions+evictions per client
  ckfs::FsServerStats server;

  bool operator==(const DifferentialSnapshot& o) const {
    if (clocks != o.clocks || checksums != o.checksums || traffic != o.traffic ||
        tier_events != o.tier_events) {
      return false;
    }
    for (size_t i = 0; i < stats.size(); ++i) {
      const ckfs::FsClientStats& a = stats[i];
      const ckfs::FsClientStats& b = o.stats[i];
      if (a.hits != b.hits || a.misses != b.misses ||
          a.readahead_issued != b.readahead_issued ||
          a.readahead_useful != b.readahead_useful || a.invalidations != b.invalidations ||
          a.evictions != b.evictions || a.stale_bulk_dropped != b.stale_bulk_dropped ||
          a.opens != b.opens) {
        return false;
      }
    }
    return server.reads == o.server.reads && server.pages_shipped == o.server.pages_shipped &&
           server.writes == o.server.writes &&
           server.invalidations_sent == o.server.invalidations_sent;
  }
};

DifferentialSnapshot RunNetbootWorkload(bool parallel, uint32_t tier_dram_frames = 0) {
  FsClusterConfig config;
  config.clients = 3;
  config.files = 4;
  config.file_pages = 6;
  config.scan_rounds = 3;
  config.parallel = parallel;
  config.tier_dram_frames = tier_dram_frames;
  FsCluster world(config);

  // Deterministic mid-run writes, injected at barriers by simulated time.
  uint32_t writes_done = 0;
  uint32_t file_len = config.file_pages * cksim::kPageSize - cksim::kPageSize / 2;
  world.RunUntil(
      [&] {
        if (writes_done < 2 && world.cluster().Now() > (writes_done + 1) * 400000) {
          ck::CkApi api = world.ServerApi();
          uint32_t version = world.server().file_version(2) + 1;
          std::vector<uint8_t> fresh = ckfs::FileBytes(2, version, file_len);
          world.server().WriteLocal(2, 0, fresh.data(), file_len, &api);
          ++writes_done;
        }
        return world.AllDone();
      },
      40000000);

  DifferentialSnapshot snap;
  snap.clocks = world.FinalClocks();
  for (uint32_t c = 0; c < config.clients; ++c) {
    EXPECT_TRUE(world.workload(c).done());
    EXPECT_FALSE(world.workload(c).failed());
    snap.checksums.push_back(world.workload(c).checksum());
    snap.stats.push_back(world.cache(c).stats());
    snap.traffic.push_back(world.WireTraffic(c));
    const ck::CkStats& ck_stats = world.client_ck(c).stats();
    snap.tier_events.push_back(ck_stats.tier_demotions + ck_stats.tier_promotions +
                               ck_stats.tier_evictions);
  }
  snap.server = world.server().fs_stats();
  return snap;
}

TEST(FsTest, NetbootWorkloadSerialParallelBitExact) {
  DifferentialSnapshot serial = RunNetbootWorkload(/*parallel=*/false);
  DifferentialSnapshot parallel = RunNetbootWorkload(/*parallel=*/true);
  EXPECT_TRUE(serial == parallel)
      << "parallel cluster execution diverged from the serial reference";
  // And the workload did real distributed work.
  EXPECT_GT(serial.server.pages_shipped, 0u);
  EXPECT_GT(serial.stats[0].hits, 0u);
}

// Same differential with tiered physical memory squeezing the client
// kernels: file-cache pages (tier-tagged through the SRM's frame-pool hook)
// must demote/promote identically under the serial and host-parallel
// drivers -- tier transitions happen only at deterministic serial points.
TEST(FsTest, TieredNetbootSerialParallelBitExact) {
  constexpr uint32_t kDramFrames = 24;  // below the clients' working set
  DifferentialSnapshot serial = RunNetbootWorkload(/*parallel=*/false, kDramFrames);
  DifferentialSnapshot parallel = RunNetbootWorkload(/*parallel=*/true, kDramFrames);
  EXPECT_TRUE(serial == parallel)
      << "tiered parallel cluster execution diverged from the serial reference";
  uint64_t total_tier_events = 0;
  for (uint64_t events : serial.tier_events) {
    total_tier_events += events;
  }
  EXPECT_GT(total_tier_events, 0u) << "DRAM squeeze produced no tier traffic";
  for (uint32_t c = 0; c < serial.checksums.size(); ++c) {
    EXPECT_TRUE(serial.checksums[c] != 0u);
  }
}

}  // namespace

// Cache Kernel object lifecycle: load/unload, identifiers going stale,
// writeback cascades (Figure 6), reclamation, locking, resource enforcement.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/ck/cache_kernel.h"
#include "src/sim/machine.h"

namespace {

using ck::CacheKernel;
using ck::CacheKernelConfig;
using ck::CkApi;
using ck::GroupAccess;
using ck::KernelId;
using ck::MappingSpec;
using ck::SpaceId;
using ck::ThreadId;
using ck::ThreadSpec;
using ckbase::CkStatus;

// Records every upcall it receives.
class RecordingKernel : public ck::AppKernel {
 public:
  ck::HandlerAction HandleFault(const ck::FaultForward& fault, CkApi&) override {
    events.push_back("fault@" + std::to_string(fault.fault.address));
    return ck::HandlerAction::kTerminate;
  }
  ck::TrapAction HandleTrap(const ck::TrapForward& trap, CkApi&) override {
    events.push_back("trap#" + std::to_string(trap.number));
    return ck::TrapAction{};
  }
  void OnMappingWriteback(const ck::MappingWriteback& record, CkApi&) override {
    events.push_back("wb-map@" + std::to_string(record.vaddr));
    mapping_writebacks.push_back(record);
  }
  void OnThreadWriteback(const ck::ThreadWriteback& record, CkApi&) override {
    events.push_back("wb-thread#" + std::to_string(record.cookie));
    thread_writebacks.push_back(record);
  }
  void OnSpaceWriteback(const ck::SpaceWriteback& record, CkApi&) override {
    events.push_back("wb-space#" + std::to_string(record.cookie));
    space_writebacks.push_back(record);
  }
  void OnKernelWriteback(const ck::KernelWriteback& record, CkApi&) override {
    events.push_back("wb-kernel#" + std::to_string(record.cookie));
    kernel_writebacks.push_back(record);
  }

  std::vector<std::string> events;
  std::vector<ck::MappingWriteback> mapping_writebacks;
  std::vector<ck::ThreadWriteback> thread_writebacks;
  std::vector<ck::SpaceWriteback> space_writebacks;
  std::vector<ck::KernelWriteback> kernel_writebacks;
};

class CkObjectsTest : public ::testing::Test {
 protected:
  CkObjectsTest() { Init(CacheKernelConfig()); }

  void Init(const CacheKernelConfig& config) {
    cksim::MachineConfig mc;
    mc.memory_bytes = 8u << 20;
    machine_ = std::make_unique<cksim::Machine>(mc);
    ck_ = std::make_unique<CacheKernel>(*machine_, config);
    first_id_ = ck_->BootFirstKernel(&first_, 0);
  }

  CkApi Api() { return CkApi(*ck_, first_id_, machine_->cpu(0)); }

  // A valid frame owned by the first kernel.
  cksim::PhysAddr Frame(uint32_t n) { return 0x100000 + n * cksim::kPageSize; }

  std::unique_ptr<cksim::Machine> machine_;
  std::unique_ptr<CacheKernel> ck_;
  RecordingKernel first_;
  KernelId first_id_;
};

TEST_F(CkObjectsTest, BootedKernelHasFullAuthority) {
  EXPECT_TRUE(first_id_.valid());
  EXPECT_TRUE(ck_->IsKernelLoaded(first_id_));
  EXPECT_EQ(ck_->loaded_count(ck::ObjectType::kKernel), 1u);
}

TEST_F(CkObjectsTest, SpaceLoadUnloadAndStaleId) {
  CkApi api = Api();
  ckbase::Result<SpaceId> space = api.LoadSpace(/*cookie=*/7);
  ASSERT_TRUE(space.ok());
  EXPECT_TRUE(ck_->IsSpaceLoaded(space.value()));

  EXPECT_EQ(api.UnloadSpace(space.value()), CkStatus::kOk);
  EXPECT_FALSE(ck_->IsSpaceLoaded(space.value()));
  ASSERT_EQ(first_.space_writebacks.size(), 1u);
  EXPECT_EQ(first_.space_writebacks[0].cookie, 7u);

  // The old identifier is stale forever.
  EXPECT_EQ(api.UnloadSpace(space.value()), CkStatus::kStale);

  // A reload returns a NEW identifier, even if the slot is reused.
  ckbase::Result<SpaceId> space2 = api.LoadSpace(7);
  ASSERT_TRUE(space2.ok());
  EXPECT_FALSE(space.value() == space2.value());
}

TEST_F(CkObjectsTest, ThreadLoadRequiresLiveSpace) {
  CkApi api = Api();
  ckbase::Result<SpaceId> space = api.LoadSpace(1);
  ASSERT_TRUE(space.ok());

  ThreadSpec spec;
  spec.space = space.value();
  spec.cookie = 11;
  spec.priority = 5;
  ckbase::Result<ThreadId> thread = api.LoadThread(spec);
  ASSERT_TRUE(thread.ok());

  // Unload the space: the thread must have been written back with it
  // (Figure 6 dependency).
  ASSERT_EQ(api.UnloadSpace(space.value()), CkStatus::kOk);
  EXPECT_FALSE(ck_->IsThreadLoaded(thread.value()));
  ASSERT_EQ(first_.thread_writebacks.size(), 1u);
  EXPECT_EQ(first_.thread_writebacks[0].cookie, 11u);

  // Loading a thread against the stale space id fails with kStale; the
  // application kernel is expected to reload the space and retry.
  ckbase::Result<ThreadId> retry = api.LoadThread(spec);
  EXPECT_FALSE(retry.ok());
  EXPECT_EQ(retry.status(), CkStatus::kStale);
}

TEST_F(CkObjectsTest, WritebackOrderThreadsAndMappingsBeforeSpace) {
  CkApi api = Api();
  ckbase::Result<SpaceId> space = api.LoadSpace(3);
  ASSERT_TRUE(space.ok());
  ThreadSpec tspec;
  tspec.space = space.value();
  tspec.cookie = 21;
  ASSERT_TRUE(api.LoadThread(tspec).ok());

  MappingSpec mspec;
  mspec.space = space.value();
  mspec.vaddr = 0x4000;
  mspec.paddr = Frame(1);
  mspec.flags.writable = true;
  ASSERT_EQ(api.LoadMapping(mspec), CkStatus::kOk);

  first_.events.clear();
  ASSERT_EQ(api.UnloadSpace(space.value()), CkStatus::kOk);
  // "Before an address space object is written back, all the page mappings
  // ... and all the associated threads are written back."
  ASSERT_EQ(first_.events.size(), 3u);
  EXPECT_EQ(first_.events[0], "wb-thread#21");
  EXPECT_EQ(first_.events[1], "wb-map@16384");
  EXPECT_EQ(first_.events[2], "wb-space#3");
}

TEST_F(CkObjectsTest, MappingRequiresAlignmentAndAuthorizedMemory) {
  CkApi api = Api();
  ckbase::Result<SpaceId> space = api.LoadSpace(1);
  ASSERT_TRUE(space.ok());

  MappingSpec spec;
  spec.space = space.value();
  spec.vaddr = 0x4001;  // unaligned
  spec.paddr = Frame(0);
  EXPECT_EQ(api.LoadMapping(spec), CkStatus::kInvalidArgument);

  spec.vaddr = 0x4000;
  spec.paddr = 0xff000000;  // outside physical memory
  EXPECT_EQ(api.LoadMapping(spec), CkStatus::kInvalidArgument);

  // Second kernel with NO memory grant: denied.
  RecordingKernel second;
  ckbase::Result<KernelId> second_id = api.LoadKernel(&second, 1);
  ASSERT_TRUE(second_id.ok());
  CkApi api2(*ck_, second_id.value(), machine_->cpu(0));
  ckbase::Result<SpaceId> space2 = api2.LoadSpace(1);
  ASSERT_TRUE(space2.ok());
  MappingSpec spec2;
  spec2.space = space2.value();
  spec2.vaddr = 0x4000;
  spec2.paddr = Frame(0);
  EXPECT_EQ(api2.LoadMapping(spec2), CkStatus::kDenied);

  // Grant read-only: read mapping OK, writable mapping denied.
  uint32_t group = Frame(0) / cksim::kPageGroupBytes;
  ASSERT_EQ(api.GrantPageGroups(second_id.value(), group, 1, GroupAccess::kRead), CkStatus::kOk);
  EXPECT_EQ(api2.LoadMapping(spec2), CkStatus::kOk);
  spec2.vaddr = 0x5000;
  spec2.flags.writable = true;
  EXPECT_EQ(api2.LoadMapping(spec2), CkStatus::kDenied);
}

TEST_F(CkObjectsTest, OnlyFirstKernelManagesKernels) {
  CkApi api = Api();
  RecordingKernel second;
  ckbase::Result<KernelId> second_id = api.LoadKernel(&second, 1);
  ASSERT_TRUE(second_id.ok());

  CkApi api2(*ck_, second_id.value(), machine_->cpu(0));
  RecordingKernel third;
  EXPECT_EQ(api2.LoadKernel(&third, 2).status(), CkStatus::kDenied);
  EXPECT_EQ(api2.UnloadKernel(second_id.value()), CkStatus::kDenied);
  uint8_t percent[ck::kMaxCpus] = {50, 50, 50, 50};
  EXPECT_EQ(api2.SetCpuQuota(second_id.value(), percent, 10), CkStatus::kDenied);

  // The first kernel cannot unload itself.
  EXPECT_EQ(api.UnloadKernel(first_id_), CkStatus::kDenied);
}

TEST_F(CkObjectsTest, KernelUnloadCascadesEverything) {
  CkApi api = Api();
  RecordingKernel second;
  ckbase::Result<KernelId> second_id = api.LoadKernel(&second, 42);
  ASSERT_TRUE(second_id.ok());
  uint32_t group = Frame(0) / cksim::kPageGroupBytes;
  ASSERT_EQ(api.GrantPageGroups(second_id.value(), group, 1, GroupAccess::kReadWrite),
            CkStatus::kOk);

  CkApi api2(*ck_, second_id.value(), machine_->cpu(0));
  ckbase::Result<SpaceId> space = api2.LoadSpace(5);
  ASSERT_TRUE(space.ok());
  ThreadSpec tspec;
  tspec.space = space.value();
  tspec.cookie = 50;
  ASSERT_TRUE(api2.LoadThread(tspec).ok());
  MappingSpec mspec;
  mspec.space = space.value();
  mspec.vaddr = 0x8000;
  mspec.paddr = Frame(0);
  ASSERT_EQ(api2.LoadMapping(mspec), CkStatus::kOk);

  ASSERT_EQ(api.UnloadKernel(second_id.value()), CkStatus::kOk);
  // The second kernel got its objects back...
  ASSERT_EQ(second.thread_writebacks.size(), 1u);
  ASSERT_EQ(second.mapping_writebacks.size(), 1u);
  ASSERT_EQ(second.space_writebacks.size(), 1u);
  // ...and the manager (first kernel) got the kernel object.
  ASSERT_EQ(first_.kernel_writebacks.size(), 1u);
  EXPECT_EQ(first_.kernel_writebacks[0].cookie, 42u);
  EXPECT_FALSE(ck_->IsKernelLoaded(second_id.value()));
  EXPECT_FALSE(ck_->IsSpaceLoaded(space.value()));
}

TEST_F(CkObjectsTest, MappingWritebackCarriesReferencedModifiedBits) {
  CkApi api = Api();
  ckbase::Result<SpaceId> space = api.LoadSpace(1);
  ASSERT_TRUE(space.ok());
  MappingSpec spec;
  spec.space = space.value();
  spec.vaddr = 0x4000;
  spec.paddr = Frame(2);
  spec.flags.writable = true;
  ASSERT_EQ(api.LoadMapping(spec), CkStatus::kOk);

  // Touch through the MMU as the hardware would.
  cksim::Mmu::TranslateResult t =
      machine_->cpu(0).mmu().Translate(0, 0, 0, cksim::Access::kRead);  // warm-up no-op
  (void)t;
  // Use QueryMapping before/after a simulated write.
  ckbase::Result<ck::MappingInfo> info = api.QueryMapping(space.value(), 0x4000);
  ASSERT_TRUE(info.ok());
  EXPECT_FALSE(info.value().modified);

  // Fake a hardware write: translate with the space's root and asid. The
  // space slot doubles as the asid; slot of the first loaded space is 0.
  // (A full guest-driven version of this lives in ck_guest_test.)
  ASSERT_EQ(api.UnloadMapping(space.value(), 0x4000), CkStatus::kOk);
  ASSERT_EQ(first_.mapping_writebacks.size(), 1u);
  EXPECT_EQ(first_.mapping_writebacks[0].pframe, Frame(2) >> cksim::kPageShift);
  EXPECT_TRUE(first_.mapping_writebacks[0].writable);
}

TEST_F(CkObjectsTest, MappingReplaceAtSameVaddr) {
  CkApi api = Api();
  ckbase::Result<SpaceId> space = api.LoadSpace(1);
  ASSERT_TRUE(space.ok());
  MappingSpec spec;
  spec.space = space.value();
  spec.vaddr = 0x4000;
  spec.paddr = Frame(3);
  ASSERT_EQ(api.LoadMapping(spec), CkStatus::kOk);
  spec.paddr = Frame(4);
  ASSERT_EQ(api.LoadMapping(spec), CkStatus::kOk);
  // The first mapping was written back by the replacement.
  ASSERT_EQ(first_.mapping_writebacks.size(), 1u);
  EXPECT_EQ(first_.mapping_writebacks[0].pframe, Frame(3) >> cksim::kPageShift);
  ckbase::Result<ck::MappingInfo> info = api.QueryMapping(space.value(), 0x4000);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().paddr, Frame(4));
  EXPECT_EQ(ck_->loaded_count(ck::ObjectType::kMapping), 1u);
}

TEST_F(CkObjectsTest, ThreadPoolReclaimsVictimOnOverflow) {
  CacheKernelConfig config;
  config.thread_slots = 4;
  Init(config);
  CkApi api = Api();
  ckbase::Result<SpaceId> space = api.LoadSpace(1);
  ASSERT_TRUE(space.ok());

  std::vector<ThreadId> threads;
  for (uint32_t i = 0; i < 6; ++i) {
    ThreadSpec spec;
    spec.space = space.value();
    spec.cookie = 100 + i;
    spec.start_blocked = true;  // blocked threads are preferred victims
    ckbase::Result<ThreadId> t = api.LoadThread(spec);
    ASSERT_TRUE(t.ok()) << "load " << i;
    threads.push_back(t.value());
  }
  // Two oldest were reclaimed by writeback.
  EXPECT_EQ(ck_->loaded_count(ck::ObjectType::kThread), 4u);
  EXPECT_EQ(first_.thread_writebacks.size(), 2u);
  EXPECT_EQ(first_.thread_writebacks[0].cookie, 100u);
  EXPECT_EQ(first_.thread_writebacks[1].cookie, 101u);
  EXPECT_FALSE(ck_->IsThreadLoaded(threads[0]));
  EXPECT_TRUE(ck_->IsThreadLoaded(threads[5]));
  EXPECT_EQ(ck_->stats().reclamations[static_cast<int>(ck::ObjectType::kThread)], 2u);
}

TEST_F(CkObjectsTest, LockedChainSurvivesReclamation) {
  CacheKernelConfig config;
  config.thread_slots = 2;
  Init(config);
  CkApi api = Api();
  // Locked space in a locked kernel: the chain holds.
  ckbase::Result<SpaceId> space = api.LoadSpace(1, /*locked=*/true);
  ASSERT_TRUE(space.ok());

  ThreadSpec locked_spec;
  locked_spec.space = space.value();
  locked_spec.cookie = 1;
  locked_spec.locked = true;
  locked_spec.start_blocked = true;
  ckbase::Result<ThreadId> locked_thread = api.LoadThread(locked_spec);
  ASSERT_TRUE(locked_thread.ok());

  ThreadSpec plain_spec;
  plain_spec.space = space.value();
  plain_spec.cookie = 2;
  plain_spec.start_blocked = true;
  ASSERT_TRUE(api.LoadThread(plain_spec).ok());

  // Overflow: the unlocked thread must be the victim.
  plain_spec.cookie = 3;
  ASSERT_TRUE(api.LoadThread(plain_spec).ok());
  EXPECT_TRUE(ck_->IsThreadLoaded(locked_thread.value()));
  ASSERT_EQ(first_.thread_writebacks.size(), 1u);
  EXPECT_EQ(first_.thread_writebacks[0].cookie, 2u);
}

TEST_F(CkObjectsTest, ExplicitUnloadIgnoresLocks) {
  CkApi api = Api();
  ckbase::Result<SpaceId> space = api.LoadSpace(1, /*locked=*/true);
  ASSERT_TRUE(space.ok());
  ThreadSpec spec;
  spec.space = space.value();
  spec.cookie = 9;
  spec.locked = true;
  ckbase::Result<ThreadId> thread = api.LoadThread(spec);
  ASSERT_TRUE(thread.ok());
  // "Locked dependent objects are unloaded the same as unlocked objects"
  // under an explicit request.
  EXPECT_EQ(api.UnloadThread(thread.value()), CkStatus::kOk);
  EXPECT_EQ(api.UnloadSpace(space.value()), CkStatus::kOk);
}

TEST_F(CkObjectsTest, LockLimitsEnforced) {
  CkApi api = Api();
  RecordingKernel second;
  ckbase::Result<KernelId> second_id = api.LoadKernel(&second, 1);
  ASSERT_TRUE(second_id.ok());
  uint8_t limits[ck::kObjectTypeCount] = {0, 1, 0, 0};  // one locked space only
  ASSERT_EQ(api.SetLockLimits(second_id.value(), limits), CkStatus::kOk);

  CkApi api2(*ck_, second_id.value(), machine_->cpu(0));
  ckbase::Result<SpaceId> s1 = api2.LoadSpace(1, /*locked=*/true);
  EXPECT_TRUE(s1.ok());
  ckbase::Result<SpaceId> s2 = api2.LoadSpace(2, /*locked=*/true);
  EXPECT_FALSE(s2.ok());
  EXPECT_EQ(s2.status(), CkStatus::kDenied);
  // Unlocked loads remain fine.
  EXPECT_TRUE(api2.LoadSpace(3).ok());
}

TEST_F(CkObjectsTest, PriorityCapEnforced) {
  CkApi api = Api();
  RecordingKernel second;
  ckbase::Result<KernelId> second_id = api.LoadKernel(&second, 1);
  ASSERT_TRUE(second_id.ok());
  uint8_t percent[ck::kMaxCpus] = {100, 100, 100, 100};
  ASSERT_EQ(api.SetCpuQuota(second_id.value(), percent, /*max_priority=*/10), CkStatus::kOk);

  CkApi api2(*ck_, second_id.value(), machine_->cpu(0));
  ckbase::Result<SpaceId> space = api2.LoadSpace(1);
  ASSERT_TRUE(space.ok());
  ThreadSpec spec;
  spec.space = space.value();
  spec.priority = 11;  // above the cap
  EXPECT_EQ(api2.LoadThread(spec).status(), CkStatus::kDenied);
  spec.priority = 10;
  ckbase::Result<ThreadId> t = api2.LoadThread(spec);
  ASSERT_TRUE(t.ok());
  // SetThreadPriority is capped too.
  EXPECT_EQ(api2.SetThreadPriority(t.value(), 12), CkStatus::kDenied);
  EXPECT_EQ(api2.SetThreadPriority(t.value(), 3), CkStatus::kOk);
}

TEST_F(CkObjectsTest, RevokingPageGroupEvictsMappings) {
  CkApi api = Api();
  RecordingKernel second;
  ckbase::Result<KernelId> second_id = api.LoadKernel(&second, 1);
  ASSERT_TRUE(second_id.ok());
  uint32_t group = Frame(0) / cksim::kPageGroupBytes;
  ASSERT_EQ(api.GrantPageGroups(second_id.value(), group, 1, GroupAccess::kReadWrite),
            CkStatus::kOk);

  CkApi api2(*ck_, second_id.value(), machine_->cpu(0));
  ckbase::Result<SpaceId> space = api2.LoadSpace(1);
  ASSERT_TRUE(space.ok());
  MappingSpec spec;
  spec.space = space.value();
  spec.vaddr = 0x4000;
  spec.paddr = Frame(0);
  spec.flags.writable = true;
  ASSERT_EQ(api2.LoadMapping(spec), CkStatus::kOk);

  // Revoke: the loaded mapping must be evicted, not just future ones denied.
  ASSERT_EQ(api.GrantPageGroups(second_id.value(), group, 1, GroupAccess::kNone), CkStatus::kOk);
  EXPECT_EQ(second.mapping_writebacks.size(), 1u);
  EXPECT_FALSE(api2.QueryMapping(space.value(), 0x4000).ok());
}

TEST_F(CkObjectsTest, UnloadMappingRangeSweeps) {
  CkApi api = Api();
  ckbase::Result<SpaceId> space = api.LoadSpace(1);
  ASSERT_TRUE(space.ok());
  for (uint32_t i = 0; i < 4; ++i) {
    MappingSpec spec;
    spec.space = space.value();
    spec.vaddr = 0x10000 + i * cksim::kPageSize;
    spec.paddr = Frame(i);
    ASSERT_EQ(api.LoadMapping(spec), CkStatus::kOk);
  }
  EXPECT_EQ(api.UnloadMappingRange(space.value(), 0x10000, 8), CkStatus::kOk);
  EXPECT_EQ(first_.mapping_writebacks.size(), 4u);
  EXPECT_EQ(ck_->loaded_count(ck::ObjectType::kMapping), 0u);
}

TEST_F(CkObjectsTest, Table1DescriptorSizes) {
  // Our MemMapEntry must match the paper exactly; the other descriptors are
  // reported by the table1 bench (host padding differs from a 68040).
  EXPECT_EQ(CacheKernel::kMappingEntryBytes, 16u);
  EXPECT_LE(CacheKernel::kSpaceObjectBytes, 96u) << "AddrSpace descriptor should stay small";
  EXPECT_GE(CacheKernel::kKernelObjectBytes, cksim::kAccessArrayBytes)
      << "kernel object embeds the 2 KiB access array";
}

TEST_F(CkObjectsTest, DefaultCapacitiesMatchTable1) {
  EXPECT_EQ(ck_->capacity(ck::ObjectType::kKernel), 16u);
  EXPECT_EQ(ck_->capacity(ck::ObjectType::kSpace), 64u);
  EXPECT_EQ(ck_->capacity(ck::ObjectType::kThread), 256u);
  EXPECT_EQ(ck_->capacity(ck::ObjectType::kMapping), 65536u);
}

}  // namespace

// Scheduling: fixed priorities, round-robin time slicing within a priority,
// priority preemption, and per-kernel processor quotas (section 4.3).

#include <gtest/gtest.h>

#include "src/appkernel/coschedule.h"
#include "tests/test_harness.h"

namespace {

using ckbase::CkStatus;
using cktest::TestWorld;

// Native program that spins, recording how many steps it got.
class Spinner : public ck::NativeProgram {
 public:
  explicit Spinner(cksim::Cycles per_step = 500) : per_step_(per_step) {}
  ck::NativeOutcome Step(ck::NativeCtx& ctx) override {
    ctx.Charge(per_step_);
    ++steps;
    ck::NativeOutcome outcome;
    outcome.action = ck::NativeOutcome::Action::kYield;
    return outcome;
  }
  uint64_t steps = 0;

 private:
  cksim::Cycles per_step_;
};

TEST(SchedTest, HigherPriorityRunsFirst) {
  TestWorld world;
  ckapp::AppKernelBase app("sched-app", 64);
  world.Launch(app);
  ck::CkApi api(world.ck(), app.self(), world.machine().cpu(0));
  uint32_t space = app.CreateSpace(api);

  Spinner low, high;
  app.CreateNativeThread(api, space, &low, /*priority=*/5, false, /*cpu=*/1);
  app.CreateNativeThread(api, space, &high, /*priority=*/20, false, /*cpu=*/1);
  world.machine().RunFor(200000);
  // Both spin forever; the high-priority one must monopolize the CPU.
  EXPECT_GT(high.steps, 100u);
  EXPECT_EQ(low.steps, 0u) << "a lower-priority thread must starve under a spinning higher one";
}

TEST(SchedTest, RoundRobinWithinPriority) {
  TestWorld world;
  ckapp::AppKernelBase app("sched-app", 64);
  world.Launch(app);
  ck::CkApi api(world.ck(), app.self(), world.machine().cpu(0));
  uint32_t space = app.CreateSpace(api);

  Spinner a, b, c;
  app.CreateNativeThread(api, space, &a, 10, false, 1);
  app.CreateNativeThread(api, space, &b, 10, false, 1);
  app.CreateNativeThread(api, space, &c, 10, false, 1);
  world.machine().RunFor(1000000);
  // Time slicing must share the processor roughly equally.
  uint64_t total = a.steps + b.steps + c.steps;
  ASSERT_GT(total, 0u);
  EXPECT_GT(a.steps, total / 6);
  EXPECT_GT(b.steps, total / 6);
  EXPECT_GT(c.steps, total / 6);
  EXPECT_GT(world.ck().stats().preemptions, 3u) << "slice expiry must rotate the queue";
}

TEST(SchedTest, PriorityPreemptionOnWakeup) {
  TestWorld world;
  ckapp::AppKernelBase app("sched-app", 64);
  world.Launch(app);
  ck::CkApi api(world.ck(), app.self(), world.machine().cpu(0));
  uint32_t space = app.CreateSpace(api);

  Spinner low;
  app.CreateNativeThread(api, space, &low, 5, false, 1);
  world.machine().RunFor(100000);
  uint64_t low_before = low.steps;
  ASSERT_GT(low_before, 0u);

  // Wake a high-priority thread: it must preempt the spinner promptly.
  Spinner high;
  app.CreateNativeThread(api, space, &high, 25, false, 1);
  world.machine().RunFor(200000);
  EXPECT_GT(high.steps, 50u);
  EXPECT_LT(low.steps - low_before, high.steps / 4) << "low priority mostly preempted";
}

TEST(SchedTest, CpuQuotaDegradesRogueKernel) {
  TestWorld world;
  ckapp::AppKernelBase rogue("rogue", 64);
  ckapp::AppKernelBase polite("polite", 64);
  // Rogue gets 20% of cpu 1; polite gets 100%.
  {
    cksrm::LaunchParams params;
    params.page_groups = 1;
    params.cpu_percent[0] = 100;
    params.cpu_percent[1] = 20;
    params.cpu_percent[2] = 100;
    params.cpu_percent[3] = 100;
    ASSERT_TRUE(world.srm().Launch(rogue, params).ok());
  }
  {
    cksrm::LaunchParams params;
    params.page_groups = 1;
    ASSERT_TRUE(world.srm().Launch(polite, params).ok());
  }
  ck::CkApi rogue_api(world.ck(), rogue.self(), world.machine().cpu(0));
  ck::CkApi polite_api(world.ck(), polite.self(), world.machine().cpu(0));
  uint32_t rogue_space = rogue.CreateSpace(rogue_api);
  uint32_t polite_space = polite.CreateSpace(polite_api);

  // Same priority: without quotas they would split 50/50.
  Spinner rogue_spin, polite_spin;
  rogue.CreateNativeThread(rogue_api, rogue_space, &rogue_spin, 10, false, 1);
  polite.CreateNativeThread(polite_api, polite_space, &polite_spin, 10, false, 1);

  world.machine().RunFor(8 * world.ck().config().quota_window);
  uint64_t total = rogue_spin.steps + polite_spin.steps;
  ASSERT_GT(total, 0u);
  double rogue_share = static_cast<double>(rogue_spin.steps) / static_cast<double>(total);
  // The rogue must be held near its 20% grant (allow scheduling slack).
  EXPECT_LT(rogue_share, 0.40) << "rogue got " << rogue_share;
  EXPECT_GT(world.ck().stats().quota_degradations, 0u);
}

TEST(SchedTest, OverQuotaKernelStillRunsWhenIdle) {
  TestWorld world;
  ckapp::AppKernelBase rogue("rogue", 64);
  cksrm::LaunchParams params;
  params.page_groups = 1;
  params.cpu_percent[1] = 10;
  ASSERT_TRUE(world.srm().Launch(rogue, params).ok());
  ck::CkApi api(world.ck(), rogue.self(), world.machine().cpu(0));
  uint32_t space = rogue.CreateSpace(api);
  Spinner spin;
  rogue.CreateNativeThread(api, space, &spin, 10, false, 1);

  // Nothing else wants cpu 1: the over-quota kernel keeps running ("only run
  // when the processor is otherwise idle").
  world.machine().RunFor(4 * world.ck().config().quota_window);
  uint64_t mid = spin.steps;
  world.machine().RunFor(4 * world.ck().config().quota_window);
  EXPECT_GT(spin.steps, mid) << "idle processor still serves the degraded kernel";
}

TEST(SchedTest, QuotaDisabledSplitsEvenly) {
  cktest::WorldOptions options;
  options.ck.enforce_quotas = false;
  TestWorld world(options);
  ckapp::AppKernelBase a("a", 64), b("b", 64);
  cksrm::LaunchParams pa;
  pa.page_groups = 1;
  pa.cpu_percent[1] = 20;  // would throttle if enforcement were on
  ASSERT_TRUE(world.srm().Launch(a, pa).ok());
  cksrm::LaunchParams pb;
  pb.page_groups = 1;
  ASSERT_TRUE(world.srm().Launch(b, pb).ok());
  ck::CkApi api_a(world.ck(), a.self(), world.machine().cpu(0));
  ck::CkApi api_b(world.ck(), b.self(), world.machine().cpu(0));
  Spinner sa, sb;
  a.CreateNativeThread(api_a, a.CreateSpace(api_a), &sa, 10, false, 1);
  b.CreateNativeThread(api_b, b.CreateSpace(api_b), &sb, 10, false, 1);
  world.machine().RunFor(8 * world.ck().config().quota_window);
  uint64_t total = sa.steps + sb.steps;
  double share_a = static_cast<double>(sa.steps) / static_cast<double>(total);
  EXPECT_GT(share_a, 0.35);
  EXPECT_LT(share_a, 0.65);
}

TEST(SchedTest, ThreadsSpreadAcrossCpus) {
  TestWorld world;
  ckapp::AppKernelBase app("spread", 64);
  world.Launch(app);
  ck::CkApi api(world.ck(), app.self(), world.machine().cpu(0));
  uint32_t space = app.CreateSpace(api);
  std::vector<std::unique_ptr<Spinner>> spinners;
  for (int i = 0; i < 8; ++i) {
    spinners.push_back(std::make_unique<Spinner>());
    app.CreateNativeThread(api, space, spinners.back().get(), 10);  // no hint: round-robin
  }
  world.machine().RunFor(500000);
  for (auto& s : spinners) {
    EXPECT_GT(s->steps, 0u) << "round-robin placement must give every thread a processor";
  }
}

TEST(SchedTest, BlockAndResumeCalls) {
  TestWorld world;
  ckapp::AppKernelBase app("blocker", 64);
  world.Launch(app);
  ck::CkApi api(world.ck(), app.self(), world.machine().cpu(0));
  uint32_t space = app.CreateSpace(api);
  Spinner spin;
  uint32_t t = app.CreateNativeThread(api, space, &spin, 10, false, 1);
  world.machine().RunFor(100000);
  uint64_t before = spin.steps;
  ASSERT_GT(before, 0u);

  // Force the thread to block from outside (the owner's prerogative).
  ASSERT_EQ(api.BlockThread(app.thread(t).ck_id), CkStatus::kOk);
  world.machine().RunFor(100000);
  EXPECT_EQ(spin.steps, before);

  ASSERT_EQ(api.ResumeThread(app.thread(t).ck_id), CkStatus::kOk);
  world.machine().RunFor(100000);
  EXPECT_GT(spin.steps, before);
}

TEST(SchedTest, SetPriorityTakesEffectWithoutReload) {
  TestWorld world;
  ckapp::AppKernelBase app("reprio", 64);
  world.Launch(app);
  ck::CkApi api(world.ck(), app.self(), world.machine().cpu(0));
  uint32_t space = app.CreateSpace(api);
  Spinner a, b;
  uint32_t ta = app.CreateNativeThread(api, space, &a, 20, false, 1);
  app.CreateNativeThread(api, space, &b, 10, false, 1);
  world.machine().RunFor(200000);
  EXPECT_EQ(b.steps, 0u);

  // The special modify call: demote the hog below b without unload/reload.
  ASSERT_EQ(api.SetThreadPriority(app.thread(ta).ck_id, 5), CkStatus::kOk);
  world.machine().RunFor(200000);
  EXPECT_GT(b.steps, 0u);
}

TEST(SchedTest, HighPriorityPremiumExhaustsQuotaSooner) {
  // Section 4.3: "charging a premium for higher priority execution and a
  // discounted charge for lower priority execution". Same quota, same work
  // rate: the high-priority kernel must be degraded earlier/harder.
  auto run = [](uint8_t priority) {
    TestWorld world;
    ckapp::AppKernelBase rogue("premium", 16), victim("victim", 16);
    cksrm::LaunchParams rogue_params;
    rogue_params.page_groups = 1;
    rogue_params.cpu_percent[1] = 30;
    rogue_params.max_priority = 30;
    world.srm().Launch(rogue, rogue_params);
    cksrm::LaunchParams victim_params;
    victim_params.page_groups = 1;
    victim_params.max_priority = 30;
    world.srm().Launch(victim, victim_params);
    ck::CkApi rogue_api(world.ck(), rogue.self(), world.machine().cpu(0));
    ck::CkApi victim_api(world.ck(), victim.self(), world.machine().cpu(0));
    Spinner rogue_spin, victim_spin;
    rogue.CreateNativeThread(rogue_api, rogue.CreateSpace(rogue_api), &rogue_spin, priority,
                             false, 1);
    victim.CreateNativeThread(victim_api, victim.CreateSpace(victim_api), &victim_spin, priority,
                              false, 1);
    world.machine().RunFor(8 * world.ck().config().quota_window);
    return static_cast<double>(rogue_spin.steps) /
           static_cast<double>(rogue_spin.steps + victim_spin.steps);
  };

  double share_low = run(4);    // discounted charging
  double share_high = run(28);  // premium charging
  EXPECT_LT(share_high, share_low)
      << "premium charging must throttle the high-priority kernel harder";
}

TEST(SchedTest, CoSchedulingGangOwnsAllProcessors) {
  // Section 2.3 co-scheduling: a gang of one thread per processor alternates
  // between owning every CPU (raised together) and yielding (dropped
  // together). Competing background spinners on each CPU fill the gaps.
  TestWorld world;
  ckapp::AppKernelBase gang_kernel("gang", 32), other("other", 32);
  world.Launch(gang_kernel, 1, /*max_priority=*/30);
  world.Launch(other, 1, /*max_priority=*/30);
  ck::CkApi gang_api(world.ck(), gang_kernel.self(), world.machine().cpu(0));
  ck::CkApi other_api(world.ck(), other.self(), world.machine().cpu(0));
  uint32_t gang_space = gang_kernel.CreateSpace(gang_api);
  uint32_t other_space = other.CreateSpace(other_api);

  std::vector<std::unique_ptr<Spinner>> gang_spinners, other_spinners;
  std::vector<uint32_t> gang_threads;
  for (uint32_t c = 0; c < world.machine().cpu_count(); ++c) {
    gang_spinners.push_back(std::make_unique<Spinner>());
    gang_threads.push_back(gang_kernel.CreateNativeThread(
        gang_api, gang_space, gang_spinners.back().get(), 10, false, static_cast<uint8_t>(c)));
    other_spinners.push_back(std::make_unique<Spinner>());
    other.CreateNativeThread(other_api, other_space, other_spinners.back().get(), 15, false,
                             static_cast<uint8_t>(c));
  }

  // Without co-scheduling the gang (priority 10) starves under the 15s.
  world.machine().RunFor(300000);
  uint64_t gang_before = 0;
  for (auto& s : gang_spinners) {
    gang_before += s->steps;
  }
  EXPECT_EQ(gang_before, 0u) << "gang starves below the competitors";

  // Co-schedule: raise the gang to 25 for half of every 100k-cycle period.
  ckapp::CoScheduler scheduler(gang_kernel, gang_threads);
  scheduler.Start(gang_api, /*priority=*/25, /*background=*/10, /*window=*/50000,
                  /*period=*/100000);
  world.machine().RunFor(1000000);

  uint64_t gang_total = 0, other_total = 0;
  uint32_t gang_cpus_used = 0;
  for (auto& s : gang_spinners) {
    gang_total += s->steps;
    gang_cpus_used += s->steps > 0 ? 1 : 0;
  }
  for (auto& s : other_spinners) {
    other_total += s->steps;
  }
  EXPECT_EQ(gang_cpus_used, world.machine().cpu_count())
      << "every processor ran its gang member during the windows";
  EXPECT_GT(gang_total, 0u);
  EXPECT_GT(other_total, 0u) << "competitors run in the yielded half";
  EXPECT_GE(scheduler.windows(), 5u);
}

}  // namespace

// Observability subsystem tests: trace rings, the metrics registry, the
// bounded Stats histogram, Chrome trace export, and the Cache Kernel's
// fault-step accounting. The compile-time-disabled CK_TRACE path is exercised
// by obs_trace_disabled.cc, a separate translation unit built with
// -DCK_TRACE_ENABLED=0 and linked into this binary.

#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/appkernel/app_kernel_base.h"
#include "src/base/histogram.h"
#include "src/ck/cache_kernel.h"
#include "src/isa/assembler.h"
#include "src/obs/chrome_trace.h"
#include "src/obs/json_lint.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sim/machine.h"
#include "src/srm/srm.h"

// Implemented in obs_trace_disabled.cc (compiled with CK_TRACE_ENABLED=0).
// Returns the number of times CK_TRACE evaluated its argument expressions
// there; must be zero.
int DisabledTraceEvaluations();

namespace {

// --- TraceRing ---

TEST(TraceRing, RecordsInOrder) {
  obs::TraceRing ring(8, /*cpu=*/3);
  for (uint64_t i = 0; i < 5; ++i) {
    ring.Push(obs::EventType::kObjectLoad, 100 + i, static_cast<uint16_t>(i),
              static_cast<uint32_t>(i * 10));
  }
  EXPECT_EQ(ring.size(), 5u);
  EXPECT_EQ(ring.pushed(), 5u);
  EXPECT_EQ(ring.dropped(), 0u);
  for (size_t i = 0; i < ring.size(); ++i) {
    EXPECT_EQ(ring.at(i).when, 100 + i);
    EXPECT_EQ(ring.at(i).arg32, i * 10);
    EXPECT_EQ(ring.at(i).cpu, 3u);
  }
}

TEST(TraceRing, WraparoundDropsOldest) {
  obs::TraceRing ring(4, 0);
  for (uint64_t i = 0; i < 10; ++i) {
    ring.Push(obs::EventType::kTlbMiss, i, 0, static_cast<uint32_t>(i));
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.pushed(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
  // Retained events are the newest four, oldest first.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(ring.at(i).when, 6 + i);
    EXPECT_EQ(ring.at(i).arg32, 6 + i);
  }
}

TEST(TraceRing, ClearResets) {
  obs::TraceRing ring(4, 0);
  ring.Push(obs::EventType::kContextSwitch, 1, 0, 0);
  ring.Clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.pushed(), 0u);
  ring.Push(obs::EventType::kContextSwitch, 2, 0, 0);
  EXPECT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring.at(0).when, 2u);
}

TEST(Tracer, PerCpuIsolation) {
  obs::Tracer tracer(/*cpu_count=*/4, /*capacity_per_cpu=*/16);
  tracer.ring(0).Push(obs::EventType::kObjectLoad, 1, 0, 0);
  tracer.ring(2).Push(obs::EventType::kObjectLoad, 2, 0, 0);
  tracer.ring(2).Push(obs::EventType::kObjectLoad, 3, 0, 0);
  EXPECT_EQ(tracer.ring(0).size(), 1u);
  EXPECT_EQ(tracer.ring(1).size(), 0u);
  EXPECT_EQ(tracer.ring(2).size(), 2u);
  EXPECT_EQ(tracer.ring(3).size(), 0u);
  EXPECT_EQ(tracer.total_pushed(), 3u);
  EXPECT_EQ(tracer.ring(2).cpu(), 2u);
}

TEST(TraceMacro, NullRingIsSafe) {
  // Runtime-off path: with a null ring the macro is a no-op and -- because
  // the payload expressions sit inside the null test -- they are not even
  // evaluated, so an untraced run pays only the pointer check.
  int evaluations = 0;
  auto arg = [&] {
    ++evaluations;
    return 7u;
  };
  CK_TRACE(nullptr, obs::EventType::kObjectLoad, 1, 0, arg());
  EXPECT_EQ(evaluations, 0);
  obs::TraceRing ring(4, 0);
  CK_TRACE(&ring, obs::EventType::kObjectLoad, 1, 0, arg());
  EXPECT_EQ(evaluations, 1);
  EXPECT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring.at(0).arg32, 7u);
}

TEST(TraceMacro, CompiledOutEvaluatesNothing) { EXPECT_EQ(DisabledTraceEvaluations(), 0); }

TEST(EventTypeNames, AllNamed) {
  std::set<std::string> names;
  for (uint32_t t = 0; t < static_cast<uint32_t>(obs::EventType::kCount); ++t) {
    std::string name = obs::EventTypeName(static_cast<obs::EventType>(t));
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "?");
    names.insert(name);
  }
  // Names are distinct (an exporter can round-trip them).
  EXPECT_EQ(names.size(), static_cast<size_t>(obs::EventType::kCount));
}

// --- Stats (bounded streaming histogram) ---

TEST(Stats, MomentsExactUnderDecimation) {
  ckbase::Stats s;
  double sum = 0;
  for (int i = 1; i <= 100000; ++i) {
    s.Add(i);
    sum += i;
  }
  EXPECT_EQ(s.count(), 100000u);
  EXPECT_DOUBLE_EQ(s.Sum(), sum);
  EXPECT_DOUBLE_EQ(s.Mean(), sum / 100000.0);
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 100000.0);
  // Reservoir is bounded no matter how many samples stream through.
  EXPECT_LE(s.reservoir_size(), ckbase::Stats::kReservoirCap);
  // Percentiles come from the decimated reservoir: approximate, but they
  // must land in the right region for a uniform ramp.
  EXPECT_NEAR(s.Percentile(50), 50000.0, 5000.0);
  EXPECT_NEAR(s.Percentile(95), 95000.0, 5000.0);
  // Streamed stddev of 1..N uniform ramp: N/sqrt(12) ~ 28868.
  EXPECT_NEAR(s.StdDev(), 28867.7, 30.0);
}

TEST(Stats, MergeMatchesCombinedStream) {
  ckbase::Stats a, b, combined;
  for (int i = 0; i < 500; ++i) {
    a.Add(i);
    combined.Add(i);
  }
  for (int i = 500; i < 800; ++i) {
    b.Add(i * 2);
    combined.Add(i * 2);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_DOUBLE_EQ(a.Sum(), combined.Sum());
  EXPECT_DOUBLE_EQ(a.Mean(), combined.Mean());
  EXPECT_DOUBLE_EQ(a.Min(), combined.Min());
  EXPECT_DOUBLE_EQ(a.Max(), combined.Max());
  EXPECT_NEAR(a.StdDev(), combined.StdDev(), 1e-9);
  EXPECT_LE(a.reservoir_size(), ckbase::Stats::kReservoirCap);
}

TEST(Stats, MergeEmptySides) {
  ckbase::Stats a, empty;
  a.Add(3);
  a.Add(5);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.Mean(), 4.0);
  ckbase::Stats c;
  c.Merge(a);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.Max(), 5.0);
}

// --- Registry ---

TEST(Registry, DumpJsonIsValid) {
  obs::Registry registry;
  uint64_t hits = 42;
  registry.AddCounter("test.hits", [&] { return hits; });
  registry.AddCounter("test.with\"quote", [] { return uint64_t{1}; });
  ckbase::Stats lat;
  lat.Add(1.5);
  lat.Add(2.5);
  registry.AddHistogram("test.latency_us", [&] { return lat; });

  std::string json = registry.DumpJson();
  std::string error;
  EXPECT_TRUE(obs::JsonLint(json, &error)) << error << "\n" << json;
  EXPECT_NE(json.find("\"test.hits\":42"), std::string::npos) << json;
  // Dumps read through the closures at call time.
  hits = 43;
  EXPECT_NE(registry.DumpJson().find("\"test.hits\":43"), std::string::npos);
  EXPECT_EQ(registry.counter_count(), 2u);
  EXPECT_EQ(registry.histogram_count(), 1u);
}

// --- integration: a faulting world, end to end ---

class ObsWorldTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cksim::MachineConfig machine_config;
    machine_config.cpu_count = 2;
    machine_ = std::make_unique<cksim::Machine>(machine_config);
    ck_ = std::make_unique<ck::CacheKernel>(*machine_, ck::CacheKernelConfig());
    srm_ = std::make_unique<cksrm::Srm>(*ck_);
    srm_->Boot();
  }

  // Run a guest that touches `pages` unmapped pages, forwarding one fault
  // each, with tracing enabled.
  void RunFaultingGuest(uint32_t pages) {
    machine_->EnableTracing(/*capacity_per_cpu=*/4096);
    app_ = std::make_unique<ckapp::AppKernelBase>("obs-test", 64);
    cksrm::LaunchParams params;
    params.page_groups = 4;
    params.max_priority = 30;
    ASSERT_TRUE(srm_->Launch(*app_, params).ok());
    ck::CkApi api(*ck_, app_->self(), machine_->cpu(0));
    uint32_t space = app_->CreateSpace(api);
    app_->DefineZeroRegion(space, 0x00400000, pages, /*writable=*/true);
    for (uint32_t i = 0; i < pages; ++i) {
      cksim::VirtAddr vaddr = 0x00400000 + i * cksim::kPageSize;
      ckapp::PageRecord* page = app_->space(space).FindPage(vaddr);
      app_->MaterializePage(api, app_->space(space), *page, vaddr);
    }
    ckisa::AssembleResult assembled = ckisa::Assemble(R"(
        li   t0, 0x00400000
        li   t1, )" + std::to_string(pages) + R"(
        li   t3, 4096
      loop:
        lw   t2, 0(t0)
        add  t0, t0, t3
        addi t1, t1, -1
        bne  t1, r0, loop
        halt
    )", 0x10000);
    ASSERT_TRUE(assembled.ok) << assembled.error;
    app_->LoadProgramImage(space, assembled.program, /*writable=*/false);
    ckapp::GuestThreadParams tparams;
    tparams.space_index = space;
    tparams.entry = 0x10000;
    tparams.cpu_hint = 0;
    uint32_t guest = app_->CreateGuestThread(api, tparams);
    for (uint64_t turn = 0; turn < 2000000 && !app_->thread(guest).finished; ++turn) {
      machine_->Step();
    }
    ASSERT_TRUE(app_->thread(guest).finished);
  }

  std::unique_ptr<cksim::Machine> machine_;
  std::unique_ptr<ck::CacheKernel> ck_;
  std::unique_ptr<cksrm::Srm> srm_;
  std::unique_ptr<ckapp::AppKernelBase> app_;
};

TEST_F(ObsWorldTest, KernelEmitsFaultEvents) {
  RunFaultingGuest(8);
  ASSERT_NE(machine_->tracer(), nullptr);
  const obs::TraceRing& ring = machine_->tracer()->ring(0);
  uint32_t trap_entries = 0, resumed = 0, loads = 0;
  uint64_t last_when = 0;
  for (size_t i = 0; i < ring.size(); ++i) {
    const obs::TraceEvent& event = ring.at(i);
    EXPECT_GE(event.when, last_when);  // per-CPU timestamps are monotone
    last_when = event.when;
    switch (static_cast<obs::EventType>(event.type)) {
      case obs::EventType::kFaultTrapEntry:
        trap_entries++;
        break;
      case obs::EventType::kFaultResumed:
        resumed++;
        break;
      case obs::EventType::kObjectLoad:
        loads++;
        break;
      default:
        break;
    }
  }
  EXPECT_GE(trap_entries, 8u);
  EXPECT_GE(resumed, 8u);
  EXPECT_GE(loads, 8u);
}

TEST_F(ObsWorldTest, FaultHistoryAccumulatesEveryFault) {
  RunFaultingGuest(8);
  // Not just the most recent fault: the per-step histograms saw the whole
  // population and the ring retains the last N.
  const ck::FaultStepStats& steps = ck_->fault_step_stats();
  EXPECT_GE(steps.total.count(), 8u);
  EXPECT_EQ(steps.transfer.count(), steps.total.count());
  EXPECT_GE(steps.handle_load.count(), 8u);
  EXPECT_GT(steps.total.Mean(), 0.0);
  EXPECT_GE(ck_->fault_traces_recorded(), 8u);

  std::vector<ck::FaultTrace> history = ck_->FaultHistory();
  ASSERT_GE(history.size(), 8u);
  for (const ck::FaultTrace& t : history) {
    EXPECT_GT(t.trap_entry, 0u);
    EXPECT_GE(t.handler_start, t.trap_entry);
    EXPECT_GE(t.resumed, t.handler_start);
  }
  // The last history entry matches the legacy most-recent accessor.
  EXPECT_EQ(history.back().trap_entry, ck_->last_fault_trace().trap_entry);
  EXPECT_EQ(history.back().resumed, ck_->last_fault_trace().resumed);
}

TEST_F(ObsWorldTest, FaultHistoryRingIsBounded) {
  // Tiny history depth: ring keeps only the newest faults, histograms all.
  ck::CacheKernelConfig config;
  config.fault_history_depth = 4;
  machine_ = std::make_unique<cksim::Machine>(cksim::MachineConfig{});
  ck_ = std::make_unique<ck::CacheKernel>(*machine_, config);
  srm_ = std::make_unique<cksrm::Srm>(*ck_);
  srm_->Boot();
  RunFaultingGuest(12);
  EXPECT_EQ(ck_->FaultHistory().size(), 4u);
  EXPECT_GE(ck_->fault_traces_recorded(), 12u);
  EXPECT_GE(ck_->fault_step_stats().total.count(), 12u);
  // Ring holds the newest traces: strictly increasing trap stamps.
  std::vector<ck::FaultTrace> history = ck_->FaultHistory();
  for (size_t i = 1; i < history.size(); ++i) {
    EXPECT_GT(history[i].trap_entry, history[i - 1].trap_entry);
  }
}

TEST_F(ObsWorldTest, ChromeTraceExportsValidJsonWithFaultSpans) {
  RunFaultingGuest(8);
  std::string json =
      obs::ChromeTraceJson(*machine_->tracer(), static_cast<double>(cksim::kCyclesPerMicrosecond));
  std::string error;
  ASSERT_TRUE(obs::JsonLint(json, &error)) << error;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"fault\""), std::string::npos);
  EXPECT_NE(json.find("fault.handle+load"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // duration spans
  EXPECT_NE(json.find("thread_name"), std::string::npos);   // per-CPU tracks
}

TEST_F(ObsWorldTest, RegisterMetricsExposesKernelState) {
  RunFaultingGuest(8);
  obs::Registry registry;
  ck_->RegisterMetrics(registry);
  EXPECT_GT(registry.counter_count(), 20u);
  EXPECT_EQ(registry.histogram_count(), 4u);
  std::string json = registry.DumpJson();
  std::string error;
  ASSERT_TRUE(obs::JsonLint(json, &error)) << error;
  EXPECT_NE(json.find("\"ck.faults_forwarded\""), std::string::npos);
  EXPECT_NE(json.find("\"ck.fault_us.total\""), std::string::npos);
  EXPECT_NE(json.find("\"hw.tlb.misses.cpu0\""), std::string::npos);
}

// --- JsonLint itself ---

TEST(JsonLint, AcceptsValidRejectsBroken) {
  std::string error;
  EXPECT_TRUE(obs::JsonLint("{}", &error));
  EXPECT_TRUE(obs::JsonLint(R"({"a": [1, 2.5, -3e4], "b": {"c": "d\n"}, "e": null})", &error));
  EXPECT_FALSE(obs::JsonLint("{", &error));
  EXPECT_FALSE(obs::JsonLint(R"({"a": })", &error));
  EXPECT_FALSE(obs::JsonLint(R"({"a": 1} trailing)", &error));
  EXPECT_FALSE(obs::JsonLint(R"({"a": 01})", &error));
}

}  // namespace

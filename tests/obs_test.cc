// Observability subsystem tests: trace rings, the metrics registry, the
// bounded Stats histogram, Chrome trace export, and the Cache Kernel's
// fault-step accounting. The compile-time-disabled CK_TRACE path is exercised
// by obs_trace_disabled.cc, a separate translation unit built with
// -DCK_TRACE_ENABLED=0 and linked into this binary.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/appkernel/app_kernel_base.h"
#include "src/base/histogram.h"
#include "src/ck/cache_kernel.h"
#include "src/isa/assembler.h"
#include "src/obs/chrome_trace.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/json_lint.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sim/machine.h"
#include "src/srm/srm.h"

// Implemented in obs_trace_disabled.cc (compiled with CK_TRACE_ENABLED=0).
// Returns the number of times CK_TRACE evaluated its argument expressions
// there; must be zero.
int DisabledTraceEvaluations();
// Also from obs_trace_disabled.cc: ring wraparound with the macro compiled
// out. Returns 0 on success, a step number on the first failed check.
int DisabledTraceWraparound();

namespace {

// --- TraceRing ---

TEST(TraceRing, RecordsInOrder) {
  obs::TraceRing ring(8, /*cpu=*/3);
  for (uint64_t i = 0; i < 5; ++i) {
    ring.Push(obs::EventType::kObjectLoad, 100 + i, static_cast<uint16_t>(i),
              static_cast<uint32_t>(i * 10));
  }
  EXPECT_EQ(ring.size(), 5u);
  EXPECT_EQ(ring.pushed(), 5u);
  EXPECT_EQ(ring.dropped(), 0u);
  for (size_t i = 0; i < ring.size(); ++i) {
    EXPECT_EQ(ring.at(i).when, 100 + i);
    EXPECT_EQ(ring.at(i).arg32, i * 10);
    EXPECT_EQ(ring.at(i).cpu, 3u);
  }
}

TEST(TraceRing, WraparoundDropsOldest) {
  obs::TraceRing ring(4, 0);
  for (uint64_t i = 0; i < 10; ++i) {
    ring.Push(obs::EventType::kTlbMiss, i, 0, static_cast<uint32_t>(i));
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.pushed(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
  // Retained events are the newest four, oldest first.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(ring.at(i).when, 6 + i);
    EXPECT_EQ(ring.at(i).arg32, 6 + i);
  }
}

TEST(TraceRing, ClearResets) {
  obs::TraceRing ring(4, 0);
  ring.Push(obs::EventType::kContextSwitch, 1, 0, 0);
  ring.Clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.pushed(), 0u);
  ring.Push(obs::EventType::kContextSwitch, 2, 0, 0);
  EXPECT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring.at(0).when, 2u);
}

TEST(Tracer, PerCpuIsolation) {
  obs::Tracer tracer(/*cpu_count=*/4, /*capacity_per_cpu=*/16);
  tracer.ring(0).Push(obs::EventType::kObjectLoad, 1, 0, 0);
  tracer.ring(2).Push(obs::EventType::kObjectLoad, 2, 0, 0);
  tracer.ring(2).Push(obs::EventType::kObjectLoad, 3, 0, 0);
  EXPECT_EQ(tracer.ring(0).size(), 1u);
  EXPECT_EQ(tracer.ring(1).size(), 0u);
  EXPECT_EQ(tracer.ring(2).size(), 2u);
  EXPECT_EQ(tracer.ring(3).size(), 0u);
  EXPECT_EQ(tracer.total_pushed(), 3u);
  EXPECT_EQ(tracer.ring(2).cpu(), 2u);
}

TEST(TraceMacro, NullRingIsSafe) {
  // Runtime-off path: with a null ring the macro is a no-op and -- because
  // the payload expressions sit inside the null test -- they are not even
  // evaluated, so an untraced run pays only the pointer check.
  int evaluations = 0;
  auto arg = [&] {
    ++evaluations;
    return 7u;
  };
  CK_TRACE(nullptr, obs::EventType::kObjectLoad, 1, 0, arg());
  EXPECT_EQ(evaluations, 0);
  obs::TraceRing ring(4, 0);
  CK_TRACE(&ring, obs::EventType::kObjectLoad, 1, 0, arg());
  EXPECT_EQ(evaluations, 1);
  EXPECT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring.at(0).arg32, 7u);
}

TEST(TraceMacro, CompiledOutEvaluatesNothing) { EXPECT_EQ(DisabledTraceEvaluations(), 0); }

TEST(TraceMacro, WraparoundWithMacroEnabled) {
  // Same wraparound shape as WraparoundDropsOldest, but driven through the
  // CK_TRACE macro (the production path) rather than TraceRing::Push.
  obs::TraceRing ring(4, 0);
  for (uint64_t i = 0; i < 10; ++i) {
    CK_TRACE(&ring, obs::EventType::kTlbMiss, i, 0, static_cast<uint32_t>(i));
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.pushed(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(ring.at(i).when, 6 + i);
  }
}

TEST(TraceMacro, WraparoundWithMacroCompiledOut) { EXPECT_EQ(DisabledTraceWraparound(), 0); }

TEST(EventTypeNames, AllNamed) {
  std::set<std::string> names;
  for (uint32_t t = 0; t < static_cast<uint32_t>(obs::EventType::kCount); ++t) {
    std::string name = obs::EventTypeName(static_cast<obs::EventType>(t));
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "?");
    names.insert(name);
  }
  // Names are distinct (an exporter can round-trip them).
  EXPECT_EQ(names.size(), static_cast<size_t>(obs::EventType::kCount));
}

// --- Stats (bounded streaming histogram) ---

TEST(Stats, MomentsExactUnderDecimation) {
  ckbase::Stats s;
  double sum = 0;
  for (int i = 1; i <= 100000; ++i) {
    s.Add(i);
    sum += i;
  }
  EXPECT_EQ(s.count(), 100000u);
  EXPECT_DOUBLE_EQ(s.Sum(), sum);
  EXPECT_DOUBLE_EQ(s.Mean(), sum / 100000.0);
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 100000.0);
  // Reservoir is bounded no matter how many samples stream through.
  EXPECT_LE(s.reservoir_size(), ckbase::Stats::kReservoirCap);
  // Percentiles come from the decimated reservoir: approximate, but they
  // must land in the right region for a uniform ramp.
  EXPECT_NEAR(s.Percentile(50), 50000.0, 5000.0);
  EXPECT_NEAR(s.Percentile(95), 95000.0, 5000.0);
  // Streamed stddev of 1..N uniform ramp: N/sqrt(12) ~ 28868.
  EXPECT_NEAR(s.StdDev(), 28867.7, 30.0);
}

TEST(Stats, MergeMatchesCombinedStream) {
  ckbase::Stats a, b, combined;
  for (int i = 0; i < 500; ++i) {
    a.Add(i);
    combined.Add(i);
  }
  for (int i = 500; i < 800; ++i) {
    b.Add(i * 2);
    combined.Add(i * 2);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_DOUBLE_EQ(a.Sum(), combined.Sum());
  EXPECT_DOUBLE_EQ(a.Mean(), combined.Mean());
  EXPECT_DOUBLE_EQ(a.Min(), combined.Min());
  EXPECT_DOUBLE_EQ(a.Max(), combined.Max());
  EXPECT_NEAR(a.StdDev(), combined.StdDev(), 1e-9);
  EXPECT_LE(a.reservoir_size(), ckbase::Stats::kReservoirCap);
}

TEST(Stats, MergeEmptySides) {
  ckbase::Stats a, empty;
  a.Add(3);
  a.Add(5);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.Mean(), 4.0);
  ckbase::Stats c;
  c.Merge(a);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.Max(), 5.0);
}

TEST(Stats, MergeBothEmpty) {
  ckbase::Stats a, b;
  a.Merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.Min(), 0.0);
  EXPECT_DOUBLE_EQ(a.Max(), 0.0);
  EXPECT_DOUBLE_EQ(a.Percentile(50), 0.0);
  EXPECT_EQ(a.reservoir_size(), 0u);
}

TEST(Stats, MergeOneSidedIntoOverflowed) {
  // One side far past the reservoir cap, the other tiny: exact moments still
  // combine exactly, the reservoir stays bounded, and the tiny side's
  // extremes survive the merge.
  ckbase::Stats big, tiny, combined;
  for (int i = 0; i < 50000; ++i) {
    big.Add(1000.0 + (i % 100));
    combined.Add(1000.0 + (i % 100));
  }
  ASSERT_GT(50000u, ckbase::Stats::kReservoirCap);
  tiny.Add(-5.0);
  tiny.Add(99999.0);
  combined.Add(-5.0);
  combined.Add(99999.0);
  big.Merge(tiny);
  EXPECT_EQ(big.count(), combined.count());
  EXPECT_DOUBLE_EQ(big.Sum(), combined.Sum());
  EXPECT_DOUBLE_EQ(big.Min(), -5.0);
  EXPECT_DOUBLE_EQ(big.Max(), 99999.0);
  EXPECT_NEAR(big.StdDev(), combined.StdDev(), 1e-6);
  EXPECT_LE(big.reservoir_size(), ckbase::Stats::kReservoirCap);
}

TEST(Stats, MergeBothOverflowed) {
  // Both reservoirs decimated before the merge: counts and moments stay
  // exact, the merged reservoir stays bounded, and percentiles still land in
  // the right region (the two inputs cover disjoint ranges, so the median of
  // the equal-count union sits at the boundary).
  ckbase::Stats low, high;
  for (int i = 0; i < 100000; ++i) {
    low.Add(i % 1000);              // 0..999
    high.Add(10000 + (i % 1000));   // 10000..10999
  }
  EXPECT_LE(low.reservoir_size(), ckbase::Stats::kReservoirCap);
  EXPECT_LE(high.reservoir_size(), ckbase::Stats::kReservoirCap);
  low.Merge(high);
  EXPECT_EQ(low.count(), 200000u);
  EXPECT_DOUBLE_EQ(low.Min(), 0.0);
  EXPECT_DOUBLE_EQ(low.Max(), 10999.0);
  EXPECT_LE(low.reservoir_size(), ckbase::Stats::kReservoirCap);
  EXPECT_GT(low.Percentile(25), -1.0);
  EXPECT_LT(low.Percentile(25), 1100.0);
  EXPECT_GT(low.Percentile(75), 9900.0);
  EXPECT_LT(low.Percentile(75), 11000.0);
}

// --- Registry ---

TEST(Registry, DumpJsonIsValid) {
  obs::Registry registry;
  uint64_t hits = 42;
  registry.AddCounter("test.hits", [&] { return hits; });
  registry.AddCounter("test.with\"quote", [] { return uint64_t{1}; });
  ckbase::Stats lat;
  lat.Add(1.5);
  lat.Add(2.5);
  registry.AddHistogram("test.latency_us", [&] { return lat; });

  std::string json = registry.DumpJson();
  std::string error;
  EXPECT_TRUE(obs::JsonLint(json, &error)) << error << "\n" << json;
  EXPECT_NE(json.find("\"test.hits\":42"), std::string::npos) << json;
  // Dumps read through the closures at call time.
  hits = 43;
  EXPECT_NE(registry.DumpJson().find("\"test.hits\":43"), std::string::npos);
  EXPECT_EQ(registry.counter_count(), 2u);
  EXPECT_EQ(registry.histogram_count(), 1u);
}

TEST(Registry, WriteTextPrometheusExposition) {
  obs::Registry registry;
  registry.AddCounter("ck.tenant.3.loads", [] { return uint64_t{17}; });
  ckbase::Stats lat;
  lat.Add(2.0);
  lat.Add(4.0);
  registry.AddHistogram("ck.fault_us.total", [&] { return lat; });

  char* buf = nullptr;
  size_t len = 0;
  std::FILE* mem = open_memstream(&buf, &len);
  ASSERT_NE(mem, nullptr);
  registry.WriteText(mem);
  std::fclose(mem);
  std::string text(buf, len);
  std::free(buf);

  // Dots fold to underscores; counters get a TYPE comment and a value line.
  EXPECT_NE(text.find("# TYPE ck_tenant_3_loads counter\nck_tenant_3_loads 17\n"),
            std::string::npos)
      << text;
  // Histograms export as summaries with _count/_sum and quantile lines.
  EXPECT_NE(text.find("# TYPE ck_fault_us_total summary"), std::string::npos) << text;
  EXPECT_NE(text.find("ck_fault_us_total_count 2"), std::string::npos) << text;
  EXPECT_NE(text.find("ck_fault_us_total_sum 6"), std::string::npos) << text;
  EXPECT_NE(text.find("ck_fault_us_total{quantile=\"0.5\"}"), std::string::npos) << text;
  // No un-folded name leaks into the exposition.
  EXPECT_EQ(text.find("ck.tenant"), std::string::npos) << text;
}

// --- flight recorder ---

TEST(FlightRecorder, RoundTripsAllSections) {
  obs::Tracer tracer(/*cpu_count=*/2, /*capacity_per_cpu=*/8);
  for (uint64_t i = 0; i < 12; ++i) {  // overflow cpu 0's ring: last 8 survive
    tracer.ring(0).Push(obs::EventType::kObjectLoad, 100 + i, static_cast<uint16_t>(i),
                        static_cast<uint32_t>(i));
  }
  tracer.ring(1).Push(obs::EventType::kSrmOp, 500, 3, 42);
  std::vector<uint8_t> stats_blob = {1, 2, 3, 4, 5};
  std::vector<uint8_t> bytes = obs::EncodeFlightRecord(
      "fatal-fault", /*when=*/123456, &tracer, /*last_n_per_cpu=*/256, "ck_loads 9\n",
      stats_blob);

  obs::FlightRecordData record;
  std::string error;
  ASSERT_TRUE(obs::DecodeFlightRecord(bytes, &record, &error)) << error;
  EXPECT_EQ(record.reason, "fatal-fault");
  EXPECT_EQ(record.when, 123456u);
  EXPECT_EQ(record.metrics_text, "ck_loads 9\n");
  EXPECT_EQ(record.stats_blob, stats_blob);
  ASSERT_EQ(record.events.size(), 9u);  // 8 retained on cpu 0 + 1 on cpu 1
  // Ring order per CPU, newest-8 window on the overflowed ring.
  EXPECT_EQ(record.events.front().when, 104u);
  EXPECT_EQ(record.events.back().when, 500u);
  EXPECT_EQ(record.events.back().arg32, 42u);
  EXPECT_EQ(record.events.back().cpu, 1u);
}

TEST(FlightRecorder, LastNWindowAndNullTracer) {
  obs::Tracer tracer(1, 64);
  for (uint64_t i = 0; i < 20; ++i) {
    tracer.ring(0).Push(obs::EventType::kTlbMiss, i, 0, 0);
  }
  obs::FlightRecordData record;
  std::string error;
  std::vector<uint8_t> bytes =
      obs::EncodeFlightRecord("r", 1, &tracer, /*last_n_per_cpu=*/4, "", {});
  ASSERT_TRUE(obs::DecodeFlightRecord(bytes, &record, &error)) << error;
  ASSERT_EQ(record.events.size(), 4u);
  EXPECT_EQ(record.events.front().when, 16u);  // newest 4 of 20
  // Untraced machine: no trace section at all, still a valid record.
  bytes = obs::EncodeFlightRecord("r", 1, nullptr, 256, "", {});
  ASSERT_TRUE(obs::DecodeFlightRecord(bytes, &record, &error)) << error;
  EXPECT_TRUE(record.events.empty());
}

TEST(FlightRecorder, CorruptionFailsCrc) {
  obs::Tracer tracer(1, 8);
  tracer.ring(0).Push(obs::EventType::kObjectLoad, 1, 2, 3);
  std::vector<uint8_t> bytes =
      obs::EncodeFlightRecord("reason", 7, &tracer, 256, "metrics\n", {9, 9});
  obs::FlightRecordData record;
  std::string error;
  ASSERT_TRUE(obs::DecodeFlightRecord(bytes, &record, &error)) << error;
  // Flip one payload byte somewhere past the magic/version: decode must fail
  // loudly, whichever section the byte lands in.
  std::vector<uint8_t> corrupt = bytes;
  corrupt[bytes.size() / 2] ^= 0x40;
  EXPECT_FALSE(obs::DecodeFlightRecord(corrupt, &record, &error));
  EXPECT_FALSE(error.empty());
  // Truncation fails too (never reads past the end).
  std::vector<uint8_t> truncated(bytes.begin(), bytes.begin() + bytes.size() - 3);
  EXPECT_FALSE(obs::DecodeFlightRecord(truncated, &record, &error));
}

// --- merged cluster export with causal flow events ---

TEST(ChromeTrace, MergedMachinesEmitFlowPairs) {
  // Hand-built two-machine trace: machine 0 sends (ipc + bulk), machine 1
  // receives, bound by span ids. The exporter must emit one process per
  // machine and a flow start/finish pair per span.
  obs::Tracer m0(1, 16), m1(1, 16);
  m0.ring(0).Push(obs::EventType::kIpcSend, 1000, /*slot=*/2, /*span=*/0x01000007);
  m1.ring(0).Push(obs::EventType::kIpcRecv, 3500, /*slot=*/0, /*span=*/0x01000007);
  m0.ring(0).Push(obs::EventType::kBulkSend, 5000, /*kib=*/12, /*span=*/0x01000008);
  m1.ring(0).Push(obs::EventType::kBulkRecv, 9000, /*kib=*/12, /*span=*/0x01000008);
  std::vector<obs::MachineTrace> machines;
  machines.push_back(obs::MachineTrace{&m0, 0, "machine 0"});
  machines.push_back(obs::MachineTrace{&m1, 1, "machine 1"});
  std::string json =
      obs::ChromeTraceJson(machines, 25.0, "\"ckProfile\":{\"period\":0,\"machines\":[]}");
  std::string error;
  ASSERT_TRUE(obs::JsonLint(json, &error)) << error << "\n" << json;
  EXPECT_NE(json.find("\"machine 0\""), std::string::npos);
  EXPECT_NE(json.find("\"machine 1\""), std::string::npos);
  EXPECT_NE(json.find("\"ckProfile\""), std::string::npos);
  // Flow pairs: a start and a finish per span, finish flagged "bp":"e".
  EXPECT_NE(json.find("\"ph\":\"s\",\"id\":16777223"), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"f\",\"bp\":\"e\",\"id\":16777223"), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"s\",\"id\":16777224"), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"f\",\"bp\":\"e\",\"id\":16777224"), std::string::npos) << json;
}

// --- integration: a faulting world, end to end ---

class ObsWorldTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cksim::MachineConfig machine_config;
    machine_config.cpu_count = 2;
    machine_ = std::make_unique<cksim::Machine>(machine_config);
    ck_ = std::make_unique<ck::CacheKernel>(*machine_, ck::CacheKernelConfig());
    srm_ = std::make_unique<cksrm::Srm>(*ck_);
    srm_->Boot();
  }

  // Run a guest that touches `pages` unmapped pages, forwarding one fault
  // each, with tracing enabled.
  void RunFaultingGuest(uint32_t pages) {
    machine_->EnableTracing(/*capacity_per_cpu=*/4096);
    app_ = std::make_unique<ckapp::AppKernelBase>("obs-test", 64);
    cksrm::LaunchParams params;
    params.page_groups = 4;
    params.max_priority = 30;
    ASSERT_TRUE(srm_->Launch(*app_, params).ok());
    ck::CkApi api(*ck_, app_->self(), machine_->cpu(0));
    uint32_t space = app_->CreateSpace(api);
    app_->DefineZeroRegion(space, 0x00400000, pages, /*writable=*/true);
    for (uint32_t i = 0; i < pages; ++i) {
      cksim::VirtAddr vaddr = 0x00400000 + i * cksim::kPageSize;
      ckapp::PageRecord* page = app_->space(space).FindPage(vaddr);
      app_->MaterializePage(api, app_->space(space), *page, vaddr);
    }
    ckisa::AssembleResult assembled = ckisa::Assemble(R"(
        li   t0, 0x00400000
        li   t1, )" + std::to_string(pages) + R"(
        li   t3, 4096
      loop:
        lw   t2, 0(t0)
        add  t0, t0, t3
        addi t1, t1, -1
        bne  t1, r0, loop
        halt
    )", 0x10000);
    ASSERT_TRUE(assembled.ok) << assembled.error;
    app_->LoadProgramImage(space, assembled.program, /*writable=*/false);
    ckapp::GuestThreadParams tparams;
    tparams.space_index = space;
    tparams.entry = 0x10000;
    tparams.cpu_hint = 0;
    uint32_t guest = app_->CreateGuestThread(api, tparams);
    for (uint64_t turn = 0; turn < 2000000 && !app_->thread(guest).finished; ++turn) {
      machine_->Step();
    }
    ASSERT_TRUE(app_->thread(guest).finished);
  }

  std::unique_ptr<cksim::Machine> machine_;
  std::unique_ptr<ck::CacheKernel> ck_;
  std::unique_ptr<cksrm::Srm> srm_;
  std::unique_ptr<ckapp::AppKernelBase> app_;
};

TEST_F(ObsWorldTest, KernelEmitsFaultEvents) {
  RunFaultingGuest(8);
  ASSERT_NE(machine_->tracer(), nullptr);
  const obs::TraceRing& ring = machine_->tracer()->ring(0);
  uint32_t trap_entries = 0, resumed = 0, loads = 0;
  uint64_t last_when = 0;
  for (size_t i = 0; i < ring.size(); ++i) {
    const obs::TraceEvent& event = ring.at(i);
    EXPECT_GE(event.when, last_when);  // per-CPU timestamps are monotone
    last_when = event.when;
    switch (static_cast<obs::EventType>(event.type)) {
      case obs::EventType::kFaultTrapEntry:
        trap_entries++;
        break;
      case obs::EventType::kFaultResumed:
        resumed++;
        break;
      case obs::EventType::kObjectLoad:
        loads++;
        break;
      default:
        break;
    }
  }
  EXPECT_GE(trap_entries, 8u);
  EXPECT_GE(resumed, 8u);
  EXPECT_GE(loads, 8u);
}

TEST_F(ObsWorldTest, FaultHistoryAccumulatesEveryFault) {
  RunFaultingGuest(8);
  // Not just the most recent fault: the per-step histograms saw the whole
  // population and the ring retains the last N.
  const ck::FaultStepStats& steps = ck_->fault_step_stats();
  EXPECT_GE(steps.total.count(), 8u);
  EXPECT_EQ(steps.transfer.count(), steps.total.count());
  EXPECT_GE(steps.handle_load.count(), 8u);
  EXPECT_GT(steps.total.Mean(), 0.0);
  EXPECT_GE(ck_->fault_traces_recorded(), 8u);

  std::vector<ck::FaultTrace> history = ck_->FaultHistory();
  ASSERT_GE(history.size(), 8u);
  for (const ck::FaultTrace& t : history) {
    EXPECT_GT(t.trap_entry, 0u);
    EXPECT_GE(t.handler_start, t.trap_entry);
    EXPECT_GE(t.resumed, t.handler_start);
  }
  // The last history entry matches the legacy most-recent accessor.
  EXPECT_EQ(history.back().trap_entry, ck_->last_fault_trace().trap_entry);
  EXPECT_EQ(history.back().resumed, ck_->last_fault_trace().resumed);
}

TEST_F(ObsWorldTest, FaultHistoryRingIsBounded) {
  // Tiny history depth: ring keeps only the newest faults, histograms all.
  ck::CacheKernelConfig config;
  config.fault_history_depth = 4;
  machine_ = std::make_unique<cksim::Machine>(cksim::MachineConfig{});
  ck_ = std::make_unique<ck::CacheKernel>(*machine_, config);
  srm_ = std::make_unique<cksrm::Srm>(*ck_);
  srm_->Boot();
  RunFaultingGuest(12);
  EXPECT_EQ(ck_->FaultHistory().size(), 4u);
  EXPECT_GE(ck_->fault_traces_recorded(), 12u);
  EXPECT_GE(ck_->fault_step_stats().total.count(), 12u);
  // Ring holds the newest traces: strictly increasing trap stamps.
  std::vector<ck::FaultTrace> history = ck_->FaultHistory();
  for (size_t i = 1; i < history.size(); ++i) {
    EXPECT_GT(history[i].trap_entry, history[i - 1].trap_entry);
  }
}

TEST_F(ObsWorldTest, ChromeTraceExportsValidJsonWithFaultSpans) {
  RunFaultingGuest(8);
  std::string json =
      obs::ChromeTraceJson(*machine_->tracer(), static_cast<double>(cksim::kCyclesPerMicrosecond));
  std::string error;
  ASSERT_TRUE(obs::JsonLint(json, &error)) << error;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"fault\""), std::string::npos);
  EXPECT_NE(json.find("fault.handle+load"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // duration spans
  EXPECT_NE(json.find("thread_name"), std::string::npos);   // per-CPU tracks
}

TEST_F(ObsWorldTest, RegisterMetricsExposesKernelState) {
  RunFaultingGuest(8);
  obs::Registry registry;
  ck_->RegisterMetrics(registry);
  EXPECT_GT(registry.counter_count(), 20u);
  EXPECT_EQ(registry.histogram_count(), 4u);
  std::string json = registry.DumpJson();
  std::string error;
  ASSERT_TRUE(obs::JsonLint(json, &error)) << error;
  EXPECT_NE(json.find("\"ck.faults_forwarded\""), std::string::npos);
  EXPECT_NE(json.find("\"ck.fault_us.total\""), std::string::npos);
  EXPECT_NE(json.find("\"hw.tlb.misses.cpu0\""), std::string::npos);
}

// --- JsonLint itself ---

TEST(JsonLint, AcceptsValidRejectsBroken) {
  std::string error;
  EXPECT_TRUE(obs::JsonLint("{}", &error));
  EXPECT_TRUE(obs::JsonLint(R"({"a": [1, 2.5, -3e4], "b": {"c": "d\n"}, "e": null})", &error));
  EXPECT_FALSE(obs::JsonLint("{", &error));
  EXPECT_FALSE(obs::JsonLint(R"({"a": })", &error));
  EXPECT_FALSE(obs::JsonLint(R"({"a": 1} trailing)", &error));
  EXPECT_FALSE(obs::JsonLint(R"({"a": 01})", &error));
}

}  // namespace

// Tests for the conservative parallel cluster driver (src/sim/cluster.h).
//
// The heart of the file is the differential suite: the full multi-MPM
// scenario (cross-machine RPC, live migration over the bulk path, periodic
// checkpointing, MPM failure, crash failover) is run twice per window size --
// once on the single-threaded reference driver, once on host worker threads
// -- and every observable (RPC payloads, migration outcome and digest,
// restored process consoles/pids/exit codes, per-machine CkStats, final
// machine clocks, window count) must be bit-exact. The sweep covers three
// window sizes at and below the lookahead.
//
// Window size moves the barrier points, so time-dependent observables (CPU
// clocks, stats) legitimately differ ACROSS window sizes; semantic outcomes
// (what was computed, what migrated, what survived the failover) must not.
// A separate test pins that down.

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/appkernel/channel.h"
#include "src/ckpt/checkpoint.h"
#include "src/isa/assembler.h"
#include "src/sim/cluster.h"
#include "src/sim/devices.h"
#include "src/sim/machine.h"
#include "src/srm/srm.h"
#include "src/unixemu/unix_emulator.h"

namespace {

using cksim::Cycles;

// ---------------------------------------------------------------------------
// Cluster unit tests
// ---------------------------------------------------------------------------

class IdleClient : public cksim::MachineClient {
 public:
  void OnCpuTurn(cksim::Cpu& cpu) override { cpu.Advance(100); }
};

class RecordingSink : public cksim::SignalSink {
 public:
  void SignalPhysical(cksim::PhysAddr addr, Cycles when) override {
    addrs.push_back(addr);
    times.push_back(when);
  }
  std::vector<cksim::PhysAddr> addrs;
  std::vector<Cycles> times;
};

TEST(ClusterTest, LookaheadIsMinimumLinkLatencyAndWindowClamps) {
  cksim::MachineConfig config;
  cksim::Machine m0(config), m1(config), m2(config);
  RecordingSink s0, s1a, s1b, s2;
  cksim::FiberChannelDevice fc0(m0.memory(), &s0, 0x20000, 2, 2, 2500);
  cksim::FiberChannelDevice fc1a(m1.memory(), &s1a, 0x20000, 2, 2, 2500);
  cksim::FiberChannelDevice fc1b(m1.memory(), &s1b, 0x30000, 2, 2, 900);
  cksim::FiberChannelDevice fc2(m2.memory(), &s2, 0x20000, 2, 2, 900);

  cksim::Cluster cluster;
  cluster.AddMachine(&m0);
  cluster.AddMachine(&m1);
  cluster.AddMachine(&m2);
  EXPECT_EQ(cluster.lookahead(), cksim::Cluster::kNoLookahead);
  EXPECT_GT(cluster.window(), 0u) << "unlinked machines still get finite windows";

  cluster.Link(fc0, fc1a);
  EXPECT_EQ(cluster.lookahead(), 2500u);
  cluster.Link(fc1b, fc2);
  EXPECT_EQ(cluster.lookahead(), 900u) << "lookahead is the minimum over links";
  EXPECT_EQ(cluster.window(), 900u) << "default window is the lookahead";

  cluster.set_window(500);
  EXPECT_EQ(cluster.window(), 500u);
  cluster.set_window(100000);
  EXPECT_EQ(cluster.window(), 900u) << "window above lookahead must clamp";
  cluster.set_window(0);
  EXPECT_EQ(cluster.window(), 900u);
}

TEST(ClusterTest, LinkSwitchesEndpointsToDeferredDelivery) {
  cksim::MachineConfig config;
  cksim::Machine a(config), b(config);
  RecordingSink sink_a, sink_b;
  cksim::FiberChannelDevice fca(a.memory(), &sink_a, 0x20000, 2, 2, 2500);
  cksim::FiberChannelDevice fcb(b.memory(), &sink_b, 0x20000, 2, 2, 2500);
  EXPECT_FALSE(fca.deferred_delivery());

  cksim::Cluster cluster;
  cluster.AddMachine(&a);
  cluster.AddMachine(&b);
  cluster.Link(fca, fcb);
  a.AttachDevice(&fca);
  b.AttachDevice(&fcb);
  EXPECT_TRUE(fca.deferred_delivery());
  EXPECT_TRUE(fcb.deferred_delivery());

  // A deferred transmit stays in the sender's outbox until flushed, then
  // arrives at the peer with the send-time-stamped due time.
  IdleClient ca, cb;
  a.AttachKernel(&ca);
  b.AttachKernel(&cb);
  const char payload[] = "pkt";
  uint32_t len = sizeof(payload);
  a.memory().WriteWord(fca.tx_slot(0), len);
  a.memory().Write(fca.tx_slot(0) + 4, payload, len);
  fca.OnDoorbell(fca.tx_slot(0), 100);

  b.RunUntil(10000);
  EXPECT_TRUE(sink_b.addrs.empty()) << "delivery must wait for the barrier flush";
  EXPECT_EQ(fca.FlushOutbox(), 1u);
  b.RunUntil(20000);
  ASSERT_EQ(sink_b.addrs.size(), 1u);
  EXPECT_EQ(sink_b.times[0], 100u + 2500u) << "due time is send time + wire latency";
}

TEST(ClusterTest, RunUntilAdvancesAllMachinesAndSkipsHalted) {
  cksim::MachineConfig config;
  cksim::Machine a(config), b(config);
  IdleClient ca, cb;
  a.AttachKernel(&ca);
  b.AttachKernel(&cb);
  cksim::Cluster cluster;
  cluster.AddMachine(&a);
  cluster.AddMachine(&b);
  cluster.set_window(1000);
  cluster.set_parallel(false);

  cluster.RunUntil(5000);
  EXPECT_GE(a.Now(), 5000u);
  EXPECT_GE(b.Now(), 5000u);
  EXPECT_GE(cluster.windows_run(), 5u);

  a.Halt();
  Cycles b_before = b.Now();
  cluster.RunFor(3000);
  EXPECT_GE(b.Now(), b_before + 3000) << "surviving machine keeps running";
  EXPECT_LT(a.Now(), b.Now()) << "halted machine's clock is frozen";
}

// ---------------------------------------------------------------------------
// The differential scenario
// ---------------------------------------------------------------------------

ckisa::Program MustAssemble(const char* source, uint32_t base = 0x10000) {
  ckisa::AssembleResult result = ckisa::Assemble(source, base);
  EXPECT_TRUE(result.ok) << result.error;
  return result.program;
}

// Guest workload for the failover act (same programs as examples/multi_mpm).
constexpr const char* kTickerSrc = R"(
      addi s0, r0, 4
  loop:
      la   a0, msg
      addi a1, r0, 4
      trap 18         ; write "tik."
      li   a0, 12000
      trap 20         ; sleep 12ms
      addi s0, s0, -1
      beq  s0, r0, done
      j    loop
  done:
      addi a0, r0, 7
      trap 17
  msg:
      .word 0x2e6b6974
)";

constexpr const char* kChildSrc = R"(
      la   a0, msg
      addi a1, r0, 3
      trap 18         ; write "c!\n"
      addi a0, r0, 9
      trap 17
  msg:
      .word 0x000a2163
)";

constexpr const char* kSpawnerSrc = R"(
      addi a0, r0, 0
      trap 24         ; spawn(program 0)
      trap 25         ; waitpid -> child exit code
      addi a0, a0, 1
      trap 17
)";

struct Node {
  Node() : machine(cksim::MachineConfig()), ck(machine, ck::CacheKernelConfig()), srm(ck) {
    srm.Boot();
  }
  cksim::Machine machine;
  ck::CacheKernel ck;
  cksrm::Srm srm;
};

using Digest = std::vector<std::pair<std::string, uint64_t>>;

struct Observables {
  bool rpc_ok = true;
  std::vector<uint64_t> rpc_answers;

  bool migration_ok = false;
  Digest migrated_digest;

  bool failover_ok = false;
  uint32_t restored_processes = 0;
  std::vector<int> pids;
  std::vector<int> exit_codes;
  std::vector<std::string> consoles;
  size_t store_bytes = 0;

  ck::CkStats stats_a;
  ck::CkStats stats_b;
  Cycles clock_a = 0;
  Cycles clock_b = 0;
  uint64_t windows = 0;

  // Observability state: per-tenant cost accounts (POD, memcmp-compared),
  // deterministic span allocation counts, trace-event volume and the
  // flattened profiler histograms must all match bit-exactly too --
  // enabling tracing/attribution/profiling must not perturb the simulation,
  // and the observability data itself must be deterministic.
  std::vector<ck::CostAccount> tenants_a;
  std::vector<ck::CostAccount> tenants_b;
  uint64_t spans_a = 0;
  uint64_t spans_b = 0;
  uint64_t trace_pushed_a = 0;
  uint64_t trace_pushed_b = 0;
  uint64_t prof_samples_a = 0;
  uint64_t prof_samples_b = 0;
  std::vector<std::map<uint32_t, uint64_t>> profile_a;
  std::vector<std::map<uint32_t, uint64_t>> profile_b;
};

// The multi_mpm scenario, driven entirely through the Cluster so the serial
// and parallel executions share one window schedule. All SRM calls and guest
// state reads happen in done-predicates or between RunUntilDone calls, i.e.
// at barriers, as the Cluster thread-safety contract requires.
Observables RunScenario(bool parallel, Cycles window) {
  Observables obs;
  Node a, b;
  cksim::Cluster cluster;
  cluster.AddMachine(&a.machine);
  cluster.AddMachine(&b.machine);
  cluster.set_parallel(parallel);
  cluster.set_window(window);

  // Full observability on: per-CPU tracing and the sampling profiler run
  // during the differential, so the serial/parallel comparison also proves
  // they do not perturb (and are themselves) deterministic.
  a.machine.EnableTracing(/*capacity_per_cpu=*/4096);
  b.machine.EnableTracing(/*capacity_per_cpu=*/4096);
  a.ck.set_profile_period(5000);
  b.ck.set_profile_period(5000);

  uint32_t group_a = a.srm.ReserveGroups(1).value();
  uint32_t group_b = b.srm.ReserveGroups(1).value();
  cksim::FiberChannelDevice fc_a(a.machine.memory(), &a.ck, group_a * cksim::kPageGroupBytes, 4,
                                 4, 2500);
  cksim::FiberChannelDevice fc_b(b.machine.memory(), &b.ck, group_b * cksim::kPageGroupBytes, 4,
                                 4, 2500);
  cluster.Link(fc_a, fc_b);
  a.machine.AttachDevice(&fc_a);
  b.machine.AttachDevice(&fc_b);

  // --- Act 1: cross-machine RPC ---
  ckapp::AppKernelBase app_a("dispatcher", 64), app_b("compute-node", 64);
  cksrm::LaunchParams params;
  params.page_groups = 2;
  a.srm.Launch(app_a, params);
  b.srm.Launch(app_b, params);
  a.srm.GrantSharedGroups(app_a, group_a, 1, ck::GroupAccess::kReadWrite);
  b.srm.GrantSharedGroups(app_b, group_b, 1, ck::GroupAccess::kReadWrite);

  ck::CkApi api_a(a.ck, app_a.self(), a.machine.cpu(0));
  ck::CkApi api_b(b.ck, app_b.self(), b.machine.cpu(0));
  uint32_t space_a = app_a.CreateSpace(api_a);
  uint32_t space_b = app_b.CreateSpace(api_b);

  ckapp::MessageChannel requests, replies;
  ckapp::RpcServer server(requests, replies,
                          [](uint32_t op, const std::vector<uint8_t>& in, ck::CkApi&) {
                            std::vector<uint8_t> out(8, 0);
                            if (op == 1 && in.size() >= 4) {
                              uint32_t n;
                              std::memcpy(&n, in.data(), 4);
                              uint64_t sum = 0;
                              for (uint64_t i = 1; i <= n; ++i) {
                                sum += i * i;
                              }
                              std::memcpy(out.data(), &sum, 8);
                            }
                            return out;
                          });
  ckapp::RpcClient client(requests, replies);

  uint32_t server_thread = app_b.CreateNativeThread(api_b, space_b, &server, 16);
  uint32_t client_thread = app_a.CreateNativeThread(api_a, space_a, &client, 16);
  requests.ConfigureSender(app_a, space_a, 0x00800000, fc_a.tx_slot(0), 2);
  requests.ConfigureReceiver(app_b, space_b, 0x00900000, fc_b.rx_slot(0), 4, server_thread);
  replies.ConfigureSender(app_b, space_b, 0x00a00000, fc_b.tx_slot(2), 2);
  replies.ConfigureReceiver(app_a, space_a, 0x00b00000, fc_a.rx_slot(0), 4, client_thread);
  requests.PrimeReceiver(api_b);
  replies.PrimeReceiver(api_a);

  for (uint32_t n = 10; n <= 30; n += 10) {
    uint64_t answer = 0;
    std::vector<uint8_t> arg(4);
    std::memcpy(arg.data(), &n, 4);
    client.Call(api_a, 1, arg, [&answer](const std::vector<uint8_t>& reply, ck::CkApi&) {
      std::memcpy(&answer, reply.data(), 8);
    });
    if (!cluster.RunUntilDone([&] { return answer != 0; }, 50000000)) {
      obs.rpc_ok = false;
      break;
    }
    obs.rpc_answers.push_back(answer);
  }

  // --- Act 2: live migration A -> B over the bulk path ---
  ckapp::AppKernelBase pay_a("payload", 512), pay_b("payload", 512);
  {
    cksrm::LaunchParams pay_params;
    pay_params.page_groups = 4;
    a.srm.Launch(pay_a, pay_params);
    ck::CkApi pay_api(a.ck, pay_a.self(), a.machine.cpu(0));
    uint32_t sp = pay_a.CreateSpace(pay_api);
    pay_a.DefineZeroRegion(sp, 0x40000000, 16, /*writable=*/true);
    for (uint32_t p = 0; p < 16; ++p) {
      uint32_t value = 0xc0de0000 + p;
      pay_a.WriteGuest(pay_api, sp, 0x40000000 + p * cksim::kPageSize, &value, 4);
    }
  }
  a.srm.Migrate(pay_a, fc_a);
  std::string error;
  ckbase::CkStatus accepted = ckbase::CkStatus::kRetry;
  cluster.RunUntilDone(
      [&] {
        accepted = b.srm.AcceptMigration(fc_b, pay_b, ckckpt::RestoreOptions{}, &error);
        return accepted != ckbase::CkStatus::kRetry;
      },
      200000000);
  obs.migration_ok = accepted == ckbase::CkStatus::kOk;
  if (obs.migration_ok) {
    ck::CkApi pay_api_b(b.ck, pay_b.self(), b.machine.cpu(0));
    obs.migrated_digest = ckckpt::AppKernelState::Digest(pay_b, pay_api_b);
  }

  // --- Act 3: UNIX emulator on A, periodic checkpoints to stable store ---
  cksim::StableStore store;
  ckunix::UnixEmulator emu_a(a.ck);
  cksrm::LaunchParams unix_params;
  unix_params.page_groups = 8;
  unix_params.max_priority = 31;
  unix_params.locked_kernel_object = true;
  a.srm.Launch(emu_a, unix_params);
  ck::CkApi unix_api(a.ck, emu_a.self(), a.machine.cpu(0));
  emu_a.Start(unix_api);
  emu_a.RegisterProgram(MustAssemble(kChildSrc));
  int ticker = emu_a.Exec(unix_api, MustAssemble(kTickerSrc));
  int spawner = emu_a.Exec(unix_api, MustAssemble(kSpawnerSrc));
  (void)spawner;

  for (size_t target : {4u, 8u}) {
    cluster.RunUntilDone([&] { return emu_a.process(ticker).console.size() >= target; },
                         100000000);
    a.srm.CheckpointToStore(emu_a, store, "unix-emulator");
  }
  obs.store_bytes = store.bytes_written();

  // --- Act 4: MPM failure on A, crash failover to B ---
  a.machine.Halt();
  ckunix::UnixEmulator emu_b(b.ck);
  obs.failover_ok = b.srm.RestoreFromStore(emu_b, store, "unix-emulator",
                                           ckckpt::RestoreOptions{}, &error) ==
                    ckbase::CkStatus::kOk;
  if (obs.failover_ok) {
    obs.restored_processes = emu_b.process_count();
    cluster.RunUntilDone([&] { return emu_b.AllExited(); }, 200000000);
    for (uint32_t p = 1; p <= emu_b.process_count(); ++p) {
      const ckunix::Process& proc = emu_b.process(p);
      obs.pids.push_back(proc.pid);
      obs.exit_codes.push_back(proc.exit_code);
      obs.consoles.push_back(proc.console);
    }
  }

  obs.stats_a = a.ck.stats();
  obs.stats_b = b.ck.stats();
  obs.clock_a = a.machine.Now();
  obs.clock_b = b.machine.Now();
  obs.windows = cluster.windows_run();
  obs.tenants_a = a.ck.tenant_accounts();
  obs.tenants_b = b.ck.tenant_accounts();
  obs.spans_a = a.machine.spans_allocated();
  obs.spans_b = b.machine.spans_allocated();
  obs.trace_pushed_a = a.machine.tracer()->total_pushed();
  obs.trace_pushed_b = b.machine.tracer()->total_pushed();
  obs.prof_samples_a = a.ck.profile_samples_total();
  obs.prof_samples_b = b.ck.profile_samples_total();
  obs.profile_a = a.ck.profile_pcs();
  obs.profile_b = b.ck.profile_pcs();
  return obs;
}

// Scenario runs are expensive; each (mode, window) pair is computed once and
// shared by the differential and cross-window tests.
const Observables& CachedScenario(bool parallel, Cycles window) {
  static std::map<std::pair<bool, Cycles>, Observables> cache;
  auto key = std::make_pair(parallel, window);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, RunScenario(parallel, window)).first;
  }
  return it->second;
}

void ExpectScenarioSucceeded(const Observables& obs) {
  EXPECT_TRUE(obs.rpc_ok);
  ASSERT_EQ(obs.rpc_answers.size(), 3u);
  EXPECT_EQ(obs.rpc_answers[0], 385u);    // sum of squares 1..10
  EXPECT_EQ(obs.rpc_answers[1], 2870u);   // 1..20
  EXPECT_EQ(obs.rpc_answers[2], 9455u);   // 1..30
  EXPECT_TRUE(obs.migration_ok);
  EXPECT_FALSE(obs.migrated_digest.empty());
  EXPECT_TRUE(obs.failover_ok);
  ASSERT_EQ(obs.restored_processes, 3u);  // ticker, spawner, spawned child
  EXPECT_EQ(obs.consoles[0], "tik.tik.tik.tik.");
  EXPECT_EQ(obs.exit_codes[0], 7);
  EXPECT_EQ(obs.exit_codes[1], 10);       // child exit 9 + 1
  // The observability machinery was really on: spans allocated on both
  // machines (faults, IPC, SRM ops), trace events recorded, guest PCs
  // sampled wherever guest code ran.
  EXPECT_GT(obs.spans_a, 0u);
  EXPECT_GT(obs.spans_b, 0u);
  EXPECT_GT(obs.trace_pushed_a, 0u);
  EXPECT_GT(obs.trace_pushed_b, 0u);
  EXPECT_GT(obs.prof_samples_a, 0u);
  EXPECT_GT(obs.prof_samples_b, 0u);
}

void ExpectIdentical(const Observables& serial, const Observables& par) {
  EXPECT_EQ(serial.rpc_ok, par.rpc_ok);
  EXPECT_EQ(serial.rpc_answers, par.rpc_answers);
  EXPECT_EQ(serial.migration_ok, par.migration_ok);
  EXPECT_EQ(serial.migrated_digest, par.migrated_digest);
  EXPECT_EQ(serial.failover_ok, par.failover_ok);
  EXPECT_EQ(serial.restored_processes, par.restored_processes);
  EXPECT_EQ(serial.pids, par.pids);
  EXPECT_EQ(serial.exit_codes, par.exit_codes);
  EXPECT_EQ(serial.consoles, par.consoles);
  EXPECT_EQ(serial.store_bytes, par.store_bytes);
  EXPECT_EQ(serial.clock_a, par.clock_a) << "machine A clock diverged";
  EXPECT_EQ(serial.clock_b, par.clock_b) << "machine B clock diverged";
  EXPECT_EQ(serial.windows, par.windows);
  EXPECT_EQ(0, std::memcmp(&serial.stats_a, &par.stats_a, sizeof(ck::CkStats)))
      << "CkStats diverged on machine A";
  EXPECT_EQ(0, std::memcmp(&serial.stats_b, &par.stats_b, sizeof(ck::CkStats)))
      << "CkStats diverged on machine B";
  auto expect_tenants_equal = [](const std::vector<ck::CostAccount>& s,
                                 const std::vector<ck::CostAccount>& p, const char* which) {
    ASSERT_EQ(s.size(), p.size());
    EXPECT_EQ(0, std::memcmp(s.data(), p.data(), s.size() * sizeof(ck::CostAccount)))
        << "tenant cost accounts diverged on machine " << which;
  };
  expect_tenants_equal(serial.tenants_a, par.tenants_a, "A");
  expect_tenants_equal(serial.tenants_b, par.tenants_b, "B");
  EXPECT_EQ(serial.spans_a, par.spans_a) << "span allocation diverged on machine A";
  EXPECT_EQ(serial.spans_b, par.spans_b) << "span allocation diverged on machine B";
  EXPECT_EQ(serial.trace_pushed_a, par.trace_pushed_a) << "trace volume diverged on machine A";
  EXPECT_EQ(serial.trace_pushed_b, par.trace_pushed_b) << "trace volume diverged on machine B";
  EXPECT_EQ(serial.prof_samples_a, par.prof_samples_a);
  EXPECT_EQ(serial.prof_samples_b, par.prof_samples_b);
  EXPECT_EQ(serial.profile_a, par.profile_a) << "profiler histograms diverged on machine A";
  EXPECT_EQ(serial.profile_b, par.profile_b) << "profiler histograms diverged on machine B";
}

class ClusterDifferentialTest : public ::testing::TestWithParam<Cycles> {};

TEST_P(ClusterDifferentialTest, ParallelIsBitExactAgainstSerialReference) {
  Cycles window = GetParam();
  const Observables& serial = CachedScenario(/*parallel=*/false, window);
  {
    SCOPED_TRACE("serial baseline");
    ExpectScenarioSucceeded(serial);
  }
  const Observables& par = CachedScenario(/*parallel=*/true, window);
  ExpectIdentical(serial, par);
}

// Window sizes: the lookahead itself, half of it, and a fifth of it.
INSTANTIATE_TEST_SUITE_P(WindowSweep, ClusterDifferentialTest,
                         ::testing::Values(2500, 1250, 500));

TEST(ClusterDifferentialTest, SemanticOutcomesInvariantAcrossWindowSizes) {
  // Barrier placement moves with the window, so clocks and stats legitimately
  // shift between window sizes -- but what was computed must not.
  const Observables& w2500 = CachedScenario(false, 2500);
  for (Cycles window : {Cycles{1250}, Cycles{500}}) {
    const Observables& other = CachedScenario(false, window);
    SCOPED_TRACE("window " + std::to_string(window));
    EXPECT_EQ(w2500.rpc_answers, other.rpc_answers);
    EXPECT_EQ(w2500.migration_ok, other.migration_ok);
    EXPECT_EQ(w2500.failover_ok, other.failover_ok);
    EXPECT_EQ(w2500.restored_processes, other.restored_processes);
    EXPECT_EQ(w2500.pids, other.pids);
    EXPECT_EQ(w2500.exit_codes, other.exit_codes);
    EXPECT_EQ(w2500.consoles, other.consoles);
  }
}

}  // namespace

// End-to-end guest execution: CKVM programs running on the Cache Kernel with
// an AppKernelBase demand pager -- the full Figure 2 page-fault path, trap
// forwarding, scheduling, copy-on-write and swap.

#include <gtest/gtest.h>

#include "src/isa/assembler.h"
#include "tests/test_harness.h"

namespace {

using ckbase::CkStatus;
using cktest::TestWorld;

// App kernel whose traps record arguments (number 16 returns 123).
class TestAppKernel : public ckapp::AppKernelBase {
 public:
  TestAppKernel() : ckapp::AppKernelBase("test-app", 512) {}

  ck::TrapAction HandleTrap(const ck::TrapForward& trap, ck::CkApi& api) override {
    (void)api;
    traps.push_back(trap.number);
    ck::TrapAction action;
    if (trap.number == 16) {
      action.has_return_value = true;
      action.return_value = 123;
    } else if (trap.number == 17) {
      action.has_return_value = true;
      action.return_value = trap.args[0] + trap.args[1];
    } else {
      action.action = ck::HandlerAction::kTerminate;
    }
    return action;
  }

  std::vector<uint16_t> traps;
};

ckisa::Program MustAssemble(const char* source, uint32_t base) {
  ckisa::AssembleResult result = ckisa::Assemble(source, base);
  EXPECT_TRUE(result.ok) << result.error;
  return result.program;
}

class GuestTest : public ::testing::Test {
 protected:
  GuestTest() {
    world_ = std::make_unique<TestWorld>();
    world_->Launch(app_);
  }

  // Launch a guest program with stack, run until its thread halts.
  uint32_t RunProgram(const char* source, uint32_t base = 0x10000,
                      uint64_t max_turns = 500000) {
    ck::CkApi app_api(world_->ck(), app_.self(), world_->machine().cpu(0));
    uint32_t space = app_.CreateSpace(app_api);
    ckisa::Program program = MustAssemble(source, base);
    app_.LoadProgramImage(space, program, /*writable=*/true);
    app_.DefineZeroRegion(space, 0x00f00000, 8, /*writable=*/true);  // stack

    ckapp::GuestThreadParams params;
    params.space_index = space;
    params.entry = base;
    params.stack_top = 0x00f08000 - 16;
    uint32_t thread = app_.CreateGuestThread(app_api, params);
    EXPECT_TRUE(world_->RunUntil([&] { return app_.thread(thread).finished; }, max_turns))
        << "guest did not halt";
    return thread;
  }

  std::unique_ptr<TestWorld> world_;
  TestAppKernel app_;
};

TEST_F(GuestTest, DemandPagedProgramRunsToCompletion) {
  uint32_t thread = RunProgram(R"(
      ; compute 6*7 into s0 and park it in memory
      addi t0, r0, 6
      addi t1, r0, 7
      mul  s0, t0, t1
      li   t2, 0x00f00000
      sw   s0, 0(t2)
      lw   s1, 0(t2)
      halt
  )");
  ckapp::ThreadRec& rec = app_.thread(thread);
  EXPECT_EQ(rec.saved.regs[ckisa::kRegS0], 42u);
  EXPECT_EQ(rec.saved.regs[ckisa::kRegS0 + 1], 42u);
  // The program text page and the stack page both demand-faulted.
  EXPECT_GE(app_.paging_stats().faults, 2u);
  EXPECT_GE(world_->ck().stats().faults_forwarded, 2u);
}

TEST_F(GuestTest, TrapForwardingReturnsValues) {
  uint32_t thread = RunProgram(R"(
      trap 16           ; getpid-style: returns 123 in a0
      mv   s0, a0
      addi a0, r0, 30
      addi a1, r0, 12
      trap 17           ; add syscall
      mv   s1, a0
      halt
  )");
  ckapp::ThreadRec& rec = app_.thread(thread);
  EXPECT_EQ(rec.saved.regs[ckisa::kRegS0], 123u);
  EXPECT_EQ(rec.saved.regs[ckisa::kRegS0 + 1], 42u);
  ASSERT_EQ(app_.traps.size(), 2u);
  EXPECT_EQ(app_.traps[0], 16u);
  EXPECT_EQ(app_.traps[1], 17u);
  EXPECT_EQ(world_->ck().stats().traps_forwarded, 2u);
}

TEST_F(GuestTest, IllegalAccessTerminatesThread) {
  uint32_t thread = RunProgram(R"(
      li   t0, 0x0dead000   ; no region defined here
      lw   t1, 0(t0)
      halt
  )");
  EXPECT_TRUE(app_.thread(thread).finished);
  EXPECT_GE(app_.paging_stats().illegal_accesses, 1u);
}

TEST_F(GuestTest, WriteToReadOnlyRegionTerminates) {
  ck::CkApi app_api(world_->ck(), app_.self(), world_->machine().cpu(0));
  uint32_t space = app_.CreateSpace(app_api);
  ckisa::Program program = MustAssemble(R"(
      li   t0, 0x00200000
      sw   t0, 0(t0)
      halt
  )", 0x10000);
  app_.LoadProgramImage(space, program, /*writable=*/true);
  app_.DefineZeroRegion(space, 0x00200000, 1, /*writable=*/false);  // read-only

  ckapp::GuestThreadParams params;
  params.space_index = space;
  params.entry = 0x10000;
  uint32_t thread = app_.CreateGuestThread(app_api, params);
  ASSERT_TRUE(world_->RunUntil([&] { return app_.thread(thread).finished; }));
  EXPECT_GE(app_.paging_stats().illegal_accesses, 1u);
}

TEST_F(GuestTest, ManyThreadsTimeshareOneProgram) {
  ck::CkApi app_api(world_->ck(), app_.self(), world_->machine().cpu(0));
  uint32_t space = app_.CreateSpace(app_api);
  // Each thread sums 1..100 then halts.
  ckisa::Program program = MustAssemble(R"(
      addi t0, r0, 0
      addi t1, r0, 1
      addi t2, r0, 100
    loop:
      add  t0, t0, t1
      addi t1, t1, 1
      bge  t2, t1, loop
      mv   s0, t0
      halt
  )", 0x10000);
  app_.LoadProgramImage(space, program, /*writable=*/false);

  std::vector<uint32_t> threads;
  for (int i = 0; i < 12; ++i) {
    ckapp::GuestThreadParams params;
    params.space_index = space;
    params.entry = 0x10000;
    params.priority = 8;
    threads.push_back(app_.CreateGuestThread(app_api, params));
  }
  ASSERT_TRUE(world_->RunUntil([&] { return app_.AllThreadsFinished(); }));
  for (uint32_t thread : threads) {
    EXPECT_EQ(app_.thread(thread).saved.regs[ckisa::kRegS0], 5050u);
  }
}

TEST_F(GuestTest, YieldTrapRotatesEqualPriorityThreads) {
  // trap 4 surrenders the rest of the time slice (handled by the Cache
  // Kernel directly, no forwarding). A polite yielder and a plain spinner at
  // equal priority must interleave far more tightly than two spinners.
  ck::CkApi app_api(world_->ck(), app_.self(), world_->machine().cpu(0));
  uint32_t space = app_.CreateSpace(app_api);
  ckisa::Program program = MustAssemble(R"(
      li   t2, 400
    loop:
      trap 4              ; yield
      addi t2, t2, -1
      bne  t2, r0, loop
      halt
  )", 0x10000);
  app_.LoadProgramImage(space, program, /*writable=*/false);

  uint64_t traps_before = world_->ck().stats().traps_forwarded;
  ckapp::GuestThreadParams params;
  params.space_index = space;
  params.entry = 0x10000;
  params.priority = 8;
  params.cpu_hint = 1;
  uint32_t a = app_.CreateGuestThread(app_api, params);
  uint32_t b = app_.CreateGuestThread(app_api, params);
  ASSERT_TRUE(world_->RunUntil(
      [&] { return app_.thread(a).finished && app_.thread(b).finished; }, 2000000));
  // Yield is a Cache Kernel trap: nothing was forwarded to the app kernel.
  EXPECT_EQ(world_->ck().stats().traps_forwarded, traps_before);
  // Both made progress by swapping the processor back and forth.
  EXPECT_GE(world_->ck().stats().preemptions, 100u);
}

TEST_F(GuestTest, FrameShortageEvictsAndPagesOut) {
  // Fresh world with a tiny grant: 1 page group = 128 frames, but the guest
  // dirties 200 pages, forcing evictions with page-out.
  TestWorld world;
  TestAppKernel app;
  cksrm::LaunchParams params;
  params.page_groups = 1;
  ASSERT_TRUE(world.srm().Launch(app, params).ok());

  ck::CkApi app_api(world.ck(), app.self(), world.machine().cpu(0));
  uint32_t space = app.CreateSpace(app_api);
  ckisa::Program program = MustAssemble(R"(
      li   t0, 0x00400000    ; region base
      addi t1, r0, 200       ; pages to dirty
      li   t3, 4096
    loop:
      sw   t1, 0(t0)
      add  t0, t0, t3
      addi t1, t1, -1
      bne  t1, r0, loop
      halt
  )", 0x10000);
  app.LoadProgramImage(space, program, /*writable=*/false);
  app.DefineZeroRegion(space, 0x00400000, 256, /*writable=*/true);

  ckapp::GuestThreadParams gparams;
  gparams.space_index = space;
  gparams.entry = 0x10000;
  uint32_t thread = app.CreateGuestThread(app_api, gparams);
  ASSERT_TRUE(world.RunUntil([&] { return app.thread(thread).finished; }, 3000000));
  EXPECT_GE(app.paging_stats().evictions, 50u);
  EXPECT_GE(app.paging_stats().pages_out, 50u) << "dirty pages must be written to backing";
  // Evicted-then-retouched pages page back in from backing store with their
  // contents intact -- verified by re-reading the first page.
}

TEST_F(GuestTest, EvictedDirtyPageContentsSurviveRoundTrip) {
  TestWorld world;
  TestAppKernel app;
  cksrm::LaunchParams params;
  params.page_groups = 1;  // 128 frames
  ASSERT_TRUE(world.srm().Launch(app, params).ok());

  ck::CkApi app_api(world.ck(), app.self(), world.machine().cpu(0));
  uint32_t space = app.CreateSpace(app_api);
  // Write a marker to page 0, dirty 150 more pages (evicting page 0), then
  // read the marker back.
  ckisa::Program program = MustAssemble(R"(
      li   t0, 0x00400000
      li   t1, 0xfeedface
      sw   t1, 0(t0)
      ; dirty pages 1..150
      li   t2, 0x00401000
      addi t3, r0, 150
      li   t4, 4096
    loop:
      sw   t3, 0(t2)
      add  t2, t2, t4
      addi t3, t3, -1
      bne  t3, r0, loop
      ; read the marker back (faults page 0 back in from backing store)
      li   t0, 0x00400000
      lw   s0, 0(t0)
      halt
  )", 0x10000);
  app.LoadProgramImage(space, program, /*writable=*/false);
  app.DefineZeroRegion(space, 0x00400000, 256, /*writable=*/true);

  ckapp::GuestThreadParams gparams;
  gparams.space_index = space;
  gparams.entry = 0x10000;
  uint32_t thread = app.CreateGuestThread(app_api, gparams);
  ASSERT_TRUE(world.RunUntil([&] { return app.thread(thread).finished; }, 3000000));
  EXPECT_EQ(app.thread(thread).saved.regs[ckisa::kRegS0], 0xfeedfaceu);
}

TEST_F(GuestTest, CopyOnWriteSharesUntilWrite) {
  ck::CkApi app_api(world_->ck(), app_.self(), world_->machine().cpu(0));
  uint32_t space = app_.CreateSpace(app_api);

  // Source frame with known contents, owned by the app kernel.
  cksim::PhysAddr source = app_.frames().Allocate();
  ASSERT_NE(source, 0u);
  uint32_t magic = 0xabcd0123;
  ASSERT_EQ(app_api.WritePhys(source, &magic, 4), CkStatus::kOk);

  ckisa::Program program = MustAssemble(R"(
      li   t0, 0x00600000
      lw   s0, 0(t0)      ; read through the cow mapping: sees the source
      li   t1, 0x11111111
      sw   t1, 0(t0)      ; write: triggers the deferred copy
      lw   s1, 0(t0)      ; sees the private copy
      halt
  )", 0x10000);
  app_.LoadProgramImage(space, program, /*writable=*/false);
  app_.DefineCowRegion(space, 0x00600000, 1, source);

  ckapp::GuestThreadParams params;
  params.space_index = space;
  params.entry = 0x10000;
  uint32_t thread = app_.CreateGuestThread(app_api, params);
  ASSERT_TRUE(world_->RunUntil([&] { return app_.thread(thread).finished; }));

  ckapp::ThreadRec& rec = app_.thread(thread);
  EXPECT_EQ(rec.saved.regs[ckisa::kRegS0], magic) << "read shares the source page";
  EXPECT_EQ(rec.saved.regs[ckisa::kRegS0 + 1], 0x11111111u) << "write got a private copy";
  EXPECT_GE(app_.paging_stats().cow_copies, 1u);

  // The source frame itself is untouched.
  uint32_t still = 0;
  ASSERT_EQ(app_api.ReadPhys(source, &still, 4), CkStatus::kOk);
  EXPECT_EQ(still, magic);
}

TEST_F(GuestTest, ConsistencyFaultForwarded) {
  ck::CkApi app_api(world_->ck(), app_.self(), world_->machine().cpu(0));
  uint32_t space = app_.CreateSpace(app_api);
  ckisa::Program program = MustAssemble(R"(
      li   t0, 0x00700000
      lw   t1, 0(t0)
      halt
  )", 0x10000);
  app_.LoadProgramImage(space, program, /*writable=*/false);
  app_.DefineZeroRegion(space, 0x00700000, 1, /*writable=*/true);

  ckapp::GuestThreadParams params;
  params.space_index = space;
  params.entry = 0x10000;
  uint32_t thread = app_.CreateGuestThread(app_api, params);

  // Run until the page is resident, then mark its frame remote: the next
  // access raises a consistency fault, which the base kernel treats as an
  // illegal access (terminate).
  ASSERT_TRUE(world_->RunUntil(
      [&] {
        ckapp::PageRecord* page = app_.space(space).FindPage(0x00700000);
        if (page != nullptr && page->where == ckapp::PageRecord::Where::kResident) {
          world_->ck().MarkFrameRemote(page->frame >> cksim::kPageShift, true);
          return true;
        }
        return app_.thread(thread).finished;
      },
      500000));
  ASSERT_TRUE(world_->RunUntil([&] { return app_.thread(thread).finished; }));
  EXPECT_GE(world_->ck().stats().consistency_faults, 0u);
}

}  // namespace

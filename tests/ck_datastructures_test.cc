// Unit tests for the Cache Kernel's internal data structures: the physical
// memory map (16-byte dependency records), the page-table arena, and the
// kernel object's memory access array.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/base/rng.h"
#include "src/ck/object_cache.h"
#include "src/ck/objects.h"
#include "src/ck/physmap.h"
#include "src/ck/table_arena.h"
#include "src/isa/assembler.h"
#include "src/isa/isa.h"
#include "src/sim/physmem.h"

namespace {

using ck::kNilRecord;
using ck::MemMapEntry;
using ck::PhysicalMemoryMap;
using ck::RecordType;

TEST(PhysMapTest, InsertFindRemove) {
  PhysicalMemoryMap pmap(16);
  EXPECT_EQ(pmap.in_use(), 0u);
  uint32_t a = pmap.Insert(100, 0x4000 | ck::kPvWritable, 3, RecordType::kPhysToVirt);
  uint32_t b = pmap.Insert(100, 0x8000, 3, RecordType::kPhysToVirt);
  uint32_t c = pmap.Insert(200, 0xc000, 4, RecordType::kPhysToVirt);
  ASSERT_NE(a, kNilRecord);
  ASSERT_NE(b, kNilRecord);
  ASSERT_NE(c, kNilRecord);
  EXPECT_EQ(pmap.in_use(), 3u);

  // Chain for key 100 has exactly a and b.
  std::set<uint32_t> found;
  for (uint32_t cur = pmap.FindFirst(100); cur != kNilRecord; cur = pmap.NextWithKey(cur)) {
    found.insert(cur);
  }
  EXPECT_EQ(found, (std::set<uint32_t>{a, b}));

  // Accessors decode what Insert packed.
  EXPECT_EQ(pmap.record(a).pv_frame(), 100u);
  EXPECT_EQ(pmap.record(a).pv_vaddr(), 0x4000u);
  EXPECT_EQ(pmap.record(a).pv_space_slot(), 3u);
  EXPECT_TRUE((pmap.record(a).pv_flags() & ck::kPvWritable) != 0);

  pmap.Remove(a);
  EXPECT_EQ(pmap.in_use(), 2u);
  found.clear();
  for (uint32_t cur = pmap.FindFirst(100); cur != kNilRecord; cur = pmap.NextWithKey(cur)) {
    found.insert(cur);
  }
  EXPECT_EQ(found, (std::set<uint32_t>{b}));
  EXPECT_EQ(pmap.record(a).type(), RecordType::kFree);
}

TEST(PhysMapTest, FindPvMatchesSpaceAndVaddr) {
  PhysicalMemoryMap pmap(16);
  uint32_t a = pmap.Insert(100, 0x4000, 1, RecordType::kPhysToVirt);
  uint32_t b = pmap.Insert(100, 0x4000, 2, RecordType::kPhysToVirt);  // other space
  uint32_t c = pmap.Insert(100, 0x5000, 1, RecordType::kPhysToVirt);  // other vaddr
  EXPECT_EQ(pmap.FindPv(100, 1, 0x4000), a);
  EXPECT_EQ(pmap.FindPv(100, 2, 0x4000), b);
  EXPECT_EQ(pmap.FindPv(100, 1, 0x5abc), c) << "page-aligned match";
  EXPECT_EQ(pmap.FindPv(100, 3, 0x4000), kNilRecord);
  EXPECT_EQ(pmap.FindPv(101, 1, 0x4000), kNilRecord);
}

TEST(PhysMapTest, SignalRecordsKeyedByPvIndex) {
  PhysicalMemoryMap pmap(16);
  uint32_t pv = pmap.Insert(100, 0x4000, 1, RecordType::kPhysToVirt);
  // Thread slot 7, generation 0x123456.
  uint32_t sig = pmap.Insert(pv, (0x123456u << 8) | 7, 0, RecordType::kSignal);
  ASSERT_NE(sig, kNilRecord);
  EXPECT_EQ(pmap.record(sig).signal_thread_slot(), 7u);
  EXPECT_EQ(pmap.record(sig).signal_thread_gen24(), 0x123456u);
  // Two-stage lookup: pv records for the frame, then signal records per pv.
  uint32_t found = kNilRecord;
  for (uint32_t cur = pmap.FindFirst(100); cur != kNilRecord; cur = pmap.NextWithKey(cur)) {
    if (pmap.record(cur).type() != RecordType::kPhysToVirt) {
      continue;
    }
    for (uint32_t s = pmap.FindFirst(cur); s != kNilRecord; s = pmap.NextWithKey(s)) {
      if (pmap.record(s).type() == RecordType::kSignal) {
        found = s;
      }
    }
  }
  EXPECT_EQ(found, sig);
}

TEST(PhysMapTest, ExhaustionReturnsNil) {
  PhysicalMemoryMap pmap(4);
  for (int i = 0; i < 4; ++i) {
    ASSERT_NE(pmap.Insert(i, 0, 0, RecordType::kPhysToVirt), kNilRecord);
  }
  EXPECT_TRUE(pmap.full());
  EXPECT_EQ(pmap.Insert(99, 0, 0, RecordType::kPhysToVirt), kNilRecord);
  pmap.Remove(pmap.FindFirst(2));
  EXPECT_NE(pmap.Insert(99, 0, 0, RecordType::kPhysToVirt), kNilRecord);
}

// Minimal Ops glue for driving ObjectCache's mapping-shaped clock scan
// directly against a bare PhysicalMemoryMap (no CacheKernel).
struct MapScanOps {
  static constexpr int kPasses = 1;
  static constexpr bool kScanOccupiedSteps = true;
  ck::ObjectCache<PhysicalMemoryMap>& map;
  uint32_t evicted = kNilRecord;
  bool Occupied(uint32_t index) const {
    return map.record(index).type() == RecordType::kPhysToVirt;
  }
  bool Eligible(uint32_t, int) const { return true; }
  bool Pinned(uint32_t) const { return false; }
  bool TestAndClearReferenced(uint32_t) { return false; }
  void Evict(uint32_t index) {
    evicted = index;
    map.Remove(index);
  }
};

TEST(PhysMapTest, MappingScanSkipsNonPvRecords) {
  ck::ObjectCache<PhysicalMemoryMap> pmap(8);
  uint32_t pv1 = pmap.Insert(1, 0, 0, RecordType::kPhysToVirt);
  uint32_t sig = pmap.Insert(pv1, 5, 0, RecordType::kSignal);
  uint32_t pv2 = pmap.Insert(2, 0, 0, RecordType::kPhysToVirt);
  EXPECT_EQ(pmap.load_seq(sig), 0u) << "only pv records participate in replacement";
  EXPECT_NE(pmap.load_seq(pv1), 0u);

  // The clock scan visits only pv records, evicting in hand order.
  std::set<uint32_t> seen;
  for (int i = 0; i < 2; ++i) {
    MapScanOps ops{pmap};
    uint64_t steps = 0;
    ASSERT_TRUE(pmap.Reclaim(ck::ReplacementPolicy::kClock, ops, steps));
    ASSERT_NE(ops.evicted, kNilRecord);
    EXPECT_EQ(steps, 1u) << "first occupied record is unreferenced and unpinned";
    seen.insert(ops.evicted);
  }
  EXPECT_EQ(seen, (std::set<uint32_t>{pv1, pv2}));

  // Only the signal record remains: no pv candidates left.
  MapScanOps ops{pmap};
  uint64_t steps = 0;
  EXPECT_FALSE(pmap.Reclaim(ck::ReplacementPolicy::kClock, ops, steps));
}

TEST(PhysMapTest, VersionBumpsOnEveryMutation) {
  PhysicalMemoryMap pmap(8);
  uint64_t v0 = pmap.version().ReadBegin();
  uint32_t pv = pmap.Insert(1, 0, 0, RecordType::kPhysToVirt);
  EXPECT_FALSE(pmap.version().ReadValidate(v0));
  uint64_t v1 = pmap.version().ReadBegin();
  EXPECT_TRUE(pmap.version().ReadValidate(v1));
  pmap.Remove(pv);
  EXPECT_FALSE(pmap.version().ReadValidate(v1));
}

TEST(PhysMapTest, RandomChurnKeepsChainsConsistent) {
  ckbase::Rng rng(99);
  PhysicalMemoryMap pmap(64);
  std::multimap<uint32_t, uint32_t> model;  // key -> index
  for (int op = 0; op < 2000; ++op) {
    if (model.empty() || (rng.Chance(3, 5) && !pmap.full())) {
      uint32_t key = static_cast<uint32_t>(rng.Below(16));
      uint32_t index = pmap.Insert(key, 0, 0, RecordType::kPhysToVirt);
      if (index != kNilRecord) {
        model.emplace(key, index);
      }
    } else {
      auto it = model.begin();
      std::advance(it, static_cast<long>(rng.Below(model.size())));
      pmap.Remove(it->second);
      model.erase(it);
    }
    // Validate every chain against the model.
    for (uint32_t key = 0; key < 16; ++key) {
      std::set<uint32_t> chain;
      for (uint32_t cur = pmap.FindFirst(key); cur != kNilRecord; cur = pmap.NextWithKey(cur)) {
        chain.insert(cur);
      }
      std::set<uint32_t> expect;
      auto [lo, hi] = model.equal_range(key);
      for (auto it = lo; it != hi; ++it) {
        expect.insert(it->second);
      }
      ASSERT_EQ(chain, expect) << "key " << key << " at op " << op;
    }
    ASSERT_EQ(pmap.in_use(), model.size());
  }
}

TEST(TableArenaTest, AllocateFreeRecycle) {
  cksim::PhysicalMemory memory(1 << 20);
  ck::TableArena arena(memory, 0x10000, 4096);
  EXPECT_EQ(arena.blocks_total(), 16u);

  cksim::PhysAddr t512 = arena.Allocate(512);
  ASSERT_NE(t512, 0u);
  EXPECT_EQ(t512 % 256, 0u);
  cksim::PhysAddr t256 = arena.Allocate(256);
  ASSERT_NE(t256, 0u);
  EXPECT_EQ(arena.blocks_free(), 16u - 3u);

  // Zeroed on allocation.
  for (uint32_t off = 0; off < 512; off += 4) {
    EXPECT_EQ(memory.ReadWord(t512 + off), 0u);
  }

  memory.WriteWord(t256 + 8, 0xdeadbeef);
  arena.Free(t256, 256);
  cksim::PhysAddr again = arena.Allocate(256);
  EXPECT_EQ(again, t256) << "free list reuses the block";
  EXPECT_EQ(memory.ReadWord(again + 8), 0u) << "recycled blocks are re-zeroed";

  arena.Free(t512, 512);
  arena.Free(again, 256);
  EXPECT_EQ(arena.blocks_free(), 16u);
}

TEST(TableArenaTest, ExhaustionReturnsZero) {
  cksim::PhysicalMemory memory(1 << 20);
  ck::TableArena arena(memory, 0x10000, 1024);  // 4 blocks
  EXPECT_NE(arena.Allocate(512), 0u);
  EXPECT_NE(arena.Allocate(512), 0u);
  EXPECT_EQ(arena.Allocate(256), 0u);
  EXPECT_EQ(arena.Allocate(512), 0u);
}

TEST(KernelObjectTest, AccessArrayPacking) {
  ck::KernelObject kernel;
  // 2 bits per group; defaults to none.
  EXPECT_EQ(kernel.GroupAccessOf(0), ck::GroupAccess::kNone);
  kernel.SetGroupAccess(0, ck::GroupAccess::kReadWrite);
  kernel.SetGroupAccess(1, ck::GroupAccess::kRead);
  kernel.SetGroupAccess(5, ck::GroupAccess::kReadWrite);
  EXPECT_EQ(kernel.GroupAccessOf(0), ck::GroupAccess::kReadWrite);
  EXPECT_EQ(kernel.GroupAccessOf(1), ck::GroupAccess::kRead);
  EXPECT_EQ(kernel.GroupAccessOf(2), ck::GroupAccess::kNone);
  EXPECT_EQ(kernel.GroupAccessOf(5), ck::GroupAccess::kReadWrite);
  // Neighbors within the same byte are independent.
  kernel.SetGroupAccess(1, ck::GroupAccess::kNone);
  EXPECT_EQ(kernel.GroupAccessOf(0), ck::GroupAccess::kReadWrite);
  EXPECT_EQ(kernel.GroupAccessOf(1), ck::GroupAccess::kNone);
}

TEST(KernelObjectTest, AllowsPhysicalByGroup) {
  ck::KernelObject kernel;
  kernel.SetGroupAccess(2, ck::GroupAccess::kRead);
  cksim::PhysAddr in_group2 = 2 * cksim::kPageGroupBytes + 0x1234;
  EXPECT_TRUE(kernel.AllowsPhysical(in_group2, /*write=*/false));
  EXPECT_FALSE(kernel.AllowsPhysical(in_group2, /*write=*/true));
  EXPECT_FALSE(kernel.AllowsPhysical(3 * cksim::kPageGroupBytes, false));
  // Out-of-array groups are denied, not UB.
  EXPECT_EQ(kernel.GroupAccessOf(1u << 20), ck::GroupAccess::kNone);
}

class AssemblerRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AssemblerRoundTripTest, DisassembleReassembleFixpoint) {
  // Random R/I-type instructions survive disassemble -> reassemble.
  ckbase::Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    uint32_t op = static_cast<uint32_t>(rng.Range(2, 22));  // arith + memory ops
    uint32_t word;
    if (op <= 12) {
      word = ckisa::EncodeR(static_cast<ckisa::Op>(op), static_cast<uint32_t>(rng.Below(32)),
                            static_cast<uint32_t>(rng.Below(32)),
                            static_cast<uint32_t>(rng.Below(32)));
    } else {
      // lui has no rs1 operand in the text form, so its rs1 bits must be 0
      // for the round trip to be exact.
      uint32_t rs1 = op == static_cast<uint32_t>(ckisa::Op::kLui)
                         ? 0
                         : static_cast<uint32_t>(rng.Below(32));
      word = ckisa::Encode(static_cast<ckisa::Op>(op), static_cast<uint32_t>(rng.Below(32)), rs1,
                           static_cast<uint32_t>(rng.Below(65536)));
    }
    std::string text = ckisa::Disassemble(word);
    ckisa::AssembleResult result = ckisa::Assemble(text, 0);
    ASSERT_TRUE(result.ok) << text << ": " << result.error;
    ASSERT_EQ(result.program.words.size(), 1u) << text;
    EXPECT_EQ(result.program.words[0], word) << text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AssemblerRoundTripTest, ::testing::Values(11u, 22u, 33u, 44u));

}  // namespace

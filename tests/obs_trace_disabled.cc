// Compiled with CK_TRACE_ENABLED=0 (see tests/CMakeLists.txt): proves the
// trace macro really vanishes. CK_TRACE's arguments carry side effects; if
// the disabled macro evaluated any of them, the counter would move.

#include "src/obs/trace.h"

#if CK_TRACE_ENABLED
#error "this translation unit must be built with -DCK_TRACE_ENABLED=0"
#endif

int DisabledTraceEvaluations() {
  int evaluations = 0;
  obs::TraceRing ring(4, 0);
  auto effect = [&evaluations](uint32_t v) {
    ++evaluations;
    return v;
  };
  (void)effect;  // referenced only from the (compiled-out) macro below
  CK_TRACE(&ring, static_cast<obs::EventType>(effect(0)), effect(1), effect(2), effect(3));
  CK_TRACE(nullptr, obs::EventType::kObjectLoad, effect(4), 0, 0);
  // The ring itself still works when driven directly -- only the macro is
  // compiled out.
  ring.Push(obs::EventType::kObjectLoad, 1, 2, 3);
  if (ring.size() != 1) {
    return -1;
  }
  return evaluations;
}

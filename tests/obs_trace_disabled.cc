// Compiled with CK_TRACE_ENABLED=0 (see tests/CMakeLists.txt): proves the
// trace macro really vanishes. CK_TRACE's arguments carry side effects; if
// the disabled macro evaluated any of them, the counter would move.

#include "src/obs/trace.h"

#if CK_TRACE_ENABLED
#error "this translation unit must be built with -DCK_TRACE_ENABLED=0"
#endif

// Wraparound with the macro compiled out: the ring driven directly still
// wraps correctly (capacity 4, 10 pushes -> 4 retained, 6 dropped, newest
// kept), while the same 10 events issued through CK_TRACE leave no mark.
// Returns 0 on success, a nonzero step number on the first failed check.
int DisabledTraceWraparound() {
  obs::TraceRing ring(4, 0);
  for (uint64_t i = 0; i < 10; ++i) {
    CK_TRACE(&ring, obs::EventType::kTlbMiss, i, 0, static_cast<uint32_t>(i));
  }
  if (ring.size() != 0 || ring.pushed() != 0 || ring.dropped() != 0) {
    return 1;
  }
  for (uint64_t i = 0; i < 10; ++i) {
    ring.Push(obs::EventType::kTlbMiss, i, 0, static_cast<uint32_t>(i));
  }
  if (ring.size() != 4 || ring.pushed() != 10 || ring.dropped() != 6) {
    return 2;
  }
  for (size_t i = 0; i < 4; ++i) {
    if (ring.at(i).when != 6 + i || ring.at(i).arg32 != 6 + i) {
      return 3;
    }
  }
  return 0;
}

int DisabledTraceEvaluations() {
  int evaluations = 0;
  obs::TraceRing ring(4, 0);
  auto effect = [&evaluations](uint32_t v) {
    ++evaluations;
    return v;
  };
  (void)effect;  // referenced only from the (compiled-out) macro below
  CK_TRACE(&ring, static_cast<obs::EventType>(effect(0)), effect(1), effect(2), effect(3));
  CK_TRACE(nullptr, obs::EventType::kObjectLoad, effect(4), 0, 0);
  // The ring itself still works when driven directly -- only the macro is
  // compiled out.
  ring.Push(obs::EventType::kObjectLoad, 1, 2, 3);
  if (ring.size() != 1) {
    return -1;
  }
  return evaluations;
}

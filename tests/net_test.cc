// Networking: application kernels talking over the simulated Ethernet (the
// "non-trivial driver" device of section 2.2) and SRM I/O usage control
// (section 4.3) driven by real device packet counts.

#include <gtest/gtest.h>

#include "src/sim/devices.h"
#include "tests/test_harness.h"

namespace {

using ckbase::CkStatus;
using cktest::TestWorld;

class PacketCollector : public ck::NativeProgram {
 public:
  explicit PacketCollector(ckapp::AppKernelBase& kernel, cksim::VirtAddr rx_vbase,
                           cksim::PhysAddr rx_frames)
      : kernel_(kernel), rx_vbase_(rx_vbase), rx_frames_(rx_frames) {}

  ck::NativeOutcome Step(ck::NativeCtx&) override {
    ck::NativeOutcome outcome;
    outcome.action = ck::NativeOutcome::Action::kBlock;
    return outcome;
  }

  void OnSignal(cksim::VirtAddr addr, ck::NativeCtx& ctx) override {
    // Demultiplex: the slot's physical frame holds [len][dest, payload...].
    uint32_t slot = (addr - rx_vbase_) / cksim::kPageSize;
    cksim::PhysAddr frame = rx_frames_ + slot * cksim::kPageSize;
    uint32_t len = 0;
    ctx.api().ReadPhys(frame, &len, 4);
    std::vector<uint8_t> bytes(len);
    if (len > 0) {
      ctx.api().ReadPhys(frame + 4, bytes.data(), len);
    }
    packets.push_back(std::move(bytes));
  }

  ckapp::AppKernelBase& kernel_;
  cksim::VirtAddr rx_vbase_;
  cksim::PhysAddr rx_frames_;
  std::vector<std::vector<uint8_t>> packets;
};

// One machine, two app kernels, each with its own Ethernet station on a hub.
class EthernetWorld {
 public:
  EthernetWorld() : app1_("station1", 32), app2_("station2", 32) {
    uint32_t group1 = world_.srm().ReserveGroups(1).value();
    uint32_t group2 = world_.srm().ReserveGroups(1).value();
    eth1_ = std::make_unique<cksim::EthernetDevice>(world_.machine().memory(), &world_.ck(),
                                                    group1 * cksim::kPageGroupBytes, 2, 4, 1000,
                                                    /*station=*/1);
    eth2_ = std::make_unique<cksim::EthernetDevice>(world_.machine().memory(), &world_.ck(),
                                                    group2 * cksim::kPageGroupBytes, 2, 4, 1000,
                                                    /*station=*/2);
    hub_.Attach(eth1_.get());
    hub_.Attach(eth2_.get());
    world_.machine().AttachDevice(eth1_.get());
    world_.machine().AttachDevice(eth2_.get());

    world_.Launch(app1_, 1);
    world_.Launch(app2_, 1);
    world_.srm().GrantSharedGroups(app1_, group1, 1, ck::GroupAccess::kReadWrite);
    world_.srm().GrantSharedGroups(app2_, group2, 1, ck::GroupAccess::kReadWrite);
  }

  // Transmit `payload` from a station: write into a tx slot and signal it.
  CkStatus Send(ckapp::AppKernelBase& app, uint32_t space, cksim::VirtAddr tx_vbase,
                cksim::EthernetDevice& device, uint8_t dest,
                const std::vector<uint8_t>& payload) {
    ck::CkApi api(world_.ck(), app.self(), world_.machine().cpu(0));
    std::vector<uint8_t> wire;
    wire.push_back(dest);
    wire.insert(wire.end(), payload.begin(), payload.end());
    uint32_t len = static_cast<uint32_t>(wire.size());
    api.WritePhys(device.tx_slot(0), &len, 4);
    api.WritePhys(device.tx_slot(0) + 4, wire.data(), len);
    CkStatus status = app.EnsureMappingLoaded(api, space, tx_vbase);
    if (status != CkStatus::kOk) {
      return status;
    }
    return api.Signal(app.space(space).ck_id, tx_vbase);
  }

  TestWorld world_;
  ckapp::AppKernelBase app1_, app2_;
  std::unique_ptr<cksim::EthernetDevice> eth1_, eth2_;
  cksim::EthernetHub hub_;
};

TEST(NetTest, StationToStationPacketDelivery) {
  EthernetWorld net;
  ck::CkApi api1(net.world_.ck(), net.app1_.self(), net.world_.machine().cpu(0));
  ck::CkApi api2(net.world_.ck(), net.app2_.self(), net.world_.machine().cpu(0));
  uint32_t space1 = net.app1_.CreateSpace(api1);
  uint32_t space2 = net.app2_.CreateSpace(api2);

  // Station 1: map the tx region. Station 2: map the rx region with a
  // collector thread demultiplexing inbound packets.
  net.app1_.DefineFrameRegion(space1, 0x00800000, 2, net.eth1_->tx_slot(0), true, true);
  PacketCollector collector(net.app2_, 0x00900000, net.eth2_->rx_slot(0));
  uint32_t collector_thread = net.app2_.CreateNativeThread(api2, space2, &collector, 15);
  net.app2_.DefineFrameRegion(space2, 0x00900000, 4, net.eth2_->rx_slot(0), false, true,
                              collector_thread);
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(net.app2_.EnsureMappingLoaded(api2, space2, 0x00900000 + i * cksim::kPageSize),
              CkStatus::kOk);
  }

  ASSERT_EQ(net.Send(net.app1_, space1, 0x00800000, *net.eth1_, /*dest=*/2, {0xaa, 0xbb}),
            CkStatus::kOk);
  ASSERT_TRUE(net.world_.RunUntil([&] { return !collector.packets.empty(); }, 500000));
  ASSERT_EQ(collector.packets[0].size(), 3u);
  EXPECT_EQ(collector.packets[0][0], 2);  // dest byte
  EXPECT_EQ(collector.packets[0][1], 0xaa);
  EXPECT_EQ(collector.packets[0][2], 0xbb);
  EXPECT_EQ(net.eth1_->packets_sent(), 1u);
  EXPECT_EQ(net.eth2_->packets_received(), 1u);
}

TEST(NetTest, SrmIoQuotaDisconnectsFromDeviceCounts) {
  EthernetWorld net;
  ck::CkApi api1(net.world_.ck(), net.app1_.self(), net.world_.machine().cpu(0));
  uint32_t space1 = net.app1_.CreateSpace(api1);
  net.app1_.DefineFrameRegion(space1, 0x00800000, 2, net.eth1_->tx_slot(0), true, true);

  // The SRM's channel manager polls the device transfer counters
  // ("interfaces provide packet transmission and reception counts which can
  // be used to calculate network transfer rates", section 4.3).
  net.world_.srm().SetIoQuota(net.app1_, 5);
  uint64_t accounted = 0;
  bool connected = true;
  for (int burst = 0; burst < 10 && connected; ++burst) {
    net.Send(net.app1_, space1, 0x00800000, *net.eth1_, 2, {0x01});
    net.world_.machine().RunFor(20000);
    uint64_t sent = net.eth1_->packets_sent();
    connected = net.world_.srm().RecordIo(net.app1_, sent - accounted);
    accounted = sent;
  }
  EXPECT_FALSE(connected) << "6th packet must exceed the 5-packet quota";
  EXPECT_TRUE(net.world_.srm().IsIoDisconnected(net.app1_));
  EXPECT_LE(net.eth1_->packets_sent(), 7u);

  // A new accounting window reconnects (the disconnection is temporary).
  net.world_.srm().ResetIoWindow();
  EXPECT_FALSE(net.world_.srm().IsIoDisconnected(net.app1_));
}

TEST(NetTest, OversizePacketIsDropped) {
  EthernetWorld net;
  ck::CkApi api1(net.world_.ck(), net.app1_.self(), net.world_.machine().cpu(0));
  uint32_t space1 = net.app1_.CreateSpace(api1);
  net.app1_.DefineFrameRegion(space1, 0x00800000, 2, net.eth1_->tx_slot(0), true, true);

  uint32_t huge = cksim::kPageSize;  // length claims more than a slot holds
  api1.WritePhys(net.eth1_->tx_slot(0), &huge, 4);
  ASSERT_EQ(net.app1_.EnsureMappingLoaded(api1, space1, 0x00800000), CkStatus::kOk);
  ASSERT_EQ(api1.Signal(net.app1_.space(space1).ck_id, 0x00800000), CkStatus::kOk);
  net.world_.machine().RunFor(50000);
  EXPECT_EQ(net.eth1_->packets_sent(), 0u);
  EXPECT_EQ(net.eth1_->packets_dropped(), 1u);
}

}  // namespace

// Shared test fixture: a booted machine with a Cache Kernel and an SRM.

#ifndef TESTS_TEST_HARNESS_H_
#define TESTS_TEST_HARNESS_H_

#include <cstdlib>
#include <functional>
#include <memory>

#include "src/appkernel/app_kernel_base.h"
#include "src/ck/cache_kernel.h"
#include "src/sim/machine.h"
#include "src/srm/srm.h"

namespace cktest {

struct WorldOptions {
  uint32_t cpus = 4;
  uint32_t memory_bytes = 16u << 20;
  ck::CacheKernelConfig ck;
};

// CK_CPUS_PARALLEL=1 in the environment runs every TestWorld with the batched
// intra-MPM dispatch protocol on host worker threads (one per simulated CPU).
// The protocol is bit-identical to serial dispatch, so every suite must still
// pass unchanged -- this is how scripts/verify.sh's TSan leg drives the
// worker-pool code through the full test surface.
inline bool EnvCpusParallel() {
  const char* v = std::getenv("CK_CPUS_PARALLEL");
  return v != nullptr && v[0] == '1';
}

// One MPM: machine + Cache Kernel + booted SRM.
class TestWorld {
 public:
  explicit TestWorld(const WorldOptions& options = WorldOptions())
      : machine_(MakeMachineConfig(options)),
        kernel_(machine_, WithEnvOverrides(options).ck),
        srm_(kernel_) {
    srm_.Boot();
  }

  cksim::Machine& machine() { return machine_; }
  ck::CacheKernel& ck() { return kernel_; }
  cksrm::Srm& srm() { return srm_; }
  ck::CkApi Api() { return srm_.Api(); }

  // Launch an app kernel with a default grant.
  ck::KernelId Launch(ckapp::AppKernelBase& app, uint32_t page_groups = 4,
                      uint8_t max_priority = 30) {
    cksrm::LaunchParams params;
    params.page_groups = page_groups;
    params.max_priority = max_priority;
    ckbase::Result<ck::KernelId> result = srm_.Launch(app, params);
    return result.ok() ? result.value() : ck::KernelId{};
  }

  // Run machine turns until `done` or the turn limit.
  bool RunUntil(const std::function<bool()>& done, uint64_t max_turns = 2000000) {
    for (uint64_t i = 0; i < max_turns; ++i) {
      if (done()) {
        return true;
      }
      machine_.Step();
    }
    return done();
  }

 private:
  static cksim::MachineConfig MakeMachineConfig(const WorldOptions& options) {
    cksim::MachineConfig config;
    config.cpu_count = options.cpus;
    config.memory_bytes = options.memory_bytes;
    return config;
  }

  static WorldOptions WithEnvOverrides(WorldOptions options) {
    if (EnvCpusParallel()) {
      options.ck.cpus_parallel = true;
      options.ck.cpu_host_threads = options.cpus;
    }
    return options;
  }

  cksim::Machine machine_;
  ck::CacheKernel kernel_;
  cksrm::Srm srm_;
};

}  // namespace cktest

#endif  // TESTS_TEST_HARNESS_H_

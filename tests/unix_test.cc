// UNIX emulator: processes, syscalls, SEGV delivery, sleep/wakeup with
// thread unload, swap, scheduler aging.

#include <gtest/gtest.h>

#include "src/isa/assembler.h"
#include "src/unixemu/unix_emulator.h"
#include "tests/test_harness.h"

namespace {

using ckbase::CkStatus;
using ckunix::Process;
using ckunix::UnixConfig;
using ckunix::UnixEmulator;
using cktest::TestWorld;

ckisa::Program MustAssemble(const char* source, uint32_t base = 0x10000) {
  ckisa::AssembleResult result = ckisa::Assemble(source, base);
  EXPECT_TRUE(result.ok) << result.error;
  return result.program;
}

class UnixTest : public ::testing::Test {
 protected:
  explicit UnixTest(UnixConfig config = UnixConfig()) {
    world_ = std::make_unique<TestWorld>();
    emulator_ = std::make_unique<UnixEmulator>(world_->ck(), config);
    cksrm::LaunchParams params;
    params.page_groups = 8;
    params.max_priority = 31;          // scheduler threads run at 30
    params.locked_kernel_object = true;  // lock chains for the scheduler
                                         // threads end at the kernel object
    EXPECT_TRUE(world_->srm().Launch(*emulator_, params).ok());
    ck::CkApi api(world_->ck(), emulator_->self(), world_->machine().cpu(0));
    emulator_->Start(api);
  }

  ck::CkApi Api() { return ck::CkApi(world_->ck(), emulator_->self(), world_->machine().cpu(0)); }

  bool RunToExit(int pid, uint64_t max_turns = 3000000) {
    return world_->RunUntil(
        [&] { return emulator_->process(pid).state == Process::State::kZombie; }, max_turns);
  }

  std::unique_ptr<TestWorld> world_;
  std::unique_ptr<UnixEmulator> emulator_;
};

TEST_F(UnixTest, GetPidReturnsStablePid) {
  ck::CkApi api = Api();
  ckisa::Program program = MustAssemble(R"(
      trap 16         ; getpid
      mv   s0, a0
      trap 16
      mv   s1, a0
      addi a0, r0, 0
      trap 17         ; exit(0)
  )");
  int pid1 = emulator_->Exec(api, program);
  int pid2 = emulator_->Exec(api, program);
  ASSERT_TRUE(RunToExit(pid1));
  ASSERT_TRUE(RunToExit(pid2));

  ckapp::ThreadRec& rec1 = emulator_->thread(emulator_->process(pid1).thread_index);
  ckapp::ThreadRec& rec2 = emulator_->thread(emulator_->process(pid2).thread_index);
  EXPECT_EQ(rec1.saved.regs[ckisa::kRegS0], static_cast<uint32_t>(pid1));
  EXPECT_EQ(rec1.saved.regs[ckisa::kRegS0 + 1], static_cast<uint32_t>(pid1));
  EXPECT_EQ(rec2.saved.regs[ckisa::kRegS0], static_cast<uint32_t>(pid2));
  EXPECT_NE(pid1, pid2);
}

TEST_F(UnixTest, ExitCodeRecorded) {
  ck::CkApi api = Api();
  int pid = emulator_->Exec(api, MustAssemble(R"(
      addi a0, r0, 42
      trap 17
  )"));
  ASSERT_TRUE(RunToExit(pid));
  EXPECT_EQ(emulator_->process(pid).exit_code, 42);
}

TEST_F(UnixTest, ConsoleWrite) {
  ck::CkApi api = Api();
  // "hi!\n" stored as words in the data segment.
  int pid = emulator_->Exec(api, MustAssemble(R"(
      la   a0, msg
      addi a1, r0, 4
      trap 18         ; write(buf, len)
      mv   s0, a0
      addi a0, r0, 0
      trap 17
    msg:
      .word 0x0a216968  ; "hi!\n" little-endian
  )"));
  ASSERT_TRUE(RunToExit(pid));
  EXPECT_EQ(emulator_->process(pid).console, "hi!\n");
  ckapp::ThreadRec& rec = emulator_->thread(emulator_->process(pid).thread_index);
  EXPECT_EQ(rec.saved.regs[ckisa::kRegS0], 4u);
}

TEST_F(UnixTest, SbrkGrowsHeap) {
  ck::CkApi api = Api();
  int pid = emulator_->Exec(api, MustAssemble(R"(
      addi a0, r0, 2
      trap 19         ; sbrk(2 pages)
      mv   t0, a0     ; old break
      li   t1, 0x1234abcd
      sw   t1, 0(t0)  ; touch the new heap (demand faults)
      sw   t1, 4096(t0)
      lw   s0, 0(t0)
      addi a0, r0, 0
      trap 17
  )"));
  ASSERT_TRUE(RunToExit(pid));
  ckapp::ThreadRec& rec = emulator_->thread(emulator_->process(pid).thread_index);
  EXPECT_EQ(rec.saved.regs[ckisa::kRegS0], 0x1234abcdu);
  EXPECT_EQ(emulator_->process(pid).exit_code, 0);
}

TEST_F(UnixTest, SegvWithoutHandlerKillsProcess) {
  ck::CkApi api = Api();
  int pid = emulator_->Exec(api, MustAssemble(R"(
      li   t0, 0x0bad0000
      lw   t1, 0(t0)
      addi a0, r0, 0
      trap 17
  )"));
  ASSERT_TRUE(RunToExit(pid));
  EXPECT_EQ(emulator_->process(pid).exit_code, -11);
  EXPECT_TRUE(emulator_->process(pid).segv_fault);
}

TEST_F(UnixTest, SegvHandlerGetsControl) {
  ck::CkApi api = Api();
  // Register a SEGV handler; the handler receives the faulting address in a0
  // and exits 7 ("recovered").
  int pid = emulator_->Exec(api, MustAssemble(R"(
      la   a0, onsegv
      trap 22         ; sigsegv(handler)
      li   t0, 0x0bad0000
      lw   t1, 0(t0)  ; boom
      addi a0, r0, 1  ; not reached
      trap 17
    onsegv:
      mv   s0, a0     ; faulting address
      addi a0, r0, 7
      trap 17
  )"));
  ASSERT_TRUE(RunToExit(pid));
  EXPECT_EQ(emulator_->process(pid).exit_code, 7);
  ckapp::ThreadRec& rec = emulator_->thread(emulator_->process(pid).thread_index);
  EXPECT_EQ(rec.saved.regs[ckisa::kRegS0], 0x0bad0000u);
}

TEST_F(UnixTest, ShortSleepBlocksAndResumes) {
  ck::CkApi api = Api();
  int pid = emulator_->Exec(api, MustAssemble(R"(
      trap 23         ; gettime -> us
      mv   s0, a0
      addi a0, r0, 500  ; sleep 500us (short: stays loaded)
      trap 20
      trap 23
      mv   s1, a0
      addi a0, r0, 0
      trap 17
  )"));
  ASSERT_TRUE(RunToExit(pid));
  ckapp::ThreadRec& rec = emulator_->thread(emulator_->process(pid).thread_index);
  uint32_t before = rec.saved.regs[ckisa::kRegS0];
  uint32_t after = rec.saved.regs[ckisa::kRegS0 + 1];
  EXPECT_GE(after - before, 500u) << "sleep must last at least the requested time";
}

TEST_F(UnixTest, LongSleepUnloadsThreadDescriptor) {
  ck::CkApi api = Api();
  int pid = emulator_->Exec(api, MustAssemble(R"(
      li   a0, 20000   ; 20ms: above the unload threshold
      trap 20
      addi a0, r0, 5
      trap 17
  )"));
  // Run until the process is sleeping with its thread unloaded.
  ASSERT_TRUE(world_->RunUntil([&] {
    return emulator_->process(pid).state == Process::State::kSleeping &&
           !emulator_->thread(emulator_->process(pid).thread_index).loaded;
  }));
  // "In this swapped state, it consumes no Cache Kernel descriptors."
  // Wakeup reloads it and the syscall completes.
  ASSERT_TRUE(RunToExit(pid));
  EXPECT_EQ(emulator_->process(pid).exit_code, 5);
}

TEST_F(UnixTest, ManyProcessesTimeshare) {
  ck::CkApi api = Api();
  ckisa::Program program = MustAssemble(R"(
      addi t0, r0, 0
      addi t1, r0, 1
      li   t2, 500
    loop:
      add  t0, t0, t1
      addi t1, t1, 1
      bge  t2, t1, loop
      mv   a0, t0
      trap 17          ; exit(sum)
  )");
  std::vector<int> pids;
  for (int i = 0; i < 8; ++i) {
    pids.push_back(emulator_->Exec(api, program));
  }
  for (int pid : pids) {
    ASSERT_TRUE(RunToExit(pid)) << "pid " << pid;
    EXPECT_EQ(emulator_->process(pid).exit_code, 125250);
  }
  EXPECT_TRUE(emulator_->AllExited());
}

TEST_F(UnixTest, SwapOutAndWake) {
  ck::CkApi api = Api();
  int pid = emulator_->Exec(api, MustAssemble(R"(
      li   t3, 0x20000000
      addi a0, r0, 4
      trap 19          ; sbrk 4 pages
      li   t1, 0xabcd1234
      sw   t1, 0(t3)   ; dirty a heap page
      li   a0, 50000
      trap 20          ; long sleep
      lw   s0, 0(t3)   ; read it back after swap-in
      mv   a0, s0
      trap 17
  )"));
  // Wait for the long sleep (thread unloaded).
  ASSERT_TRUE(world_->RunUntil([&] {
    return emulator_->process(pid).state == Process::State::kSleeping;
  }));
  // Swap the whole process out: space unloaded, frames paged out.
  emulator_->SwapOutProcess(api, pid);
  EXPECT_TRUE(emulator_->process(pid).swapped);
  uint64_t pages_out = emulator_->paging_stats().pages_out;
  EXPECT_GT(pages_out, 0u) << "dirty heap page must be written to backing store";

  // Wake: everything reloads on demand and the data survived.
  emulator_->WakeProcess(api, pid);
  ASSERT_TRUE(RunToExit(pid));
  EXPECT_EQ(static_cast<uint32_t>(emulator_->process(pid).exit_code), 0xabcd1234u);
}

TEST_F(UnixTest, SchedulerThreadAgesComputeBoundProcesses) {
  ck::CkApi api = Api();
  // A long compute loop: the per-processor scheduler thread should demote it
  // to batch priority within a few rescheduling intervals.
  int pid = emulator_->Exec(api, MustAssemble(R"(
      li   t2, 2000000
      addi t1, r0, 1
      addi t0, r0, 0
    loop:
      add  t0, t0, t1
      blt  t0, t2, loop
      addi a0, r0, 0
      trap 17
  )"));
  ckapp::ThreadRec& rec = emulator_->thread(emulator_->process(pid).thread_index);
  uint8_t initial = rec.priority;
  ASSERT_TRUE(world_->RunUntil(
      [&] {
        return rec.priority < initial ||
               emulator_->process(pid).state == Process::State::kZombie;
      },
      5000000));
  EXPECT_LT(rec.priority, initial) << "compute-bound process must be aged down";
}

TEST_F(UnixTest, NiceLowersPriority) {
  ck::CkApi api = Api();
  int pid = emulator_->Exec(api, MustAssemble(R"(
      addi a0, r0, 3
      trap 21          ; nice(3)
      mv   s0, a0
      addi a0, r0, 0
      trap 17
  )"));
  ASSERT_TRUE(RunToExit(pid));
  ckapp::ThreadRec& rec = emulator_->thread(emulator_->process(pid).thread_index);
  EXPECT_EQ(rec.saved.regs[ckisa::kRegS0], 3u);
  EXPECT_EQ(rec.priority, 3u);
}

TEST_F(UnixTest, SpawnAndWaitPid) {
  ck::CkApi api = Api();
  // Child: exits 33.
  uint32_t child_index = emulator_->RegisterProgram(MustAssemble(R"(
      addi a0, r0, 33
      trap 17
  )"));
  ASSERT_EQ(child_index, 0u);
  // Parent: spawns the child, waits, exits with (child code + 1).
  int parent = emulator_->Exec(api, MustAssemble(R"(
      addi a0, r0, 0
      trap 24          ; spawn(program 0) -> child pid
      mv   s0, a0
      trap 25          ; waitpid(child) -> exit code (a0 already = pid)
      addi a0, a0, 1
      trap 17
  )"));
  ASSERT_TRUE(RunToExit(parent));
  EXPECT_EQ(emulator_->process(parent).exit_code, 34);
  EXPECT_EQ(emulator_->process_count(), 2u);
  int child_pid = static_cast<int>(
      emulator_->thread(emulator_->process(parent).thread_index).saved.regs[ckisa::kRegS0]);
  EXPECT_EQ(emulator_->process(child_pid).exit_code, 33);
}

TEST_F(UnixTest, WaitPidOnZombieReturnsImmediately) {
  ck::CkApi api = Api();
  int child = emulator_->Exec(api, MustAssemble(R"(
      addi a0, r0, 9
      trap 17
  )"));
  ASSERT_TRUE(RunToExit(child));
  int parent = emulator_->Exec(api, MustAssemble(R"(
      addi a0, r0, 1    ; pid 1 (the already-dead child)
      trap 25
      trap 17           ; exit(child's code)
  )"));
  ASSERT_TRUE(RunToExit(parent));
  EXPECT_EQ(emulator_->process(parent).exit_code, 9);
}

TEST_F(UnixTest, SendRecvBetweenProcesses) {
  ck::CkApi api = Api();
  // Receiver (pid 1): recv into a buffer, exit with the first byte + length.
  int receiver = emulator_->Exec(api, MustAssemble(R"(
      li   a0, 0x20000000
      mv   t5, a0
      addi a1, r0, 0
      trap 19          ; harmless sbrk(0) -- warms the syscall path
      addi a0, r0, 1
      trap 19          ; sbrk(1 page) for the buffer
      mv   t5, a0
      mv   a0, t5
      addi a1, r0, 64
      trap 27          ; recv(buf, 64) -> len (blocks)
      mv   s1, a0      ; len
      lb   s0, 0(t5)   ; first byte
      add  a0, s0, s1
      trap 17
  )"));
  // Sender (pid 2): sends "hi" (2 bytes) to pid 1.
  int sender = emulator_->Exec(api, MustAssemble(R"(
      la   t0, msg
      addi a0, r0, 1   ; dest pid
      mv   a1, t0
      addi a2, r0, 2
      trap 26          ; send
      mv   a0, a0
      trap 17          ; exit(bytes sent)
    msg:
      .word 0x00006968 ; "hi"
  )"));
  ASSERT_TRUE(RunToExit(sender));
  ASSERT_TRUE(RunToExit(receiver));
  EXPECT_EQ(emulator_->process(sender).exit_code, 2);
  EXPECT_EQ(emulator_->process(receiver).exit_code, 'h' + 2);
}

TEST_F(UnixTest, WaiterWokenWhenChildSegfaults) {
  ck::CkApi api = Api();
  uint32_t crasher = emulator_->RegisterProgram(MustAssemble(R"(
      li   t0, 0x0bad0000
      lw   t1, 0(t0)
      trap 17
  )"));
  int parent = emulator_->Exec(api, MustAssemble(R"(
      mv   a0, r0
      trap 24          ; spawn(crasher)
      trap 25          ; waitpid -> -11
      trap 17
  )"));
  (void)crasher;
  ASSERT_TRUE(RunToExit(parent));
  EXPECT_EQ(emulator_->process(parent).exit_code, -11);
}

// Fixture with a deliberately tiny thread-descriptor cache: more runnable
// processes than descriptors, so the Cache Kernel reclaims threads out from
// under running programs and the emulator's scheduler reloads them.
class TinyThreadCacheUnixTest : public UnixTest {
 protected:
  TinyThreadCacheUnixTest() : UnixTest(MakeConfig()) {}

  static UnixConfig MakeConfig() {
    UnixConfig config;
    config.sched_interval = 250000;  // 10 ms: reload promptly
    return config;
  }
};

TEST_F(UnixTest, MoreProcessesThanThreadDescriptors) {
  // Rebuild the world with a 6-slot thread cache (4 scheduler threads + 2).
  cktest::WorldOptions options;
  options.ck.thread_slots = 6;
  TestWorld world(options);
  UnixConfig config;
  config.sched_interval = 250000;
  UnixEmulator emulator(world.ck(), config);
  cksrm::LaunchParams params;
  params.page_groups = 8;
  params.max_priority = 31;
  params.locked_kernel_object = true;  // keep the scheduler threads pinned
  ASSERT_TRUE(world.srm().Launch(emulator, params).ok());
  ck::CkApi api(world.ck(), emulator.self(), world.machine().cpu(0));
  emulator.Start(api);  // 4 locked scheduler threads -> 2 free slots

  // 8 compute processes compete for 2 descriptor slots.
  ckisa::Program program = MustAssemble(R"(
      addi t0, r0, 0
      addi t1, r0, 1
      li   t2, 2000
    loop:
      add  t0, t0, t1
      addi t1, t1, 1
      bge  t2, t1, loop
      mv   a0, t0
      trap 17
  )");
  std::vector<int> pids;
  for (int i = 0; i < 8; ++i) {
    pids.push_back(emulator.Exec(api, program));
  }
  ASSERT_TRUE(world.RunUntil([&] { return emulator.AllExited(); }, 30000000))
      << "all processes must finish despite descriptor reclamation";
  for (int pid : pids) {
    EXPECT_EQ(emulator.process(pid).exit_code, 2001000) << "pid " << pid;
  }
  // The thread cache was actually thrashed.
  EXPECT_GT(world.ck().stats().reclamations[static_cast<int>(ck::ObjectType::kThread)], 4u);
  EXPECT_TRUE(world.ck().ValidateInvariants().empty());
}

TEST_F(UnixTest, UnknownSyscallKillsProcess) {
  ck::CkApi api = Api();
  int pid = emulator_->Exec(api, MustAssemble(R"(
      trap 99
      addi a0, r0, 0
      trap 17
  )"));
  ASSERT_TRUE(RunToExit(pid));
  EXPECT_EQ(emulator_->process(pid).exit_code, -1);
}

}  // namespace

// Breakpoint debugging (section 2.3): hit -> thread unloaded, state
// examined, instruction restored, thread reloaded on request.

#include <gtest/gtest.h>

#include "src/appkernel/debugger.h"
#include "src/isa/assembler.h"
#include "tests/test_harness.h"

namespace {

using ckbase::CkStatus;
using cktest::TestWorld;

// App kernel that routes the breakpoint trap to its debugger.
class DebuggableKernel : public ckapp::AppKernelBase {
 public:
  DebuggableKernel() : ckapp::AppKernelBase("debuggee", 64), debugger(*this) {}

  ck::TrapAction HandleTrap(const ck::TrapForward& trap, ck::CkApi& api) override {
    ck::TrapAction action;
    if (trap.number == ckapp::kBreakpointTrap) {
      action.action = debugger.OnBreakpointTrap(trap, api);
      return action;
    }
    if (trap.number == 16) {  // exit-style marker
      exit_value = trap.args[0];
      action.action = ck::HandlerAction::kTerminate;
      return action;
    }
    action.action = ck::HandlerAction::kTerminate;
    return action;
  }

  ckapp::Debugger debugger;
  uint32_t exit_value = 0;
};

ckisa::Program MustAssemble(const char* source) {
  ckisa::AssembleResult result = ckisa::Assemble(source, 0x10000);
  EXPECT_TRUE(result.ok) << result.error;
  return result.program;
}

class DebuggerTest : public ::testing::Test {
 protected:
  DebuggerTest() {
    world_ = std::make_unique<TestWorld>();
    world_->Launch(app_);
  }

  ck::CkApi Api() { return ck::CkApi(world_->ck(), app_.self(), world_->machine().cpu(0)); }

  std::unique_ptr<TestWorld> world_;
  DebuggableKernel app_;
};

TEST_F(DebuggerTest, BreakpointStopsExaminesAndResumes) {
  ck::CkApi api = Api();
  uint32_t space = app_.CreateSpace(api);
  ckisa::Program program = MustAssemble(R"(
      addi t0, r0, 11
    checkpoint:
      addi t0, t0, 22     ; <- breakpoint lands here
      mv   a0, t0
      trap 16             ; report t0
  )");
  app_.LoadProgramImage(space, program, /*writable=*/true);
  ASSERT_EQ(app_.debugger.SetBreakpoint(api, space, program.labels.at("checkpoint")),
            CkStatus::kOk);

  ckapp::GuestThreadParams params;
  params.space_index = space;
  params.entry = 0x10000;
  uint32_t guest = app_.CreateGuestThread(api, params);

  // The thread hits the breakpoint and its descriptor leaves the kernel.
  ASSERT_TRUE(world_->RunUntil([&] { return app_.debugger.IsStopped(guest); }, 500000));
  EXPECT_FALSE(app_.thread(guest).loaded) << "stopped thread consumes no descriptors";
  EXPECT_EQ(app_.debugger.hits(), 1u);

  // Examine: t0 already holds 11; pc rewound to the breakpoint.
  const ckisa::VmContext& regs = app_.debugger.Examine(guest);
  EXPECT_EQ(regs.regs[ckisa::kRegT0], 11u);
  EXPECT_EQ(regs.pc, program.labels.at("checkpoint"));

  // Resume: original instruction restored, program completes normally.
  ASSERT_EQ(app_.debugger.Resume(api, guest), CkStatus::kOk);
  ASSERT_TRUE(world_->RunUntil([&] { return app_.thread(guest).finished; }, 500000));
  EXPECT_EQ(app_.exit_value, 33u) << "the patched instruction executed after restore";
}

TEST_F(DebuggerTest, RegistersCanBeEditedWhileStopped) {
  ck::CkApi api = Api();
  uint32_t space = app_.CreateSpace(api);
  ckisa::Program program = MustAssemble(R"(
      addi t0, r0, 1
    stop:
      mv   a0, t0
      trap 16
  )");
  app_.LoadProgramImage(space, program, /*writable=*/true);
  ASSERT_EQ(app_.debugger.SetBreakpoint(api, space, program.labels.at("stop")), CkStatus::kOk);

  ckapp::GuestThreadParams params;
  params.space_index = space;
  params.entry = 0x10000;
  uint32_t guest = app_.CreateGuestThread(api, params);
  ASSERT_TRUE(world_->RunUntil([&] { return app_.debugger.IsStopped(guest); }, 500000));

  // Poke a register in the saved context; the reload carries it back in.
  app_.thread(guest).saved.regs[ckisa::kRegT0] = 777;
  ASSERT_EQ(app_.debugger.Resume(api, guest), CkStatus::kOk);
  ASSERT_TRUE(world_->RunUntil([&] { return app_.thread(guest).finished; }, 500000));
  EXPECT_EQ(app_.exit_value, 777u);
}

TEST_F(DebuggerTest, ClearWithoutHitRestoresInstruction) {
  ck::CkApi api = Api();
  uint32_t space = app_.CreateSpace(api);
  ckisa::Program program = MustAssemble(R"(
      addi a0, r0, 5
    point:
      addi a0, a0, 5
      trap 16
  )");
  app_.LoadProgramImage(space, program, /*writable=*/true);
  ASSERT_EQ(app_.debugger.SetBreakpoint(api, space, program.labels.at("point")), CkStatus::kOk);
  EXPECT_EQ(app_.debugger.SetBreakpoint(api, space, program.labels.at("point")),
            CkStatus::kBusy);
  ASSERT_EQ(app_.debugger.ClearBreakpoint(api, space, program.labels.at("point")),
            CkStatus::kOk);

  ckapp::GuestThreadParams params;
  params.space_index = space;
  params.entry = 0x10000;
  uint32_t guest = app_.CreateGuestThread(api, params);
  ASSERT_TRUE(world_->RunUntil([&] { return app_.thread(guest).finished; }, 500000));
  EXPECT_EQ(app_.exit_value, 10u) << "program untouched after clear";
  EXPECT_EQ(app_.debugger.hits(), 0u);
}

}  // namespace

// Multi-MPM configurations: one Cache Kernel per machine, fiber-channel
// interconnect, SRM-to-SRM RPC, and fault containment (sections 3, 4).

#include <gtest/gtest.h>

#include "src/appkernel/channel.h"
#include "src/sim/devices.h"
#include "tests/test_harness.h"

namespace {

using ckbase::CkStatus;
using cktest::TestWorld;

// Two MPMs connected by a fiber-channel link. Each side gets an app kernel
// with the local device region granted.
class TwoMachines {
 public:
  TwoMachines()
      : a_(),
        b_(),
        app_a_("node-a", 64),
        app_b_("node-b", 64) {
    // Reserve a device page-group on each machine and place the FC device
    // there (the SRM controls device placement).
    uint32_t group_a = a_.srm().ReserveGroups(1).value();
    uint32_t group_b = b_.srm().ReserveGroups(1).value();
    fc_base_a_ = group_a * cksim::kPageGroupBytes;
    fc_base_b_ = group_b * cksim::kPageGroupBytes;

    fc_a_ = std::make_unique<cksim::FiberChannelDevice>(a_.machine().memory(), &a_.ck(),
                                                        fc_base_a_, 4, 4, 2500);
    fc_b_ = std::make_unique<cksim::FiberChannelDevice>(b_.machine().memory(), &b_.ck(),
                                                        fc_base_b_, 4, 4, 2500);
    cksim::FiberChannelDevice::Connect(*fc_a_, *fc_b_);
    a_.machine().AttachDevice(fc_a_.get());
    b_.machine().AttachDevice(fc_b_.get());

    a_.Launch(app_a_, 2);
    b_.Launch(app_b_, 2);
    // Grant each app its local device group (shared access, frames not pooled).
    a_.srm().GrantSharedGroups(app_a_, group_a, 1, ck::GroupAccess::kReadWrite);
    b_.srm().GrantSharedGroups(app_b_, group_b, 1, ck::GroupAccess::kReadWrite);
  }

  // Step both machines in lockstep until `done`.
  bool RunUntil(const std::function<bool()>& done, uint64_t max_turns = 2000000) {
    for (uint64_t i = 0; i < max_turns; ++i) {
      if (done()) {
        return true;
      }
      if (!a_.machine().halted()) {
        a_.machine().Step();
      }
      b_.machine().Step();
    }
    return done();
  }

  TestWorld a_, b_;
  ckapp::AppKernelBase app_a_, app_b_;
  cksim::PhysAddr fc_base_a_ = 0, fc_base_b_ = 0;
  std::unique_ptr<cksim::FiberChannelDevice> fc_a_, fc_b_;
};

class Collector : public ck::NativeProgram {
 public:
  explicit Collector(ckapp::MessageChannel& channel) : channel_(channel) {}
  ck::NativeOutcome Step(ck::NativeCtx&) override {
    ck::NativeOutcome outcome;
    outcome.action = ck::NativeOutcome::Action::kBlock;
    return outcome;
  }
  void OnSignal(cksim::VirtAddr addr, ck::NativeCtx& ctx) override {
    char buffer[128] = {0};
    uint32_t n = channel_.Read(ctx.api(), addr, buffer, sizeof(buffer));
    messages.emplace_back(buffer, n);
  }
  ckapp::MessageChannel& channel_;
  std::vector<std::string> messages;
};

TEST(MultiMachineTest, CrossMachineChannelDeliversMessages) {
  TwoMachines nodes;

  // Channel: sender on A over A's transmit slots; receiver on B over B's
  // reception slots. Identical code to the local case -- the device model
  // makes the network transparent (section 2.2).
  ck::CkApi api_a(nodes.a_.ck(), nodes.app_a_.self(), nodes.a_.machine().cpu(0));
  ck::CkApi api_b(nodes.b_.ck(), nodes.app_b_.self(), nodes.b_.machine().cpu(0));
  uint32_t space_a = nodes.app_a_.CreateSpace(api_a);
  uint32_t space_b = nodes.app_b_.CreateSpace(api_b);

  ckapp::MessageChannel channel;
  Collector collector(channel);
  uint32_t receiver = nodes.app_b_.CreateNativeThread(api_b, space_b, &collector, 15);
  channel.ConfigureSender(nodes.app_a_, space_a, 0x00800000, nodes.fc_a_->tx_slot(0), 4);
  channel.ConfigureReceiver(nodes.app_b_, space_b, 0x00900000, nodes.fc_b_->rx_slot(0), 4,
                            receiver);
  ASSERT_EQ(channel.PrimeReceiver(api_b), CkStatus::kOk);

  ASSERT_EQ(channel.Send(api_a, "over the wire", 13), CkStatus::kOk);
  ASSERT_TRUE(nodes.RunUntil([&] { return !collector.messages.empty(); }));
  EXPECT_EQ(collector.messages[0], "over the wire");
  EXPECT_EQ(nodes.fc_a_->packets_sent(), 1u);
  EXPECT_EQ(nodes.fc_b_->packets_received(), 1u);
}

TEST(MultiMachineTest, RpcAcrossMachines) {
  TwoMachines nodes;
  ck::CkApi api_a(nodes.a_.ck(), nodes.app_a_.self(), nodes.a_.machine().cpu(0));
  ck::CkApi api_b(nodes.b_.ck(), nodes.app_b_.self(), nodes.b_.machine().cpu(0));
  uint32_t space_a = nodes.app_a_.CreateSpace(api_a);
  uint32_t space_b = nodes.app_b_.CreateSpace(api_b);

  // Request channel A->B over slots 0..1, reply channel B->A over slots 2..3.
  ckapp::MessageChannel requests, replies;
  ckapp::RpcServer server(requests, replies,
                          [](uint32_t op, const std::vector<uint8_t>& in, ck::CkApi&) {
    // "Run task": sum the bytes, return one byte (the distributed-scheduling
    // coordination stand-in).
    uint32_t sum = op;
    for (uint8_t b : in) {
      sum += b;
    }
    return std::vector<uint8_t>{static_cast<uint8_t>(sum & 0xff)};
  });
  ckapp::RpcClient client(requests, replies);

  uint32_t server_thread = nodes.app_b_.CreateNativeThread(api_b, space_b, &server, 16);
  uint32_t client_thread = nodes.app_a_.CreateNativeThread(api_a, space_a, &client, 16);

  // Each device delivers inbound packets round-robin over its OWN reception
  // ring, so a receiver maps the whole local ring and demultiplexes ("this
  // thread demultiplexes the data to the appropriate input stream", section
  // 2.2). Here each node receives exactly one stream, so the channel IS the
  // ring.
  requests.ConfigureSender(nodes.app_a_, space_a, 0x00800000, nodes.fc_a_->tx_slot(0), 2);
  requests.ConfigureReceiver(nodes.app_b_, space_b, 0x00900000, nodes.fc_b_->rx_slot(0), 4,
                             server_thread);
  replies.ConfigureSender(nodes.app_b_, space_b, 0x00a00000, nodes.fc_b_->tx_slot(2), 2);
  replies.ConfigureReceiver(nodes.app_a_, space_a, 0x00b00000, nodes.fc_a_->rx_slot(0), 4,
                            client_thread);
  ASSERT_EQ(requests.PrimeReceiver(api_b), CkStatus::kOk);
  ASSERT_EQ(replies.PrimeReceiver(api_a), CkStatus::kOk);

  std::vector<uint8_t> reply;
  ASSERT_EQ(client.Call(api_a, 7, {1, 2, 3}, [&](const std::vector<uint8_t>& r, ck::CkApi&) {
    reply = r;
  }), CkStatus::kOk);
  ASSERT_TRUE(nodes.RunUntil([&] { return !reply.empty(); }));
  ASSERT_EQ(reply.size(), 1u);
  EXPECT_EQ(reply[0], 13);  // 7+1+2+3
}

TEST(MultiMachineTest, MpmFailureIsContained) {
  TwoMachines nodes;
  ck::CkApi api_b(nodes.b_.ck(), nodes.app_b_.self(), nodes.b_.machine().cpu(0));
  uint32_t space_b = nodes.app_b_.CreateSpace(api_b);

  // A worker on B.
  class Counter : public ck::NativeProgram {
   public:
    ck::NativeOutcome Step(ck::NativeCtx& ctx) override {
      ctx.Charge(100);
      ++count;
      ck::NativeOutcome outcome;
      outcome.action = ck::NativeOutcome::Action::kYield;
      return outcome;
    }
    uint64_t count = 0;
  };
  Counter counter;
  nodes.app_b_.CreateNativeThread(api_b, space_b, &counter, 10);

  nodes.RunUntil([] { return false; }, 5000);
  uint64_t before = counter.count;
  ASSERT_GT(before, 0u);

  // "A Cache Kernel error only disables its MPM ... not the entire system."
  nodes.a_.machine().Halt();
  nodes.RunUntil([] { return false; }, 5000);
  EXPECT_GT(counter.count, before) << "machine B keeps executing after A fails";
  EXPECT_FALSE(nodes.a_.machine().Step()) << "machine A is dead";
}

TEST(MultiMachineTest, SendToDeadPeerDoesNotWedgeSender) {
  TwoMachines nodes;
  ck::CkApi api_a(nodes.a_.ck(), nodes.app_a_.self(), nodes.a_.machine().cpu(0));
  uint32_t space_a = nodes.app_a_.CreateSpace(api_a);
  ckapp::MessageChannel channel;
  channel.ConfigureSender(nodes.app_a_, space_a, 0x00800000, nodes.fc_a_->tx_slot(0), 4);

  nodes.b_.machine().Halt();
  // Sends succeed locally (the wire swallows them); A keeps running.
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(channel.Send(api_a, "void", 4), CkStatus::kOk);
  }
  nodes.a_.machine().RunFor(10000);
  EXPECT_EQ(nodes.fc_a_->packets_sent(), 8u);
}

}  // namespace

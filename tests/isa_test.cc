// Unit tests for the CKVM assembler and interpreter against a flat host bus.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/isa/assembler.h"
#include "src/isa/interpreter.h"
#include "src/isa/isa.h"

namespace {

using ckisa::Assemble;
using ckisa::AssembleResult;
using ckisa::GuestBus;

using ckisa::RunEvent;
using ckisa::RunResult;
using ckisa::VmContext;

// Flat in-process memory, no translation: exercises the ISA semantics alone.
class FlatBus : public GuestBus {
 public:
  explicit FlatBus(uint32_t size = 1 << 20) : memory_(size, 0) {}

  void LoadProgram(const ckisa::Program& program) {
    std::memcpy(memory_.data() + program.base, program.words.data(), program.SizeBytes());
  }

  MemResult Fetch(uint32_t vaddr) override { return Load32(vaddr); }
  MemResult Load32(uint32_t vaddr) override {
    MemResult r;
    if (vaddr + 4 > memory_.size()) {
      r.fault.type = cksim::FaultType::kNoMapping;
      r.fault.address = vaddr;
      return r;
    }
    std::memcpy(&r.value, memory_.data() + vaddr, 4);
    r.ok = true;
    return r;
  }
  MemResult Load8(uint32_t vaddr) override {
    MemResult r;
    if (vaddr >= memory_.size()) {
      r.fault.type = cksim::FaultType::kNoMapping;
      r.fault.address = vaddr;
      return r;
    }
    r.value = memory_[vaddr];
    r.ok = true;
    return r;
  }
  MemResult Store32(uint32_t vaddr, uint32_t value) override {
    MemResult r;
    if (vaddr + 4 > memory_.size()) {
      r.fault.type = cksim::FaultType::kNoMapping;
      r.fault.address = vaddr;
      r.fault.access = cksim::Access::kWrite;
      return r;
    }
    std::memcpy(memory_.data() + vaddr, &value, 4);
    r.ok = true;
    return r;
  }
  MemResult Store8(uint32_t vaddr, uint8_t value) override {
    MemResult r;
    if (vaddr >= memory_.size()) {
      r.fault.type = cksim::FaultType::kNoMapping;
      r.fault.address = vaddr;
      r.fault.access = cksim::Access::kWrite;
      return r;
    }
    memory_[vaddr] = value;
    r.ok = true;
    return r;
  }
  void ChargeInstruction() override { ++instructions_; }
  void OnMessageWrite(uint32_t) override {}

  uint32_t Word(uint32_t addr) const {
    uint32_t v;
    std::memcpy(&v, memory_.data() + addr, 4);
    return v;
  }

  uint64_t instructions_ = 0;

 private:
  std::vector<uint8_t> memory_;
};

VmContext RunToHalt(FlatBus& bus, const ckisa::Program& program, uint32_t budget = 100000) {
  bus.LoadProgram(program);
  VmContext ctx;
  ctx.pc = program.base;
  RunResult result = ckisa::Run(ctx, bus, budget);
  EXPECT_EQ(result.event, RunEvent::kHalt);
  return ctx;
}

TEST(AssemblerTest, BasicEncodingRoundTrip) {
  AssembleResult result = Assemble(R"(
    ; comment line
    start:
      addi r5, r0, 42     # another comment
      add  r6, r5, r5
      halt
  )", 0x1000);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.program.base, 0x1000u);
  EXPECT_EQ(result.program.words.size(), 3u);
  EXPECT_EQ(result.program.labels.at("start"), 0x1000u);
}

TEST(AssemblerTest, ErrorsAreReported) {
  EXPECT_FALSE(Assemble("bogus r1, r2", 0).ok);
  EXPECT_FALSE(Assemble("addi r1, r2", 0).ok);          // missing imm
  EXPECT_FALSE(Assemble("addi r1, r2, 100000", 0).ok);  // imm out of range
  EXPECT_FALSE(Assemble("x: \n x: nop", 0).ok);         // duplicate label
  AssembleResult bad = Assemble("nop\nbogus", 0);
  EXPECT_NE(bad.error.find("line 2"), std::string::npos);
}

TEST(AssemblerTest, DisassembleMatchesMnemonic) {
  AssembleResult result = Assemble("add r1, r2, r3", 0);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(ckisa::Disassemble(result.program.words[0]), "add r1, r2, r3");
  result = Assemble("lw r4, 8(r2)", 0);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(ckisa::Disassemble(result.program.words[0]), "lw r4, 8(r2)");
}

TEST(InterpreterTest, Arithmetic) {
  FlatBus bus;
  VmContext ctx = RunToHalt(bus, Assemble(R"(
      addi r5, r0, 10
      addi r6, r0, 3
      add  r7, r5, r6
      sub  r8, r5, r6
      mul  r9, r5, r6
      div  r10, r5, r6
      rem  r11, r5, r6
      slt  r12, r6, r5
      halt
  )", 0).program);
  EXPECT_EQ(ctx.regs[7], 13u);
  EXPECT_EQ(ctx.regs[8], 7u);
  EXPECT_EQ(ctx.regs[9], 30u);
  EXPECT_EQ(ctx.regs[10], 3u);
  EXPECT_EQ(ctx.regs[11], 1u);
  EXPECT_EQ(ctx.regs[12], 1u);
}

TEST(InterpreterTest, DivisionByZeroYieldsZero) {
  FlatBus bus;
  VmContext ctx = RunToHalt(bus, Assemble(R"(
      addi r5, r0, 10
      div  r6, r5, r0
      rem  r7, r5, r0
      halt
  )", 0).program);
  EXPECT_EQ(ctx.regs[6], 0u);
  EXPECT_EQ(ctx.regs[7], 0u);
}

TEST(InterpreterTest, RegisterZeroStaysZero) {
  FlatBus bus;
  VmContext ctx = RunToHalt(bus, Assemble(R"(
      addi r0, r0, 99
      add  r5, r0, r0
      halt
  )", 0).program);
  EXPECT_EQ(ctx.regs[0], 0u);
  EXPECT_EQ(ctx.regs[5], 0u);
}

TEST(InterpreterTest, LoadStoreAndBytes) {
  FlatBus bus;
  VmContext ctx = RunToHalt(bus, Assemble(R"(
      li   r5, 0x8000
      li   r6, 0xdeadbeef
      sw   r6, 0(r5)
      lw   r7, 0(r5)
      lb   r8, 0(r5)      ; low byte (little endian)
      addi r9, r0, 0x7f
      sb   r9, 4(r5)
      lb   r10, 4(r5)
      halt
  )", 0).program);
  EXPECT_EQ(ctx.regs[7], 0xdeadbeefu);
  EXPECT_EQ(ctx.regs[8], 0xefu);
  EXPECT_EQ(ctx.regs[10], 0x7fu);
  EXPECT_EQ(bus.Word(0x8000), 0xdeadbeefu);
}

TEST(InterpreterTest, BranchesAndLoops) {
  // Sum 1..10 with a loop.
  FlatBus bus;
  VmContext ctx = RunToHalt(bus, Assemble(R"(
      addi r5, r0, 0      ; sum
      addi r6, r0, 1      ; i
      addi r7, r0, 10     ; limit
    loop:
      add  r5, r5, r6
      addi r6, r6, 1
      bge  r7, r6, loop   ; while limit >= i
      halt
  )", 0).program);
  EXPECT_EQ(ctx.regs[5], 55u);
}

TEST(InterpreterTest, CallAndReturn) {
  FlatBus bus;
  VmContext ctx = RunToHalt(bus, Assemble(R"(
      li   sp, 0x10000
      addi a0, r0, 20
      call double
      mv   s0, a0
      halt
    double:
      add  a0, a0, a0
      ret
  )", 0).program);
  EXPECT_EQ(ctx.regs[ckisa::kRegS0], 40u);
}

TEST(InterpreterTest, TrapReportsNumberAndAdvancesPc) {
  FlatBus bus;
  ckisa::Program program = Assemble(R"(
      addi a0, r0, 5
      trap 16
      addi a1, r0, 7
      halt
  )", 0).program;
  bus.LoadProgram(program);
  VmContext ctx;
  RunResult result = ckisa::Run(ctx, bus, 100);
  ASSERT_EQ(result.event, RunEvent::kTrap);
  EXPECT_EQ(result.trap_number, 16u);
  EXPECT_EQ(ctx.pc, 8u) << "pc must point past the trap";
  // Resume: the remainder executes.
  result = ckisa::Run(ctx, bus, 100);
  EXPECT_EQ(result.event, RunEvent::kHalt);
  EXPECT_EQ(ctx.regs[ckisa::kRegA0 + 1], 7u);
}

TEST(InterpreterTest, FaultLeavesPcOnFaultingInstruction) {
  FlatBus bus;
  ckisa::Program program = Assemble(R"(
      li   r5, 0xf0000000  ; out of bus range
      lw   r6, 0(r5)
      halt
  )", 0).program;
  bus.LoadProgram(program);
  VmContext ctx;
  RunResult result = ckisa::Run(ctx, bus, 100);
  ASSERT_EQ(result.event, RunEvent::kFault);
  EXPECT_EQ(result.fault.type, cksim::FaultType::kNoMapping);
  EXPECT_EQ(result.fault.address, 0xf0000000u);
  EXPECT_EQ(ctx.pc, 8u) << "pc must re-execute the faulting lw";
}

TEST(InterpreterTest, MisalignedAccessFaults) {
  FlatBus bus;
  ckisa::Program program = Assemble(R"(
      li   r5, 0x8001
      lw   r6, 0(r5)
      halt
  )", 0).program;
  bus.LoadProgram(program);
  VmContext ctx;
  RunResult result = ckisa::Run(ctx, bus, 100);
  ASSERT_EQ(result.event, RunEvent::kFault);
  EXPECT_EQ(result.fault.type, cksim::FaultType::kBadAlignment);
}

TEST(InterpreterTest, BudgetExhaustionIsResumable) {
  FlatBus bus;
  ckisa::Program program = Assemble(R"(
    spin:
      addi r5, r5, 1
      j spin
  )", 0).program;
  bus.LoadProgram(program);
  VmContext ctx;
  RunResult result = ckisa::Run(ctx, bus, 10);
  EXPECT_EQ(result.event, RunEvent::kBudgetExhausted);
  EXPECT_EQ(result.instructions, 10u);
  uint32_t r5 = ctx.regs[5];
  ckisa::Run(ctx, bus, 10);
  EXPECT_GT(ctx.regs[5], r5) << "execution continues from saved context";
}

TEST(InterpreterTest, BadOpcodeFaults) {
  FlatBus bus;
  ckisa::Program program;
  program.base = 0;
  program.words = {0xffffffffu};
  bus.LoadProgram(program);
  VmContext ctx;
  RunResult result = ckisa::Run(ctx, bus, 10);
  ASSERT_EQ(result.event, RunEvent::kFault);
  EXPECT_EQ(result.fault.type, cksim::FaultType::kBadInstruction);
}

TEST(InterpreterTest, LogicalAndShiftOps) {
  FlatBus bus;
  VmContext ctx = RunToHalt(bus, Assemble(R"(
      li   t0, 0xff00ff00
      li   t1, 0x0ff00ff0
      and  s0, t0, t1
      or   s1, t0, t1
      xor  s2, t0, t1
      addi t2, r0, 8
      sll  s3, t0, t2
      srl  s4, t0, t2
      sra  s5, t0, t2
      andi s6, t0, 0x00ff
      ori  s7, r0, 0x1234
      halt
  )", 0).program);
  EXPECT_EQ(ctx.regs[ckisa::kRegS0 + 0], 0x0f000f00u);
  EXPECT_EQ(ctx.regs[ckisa::kRegS0 + 1], 0xfff0fff0u);
  EXPECT_EQ(ctx.regs[ckisa::kRegS0 + 2], 0xf0f0f0f0u);
  EXPECT_EQ(ctx.regs[ckisa::kRegS0 + 3], 0x00ff0000u);
  EXPECT_EQ(ctx.regs[ckisa::kRegS0 + 4], 0x00ff00ffu);
  EXPECT_EQ(ctx.regs[ckisa::kRegS0 + 5], 0xffff00ffu) << "arithmetic shift extends the sign";
  EXPECT_EQ(ctx.regs[ckisa::kRegS0 + 6], 0x00000000u) << "andi with positive imm16";
  EXPECT_EQ(ctx.regs[ckisa::kRegS0 + 7], 0x1234u);
}

TEST(InterpreterTest, SetLessThanSignedVsUnsigned) {
  FlatBus bus;
  VmContext ctx = RunToHalt(bus, Assemble(R"(
      addi t0, r0, -1     ; 0xffffffff
      addi t1, r0, 1
      slt  s0, t0, t1     ; -1 < 1 signed -> 1
      sltu s1, t0, t1     ; 0xffffffff < 1 unsigned -> 0
      slti s2, t0, 0      ; -1 < 0 -> 1
      halt
  )", 0).program);
  EXPECT_EQ(ctx.regs[ckisa::kRegS0 + 0], 1u);
  EXPECT_EQ(ctx.regs[ckisa::kRegS0 + 1], 0u);
  EXPECT_EQ(ctx.regs[ckisa::kRegS0 + 2], 1u);
}

TEST(InterpreterTest, JalrComputedTarget) {
  FlatBus bus;
  VmContext ctx = RunToHalt(bus, Assemble(R"(
      la   t0, table
      lw   t1, 4(t0)      ; second entry = address of 'second'
      jalr ra, t1, 0
      halt
    first:
      addi s0, r0, 1
      halt
    second:
      addi s0, r0, 2
      halt
    table:
      .word first
      .word second
  )", 0x3000).program);
  EXPECT_EQ(ctx.regs[ckisa::kRegS0], 2u) << "indirect jump through a jump table";
}

TEST(InterpreterTest, LiLaPseudoOps) {
  FlatBus bus;
  VmContext ctx = RunToHalt(bus, Assemble(R"(
      li r5, 0x12345678
      la r6, data
      lw r7, 0(r6)
      halt
    data:
      .word 0xcafef00d
  )", 0x2000).program);
  EXPECT_EQ(ctx.regs[5], 0x12345678u);
  EXPECT_EQ(ctx.regs[7], 0xcafef00du);
}

}  // namespace

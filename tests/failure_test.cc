// Failure injection: hostile/buggy application kernels, reentrant handlers,
// resource exhaustion. The Cache Kernel must degrade to error returns --
// never corrupt its invariants -- because application kernels are untrusted
// ("the Cache Kernel is protected from user programming by hardware",
// section 6).

#include <gtest/gtest.h>

#include "src/isa/assembler.h"
#include "tests/test_harness.h"

namespace {

using ckbase::CkStatus;
using cktest::TestWorld;

ckisa::Program MustAssemble(const char* source, uint32_t base = 0x10000) {
  ckisa::AssembleResult result = ckisa::Assemble(source, base);
  EXPECT_TRUE(result.ok) << result.error;
  return result.program;
}

TEST(FailureTest, GarbageIdentifiersAreRejectedEverywhere) {
  TestWorld world;
  ckapp::AppKernelBase app("hostile", 32);
  world.Launch(app);
  ck::CkApi api(world.ck(), app.self(), world.machine().cpu(0));

  ck::SpaceId bogus_space{ckbase::PoolId{5, 12345}};
  ck::ThreadId bogus_thread{ckbase::PoolId{7, 999}};
  ck::KernelId bogus_kernel{ckbase::PoolId{3, 42}};

  EXPECT_EQ(api.UnloadSpace(bogus_space), CkStatus::kStale);
  EXPECT_EQ(api.UnloadThread(bogus_thread), CkStatus::kStale);
  EXPECT_EQ(api.SetThreadPriority(bogus_thread, 5), CkStatus::kStale);
  EXPECT_EQ(api.BlockThread(bogus_thread), CkStatus::kStale);
  EXPECT_EQ(api.ResumeThread(bogus_thread), CkStatus::kStale);
  EXPECT_EQ(api.RedirectThread(bogus_thread, 0x1000, 0), CkStatus::kStale);
  ck::MappingSpec spec;
  spec.space = bogus_space;
  spec.vaddr = 0x4000;
  spec.paddr = 0x100000;
  EXPECT_EQ(api.LoadMapping(spec), CkStatus::kStale);
  EXPECT_EQ(api.UnloadMapping(bogus_space, 0x4000), CkStatus::kStale);
  EXPECT_EQ(api.Signal(bogus_space, 0x4000), CkStatus::kStale);
  EXPECT_EQ(api.UnloadKernel(bogus_kernel), CkStatus::kDenied) << "and not even the SRM's call";
  ck::ThreadSpec tspec;
  tspec.space = bogus_space;
  EXPECT_EQ(api.LoadThread(tspec).status(), CkStatus::kStale);
  EXPECT_TRUE(world.ck().ValidateInvariants().empty());
}

TEST(FailureTest, CrossKernelObjectAccessDenied) {
  TestWorld world;
  ckapp::AppKernelBase alice("alice", 32), mallory("mallory", 32);
  world.Launch(alice);
  world.Launch(mallory);
  ck::CkApi alice_api(world.ck(), alice.self(), world.machine().cpu(0));
  ck::CkApi mallory_api(world.ck(), mallory.self(), world.machine().cpu(0));

  uint32_t space = alice.CreateSpace(alice_api);
  ck::SpaceId alice_space = alice.space(space).ck_id;
  ck::ThreadSpec tspec;
  tspec.space = alice_space;
  tspec.start_blocked = true;
  ck::ThreadId alice_thread = alice_api.LoadThread(tspec).value();

  // Mallory holds valid identifiers for Alice's objects but owns neither.
  EXPECT_EQ(mallory_api.UnloadSpace(alice_space), CkStatus::kDenied);
  EXPECT_EQ(mallory_api.UnloadThread(alice_thread), CkStatus::kDenied);
  EXPECT_EQ(mallory_api.SetThreadPriority(alice_thread, 1), CkStatus::kDenied);
  EXPECT_EQ(mallory_api.ResumeThread(alice_thread), CkStatus::kDenied);
  ck::MappingSpec spec;
  spec.space = alice_space;
  spec.vaddr = 0x4000;
  spec.paddr = 0x100000;
  EXPECT_EQ(mallory_api.LoadMapping(spec), CkStatus::kDenied);
  ck::ThreadSpec steal;
  steal.space = alice_space;
  EXPECT_EQ(mallory_api.LoadThread(steal).status(), CkStatus::kDenied)
      << "threads cannot be planted in another kernel's space";
  EXPECT_TRUE(world.ck().IsThreadLoaded(alice_thread));
}

// A kernel whose fault handler unloads the faulting thread (legal: the
// handler has full control of the faulting thread, section 2.1).
class ThreadKillerKernel : public ckapp::AppKernelBase {
 public:
  ThreadKillerKernel() : ckapp::AppKernelBase("killer", 64) {}

  ck::HandlerAction HandleFault(const ck::FaultForward& fault, ck::CkApi& api) override {
    if (kill_next) {
      kill_next = false;
      api.UnloadThread(fault.thread);  // the thread vanishes mid-handler
      kills++;
      return ck::HandlerAction::kBlock;  // stale by now; CK must cope
    }
    return AppKernelBase::HandleFault(fault, api);
  }

  bool kill_next = false;
  int kills = 0;
};

TEST(FailureTest, HandlerUnloadsFaultingThread) {
  TestWorld world;
  ThreadKillerKernel app;
  world.Launch(app);
  ck::CkApi api(world.ck(), app.self(), world.machine().cpu(0));
  uint32_t space = app.CreateSpace(api);
  app.LoadProgramImage(space, MustAssemble(R"(
      li t0, 0x00400000
      lw t1, 0(t0)
      halt
  )"), false);
  app.DefineZeroRegion(space, 0x00400000, 1, true);

  ckapp::GuestThreadParams params;
  params.space_index = space;
  params.entry = 0x10000;
  uint32_t guest = app.CreateGuestThread(api, params);
  // First fault (text page) resolves normally; kill on the data fault.
  world.RunUntil([&] { return world.ck().stats().faults_forwarded >= 1; });
  app.kill_next = true;
  world.machine().RunFor(500000);
  EXPECT_EQ(app.kills, 1);
  EXPECT_FALSE(app.thread(guest).loaded) << "thread written back by its own handler";
  EXPECT_TRUE(world.ck().ValidateInvariants().empty());
}

// A kernel whose writeback handler performs loads (reentering the Cache
// Kernel from the writeback channel). This happens in practice: handling a
// thread writeback may require reloading the space it names.
class ReentrantKernel : public ckapp::AppKernelBase {
 public:
  ReentrantKernel() : ckapp::AppKernelBase("reentrant", 64) {}

  void OnThreadWriteback(const ck::ThreadWriteback& record, ck::CkApi& api) override {
    AppKernelBase::OnThreadWriteback(record, api);
    if (reload_spaces_on_writeback) {
      api.LoadSpace(/*cookie=*/77, false);  // nested load during writeback
      nested_loads++;
    }
  }

  bool reload_spaces_on_writeback = false;
  int nested_loads = 0;
};

TEST(FailureTest, ReentrantLoadsDuringWritebackSurviveReclamation) {
  cktest::WorldOptions options;
  options.ck.thread_slots = 4;
  options.ck.space_slots = 16;
  TestWorld world(options);
  ReentrantKernel app;
  world.Launch(app);
  ck::CkApi api(world.ck(), app.self(), world.machine().cpu(0));
  uint32_t space = app.CreateSpace(api);
  app.reload_spaces_on_writeback = true;

  // Overflow the thread pool: every reclamation writeback re-enters the
  // kernel with a space load.
  for (int i = 0; i < 12; ++i) {
    ck::ThreadSpec spec;
    spec.space = app.space(space).ck_id;
    spec.cookie = 1000;  // outside the record table: exercise the guard too
    spec.start_blocked = true;
    api.LoadThread(spec);
  }
  EXPECT_GE(app.nested_loads, 8);
  EXPECT_TRUE(world.ck().ValidateInvariants().empty());
}

TEST(FailureTest, PageTableArenaExhaustionFailsCleanly) {
  cktest::WorldOptions options;
  options.ck.page_table_arena_bytes = 16384;  // tiny arena: ~21 spaces worth
  TestWorld world(options);
  ckapp::AppKernelBase app("greedy", 32);
  world.Launch(app);
  ck::CkApi api(world.ck(), app.self(), world.machine().cpu(0));

  // Sparse mappings force L2+L3 allocations until the arena runs dry. The
  // load must fail with kNoResources, not corrupt anything.
  ckbase::Result<ck::SpaceId> space = api.LoadSpace(0, false);
  ASSERT_TRUE(space.ok());
  CkStatus last = CkStatus::kOk;
  for (uint32_t i = 0; i < 64 && last == CkStatus::kOk; ++i) {
    ck::MappingSpec spec;
    spec.space = space.value();
    spec.vaddr = i * (32u << 20);  // one L2+L3 pair per mapping
    spec.paddr = 0x100000;
    last = api.LoadMapping(spec);
  }
  EXPECT_EQ(last, CkStatus::kNoResources);
  EXPECT_TRUE(world.ck().ValidateInvariants().empty());
  // Unloading the space releases the tables; loading works again.
  ASSERT_EQ(api.UnloadSpace(space.value()), CkStatus::kOk);
  ckbase::Result<ck::SpaceId> space2 = api.LoadSpace(1, false);
  ASSERT_TRUE(space2.ok());
  ck::MappingSpec spec;
  spec.space = space2.value();
  spec.vaddr = 0x4000;
  spec.paddr = 0x100000;
  EXPECT_EQ(api.LoadMapping(spec), CkStatus::kOk);
}

TEST(FailureTest, SignalToHaltedThreadIsDropped) {
  TestWorld world;
  ckapp::AppKernelBase app("sig", 32);
  world.Launch(app);
  ck::CkApi api(world.ck(), app.self(), world.machine().cpu(0));
  uint32_t space = app.CreateSpace(api);
  cksim::PhysAddr frame = app.frames().Allocate();

  // Guest halts immediately but stays registered as a signal thread.
  app.LoadProgramImage(space, MustAssemble("halt"), false);
  ckapp::GuestThreadParams params;
  params.space_index = space;
  params.entry = 0x10000;
  params.signal_handler = 0x10000;
  uint32_t guest = app.CreateGuestThread(api, params);

  app.DefineFrameRegion(space, 0x00800000, 1, frame, true, true);
  app.DefineFrameRegion(space, 0x00900000, 1, frame, false, true, guest);
  ASSERT_EQ(app.EnsureMappingLoaded(api, space, 0x00800000), CkStatus::kOk);
  ASSERT_EQ(app.EnsureMappingLoaded(api, space, 0x00900000), CkStatus::kOk);

  world.RunUntil([&] { return app.thread(guest).finished; });
  // The halt unloaded the thread; its signal registration was removed with
  // it, so the signal simply has no receivers.
  EXPECT_EQ(api.Signal(app.space(space).ck_id, 0x00800000), CkStatus::kOk);
  world.machine().RunFor(100000);
  EXPECT_TRUE(world.ck().ValidateInvariants().empty());
}

TEST(FailureTest, MisalignedAndBadInstructionFaultsTerminate) {
  TestWorld world;
  ckapp::AppKernelBase app("bad", 64);
  world.Launch(app);
  ck::CkApi api(world.ck(), app.self(), world.machine().cpu(0));

  // Misaligned word access.
  uint32_t space1 = app.CreateSpace(api);
  app.LoadProgramImage(space1, MustAssemble(R"(
      li t0, 0x00400001
      lw t1, 0(t0)
      halt
  )"), false);
  app.DefineZeroRegion(space1, 0x00400000, 1, true);
  ckapp::GuestThreadParams p1;
  p1.space_index = space1;
  p1.entry = 0x10000;
  uint32_t guest1 = app.CreateGuestThread(api, p1);
  ASSERT_TRUE(world.RunUntil([&] { return app.thread(guest1).finished; }));

  // Undecodable instruction.
  uint32_t space2 = app.CreateSpace(api);
  ckisa::Program garbage;
  garbage.base = 0x10000;
  garbage.words = {0xffffffffu};
  app.LoadProgramImage(space2, garbage, false);
  ckapp::GuestThreadParams p2;
  p2.space_index = space2;
  p2.entry = 0x10000;
  uint32_t guest2 = app.CreateGuestThread(api, p2);
  ASSERT_TRUE(world.RunUntil([&] { return app.thread(guest2).finished; }));

  EXPECT_GE(app.paging_stats().illegal_accesses, 2u);
  EXPECT_TRUE(world.ck().ValidateInvariants().empty());
}

TEST(FailureTest, SrmSurvivesAppKernelChaos) {
  // Launch, churn, swap out, swap in, unload -- repeatedly -- and verify the
  // SRM's accounting and the kernel invariants at every stage.
  TestWorld world;
  for (int round = 0; round < 3; ++round) {
    ckapp::AppKernelBase app("victim" + std::to_string(round), 32);
    cksrm::LaunchParams params;
    params.page_groups = 2;
    ASSERT_TRUE(world.srm().Launch(app, params).ok());
    ck::CkApi api(world.ck(), app.self(), world.machine().cpu(0));
    uint32_t space = app.CreateSpace(api);
    app.DefineZeroRegion(space, 0x00400000, 8, true);
    for (int i = 0; i < 8; ++i) {
      app.EnsureMappingLoaded(api, space, 0x00400000 + i * cksim::kPageSize);
    }
    ASSERT_EQ(world.srm().SwapOut(app), CkStatus::kOk);
    ASSERT_TRUE(world.ck().ValidateInvariants().empty()) << "after swap-out " << round;
    ASSERT_EQ(world.srm().SwapIn(app), CkStatus::kOk);
    ck::CkApi api2(world.ck(), app.self(), world.machine().cpu(0));
    EXPECT_EQ(app.EnsureMappingLoaded(api2, space, 0x00400000), CkStatus::kOk);
    ASSERT_EQ(world.srm().SwapOut(app), CkStatus::kOk);
    ASSERT_TRUE(world.ck().ValidateInvariants().empty()) << "end of round " << round;
  }
}

}  // namespace

// Per-app-kernel cost attribution (ck::CostAccount) and the sampling
// profiler. The central property is conservation: every tenant account
// increment mirrors a machine-level CkStats increment, so summing any
// attributed field across kernel slots must equal the CkStats total -- with
// two co-resident application kernels doing real (faulting, reclaiming,
// swapping) work, nothing may be double-charged or dropped.

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "src/appkernel/app_kernel_base.h"
#include "src/ck/cache_kernel.h"
#include "src/isa/assembler.h"
#include "src/obs/metrics.h"
#include "src/sim/machine.h"
#include "src/srm/srm.h"

namespace {

class TenantTest : public ::testing::Test {
 protected:
  void Boot(ck::CacheKernelConfig config) {
    machine_ = std::make_unique<cksim::Machine>(cksim::MachineConfig{});
    ck_ = std::make_unique<ck::CacheKernel>(*machine_, config);
    srm_ = std::make_unique<cksrm::Srm>(*ck_);
    srm_->Boot();
  }

  // Launch an app kernel running a guest that strides over `pages` unmapped
  // pages (one forwarded fault + mapping load each) and then halts.
  std::unique_ptr<ckapp::AppKernelBase> LaunchFaultingApp(const std::string& name,
                                                          uint32_t pages, uint32_t* thread) {
    auto app = std::make_unique<ckapp::AppKernelBase>(name, 64);
    cksrm::LaunchParams params;
    params.page_groups = 4;
    params.max_priority = 30;
    EXPECT_TRUE(srm_->Launch(*app, params).ok());
    ck::CkApi api(*ck_, app->self(), machine_->cpu(0));
    uint32_t space = app->CreateSpace(api);
    app->DefineZeroRegion(space, 0x00400000, pages, /*writable=*/true);
    for (uint32_t i = 0; i < pages; ++i) {
      cksim::VirtAddr vaddr = 0x00400000 + i * cksim::kPageSize;
      ckapp::PageRecord* page = app->space(space).FindPage(vaddr);
      app->MaterializePage(api, app->space(space), *page, vaddr);
    }
    ckisa::AssembleResult assembled = ckisa::Assemble(R"(
        li   t0, 0x00400000
        li   t1, )" + std::to_string(pages) + R"(
        li   t3, 4096
      loop:
        lw   t2, 0(t0)
        add  t0, t0, t3
        addi t1, t1, -1
        bne  t1, r0, loop
        halt
    )", 0x10000);
    EXPECT_TRUE(assembled.ok) << assembled.error;
    app->LoadProgramImage(space, assembled.program, /*writable=*/false);
    ckapp::GuestThreadParams tparams;
    tparams.space_index = space;
    tparams.entry = 0x10000;
    uint32_t guest = app->CreateGuestThread(api, tparams);
    if (thread != nullptr) {
      *thread = guest;
    }
    return app;
  }

  void RunUntilFinished(ckapp::AppKernelBase& a, uint32_t ta, ckapp::AppKernelBase& b,
                        uint32_t tb) {
    for (uint64_t turn = 0; turn < 4000000; ++turn) {
      if (a.thread(ta).finished && b.thread(tb).finished) {
        return;
      }
      machine_->Step();
    }
    FAIL() << "guests did not finish";
  }

  std::unique_ptr<cksim::Machine> machine_;
  std::unique_ptr<ck::CacheKernel> ck_;
  std::unique_ptr<cksrm::Srm> srm_;
};

// Sum one CostAccount array field across all slots.
uint64_t SumField(const std::vector<ck::CostAccount>& tenants,
                  const uint64_t (ck::CostAccount::*field)[ck::kObjectTypeCount], uint32_t t) {
  uint64_t sum = 0;
  for (const ck::CostAccount& account : tenants) {
    sum += (account.*field)[t];
  }
  return sum;
}

uint64_t SumField(const std::vector<ck::CostAccount>& tenants,
                  uint64_t ck::CostAccount::*field) {
  uint64_t sum = 0;
  for (const ck::CostAccount& account : tenants) {
    sum += account.*field;
  }
  return sum;
}

TEST_F(TenantTest, AttributionConservesMachineTotals) {
  ck::CacheKernelConfig config;
  config.mapping_slots = 32;  // two 64-page guests force mapping reclamation
  Boot(config);
  uint32_t thread_a = 0, thread_b = 0;
  auto app_a = LaunchFaultingApp("tenant-a", 64, &thread_a);
  auto app_b = LaunchFaultingApp("tenant-b", 64, &thread_b);
  RunUntilFinished(*app_a, thread_a, *app_b, thread_b);

  // Swap one kernel out and back in: explicit unloads + cascade writebacks
  // attributed to that kernel's slot.
  ASSERT_EQ(srm_->SwapOut(*app_a), ckbase::CkStatus::kOk);
  ASSERT_EQ(srm_->SwapIn(*app_a), ckbase::CkStatus::kOk);

  const ck::CkStats& stats = ck_->stats();
  const std::vector<ck::CostAccount>& tenants = ck_->tenant_accounts();
  ASSERT_EQ(tenants.size(), ck_->config().kernel_slots);

  // The workload really exercised the attributed paths.
  constexpr uint32_t kMappingIdx = static_cast<uint32_t>(ck::ObjectType::kMapping);
  constexpr uint32_t kKernelIdx = static_cast<uint32_t>(ck::ObjectType::kKernel);
  EXPECT_GT(stats.faults_forwarded, 100u);
  EXPECT_GT(stats.reclaim_scan_steps[kMappingIdx], 0u);
  EXPECT_GT(stats.writebacks[kMappingIdx], 0u);
  EXPECT_GT(stats.explicit_unloads[kKernelIdx], 0u);

  for (uint32_t t = 0; t < ck::kObjectTypeCount; ++t) {
    EXPECT_EQ(SumField(tenants, &ck::CostAccount::loads, t), stats.loads[t]) << "type " << t;
    EXPECT_EQ(SumField(tenants, &ck::CostAccount::writebacks, t), stats.writebacks[t])
        << "type " << t;
    EXPECT_EQ(SumField(tenants, &ck::CostAccount::explicit_unloads, t),
              stats.explicit_unloads[t])
        << "type " << t;
    EXPECT_EQ(SumField(tenants, &ck::CostAccount::reclaim_scan_steps, t),
              stats.reclaim_scan_steps[t])
        << "type " << t;
  }
  EXPECT_EQ(SumField(tenants, &ck::CostAccount::guest_instructions), stats.guest_instructions);
  EXPECT_EQ(SumField(tenants, &ck::CostAccount::faults_forwarded), stats.faults_forwarded);

  // Superblock-trace work is attributed to the tenant that owns the space,
  // and the per-tenant counters conserve the machine totals.
  EXPECT_GT(stats.exec_trace_builds, 0u);
  EXPECT_GT(stats.exec_trace_hits, 0u);
  EXPECT_EQ(SumField(tenants, &ck::CostAccount::exec_trace_hits), stats.exec_trace_hits);
  EXPECT_EQ(SumField(tenants, &ck::CostAccount::exec_trace_misses), stats.exec_trace_misses);
  EXPECT_EQ(SumField(tenants, &ck::CostAccount::exec_trace_invalidations),
            stats.exec_trace_invalidations);
  EXPECT_EQ(SumField(tenants, &ck::CostAccount::exec_trace_builds), stats.exec_trace_builds);

  // Both tenants were actually charged (not everything on one slot).
  uint32_t active_slots = 0;
  for (const ck::CostAccount& account : tenants) {
    if (account.guest_instructions > 0) {
      ++active_slots;
    }
  }
  EXPECT_GE(active_slots, 2u);
}

TEST_F(TenantTest, TenantMetricsExportedPerSlot) {
  Boot(ck::CacheKernelConfig{});
  uint32_t thread_a = 0, thread_b = 0;
  auto app_a = LaunchFaultingApp("tenant-a", 8, &thread_a);
  auto app_b = LaunchFaultingApp("tenant-b", 8, &thread_b);
  RunUntilFinished(*app_a, thread_a, *app_b, thread_b);

  obs::Registry registry;
  ck_->RegisterMetrics(registry);
  std::string json = registry.DumpJson();
  EXPECT_NE(json.find("\"ck.tenant.0.loads\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ck.tenant.0.guest_instructions\""), std::string::npos);
  EXPECT_NE(json.find("\"ck.tenant.1.faults\""), std::string::npos);
}

TEST_F(TenantTest, ProfilerSamplesGuestPcs) {
  ck::CacheKernelConfig config;
  config.profile_period = 2000;  // dense sampling for a short run
  Boot(config);
  uint32_t thread_a = 0, thread_b = 0;
  auto app_a = LaunchFaultingApp("tenant-a", 48, &thread_a);
  auto app_b = LaunchFaultingApp("tenant-b", 48, &thread_b);
  RunUntilFinished(*app_a, thread_a, *app_b, thread_b);

  EXPECT_GT(ck_->profile_samples_total(), 0u);
  // Sampled PCs land inside the guest program (loaded at 0x10000, a few
  // dozen bytes long).
  uint64_t histogram_total = 0;
  for (const auto& per_slot : ck_->profile_pcs()) {
    for (const auto& [pc, count] : per_slot) {
      EXPECT_GE(pc, 0x10000u);
      EXPECT_LT(pc, 0x10100u);
      histogram_total += count;
    }
  }
  EXPECT_EQ(histogram_total, ck_->profile_samples_total());
  // Sample counts are attributed like every other cost.
  EXPECT_EQ(SumField(ck_->tenant_accounts(), &ck::CostAccount::prof_samples),
            ck_->profile_samples_total());
}

TEST_F(TenantTest, ProfilerOffByDefaultAndOffInSlowPath) {
  Boot(ck::CacheKernelConfig{});
  uint32_t thread_a = 0, thread_b = 0;
  auto app_a = LaunchFaultingApp("tenant-a", 8, &thread_a);
  auto app_b = LaunchFaultingApp("tenant-b", 8, &thread_b);
  RunUntilFinished(*app_a, thread_a, *app_b, thread_b);
  EXPECT_EQ(ck_->profile_samples_total(), 0u);

  // Slow path: sampling points live only in the fast path's batched cycle
  // flush, so --fastpath=off collects nothing (documented caveat).
  ck::CacheKernelConfig slow;
  slow.fastpath = false;
  slow.profile_period = 2000;
  Boot(slow);
  auto app_c = LaunchFaultingApp("tenant-c", 8, &thread_a);
  auto app_d = LaunchFaultingApp("tenant-d", 8, &thread_b);
  RunUntilFinished(*app_c, thread_a, *app_d, thread_b);
  EXPECT_EQ(ck_->profile_samples_total(), 0u);
}

}  // namespace

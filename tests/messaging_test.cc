// Memory-based messaging: address-valued signals, reverse-TLB fast path,
// multi-mapping consistency, channels and RPC (sections 2.2, 4.1, 4.2).

#include <gtest/gtest.h>

#include "src/appkernel/channel.h"
#include "src/isa/assembler.h"
#include "tests/test_harness.h"

namespace {

using ckbase::CkStatus;
using cktest::TestWorld;

ckisa::Program MustAssemble(const char* source, uint32_t base) {
  ckisa::AssembleResult result = ckisa::Assemble(source, base);
  EXPECT_TRUE(result.ok) << result.error;
  return result.program;
}

// Native receiver that records signal addresses.
class SignalRecorder : public ck::NativeProgram {
 public:
  ck::NativeOutcome Step(ck::NativeCtx&) override {
    ck::NativeOutcome outcome;
    outcome.action = ck::NativeOutcome::Action::kBlock;
    return outcome;
  }
  void OnSignal(cksim::VirtAddr addr, ck::NativeCtx&) override { signals.push_back(addr); }
  std::vector<cksim::VirtAddr> signals;
};

class MessagingTest : public ::testing::Test {
 protected:
  MessagingTest() : app_("msg-app", 256) {
    world_ = std::make_unique<TestWorld>();
    world_->Launch(app_);
  }

  ck::CkApi AppApi() { return ck::CkApi(world_->ck(), app_.self(), world_->machine().cpu(0)); }

  std::unique_ptr<TestWorld> world_;
  ckapp::AppKernelBase app_;
};

TEST_F(MessagingTest, NativeToNativeSignalDelivery) {
  ck::CkApi api = AppApi();
  uint32_t space = app_.CreateSpace(api);

  // Shared message page: one frame, mapped writable+message for the sender
  // view and read+signal for the receiver view.
  cksim::PhysAddr frame = app_.frames().Allocate();
  ASSERT_NE(frame, 0u);

  SignalRecorder receiver;
  uint32_t receiver_thread = app_.CreateNativeThread(api, space, &receiver, /*priority=*/12);

  app_.DefineFrameRegion(space, 0x00800000, 1, frame, /*writable=*/true, /*message=*/true);
  app_.DefineFrameRegion(space, 0x00900000, 1, frame, /*writable=*/false, /*message=*/true,
                         receiver_thread);
  ASSERT_EQ(app_.EnsureMappingLoaded(api, space, 0x00800000), CkStatus::kOk);
  ASSERT_EQ(app_.EnsureMappingLoaded(api, space, 0x00900000), CkStatus::kOk);

  // Write a message and signal offset 0x40 in the sender view.
  uint32_t payload = 0x5555aaaa;
  ASSERT_EQ(api.WritePhys(frame + 0x40, &payload, 4), CkStatus::kOk);
  ASSERT_EQ(api.Signal(app_.space(space).ck_id, 0x00800040), CkStatus::kOk);

  ASSERT_TRUE(world_->RunUntil([&] { return !receiver.signals.empty(); }, 100000));
  // The receiver gets the address translated into ITS view of the page.
  EXPECT_EQ(receiver.signals[0], 0x00900040u);
  EXPECT_GE(world_->ck().stats().signals_delivered_slow +
                world_->ck().stats().signals_delivered_fast,
            1u);
}

TEST_F(MessagingTest, SignalOnUnmappedSenderPageFails) {
  ck::CkApi api = AppApi();
  uint32_t space = app_.CreateSpace(api);
  EXPECT_EQ(api.Signal(app_.space(space).ck_id, 0x00800000), CkStatus::kNotFound);
}

TEST_F(MessagingTest, SignalOnNonMessagePageRejected) {
  ck::CkApi api = AppApi();
  uint32_t space = app_.CreateSpace(api);
  app_.DefineZeroRegion(space, 0x00800000, 1, /*writable=*/true);
  ASSERT_EQ(app_.EnsureMappingLoaded(api, space, 0x00800000), CkStatus::kOk);
  EXPECT_EQ(api.Signal(app_.space(space).ck_id, 0x00800000), CkStatus::kInvalidArgument);
}

TEST_F(MessagingTest, ReverseTlbFastPathAfterFirstDelivery) {
  ck::CkApi api = AppApi();
  uint32_t space = app_.CreateSpace(api);
  cksim::PhysAddr frame = app_.frames().Allocate();

  SignalRecorder receiver;
  // Pin receiver to cpu 0 = sender cpu, so delivery is same-CPU immediate.
  uint32_t receiver_thread =
      app_.CreateNativeThread(api, space, &receiver, /*priority=*/12, false, /*cpu=*/0);
  app_.DefineFrameRegion(space, 0x00800000, 1, frame, true, true);
  app_.DefineFrameRegion(space, 0x00900000, 1, frame, false, true, receiver_thread);
  ASSERT_EQ(app_.EnsureMappingLoaded(api, space, 0x00800000), CkStatus::kOk);
  ASSERT_EQ(app_.EnsureMappingLoaded(api, space, 0x00900000), CkStatus::kOk);

  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(api.Signal(app_.space(space).ck_id, 0x00800000), CkStatus::kOk);
  }
  const ck::CkStats& stats = world_->ck().stats();
  // First delivery misses the reverse TLB (two-stage lookup), later ones hit.
  EXPECT_EQ(stats.signals_delivered_slow, 1u);
  EXPECT_EQ(stats.signals_delivered_fast, 4u);
}

TEST_F(MessagingTest, ReverseTlbDisabledAlwaysSlow) {
  cktest::WorldOptions options;
  options.ck.reverse_tlb_enabled = false;
  TestWorld world(options);
  ckapp::AppKernelBase app("no-rtlb", 64);
  world.Launch(app);
  ck::CkApi api(world.ck(), app.self(), world.machine().cpu(0));

  uint32_t space = app.CreateSpace(api);
  cksim::PhysAddr frame = app.frames().Allocate();
  SignalRecorder receiver;
  uint32_t receiver_thread = app.CreateNativeThread(api, space, &receiver, 12, false, 0);
  app.DefineFrameRegion(space, 0x00800000, 1, frame, true, true);
  app.DefineFrameRegion(space, 0x00900000, 1, frame, false, true, receiver_thread);
  ASSERT_EQ(app.EnsureMappingLoaded(api, space, 0x00800000), CkStatus::kOk);
  ASSERT_EQ(app.EnsureMappingLoaded(api, space, 0x00900000), CkStatus::kOk);

  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(api.Signal(app.space(space).ck_id, 0x00800000), CkStatus::kOk);
  }
  EXPECT_EQ(world.ck().stats().signals_delivered_slow, 5u);
  EXPECT_EQ(world.ck().stats().signals_delivered_fast, 0u);
}

TEST_F(MessagingTest, OneToManyFanOut) {
  ck::CkApi api = AppApi();
  uint32_t space = app_.CreateSpace(api);
  cksim::PhysAddr frame = app_.frames().Allocate();
  app_.DefineFrameRegion(space, 0x00800000, 1, frame, true, true);
  ASSERT_EQ(app_.EnsureMappingLoaded(api, space, 0x00800000), CkStatus::kOk);

  // Three receivers, each with its own view of the page (Figure 3).
  std::vector<std::unique_ptr<SignalRecorder>> receivers;
  for (uint32_t r = 0; r < 3; ++r) {
    auto recorder = std::make_unique<SignalRecorder>();
    uint32_t thread = app_.CreateNativeThread(api, space, recorder.get(), 12);
    cksim::VirtAddr view = 0x00900000 + r * 0x10000;
    app_.DefineFrameRegion(space, view, 1, frame, false, true, thread);
    ASSERT_EQ(app_.EnsureMappingLoaded(api, space, view), CkStatus::kOk);
    receivers.push_back(std::move(recorder));
  }

  ASSERT_EQ(api.Signal(app_.space(space).ck_id, 0x00800010), CkStatus::kOk);
  ASSERT_TRUE(world_->RunUntil(
      [&] {
        for (auto& r : receivers) {
          if (r->signals.empty()) {
            return false;
          }
        }
        return true;
      },
      200000));
  EXPECT_EQ(receivers[0]->signals[0], 0x00900010u);
  EXPECT_EQ(receivers[1]->signals[0], 0x00910010u);
  EXPECT_EQ(receivers[2]->signals[0], 0x00920010u);
}

TEST_F(MessagingTest, MultiMappingConsistencyFlushesWritablePeers) {
  ck::CkApi api = AppApi();
  uint32_t space = app_.CreateSpace(api);
  cksim::PhysAddr frame = app_.frames().Allocate();
  SignalRecorder receiver;
  uint32_t receiver_thread = app_.CreateNativeThread(api, space, &receiver, 12);
  app_.DefineFrameRegion(space, 0x00800000, 1, frame, true, true);
  app_.DefineFrameRegion(space, 0x00900000, 1, frame, false, true, receiver_thread);
  ASSERT_EQ(app_.EnsureMappingLoaded(api, space, 0x00800000), CkStatus::kOk);
  ASSERT_EQ(app_.EnsureMappingLoaded(api, space, 0x00900000), CkStatus::kOk);

  // Unload the RECEIVER (signal) mapping: the sender's writable mapping must
  // be flushed too, so the sender re-faults rather than signaling into the
  // void (section 4.2).
  ASSERT_EQ(api.UnloadMapping(app_.space(space).ck_id, 0x00900000), CkStatus::kOk);
  ckbase::Result<ck::MappingInfo> sender_info =
      api.QueryMapping(app_.space(space).ck_id, 0x00800000);
  EXPECT_FALSE(sender_info.ok()) << "writable peer mapping must be gone";

  // Unloading a writable NON-signal mapping must NOT cascade.
  ASSERT_EQ(app_.EnsureMappingLoaded(api, space, 0x00800000), CkStatus::kOk);
  ASSERT_EQ(app_.EnsureMappingLoaded(api, space, 0x00900000), CkStatus::kOk);
  ASSERT_EQ(api.UnloadMapping(app_.space(space).ck_id, 0x00800000), CkStatus::kOk);
  EXPECT_TRUE(api.QueryMapping(app_.space(space).ck_id, 0x00900000).ok())
      << "receiver mapping survives a plain writable flush";
}

TEST_F(MessagingTest, GuestSenderSignalTrap) {
  ck::CkApi api = AppApi();
  uint32_t space = app_.CreateSpace(api);
  cksim::PhysAddr frame = app_.frames().Allocate();

  SignalRecorder receiver;
  uint32_t receiver_thread = app_.CreateNativeThread(api, space, &receiver, 20);
  app_.DefineFrameRegion(space, 0x00800000, 1, frame, true, true);
  app_.DefineFrameRegion(space, 0x00900000, 1, frame, false, true, receiver_thread);
  ASSERT_EQ(app_.EnsureMappingLoaded(api, space, 0x00900000), CkStatus::kOk);

  // Guest writes the message then issues the signal trap (trap 2, a0=addr).
  // Its own message-page mapping is NOT preloaded: the signal trap first
  // takes a mapping fault, the app kernel loads the mapping, and the trap
  // re-executes -- the multi-mapping flow of section 4.2.
  ckisa::Program program = MustAssemble(R"(
      li   t0, 0x00800000
      li   t1, 0xc0ffee
      sw   t1, 64(t0)
      addi a0, t0, 64
      trap 2            ; ck signal
      halt
  )", 0x10000);
  app_.LoadProgramImage(space, program, /*writable=*/false);
  ckapp::GuestThreadParams params;
  params.space_index = space;
  params.entry = 0x10000;
  uint32_t guest = app_.CreateGuestThread(api, params);

  ASSERT_TRUE(world_->RunUntil([&] { return app_.thread(guest).finished; }, 500000));
  ASSERT_TRUE(world_->RunUntil([&] { return !receiver.signals.empty(); }, 200000));
  EXPECT_EQ(receiver.signals[0], 0x00900040u);
  // And the payload is visible through physical memory.
  uint32_t payload = 0;
  ASSERT_EQ(api.ReadPhys(frame + 64, &payload, 4), CkStatus::kOk);
  EXPECT_EQ(payload, 0xc0ffeeu);
}

TEST_F(MessagingTest, GuestReceiverSignalHandler) {
  ck::CkApi api = AppApi();
  uint32_t space = app_.CreateSpace(api);
  cksim::PhysAddr frame = app_.frames().Allocate();

  // Guest receiver: waits for signals; its handler stores the signal address
  // to a mailbox and returns via the signal-return trap.
  ckisa::Program program = MustAssemble(R"(
      ; main: spin until the mailbox fills
      li   t0, 0x00a00000
    wait:
      trap 3            ; await signal (enters handler when one arrives)
      lw   t1, 0(t0)
      beq  t1, r0, wait
      halt

    handler:
      li   t2, 0x00a00000
      sw   a0, 0(t2)    ; record the translated message address
      trap 1            ; signal return
  )", 0x10000);
  app_.LoadProgramImage(space, program, /*writable=*/false);
  app_.DefineZeroRegion(space, 0x00a00000, 1, /*writable=*/true);  // mailbox
  app_.DefineFrameRegion(space, 0x00900000, 1, frame, false, true, /*signal thread set below*/
                         ckapp::kNoThread);

  ckapp::GuestThreadParams params;
  params.space_index = space;
  params.entry = 0x10000;
  params.signal_handler = program.labels.at("handler");
  uint32_t guest = app_.CreateGuestThread(api, params);
  // Route the message page's signals to the guest thread.
  app_.space(space).FindPage(0x00900000)->signal_thread = guest;
  ASSERT_EQ(app_.EnsureMappingLoaded(api, space, 0x00900000), CkStatus::kOk);

  // Let the guest start and actually block in await (a signal sent before
  // its first await would interrupt it at the entry point, and the program
  // would re-await after the handler with nothing pending).
  app_.DefineFrameRegion(space, 0x00800000, 1, frame, true, true);
  ASSERT_EQ(app_.EnsureMappingLoaded(api, space, 0x00800000), CkStatus::kOk);
  ASSERT_TRUE(world_->RunUntil([&] {
    ckbase::Result<ck::ThreadState> state = world_->ck().GetThreadState(app_.thread(guest).ck_id);
    return state.ok() && state.value() == ck::ThreadState::kBlocked;
  }));
  ASSERT_EQ(api.Signal(app_.space(space).ck_id, 0x00800020), CkStatus::kOk);

  ASSERT_TRUE(world_->RunUntil([&] { return app_.thread(guest).finished; }, 500000));
  // The mailbox holds the receiver-side address of the message.
  ckapp::PageRecord* mailbox = app_.space(space).FindPage(0x00a00000);
  ASSERT_NE(mailbox, nullptr);
  uint32_t recorded = 0;
  ASSERT_EQ(api.ReadPhys(mailbox->frame, &recorded, 4), CkStatus::kOk);
  EXPECT_EQ(recorded, 0x00900020u);
}

TEST_F(MessagingTest, ChannelSendReceive) {
  ck::CkApi api = AppApi();
  uint32_t space = app_.CreateSpace(api);

  // 2-slot channel over frames from the app's pool.
  cksim::PhysAddr slot0 = app_.frames().Allocate();
  cksim::PhysAddr slot1 = app_.frames().Allocate();
  ASSERT_EQ(slot1, slot0 + cksim::kPageSize) << "pool frames are contiguous here";

  class ChannelReceiver : public ck::NativeProgram {
   public:
    explicit ChannelReceiver(ckapp::MessageChannel& channel) : channel_(channel) {}
    ck::NativeOutcome Step(ck::NativeCtx&) override {
      ck::NativeOutcome outcome;
      outcome.action = ck::NativeOutcome::Action::kBlock;
      return outcome;
    }
    void OnSignal(cksim::VirtAddr addr, ck::NativeCtx& ctx) override {
      char buffer[64] = {0};
      uint32_t n = channel_.Read(ctx.api(), addr, buffer, sizeof(buffer));
      messages.emplace_back(buffer, n);
    }
    ckapp::MessageChannel& channel_;
    std::vector<std::string> messages;
  };

  ckapp::MessageChannel channel;
  ChannelReceiver receiver(channel);
  uint32_t receiver_thread = app_.CreateNativeThread(api, space, &receiver, 15);
  channel.ConfigureSender(app_, space, 0x00800000, slot0, 2);
  channel.ConfigureReceiver(app_, space, 0x00900000, slot0, 2, receiver_thread);
  ASSERT_EQ(channel.PrimeReceiver(api), CkStatus::kOk);

  ASSERT_EQ(channel.Send(api, "hello", 5), CkStatus::kOk);
  ASSERT_EQ(channel.Send(api, "world!", 6), CkStatus::kOk);
  ASSERT_TRUE(world_->RunUntil([&] { return receiver.messages.size() >= 2; }, 200000));
  EXPECT_EQ(receiver.messages[0], "hello");
  EXPECT_EQ(receiver.messages[1], "world!");
}

TEST_F(MessagingTest, RpcRoundTrip) {
  ck::CkApi api = AppApi();
  uint32_t space = app_.CreateSpace(api);

  // Request + reply channels (2 slots each) over four contiguous frames.
  cksim::PhysAddr frames[4];
  for (auto& f : frames) {
    f = app_.frames().Allocate();
  }

  ckapp::MessageChannel requests, replies;
  ckapp::RpcServer server(requests, replies,
                          [](uint32_t op, const std::vector<uint8_t>& in, ck::CkApi&) {
    // Service: op 1 doubles each byte.
    std::vector<uint8_t> out = in;
    if (op == 1) {
      for (uint8_t& b : out) {
        b = static_cast<uint8_t>(b * 2);
      }
    }
    return out;
  });
  ckapp::RpcClient client(requests, replies);

  uint32_t server_thread = app_.CreateNativeThread(api, space, &server, 16);
  uint32_t client_thread = app_.CreateNativeThread(api, space, &client, 16);

  requests.ConfigureSender(app_, space, 0x00800000, frames[0], 2);
  requests.ConfigureReceiver(app_, space, 0x00900000, frames[0], 2, server_thread);
  replies.ConfigureSender(app_, space, 0x00a00000, frames[2], 2);
  replies.ConfigureReceiver(app_, space, 0x00b00000, frames[2], 2, client_thread);
  ASSERT_EQ(requests.PrimeReceiver(api), CkStatus::kOk);
  ASSERT_EQ(replies.PrimeReceiver(api), CkStatus::kOk);

  std::vector<uint8_t> reply_data;
  ASSERT_EQ(client.Call(api, 1, {10, 20, 30},
                        [&](const std::vector<uint8_t>& reply, ck::CkApi&) {
                          reply_data = reply;
                        }),
            CkStatus::kOk);

  ASSERT_TRUE(world_->RunUntil([&] { return !reply_data.empty(); }, 500000));
  ASSERT_EQ(reply_data.size(), 3u);
  EXPECT_EQ(reply_data[0], 20);
  EXPECT_EQ(reply_data[1], 40);
  EXPECT_EQ(reply_data[2], 60);
  EXPECT_EQ(server.requests_served(), 1u);
  EXPECT_EQ(client.replies_received(), 1u);
  EXPECT_EQ(client.outstanding(), 0u);
}

TEST_F(MessagingTest, ChannelRejectsOversizeAndUnconfigured) {
  ck::CkApi api = AppApi();
  ckapp::MessageChannel unconfigured;
  EXPECT_EQ(unconfigured.Send(api, "x", 1), CkStatus::kInvalidArgument);

  uint32_t space = app_.CreateSpace(api);
  cksim::PhysAddr frame = app_.frames().Allocate();
  ckapp::MessageChannel channel;
  channel.ConfigureSender(app_, space, 0x00800000, frame, 1);
  std::vector<uint8_t> huge(ckapp::MessageChannel::kMaxMessage + 1);
  EXPECT_EQ(channel.Send(api, huge.data(), static_cast<uint32_t>(huge.size())),
            CkStatus::kInvalidArgument);

  // Read with a bogus signal address returns nothing.
  char buffer[8];
  EXPECT_EQ(channel.Read(api, 0x12345678, buffer, sizeof(buffer)), 0u);
}

TEST_F(MessagingTest, ChannelSlotsRotate) {
  ck::CkApi api = AppApi();
  uint32_t space = app_.CreateSpace(api);
  cksim::PhysAddr slot0 = app_.frames().Allocate();
  cksim::PhysAddr slot1 = app_.frames().Allocate();
  ASSERT_EQ(slot1, slot0 + cksim::kPageSize);

  class Collector : public ck::NativeProgram {
   public:
    explicit Collector(ckapp::MessageChannel& channel) : channel_(channel) {}
    ck::NativeOutcome Step(ck::NativeCtx&) override {
      ck::NativeOutcome outcome;
      outcome.action = ck::NativeOutcome::Action::kBlock;
      return outcome;
    }
    void OnSignal(cksim::VirtAddr addr, ck::NativeCtx& ctx) override {
      char buffer[32] = {0};
      uint32_t n = channel_.Read(ctx.api(), addr, buffer, sizeof(buffer));
      messages.emplace_back(buffer, n);
      slots.push_back(addr);
    }
    ckapp::MessageChannel& channel_;
    std::vector<std::string> messages;
    std::vector<cksim::VirtAddr> slots;
  };

  ckapp::MessageChannel channel;
  Collector collector(channel);
  uint32_t thread = app_.CreateNativeThread(api, space, &collector, 15);
  channel.ConfigureSender(app_, space, 0x00800000, slot0, 2);
  channel.ConfigureReceiver(app_, space, 0x00900000, slot0, 2, thread);
  ASSERT_EQ(channel.PrimeReceiver(api), CkStatus::kOk);

  // Three sends over two slots: slot sequence 0,1,0. Wait for each delivery
  // before reusing slots (a 2-slot ring has no flow control of its own).
  size_t sent = 0;
  for (const char* m : {"one", "two", "three"}) {
    ASSERT_EQ(channel.Send(api, m, static_cast<uint32_t>(strlen(m))), CkStatus::kOk);
    ++sent;
    ASSERT_TRUE(
        world_->RunUntil([&] { return collector.messages.size() >= sent; }, 200000));
  }
  EXPECT_EQ(collector.messages[0], "one");
  EXPECT_EQ(collector.messages[1], "two");
  EXPECT_EQ(collector.messages[2], "three");
  EXPECT_EQ(collector.slots[0], 0x00900000u);
  EXPECT_EQ(collector.slots[1], 0x00901000u);
  EXPECT_EQ(collector.slots[2], 0x00900000u) << "slot ring wraps";
}

TEST_F(MessagingTest, SignalQueueOverflowDropsAndCounts) {
  ck::CkApi api = AppApi();
  uint32_t space = app_.CreateSpace(api);
  cksim::PhysAddr frame = app_.frames().Allocate();

  // Receiver pinned to the sender's CPU: deliveries are synchronous, and the
  // receiver never gets a turn between them, so the burst lands in one go.
  SignalRecorder receiver;
  uint32_t receiver_thread = app_.CreateNativeThread(api, space, &receiver, 1, false, 0);
  app_.DefineFrameRegion(space, 0x00800000, 1, frame, true, true);
  app_.DefineFrameRegion(space, 0x00900000, 1, frame, false, true, receiver_thread);
  ASSERT_EQ(app_.EnsureMappingLoaded(api, space, 0x00800000), CkStatus::kOk);
  ASSERT_EQ(app_.EnsureMappingLoaded(api, space, 0x00900000), CkStatus::kOk);

  // Fire more signals than the per-thread queue depth before the receiver
  // can drain (they all land in one drain batch).
  for (int i = 0; i < 20; ++i) {
    ASSERT_EQ(api.Signal(app_.space(space).ck_id, 0x00800000), CkStatus::kOk);
  }
  world_->machine().RunFor(200000);
  const ck::CkStats& stats = world_->ck().stats();
  EXPECT_GT(stats.signals_dropped, 0u);
  EXPECT_LE(receiver.signals.size(), 20u);
  EXPECT_GE(receiver.signals.size(), 1u);
}

}  // namespace

// The generic descriptor-cache layer (src/ck/object_cache.h): policy
// semantics at the unit level, and capacity-forced reclamation against the
// Cache Kernel with section 4.2 effective-lock chains pinning victims, under
// every replacement policy.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/base/fixed_pool.h"
#include "src/ck/cache_kernel.h"
#include "src/ck/object_cache.h"
#include "src/sim/machine.h"

namespace {

using ck::CacheKernel;
using ck::CacheKernelConfig;
using ck::CkApi;
using ck::KernelId;
using ck::MappingSpec;
using ck::ObjectType;
using ck::ReplacementPolicy;
using ck::SpaceId;
using ck::ThreadId;
using ck::ThreadSpec;
using ckbase::CkStatus;

// ---------------------------------------------------------------------------
// Unit level: ObjectCache over a bare FixedPool
// ---------------------------------------------------------------------------

struct TestObj {
  ckbase::ListNode pool_node;
  bool pinned = false;
};

using TestCache = ck::ObjectCache<ckbase::FixedPool<TestObj>>;

struct PoolOps {
  static constexpr int kPasses = 1;
  static constexpr bool kScanOccupiedSteps = false;
  TestCache& pool;
  uint32_t evicted = ck::kNoVictim;
  bool Occupied(uint32_t slot) const { return pool.IsAllocated(slot); }
  bool Eligible(uint32_t, int) const { return true; }
  bool Pinned(uint32_t slot) { return pool.SlotAt(slot)->pinned; }
  bool TestAndClearReferenced(uint32_t) { return false; }  // pools have no hw bit
  void Evict(uint32_t slot) {
    evicted = slot;
    pool.Release(pool.SlotAt(slot));
  }
};

uint32_t ReclaimOnce(TestCache& pool, ReplacementPolicy policy, uint64_t* steps_out = nullptr) {
  PoolOps ops{pool};
  uint64_t steps = 0;
  if (!pool.Reclaim(policy, ops, steps)) {
    return ck::kNoVictim;
  }
  if (steps_out != nullptr) {
    *steps_out = steps;
  }
  return ops.evicted;
}

TEST(ObjectCacheTest, LoadStampsTrackOccupancy) {
  TestCache pool(4);
  TestObj* a = pool.Allocate();
  TestObj* b = pool.Allocate();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(pool.load_seq(pool.SlotOf(a)), 0u);
  EXPECT_LT(pool.load_seq(pool.SlotOf(a)), pool.load_seq(pool.SlotOf(b)));
  uint32_t slot_a = pool.SlotOf(a);
  pool.Release(a);
  EXPECT_EQ(pool.load_seq(slot_a), 0u);
}

TEST(ObjectCacheTest, FifoEvictsOldestLoadNotHandPosition) {
  // Slots 0..3 hold A,B,C,D; A is released and its slot refilled with the
  // NEWEST object E. The clock hand (still at 0) would take E; FIFO must
  // take B, the oldest surviving load.
  TestCache fifo_pool(4);
  TestObj* a = fifo_pool.Allocate();
  fifo_pool.Allocate();  // B -> slot 1
  fifo_pool.Allocate();  // C -> slot 2
  fifo_pool.Allocate();  // D -> slot 3
  fifo_pool.Release(a);
  TestObj* e = fifo_pool.Allocate();
  ASSERT_EQ(fifo_pool.SlotOf(e), 0u);
  EXPECT_EQ(ReclaimOnce(fifo_pool, ReplacementPolicy::kFifo), 1u) << "oldest load is B";

  TestCache clock_pool(4);
  a = clock_pool.Allocate();
  clock_pool.Allocate();
  clock_pool.Allocate();
  clock_pool.Allocate();
  clock_pool.Release(a);
  e = clock_pool.Allocate();
  ASSERT_EQ(clock_pool.SlotOf(e), 0u);
  EXPECT_EQ(ReclaimOnce(clock_pool, ReplacementPolicy::kClock), 0u) << "hand takes slot 0";
}

TEST(ObjectCacheTest, FifoSkipsPinnedOldest) {
  TestCache pool(3);
  TestObj* a = pool.Allocate();
  pool.Allocate();
  pool.Allocate();
  a->pinned = true;
  EXPECT_EQ(ReclaimOnce(pool, ReplacementPolicy::kFifo), 1u) << "oldest unpinned";
}

TEST(ObjectCacheTest, SecondChanceProtectsTouchedSlot) {
  TestCache pool(3);
  pool.Allocate();  // A -> slot 0
  pool.Allocate();  // B -> slot 1
  pool.Allocate();  // C -> slot 2
  // First reclaim: every soft bit is fresh from load, so the scan consumes
  // all three and falls back to the forced victim A; the hand ends at 1.
  uint64_t steps = 0;
  EXPECT_EQ(ReclaimOnce(pool, ReplacementPolicy::kSecondChance, &steps), 0u);
  EXPECT_EQ(steps, 3u) << "every slot got its second chance before the forced fallback";
  // B and C now have spent soft bits. Touch B: the hand reaches B first but
  // must pass it by and evict untouched C.
  pool.Touch(1);
  EXPECT_EQ(ReclaimOnce(pool, ReplacementPolicy::kSecondChance), 2u);
  // Under plain clock the same touch would have been ignored.
  TestCache clock_pool(3);
  clock_pool.Allocate();
  clock_pool.Allocate();
  clock_pool.Allocate();
  EXPECT_EQ(ReclaimOnce(clock_pool, ReplacementPolicy::kClock), 0u);
  clock_pool.Touch(1);
  EXPECT_EQ(ReclaimOnce(clock_pool, ReplacementPolicy::kClock), 1u);
}

TEST(ObjectCacheTest, AllPinnedFailsForEveryPolicy) {
  for (ReplacementPolicy policy : {ReplacementPolicy::kClock, ReplacementPolicy::kFifo,
                                   ReplacementPolicy::kSecondChance}) {
    TestCache pool(2);
    pool.Allocate()->pinned = true;
    pool.Allocate()->pinned = true;
    EXPECT_EQ(ReclaimOnce(pool, policy), ck::kNoVictim)
        << ck::ReplacementPolicyName(policy);
    EXPECT_EQ(pool.in_use(), 2u) << "a failed scan must not evict";
  }
}

// ---------------------------------------------------------------------------
// Kernel level: capacity-forced reclamation with effective-lock pin chains
// ---------------------------------------------------------------------------

class SinkKernel : public ck::AppKernel {
 public:
  ck::HandlerAction HandleFault(const ck::FaultForward&, CkApi&) override {
    return ck::HandlerAction::kTerminate;
  }
  ck::TrapAction HandleTrap(const ck::TrapForward&, CkApi&) override {
    ck::TrapAction action;
    action.action = ck::HandlerAction::kTerminate;
    return action;
  }
  void OnThreadWriteback(const ck::ThreadWriteback& record, CkApi&) override {
    thread_writebacks.push_back(record.cookie);
  }
  void OnSpaceWriteback(const ck::SpaceWriteback& record, CkApi&) override {
    space_writebacks.push_back(record.cookie);
  }
  void OnKernelWriteback(const ck::KernelWriteback& record, CkApi&) override {
    kernel_writebacks.push_back(record.cookie);
  }
  void OnMappingWriteback(const ck::MappingWriteback& record, CkApi&) override {
    mapping_writebacks.push_back(record.vaddr);
  }
  std::vector<uint64_t> thread_writebacks;
  std::vector<uint64_t> space_writebacks;
  std::vector<uint64_t> kernel_writebacks;
  std::vector<uint64_t> mapping_writebacks;
};

class ReclaimPolicyTest : public ::testing::TestWithParam<ReplacementPolicy> {
 protected:
  void Init(CacheKernelConfig config) {
    for (uint32_t type = 0; type < ck::kObjectTypeCount; ++type) {
      config.replacement[type] = GetParam();
    }
    cksim::MachineConfig mc;
    mc.memory_bytes = 8u << 20;
    machine_ = std::make_unique<cksim::Machine>(mc);
    ck_ = std::make_unique<CacheKernel>(*machine_, config);
    first_id_ = ck_->BootFirstKernel(&first_, 0);
  }

  CkApi Api() { return CkApi(*ck_, first_id_, machine_->cpu(0)); }
  cksim::PhysAddr Frame(uint32_t n) { return 0x100000 + n * cksim::kPageSize; }

  void ExpectClean() {
    std::vector<std::string> violations = ck_->ValidateInvariants();
    EXPECT_TRUE(violations.empty()) << violations.size() << " violations, first: "
                                    << (violations.empty() ? "" : violations[0]);
  }

  std::unique_ptr<cksim::Machine> machine_;
  std::unique_ptr<CacheKernel> ck_;
  SinkKernel first_;
  KernelId first_id_;
};

TEST_P(ReclaimPolicyTest, AllPinnedThreadsFailCleanly) {
  CacheKernelConfig config;
  config.thread_slots = 2;
  Init(config);
  CkApi api = Api();
  ckbase::Result<SpaceId> space = api.LoadSpace(1, /*locked=*/true);
  ASSERT_TRUE(space.ok());
  ThreadSpec spec;
  spec.space = space.value();
  spec.start_blocked = true;
  spec.locked = true;
  spec.cookie = 1;
  ASSERT_TRUE(api.LoadThread(spec).ok());
  spec.cookie = 2;
  ASSERT_TRUE(api.LoadThread(spec).ok());

  uint64_t failures_before = ck_->stats().load_failures;
  spec.cookie = 3;
  spec.locked = false;
  ckbase::Result<ThreadId> overflow = api.LoadThread(spec);
  EXPECT_EQ(overflow.status(), CkStatus::kNoResources);
  EXPECT_EQ(ck_->stats().load_failures, failures_before + 1);
  EXPECT_EQ(ck_->loaded_count(ObjectType::kThread), 2u);
  EXPECT_TRUE(first_.thread_writebacks.empty()) << "a failed scan must not evict";
  ExpectClean();
}

TEST_P(ReclaimPolicyTest, PinnedThreadSkippedForUnpinnedVictim) {
  CacheKernelConfig config;
  config.thread_slots = 2;
  Init(config);
  CkApi api = Api();
  ckbase::Result<SpaceId> space = api.LoadSpace(1, /*locked=*/true);
  ASSERT_TRUE(space.ok());
  ThreadSpec spec;
  spec.space = space.value();
  spec.start_blocked = true;
  spec.locked = true;  // pinned through the locked space + locked kernel chain
  spec.cookie = 1;
  ASSERT_TRUE(api.LoadThread(spec).ok());
  spec.locked = false;
  spec.cookie = 2;
  ASSERT_TRUE(api.LoadThread(spec).ok());

  spec.cookie = 3;
  ASSERT_TRUE(api.LoadThread(spec).ok()) << "unpinned thread 2 is reclaimable";
  ASSERT_EQ(first_.thread_writebacks.size(), 1u);
  EXPECT_EQ(first_.thread_writebacks[0], 2u);
  ExpectClean();
}

TEST_P(ReclaimPolicyTest, BrokenLockChainExposesThreadVictim) {
  // A locked thread in an UNLOCKED space is not effectively locked (section
  // 4.2): the pin chain must reach a locked kernel, so the scan may take it.
  CacheKernelConfig config;
  config.thread_slots = 1;
  Init(config);
  CkApi api = Api();
  ckbase::Result<SpaceId> space = api.LoadSpace(1, /*locked=*/false);
  ASSERT_TRUE(space.ok());
  ThreadSpec spec;
  spec.space = space.value();
  spec.start_blocked = true;
  spec.locked = true;
  spec.cookie = 1;
  ASSERT_TRUE(api.LoadThread(spec).ok());
  spec.cookie = 2;
  ASSERT_TRUE(api.LoadThread(spec).ok()) << "chain broken at the unlocked space";
  ASSERT_EQ(first_.thread_writebacks.size(), 1u);
  EXPECT_EQ(first_.thread_writebacks[0], 1u);
  ExpectClean();
}

TEST_P(ReclaimPolicyTest, AllPinnedSpacesFailCleanly) {
  CacheKernelConfig config;
  config.space_slots = 2;
  Init(config);
  CkApi api = Api();
  ASSERT_TRUE(api.LoadSpace(1, /*locked=*/true).ok());
  ASSERT_TRUE(api.LoadSpace(2, /*locked=*/true).ok());
  uint64_t failures_before = ck_->stats().load_failures;
  EXPECT_EQ(api.LoadSpace(3).status(), CkStatus::kNoResources);
  EXPECT_EQ(ck_->stats().load_failures, failures_before + 1);
  EXPECT_EQ(ck_->loaded_count(ObjectType::kSpace), 2u);
  EXPECT_TRUE(first_.space_writebacks.empty());
  ExpectClean();
}

TEST_P(ReclaimPolicyTest, AllPinnedKernelsFailCleanly) {
  CacheKernelConfig config;
  config.kernel_slots = 2;
  Init(config);
  CkApi api = Api();
  SinkKernel second;
  ASSERT_TRUE(api.LoadKernel(&second, 1, /*locked=*/true).ok());
  SinkKernel third;
  uint64_t failures_before = ck_->stats().load_failures;
  EXPECT_EQ(api.LoadKernel(&third, 2).status(), CkStatus::kNoResources);
  EXPECT_EQ(ck_->stats().load_failures, failures_before + 1);
  EXPECT_EQ(ck_->loaded_count(ObjectType::kKernel), 2u);
  ExpectClean();
}

TEST_P(ReclaimPolicyTest, AllPinnedMappingsFailCleanly) {
  CacheKernelConfig config;
  config.mapping_slots = 2;
  Init(config);
  CkApi api = Api();
  ckbase::Result<SpaceId> space = api.LoadSpace(1, /*locked=*/true);
  ASSERT_TRUE(space.ok());
  MappingSpec spec;
  spec.space = space.value();
  spec.locked = true;
  spec.vaddr = 0x4000;
  spec.paddr = Frame(1);
  ASSERT_EQ(api.LoadMapping(spec), CkStatus::kOk);
  spec.vaddr = 0x5000;
  spec.paddr = Frame(2);
  ASSERT_EQ(api.LoadMapping(spec), CkStatus::kOk);

  uint64_t failures_before = ck_->stats().load_failures;
  spec.locked = false;
  spec.vaddr = 0x6000;
  spec.paddr = Frame(3);
  EXPECT_EQ(api.LoadMapping(spec), CkStatus::kNoResources);
  EXPECT_EQ(ck_->stats().load_failures, failures_before + 1);
  EXPECT_EQ(ck_->loaded_count(ObjectType::kMapping), 2u);
  EXPECT_TRUE(first_.mapping_writebacks.empty());
  ExpectClean();
}

TEST_P(ReclaimPolicyTest, PinnedMappingSkippedForUnpinnedVictim) {
  CacheKernelConfig config;
  config.mapping_slots = 2;
  Init(config);
  CkApi api = Api();
  ckbase::Result<SpaceId> space = api.LoadSpace(1, /*locked=*/true);
  ASSERT_TRUE(space.ok());
  MappingSpec spec;
  spec.space = space.value();
  spec.locked = true;
  spec.vaddr = 0x4000;
  spec.paddr = Frame(1);
  ASSERT_EQ(api.LoadMapping(spec), CkStatus::kOk);
  spec.locked = false;
  spec.vaddr = 0x5000;
  spec.paddr = Frame(2);
  ASSERT_EQ(api.LoadMapping(spec), CkStatus::kOk);

  spec.vaddr = 0x6000;
  spec.paddr = Frame(3);
  ASSERT_EQ(api.LoadMapping(spec), CkStatus::kOk) << "unpinned mapping is reclaimable";
  ASSERT_EQ(first_.mapping_writebacks.size(), 1u);
  EXPECT_EQ(first_.mapping_writebacks[0], 0x5000u);
  ckbase::Result<ck::MappingInfo> pinned = api.QueryMapping(space.value(), 0x4000);
  EXPECT_TRUE(pinned.ok()) << "pinned mapping survived";
  ExpectClean();
}

TEST_P(ReclaimPolicyTest, ScanStepCountersAdvance) {
  CacheKernelConfig config;
  config.thread_slots = 2;
  Init(config);
  CkApi api = Api();
  ckbase::Result<SpaceId> space = api.LoadSpace(1);
  ASSERT_TRUE(space.ok());
  ThreadSpec spec;
  spec.space = space.value();
  spec.start_blocked = true;
  for (uint64_t i = 0; i < 4; ++i) {
    spec.cookie = i;
    ASSERT_TRUE(api.LoadThread(spec).ok());
  }
  uint32_t t = static_cast<uint32_t>(ObjectType::kThread);
  EXPECT_EQ(ck_->stats().reclamations[t], 2u);
  EXPECT_GT(ck_->stats().reclaim_scan_steps[t], 0u);
}

INSTANTIATE_TEST_SUITE_P(Policies, ReclaimPolicyTest,
                         ::testing::Values(ReplacementPolicy::kClock, ReplacementPolicy::kFifo,
                                           ReplacementPolicy::kSecondChance),
                         [](const ::testing::TestParamInfo<ReplacementPolicy>& info) {
                           switch (info.param) {
                             case ReplacementPolicy::kClock:
                               return "Clock";
                             case ReplacementPolicy::kFifo:
                               return "Fifo";
                             case ReplacementPolicy::kSecondChance:
                               return "SecondChance";
                           }
                           return "Unknown";
                         });

}  // namespace

// The clock device through the full messaging stack: periodic ticks on the
// clock's physical page drive an application-kernel timer thread, the way
// the paper's clock "fits the memory-based messaging model" (section 2.2).

#include <gtest/gtest.h>

#include "src/sim/devices.h"
#include "tests/test_harness.h"

namespace {

using ckbase::CkStatus;
using cktest::TestWorld;

class TickCounter : public ck::NativeProgram {
 public:
  ck::NativeOutcome Step(ck::NativeCtx&) override {
    ck::NativeOutcome outcome;
    outcome.action = ck::NativeOutcome::Action::kBlock;
    return outcome;
  }
  void OnSignal(cksim::VirtAddr addr, ck::NativeCtx&) override {
    ++ticks;
    last_addr = addr;
  }
  uint64_t ticks = 0;
  cksim::VirtAddr last_addr = 0;
};

TEST(TimerTest, ClockTicksDriveSignalThread) {
  TestWorld world;
  // Place the clock's tick page in an SRM-reserved group and grant it.
  uint32_t group = world.srm().ReserveGroups(1).value();
  cksim::PhysAddr tick_page = group * cksim::kPageGroupBytes;
  cksim::ClockDevice clock(tick_page, &world.ck());
  world.machine().AttachDevice(&clock);

  ckapp::AppKernelBase app("timer-app", 32);
  world.Launch(app, 1);
  ASSERT_EQ(world.srm().GrantSharedGroups(app, group, 1, ck::GroupAccess::kRead),
            CkStatus::kOk);

  ck::CkApi api(world.ck(), app.self(), world.machine().cpu(0));
  uint32_t space = app.CreateSpace(api);
  TickCounter counter;
  uint32_t thread = app.CreateNativeThread(api, space, &counter, 25);
  app.DefineFrameRegion(space, 0x00700000, 1, tick_page, /*writable=*/false, /*message=*/true,
                        thread, /*locked=*/false);
  ASSERT_EQ(app.EnsureMappingLoaded(api, space, 0x00700000), CkStatus::kOk);

  clock.Start(/*first_tick=*/50000, /*period=*/25000);  // 1 kHz at 25 MHz
  world.machine().RunFor(300000);
  EXPECT_GE(counter.ticks, 8u);
  EXPECT_LE(counter.ticks, 12u);
  EXPECT_EQ(counter.last_addr, 0x00700000u) << "address-valued signal names the tick page";
  EXPECT_GE(clock.ticks_delivered(), counter.ticks);

  clock.Stop();
  uint64_t frozen = counter.ticks;
  world.machine().RunFor(100000);
  EXPECT_EQ(counter.ticks, frozen) << "stopped clock ticks no more";
}

TEST(TimerTest, TwoKernelsShareOneClock) {
  // Both kernels register signal threads on the same tick page: every tick
  // fans out to both (the one-to-many delivery of Figure 3, driven by a
  // device).
  TestWorld world;
  uint32_t group = world.srm().ReserveGroups(1).value();
  cksim::PhysAddr tick_page = group * cksim::kPageGroupBytes;
  cksim::ClockDevice clock(tick_page, &world.ck());
  world.machine().AttachDevice(&clock);

  ckapp::AppKernelBase a("timer-a", 16), b("timer-b", 16);
  world.Launch(a, 1);
  world.Launch(b, 1);
  world.srm().GrantSharedGroups(a, group, 1, ck::GroupAccess::kRead);
  world.srm().GrantSharedGroups(b, group, 1, ck::GroupAccess::kRead);

  ck::CkApi api_a(world.ck(), a.self(), world.machine().cpu(0));
  ck::CkApi api_b(world.ck(), b.self(), world.machine().cpu(0));
  TickCounter counter_a, counter_b;
  uint32_t thread_a = a.CreateNativeThread(api_a, a.CreateSpace(api_a), &counter_a, 25);
  uint32_t thread_b = b.CreateNativeThread(api_b, b.CreateSpace(api_b), &counter_b, 25);
  a.DefineFrameRegion(0, 0x00700000, 1, tick_page, false, true, thread_a);
  b.DefineFrameRegion(0, 0x00700000, 1, tick_page, false, true, thread_b);
  ASSERT_EQ(a.EnsureMappingLoaded(api_a, 0, 0x00700000), CkStatus::kOk);
  ASSERT_EQ(b.EnsureMappingLoaded(api_b, 0, 0x00700000), CkStatus::kOk);

  clock.Start(50000, 50000);
  world.machine().RunFor(400000);
  EXPECT_GE(counter_a.ticks, 5u);
  EXPECT_GE(counter_b.ticks, 5u);
}

}  // namespace

// Distributed shared memory over consistency faults: two machines, one
// shared region, migratory ownership (section 2.1 footnote 1, section 3).

#include <gtest/gtest.h>

#include "src/dsm/dsm_kernel.h"
#include "src/sim/devices.h"
#include "tests/test_harness.h"

namespace {

using ckbase::CkStatus;
using cktest::TestWorld;

// A worker of the DSM kernel: on demand, reads a counter word in the shared
// region, increments it `rounds` times, then stops.
class IncrementWorker : public ck::NativeProgram {
 public:
  IncrementWorker(cksim::VirtAddr addr, uint32_t rounds) : addr_(addr), rounds_(rounds) {}

  ck::NativeOutcome Step(ck::NativeCtx& ctx) override {
    ck::NativeOutcome outcome;
    if (done_ || paused_) {
      outcome.action = ck::NativeOutcome::Action::kBlock;
      return outcome;
    }
    ckbase::Result<uint32_t> value = ctx.LoadWord(addr_);
    if (!value.ok()) {
      // Consistency fault in flight: the DSM kernel blocked us; retry when
      // resumed.
      outcome.action = ck::NativeOutcome::Action::kYield;
      return outcome;
    }
    if (ctx.StoreWord(addr_, value.value() + 1) == CkStatus::kOk) {
      last_seen = value.value() + 1;
      if (--rounds_ == 0) {
        done_ = true;
      }
    }
    outcome.action = ck::NativeOutcome::Action::kYield;
    return outcome;
  }

  bool done() const { return done_; }
  void Pause() { paused_ = true; }
  void Resume(uint32_t rounds) {
    rounds_ = rounds;
    done_ = false;
    paused_ = false;
  }

  uint32_t last_seen = 0;

 private:
  cksim::VirtAddr addr_;
  uint32_t rounds_;
  bool done_ = false;
  bool paused_ = false;
};

// Two machines with a fiber channel and a DSM kernel on each side.
class DsmWorld {
 public:
  explicit DsmWorld(uint32_t pages = 2)
      : dsm_a_config_{pages, 0x48000000, /*initially_owner=*/true},
        dsm_b_config_{pages, 0x48000000, /*initially_owner=*/false},
        dsm_a_(a_.ck(), dsm_a_config_),
        dsm_b_(b_.ck(), dsm_b_config_) {
    uint32_t group_a = a_.srm().ReserveGroups(1).value();
    uint32_t group_b = b_.srm().ReserveGroups(1).value();
    fc_a_ = std::make_unique<cksim::FiberChannelDevice>(a_.machine().memory(), &a_.ck(),
                                                        group_a * cksim::kPageGroupBytes, 4, 4,
                                                        2500);
    fc_b_ = std::make_unique<cksim::FiberChannelDevice>(b_.machine().memory(), &b_.ck(),
                                                        group_b * cksim::kPageGroupBytes, 4, 4,
                                                        2500);
    cksim::FiberChannelDevice::Connect(*fc_a_, *fc_b_);
    a_.machine().AttachDevice(fc_a_.get());
    b_.machine().AttachDevice(fc_b_.get());

    a_.Launch(dsm_a_, 2);
    b_.Launch(dsm_b_, 2);
    a_.srm().GrantSharedGroups(dsm_a_, group_a, 1, ck::GroupAccess::kReadWrite);
    b_.srm().GrantSharedGroups(dsm_b_, group_b, 1, ck::GroupAccess::kReadWrite);

    ck::CkApi api_a(a_.ck(), dsm_a_.self(), a_.machine().cpu(0));
    ck::CkApi api_b(b_.ck(), dsm_b_.self(), b_.machine().cpu(0));
    dsm_a_.Setup(api_a, out_a_, in_a_);
    dsm_b_.Setup(api_b, out_b_, in_b_);

    // Wire each node's out channel over its transmit slots and its in
    // channel over its reception ring, signaled to the endpoint thread.
    out_a_.ConfigureSender(dsm_a_, dsm_a_.space_index(), 0x00800000, fc_a_->tx_slot(0), 4);
    in_a_.ConfigureReceiver(dsm_a_, dsm_a_.space_index(), 0x00900000, fc_a_->rx_slot(0), 4,
                            dsm_a_.endpoint_thread());
    out_b_.ConfigureSender(dsm_b_, dsm_b_.space_index(), 0x00800000, fc_b_->tx_slot(0), 4);
    in_b_.ConfigureReceiver(dsm_b_, dsm_b_.space_index(), 0x00900000, fc_b_->rx_slot(0), 4,
                            dsm_b_.endpoint_thread());
    in_a_.PrimeReceiver(api_a);
    in_b_.PrimeReceiver(api_b);
  }

  bool RunUntil(const std::function<bool()>& done, uint64_t max_turns = 3000000) {
    for (uint64_t i = 0; i < max_turns; ++i) {
      if (done()) {
        return true;
      }
      a_.machine().Step();
      b_.machine().Step();
    }
    return done();
  }

  TestWorld a_, b_;
  ckdsm::DsmConfig dsm_a_config_, dsm_b_config_;
  ckdsm::DsmKernel dsm_a_, dsm_b_;
  std::unique_ptr<cksim::FiberChannelDevice> fc_a_, fc_b_;
  ckapp::MessageChannel out_a_, in_a_, out_b_, in_b_;
};

TEST(DsmTest, OwnershipMigratesOnAccess) {
  DsmWorld world;
  EXPECT_TRUE(world.dsm_a_.OwnsPage(0));
  EXPECT_FALSE(world.dsm_b_.OwnsPage(0));

  // Node A writes a marker into page 0 (it owns it: no fault).
  ck::CkApi api_a(world.a_.ck(), world.dsm_a_.self(), world.a_.machine().cpu(0));
  IncrementWorker writer_a(world.dsm_a_.PageVaddr(0), 5);
  world.dsm_a_.CreateNativeThread(api_a, world.dsm_a_.space_index(), &writer_a, 12);
  ASSERT_TRUE(world.RunUntil([&] { return writer_a.done(); }));
  EXPECT_EQ(writer_a.last_seen, 5u);
  EXPECT_EQ(world.dsm_a_.dsm_stats().consistency_faults, 0u) << "owner faults never";

  // Node B touches the page: consistency fault -> fetch -> ownership moves,
  // and B sees A's writes (the counter continues from 5).
  ck::CkApi api_b(world.b_.ck(), world.dsm_b_.self(), world.b_.machine().cpu(0));
  IncrementWorker writer_b(world.dsm_b_.PageVaddr(0), 3);
  world.dsm_b_.CreateNativeThread(api_b, world.dsm_b_.space_index(), &writer_b, 12);
  ASSERT_TRUE(world.RunUntil([&] { return writer_b.done(); }));
  EXPECT_EQ(writer_b.last_seen, 8u) << "data migrated with ownership";
  EXPECT_TRUE(world.dsm_b_.OwnsPage(0));
  EXPECT_FALSE(world.dsm_a_.OwnsPage(0));
  EXPECT_GE(world.dsm_b_.dsm_stats().consistency_faults, 1u);
  EXPECT_EQ(world.dsm_b_.dsm_stats().fetches_sent, 1u);
  EXPECT_EQ(world.dsm_a_.dsm_stats().invalidations, 1u);
}

TEST(DsmTest, PingPongCounterIsCoherent) {
  DsmWorld world;
  ck::CkApi api_a(world.a_.ck(), world.dsm_a_.self(), world.a_.machine().cpu(0));
  ck::CkApi api_b(world.b_.ck(), world.dsm_b_.self(), world.b_.machine().cpu(0));

  IncrementWorker worker_a(world.dsm_a_.PageVaddr(1), 4);
  IncrementWorker worker_b(world.dsm_b_.PageVaddr(1), 4);
  worker_b.Pause();
  uint32_t a_thread =
      world.dsm_a_.CreateNativeThread(api_a, world.dsm_a_.space_index(), &worker_a, 12);
  uint32_t b_thread =
      world.dsm_b_.CreateNativeThread(api_b, world.dsm_b_.space_index(), &worker_b, 12);

  // Alternate: A increments 4, then B, then A again, ... 3 rounds each side.
  uint32_t expected = 0;
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(world.RunUntil([&] { return worker_a.done(); })) << "round " << round;
    expected += 4;
    EXPECT_EQ(worker_a.last_seen, expected);
    worker_a.Pause();
    worker_b.Resume(4);
    world.dsm_b_.EnsureThreadLoaded(api_b, b_thread);
    api_b.ResumeThread(world.dsm_b_.thread(b_thread).ck_id);
    ASSERT_TRUE(world.RunUntil([&] { return worker_b.done(); })) << "round " << round;
    expected += 4;
    EXPECT_EQ(worker_b.last_seen, expected);
    worker_b.Pause();
    worker_a.Resume(4);
    world.dsm_a_.EnsureThreadLoaded(api_a, a_thread);
    api_a.ResumeThread(world.dsm_a_.thread(a_thread).ck_id);
  }
  // Ownership ping-ponged: both sides fetched multiple times.
  EXPECT_GE(world.dsm_a_.dsm_stats().fetches_sent, 2u);
  EXPECT_GE(world.dsm_b_.dsm_stats().fetches_sent, 3u);
  EXPECT_GE(world.dsm_a_.dsm_stats().invalidations, 3u);
}

TEST(DsmTest, IndependentPagesDoNotInterfere) {
  DsmWorld world(/*pages=*/2);
  ck::CkApi api_b(world.b_.ck(), world.dsm_b_.self(), world.b_.machine().cpu(0));
  IncrementWorker writer_b(world.dsm_b_.PageVaddr(1), 2);
  world.dsm_b_.CreateNativeThread(api_b, world.dsm_b_.space_index(), &writer_b, 12);
  ASSERT_TRUE(world.RunUntil([&] { return writer_b.done(); }));
  // Page 1 moved; page 0 stayed with A.
  EXPECT_TRUE(world.dsm_b_.OwnsPage(1));
  EXPECT_TRUE(world.dsm_a_.OwnsPage(0));
  EXPECT_FALSE(world.dsm_a_.OwnsPage(1));
}

TEST(DsmTest, NonRegionConsistencyFaultStillFatal) {
  // A consistency fault OUTSIDE the DSM region (a genuinely failed memory
  // module) must not be absorbed by the protocol.
  DsmWorld world;
  ck::CkApi api_a(world.a_.ck(), world.dsm_a_.self(), world.a_.machine().cpu(0));
  uint32_t space = world.dsm_a_.space_index();
  world.dsm_a_.DefineZeroRegion(space, 0x60000000, 1, /*writable=*/true);

  IncrementWorker victim(0x60000000, 3);
  uint32_t thread =
      world.dsm_a_.CreateNativeThread(api_a, space, &victim, 12);
  // Materialize the page, then mark its frame as a failed module.
  ASSERT_TRUE(world.RunUntil([&] { return victim.last_seen >= 1; }));
  ckapp::PageRecord* page = world.dsm_a_.space(space).FindPage(0x60000000);
  ASSERT_NE(page, nullptr);
  world.a_.ck().MarkFrameRemote(page->frame >> cksim::kPageShift, true);
  ASSERT_TRUE(world.RunUntil([&] { return world.dsm_a_.thread(thread).finished; }));
  EXPECT_GE(world.dsm_a_.paging_stats().illegal_accesses, 1u);
}

}  // namespace

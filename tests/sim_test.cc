// Unit tests for the simulated hardware: physical memory, page-table walks,
// TLB, reverse-TLB, machine stepping, devices.

#include <gtest/gtest.h>

#include "src/sim/cost.h"
#include "src/sim/devices.h"
#include "src/sim/machine.h"
#include "src/sim/mmu.h"
#include "src/sim/pagetable.h"
#include "src/sim/physmem.h"
#include "src/sim/reverse_tlb.h"
#include "src/sim/tlb.h"

namespace {

using namespace cksim;  // NOLINT: test file, single-domain

TEST(PhysMemTest, RoundsUpToPageGroups) {
  PhysicalMemory mem(1);
  EXPECT_EQ(mem.size(), kPageGroupBytes);
  EXPECT_EQ(mem.page_group_count(), 1u);
  EXPECT_EQ(mem.page_count(), kPagesPerGroup);
}

TEST(PhysMemTest, WordAndByteAccess) {
  PhysicalMemory mem(1 << 20);
  mem.WriteWord(0x100, 0xabcd1234);
  EXPECT_EQ(mem.ReadWord(0x100), 0xabcd1234u);
  mem.WriteByte(0x104, 0x7e);
  EXPECT_EQ(mem.ReadByte(0x104), 0x7e);
  uint8_t buf[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  mem.Write(0x200, buf, 8);
  uint8_t out[8] = {0};
  mem.Read(0x200, out, 8);
  EXPECT_EQ(0, memcmp(buf, out, 8));
  mem.Zero(0x200, 8);
  mem.Read(0x200, out, 8);
  for (uint8_t b : out) {
    EXPECT_EQ(b, 0);
  }
}

TEST(PageTableTest, IndexDecomposition) {
  // 7 + 7 + 6 + 12 bits.
  VirtAddr v = (3u << 25) | (5u << 18) | (9u << 12) | 0x123;
  EXPECT_EQ(L1Index(v), 3u);
  EXPECT_EQ(L2Index(v), 5u);
  EXPECT_EQ(L3Index(v), 9u);
  EXPECT_EQ(kL1Entries * kL2Entries * kL3Entries * kPageSize, 0u)
      << "geometry covers exactly 4 GiB (wraps uint32)";
  EXPECT_EQ(kL1TableBytes, 512u);
  EXPECT_EQ(kL2TableBytes, 512u);
  EXPECT_EQ(kL3TableBytes, 256u);
}

TEST(PageTableTest, PteRoundTrip) {
  uint32_t pte = MakePte(0x12345000, kPteValid | kPteWritable | kPteMessage);
  EXPECT_TRUE(PteValid(pte));
  EXPECT_EQ(PteAddress(pte), 0x12345000u);
  MapFlags flags = MapFlags::FromPteBits(pte);
  EXPECT_TRUE(flags.writable);
  EXPECT_TRUE(flags.message);
  EXPECT_FALSE(flags.copy_on_write);
}

TEST(TlbTest, HitMissAndFlush) {
  Tlb tlb(64, 4);
  EXPECT_FALSE(tlb.Lookup(1, 100).hit);
  tlb.Insert(1, 100, 555, kPteWritable);
  Tlb::LookupResult r = tlb.Lookup(1, 100);
  EXPECT_TRUE(r.hit);
  EXPECT_EQ(r.pframe, 555u);
  EXPECT_EQ(r.flags, kPteWritable);
  // Different asid, same page: miss.
  EXPECT_FALSE(tlb.Lookup(2, 100).hit);
  tlb.FlushPage(1, 100);
  EXPECT_FALSE(tlb.Lookup(1, 100).hit);
}

TEST(TlbTest, FlushAsidAndFrame) {
  Tlb tlb(64, 4);
  tlb.Insert(1, 10, 100, 0);
  tlb.Insert(1, 11, 101, 0);
  tlb.Insert(2, 12, 100, 0);
  tlb.FlushAsid(1);
  EXPECT_FALSE(tlb.Lookup(1, 10).hit);
  EXPECT_FALSE(tlb.Lookup(1, 11).hit);
  EXPECT_TRUE(tlb.Lookup(2, 12).hit);
  tlb.FlushFrame(100);
  EXPECT_FALSE(tlb.Lookup(2, 12).hit);
}

TEST(TlbTest, LruReplacementWithinSet) {
  Tlb tlb(8, 2);  // 4 sets x 2 ways
  // Two pages mapping to the same set: fill both ways, then a third evicts
  // the least recently used.
  tlb.Insert(1, 0, 1, 0);
  tlb.Insert(1, 4, 2, 0);  // same set (sets=4, hash spreads; may differ) --
  // Touch page 0 so it is MRU if they share a set.
  tlb.Lookup(1, 0);
  tlb.Insert(1, 8, 3, 0);
  // Whatever the set layout, page 0 must still be present after its recent
  // touch unless its set has capacity pressure from both others.
  int present = tlb.Lookup(1, 0).hit ? 1 : 0;
  present += tlb.Lookup(1, 8).hit ? 1 : 0;
  EXPECT_GE(present, 1);
}

TEST(TlbTest, LruTickSurvives32BitWrap) {
  Tlb tlb(4, 4);  // one set, four ways: every page competes on LRU alone
  // Park the LRU clock just below 2^32 so the inserts straddle it. With a
  // 32-bit tick, page 10's stamp (2^32 - 1) would be the LARGEST value in
  // the set while the post-wrap stamps restart near zero -- so the oldest
  // entry would look newest and a recently-inserted page would be evicted.
  tlb.SetTickForTesting((1ull << 32) - 2);
  tlb.Insert(1, 10, 100, 0);  // tick 2^32 - 1: the true LRU from here on
  tlb.Insert(1, 11, 101, 0);  // tick 2^32     (a 32-bit clock wraps to 0)
  tlb.Insert(1, 12, 102, 0);  // tick 2^32 + 1
  tlb.Insert(1, 13, 103, 0);  // tick 2^32 + 2
  tlb.Lookup(1, 11);          // touching across the wrap must also work
  EXPECT_GT(tlb.tick(), 1ull << 32);
  // Set full; the insert must evict page 10, the genuinely oldest entry.
  // The wrapped clock would have evicted page 12 (smallest wrapped stamp
  // once 11 was re-touched) and kept 10 forever.
  tlb.Insert(1, 14, 104, 0);
  EXPECT_FALSE(tlb.Lookup(1, 10).hit) << "true LRU entry survived the wrap";
  EXPECT_TRUE(tlb.Lookup(1, 11).hit);
  EXPECT_TRUE(tlb.Lookup(1, 12).hit) << "post-wrap entry evicted as false LRU";
  EXPECT_TRUE(tlb.Lookup(1, 13).hit);
  EXPECT_TRUE(tlb.Lookup(1, 14).hit);
}

class MmuTest : public ::testing::Test {
 protected:
  MmuTest() : mem_(4 << 20), mmu_(mem_, cost_) {}

  // Hand-build tables: root at 0x1000, L2 at 0x2000, L3 at 0x3000.
  void BuildMapping(VirtAddr vaddr, PhysAddr paddr, uint32_t flags) {
    mem_.WriteWord(0x1000 + L1Index(vaddr) * 4, MakePte(0x2000, kPteValid));
    mem_.WriteWord(0x2000 + L2Index(vaddr) * 4, MakePte(0x3000, kPteValid));
    mem_.WriteWord(0x3000 + L3Index(vaddr) * 4, MakePte(paddr, kPteValid | flags));
  }

  uint32_t LeafPte(VirtAddr vaddr) { return mem_.ReadWord(0x3000 + L3Index(vaddr) * 4); }

  CostModel cost_;
  PhysicalMemory mem_;
  Mmu mmu_;
};

TEST_F(MmuTest, WalkTranslatesAndSetsReferenced) {
  BuildMapping(0x00400000, 0x00080000, kPteWritable);
  Mmu::TranslateResult r = mmu_.Translate(0x1000, 1, 0x00400123, Access::kRead);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.paddr, 0x00080123u);
  EXPECT_TRUE((LeafPte(0x00400000) & kPteReferenced) != 0) << "hardware sets R bit";
  EXPECT_GT(r.cycles, 0u);
}

TEST_F(MmuTest, TlbHitIsCheaperThanWalk) {
  BuildMapping(0x00400000, 0x00080000, kPteWritable);
  Mmu::TranslateResult miss = mmu_.Translate(0x1000, 1, 0x00400000, Access::kRead);
  Mmu::TranslateResult hit = mmu_.Translate(0x1000, 1, 0x00400004, Access::kRead);
  EXPECT_LT(hit.cycles, miss.cycles);
  EXPECT_EQ(mmu_.tlb().hits(), 1u);
  EXPECT_EQ(mmu_.tlb().misses(), 1u);
}

TEST_F(MmuTest, NoMappingFaults) {
  Mmu::TranslateResult r = mmu_.Translate(0x1000, 1, 0x00400000, Access::kRead);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.fault.type, FaultType::kNoMapping);
  EXPECT_EQ(r.fault.address, 0x00400000u);
  // Null root: also a mapping fault.
  r = mmu_.Translate(0, 1, 0x1234, Access::kRead);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.fault.type, FaultType::kNoMapping);
}

TEST_F(MmuTest, WriteProtectionAndModifiedBit) {
  BuildMapping(0x00400000, 0x00080000, 0);  // read-only
  Mmu::TranslateResult r = mmu_.Translate(0x1000, 1, 0x00400000, Access::kWrite);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.fault.type, FaultType::kProtection);

  BuildMapping(0x00500000, 0x00081000, kPteWritable);
  r = mmu_.Translate(0x1000, 1, 0x00500000, Access::kWrite);
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE((LeafPte(0x00500000) & kPteModified) != 0) << "hardware sets M bit on write";
}

TEST_F(MmuTest, CopyOnWriteFaultsOnWriteOnly) {
  BuildMapping(0x00400000, 0x00080000, kPteWritable | kPteCopyOnWrite);
  EXPECT_TRUE(mmu_.Translate(0x1000, 1, 0x00400000, Access::kRead).ok);
  Mmu::TranslateResult w = mmu_.Translate(0x1000, 1, 0x00400000, Access::kWrite);
  EXPECT_FALSE(w.ok);
  EXPECT_EQ(w.fault.type, FaultType::kProtection);
}

TEST_F(MmuTest, MessageModeWriteFlagged) {
  BuildMapping(0x00400000, 0x00080000, kPteWritable | kPteMessage);
  Mmu::TranslateResult w = mmu_.Translate(0x1000, 1, 0x00400000, Access::kWrite);
  ASSERT_TRUE(w.ok);
  EXPECT_TRUE(w.message_write);
  Mmu::TranslateResult r = mmu_.Translate(0x1000, 1, 0x00400000, Access::kRead);
  ASSERT_TRUE(r.ok);
  EXPECT_FALSE(r.message_write);
}

TEST(ReverseTlbTest, InsertLookupInvalidate) {
  ReverseTlb rtlb(16);
  EXPECT_EQ(rtlb.Lookup(7), nullptr);
  ReverseTlb::Entry e;
  e.valid = true;
  e.pframe = 7;
  e.vbase = 0x4000;
  e.thread_id = 99;
  rtlb.Insert(e);
  const ReverseTlb::Entry* hit = rtlb.Lookup(7);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->thread_id, 99u);
  rtlb.InvalidateFrame(7);
  EXPECT_EQ(rtlb.Lookup(7), nullptr);
  rtlb.Insert(e);
  rtlb.InvalidateThread(99);
  EXPECT_EQ(rtlb.Lookup(7), nullptr);
}

// A trivial kernel that counts turns and idles.
class CountingClient : public MachineClient {
 public:
  void OnCpuTurn(Cpu& cpu) override {
    ++turns;
    cpu.Advance(100);
  }
  uint64_t turns = 0;
};

TEST(MachineTest, MinClockScheduling) {
  MachineConfig config;
  config.cpu_count = 2;
  config.memory_bytes = 1 << 20;
  Machine machine(config);
  CountingClient client;
  machine.AttachKernel(&client);

  machine.cpu(1).Advance(1000);  // cpu1 ahead
  machine.Step();
  machine.Step();
  // Both turns must have gone to cpu0 (the laggard).
  EXPECT_EQ(machine.cpu(0).clock(), 200u);
  EXPECT_EQ(machine.cpu(1).clock(), 1000u);
  EXPECT_EQ(client.turns, 2u);
}

TEST(MachineTest, RunUntilAdvancesAllCpus) {
  MachineConfig config;
  config.cpu_count = 4;
  Machine machine(config);
  CountingClient client;
  machine.AttachKernel(&client);
  machine.RunUntil(5000);
  for (uint32_t c = 0; c < 4; ++c) {
    EXPECT_GE(machine.cpu(c).clock(), 5000u);
  }
}

TEST(MachineTest, HaltStopsTurns) {
  MachineConfig config;
  Machine machine(config);
  CountingClient client;
  machine.AttachKernel(&client);
  machine.Step();
  machine.Halt();
  EXPECT_FALSE(machine.Step());
}

class RecordingSink : public SignalSink {
 public:
  void SignalPhysical(PhysAddr addr, Cycles when) override {
    addrs.push_back(addr);
    times.push_back(when);
  }
  std::vector<PhysAddr> addrs;
  std::vector<Cycles> times;
};

TEST(DeviceTest, ClockTicksPeriodically) {
  MachineConfig config;
  Machine machine(config);
  CountingClient client;
  machine.AttachKernel(&client);
  RecordingSink sink;
  ClockDevice clock(0x10000, &sink);
  machine.AttachDevice(&clock);
  clock.Start(1000, 500);
  machine.RunUntil(2600);
  ASSERT_GE(sink.addrs.size(), 3u);
  EXPECT_EQ(sink.addrs[0], 0x10000u);
  EXPECT_EQ(sink.times[0], 1000u);
  EXPECT_EQ(sink.times[1], 1500u);
  EXPECT_EQ(sink.times[2], 2000u);
}

TEST(DeviceTest, FiberChannelDeliversToPeer) {
  MachineConfig config;
  Machine a(config), b(config);
  CountingClient ca, cb;
  a.AttachKernel(&ca);
  b.AttachKernel(&cb);
  RecordingSink sink_a, sink_b;
  FiberChannelDevice fca(a.memory(), &sink_a, 0x20000, 2, 2, 2500);
  FiberChannelDevice fcb(b.memory(), &sink_b, 0x20000, 2, 2, 2500);
  FiberChannelDevice::Connect(fca, fcb);
  a.AttachDevice(&fca);
  b.AttachDevice(&fcb);

  // Write a packet into A's tx slot 0 and ring the doorbell.
  const char payload[] = "hello";
  uint32_t len = sizeof(payload);
  a.memory().WriteWord(fca.tx_slot(0), len);
  a.memory().Write(fca.tx_slot(0) + 4, payload, len);
  fca.OnDoorbell(fca.tx_slot(0), 100);

  // Run B until its device delivers.
  b.RunUntil(10000);
  ASSERT_EQ(sink_b.addrs.size(), 1u);
  EXPECT_EQ(sink_b.addrs[0], fcb.rx_slot(0));
  EXPECT_GE(sink_b.times[0], 100u + 2500u);
  EXPECT_EQ(b.memory().ReadWord(fcb.rx_slot(0)), len);
  char out[16] = {0};
  b.memory().Read(fcb.rx_slot(0) + 4, out, len);
  EXPECT_STREQ(out, "hello");
  EXPECT_EQ(fca.packets_sent(), 1u);
  EXPECT_EQ(fcb.packets_received(), 1u);
}

TEST(DeviceTest, FiberChannelBulkZeroLengthAndTiming) {
  MachineConfig config;
  Machine a(config), b(config);
  RecordingSink sink_a, sink_b;
  FiberChannelDevice fca(a.memory(), &sink_a, 0x20000, 2, 2, 2500);
  FiberChannelDevice fcb(b.memory(), &sink_b, 0x20000, 2, 2, 2500);
  FiberChannelDevice::Connect(fca, fcb);

  // A zero-length payload is legal: it occupies the wire for zero cycles and
  // arrives after exactly the base latency.
  fca.SendBulk({}, 100);
  std::vector<uint8_t> out{0xee};  // poison: PollBulk must replace it
  EXPECT_FALSE(fcb.PollBulk(&out, 2599));
  ASSERT_TRUE(fcb.PollBulk(&out, 2600));
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(fca.bulk_sent(), 1u);
  EXPECT_EQ(fcb.bulk_received(), 1u);
  EXPECT_EQ(fcb.bulk_bytes_received(), 0u);
}

TEST(DeviceTest, FiberChannelBulkFifoNoOvertake) {
  MachineConfig config;
  Machine a(config), b(config);
  RecordingSink sink_a, sink_b;
  FiberChannelDevice fca(a.memory(), &sink_a, 0x20000, 2, 2, 2500);
  FiberChannelDevice fcb(b.memory(), &sink_b, 0x20000, 2, 2, 2500);
  FiberChannelDevice::Connect(fca, fcb);

  // A big payload followed immediately by a tiny one: the tiny one must not
  // overtake on the wire -- it starts serializing only when the link frees.
  fca.SendBulk(std::vector<uint8_t>(8192, 0xaa), 100);
  fca.SendBulk(std::vector<uint8_t>(4, 0xbb), 101);

  // Big: starts at 100, serializes 8192*3/4 = 6144 cycles, due 100+6144+2500.
  const Cycles big_due = 100 + FiberChannelDevice::BulkWireCycles(8192) + 2500;
  // Small: the wire is busy until 6244, so due = 6244 + 3 + 2500.
  const Cycles small_due = 100 + FiberChannelDevice::BulkWireCycles(8192) +
                           FiberChannelDevice::BulkWireCycles(4) + 2500;
  ASSERT_LT(big_due, small_due);

  std::vector<uint8_t> out;
  EXPECT_FALSE(fcb.PollBulk(&out, big_due - 1));
  ASSERT_TRUE(fcb.PollBulk(&out, big_due));
  EXPECT_EQ(out.size(), 8192u) << "small payload overtook the big one";
  EXPECT_FALSE(fcb.PollBulk(&out, small_due - 1));
  ASSERT_TRUE(fcb.PollBulk(&out, small_due));
  EXPECT_EQ(out.size(), 4u);
}

// One window's worth of interleaved regular packets and bulk payloads must be
// observed identically by the peer whether the link delivers immediately
// (Connect) or stages in the deferred outbox and flushes at a barrier
// (cluster mode): same signal times, same bulk arrival times, same order.
TEST(DeviceTest, FiberChannelDeferredBulkMatchesImmediate) {
  struct Observed {
    std::vector<Cycles> signal_times;
    std::vector<std::pair<Cycles, size_t>> bulks;  // (arrival, size)
    bool operator==(const Observed& o) const {
      return signal_times == o.signal_times && bulks == o.bulks;
    }
  };
  auto run = [](bool deferred) {
    MachineConfig config;
    Machine a(config), b(config);
    CountingClient ca, cb;
    a.AttachKernel(&ca);
    b.AttachKernel(&cb);
    RecordingSink sink_a, sink_b;
    FiberChannelDevice fca(a.memory(), &sink_a, 0x20000, 2, 2, 2500);
    FiberChannelDevice fcb(b.memory(), &sink_b, 0x20000, 2, 2, 2500);
    FiberChannelDevice::Connect(fca, fcb);
    a.AttachDevice(&fca);
    b.AttachDevice(&fcb);
    fca.set_deferred_delivery(deferred);
    fcb.set_deferred_delivery(deferred);

    // The interleaving under test: packet, big bulk, packet, empty bulk,
    // small bulk -- all sent within one window.
    a.memory().WriteWord(fca.tx_slot(0), 4);
    a.memory().WriteWord(fca.tx_slot(0) + 4, 0x11111111);
    fca.OnDoorbell(fca.tx_slot(0), 100);
    fca.SendBulk(std::vector<uint8_t>(6000, 0xaa), 110);
    a.memory().WriteWord(fca.tx_slot(1), 4);
    a.memory().WriteWord(fca.tx_slot(1) + 4, 0x22222222);
    fca.OnDoorbell(fca.tx_slot(1), 120);
    fca.SendBulk({}, 130);
    fca.SendBulk(std::vector<uint8_t>(8, 0xbb), 140);

    if (deferred) {
      fca.FlushOutbox();  // the barrier
      fcb.FlushOutbox();
    }

    Observed observed;
    std::vector<uint8_t> blob;
    for (Cycles now = 0; now <= 30000; now += 10) {
      b.RunUntil(now);
      while (fcb.PollBulk(&blob, now)) {
        observed.bulks.emplace_back(now, blob.size());
      }
    }
    observed.signal_times = sink_b.times;
    return observed;
  };

  Observed immediate = run(false);
  Observed deferred = run(true);
  EXPECT_TRUE(immediate == deferred);
  ASSERT_EQ(immediate.bulks.size(), 3u);
  EXPECT_EQ(immediate.bulks[0].second, 6000u);
  EXPECT_EQ(immediate.bulks[1].second, 0u);
  EXPECT_EQ(immediate.bulks[2].second, 8u);
  ASSERT_EQ(immediate.signal_times.size(), 2u);
}

TEST(DeviceTest, EthernetHubRoutesByStation) {
  MachineConfig config;
  Machine m(config);
  CountingClient client;
  m.AttachKernel(&client);
  RecordingSink s1, s2, s3;
  EthernetDevice e1(m.memory(), &s1, 0x30000, 2, 2, 1000, 1);
  EthernetDevice e2(m.memory(), &s2, 0x40000, 2, 2, 1000, 2);
  EthernetDevice e3(m.memory(), &s3, 0x50000, 2, 2, 1000, 3);
  EthernetHub hub;
  hub.Attach(&e1);
  hub.Attach(&e2);
  hub.Attach(&e3);
  m.AttachDevice(&e1);
  m.AttachDevice(&e2);
  m.AttachDevice(&e3);

  // Unicast to station 2.
  uint8_t packet[4] = {2, 0xaa, 0xbb, 0xcc};
  uint32_t len = sizeof(packet);
  m.memory().WriteWord(e1.tx_slot(0), len);
  m.memory().Write(e1.tx_slot(0) + 4, packet, len);
  e1.OnDoorbell(e1.tx_slot(0), 0);
  m.RunUntil(5000);
  EXPECT_EQ(s2.addrs.size(), 1u);
  EXPECT_EQ(s3.addrs.size(), 0u);

  // Broadcast.
  packet[0] = 0xff;
  m.memory().WriteWord(e1.tx_slot(1), len);
  m.memory().Write(e1.tx_slot(1) + 4, packet, len);
  e1.OnDoorbell(e1.tx_slot(1), 6000);
  m.RunUntil(12000);
  EXPECT_EQ(s2.addrs.size(), 2u);
  EXPECT_EQ(s3.addrs.size(), 1u);
  EXPECT_EQ(s1.addrs.size(), 0u) << "sender does not hear its own broadcast";
}

// Minimal device that just records the doorbells routed to it.
class RecordingDoorbellDevice : public Device {
 public:
  RecordingDoorbellDevice(PhysAddr base, uint32_t size) : base_(base), size_(size) {}
  PhysAddr region_base() const override { return base_; }
  uint32_t region_size() const override { return size_; }
  Cycles NextEventAt() const override { return kNoEvent; }
  void Run(Cycles) override {}
  void OnDoorbell(PhysAddr addr, Cycles when) override {
    addrs.push_back(addr);
    times.push_back(when);
  }
  std::vector<PhysAddr> addrs;
  std::vector<Cycles> times;

 private:
  PhysAddr base_;
  uint32_t size_;
};

TEST(MachineTest, DeliverDoorbellRoutesAmongMultipleDevices) {
  MachineConfig config;
  Machine m(config);
  RecordingDoorbellDevice d1(0x10000, 0x1000);
  RecordingDoorbellDevice d2(0x20000, 0x2000);
  RecordingDoorbellDevice d3(0x22000, 0x1000);  // adjacent to d2's end
  m.AttachDevice(&d1);
  m.AttachDevice(&d2);
  m.AttachDevice(&d3);

  // Interior of the second device's region.
  EXPECT_TRUE(m.DeliverDoorbell(0x20800, 100));
  // Both ends of a region are inclusive of the first byte, exclusive of the
  // limit: the last byte of d2 belongs to d2, the next byte to d3.
  EXPECT_TRUE(m.DeliverDoorbell(0x20000, 200));
  EXPECT_TRUE(m.DeliverDoorbell(0x21fff, 300));
  EXPECT_TRUE(m.DeliverDoorbell(0x22000, 400));

  ASSERT_EQ(d2.addrs.size(), 3u);
  EXPECT_EQ(d2.addrs[0], 0x20800u);
  EXPECT_EQ(d2.times[0], 100u);
  EXPECT_EQ(d2.addrs[1], 0x20000u);
  EXPECT_EQ(d2.addrs[2], 0x21fffu);
  ASSERT_EQ(d3.addrs.size(), 1u);
  EXPECT_EQ(d3.addrs[0], 0x22000u);
  EXPECT_TRUE(d1.addrs.empty()) << "doorbell leaked to an unrelated device";
}

TEST(MachineTest, DeliverDoorbellMissesOutsideEveryRegion) {
  MachineConfig config;
  Machine m(config);
  RecordingDoorbellDevice d1(0x10000, 0x1000);
  RecordingDoorbellDevice d2(0x20000, 0x1000);
  m.AttachDevice(&d1);
  m.AttachDevice(&d2);

  EXPECT_FALSE(m.DeliverDoorbell(0xf000, 10));   // below every region
  EXPECT_FALSE(m.DeliverDoorbell(0x11000, 20));  // gap between regions
  EXPECT_FALSE(m.DeliverDoorbell(0x30000, 30));  // above every region
  EXPECT_TRUE(d1.addrs.empty());
  EXPECT_TRUE(d2.addrs.empty());

  // And with no devices attached at all, nothing claims anything.
  Machine bare(config);
  EXPECT_FALSE(bare.DeliverDoorbell(0x10000, 40));
}

}  // namespace

// PROM monitor: network boot (RARP + TFTP analogs) and remote debugging
// (PEEK/POKE) over the simulated Ethernet (section 4).

#include <gtest/gtest.h>

#include "src/isa/assembler.h"
#include "src/prom/netboot.h"
#include "tests/test_harness.h"

namespace {

using ckbase::CkStatus;
using cktest::TestWorld;

// Two machines on one hub: a boot server node and a diskless client node.
class NetbootWorld {
 public:
  NetbootWorld() : server_app_("bootserver", 64), client_app_("diskless", 256) {
    uint32_t server_group = server_node_.srm().ReserveGroups(1).value();
    uint32_t client_group = client_node_.srm().ReserveGroups(1).value();
    server_eth_ = std::make_unique<cksim::EthernetDevice>(
        server_node_.machine().memory(), &server_node_.ck(),
        server_group * cksim::kPageGroupBytes, 4, 4, 1000, /*station=*/1);
    client_eth_ = std::make_unique<cksim::EthernetDevice>(
        client_node_.machine().memory(), &client_node_.ck(),
        client_group * cksim::kPageGroupBytes, 4, 4, 1000, /*station=*/2);
    hub_.Attach(server_eth_.get());
    hub_.Attach(client_eth_.get());
    server_node_.machine().AttachDevice(server_eth_.get());
    client_node_.machine().AttachDevice(client_eth_.get());

    server_node_.Launch(server_app_, 2);
    client_node_.Launch(client_app_, 2);
    server_node_.srm().GrantSharedGroups(server_app_, server_group, 1,
                                         ck::GroupAccess::kReadWrite);
    client_node_.srm().GrantSharedGroups(client_app_, client_group, 1,
                                         ck::GroupAccess::kReadWrite);

    ck::CkApi server_api(server_node_.ck(), server_app_.self(), server_node_.machine().cpu(0));
    ck::CkApi client_api(client_node_.ck(), client_app_.self(), client_node_.machine().cpu(0));
    server_space_ = server_app_.CreateSpace(server_api);
    client_space_ = client_app_.CreateSpace(client_api);

    server_ = std::make_unique<ckprom::BootServer>(
        ckprom::Station(server_app_, server_space_, *server_eth_, 0x00800000, 0x00900000));
    client_ = std::make_unique<ckprom::PromClient>(
        ckprom::Station(client_app_, client_space_, *client_eth_, 0x00800000, 0x00900000));

    uint32_t server_thread =
        server_app_.CreateNativeThread(server_api, server_space_, server_.get(), 20);
    uint32_t client_thread =
        client_app_.CreateNativeThread(client_api, client_space_, client_.get(), 20);
    // Station plumbing: map tx/rx and route rx signals to the protocol
    // threads.
    ckprom::Station(server_app_, server_space_, *server_eth_, 0x00800000, 0x00900000)
        .Attach(server_api, server_thread);
    ckprom::Station(client_app_, client_space_, *client_eth_, 0x00800000, 0x00900000)
        .Attach(client_api, client_thread);
  }

  bool RunUntil(const std::function<bool()>& done, uint64_t max_turns = 3000000) {
    for (uint64_t i = 0; i < max_turns; ++i) {
      if (done()) {
        return true;
      }
      server_node_.machine().Step();
      client_node_.machine().Step();
    }
    return done();
  }

  TestWorld server_node_, client_node_;
  ckapp::AppKernelBase server_app_, client_app_;
  std::unique_ptr<cksim::EthernetDevice> server_eth_, client_eth_;
  cksim::EthernetHub hub_;
  std::unique_ptr<ckprom::BootServer> server_;
  std::unique_ptr<ckprom::PromClient> client_;
  uint32_t server_space_ = 0, client_space_ = 0;
};

TEST(NetbootTest, ProgramSerializationRoundTrip) {
  ckisa::AssembleResult assembled = ckisa::Assemble(R"(
      addi a0, r0, 7
      halt
  )", 0x10000);
  ASSERT_TRUE(assembled.ok);
  std::vector<uint8_t> bytes = ckprom::SerializeProgram(assembled.program);
  ckisa::Program out;
  ASSERT_TRUE(ckprom::DeserializeProgram(bytes, &out));
  EXPECT_EQ(out.base, assembled.program.base);
  EXPECT_EQ(out.words, assembled.program.words);
  EXPECT_FALSE(ckprom::DeserializeProgram({1, 2, 3}, &out)) << "truncated image rejected";
}

TEST(NetbootTest, DiscoveryAndMultiBlockFetch) {
  NetbootWorld world;
  // An image spanning several TFTP blocks (~3 KiB of program).
  ckisa::Program big;
  big.base = 0x10000;
  for (uint32_t i = 0; i < 700; ++i) {
    big.words.push_back(ckisa::Encode(ckisa::Op::kAddi, 5, 5, 1));
  }
  big.words.push_back(ckisa::Encode(ckisa::Op::kHalt, 0, 0, 0));
  world.server_->AddImage("vmunix", ckprom::SerializeProgram(big));

  std::vector<uint8_t> fetched;
  ck::CkApi client_api(world.client_node_.ck(), world.client_app_.self(),
                       world.client_node_.machine().cpu(0));
  ASSERT_EQ(world.client_->Boot(client_api, "vmunix",
                                [&](const std::vector<uint8_t>& image, ck::CkApi&) {
                                  fetched = image;
                                }),
            CkStatus::kOk);

  ASSERT_TRUE(world.RunUntil([&] { return world.client_->boot_complete(); }));
  EXPECT_EQ(world.client_->discovered_server(), 1) << "RARP found the server's station";
  EXPECT_EQ(fetched, ckprom::SerializeProgram(big));
  EXPECT_EQ(world.server_->boots_served(), 1u);
  EXPECT_GE(world.server_->blocks_sent(), 6u) << "multi-block transfer";

  // And the fetched image actually runs on the diskless node.
  ckisa::Program program;
  ASSERT_TRUE(ckprom::DeserializeProgram(fetched, &program));
  world.client_app_.LoadProgramImage(world.client_space_, program, false);
  ckapp::GuestThreadParams params;
  params.space_index = world.client_space_;
  params.entry = program.base;
  uint32_t guest = world.client_app_.CreateGuestThread(client_api, params);
  ASSERT_TRUE(world.RunUntil([&] { return world.client_app_.thread(guest).finished; }));
  EXPECT_EQ(world.client_app_.thread(guest).saved.regs[5], 700u)
      << "the netbooted program executed all 700 increments";
}

TEST(NetbootTest, MissingImageReportsError) {
  NetbootWorld world;
  ck::CkApi client_api(world.client_node_.ck(), world.client_app_.self(),
                       world.client_node_.machine().cpu(0));
  bool completed = false;
  ASSERT_EQ(world.client_->Boot(client_api, "nonesuch",
                                [&](const std::vector<uint8_t>&, ck::CkApi&) {
                                  completed = true;
                                }),
            CkStatus::kOk);
  world.RunUntil([] { return false; }, 200000);
  EXPECT_FALSE(completed);
  EXPECT_FALSE(world.client_->boot_complete());
  EXPECT_EQ(world.server_->boots_served(), 0u);
}

TEST(NetbootTest, RemotePeekPoke) {
  NetbootWorld world;
  // The server node also runs a debug port into its own physical memory.
  ck::CkApi server_api(world.server_node_.ck(), world.server_app_.self(),
                       world.server_node_.machine().cpu(0));
  ckprom::DebugPort port(
      ckprom::Station(world.server_app_, world.server_space_, *world.server_eth_, 0x00a00000,
                      0x00900000),
      world.server_node_.machine().memory());
  // The debug port shares the server's rx ring; for this test route the rx
  // signals to the port instead of the boot server.
  uint32_t port_thread =
      world.server_app_.CreateNativeThread(server_api, world.server_space_, &port, 21);
  ckprom::Station(world.server_app_, world.server_space_, *world.server_eth_, 0x00a00000,
                  0x00900000)
      .Attach(server_api, port_thread);

  // Plant a value in the server's memory, then read it remotely.
  cksim::PhysAddr probe = world.server_app_.frames().Allocate();
  uint32_t planted = 0x5ca1ab1e;
  ASSERT_EQ(server_api.WritePhys(probe, &planted, 4), CkStatus::kOk);

  ck::CkApi client_api(world.client_node_.ck(), world.client_app_.self(),
                       world.client_node_.machine().cpu(0));
  uint32_t observed = 0;
  ASSERT_EQ(world.client_->Peek(client_api, /*server=*/1, probe,
                                [&](uint32_t value) { observed = value; }),
            CkStatus::kOk);
  ASSERT_TRUE(world.RunUntil([&] { return observed != 0; }));
  EXPECT_EQ(observed, planted);
  EXPECT_EQ(port.peeks(), 1u);

  // Poke a new value and verify it landed.
  ASSERT_EQ(world.client_->Poke(client_api, 1, probe, 0xfeed5eed), CkStatus::kOk);
  ASSERT_TRUE(world.RunUntil([&] { return port.pokes() >= 1; }));
  uint32_t now = 0;
  ASSERT_EQ(server_api.ReadPhys(probe, &now, 4), CkStatus::kOk);
  EXPECT_EQ(now, 0xfeed5eedu);
}

}  // namespace

// Unit tests for src/base: intrusive lists, fixed pools, version locks, rng,
// iterable bitmaps.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/base/bitmap.h"
#include "src/base/fixed_pool.h"
#include "src/base/intrusive_list.h"
#include "src/base/rng.h"
#include "src/base/status.h"
#include "src/base/version_lock.h"

namespace {

using ckbase::FixedPool;
using ckbase::IntrusiveList;
using ckbase::ListNode;
using ckbase::PoolId;

struct Item {
  ListNode pool_node;
  ListNode queue_node;
  int value = 0;
};

TEST(IntrusiveListTest, PushPopOrder) {
  IntrusiveList<Item, &Item::queue_node> list;
  Item a, b, c;
  a.value = 1;
  b.value = 2;
  c.value = 3;
  EXPECT_TRUE(list.empty());
  list.PushBack(&a);
  list.PushBack(&b);
  list.PushFront(&c);
  EXPECT_EQ(list.Size(), 3u);
  EXPECT_EQ(list.PopFront()->value, 3);
  EXPECT_EQ(list.PopFront()->value, 1);
  EXPECT_EQ(list.PopFront()->value, 2);
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.PopFront(), nullptr);
}

TEST(IntrusiveListTest, RemoveMiddleAndIdempotentUnlink) {
  IntrusiveList<Item, &Item::queue_node> list;
  Item a, b, c;
  list.PushBack(&a);
  list.PushBack(&b);
  list.PushBack(&c);
  list.Remove(&b);
  EXPECT_EQ(list.Size(), 2u);
  b.queue_node.Unlink();  // already unlinked; must be a no-op
  EXPECT_EQ(list.Size(), 2u);
  EXPECT_EQ(list.PopFront(), &a);
  EXPECT_EQ(list.PopFront(), &c);
}

TEST(IntrusiveListTest, IterationVisitsAllInOrder) {
  IntrusiveList<Item, &Item::queue_node> list;
  Item items[5];
  for (int i = 0; i < 5; ++i) {
    items[i].value = i;
    list.PushBack(&items[i]);
  }
  int expect = 0;
  for (Item* item : list) {
    EXPECT_EQ(item->value, expect++);
  }
  EXPECT_EQ(expect, 5);
}

TEST(IntrusiveListTest, MembershipAcrossTwoLists) {
  IntrusiveList<Item, &Item::pool_node> pool_list;
  IntrusiveList<Item, &Item::queue_node> queue_list;
  Item a;
  pool_list.PushBack(&a);
  queue_list.PushBack(&a);
  EXPECT_TRUE(a.pool_node.linked());
  EXPECT_TRUE(a.queue_node.linked());
  queue_list.Remove(&a);
  EXPECT_TRUE(a.pool_node.linked());
  EXPECT_FALSE(a.queue_node.linked());
}

TEST(FixedPoolTest, AllocateUntilFull) {
  FixedPool<Item> pool(3);
  EXPECT_EQ(pool.capacity(), 3u);
  Item* a = pool.Allocate();
  Item* b = pool.Allocate();
  Item* c = pool.Allocate();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_NE(c, nullptr);
  EXPECT_TRUE(pool.full());
  EXPECT_EQ(pool.Allocate(), nullptr);
  pool.Release(b);
  EXPECT_FALSE(pool.full());
  EXPECT_EQ(pool.Allocate(), b);  // free list reuses the slot
}

TEST(FixedPoolTest, GenerationInvalidatesOldIds) {
  FixedPool<Item> pool(1);
  Item* a = pool.Allocate();
  PoolId id = pool.IdOf(a);
  EXPECT_EQ(pool.Lookup(id), a);
  pool.Release(a);
  EXPECT_EQ(pool.Lookup(id), nullptr) << "stale id must not resolve";
  Item* b = pool.Allocate();
  EXPECT_EQ(b, a) << "slot is reused";
  EXPECT_EQ(pool.Lookup(id), nullptr) << "old id still stale after reuse";
  EXPECT_NE(pool.IdOf(b).generation, id.generation);
}

TEST(FixedPoolTest, PackedRoundTrip) {
  PoolId id{42, 17};
  EXPECT_EQ(PoolId::FromPacked(id.Packed()), id);
  EXPECT_FALSE(PoolId{}.valid());
  EXPECT_TRUE(id.valid());
}

TEST(FixedPoolTest, IsAllocatedTracksLiveness) {
  FixedPool<Item> pool(2);
  Item* a = pool.Allocate();
  uint32_t slot = pool.SlotOf(a);
  EXPECT_TRUE(pool.IsAllocated(slot));
  pool.Release(a);
  EXPECT_FALSE(pool.IsAllocated(slot));
}

TEST(VersionLockTest, ReadValidateDetectsWriters) {
  ckbase::VersionLock lock;
  uint64_t v = lock.ReadBegin();
  EXPECT_TRUE(lock.ReadValidate(v));
  {
    ckbase::VersionWriteScope writer(lock);
    EXPECT_FALSE(lock.ReadValidate(v)) << "mid-write must invalidate readers";
  }
  EXPECT_FALSE(lock.ReadValidate(v)) << "completed write must invalidate readers";
  uint64_t v2 = lock.ReadBegin();
  EXPECT_TRUE(lock.ReadValidate(v2));
  EXPECT_EQ(lock.mutation_count(), 1u);
}

TEST(RngTest, DeterministicAndBounded) {
  ckbase::Rng a(123), b(123), c(124);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(a.Below(10), 10u);
    uint64_t r = a.Range(5, 9);
    EXPECT_GE(r, 5u);
    EXPECT_LE(r, 9u);
    double d = a.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ChanceIsRoughlyCalibrated) {
  ckbase::Rng rng(7);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    hits += rng.Chance(1, 4) ? 1 : 0;
  }
  EXPECT_GT(hits, 2200);
  EXPECT_LT(hits, 2800);
}

TEST(IterableBitmapTest, DenseAssignTestCount) {
  ckbase::IterableBitmap bitmap(16);
  EXPECT_TRUE(bitmap.empty());
  bitmap.Assign(3, true);
  bitmap.Assign(7, true);
  bitmap.Assign(3, true);  // idempotent
  EXPECT_EQ(bitmap.count(), 2u);
  EXPECT_TRUE(bitmap.Test(3));
  EXPECT_FALSE(bitmap.Test(4));
  bitmap.Assign(3, false);
  bitmap.Assign(3, false);  // idempotent
  EXPECT_EQ(bitmap.count(), 1u);
  EXPECT_FALSE(bitmap.Test(3));
}

TEST(IterableBitmapTest, SparseOverflowAboveDenseLimit) {
  ckbase::IterableBitmap bitmap(8);
  bitmap.Assign(2, true);
  bitmap.Assign(100, true);
  bitmap.Assign(50, true);
  EXPECT_EQ(bitmap.count(), 3u);
  EXPECT_TRUE(bitmap.Test(100));
  EXPECT_FALSE(bitmap.Test(99));
  // The dense probe region is unaffected by sparse members.
  EXPECT_EQ(bitmap.dense_limit(), 8u);
  EXPECT_EQ(bitmap.dense_data()[2], 1);
  bitmap.Assign(100, false);
  EXPECT_FALSE(bitmap.Test(100));
  EXPECT_EQ(bitmap.count(), 2u);
}

TEST(IterableBitmapTest, ForEachAscendingAcrossBothRegions) {
  ckbase::IterableBitmap bitmap(8);
  for (uint32_t i : {7u, 200u, 1u, 30u}) {
    bitmap.Assign(i, true);
  }
  std::vector<uint32_t> seen;
  bitmap.ForEach([&](uint32_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<uint32_t>{1u, 7u, 30u, 200u}));
}

TEST(IterableBitmapTest, DenseStorageIsStable) {
  // The fast-path interpreter captures dense_data() once; mutations
  // (including sparse inserts) must never move it.
  ckbase::IterableBitmap bitmap(32);
  const uint8_t* data = bitmap.dense_data();
  for (uint32_t i = 0; i < 2000; ++i) {
    bitmap.Assign(i % 64, (i % 3) != 0);
  }
  EXPECT_EQ(bitmap.dense_data(), data);
}

TEST(StatusTest, NamesAndResult) {
  EXPECT_EQ(ckbase::CkStatusName(ckbase::CkStatus::kOk), "OK");
  EXPECT_EQ(ckbase::CkStatusName(ckbase::CkStatus::kStale), "STALE");
  ckbase::Result<int> ok(7);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 7);
  ckbase::Result<int> bad(ckbase::CkStatus::kDenied);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status(), ckbase::CkStatus::kDenied);
}

}  // namespace

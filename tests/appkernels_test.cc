// Application-specialized kernels: MP3D (locality), the database kernel
// (application-controlled replacement) and the real-time kernel (locking).

#include <gtest/gtest.h>

#include "src/db/db_kernel.h"
#include "src/mp3d/mp3d_kernel.h"
#include "src/rt/rt_kernel.h"
#include "tests/test_harness.h"

namespace {

using cktest::TestWorld;

TEST(Mp3dTest, SimulationConservesParticles) {
  TestWorld world;
  ckmp3d::Mp3dConfig config;
  config.particles = 512;
  config.cells = 16;
  config.workers = 2;
  auto kernel = std::make_unique<ckmp3d::Mp3dKernel>(world.ck(), config);
  world.Launch(*kernel, /*page_groups=*/2);
  ck::CkApi api(world.ck(), kernel->self(), world.machine().cpu(0));
  kernel->Setup(api);

  kernel->RunSteps(3);
  EXPECT_EQ(kernel->steps_completed(), 3u);
  EXPECT_EQ(kernel->particle_updates(), 3u * 512u) << "every particle updated every step";
  EXPECT_GT(kernel->moves(), 0u) << "particles must migrate between cells";
}

TEST(Mp3dTest, LocalityModeAlsoCorrect) {
  TestWorld world;
  ckmp3d::Mp3dConfig config;
  config.particles = 512;
  config.cells = 16;
  config.workers = 2;
  config.placement = ckmp3d::Placement::kLocalityAware;
  auto kernel = std::make_unique<ckmp3d::Mp3dKernel>(world.ck(), config);
  world.Launch(*kernel, 2);
  ck::CkApi api(world.ck(), kernel->self(), world.machine().cpu(0));
  kernel->Setup(api);
  kernel->RunSteps(3);
  EXPECT_EQ(kernel->steps_completed(), 3u);
  EXPECT_EQ(kernel->particle_updates(), 3u * 512u);
}

TEST(Mp3dTest, ScatteredTouchesMorePagesPerSweep) {
  // The section 5.2 effect in miniature: after the particles mix, a scattered
  // sweep touches far more distinct pages than a locality-enforced sweep.
  auto run = [](ckmp3d::Placement placement) {
    TestWorld world;
    ckmp3d::Mp3dConfig config;
    config.particles = 16384;  // 128 pages of particles: exceeds the 64-entry TLB
    config.cells = 64;
    config.workers = 1;
    config.placement = placement;
    auto kernel = std::make_unique<ckmp3d::Mp3dKernel>(world.ck(), config);
    world.Launch(*kernel, 2);
    ck::CkApi api(world.ck(), kernel->self(), world.machine().cpu(0));
    kernel->Setup(api);
    // Let the particles mix, then measure TLB misses over later steps.
    kernel->RunSteps(3);
    world.machine().cpu(0).mmu().tlb().ResetStats();
    uint64_t misses_before = 0;
    for (uint32_t c = 0; c < world.machine().cpu_count(); ++c) {
      world.machine().cpu(c).mmu().tlb().ResetStats();
    }
    kernel->RunSteps(3);
    uint64_t misses = misses_before;
    for (uint32_t c = 0; c < world.machine().cpu_count(); ++c) {
      misses += world.machine().cpu(c).mmu().tlb().misses();
    }
    return misses;
  };

  uint64_t scattered = run(ckmp3d::Placement::kScattered);
  uint64_t local = run(ckmp3d::Placement::kLocalityAware);
  EXPECT_GT(scattered, local) << "locality enforcement must reduce TLB misses";
}

TEST(DbTest, ScanComputesCorrectSum) {
  TestWorld world;
  ckdb::DbConfig config;
  config.table_pages = 16;
  config.buffer_pages = 32;  // everything fits
  auto db = std::make_unique<ckdb::DbKernel>(world.ck(), config);
  world.Launch(*db, 2);
  ck::CkApi api(world.ck(), db->self(), world.machine().cpu(0));
  db->Setup(api);

  uint64_t rows = 16ull * 64;
  uint64_t expect = rows * (rows - 1) / 2;  // sum of 0..rows-1
  EXPECT_EQ(db->RunScan(), expect);
  EXPECT_EQ(db->query_stats().rows_read, rows);
}

TEST(DbTest, RepeatScanWithFittingBufferAllHits) {
  TestWorld world;
  ckdb::DbConfig config;
  config.table_pages = 16;
  config.buffer_pages = 32;
  auto db = std::make_unique<ckdb::DbKernel>(world.ck(), config);
  world.Launch(*db, 2);
  ck::CkApi api(world.ck(), db->self(), world.machine().cpu(0));
  db->Setup(api);
  db->RunScan();
  uint64_t misses_after_first = db->query_stats().buffer_misses;
  db->RunScan();
  EXPECT_EQ(db->query_stats().buffer_misses, misses_after_first)
      << "second scan of a fitting table takes no page-ins";
}

TEST(DbTest, MruBeatsLruForRepeatedScans) {
  // Classic sequential-flooding result: with buffer < table, LRU evicts each
  // page just before the next scan needs it (≈0 hits), MRU retains a stable
  // prefix. The application kernel owns the policy, so it can just fix this
  // (sections 1 and 3).
  auto scan_hits = [](ckdb::Replacement policy) {
    TestWorld world;
    ckdb::DbConfig config;
    config.table_pages = 48;
    config.buffer_pages = 32;
    config.policy = policy;
    auto db = std::make_unique<ckdb::DbKernel>(world.ck(), config);
    world.Launch(*db, 2);
    ck::CkApi api(world.ck(), db->self(), world.machine().cpu(0));
    db->Setup(api);
    // Buffer pool limit: constrain the frame pool to buffer_pages frames.
    // (The SRM granted 2 groups = 256 frames; trim to the experiment size.)
    while (db->frames().free_count() > config.buffer_pages) {
      db->frames().Allocate();  // park surplus frames
    }
    db->RunScan();  // cold
    uint64_t misses_cold = db->query_stats().buffer_misses;
    db->RunScan();
    db->RunScan();
    uint64_t misses_warm = db->query_stats().buffer_misses - misses_cold;
    return std::make_pair(misses_warm, misses_cold);
  };

  auto [lru_warm, lru_cold] = scan_hits(ckdb::Replacement::kLru);
  auto [mru_warm, mru_cold] = scan_hits(ckdb::Replacement::kMru);
  EXPECT_EQ(lru_cold, mru_cold) << "cold scans identical";
  EXPECT_LT(mru_warm, lru_warm) << "MRU must out-hit LRU on repeated scans";
  // LRU on a 48-page table with a 32-page pool re-misses every page.
  EXPECT_GE(lru_warm, 2u * 40u);
}

TEST(DbTest, PointLookupsWork) {
  TestWorld world;
  ckdb::DbConfig config;
  config.table_pages = 16;
  auto db = std::make_unique<ckdb::DbKernel>(world.ck(), config);
  world.Launch(*db, 2);
  ck::CkApi api(world.ck(), db->self(), world.machine().cpu(0));
  db->Setup(api);
  db->RunPointLookups(100);
  EXPECT_EQ(db->query_stats().rows_read, 100u);
  EXPECT_EQ(db->query_stats().queries, 1u);
}

TEST(RtTest, PeriodicTasksMeetDeadlinesUnlocked) {
  // On an otherwise idle machine even unlocked tasks meet deadlines.
  TestWorld world;
  ckrt::RtConfig config;
  config.lock_resources = false;
  auto rt = std::make_unique<ckrt::RtKernel>(world.ck(), config);
  world.Launch(*rt, 2);
  ck::CkApi api(world.ck(), rt->self(), world.machine().cpu(0));
  rt->Setup(api, {ckrt::RtTaskConfig{}});
  world.machine().RunFor(50 * ckrt::RtTaskConfig{}.period);
  const ckrt::RtTaskStats& stats = rt->task_stats(0);
  EXPECT_GE(stats.activations, 30u);
  // The first activation cold-faults the working set; later ones are clean.
  EXPECT_LE(stats.deadline_misses, 2u);
}

TEST(RtTest, LockedTaskSurvivesMappingPressure) {
  // A batch kernel thrashes the (small) mapping cache; the locked RT task's
  // working set must stay loaded and keep meeting deadlines.
  cktest::WorldOptions options;
  options.ck.mapping_slots = 64;  // tiny mapping cache: heavy interference
  TestWorld world(options);

  ckrt::RtConfig rt_config;
  rt_config.lock_resources = true;
  auto rt = std::make_unique<ckrt::RtKernel>(world.ck(), rt_config);
  {
    cksrm::LaunchParams params;
    params.page_groups = 2;
    params.max_priority = 30;
    params.lock_limits[static_cast<int>(ck::ObjectType::kMapping)] = 32;
    params.lock_limits[static_cast<int>(ck::ObjectType::kThread)] = 8;
    params.lock_limits[static_cast<int>(ck::ObjectType::kSpace)] = 2;
    params.locked_kernel_object = true;  // lock chains end at the kernel object
    ASSERT_TRUE(world.srm().Launch(*rt, params).ok());
  }
  ck::CkApi rt_api(world.ck(), rt->self(), world.machine().cpu(0));
  ckrt::RtTaskConfig task;
  task.working_set_pages = 8;
  task.cpu = 0;
  rt->Setup(rt_api, {task});

  // Batch kernel: touches hundreds of pages round-robin on another CPU.
  class Thrasher : public ck::NativeProgram {
   public:
    ck::NativeOutcome Step(ck::NativeCtx& ctx) override {
      for (int i = 0; i < 16; ++i) {
        ctx.LoadWord(0x70000000 + (cursor_ % 300) * cksim::kPageSize);
        ++cursor_;
      }
      ck::NativeOutcome outcome;
      outcome.action = ck::NativeOutcome::Action::kYield;
      return outcome;
    }
    uint32_t cursor_ = 0;
  };
  ckapp::AppKernelBase batch("batch", 64);
  cksrm::LaunchParams batch_params;
  batch_params.page_groups = 4;
  ASSERT_TRUE(world.srm().Launch(batch, batch_params).ok());
  ck::CkApi batch_api(world.ck(), batch.self(), world.machine().cpu(0));
  uint32_t batch_space = batch.CreateSpace(batch_api);
  batch.DefineZeroRegion(batch_space, 0x70000000, 300, /*writable=*/true);
  Thrasher thrasher;
  batch.CreateNativeThread(batch_api, batch_space, &thrasher, 10, false, /*cpu=*/1);

  world.machine().RunFor(60 * task.period);
  const ckrt::RtTaskStats& stats = rt->task_stats(0);
  EXPECT_GE(stats.activations, 40u);
  // The mapping cache is under heavy churn; the locked chain protects the
  // task's activation latency.
  EXPECT_EQ(stats.deadline_misses, 0u)
      << "locked working set must not take mapping-reload latency";
  EXPECT_GT(world.ck().stats().reclamations[static_cast<int>(ck::ObjectType::kMapping)], 100u)
      << "the batch kernel must actually thrash the mapping cache";
}

TEST(SrmTest, SwapOutAndSwapInAppKernel) {
  TestWorld world;
  ckapp::AppKernelBase app("swappee", 64);
  world.Launch(app, 2);
  ck::CkApi api(world.ck(), app.self(), world.machine().cpu(0));
  uint32_t space = app.CreateSpace(api);
  app.DefineZeroRegion(space, 0x40000000, 4, true);
  ASSERT_EQ(app.EnsureMappingLoaded(api, space, 0x40000000), ckbase::CkStatus::kOk);

  // Swap the whole kernel out: its kernel object and everything under it.
  ASSERT_EQ(world.srm().SwapOut(app), ckbase::CkStatus::kOk);
  EXPECT_TRUE(world.srm().IsSwappedOut(app));
  EXPECT_FALSE(world.ck().IsKernelLoaded(app.self()));

  // Swap back in: grants reapplied, new kernel id attached, records reload.
  ASSERT_EQ(world.srm().SwapIn(app), ckbase::CkStatus::kOk);
  EXPECT_FALSE(world.srm().IsSwappedOut(app));
  EXPECT_TRUE(world.ck().IsKernelLoaded(app.self()));
  ck::CkApi api2(world.ck(), app.self(), world.machine().cpu(0));
  EXPECT_EQ(app.EnsureMappingLoaded(api2, space, 0x40000000), ckbase::CkStatus::kOk);
}

TEST(SrmTest, GroupAccountingAndExhaustion) {
  cktest::WorldOptions options;
  options.memory_bytes = 4u << 20;  // 8 groups minus the page-table arena
  TestWorld world(options);
  uint32_t available = world.srm().free_groups();
  ASSERT_GT(available, 0u);

  ckapp::AppKernelBase a("a", 16), b("b", 16);
  cksrm::LaunchParams params;
  params.page_groups = available;  // take everything
  ASSERT_TRUE(world.srm().Launch(a, params).ok());
  EXPECT_EQ(world.srm().free_groups(), 0u);

  cksrm::LaunchParams params_b;
  params_b.page_groups = 1;
  EXPECT_FALSE(world.srm().Launch(b, params_b).ok()) << "no groups left";
}

TEST(SrmTest, IoQuotaDisconnects) {
  TestWorld world;
  ckapp::AppKernelBase app("netty", 16);
  world.Launch(app, 1);
  world.srm().SetIoQuota(app, 100);
  EXPECT_TRUE(world.srm().RecordIo(app, 60));
  EXPECT_FALSE(world.srm().RecordIo(app, 60)) << "over quota: disconnected";
  EXPECT_TRUE(world.srm().IsIoDisconnected(app));
  world.srm().ResetIoWindow();
  EXPECT_FALSE(world.srm().IsIoDisconnected(app));
}

}  // namespace

// Property-based tests: random load/unload/lock/signal storms must preserve
// the Figure 6 dependency invariants after every operation, across seeds
// (TEST_P / INSTANTIATE_TEST_SUITE_P).

#include <gtest/gtest.h>

#include <map>
#include <tuple>
#include <vector>

#include "src/base/rng.h"
#include "src/ck/cache_kernel.h"
#include "src/sim/machine.h"

namespace {

using ck::CacheKernel;
using ck::CacheKernelConfig;
using ck::CkApi;
using ck::KernelId;
using ck::MappingSpec;
using ck::SpaceId;
using ck::ThreadId;
using ck::ThreadSpec;
using ckbase::CkStatus;

// Writeback sink that keeps its own model of what should be loaded.
class ModelKernel : public ck::AppKernel {
 public:
  ck::HandlerAction HandleFault(const ck::FaultForward&, CkApi&) override {
    return ck::HandlerAction::kTerminate;
  }
  ck::TrapAction HandleTrap(const ck::TrapForward&, CkApi&) override {
    ck::TrapAction action;
    action.action = ck::HandlerAction::kTerminate;
    return action;
  }
  void OnMappingWriteback(const ck::MappingWriteback& record, CkApi&) override {
    mapping_writebacks++;
    last_mapping = record;
  }
  void OnThreadWriteback(const ck::ThreadWriteback& record, CkApi&) override {
    thread_writebacks++;
    unloaded_threads.push_back(record.cookie);
  }
  void OnSpaceWriteback(const ck::SpaceWriteback& record, CkApi&) override {
    space_writebacks++;
    unloaded_spaces.push_back(record.cookie);
  }

  uint64_t mapping_writebacks = 0;
  uint64_t thread_writebacks = 0;
  uint64_t space_writebacks = 0;
  ck::MappingWriteback last_mapping;
  std::vector<uint64_t> unloaded_threads;
  std::vector<uint64_t> unloaded_spaces;
};

// Storms run under every replacement policy: victim choice differs, but the
// Figure 6 invariants and the load/unload conservation identity may not.
class StormTest : public ::testing::TestWithParam<std::tuple<uint64_t, ck::ReplacementPolicy>> {};

TEST_P(StormTest, RandomObjectChurnPreservesInvariants) {
  cksim::MachineConfig mc;
  mc.memory_bytes = 8u << 20;
  cksim::Machine machine(mc);
  // Small pools so reclamation and cascades fire constantly.
  CacheKernelConfig config;
  config.space_slots = 8;
  config.thread_slots = 16;
  config.mapping_slots = 96;
  for (uint32_t type = 0; type < ck::kObjectTypeCount; ++type) {
    config.replacement[type] = std::get<1>(GetParam());
  }
  CacheKernel ck(machine, config);
  ModelKernel model;
  KernelId kid = ck.BootFirstKernel(&model, 0);
  CkApi api(ck, kid, machine.cpu(0));

  ckbase::Rng rng(std::get<0>(GetParam()));

  std::vector<SpaceId> spaces;
  std::vector<ThreadId> threads;
  std::vector<KernelId> sub_kernels;  // empty kernels churned alongside
  struct LiveMapping {
    SpaceId space;
    cksim::VirtAddr vaddr;
  };
  std::vector<LiveMapping> mappings;

  for (int op = 0; op < 3000; ++op) {
    switch (rng.Below(12)) {
      case 0: {  // load space
        ckbase::Result<SpaceId> s = api.LoadSpace(op, rng.Chance(1, 8));
        if (s.ok()) {
          spaces.push_back(s.value());
        }
        break;
      }
      case 1: {  // unload random space (may be stale: fine)
        if (!spaces.empty()) {
          size_t i = rng.Below(spaces.size());
          api.UnloadSpace(spaces[i]);
          spaces.erase(spaces.begin() + static_cast<long>(i));
        }
        break;
      }
      case 2:
      case 3: {  // load thread into random space
        if (!spaces.empty()) {
          ThreadSpec spec;
          spec.space = spaces[rng.Below(spaces.size())];
          spec.cookie = static_cast<uint64_t>(op);
          spec.priority = static_cast<uint8_t>(rng.Below(31));
          spec.start_blocked = rng.Chance(1, 2);
          spec.locked = rng.Chance(1, 16);
          ckbase::Result<ThreadId> t = api.LoadThread(spec);
          if (t.ok()) {
            threads.push_back(t.value());
          } else {
            EXPECT_TRUE(t.status() == CkStatus::kStale || t.status() == CkStatus::kDenied ||
                        t.status() == CkStatus::kNoResources)
                << ckbase::CkStatusName(t.status());
          }
        }
        break;
      }
      case 4: {  // unload random thread
        if (!threads.empty()) {
          size_t i = rng.Below(threads.size());
          api.UnloadThread(threads[i]);
          threads.erase(threads.begin() + static_cast<long>(i));
        }
        break;
      }
      case 5:
      case 6:
      case 7: {  // load mapping (sometimes with a signal thread / cow)
        if (!spaces.empty()) {
          MappingSpec spec;
          spec.space = spaces[rng.Below(spaces.size())];
          spec.vaddr = static_cast<uint32_t>(rng.Below(512)) * cksim::kPageSize;
          spec.paddr = 0x100000 + static_cast<uint32_t>(rng.Below(256)) * cksim::kPageSize;
          spec.flags.writable = rng.Chance(1, 2);
          spec.flags.message = rng.Chance(1, 4);
          spec.locked = rng.Chance(1, 16);
          if (rng.Chance(1, 4) && !threads.empty()) {
            spec.signal_thread = threads[rng.Below(threads.size())];
          }
          if (rng.Chance(1, 8)) {
            spec.cow_source = 0x100000 + static_cast<uint32_t>(rng.Below(256)) * cksim::kPageSize;
            spec.flags.copy_on_write = true;
            spec.flags.writable = false;
          }
          CkStatus status = api.LoadMapping(spec);
          if (status == CkStatus::kOk) {
            mappings.push_back(LiveMapping{spec.space, spec.vaddr});
          }
        }
        break;
      }
      case 8: {  // unload random mapping
        if (!mappings.empty()) {
          size_t i = rng.Below(mappings.size());
          api.UnloadMapping(mappings[i].space, mappings[i].vaddr);
          mappings.erase(mappings.begin() + static_cast<long>(i));
        }
        break;
      }
      case 9: {  // lock/unlock a random mapping
        if (!mappings.empty()) {
          size_t i = rng.Below(mappings.size());
          api.LockMapping(mappings[i].space, mappings[i].vaddr, rng.Chance(1, 2));
        }
        break;
      }
      case 10: {  // load a sub-kernel (only the first kernel may)
        ckbase::Result<KernelId> k = api.LoadKernel(&model, 1000 + op, rng.Chance(1, 8));
        if (k.ok()) {
          sub_kernels.push_back(k.value());
        }
        break;
      }
      case 11: {  // unload a random sub-kernel
        if (!sub_kernels.empty()) {
          size_t i = rng.Below(sub_kernels.size());
          api.UnloadKernel(sub_kernels[i]);
          sub_kernels.erase(sub_kernels.begin() + static_cast<long>(i));
        }
        break;
      }
    }

    if (op % 50 == 0) {
      std::vector<std::string> violations = ck.ValidateInvariants();
      ASSERT_TRUE(violations.empty())
          << "op " << op << ": " << violations.size() << " violations, first: " << violations[0];
    }
  }

  std::vector<std::string> violations = ck.ValidateInvariants();
  EXPECT_TRUE(violations.empty()) << violations.size() << " violations, first: " << violations[0];
  // The storm must actually have exercised reclamation.
  EXPECT_GT(ck.stats().reclamations[static_cast<int>(ck::ObjectType::kMapping)] +
                ck.stats().reclamations[static_cast<int>(ck::ObjectType::kThread)] +
                ck.stats().reclamations[static_cast<int>(ck::ObjectType::kSpace)],
            0u);
  // Conservation: every load ends in exactly one of {still loaded, explicit
  // unload, writeback} -- no unload is double-counted or dropped.
  for (uint32_t type = 0; type < ck::kObjectTypeCount; ++type) {
    EXPECT_EQ(ck.stats().loads[type],
              ck.stats().explicit_unloads[type] + ck.stats().writebacks[type] +
                  ck.loaded_count(static_cast<ck::ObjectType>(type)))
        << "conservation violated for object type " << type;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, StormTest,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u, 55u, 89u),
                       ::testing::Values(ck::ReplacementPolicy::kClock,
                                         ck::ReplacementPolicy::kFifo,
                                         ck::ReplacementPolicy::kSecondChance)));

// Same churn with tiered physical memory squeezing the machine: every frame
// transition must keep the tier ledger identities (docs/TIERING.md) and the
// per-tier frame counts that ValidateInvariants cross-checks.
class TieredStormTest : public ::testing::TestWithParam<std::tuple<uint64_t, bool>> {};

TEST_P(TieredStormTest, TierLedgerBalancesUnderRandomChurn) {
  cksim::MachineConfig mc;
  mc.memory_bytes = 8u << 20;
  cksim::Machine machine(mc);
  CacheKernelConfig config;
  config.space_slots = 8;
  config.thread_slots = 16;
  config.mapping_slots = 96;
  // A DRAM budget far below the mapping working set so admissions displace
  // resident frames constantly, in both pressure modes.
  config.tier_dram_frames = 24;
  config.tier_demote = std::get<1>(GetParam());
  CacheKernel ck(machine, config);
  ModelKernel model;
  KernelId kid = ck.BootFirstKernel(&model, 0);
  CkApi api(ck, kid, machine.cpu(0));

  ckbase::Rng rng(std::get<0>(GetParam()));
  std::vector<SpaceId> spaces;
  struct LiveMapping {
    SpaceId space;
    cksim::VirtAddr vaddr;
  };
  std::vector<LiveMapping> mappings;

  auto check_ledger = [&](int op) {
    const ck::CkStats& s = ck.stats();
    const cksim::PhysicalMemory& mem = machine.memory();
    uint64_t dram = mem.tier_count(cksim::MemTier::kDram);
    uint64_t slow = mem.tier_count(cksim::MemTier::kSlow);
    // Every frame that ever entered DRAM is still there or left through
    // exactly one exit; every slow-tier entry is a demotion.
    EXPECT_EQ(s.tier_admissions + s.tier_promotions,
              s.tier_demotions + s.tier_evictions + s.tier_release_dram + dram)
        << "DRAM ledger out of balance at op " << op;
    EXPECT_EQ(s.tier_demotions, s.tier_promotions + s.tier_release_slow + slow)
        << "slow-tier ledger out of balance at op " << op;
  };

  for (int op = 0; op < 3000; ++op) {
    switch (rng.Below(8)) {
      case 0: {  // load space
        ckbase::Result<SpaceId> s = api.LoadSpace(op, false);
        if (s.ok()) {
          spaces.push_back(s.value());
        }
        break;
      }
      case 1: {  // unload random space (cascades its mappings)
        if (!spaces.empty()) {
          size_t i = rng.Below(spaces.size());
          api.UnloadSpace(spaces[i]);
          spaces.erase(spaces.begin() + static_cast<long>(i));
        }
        break;
      }
      case 2:
      case 3:
      case 4:
      case 5: {  // load mapping: the tier admission path
        if (!spaces.empty()) {
          MappingSpec spec;
          spec.space = spaces[rng.Below(spaces.size())];
          spec.vaddr = static_cast<uint32_t>(rng.Below(512)) * cksim::kPageSize;
          spec.paddr = 0x100000 + static_cast<uint32_t>(rng.Below(128)) * cksim::kPageSize;
          spec.flags.writable = rng.Chance(1, 2);
          spec.locked = rng.Chance(1, 16);
          if (api.LoadMapping(spec) == CkStatus::kOk) {
            mappings.push_back(LiveMapping{spec.space, spec.vaddr});
          }
        }
        break;
      }
      case 6: {  // unload random mapping
        if (!mappings.empty()) {
          size_t i = rng.Below(mappings.size());
          api.UnloadMapping(mappings[i].space, mappings[i].vaddr);
          mappings.erase(mappings.begin() + static_cast<long>(i));
        }
        break;
      }
      case 7: {  // lock/unlock a random mapping (pins its frame in DRAM)
        if (!mappings.empty()) {
          size_t i = rng.Below(mappings.size());
          api.LockMapping(mappings[i].space, mappings[i].vaddr, rng.Chance(1, 2));
        }
        break;
      }
    }

    if (op % 50 == 0) {
      check_ledger(op);
      std::vector<std::string> violations = ck.ValidateInvariants();
      ASSERT_TRUE(violations.empty())
          << "op " << op << ": " << violations.size() << " violations, first: " << violations[0];
    }
  }

  check_ledger(3000);
  std::vector<std::string> violations = ck.ValidateInvariants();
  EXPECT_TRUE(violations.empty()) << violations.size() << " violations, first: " << violations[0];
  // The squeeze must have actually displaced DRAM residents, in the mode
  // configured: demotions under demote pressure, full evictions otherwise.
  if (std::get<1>(GetParam())) {
    EXPECT_GT(ck.stats().tier_demotions, 0u);
  } else {
    EXPECT_GT(ck.stats().tier_evictions, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(SeedsAndModes, TieredStormTest,
                         ::testing::Combine(::testing::Values(1u, 2u, 3u, 5u, 8u),
                                            ::testing::Bool()));

class CapacitySweepTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(CapacitySweepTest, LoadNeverHardFailsWhileUnlockedObjectsExist) {
  // "An application never encounters the 'hard' error of the kernel running
  // out of thread or address space descriptors ... The Cache Kernel always
  // allows more objects to be loaded, writing back other objects to make
  // space" (section 7).
  uint32_t capacity = GetParam();
  cksim::MachineConfig mc;
  mc.memory_bytes = 4u << 20;
  cksim::Machine machine(mc);
  CacheKernelConfig config;
  config.thread_slots = capacity;
  config.space_slots = std::max(4u, capacity / 4);
  CacheKernel ck(machine, config);
  ModelKernel model;
  KernelId kid = ck.BootFirstKernel(&model, 0);
  CkApi api(ck, kid, machine.cpu(0));

  ckbase::Result<SpaceId> space = api.LoadSpace(0, false);
  ASSERT_TRUE(space.ok());
  SpaceId sid = space.value();

  // Load 4x the capacity; every load must succeed (older ones written back).
  for (uint32_t i = 0; i < capacity * 4; ++i) {
    ThreadSpec spec;
    spec.space = sid;
    spec.cookie = i;
    spec.start_blocked = true;
    ckbase::Result<ThreadId> t = api.LoadThread(spec);
    if (t.status() == CkStatus::kStale) {
      // The space itself was reclaimed to make room; reload and retry --
      // exactly the documented application-kernel protocol.
      space = api.LoadSpace(0, false);
      ASSERT_TRUE(space.ok());
      sid = space.value();
      t = api.LoadThread(spec);
    }
    ASSERT_TRUE(t.ok()) << "load " << i << ": " << ckbase::CkStatusName(t.status());
  }
  EXPECT_EQ(ck.loaded_count(ck::ObjectType::kThread), capacity);
  EXPECT_EQ(model.thread_writebacks, static_cast<uint64_t>(capacity) * 3u);
  EXPECT_TRUE(ck.ValidateInvariants().empty());
}

INSTANTIATE_TEST_SUITE_P(Capacities, CapacitySweepTest, ::testing::Values(2u, 4u, 16u, 64u));

class MappingChurnTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(MappingChurnTest, WritebackReportsEveryDisplacedMapping) {
  // Conservation: loads - live == writebacks (nothing vanishes silently).
  uint32_t pool = GetParam();
  cksim::MachineConfig mc;
  mc.memory_bytes = 4u << 20;
  cksim::Machine machine(mc);
  CacheKernelConfig config;
  config.mapping_slots = pool;
  CacheKernel ck(machine, config);
  ModelKernel model;
  KernelId kid = ck.BootFirstKernel(&model, 0);
  CkApi api(ck, kid, machine.cpu(0));
  ckbase::Result<SpaceId> space = api.LoadSpace(0, false);
  ASSERT_TRUE(space.ok());

  uint32_t loads = pool * 3;
  for (uint32_t i = 0; i < loads; ++i) {
    MappingSpec spec;
    spec.space = space.value();
    spec.vaddr = i * cksim::kPageSize;
    spec.paddr = 0x100000 + (i % 128) * cksim::kPageSize;
    ASSERT_EQ(api.LoadMapping(spec), CkStatus::kOk);
  }
  uint32_t live = ck.loaded_count(ck::ObjectType::kMapping);
  EXPECT_EQ(model.mapping_writebacks + live, loads);
  EXPECT_LE(live, pool);
  EXPECT_TRUE(ck.ValidateInvariants().empty());
}

INSTANTIATE_TEST_SUITE_P(Pools, MappingChurnTest, ::testing::Values(16u, 64u, 256u, 1024u));

}  // namespace

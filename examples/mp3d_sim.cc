// MP3D example: the paper's motivating "sophisticated application" -- a
// particle-in-cell wind tunnel running as its own application kernel with
// application-specific memory management (section 3, section 5.2).
//
//   $ ./mp3d_sim
//
// Runs the same simulation twice: once with particles scattered across
// storage (poor page locality) and once with the application kernel copying
// particles into cell order after each step (the paper's fix). Reports
// steps/second in simulated time plus TLB behavior.

#include <cstdio>

#include "src/ck/observability.h"
#include "src/mp3d/mp3d_kernel.h"
#include "src/sim/machine.h"
#include "src/srm/srm.h"

namespace {

// Set by main; the first RunMode world attaches and flushes it.
ck::ObsSession* g_obs = nullptr;

struct RunResult {
  double sim_ms = 0;
  double updates_per_ms = 0;
  uint64_t tlb_misses = 0;
  double tlb_miss_rate = 0;
};

RunResult RunMode(ckmp3d::Placement placement, uint32_t steps) {
  cksim::Machine machine{cksim::MachineConfig()};
  ck::CacheKernel cache_kernel(machine, ck::CacheKernelConfig());
  cksrm::Srm srm(cache_kernel);
  srm.Boot();
  if (g_obs != nullptr) {
    g_obs->Attach(machine, &cache_kernel);
  }

  ckmp3d::Mp3dConfig config;
  config.particles = 16384;  // 512 KiB of particles = 128 pages
  config.cells = 64;
  config.workers = 4;        // one per processor
  config.placement = placement;
  ckmp3d::Mp3dKernel mp3d(cache_kernel, config);
  cksrm::LaunchParams params;
  params.page_groups = 4;
  if (!srm.Launch(mp3d, params).ok()) {
    std::printf("launch failed\n");
    std::exit(1);
  }
  ck::CkApi api(cache_kernel, mp3d.self(), machine.cpu(0));
  mp3d.Setup(api);

  // Warm up (fault everything in, let particles mix), then measure.
  mp3d.RunSteps(2);
  for (uint32_t c = 0; c < machine.cpu_count(); ++c) {
    machine.cpu(c).mmu().tlb().ResetStats();
  }
  cksim::Cycles elapsed = mp3d.RunSteps(steps);

  uint64_t hits = 0, misses = 0;
  for (uint32_t c = 0; c < machine.cpu_count(); ++c) {
    hits += machine.cpu(c).mmu().tlb().hits();
    misses += machine.cpu(c).mmu().tlb().misses();
  }

  RunResult result;
  result.sim_ms = cksim::CostModel::ToMicroseconds(elapsed) / 1000.0;
  result.updates_per_ms =
      static_cast<double>(config.particles) * steps / result.sim_ms;
  result.tlb_misses = misses;
  result.tlb_miss_rate = misses + hits > 0
                             ? 100.0 * static_cast<double>(misses) /
                                   static_cast<double>(misses + hits)
                             : 0;
  if (g_obs != nullptr && g_obs->attached(machine)) {
    g_obs->Finish();
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  ck::ObsSession obs(argc, argv);
  g_obs = &obs;
  constexpr uint32_t kSteps = 6;
  std::printf("mini-MP3D: 16384 particles, 64 cells, 4 workers, %u measured steps\n\n", kSteps);

  RunResult scattered = RunMode(ckmp3d::Placement::kScattered, kSteps);
  RunResult local = RunMode(ckmp3d::Placement::kLocalityAware, kSteps);

  std::printf("%-22s %14s %16s %12s %10s\n", "placement", "sim time (ms)", "updates/ms",
              "TLB misses", "miss %");
  std::printf("%-22s %14.2f %16.0f %12llu %9.2f%%\n", "scattered", scattered.sim_ms,
              scattered.updates_per_ms, static_cast<unsigned long long>(scattered.tlb_misses),
              scattered.tlb_miss_rate);
  std::printf("%-22s %14.2f %16.0f %12llu %9.2f%%\n", "locality-enforced", local.sim_ms,
              local.updates_per_ms, static_cast<unsigned long long>(local.tlb_misses),
              local.tlb_miss_rate);

  double degradation = 100.0 * (scattered.sim_ms - local.sim_ms) / local.sim_ms;
  std::printf("\nscattered placement degrades step time by %.1f%%\n", degradation);
  std::printf("(the paper reported up to 25%% degradation from particles scattered across\n"
              " too many pages, fixed by copying particles to enforce page locality)\n");
  return 0;
}

// UNIX emulator example: multi-process timesharing on the Cache Kernel.
//
//   $ ./unix_emulator
//
// Runs a small "shell session" under the emulator application kernel:
//   * a hello-world writing to its console,
//   * a compute-bound job (aged down to batch priority by the emulator's
//     per-processor scheduling threads),
//   * an interactive job that sleeps and wakes (its thread descriptor is
//     unloaded from the Cache Kernel during long sleeps),
//   * a buggy program that takes a SEGV (handled by a registered handler).

#include <cstdio>

#include "src/isa/assembler.h"
#include "src/sim/machine.h"
#include "src/srm/srm.h"
#include "src/ck/observability.h"
#include "src/unixemu/unix_emulator.h"

namespace {

ckisa::Program Assemble(const char* source) {
  ckisa::AssembleResult result = ckisa::Assemble(source, 0x10000);
  if (!result.ok) {
    std::printf("assembler error: %s\n", result.error.c_str());
    std::exit(1);
  }
  return result.program;
}

}  // namespace

int main(int argc, char** argv) {
  ck::ObsSession obs(argc, argv);
  cksim::Machine machine{cksim::MachineConfig()};
  ck::CacheKernel cache_kernel(machine, ck::CacheKernelConfig());
  cksrm::Srm srm(cache_kernel);
  srm.Boot();
  obs.Attach(machine, &cache_kernel);

  ckunix::UnixEmulator unix_emulator(cache_kernel, ckunix::UnixConfig());
  cksrm::LaunchParams params;
  params.page_groups = 8;
  params.max_priority = 31;
  if (!srm.Launch(unix_emulator, params).ok()) {
    std::printf("launch failed\n");
    return 1;
  }
  ck::CkApi api(cache_kernel, unix_emulator.self(), machine.cpu(0));
  unix_emulator.Start(api);
  std::printf("unix emulator started (%u scheduler threads)\n", machine.cpu_count());

  // Process 1: hello world.
  int hello = unix_emulator.Exec(api, Assemble(R"(
      trap 16              ; getpid
      mv   s0, a0
      la   a0, msg
      addi a1, r0, 20
      trap 18              ; write(msg, 20)
      addi a0, r0, 0
      trap 17              ; exit(0)
    msg:
      .word 0x6c6c6568     ; "hell"
      .word 0x7266206f     ; "o fr"
      .word 0x70206d6f     ; "om p"
      .word 0x65636f72     ; "roce"
      .word 0x0a317373     ; "ss1\n"
  )"));

  // Process 2: compute-bound (watch it get niced down by the scheduler).
  int cruncher = unix_emulator.Exec(api, Assemble(R"(
      li   t2, 1500000
      addi t0, r0, 0
      addi t1, r0, 1
    loop:
      add  t0, t0, t1
      blt  t0, t2, loop
      addi a0, r0, 0
      trap 17
  )"));

  // Process 3: interactive -- sleeps 20ms (thread descriptor unloaded), then
  // reports how long it actually slept.
  int sleeper = unix_emulator.Exec(api, Assemble(R"(
      trap 23              ; gettime -> us
      mv   s0, a0
      li   a0, 20000
      trap 20              ; sleep(20ms)
      trap 23
      sub  s1, a0, s0      ; elapsed
      addi a0, r0, 0
      trap 17
  )"));

  // Process 4: dereferences a wild pointer, recovers in a SEGV handler.
  int crasher = unix_emulator.Exec(api, Assemble(R"(
      la   a0, onsegv
      trap 22              ; sigsegv(handler)
      li   t0, 0x0dead000
      lw   t1, 0(t0)       ; SEGV
      addi a0, r0, 1
      trap 17
    onsegv:
      addi a0, r0, 99      ; "recovered" exit code
      trap 17
  )"));

  uint64_t turns = 0;
  while (!unix_emulator.AllExited() && turns < 20000000) {
    machine.Step();
    ++turns;
  }

  std::printf("\n-- session results --\n");
  std::printf("pid %d (hello): exit=%d console=\"%s\"\n", hello,
              unix_emulator.process(hello).exit_code,
              unix_emulator.process(hello).console.substr(0, 19).c_str());
  std::printf("pid %d (cruncher): exit=%d, final priority=%u (started at %u)\n", cruncher,
              unix_emulator.process(cruncher).exit_code,
              unix_emulator.thread(unix_emulator.process(cruncher).thread_index).priority,
              ckunix::UnixConfig().default_priority);
  const ckapp::ThreadRec& sleeper_rec =
      unix_emulator.thread(unix_emulator.process(sleeper).thread_index);
  std::printf("pid %d (sleeper): exit=%d, slept %u us (asked for 20000)\n", sleeper,
              unix_emulator.process(sleeper).exit_code,
              sleeper_rec.saved.regs[ckisa::kRegS0 + 1]);
  std::printf("pid %d (crasher): exit=%d (99 = SEGV handler ran)\n", crasher,
              unix_emulator.process(crasher).exit_code);

  const ck::CkStats& stats = cache_kernel.stats();
  std::printf("\n-- cache kernel stats --\n");
  std::printf("syscalls forwarded: %llu, faults: %llu, mapping loads: %llu, thread "
              "writebacks: %llu\n",
              static_cast<unsigned long long>(stats.traps_forwarded),
              static_cast<unsigned long long>(stats.faults_forwarded),
              static_cast<unsigned long long>(stats.loads[3]),
              static_cast<unsigned long long>(stats.writebacks[2]));
  std::printf("simulated time: %.2f ms\n",
              cksim::CostModel::ToMicroseconds(machine.Now()) / 1000.0);
  obs.Finish();
  return unix_emulator.AllExited() ? 0 : 1;
}

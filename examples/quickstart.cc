// Quickstart: boot one MPM, start the SRM, launch an application kernel,
// run a guest program through a real page fault, and watch a writeback.
//
//   $ ./quickstart
//
// Walks the essentials of the caching model in ~100 lines of user code:
//   1. a Machine (the simulated multiprocessor) + CacheKernel + SRM
//   2. an application kernel launched with a resource grant
//   3. a CKVM guest program loaded by demand paging (Figure 2 in action)
//   4. a syscall through trap forwarding
//   5. descriptor writeback when the guest's space is unloaded

#include <cstdio>

#include "src/appkernel/app_kernel_base.h"
#include "src/ck/cache_kernel.h"
#include "src/isa/assembler.h"
#include "src/sim/machine.h"
#include "src/srm/srm.h"
#include "src/ck/observability.h"

namespace {

// A minimal application kernel: the base library's demand pager plus one
// syscall (trap 16: "answer") so the guest can talk to us.
class QuickKernel : public ckapp::AppKernelBase {
 public:
  QuickKernel() : ckapp::AppKernelBase("quick", /*backing_pages=*/256) {}

  ck::TrapAction HandleTrap(const ck::TrapForward& trap, ck::CkApi& api) override {
    (void)api;
    ck::TrapAction action;
    if (trap.number == 16) {
      std::printf("  [quick-kernel] trap 16 from thread cookie %llu, a0=%u\n",
                  static_cast<unsigned long long>(trap.thread_cookie), trap.args[0]);
      action.has_return_value = true;
      action.return_value = trap.args[0] * 2;
      return action;
    }
    action.action = ck::HandlerAction::kTerminate;
    return action;
  }
};

}  // namespace

int main(int argc, char** argv) {
  ck::ObsSession obs(argc, argv);
  // 1. One MPM: four CPUs, local memory, a Cache Kernel, the first kernel.
  cksim::MachineConfig machine_config;
  cksim::Machine machine(machine_config);
  ck::CacheKernel cache_kernel(machine, ck::CacheKernelConfig());
  cksrm::Srm srm(cache_kernel);
  srm.Boot();
  obs.Attach(machine, &cache_kernel);
  std::printf("booted: %u CPUs, %u KiB memory, caches: %u kernels / %u spaces / %u threads / %u "
              "mappings\n",
              machine.cpu_count(), machine.memory().size() / 1024,
              cache_kernel.capacity(ck::ObjectType::kKernel),
              cache_kernel.capacity(ck::ObjectType::kSpace),
              cache_kernel.capacity(ck::ObjectType::kThread),
              cache_kernel.capacity(ck::ObjectType::kMapping));

  // 2. Launch an application kernel with a grant: 2 page groups (1 MiB),
  //    full CPU, priorities up to 24.
  QuickKernel quick;
  cksrm::LaunchParams params;
  params.page_groups = 2;
  if (!srm.Launch(quick, params).ok()) {
    std::printf("launch failed\n");
    return 1;
  }
  std::printf("launched '%s' with %u frames\n", quick.name().c_str(),
              quick.frames().free_count());

  // 3. A guest program: sums 1..10, doubles it via the kernel, stores to a
  //    fresh heap page (zero-fill demand fault), and halts.
  ckisa::AssembleResult assembled = ckisa::Assemble(R"(
      addi t0, r0, 0      ; sum = 0
      addi t1, r0, 1
      addi t2, r0, 10
    loop:
      add  t0, t0, t1
      addi t1, t1, 1
      bge  t2, t1, loop
      mv   a0, t0
      trap 16             ; ask the kernel to double it
      li   t3, 0x20000000
      sw   a0, 0(t3)      ; zero-fill page: mapping fault -> Figure 2
      lw   s0, 0(t3)
      halt
  )", 0x10000);
  if (!assembled.ok) {
    std::printf("assembler error: %s\n", assembled.error.c_str());
    return 1;
  }

  ck::CkApi api(cache_kernel, quick.self(), machine.cpu(0));
  uint32_t space = quick.CreateSpace(api);
  quick.LoadProgramImage(space, assembled.program, /*writable=*/false);
  quick.DefineZeroRegion(space, 0x20000000, 1, /*writable=*/true);

  ckapp::GuestThreadParams guest;
  guest.space_index = space;
  guest.entry = 0x10000;
  uint32_t thread = quick.CreateGuestThread(api, guest);
  std::printf("guest thread loaded (cookie %u)\n", thread);

  // 4. Run the machine until the guest halts.
  uint64_t turns = 0;
  while (!quick.thread(thread).finished && turns < 1000000) {
    machine.Step();
    ++turns;
  }

  const ck::CkStats& stats = cache_kernel.stats();
  std::printf("guest finished: s0 = %u (expected 110)\n",
              quick.thread(thread).saved.regs[ckisa::kRegS0]);
  std::printf("  faults forwarded: %llu  traps forwarded: %llu  mapping loads: %llu\n",
              static_cast<unsigned long long>(stats.faults_forwarded),
              static_cast<unsigned long long>(stats.traps_forwarded),
              static_cast<unsigned long long>(stats.loads[3]));
  std::printf("  simulated time: %.1f us\n",
              cksim::CostModel::ToMicroseconds(machine.Now()));

  // 5. Unload the space: every mapping and the space descriptor write back
  //    to the application kernel (the caching model's defining move).
  uint64_t wb_before = stats.writebacks[static_cast<int>(ck::ObjectType::kMapping)];
  api.UnloadSpace(quick.space(space).ck_id);
  std::printf("space unloaded: %llu mapping writebacks delivered\n",
              static_cast<unsigned long long>(
                  stats.writebacks[static_cast<int>(ck::ObjectType::kMapping)] - wb_before));
  obs.Finish();
  std::printf("quickstart OK\n");
  return 0;
}

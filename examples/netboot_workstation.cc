// Diskless workstation cluster: N clients netboot from one file server
// (section 4's Figure-4 configuration: diskless nodes paging their boot
// image and file tree from a server node over the interconnect).
//
//   $ ./netboot_workstation [--clients=N] [--rounds=N] [--serial]
//
// Machine 0 runs a FileServerKernel over an in-memory versioned file tree.
// Machines 1..N each run an application kernel embedding a ClientFileCache
// (src/fs, docs/FILESERVICE.md). Every client cold-boots by discovering the
// tree with readdir and scanning every file page by page -- demand misses
// plus pipelined read-ahead over the fiber-channel link -- then re-scans
// warm (every page from the local cache, zero wire traffic), and finally
// observes a server-side write: the version push invalidates the stale
// pages everywhere and the next scan re-fetches them.
//
// The whole world runs under cksim::Cluster; by default the host-parallel
// driver is used (pass --serial for the reference interleaving -- both
// produce bit-identical results, see tests/fs_test.cc).

#include <cstdio>
#include <cstring>
#include <vector>

#include "src/ck/observability.h"
#include "src/fs/fs_cluster.h"

int main(int argc, char** argv) {
  ck::ObsSession obs(argc, argv, {"--clients=", "--rounds=", "--serial"});

  ckfs::FsClusterConfig config;
  config.clients = 3;
  config.files = 6;
  config.file_pages = 8;
  config.scan_rounds = 1;
  config.parallel = true;
  uint32_t rounds = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--clients=", 10) == 0) {
      config.clients = static_cast<uint32_t>(std::atoi(argv[i] + 10));
    } else if (std::strncmp(argv[i], "--rounds=", 9) == 0) {
      rounds = static_cast<uint32_t>(std::atoi(argv[i] + 9));
    } else if (std::strcmp(argv[i], "--serial") == 0) {
      config.parallel = false;
    }
  }
  config.scan_rounds = rounds;

  ckfs::FsCluster world(config);
  // Client 0 first: the metrics registry binds to the first attach, and the
  // interesting counters (ck.fs.*) live client-side.
  obs.Attach(world.client_machine(0), &world.client_ck(0));
  obs.Attach(world.server_machine(), &world.server_ck());

  std::printf("netboot: %u diskless clients booting from 1 file server (%s cluster driver)\n",
              config.clients, config.parallel ? "parallel" : "serial");

  // --- cold boot: every client pages the whole tree in over the wire ---
  if (!world.Run()) {
    std::printf("cold boot timed out\n");
    return 1;
  }
  bool ok = true;
  for (uint32_t c = 0; c < config.clients; ++c) {
    const ckfs::FsClientStats& s = world.cache(c).stats();
    ok = ok && world.workload(c).done() && !world.workload(c).failed();
    std::printf(
        "  client %u: %llu pages read, %llu demand misses, %llu read-ahead (%llu useful), "
        "%llu wire msgs\n",
        c, static_cast<unsigned long long>(world.workload(c).pages_read()),
        static_cast<unsigned long long>(s.misses),
        static_cast<unsigned long long>(s.readahead_issued),
        static_cast<unsigned long long>(s.readahead_useful),
        static_cast<unsigned long long>(world.WireTraffic(c)));
  }
  if (!ok) {
    std::printf("cold boot failed verification\n");
    return 1;
  }

  // --- the tree as the clients see it ---
  ckfs::ClientFileCache::DirListing listing;
  ckfs::ClientFileCache::Status status = ckfs::ClientFileCache::Status::kPending;
  world.RunUntil(
      [&] {
        ck::CkApi api = world.ClientApi(0);
        status = world.cache(0).Readdir(api, &listing);
        return status != ckfs::ClientFileCache::Status::kPending;
      },
      5000000);
  std::printf("readdir: %zu files in the tree\n", listing.entries.size());
  for (size_t i = 0; i < listing.names.size(); ++i) {
    std::printf("  %-16s fileid=%u version=%u size=%u\n", listing.names[i].c_str(),
                listing.entries[i].fileid, listing.entries[i].version,
                listing.entries[i].size);
  }

  // --- warm re-scan: all hits, not one packet on any link ---
  std::vector<uint64_t> cold_traffic;
  for (uint32_t c = 0; c < config.clients; ++c) {
    cold_traffic.push_back(world.WireTraffic(c));
    world.workload(c).Resume(1);
  }
  if (!world.Run()) {
    std::printf("warm scan timed out\n");
    return 1;
  }
  for (uint32_t c = 0; c < config.clients; ++c) {
    uint64_t delta = world.WireTraffic(c) - cold_traffic[c];
    ok = ok && !world.workload(c).failed() && delta == 0;
    std::printf("  client %u warm: %llu cache hits, wire delta %llu\n", c,
                static_cast<unsigned long long>(world.cache(c).stats().hits),
                static_cast<unsigned long long>(delta));
  }
  if (!ok) {
    std::printf("warm scan was not free\n");
    return 1;
  }

  // --- a write moves file 1's version; the push invalidates every cache ---
  uint32_t file_len = config.file_pages * cksim::kPageSize - cksim::kPageSize / 2;
  {
    ck::CkApi api = world.ServerApi();
    uint32_t version = world.server().file_version(1) + 1;
    std::vector<uint8_t> fresh = ckfs::FileBytes(1, version, file_len);
    world.server().WriteLocal(1, 0, fresh.data(), file_len, &api);
  }
  bool invalidated = world.RunUntil(
      [&] {
        for (uint32_t c = 0; c < config.clients; ++c) {
          if (world.cache(c).CachedVersion(1) != 2) {
            return false;
          }
        }
        return true;
      },
      5000000);
  if (!invalidated) {
    std::printf("invalidation push never arrived\n");
    return 1;
  }
  std::printf("server write: file 1 -> version 2, all %u caches dropped their stale pages\n",
              config.clients);

  // --- re-scan: only the invalidated file goes back to the wire ---
  for (uint32_t c = 0; c < config.clients; ++c) {
    world.workload(c).Resume(1);
  }
  if (!world.Run()) {
    std::printf("re-scan timed out\n");
    return 1;
  }
  for (uint32_t c = 0; c < config.clients; ++c) {
    ok = ok && world.workload(c).done() && !world.workload(c).failed();
    std::printf("  client %u re-scan: %llu invalidations observed, %llu total misses\n", c,
                static_cast<unsigned long long>(world.cache(c).stats().invalidations),
                static_cast<unsigned long long>(world.cache(c).stats().misses));
  }

  const ckfs::FsServerStats& fs = world.server().fs_stats();
  std::printf("server totals: %llu reads, %llu pages shipped, %llu invalidations pushed\n",
              static_cast<unsigned long long>(fs.reads),
              static_cast<unsigned long long>(fs.pages_shipped),
              static_cast<unsigned long long>(fs.invalidations_sent));
  std::printf("netboot workstation %s\n", ok ? "OK" : "FAILED");
  obs.Finish();
  return ok ? 0 : 1;
}

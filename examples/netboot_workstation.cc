// Diskless workstation example: PROM network boot + remote debugging
// (section 4: the PROM monitor, network boot program, and the protocol
// suite that made up 40% of the original Cache Kernel's code).
//
//   $ ./netboot_workstation
//
// Node 1 is a boot server holding a program image. Node 2 is a diskless
// workstation: its PROM client broadcasts a RARP-style "who serves me?",
// discovers the server, pulls the image block-by-block over the TFTP-style
// protocol, and executes it as a demand-paged guest. Afterwards the server
// peeks and pokes the workstation's physical memory through the remote
// debug port.

#include <cstdio>

#include "src/isa/assembler.h"
#include "src/prom/netboot.h"
#include "src/sim/machine.h"
#include "src/srm/srm.h"
#include "src/ck/observability.h"

namespace {

struct Node {
  Node() : machine(cksim::MachineConfig()), ck(machine, ck::CacheKernelConfig()), srm(ck) {
    srm.Boot();
  }
  cksim::Machine machine;
  ck::CacheKernel ck;
  cksrm::Srm srm;
};

}  // namespace

int main(int argc, char** argv) {
  ck::ObsSession obs(argc, argv);
  Node server_node, client_node;
  obs.Attach(server_node.machine, &server_node.ck);

  // One Ethernet station per node, hub-connected.
  uint32_t server_group = server_node.srm.ReserveGroups(1).value();
  uint32_t client_group = client_node.srm.ReserveGroups(1).value();
  cksim::EthernetDevice server_eth(server_node.machine.memory(), &server_node.ck,
                                   server_group * cksim::kPageGroupBytes, 4, 4, 1000, 1);
  cksim::EthernetDevice client_eth(client_node.machine.memory(), &client_node.ck,
                                   client_group * cksim::kPageGroupBytes, 4, 4, 1000, 2);
  cksim::EthernetHub hub;
  hub.Attach(&server_eth);
  hub.Attach(&client_eth);
  server_node.machine.AttachDevice(&server_eth);
  client_node.machine.AttachDevice(&client_eth);

  ckapp::AppKernelBase server_app("boot-server", 64), client_app("workstation", 256);
  cksrm::LaunchParams params;
  params.page_groups = 2;
  server_node.srm.Launch(server_app, params);
  client_node.srm.Launch(client_app, params);
  server_node.srm.GrantSharedGroups(server_app, server_group, 1, ck::GroupAccess::kReadWrite);
  client_node.srm.GrantSharedGroups(client_app, client_group, 1, ck::GroupAccess::kReadWrite);

  ck::CkApi server_api(server_node.ck, server_app.self(), server_node.machine.cpu(0));
  ck::CkApi client_api(client_node.ck, client_app.self(), client_node.machine.cpu(0));
  uint32_t server_space = server_app.CreateSpace(server_api);
  uint32_t client_space = client_app.CreateSpace(client_api);

  // The boot image: computes fib(20) and halts.
  ckisa::AssembleResult fib = ckisa::Assemble(R"(
      addi t0, r0, 0      ; fib(0)
      addi t1, r0, 1      ; fib(1)
      addi t2, r0, 20
    loop:
      add  t3, t0, t1
      mv   t0, t1
      mv   t1, t3
      addi t2, t2, -1
      bne  t2, r0, loop
      mv   s0, t0
      halt
  )", 0x10000);
  if (!fib.ok) {
    std::printf("asm: %s\n", fib.error.c_str());
    return 1;
  }

  ckprom::BootServer server(
      ckprom::Station(server_app, server_space, server_eth, 0x00800000, 0x00900000));
  server.AddImage("fib20", ckprom::SerializeProgram(fib.program));
  ckprom::PromClient prom(
      ckprom::Station(client_app, client_space, client_eth, 0x00800000, 0x00900000));

  uint32_t server_thread =
      server_app.CreateNativeThread(server_api, server_space, &server, 20);
  uint32_t client_thread = client_app.CreateNativeThread(client_api, client_space, &prom, 20);
  ckprom::Station(server_app, server_space, server_eth, 0x00800000, 0x00900000)
      .Attach(server_api, server_thread);
  ckprom::Station(client_app, client_space, client_eth, 0x00800000, 0x00900000)
      .Attach(client_api, client_thread);

  auto run_both = [&](const std::function<bool()>& done, uint64_t max_turns = 3000000) {
    for (uint64_t i = 0; i < max_turns && !done(); ++i) {
      server_node.machine.Step();
      client_node.machine.Step();
    }
    return done();
  };

  std::printf("workstation: broadcasting RARP, requesting image 'fib20'...\n");
  std::vector<uint8_t> image;
  prom.Boot(client_api, "fib20",
            [&](const std::vector<uint8_t>& bytes, ck::CkApi&) { image = bytes; });
  if (!run_both([&] { return prom.boot_complete(); })) {
    std::printf("netboot timed out\n");
    return 1;
  }
  std::printf("netboot complete: server=station %u, image %zu bytes, %llu TFTP blocks\n",
              prom.discovered_server(), image.size(),
              static_cast<unsigned long long>(server.blocks_sent()));

  // Execute the fetched image on the workstation.
  ckisa::Program program;
  ckprom::DeserializeProgram(image, &program);
  client_app.LoadProgramImage(client_space, program, /*writable=*/false);
  ckapp::GuestThreadParams guest_params;
  guest_params.space_index = client_space;
  guest_params.entry = program.base;
  uint32_t guest = client_app.CreateGuestThread(client_api, guest_params);
  run_both([&] { return client_app.thread(guest).finished; });
  std::printf("netbooted program ran: fib(20) = %u (expected 6765)\n",
              client_app.thread(guest).saved.regs[ckisa::kRegS0]);

  // Remote debugging: the server peeks a word of the workstation's memory.
  ckprom::DebugPort port(
      ckprom::Station(client_app, client_space, client_eth, 0x00a00000, 0x00900000),
      client_node.machine.memory());
  uint32_t port_thread = client_app.CreateNativeThread(client_api, client_space, &port, 21);
  ckprom::Station(client_app, client_space, client_eth, 0x00a00000, 0x00900000)
      .Attach(client_api, port_thread);
  ckprom::PromClient debugger(
      ckprom::Station(server_app, server_space, server_eth, 0x00b00000, 0x00900000));
  uint32_t dbg_thread = server_app.CreateNativeThread(server_api, server_space, &debugger, 21);
  ckprom::Station(server_app, server_space, server_eth, 0x00b00000, 0x00900000)
      .Attach(server_api, dbg_thread);

  cksim::PhysAddr probe = client_app.frames().Allocate();
  uint32_t marker = 0x0ddba115;
  client_api.WritePhys(probe, &marker, 4);
  uint32_t observed = 0;
  debugger.Peek(server_api, /*server=*/2, probe, [&](uint32_t value) { observed = value; });
  run_both([&] { return observed != 0; });
  std::printf("remote debug: peeked %#x from the workstation's physical %#x\n", observed, probe);
  std::printf("netboot workstation OK\n");
  obs.Finish();
  return observed == marker ? 0 : 1;
}

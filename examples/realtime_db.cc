// Real-time + database example: two specialized application kernels sharing
// one MPM under SRM resource management (sections 3 and 4.3).
//
//   $ ./realtime_db
//
// A real-time control kernel (locked threads/mappings, 2 ms period, 500 us
// deadline) shares the machine with a database kernel grinding table scans.
// The SRM caps the database kernel's share of the RT task's processor. The
// output shows the RT task's latency distribution staying put while the
// database chews through queries -- the coexistence story of section 4.3.

#include <cstdio>

#include "src/db/db_kernel.h"
#include "src/rt/rt_kernel.h"
#include "src/sim/machine.h"
#include "src/srm/srm.h"
#include "src/ck/observability.h"

int main(int argc, char** argv) {
  ck::ObsSession obs(argc, argv);
  cksim::Machine machine{cksim::MachineConfig()};
  ck::CacheKernel cache_kernel(machine, ck::CacheKernelConfig());
  cksrm::Srm srm(cache_kernel);
  srm.Boot();
  obs.Attach(machine, &cache_kernel);

  // Real-time kernel: locked into the Cache Kernel, high priority, cpu 0.
  ckrt::RtConfig rt_config;
  rt_config.lock_resources = true;
  ckrt::RtKernel rt(cache_kernel, rt_config);
  {
    cksrm::LaunchParams params;
    params.page_groups = 2;
    params.max_priority = 30;
    params.locked_kernel_object = true;
    params.lock_limits[static_cast<int>(ck::ObjectType::kMapping)] = 64;
    params.lock_limits[static_cast<int>(ck::ObjectType::kThread)] = 8;
    params.lock_limits[static_cast<int>(ck::ObjectType::kSpace)] = 2;
    if (!srm.Launch(rt, params).ok()) {
      std::printf("rt launch failed\n");
      return 1;
    }
  }
  ck::CkApi rt_api(cache_kernel, rt.self(), machine.cpu(0));
  ckrt::RtTaskConfig task;
  task.period = 50000;     // 2 ms
  task.deadline = 12500;   // 500 us
  task.working_set_pages = 8;
  task.priority = 28;
  task.cpu = 0;
  rt.Setup(rt_api, {task, task});  // two control loops

  // Database kernel: batch priority, capped at 40% of cpu 0 (it may also use
  // the other processors freely).
  ckdb::DbConfig db_config;
  db_config.table_pages = 96;
  db_config.buffer_pages = 48;
  db_config.policy = ckdb::Replacement::kMru;
  ckdb::DbKernel db(cache_kernel, db_config);
  {
    cksrm::LaunchParams params;
    params.page_groups = 4;
    params.max_priority = 12;
    params.cpu_percent[0] = 40;
    if (!srm.Launch(db, params).ok()) {
      std::printf("db launch failed\n");
      return 1;
    }
  }
  ck::CkApi db_api(cache_kernel, db.self(), machine.cpu(0));
  db.Setup(db_api);

  std::printf("running: 2 locked RT tasks (2 ms period, 500 us deadline) + database scans...\n\n");

  // Interleave: run database queries while the machine (and thus the RT
  // tasks) advances. RunScan pumps the same machine.
  uint64_t checksum = 0;
  for (int scan = 0; scan < 6; ++scan) {
    checksum = db.RunScan();
  }

  std::printf("-- database --\n");
  std::printf("scans completed: %llu, rows read: %llu, buffer hit rate: %.1f%%, checksum %llu\n",
              static_cast<unsigned long long>(db.query_stats().queries),
              static_cast<unsigned long long>(db.query_stats().rows_read),
              100.0 * static_cast<double>(db.query_stats().buffer_hits) /
                  static_cast<double>(db.query_stats().buffer_hits +
                                      db.query_stats().buffer_misses),
              static_cast<unsigned long long>(checksum));

  std::printf("\n-- real-time tasks --\n");
  for (uint32_t i = 0; i < rt.task_count(); ++i) {
    const ckrt::RtTaskStats& stats = rt.task_stats(i);
    double mean_us = stats.activations > 0
                         ? cksim::CostModel::ToMicroseconds(stats.total_latency) /
                               static_cast<double>(stats.activations)
                         : 0;
    std::printf("task %u: activations=%llu misses=%llu mean latency=%.1f us worst=%.1f us "
                "(deadline 500 us)\n",
                i, static_cast<unsigned long long>(stats.activations),
                static_cast<unsigned long long>(stats.deadline_misses), mean_us,
                cksim::CostModel::ToMicroseconds(stats.worst_latency));
  }

  std::printf("\n-- machine --\n");
  std::printf("simulated time: %.2f ms, mapping reclamations: %llu, quota degradations: %llu\n",
              cksim::CostModel::ToMicroseconds(machine.Now()) / 1000.0,
              static_cast<unsigned long long>(
                  cache_kernel.stats().reclamations[static_cast<int>(ck::ObjectType::kMapping)]),
              static_cast<unsigned long long>(cache_kernel.stats().quota_degradations));
  obs.Finish();
  return 0;
}

// Multi-MPM example: two machines, one Cache Kernel each, fiber-channel
// interconnect, cross-machine RPC, and fault containment (Figures 4 and 5).
//
//   $ ./multi_mpm
//
// Node A's application kernel farms work items to node B over the RPC
// facility. Mid-run, node A's MPM is halted (a simulated hardware failure);
// node B keeps running -- "a failure in one MPM does not need to impact
// other kernels" (section 3).

#include <cstdio>
#include <cstring>

#include "src/appkernel/channel.h"
#include "src/sim/devices.h"
#include "src/sim/machine.h"
#include "src/srm/srm.h"
#include "src/ck/observability.h"

namespace {

struct Node {
  Node() : machine(cksim::MachineConfig()), ck(machine, ck::CacheKernelConfig()), srm(ck) {
    srm.Boot();
  }
  cksim::Machine machine;
  ck::CacheKernel ck;
  cksrm::Srm srm;
};

}  // namespace

int main(int argc, char** argv) {
  ck::ObsSession obs(argc, argv);
  Node a, b;
  obs.Attach(a.machine, &a.ck);

  // Fiber channel: one device per node, connected; device regions reserved
  // by each SRM.
  uint32_t group_a = a.srm.ReserveGroups(1).value();
  uint32_t group_b = b.srm.ReserveGroups(1).value();
  cksim::FiberChannelDevice fc_a(a.machine.memory(), &a.ck, group_a * cksim::kPageGroupBytes, 4,
                                 4, 2500);
  cksim::FiberChannelDevice fc_b(b.machine.memory(), &b.ck, group_b * cksim::kPageGroupBytes, 4,
                                 4, 2500);
  cksim::FiberChannelDevice::Connect(fc_a, fc_b);
  a.machine.AttachDevice(&fc_a);
  b.machine.AttachDevice(&fc_b);

  // One app kernel per node.
  ckapp::AppKernelBase app_a("dispatcher", 64), app_b("compute-node", 64);
  cksrm::LaunchParams params;
  params.page_groups = 2;
  a.srm.Launch(app_a, params);
  b.srm.Launch(app_b, params);
  a.srm.GrantSharedGroups(app_a, group_a, 1, ck::GroupAccess::kReadWrite);
  b.srm.GrantSharedGroups(app_b, group_b, 1, ck::GroupAccess::kReadWrite);

  ck::CkApi api_a(a.ck, app_a.self(), a.machine.cpu(0));
  ck::CkApi api_b(b.ck, app_b.self(), b.machine.cpu(0));
  uint32_t space_a = app_a.CreateSpace(api_a);
  uint32_t space_b = app_b.CreateSpace(api_b);

  // RPC: requests A->B, replies B->A. Op 1 = "sum of squares up to n".
  ckapp::MessageChannel requests, replies;
  ckapp::RpcServer server(requests, replies,
                          [](uint32_t op, const std::vector<uint8_t>& in, ck::CkApi&) {
    std::vector<uint8_t> out(8, 0);
    if (op == 1 && in.size() >= 4) {
      uint32_t n;
      std::memcpy(&n, in.data(), 4);
      uint64_t sum = 0;
      for (uint64_t i = 1; i <= n; ++i) {
        sum += i * i;
      }
      std::memcpy(out.data(), &sum, 8);
    }
    return out;
  });
  ckapp::RpcClient client(requests, replies);

  uint32_t server_thread = app_b.CreateNativeThread(api_b, space_b, &server, 16);
  uint32_t client_thread = app_a.CreateNativeThread(api_a, space_a, &client, 16);
  requests.ConfigureSender(app_a, space_a, 0x00800000, fc_a.tx_slot(0), 2);
  requests.ConfigureReceiver(app_b, space_b, 0x00900000, fc_b.rx_slot(0), 4, server_thread);
  replies.ConfigureSender(app_b, space_b, 0x00a00000, fc_b.tx_slot(2), 2);
  replies.ConfigureReceiver(app_a, space_a, 0x00b00000, fc_a.rx_slot(0), 4, client_thread);
  requests.PrimeReceiver(api_b);
  replies.PrimeReceiver(api_a);

  auto run_both = [&](const std::function<bool()>& done, uint64_t max_turns) {
    for (uint64_t i = 0; i < max_turns; ++i) {
      if (done()) {
        return true;
      }
      if (!a.machine.halted()) {
        a.machine.Step();
      }
      if (!b.machine.halted()) {
        b.machine.Step();
      }
    }
    return done();
  };

  // Dispatch three jobs to node B.
  std::printf("dispatching jobs from node A to node B over the fiber channel...\n");
  for (uint32_t n = 10; n <= 30; n += 10) {
    uint64_t answer = 0;
    std::vector<uint8_t> arg(4);
    std::memcpy(arg.data(), &n, 4);
    client.Call(api_a, 1, arg, [&answer](const std::vector<uint8_t>& reply, ck::CkApi&) {
      std::memcpy(&answer, reply.data(), 8);
    });
    if (!run_both([&] { return answer != 0; }, 3000000)) {
      std::printf("  job n=%u: TIMED OUT\n", n);
      return 1;
    }
    std::printf("  sum of squares 1..%u = %llu (computed on node B)\n", n,
                static_cast<unsigned long long>(answer));
  }

  // Kill node A's MPM. Node B keeps serving local work.
  std::printf("\nsimulating MPM failure on node A (halt)...\n");
  a.machine.Halt();

  class LocalCounter : public ck::NativeProgram {
   public:
    ck::NativeOutcome Step(ck::NativeCtx& ctx) override {
      ctx.Charge(200);
      ++count;
      ck::NativeOutcome outcome;
      outcome.action = ck::NativeOutcome::Action::kYield;
      return outcome;
    }
    uint64_t count = 0;
  };
  LocalCounter counter;
  app_b.CreateNativeThread(api_b, space_b, &counter, 10);
  run_both([&] { return counter.count >= 1000; }, 3000000);

  std::printf("node B executed %llu work units after node A failed\n",
              static_cast<unsigned long long>(counter.count));
  std::printf("node A dead: %s\n", a.machine.Step() ? "NO (bug)" : "yes, contained");
  obs.Finish();
  std::printf("multi-MPM OK: failure contained to one Cache Kernel instance\n");
  return 0;
}

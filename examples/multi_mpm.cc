// Multi-MPM example: two machines, one Cache Kernel each, fiber-channel
// interconnect, cross-machine RPC, and fault containment (Figures 4 and 5).
//
//   $ ./multi_mpm            # machines on parallel host threads (default)
//   $ ./multi_mpm --serial   # single-threaded reference driver
//
// Act 1: node A's application kernel farms work items to node B over the RPC
// facility. Act 2: node A's MPM is halted (a simulated hardware failure);
// node B keeps running -- "a failure in one MPM does not need to impact
// other kernels" (section 3). Act 3: crash failover -- a UNIX emulator that
// was running on node A, periodically checkpointed to stable store, is
// restarted by node B's SRM from the last image; its guest processes resume
// with stable pids and only the work since that checkpoint is redone
// (docs/CHECKPOINT.md).
//
// Both machines are driven by the conservative parallel cluster driver
// (src/sim/cluster.h): the fiber channel's wire latency is the lookahead, and
// the two modes produce bit-exact results (tests/cluster_test.cc,
// docs/PERFORMANCE.md "Cluster parallelism").

#include <cstdio>
#include <cstring>

#include "src/appkernel/channel.h"
#include "src/isa/assembler.h"
#include "src/sim/cluster.h"
#include "src/sim/devices.h"
#include "src/sim/machine.h"
#include "src/srm/srm.h"
#include "src/ck/observability.h"
#include "src/unixemu/unix_emulator.h"

namespace {

struct Node {
  Node() : machine(cksim::MachineConfig()), ck(machine, ck::CacheKernelConfig()), srm(ck) {
    srm.Boot();
  }
  cksim::Machine machine;
  ck::CacheKernel ck;
  cksrm::Srm srm;
};

ckisa::Program MustAssemble(const char* source, uint32_t base = 0x10000) {
  ckisa::AssembleResult result = ckisa::Assemble(source, base);
  if (!result.ok) {
    std::fprintf(stderr, "assemble error: %s\n", result.error.c_str());
    std::exit(1);
  }
  return result.program;
}

// Guest workload for the failover act: a ticker that writes and sleeps, and
// a spawner that waits on a child. Output is deterministic per process.
constexpr const char* kTickerSrc = R"(
      addi s0, r0, 4
  loop:
      la   a0, msg
      addi a1, r0, 4
      trap 18         ; write "tik."
      li   a0, 12000
      trap 20         ; sleep 12ms
      addi s0, s0, -1
      beq  s0, r0, done
      j    loop
  done:
      addi a0, r0, 7
      trap 17
  msg:
      .word 0x2e6b6974
)";

constexpr const char* kChildSrc = R"(
      la   a0, msg
      addi a1, r0, 3
      trap 18         ; write "c!\n"
      addi a0, r0, 9
      trap 17
  msg:
      .word 0x000a2163
)";

constexpr const char* kSpawnerSrc = R"(
      addi a0, r0, 0
      trap 24         ; spawn(program 0)
      trap 25         ; waitpid -> child exit code
      addi a0, a0, 1
      trap 17
)";

}  // namespace

int main(int argc, char** argv) {
  ck::ObsSession obs(argc, argv, {"--serial"});
  bool parallel = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--serial") == 0) {
      parallel = false;
    }
  }
  Node a, b;
  obs.Attach(a.machine, &a.ck);
  obs.Attach(b.machine, &b.ck);
  // SRM lifecycle events (failover, failed restore preflights) trigger a
  // flight record when --flight-recorder=<dir> is armed.
  a.srm.set_event_hook([&obs](const std::string& what) { obs.DumpFlightRecord(what); });
  b.srm.set_event_hook([&obs](const std::string& what) { obs.DumpFlightRecord(what); });

  // Fiber channel: one device per node; the cluster connects the endpoints,
  // switches them to barrier-exchanged delivery and derives its lookahead
  // from the wire latency. Device regions are reserved by each SRM.
  uint32_t group_a = a.srm.ReserveGroups(1).value();
  uint32_t group_b = b.srm.ReserveGroups(1).value();
  cksim::FiberChannelDevice fc_a(a.machine.memory(), &a.ck, group_a * cksim::kPageGroupBytes, 4,
                                 4, 2500);
  cksim::FiberChannelDevice fc_b(b.machine.memory(), &b.ck, group_b * cksim::kPageGroupBytes, 4,
                                 4, 2500);
  cksim::Cluster cluster;
  cluster.AddMachine(&a.machine);
  cluster.AddMachine(&b.machine);
  cluster.Link(fc_a, fc_b);
  cluster.set_parallel(parallel);
  a.machine.AttachDevice(&fc_a);
  b.machine.AttachDevice(&fc_b);
  std::printf("cluster: %u machines, %s driver, lookahead %llu cycles\n",
              cluster.machine_count(), parallel ? "parallel" : "serial reference",
              static_cast<unsigned long long>(cluster.lookahead()));

  // One app kernel per node.
  ckapp::AppKernelBase app_a("dispatcher", 64), app_b("compute-node", 64);
  cksrm::LaunchParams params;
  params.page_groups = 2;
  a.srm.Launch(app_a, params);
  b.srm.Launch(app_b, params);
  a.srm.GrantSharedGroups(app_a, group_a, 1, ck::GroupAccess::kReadWrite);
  b.srm.GrantSharedGroups(app_b, group_b, 1, ck::GroupAccess::kReadWrite);

  ck::CkApi api_a(a.ck, app_a.self(), a.machine.cpu(0));
  ck::CkApi api_b(b.ck, app_b.self(), b.machine.cpu(0));
  uint32_t space_a = app_a.CreateSpace(api_a);
  uint32_t space_b = app_b.CreateSpace(api_b);

  // RPC: requests A->B, replies B->A. Op 1 = "sum of squares up to n".
  ckapp::MessageChannel requests, replies;
  ckapp::RpcServer server(requests, replies,
                          [](uint32_t op, const std::vector<uint8_t>& in, ck::CkApi&) {
    std::vector<uint8_t> out(8, 0);
    if (op == 1 && in.size() >= 4) {
      uint32_t n;
      std::memcpy(&n, in.data(), 4);
      uint64_t sum = 0;
      for (uint64_t i = 1; i <= n; ++i) {
        sum += i * i;
      }
      std::memcpy(out.data(), &sum, 8);
    }
    return out;
  });
  ckapp::RpcClient client(requests, replies);

  uint32_t server_thread = app_b.CreateNativeThread(api_b, space_b, &server, 16);
  uint32_t client_thread = app_a.CreateNativeThread(api_a, space_a, &client, 16);
  requests.ConfigureSender(app_a, space_a, 0x00800000, fc_a.tx_slot(0), 2);
  requests.ConfigureReceiver(app_b, space_b, 0x00900000, fc_b.rx_slot(0), 4, server_thread);
  replies.ConfigureSender(app_b, space_b, 0x00a00000, fc_b.tx_slot(2), 2);
  replies.ConfigureReceiver(app_a, space_a, 0x00b00000, fc_a.rx_slot(0), 4, client_thread);
  requests.PrimeReceiver(api_b);
  replies.PrimeReceiver(api_a);

  // Drive both machines through the cluster's window protocol. The predicate
  // is evaluated at barriers, where cross-machine state is quiescent.
  auto run_both = [&](const std::function<bool()>& done, cksim::Cycles max_cycles) {
    return cluster.RunUntilDone(done, max_cycles);
  };

  // Dispatch three jobs to node B.
  std::printf("dispatching jobs from node A to node B over the fiber channel...\n");
  for (uint32_t n = 10; n <= 30; n += 10) {
    uint64_t answer = 0;
    std::vector<uint8_t> arg(4);
    std::memcpy(arg.data(), &n, 4);
    client.Call(api_a, 1, arg, [&answer](const std::vector<uint8_t>& reply, ck::CkApi&) {
      std::memcpy(&answer, reply.data(), 8);
    });
    if (!run_both([&] { return answer != 0; }, cksim::Cycles{200000000})) {
      std::printf("  job n=%u: TIMED OUT\n", n);
      return 1;
    }
    std::printf("  sum of squares 1..%u = %llu (computed on node B)\n", n,
                static_cast<unsigned long long>(answer));
  }

  // A UNIX emulator on node A, checkpointed periodically to stable store
  // (simulated NVRAM reachable from both MPMs).
  std::printf("\nstarting UNIX emulator on node A, checkpointing to stable store...\n");
  cksim::StableStore store;
  ckunix::UnixEmulator emu_a(a.ck);
  cksrm::LaunchParams unix_params;
  unix_params.page_groups = 8;
  unix_params.max_priority = 31;
  unix_params.locked_kernel_object = true;
  a.srm.Launch(emu_a, unix_params);
  ck::CkApi unix_api(a.ck, emu_a.self(), a.machine.cpu(0));
  emu_a.Start(unix_api);
  emu_a.RegisterProgram(MustAssemble(kChildSrc));
  int ticker = emu_a.Exec(unix_api, MustAssemble(kTickerSrc));
  int spawner = emu_a.Exec(unix_api, MustAssemble(kSpawnerSrc));

  // Run until the ticker is mid-sequence, checkpointing as it goes.
  for (size_t target : {4u, 8u}) {
    run_both([&] { return emu_a.process(ticker).console.size() >= target; }, cksim::Cycles{200000000});
    if (a.srm.CheckpointToStore(emu_a, store, "unix-emulator") != ckbase::CkStatus::kOk) {
      std::printf("  checkpoint FAILED\n");
      return 1;
    }
    std::printf("  checkpoint at console=\"%s\" (%zu bytes to stable store)\n",
                emu_a.process(ticker).console.c_str(), store.bytes_written());
  }

  // Kill node A's MPM. Node B keeps serving local work.
  std::printf("\nsimulating MPM failure on node A (halt)...\n");
  a.machine.Halt();

  class LocalCounter : public ck::NativeProgram {
   public:
    ck::NativeOutcome Step(ck::NativeCtx& ctx) override {
      ctx.Charge(200);
      ++count;
      ck::NativeOutcome outcome;
      outcome.action = ck::NativeOutcome::Action::kYield;
      return outcome;
    }
    uint64_t count = 0;
  };
  LocalCounter counter;
  app_b.CreateNativeThread(api_b, space_b, &counter, 10);
  run_both([&] { return counter.count >= 1000; }, cksim::Cycles{200000000});

  std::printf("node B executed %llu work units after node A failed\n",
              static_cast<unsigned long long>(counter.count));
  std::printf("node A dead: %s\n", a.machine.Step() ? "NO (bug)" : "yes, contained");

  // Failover: the surviving SRM restarts the lost UNIX emulator from the
  // last stable-store image. Processes keep their pids; work done after the
  // checkpoint is redone from the captured state.
  std::printf("\nfailover: node B restores the UNIX emulator from the last checkpoint...\n");
  ckunix::UnixEmulator emu_b(b.ck);
  std::string error;
  if (b.srm.RestoreFromStore(emu_b, store, "unix-emulator", ckckpt::RestoreOptions{}, &error) !=
      ckbase::CkStatus::kOk) {
    std::printf("  restore FAILED: %s\n", error.c_str());
    return 1;
  }
  std::printf("  restored %u processes; resuming on node B\n", emu_b.process_count());
  if (!run_both([&] { return emu_b.AllExited(); }, cksim::Cycles{400000000})) {
    std::printf("  guest processes TIMED OUT on node B\n");
    return 1;
  }
  bool pids_stable = emu_b.process(ticker).pid == ticker && emu_b.process(spawner).pid == spawner;
  for (uint32_t p = 1; p <= emu_b.process_count(); ++p) {
    const ckunix::Process& proc = emu_b.process(p);
    std::printf("  pid %d: exit %d console \"%s\"\n", proc.pid, proc.exit_code,
                proc.console.c_str());
  }
  if (!pids_stable || emu_b.process(ticker).console != "tik.tik.tik.tik." ||
      emu_b.process(spawner).exit_code != 10) {
    std::printf("failover output WRONG\n");
    return 1;
  }
  obs.Finish();
  std::printf("multi-MPM OK: failure contained, lost kernel restarted from checkpoint\n");
  return 0;
}

// Section 5.3 reproduction: memory-based-messaging signal delivery.
//
// Paper: "The time to deliver a signal from one thread to another running on
// a separate processor is 71 microseconds, composed of 44 microseconds for
// signal delivery and 27 microseconds for the return from signal handler."
//
// We measure: (a) cross-processor delivery latency -- from the sender's
// Signal call to the receiving thread's handler observing the message, and
// (b) the return-from-signal-handler path, using a guest receiver running a
// real signal function. The reverse-TLB fast path and the slow two-stage
// lookup are reported separately (section 4.1).

#include "bench/bench_util.h"
#include "src/isa/assembler.h"

namespace {

class BenchKernel : public ckapp::AppKernelBase {
 public:
  BenchKernel() : ckapp::AppKernelBase("sigbench", 128) {}
};

}  // namespace

int main(int argc, char** argv) {
  ck::ObsSession obs(argc, argv);
  ckbench::ObsSlot() = &obs;
  ckbench::World world;
  BenchKernel app;
  world.Launch(app);
  ck::CkApi api = world.ApiFor(app);
  uint32_t space = app.CreateSpace(api);
  cksim::PhysAddr frame = app.frames().Allocate();

  // Guest receiver on cpu 1: handler increments a counter page and returns.
  ckisa::AssembleResult assembled = ckisa::Assemble(R"(
      li   t0, 0x00a00000
    wait:
      trap 3              ; await signal
      j    wait
    handler:
      li   t2, 0x00a00000
      lw   t3, 0(t2)
      addi t3, t3, 1
      sw   t3, 0(t2)
      trap 1              ; return from signal handler
  )", 0x10000);
  if (!assembled.ok) {
    std::printf("asm: %s\n", assembled.error.c_str());
    return 1;
  }
  app.LoadProgramImage(space, assembled.program, /*writable=*/false);
  app.DefineZeroRegion(space, 0x00a00000, 1, /*writable=*/true);

  ckapp::GuestThreadParams params;
  params.space_index = space;
  params.entry = 0x10000;
  params.cpu_hint = 1;  // separate processor from the sender (cpu 0)
  params.priority = 20;
  params.signal_handler = assembled.program.labels.at("handler");
  uint32_t receiver = app.CreateGuestThread(api, params);

  app.DefineFrameRegion(space, 0x00800000, 1, frame, /*writable=*/true, /*message=*/true);
  app.DefineFrameRegion(space, 0x00900000, 1, frame, /*writable=*/false, /*message=*/true,
                        receiver);
  app.EnsureMappingLoaded(api, space, 0x00800000);
  app.EnsureMappingLoaded(api, space, 0x00900000);

  // Counter page lives at a fixed frame so we can read it cheaply.
  auto count = [&]() -> uint32_t {
    ckapp::PageRecord* page = app.space(space).FindPage(0x00a00000);
    if (page == nullptr || page->where != ckapp::PageRecord::Where::kResident) {
      return 0;
    }
    uint32_t value = 0;
    api.ReadPhys(page->frame, &value, 4);
    return value;
  };

  // Let the receiver reach its await.
  world.RunUntil([&] {
    auto state = world.ck().GetThreadState(app.thread(receiver).ck_id);
    return state.ok() && state.value() == ck::ThreadState::kBlocked;
  });

  constexpr int kSignals = 100;
  ckbase::Stats latency;
  for (int i = 0; i < kSignals; ++i) {
    uint32_t before = count();
    cksim::Cycles sent_at = world.machine().cpu(0).clock();
    api.Signal(app.space(space).ck_id, 0x00800000);
    world.RunUntil([&] { return count() > before; });
    // Delivery latency as seen end-to-end: sender's call to the handler's
    // visible effect, on the receiver's clock.
    cksim::Cycles handled_at = world.machine().cpu(1).clock();
    latency.Add(ckbench::ToUs(handled_at - sent_at));
    // Let the handler finish its return and re-block.
    world.RunUntil([&] {
      auto state = world.ck().GetThreadState(app.thread(receiver).ck_id);
      return state.ok() && state.value() == ck::ThreadState::kBlocked;
    });
  }

  const ck::CkStats& stats = world.ck().stats();
  const cksim::CostModel& cost = world.machine().cost();

  ckbench::Title("Section 5.3: cross-processor signal delivery");
  std::printf("%-52s %10s\n", "", "us");
  ckbench::Rule();
  std::printf("%-52s %10.0f\n", "paper: total (deliver + return from handler)", 71.0);
  std::printf("%-52s %10.0f\n", "paper:   signal delivery component", 44.0);
  std::printf("%-52s %10.0f\n", "paper:   return-from-handler component", 27.0);
  std::printf("%-52s %10.1f\n", "simulated: end-to-end (call -> handler ran), mean",
              latency.Mean());
  std::printf("%-52s %10.1f\n", "simulated:   p95", latency.Percentile(95));
  std::printf("%-52s %10.1f\n", "simulated:   charged return-from-handler path",
              ckbench::ToUs(cost.signal_return));
  ckbench::Rule();
  std::printf("deliveries: fast (reverse-TLB hit) %llu, slow (two-stage pmap lookup) %llu\n",
              static_cast<unsigned long long>(stats.signals_delivered_fast),
              static_cast<unsigned long long>(stats.signals_delivered_slow));
  std::printf("fast-path cost %0.f us vs slow-path %0.f us (charged)\n",
              ckbench::ToUs(cost.signal_deliver_fast), ckbench::ToUs(cost.signal_deliver_slow));
  ckbench::Note("shape checks: tens of microseconds end-to-end; delivery dominated by the");
  ckbench::Note("IPI + rescheduling of the receiving thread; reverse-TLB hits make repeat");
  ckbench::Note("deliveries cheaper than the first (sections 4.1, 5.3).");

  // --- Addendum: thread-teardown signal-record reclaim ---
  //
  // Unloading a thread frees its Signal records. The records are chained per
  // thread (through their spare context bits, heads in a kernel side array),
  // so teardown walks O(registrations) records regardless of how full the
  // 65536-entry memory map is. Before the chain, teardown scanned the whole
  // record arena -- O(capacity) host work per thread unload, growing with
  // occupancy. The simulated cost is one hash_op per removed record either
  // way; the win is host-side. The table sweeps map occupancy with filler
  // PhysToVirt records and shows teardown host time staying flat.
  class NopProgram : public ck::NativeProgram {
   public:
    ck::NativeOutcome Step(ck::NativeCtx& ctx) override {
      ctx.Charge(100);
      ck::NativeOutcome outcome;
      outcome.action = ck::NativeOutcome::Action::kYield;
      return outcome;
    }
  };
  NopProgram nop;
  constexpr uint32_t kRegistrations = 4;
  constexpr int kReps = 5;
  // Filler mappings rotate over a few frames so no single pmap hash chain
  // degenerates; each (frame, vaddr) pair is a distinct record.
  constexpr uint32_t kFillerFrames = 64;
  std::vector<cksim::PhysAddr> filler_frames;
  for (uint32_t i = 0; i < kFillerFrames; ++i) {
    filler_frames.push_back(app.frames().Allocate());
  }

  ckbench::Title("Section 5.3 addendum: signal-record reclaim at thread teardown");
  std::printf("  %-22s %-16s %18s %16s\n", "filler pv records", "registrations",
              "teardown host ns", "sim cycles");
  ckbench::Rule();

  uint32_t filler_loaded = 0;
  uint32_t next_vpage = 0;
  // One warmup teardown so the first measured row isn't cold-cache noise.
  app.UnloadThreadByIndex(api, app.CreateNativeThread(api, space, &nop, 5));
  for (uint32_t occupancy : {0u, 8192u, 32768u}) {
    // Top the map up to `occupancy` filler records (same few frames, fresh
    // virtual pages; teardown never visits them -- that is the point).
    while (filler_loaded < occupancy) {
      cksim::VirtAddr va = 0x01000000 + (next_vpage++) * cksim::kPageSize;
      app.DefineFrameRegion(space, va, 1, filler_frames[filler_loaded % kFillerFrames],
                            /*writable=*/false, /*message=*/false);
      app.EnsureMappingLoaded(api, space, va);
      ++filler_loaded;
    }

    double total_ns = 0;
    cksim::Cycles total_cycles = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      uint32_t victim = app.CreateNativeThread(api, space, &nop, 5);
      for (uint32_t r = 0; r < kRegistrations; ++r) {
        cksim::VirtAddr va = 0x02000000 + (next_vpage++) * cksim::kPageSize;
        app.DefineFrameRegion(space, va, 1, filler_frames[r % kFillerFrames],
                              /*writable=*/false, /*message=*/true, victim);
        app.EnsureMappingLoaded(api, space, va);
      }
      total_cycles += ckbench::MeasureCycles(world.machine().cpu(0), [&] {
        total_ns += ckbench::MeasureHostNs([&] { app.UnloadThreadByIndex(api, victim); });
      });
    }
    std::printf("  %-22u %-16u %18.0f %16.0f\n", occupancy, kRegistrations, total_ns / kReps,
                static_cast<double>(total_cycles) / kReps);
  }
  ckbench::Rule();
  ckbench::Note("host ns flat across occupancy = O(registrations) chain walk; the previous");
  ckbench::Note("arena scan grew linearly with the 65536-record map. sim cycles unchanged");
  ckbench::Note("by design: one hash_op per removed record (plus the thread writeback).");
  obs.Finish();
  return 0;
}

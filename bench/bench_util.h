// Shared benchmark harness utilities.
//
// Every bench prints a paper-style table with three kinds of columns:
//   * paper:    the value reported in the OSDI '94 paper (where given)
//   * simulated: our measurement in simulated microseconds (25 MHz cycle
//                clock driven by the cost model in src/sim/cost.h)
//   * host:     wall-clock nanoseconds of the implementation itself, for
//                reference (not comparable to the paper)
// The claim being reproduced is the SHAPE of each result -- orderings,
// ratios, crossovers -- not absolute microseconds; see EXPERIMENTS.md.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>

#include "src/appkernel/app_kernel_base.h"
#include "src/base/histogram.h"
#include "src/ck/cache_kernel.h"
#include "src/ck/observability.h"
#include "src/sim/machine.h"
#include "src/srm/srm.h"

namespace ckbench {

// Process-wide observability session. main() parses flags into an ObsSession
// and parks a pointer here; the first World constructed attaches to it (even
// when worlds are built inside helper functions) and flushes it on
// destruction, so --trace / --metrics work in every bench without plumbing.
inline ck::ObsSession*& ObsSlot() {
  static ck::ObsSession* slot = nullptr;
  return slot;
}

// One MPM world (machine + Cache Kernel + SRM), same shape as the tests use.
class World {
 public:
  explicit World(const ck::CacheKernelConfig& ck_config = ck::CacheKernelConfig(),
                 uint32_t memory_bytes = 16u << 20, uint32_t cpus = 4) {
    cksim::MachineConfig machine_config;
    machine_config.cpu_count = cpus;
    machine_config.memory_bytes = memory_bytes;
    machine_ = std::make_unique<cksim::Machine>(machine_config);
    ck_ = std::make_unique<ck::CacheKernel>(*machine_, ck_config);
    srm_ = std::make_unique<cksrm::Srm>(*ck_);
    srm_->Boot();
    if (ck::ObsSession* obs = ObsSlot()) {
      obs->Attach(*machine_, ck_.get());
    }
  }

  ~World() {
    ck::ObsSession* obs = ObsSlot();
    if (obs != nullptr && obs->attached(*machine_)) {
      obs->Finish();
    }
  }

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  cksim::Machine& machine() { return *machine_; }
  ck::CacheKernel& ck() { return *ck_; }
  cksrm::Srm& srm() { return *srm_; }

  ck::KernelId Launch(ckapp::AppKernelBase& app, uint32_t page_groups = 4,
                      uint8_t max_priority = 30) {
    cksrm::LaunchParams params;
    params.page_groups = page_groups;
    params.max_priority = max_priority;
    auto result = srm_->Launch(app, params);
    return result.ok() ? result.value() : ck::KernelId{};
  }

  ck::CkApi ApiFor(ckapp::AppKernelBase& app, uint32_t cpu = 0) {
    return ck::CkApi(*ck_, app.self(), machine_->cpu(cpu));
  }

  bool RunUntil(const std::function<bool()>& done, uint64_t max_turns = 5000000) {
    for (uint64_t i = 0; i < max_turns; ++i) {
      if (done()) {
        return true;
      }
      machine_->Step();
    }
    return done();
  }

 private:
  std::unique_ptr<cksim::Machine> machine_;
  std::unique_ptr<ck::CacheKernel> ck_;
  std::unique_ptr<cksrm::Srm> srm_;
};

// Measure the simulated cycles one operation takes on `cpu`.
template <typename Fn>
cksim::Cycles MeasureCycles(cksim::Cpu& cpu, Fn&& fn) {
  cksim::Cycles before = cpu.clock();
  fn();
  return cpu.clock() - before;
}

// Measure host nanoseconds.
template <typename Fn>
double MeasureHostNs(Fn&& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(end - start).count();
}

inline double ToUs(cksim::Cycles cycles) { return cksim::CostModel::ToMicroseconds(cycles); }

// --- table printing ---

inline void Title(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void Note(const std::string& text) { std::printf("%s\n", text.c_str()); }

inline void Rule() {
  std::printf("------------------------------------------------------------------------------\n");
}

// Print one distribution as a table row: count, mean, percentiles, spread.
// Units are whatever the caller put into the Stats (usually simulated us).
inline void StatsRow(const std::string& label, const ckbase::Stats& s) {
  if (s.count() == 0) {
    std::printf("  %-26s (no samples)\n", label.c_str());
    return;
  }
  std::printf("  %-26s n=%-7llu mean=%9.2f p50=%9.2f p95=%9.2f sd=%8.2f max=%9.2f\n",
              label.c_str(), static_cast<unsigned long long>(s.count()), s.Mean(),
              s.Percentile(50.0), s.Percentile(95.0), s.StdDev(), s.Max());
}

}  // namespace ckbench

#endif  // BENCH_BENCH_UTIL_H_

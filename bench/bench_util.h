// Shared benchmark harness utilities.
//
// Every bench prints a paper-style table with three kinds of columns:
//   * paper:    the value reported in the OSDI '94 paper (where given)
//   * simulated: our measurement in simulated microseconds (25 MHz cycle
//                clock driven by the cost model in src/sim/cost.h)
//   * host:     wall-clock nanoseconds of the implementation itself, for
//                reference (not comparable to the paper)
// The claim being reproduced is the SHAPE of each result -- orderings,
// ratios, crossovers -- not absolute microseconds; see EXPERIMENTS.md.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>

#include "src/appkernel/app_kernel_base.h"
#include "src/base/histogram.h"
#include "src/ck/cache_kernel.h"
#include "src/sim/machine.h"
#include "src/srm/srm.h"

namespace ckbench {

// One MPM world (machine + Cache Kernel + SRM), same shape as the tests use.
class World {
 public:
  explicit World(const ck::CacheKernelConfig& ck_config = ck::CacheKernelConfig(),
                 uint32_t memory_bytes = 16u << 20, uint32_t cpus = 4) {
    cksim::MachineConfig machine_config;
    machine_config.cpu_count = cpus;
    machine_config.memory_bytes = memory_bytes;
    machine_ = std::make_unique<cksim::Machine>(machine_config);
    ck_ = std::make_unique<ck::CacheKernel>(*machine_, ck_config);
    srm_ = std::make_unique<cksrm::Srm>(*ck_);
    srm_->Boot();
  }

  cksim::Machine& machine() { return *machine_; }
  ck::CacheKernel& ck() { return *ck_; }
  cksrm::Srm& srm() { return *srm_; }

  ck::KernelId Launch(ckapp::AppKernelBase& app, uint32_t page_groups = 4,
                      uint8_t max_priority = 30) {
    cksrm::LaunchParams params;
    params.page_groups = page_groups;
    params.max_priority = max_priority;
    auto result = srm_->Launch(app, params);
    return result.ok() ? result.value() : ck::KernelId{};
  }

  ck::CkApi ApiFor(ckapp::AppKernelBase& app, uint32_t cpu = 0) {
    return ck::CkApi(*ck_, app.self(), machine_->cpu(cpu));
  }

  bool RunUntil(const std::function<bool()>& done, uint64_t max_turns = 5000000) {
    for (uint64_t i = 0; i < max_turns; ++i) {
      if (done()) {
        return true;
      }
      machine_->Step();
    }
    return done();
  }

 private:
  std::unique_ptr<cksim::Machine> machine_;
  std::unique_ptr<ck::CacheKernel> ck_;
  std::unique_ptr<cksrm::Srm> srm_;
};

// Measure the simulated cycles one operation takes on `cpu`.
template <typename Fn>
cksim::Cycles MeasureCycles(cksim::Cpu& cpu, Fn&& fn) {
  cksim::Cycles before = cpu.clock();
  fn();
  return cpu.clock() - before;
}

// Measure host nanoseconds.
template <typename Fn>
double MeasureHostNs(Fn&& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(end - start).count();
}

inline double ToUs(cksim::Cycles cycles) { return cksim::CostModel::ToMicroseconds(cycles); }

// --- table printing ---

inline void Title(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void Note(const std::string& text) { std::printf("%s\n", text.c_str()); }

inline void Rule() {
  std::printf("------------------------------------------------------------------------------\n");
}

}  // namespace ckbench

#endif  // BENCH_BENCH_UTIL_H_

// Section 5.1 reproduction: code size comparison.
//
// Paper: "the virtual memory code in the Cache Kernel is a little under
// 1,500 lines of C++ code, whereas the V kernel virtual memory support for
// the same hardware is 13,087 lines ... Ultrix 23,400 ... SunOS 14,400 ...
// Mach a little over 20,000. In total, the Cache Kernel consists of 14,958
// lines of C++ code, of which roughly 6000 lines (40 percent) is PROM
// monitor, remote debugging and booting support."
//
// We count the equivalent partitions of this repository (supervisor code vs.
// hardware substrate vs. user-level libraries) at run time by reading the
// source tree, and print them against the paper's numbers.

#include <cstdio>

#include "src/ck/observability.h"
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

uint64_t CountLines(const fs::path& path) {
  std::ifstream in(path);
  uint64_t lines = 0;
  std::string line;
  while (std::getline(in, line)) {
    ++lines;
  }
  return lines;
}

uint64_t CountDir(const fs::path& dir) {
  uint64_t total = 0;
  if (!fs::exists(dir)) {
    return 0;
  }
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    const std::string ext = entry.path().extension().string();
    if (ext == ".cc" || ext == ".h") {
      total += CountLines(entry.path());
    }
  }
  return total;
}

fs::path FindRepoRoot() {
  // Walk up from the executable's directory until we find src/ck.
  fs::path p = fs::current_path();
  for (int depth = 0; depth < 6; ++depth) {
    if (fs::exists(p / "src" / "ck")) {
      return p;
    }
    p = p.parent_path();
  }
  return fs::current_path();
}

}  // namespace

int main(int argc, char** argv) {
  ck::ObsSession obs(argc, argv);  // accepts --trace/--metrics; nothing to observe here
  fs::path root = FindRepoRoot();
  uint64_t ck_lines = CountDir(root / "src" / "ck");
  uint64_t base_lines = CountDir(root / "src" / "base");
  uint64_t sim_lines = CountDir(root / "src" / "sim");
  uint64_t isa_lines = CountDir(root / "src" / "isa");
  uint64_t appkernel_lines = CountDir(root / "src" / "appkernel");
  uint64_t srm_lines = CountDir(root / "src" / "srm");
  uint64_t emulators = CountDir(root / "src" / "unixemu") + CountDir(root / "src" / "mp3d") +
                       CountDir(root / "src" / "db") + CountDir(root / "src" / "rt") +
                       CountDir(root / "src" / "dsm");
  uint64_t prom_lines = CountDir(root / "src" / "prom");

  std::printf("\n=== Section 5.1: code size (lines) ===\n");
  std::printf("paper's comparison of VIRTUAL MEMORY system code:\n");
  std::printf("  %-36s %8s\n", "system", "lines");
  std::printf("  %-36s %8d\n", "Cache Kernel VM code", 1500);
  std::printf("  %-36s %8d\n", "V kernel VM (same hardware)", 13087);
  std::printf("  %-36s %8d\n", "Ultrix 4.1 (MIPS) VM", 23400);
  std::printf("  %-36s %8d\n", "SunOS 4.1.2 (Sparc) VM", 14400);
  std::printf("  %-36s %8d\n", "Mach (MIPS) VM", 20000);
  std::printf("  %-36s %8d  (40%% PROM monitor/debug/boot)\n", "Cache Kernel total", 14958);

  std::printf("\nthis reproduction (src/, .cc+.h):\n");
  std::printf("  %-46s %8llu\n", "cache kernel (supervisor: src/ck)",
              static_cast<unsigned long long>(ck_lines));
  std::printf("  %-46s %8llu\n", "base runtime (src/base)",
              static_cast<unsigned long long>(base_lines));
  std::printf("  %-46s %8llu  (not kernel code: stands in for the MPM)\n",
              "simulated hardware (src/sim)", static_cast<unsigned long long>(sim_lines));
  std::printf("  %-46s %8llu  (not kernel code: guest CPU + assembler)\n",
              "guest ISA (src/isa)", static_cast<unsigned long long>(isa_lines));
  std::printf("  %-46s %8llu  (user mode, per the paper's design)\n",
              "application-kernel class libraries", static_cast<unsigned long long>(appkernel_lines));
  std::printf("  %-46s %8llu  (user mode)\n", "system resource manager",
              static_cast<unsigned long long>(srm_lines));
  std::printf("  %-46s %8llu  (user mode)\n", "emulators + specialized kernels (+DSM)",
              static_cast<unsigned long long>(emulators));
  std::printf("  %-46s %8llu  (netboot + remote debug -- the paper's\n", "PROM monitor analog",
              static_cast<unsigned long long>(prom_lines));
  std::printf("  %-46s %8s   'PROM monitor ... 40 percent' partition)\n", "", "");

  std::printf("\nshape checks:\n");
  uint64_t supervisor = ck_lines + base_lines;
  uint64_t user_level = appkernel_lines + srm_lines + emulators;
  std::printf("  supervisor-mode code (%llu) is a small fraction of the system, with OS\n",
              static_cast<unsigned long long>(supervisor));
  std::printf("  policy (%llu lines) living in user mode -- the structural claim of the\n",
              static_cast<unsigned long long>(user_level));
  std::printf("  caching model. The paper's supervisor was ~9k lines net of PROM support;\n");
  std::printf("  ours stays well inside the monolithic-VM-system line counts above.\n");
  obs.Finish();
  return 0;
}

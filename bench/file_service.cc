// Distributed file-service performance (src/fs, docs/FILESERVICE.md).
//
// BM_FileServiceScan/N: one server, N clients scanning the same tree.
//   cold_cycles_per_page   simulated cycles per page, demand paging over the
//                          wire (wire latency 2500 each way + server time,
//                          amortized by pipelined read-ahead)
//   warm_cycles_per_page   the same scan out of the client cache
//   warm_speedup           cold / warm (acceptance: >= 10x)
//   warm_wire_msgs         packets+bulk that crossed any link during the
//                          warm scan (acceptance: 0 -- hits cost no wire
//                          traffic)
//   Every measurement also replays the cold phase under the host-parallel
//   cluster driver and fails if any final clock diverges from the serial
//   reference.
//
// BM_FileServiceReadahead/0|1: read-ahead off vs on, one client.
//   demand_stalls          polls that found the demand page still on the
//                          wire (the stall read-ahead exists to hide)
//   readahead_issued/useful
//   cold_cycles_per_page
//
// Simulated-cycle counters are deterministic; host wall-clock (the benchmark
// time) is secondary. scripts/bench.sh records this as
// BENCH_file_service.json.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "src/ck/observability.h"
#include "src/fs/fs_cluster.h"

namespace {

constexpr uint32_t kFiles = 4;
constexpr uint32_t kFilePages = 8;

ckfs::FsClusterConfig MakeConfig(uint32_t clients, bool readahead) {
  ckfs::FsClusterConfig config;
  config.clients = clients;
  config.files = kFiles;
  config.file_pages = kFilePages;
  config.scan_rounds = 1;
  config.cache.readahead = readahead;
  return config;
}

struct ScanMetrics {
  double cold_cycles_per_page = 0;
  double warm_cycles_per_page = 0;
  double warm_wire_msgs = 0;
  double hits = 0;
  double misses = 0;
  double readahead_issued = 0;
  double readahead_useful = 0;
  double demand_stalls = 0;
  std::vector<cksim::Cycles> cold_clocks;
  bool ok = false;
};

// Cold scan then warm re-scan; per-page cycle costs averaged over clients.
ScanMetrics RunScan(uint32_t clients, bool readahead, bool parallel) {
  ScanMetrics m;
  ckfs::FsClusterConfig config = MakeConfig(clients, readahead);
  config.parallel = parallel;
  ckfs::FsCluster world(config);
  if (!world.Run()) {
    return m;
  }
  const double pages = static_cast<double>(kFiles * kFilePages);
  std::vector<cksim::Cycles> cold_now;
  std::vector<uint64_t> cold_traffic;
  for (uint32_t c = 0; c < clients; ++c) {
    if (!world.workload(c).done() || world.workload(c).failed()) {
      return m;
    }
    m.cold_cycles_per_page += static_cast<double>(world.client_machine(c).Now()) / pages;
    cold_now.push_back(world.client_machine(c).Now());
    cold_traffic.push_back(world.WireTraffic(c));
    world.workload(c).Resume(1);
  }
  m.cold_clocks = world.FinalClocks();
  if (!world.Run()) {
    return m;
  }
  for (uint32_t c = 0; c < clients; ++c) {
    if (!world.workload(c).done() || world.workload(c).failed()) {
      return m;
    }
    m.warm_cycles_per_page +=
        static_cast<double>(world.client_machine(c).Now() - cold_now[c]) / pages;
    m.warm_wire_msgs += static_cast<double>(world.WireTraffic(c) - cold_traffic[c]);
    const ckfs::FsClientStats& s = world.cache(c).stats();
    m.hits += static_cast<double>(s.hits);
    m.misses += static_cast<double>(s.misses);
    m.readahead_issued += static_cast<double>(s.readahead_issued);
    m.readahead_useful += static_cast<double>(s.readahead_useful);
    m.demand_stalls += static_cast<double>(s.demand_stalls);
  }
  m.cold_cycles_per_page /= clients;
  m.warm_cycles_per_page /= clients;
  m.ok = true;
  return m;
}

void BM_FileServiceScan(benchmark::State& state) {
  uint32_t clients = static_cast<uint32_t>(state.range(0));
  ScanMetrics m;
  for (auto _ : state) {
    m = RunScan(clients, /*readahead=*/true, /*parallel=*/false);
    if (!m.ok) {
      state.SkipWithError("file-service scan failed");
      return;
    }
    if (m.warm_wire_msgs != 0) {
      state.SkipWithError("warm scan touched the wire");
      return;
    }
    if (m.warm_cycles_per_page * 10 > m.cold_cycles_per_page) {
      state.SkipWithError("warm scan not >= 10x faster than cold");
      return;
    }
    // Differential: the cold phase under the host-parallel driver must land
    // on bit-identical machine clocks.
    ScanMetrics par = RunScan(clients, /*readahead=*/true, /*parallel=*/true);
    if (!par.ok || par.cold_clocks != m.cold_clocks) {
      state.SkipWithError("parallel cluster driver diverged from serial reference");
      return;
    }
  }
  state.counters["clients"] = static_cast<double>(clients);
  state.counters["cold_cycles_per_page"] = m.cold_cycles_per_page;
  state.counters["warm_cycles_per_page"] = m.warm_cycles_per_page;
  state.counters["warm_speedup"] =
      m.warm_cycles_per_page > 0 ? m.cold_cycles_per_page / m.warm_cycles_per_page : 0;
  state.counters["warm_wire_msgs"] = m.warm_wire_msgs;
  state.counters["hits"] = m.hits;
  state.counters["misses"] = m.misses;
}
BENCHMARK(BM_FileServiceScan)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

void BM_FileServiceReadahead(benchmark::State& state) {
  bool readahead = state.range(0) != 0;
  ScanMetrics m;
  for (auto _ : state) {
    m = RunScan(/*clients=*/1, readahead, /*parallel=*/false);
    if (!m.ok) {
      state.SkipWithError("file-service scan failed");
      return;
    }
    if (readahead && m.readahead_useful == 0) {
      state.SkipWithError("read-ahead enabled but never useful");
      return;
    }
  }
  state.counters["readahead"] = readahead ? 1 : 0;
  state.counters["demand_stalls"] = m.demand_stalls;
  state.counters["readahead_issued"] = m.readahead_issued;
  state.counters["readahead_useful"] = m.readahead_useful;
  state.counters["cold_cycles_per_page"] = m.cold_cycles_per_page;
}
BENCHMARK(BM_FileServiceReadahead)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

}  // namespace

int main(int argc, char** argv) {
  ck::ObsSession obs(argc, argv);
#ifdef NDEBUG
  benchmark::AddCustomContext("binary_build_type", "release");
#else
  benchmark::AddCustomContext("binary_build_type", "debug");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

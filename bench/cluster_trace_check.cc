// Validates a merged multi-machine trace produced by the multi-MPM example
// (or any cluster binary) under --trace:
//
//   * the document is valid JSON (same lint as trace_check);
//   * it contains at least two exported processes (one per machine);
//   * every causal flow finish ("ph":"f") has a matching flow start
//     ("ph":"s") with the same span id -- i.e. every cross-machine span has
//     a parent;
//   * at least one flow pair actually crosses machines (start and finish on
//     different pids);
//   * the profiler section ("ckProfile") is present when expected.
//
// Any additional arguments are flight-recorder files; each must decode
// CRC-clean (src/obs/flight_recorder.h) and carry trace events.
//
//   $ ./multi_mpm --trace=/tmp/mm.json --profile --flight-recorder=/tmp/fr
//   $ ./cluster_trace_check /tmp/mm.json /tmp/fr/flight-m0-failover.ckfr ...

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/flight_recorder.h"
#include "src/obs/json_lint.h"

namespace {

// Extract the integer value of `"key":` in `line`, or -1 if absent. The
// exporter emits one event object per line with fixed key order, so a line
// scan is sufficient (the whole document is JsonLinted first).
long long FindInt(const std::string& line, const std::string& key) {
  std::string needle = "\"" + key + "\":";
  size_t pos = line.find(needle);
  if (pos == std::string::npos) {
    return -1;
  }
  return std::atoll(line.c_str() + pos + needle.size());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <trace.json> [flight-record.ckfr ...]\n", argv[0]);
    return 2;
  }
  std::ifstream in(argv[1], std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cluster_trace_check: cannot open %s\n", argv[1]);
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string text = buffer.str();

  std::string error;
  if (!obs::JsonLint(text, &error)) {
    std::fprintf(stderr, "cluster_trace_check: %s: invalid JSON: %s\n", argv[1], error.c_str());
    return 1;
  }
  if (text.find("\"traceEvents\"") == std::string::npos) {
    std::fprintf(stderr, "cluster_trace_check: %s: no traceEvents key\n", argv[1]);
    return 1;
  }
  if (text.find("\"ckProfile\"") == std::string::npos) {
    std::fprintf(stderr, "cluster_trace_check: %s: no ckProfile section\n", argv[1]);
    return 1;
  }

  // One event object per line; collect pids and causal flow endpoints.
  std::set<long long> pids;
  std::map<long long, long long> flow_start_pid;   // span id -> sender pid
  std::map<long long, long long> flow_finish_pid;  // span id -> receiver pid
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    long long pid = FindInt(line, "pid");
    if (pid < 0) {
      continue;
    }
    pids.insert(pid);
    if (line.find("\"cat\":\"span\"") == std::string::npos) {
      continue;
    }
    long long id = FindInt(line, "id");
    if (id < 0) {
      continue;
    }
    if (line.find("\"ph\":\"s\"") != std::string::npos) {
      flow_start_pid[id] = pid;
    } else if (line.find("\"ph\":\"f\"") != std::string::npos) {
      flow_finish_pid[id] = pid;
    }
  }

  if (pids.size() < 2) {
    std::fprintf(stderr, "cluster_trace_check: %s: expected >=2 machine processes, got %zu\n",
                 argv[1], pids.size());
    return 1;
  }
  size_t cross_machine = 0;
  for (const auto& [id, pid] : flow_finish_pid) {
    auto it = flow_start_pid.find(id);
    if (it == flow_start_pid.end()) {
      std::fprintf(stderr,
                   "cluster_trace_check: %s: span %lld received on pid %lld has no parent send\n",
                   argv[1], id, pid);
      return 1;
    }
    if (it->second != pid) {
      ++cross_machine;
    }
  }
  if (flow_finish_pid.empty()) {
    std::fprintf(stderr, "cluster_trace_check: %s: no causal flow events at all\n", argv[1]);
    return 1;
  }
  if (cross_machine == 0) {
    std::fprintf(stderr, "cluster_trace_check: %s: no flow pair crosses machines\n", argv[1]);
    return 1;
  }

  // Flight records, if any, must decode CRC-clean.
  for (int i = 2; i < argc; ++i) {
    std::vector<uint8_t> bytes;
    if (!obs::ReadFlightRecordFile(argv[i], &bytes)) {
      std::fprintf(stderr, "cluster_trace_check: cannot read %s\n", argv[i]);
      return 1;
    }
    obs::FlightRecordData record;
    if (!obs::DecodeFlightRecord(bytes, &record, &error)) {
      std::fprintf(stderr, "cluster_trace_check: %s: %s\n", argv[i], error.c_str());
      return 1;
    }
    if (record.events.empty()) {
      std::fprintf(stderr, "cluster_trace_check: %s: no trace events captured\n", argv[i]);
      return 1;
    }
    std::printf("cluster_trace_check: %s OK (reason \"%s\", %zu events, %zu metrics bytes)\n",
                argv[i], record.reason.c_str(), record.events.size(),
                record.metrics_text.size());
  }

  std::printf(
      "cluster_trace_check: %s OK (%zu bytes, %zu machines, %zu spans, %zu cross-machine)\n",
      argv[1], text.size(), pids.size(), flow_finish_pid.size(), cross_machine);
  return 0;
}

// S3: the MP3D page-locality experiment (section 5.2).
//
// "We measured up to a 25 percent degradation in performance in the MP3D
// program ... from processors accessing particles scattered across too many
// pages. The solution with MP3D was to enforce page locality as well as
// cache line locality by copying particles in some cases as they moved
// between processors during the computation."
//
// We run the mini-MP3D in both placements across problem sizes and report
// step time, TLB misses, and the locality-copy overhead the fix pays.

#include "bench/bench_util.h"
#include "src/mp3d/mp3d_kernel.h"

namespace {

struct Row {
  uint32_t particles;
  double scattered_ms;
  double local_ms;
  double degradation_pct;
  uint64_t scattered_misses;
  uint64_t local_misses;
  uint64_t copies;
};

double RunMode(uint32_t particles, ckmp3d::Placement placement, uint32_t steps,
               uint64_t* misses_out, uint64_t* copies_out) {
  ckbench::World world;
  ckmp3d::Mp3dConfig config;
  config.particles = particles;
  config.cells = 64;
  config.workers = 4;
  config.placement = placement;
  ckmp3d::Mp3dKernel mp3d(world.ck(), config);
  world.Launch(mp3d, /*page_groups=*/8);
  ck::CkApi api = world.ApiFor(mp3d);
  mp3d.Setup(api);

  mp3d.RunSteps(2);  // warm up: fault pages in, mix particles
  for (uint32_t c = 0; c < world.machine().cpu_count(); ++c) {
    world.machine().cpu(c).mmu().tlb().ResetStats();
  }
  cksim::Cycles elapsed = mp3d.RunSteps(steps);

  uint64_t misses = 0;
  for (uint32_t c = 0; c < world.machine().cpu_count(); ++c) {
    misses += world.machine().cpu(c).mmu().tlb().misses();
  }
  *misses_out = misses;
  *copies_out = mp3d.sim_stats().locality_copies;
  return ckbench::ToUs(elapsed) / 1000.0 / steps;  // ms per step
}

}  // namespace

int main(int argc, char** argv) {
  ck::ObsSession obs(argc, argv);
  ckbench::ObsSlot() = &obs;
  constexpr uint32_t kSteps = 5;
  ckbench::Title("S3: MP3D page locality (ms per step; 64 cells, 4 workers)");
  std::printf("%10s | %12s %12s %12s | %11s %11s %9s\n", "particles", "scattered",
              "locality", "degradation", "scat misses", "loc misses", "copies");
  ckbench::Rule();
  for (uint32_t particles : {4096u, 8192u, 16384u, 32768u}) {
    Row row;
    row.particles = particles;
    row.scattered_ms =
        RunMode(particles, ckmp3d::Placement::kScattered, kSteps, &row.scattered_misses,
                &row.copies);
    uint64_t dummy_copies;
    row.local_ms = RunMode(particles, ckmp3d::Placement::kLocalityAware, kSteps,
                           &row.local_misses, &dummy_copies);
    row.copies = dummy_copies;
    row.degradation_pct = 100.0 * (row.scattered_ms - row.local_ms) / row.local_ms;
    std::printf("%10u | %10.2fms %10.2fms %11.1f%% | %11llu %11llu %9llu\n", row.particles,
                row.scattered_ms, row.local_ms, row.degradation_pct,
                static_cast<unsigned long long>(row.scattered_misses),
                static_cast<unsigned long long>(row.local_misses),
                static_cast<unsigned long long>(row.copies));
  }
  ckbench::Rule();
  ckbench::Note("shape checks: once the particle array exceeds the TLB reach (64 entries x");
  ckbench::Note("4 KiB), scattered placement degrades step time by tens of percent (the paper");
  ckbench::Note("reported up to 25%); enforcing locality by copying on migration removes");
  ckbench::Note("nearly all TLB misses at the price of the copy work, which the application");
  ckbench::Note("kernel can decide to pay because the memory is its own (sections 3, 5.2).");
  obs.Finish();
  return 0;
}

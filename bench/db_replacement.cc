// A4: application-controlled page replacement in the database kernel
// (sections 1 and 3). "The standard page-replacement policies of UNIX-like
// operating systems perform poorly for applications with random or
// sequential access [Kearns & DeFazio]." Because the buffer-pool policy is
// the application kernel's own code, the database picks MRU for sequential
// scans and LRU for skewed point lookups -- this bench shows both workloads
// under all three policies.

#include "bench/bench_util.h"
#include "src/db/db_kernel.h"

namespace {

struct Row {
  const char* policy;
  double scan_us;
  double scan_hit_rate;
  double point_us;
  double point_hit_rate;
};

Row Run(ckdb::Replacement policy, const char* name) {
  ckbench::World world;
  ckdb::DbConfig config;
  config.table_pages = 96;
  config.buffer_pages = 64;
  config.policy = policy;
  ckdb::DbKernel db(world.ck(), config);
  world.Launch(db, /*page_groups=*/4);
  ck::CkApi api = world.ApiFor(db);
  db.Setup(api);
  while (db.frames().free_count() > config.buffer_pages) {
    db.frames().Allocate();  // trim the pool to the buffer size
  }

  // Sequential scans: one cold + three measured.
  db.RunScan();
  uint64_t hits0 = db.query_stats().buffer_hits;
  uint64_t miss0 = db.query_stats().buffer_misses;
  cksim::Cycles start = world.machine().Now();
  for (int i = 0; i < 3; ++i) {
    db.RunScan();
  }
  cksim::Cycles scan_cycles = world.machine().Now() - start;
  uint64_t scan_hits = db.query_stats().buffer_hits - hits0;
  uint64_t scan_misses = db.query_stats().buffer_misses - miss0;

  // Point lookups (uniform random rows).
  hits0 = db.query_stats().buffer_hits;
  miss0 = db.query_stats().buffer_misses;
  start = world.machine().Now();
  db.RunPointLookups(512);
  cksim::Cycles point_cycles = world.machine().Now() - start;
  uint64_t point_hits = db.query_stats().buffer_hits - hits0;
  uint64_t point_misses = db.query_stats().buffer_misses - miss0;

  Row row;
  row.policy = name;
  row.scan_us = ckbench::ToUs(scan_cycles) / 3.0;
  row.scan_hit_rate =
      100.0 * static_cast<double>(scan_hits) / static_cast<double>(scan_hits + scan_misses);
  row.point_us = ckbench::ToUs(point_cycles);
  row.point_hit_rate = 100.0 * static_cast<double>(point_hits) /
                       static_cast<double>(point_hits + point_misses);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  ck::ObsSession obs(argc, argv);
  ckbench::ObsSlot() = &obs;
  ckbench::Title("A4: database buffer replacement (96-page table, 64-page pool)");
  std::printf("%-8s | %16s %12s | %18s %12s\n", "policy", "us/warm scan", "scan hit %",
              "us/512 lookups", "lookup hit %");
  ckbench::Rule();
  Row rows[] = {
      Run(ckdb::Replacement::kLru, "LRU"),
      Run(ckdb::Replacement::kMru, "MRU"),
      Run(ckdb::Replacement::kFifo, "FIFO"),
  };
  for (const Row& row : rows) {
    std::printf("%-8s | %16.0f %12.1f | %18.0f %12.1f\n", row.policy, row.scan_us,
                row.scan_hit_rate, row.point_us, row.point_hit_rate);
  }
  ckbench::Rule();
  std::printf("MRU vs LRU warm-scan speedup: %.2fx\n", rows[0].scan_us / rows[1].scan_us);
  ckbench::Note("shape checks: LRU floods on repeated sequential scans (~0% warm hits: every");
  ckbench::Note("page is evicted just before its reuse); MRU keeps a stable prefix resident");
  ckbench::Note("and wins by the buffer/table ratio. For uniform point lookups the policies");
  ckbench::Note("converge -- policy choice is workload-specific, which is exactly why it");
  ckbench::Note("belongs to the application kernel (sections 1, 3).");
  obs.Finish();
  return 0;
}

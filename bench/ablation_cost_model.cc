// Methodology ablation: cost-model sensitivity.
//
// EXPERIMENTS.md claims the reproduced results are SHAPES that emerge from
// operation counts, not from tuned constants. This bench perturbs the
// calibration table hard -- halving trap costs, doubling memory costs, and
// an "all primitives 3x" stress -- and re-measures the Table 2 orderings.
// If a shape only held for one magic table, it would break here.

#include "bench/bench_util.h"

namespace {

using ck::CkApi;
using ck::MappingSpec;
using ck::SpaceId;
using ck::ThreadSpec;
using ckbench::MeasureCycles;
using ckbench::ToUs;

class NullKernel : public ck::AppKernel {
 public:
  ck::HandlerAction HandleFault(const ck::FaultForward&, CkApi&) override {
    return ck::HandlerAction::kTerminate;
  }
  ck::TrapAction HandleTrap(const ck::TrapForward&, CkApi&) override { return {}; }
  void OnMappingWriteback(const ck::MappingWriteback&, CkApi&) override {}
  void OnThreadWriteback(const ck::ThreadWriteback&, CkApi&) override {}
  void OnSpaceWriteback(const ck::SpaceWriteback&, CkApi&) override {}
};

struct Shape {
  double map_load, map_load_wb, thread_load, space_load, kernel_load, kernel_unload,
      thread_unload;
};

Shape Measure(const cksim::CostModel& cost) {
  cksim::MachineConfig machine_config;
  machine_config.memory_bytes = 16u << 20;
  machine_config.cost = cost;
  cksim::Machine machine(machine_config);
  ck::CacheKernelConfig config;
  config.mapping_slots = 256;
  ck::CacheKernel ck(machine, config);
  static NullKernel null_kernel;
  ck::KernelId kid = ck.BootFirstKernel(&null_kernel, 0);
  cksim::Cpu& cpu = machine.cpu(0);
  CkApi api(ck, kid, cpu);

  Shape shape{};
  SpaceId space = api.LoadSpace(0, false).value();

  // Plain mapping load (slack pool).
  ckbase::Stats map_load;
  for (int i = 0; i < 32; ++i) {
    MappingSpec spec;
    spec.space = space;
    spec.vaddr = 0x100000 + static_cast<uint32_t>(i) * cksim::kPageSize;
    spec.paddr = 0x100000 + static_cast<uint32_t>(i % 64) * cksim::kPageSize;
    map_load.Add(ToUs(MeasureCycles(cpu, [&] { api.LoadMapping(spec); })));
  }
  shape.map_load = map_load.Mean();

  // Mapping load under writeback pressure.
  for (uint32_t i = 0; ck.loaded_count(ck::ObjectType::kMapping) <
                       ck.capacity(ck::ObjectType::kMapping);
       ++i) {
    MappingSpec spec;
    spec.space = space;
    spec.vaddr = 0x04000000 + i * cksim::kPageSize;
    spec.paddr = 0x100000 + (i % 64) * cksim::kPageSize;
    api.LoadMapping(spec);
  }
  ckbase::Stats map_load_wb;
  for (int i = 0; i < 32; ++i) {
    MappingSpec spec;
    spec.space = space;
    spec.vaddr = 0x08000000 + static_cast<uint32_t>(i) * cksim::kPageSize;
    spec.paddr = 0x100000 + static_cast<uint32_t>(i % 64) * cksim::kPageSize;
    map_load_wb.Add(ToUs(MeasureCycles(cpu, [&] { api.LoadMapping(spec); })));
  }
  shape.map_load_wb = map_load_wb.Mean();

  // Thread load/unload.
  ckbase::Stats thread_load, thread_unload;
  for (int i = 0; i < 32; ++i) {
    ThreadSpec spec;
    spec.space = space;
    spec.start_blocked = true;
    ck::ThreadId id{};
    thread_load.Add(ToUs(MeasureCycles(cpu, [&] { id = api.LoadThread(spec).value(); })));
    thread_unload.Add(ToUs(MeasureCycles(cpu, [&] { api.UnloadThread(id); })));
  }
  shape.thread_load = thread_load.Mean();
  shape.thread_unload = thread_unload.Mean();

  // Space load.
  ckbase::Stats space_load;
  for (int i = 0; i < 16; ++i) {
    SpaceId id{};
    space_load.Add(ToUs(MeasureCycles(cpu, [&] { id = api.LoadSpace(1 + i, false).value(); })));
    api.UnloadSpace(id);
  }
  shape.space_load = space_load.Mean();

  // Kernel load/unload.
  ckbase::Stats kernel_load, kernel_unload;
  for (int i = 0; i < 8; ++i) {
    ck::KernelId id{};
    kernel_load.Add(
        ToUs(MeasureCycles(cpu, [&] { id = api.LoadKernel(&null_kernel, i).value(); })));
    kernel_unload.Add(ToUs(MeasureCycles(cpu, [&] { api.UnloadKernel(id); })));
  }
  shape.kernel_load = kernel_load.Mean();
  shape.kernel_unload = kernel_unload.Mean();
  return shape;
}

int CheckShape(const char* name, const Shape& shape) {
  bool map_cheapest = shape.map_load < shape.thread_load && shape.map_load < shape.space_load &&
                      shape.map_load < shape.kernel_load;
  bool kernel_most = shape.kernel_load > shape.thread_load &&
                     shape.kernel_load > shape.space_load;
  bool wb_adds = shape.map_load_wb > 1.3 * shape.map_load;
  bool kernel_unload_cheapest = shape.kernel_unload < shape.thread_unload;
  std::printf("%-22s %9.1f %9.1f %9.1f %9.1f %9.1f | %s %s %s %s\n", name, shape.map_load,
              shape.map_load_wb, shape.thread_load, shape.space_load, shape.kernel_load,
              map_cheapest ? "Y" : "N", kernel_most ? "Y" : "N", wb_adds ? "Y" : "N",
              kernel_unload_cheapest ? "Y" : "N");
  return (map_cheapest && kernel_most && wb_adds && kernel_unload_cheapest) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  ck::ObsSession obs(argc, argv);
  ckbench::ObsSlot() = &obs;
  ckbench::Title("Methodology ablation: Table 2 shape under perturbed cost models");
  std::printf("%-22s %9s %9s %9s %9s %9s | shape checks\n", "cost model", "map", "map+wb",
              "thread", "space", "kernel");
  ckbench::Rule();

  int failures = 0;
  cksim::CostModel baseline;
  failures += CheckShape("baseline", Measure(baseline));

  cksim::CostModel cheap_traps = baseline;
  cheap_traps.trap_entry /= 2;
  cheap_traps.trap_exit /= 2;
  cheap_traps.call_gate /= 2;
  failures += CheckShape("traps halved", Measure(cheap_traps));

  cksim::CostModel expensive_memory = baseline;
  expensive_memory.mem_word *= 2;
  expensive_memory.cache_line_fill *= 2;
  expensive_memory.table_walk_level *= 2;
  failures += CheckShape("memory doubled", Measure(expensive_memory));

  cksim::CostModel fast_context = baseline;
  fast_context.context_save /= 4;
  fast_context.context_restore /= 4;
  failures += CheckShape("context switch /4", Measure(fast_context));

  cksim::CostModel everything_3x = baseline;
  everything_3x.mem_word *= 3;
  everything_3x.trap_entry *= 3;
  everything_3x.trap_exit *= 3;
  everything_3x.call_gate *= 3;
  everything_3x.hash_op *= 3;
  everything_3x.descriptor_init *= 3;
  everything_3x.writeback_record *= 3;
  everything_3x.context_save *= 3;
  everything_3x.context_restore *= 3;
  failures += CheckShape("everything 3x", Measure(everything_3x));

  ckbench::Rule();
  ckbench::Note("columns: simulated us; checks: map cheapest / kernel load priciest /");
  ckbench::Note("writeback adds >=1.3x / kernel unload < thread unload.");
  std::printf("shape violations across 5 cost models: %d (expected 0)\n", failures);
  ckbench::Note("\nconclusion: Table 2's orderings are properties of the operation counts in");
  ckbench::Note("the implementation, not artifacts of the calibration values.");
  obs.Finish();
  return failures == 0 ? 0 : 1;
}

// Host-side microbenchmarks (google-benchmark) of the hot data structures.
//
// These measure the REPRODUCTION's implementation cost on the host machine
// (nanoseconds), not the simulated 25 MHz machine -- useful for keeping the
// simulator fast, and a sanity check that the kernel's fixed-capacity,
// allocation-free structures behave O(1) as designed.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/base/fixed_pool.h"
#include "src/base/intrusive_list.h"
#include "src/base/rng.h"
#include "src/ck/physmap.h"
#include "src/isa/assembler.h"
#include "src/isa/fastpath.h"
#include "src/isa/interpreter.h"
#include "src/sim/tlb.h"

namespace {

void BM_PhysMapInsertRemove(benchmark::State& state) {
  ck::PhysicalMemoryMap pmap(static_cast<uint32_t>(state.range(0)));
  uint32_t key = 0;
  for (auto _ : state) {
    uint32_t index = pmap.Insert(key++ % 1024, 0x4000, 1, ck::RecordType::kPhysToVirt);
    benchmark::DoNotOptimize(index);
    pmap.Remove(index);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PhysMapInsertRemove)->Arg(1024)->Arg(65536);

void BM_PhysMapLookupChain(benchmark::State& state) {
  ck::PhysicalMemoryMap pmap(4096);
  // Chains of the given depth on one frame (one-to-many messaging shape).
  for (int64_t i = 0; i < state.range(0); ++i) {
    pmap.Insert(7, 0x4000 + static_cast<uint32_t>(i) * 0x1000, 1,
                ck::RecordType::kPhysToVirt);
  }
  for (auto _ : state) {
    uint32_t count = 0;
    for (uint32_t cur = pmap.FindFirst(7); cur != ck::kNilRecord; cur = pmap.NextWithKey(cur)) {
      ++count;
    }
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_PhysMapLookupChain)->Arg(1)->Arg(8)->Arg(64);

void BM_TlbLookupHit(benchmark::State& state) {
  cksim::Tlb tlb(64, 4);
  for (uint32_t i = 0; i < 32; ++i) {
    tlb.Insert(1, i, 100 + i, 0);
  }
  uint32_t page = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tlb.Lookup(1, page++ % 32));
  }
}
BENCHMARK(BM_TlbLookupHit);

void BM_MicroTlbHit(benchmark::State& state) {
  // The fast path's whole translation: direct-mapped hint lookup, two
  // compares, re-validation against the live hardware-TLB entry, and the
  // LRU/hit bookkeeping a slow Lookup would have done. Compare against
  // BM_TlbLookupHit (the set scan it replaces).
  cksim::Tlb tlb(64, 4);
  ckisa::MicroTlb mtlb;
  for (uint32_t i = 0; i < 32; ++i) {
    tlb.Insert(1, i, 100 + i, 0);
    mtlb.Fill(cksim::Access::kRead, 1, i, tlb.Probe(1, i));
  }
  uint32_t page = 0;
  for (auto _ : state) {
    uint32_t vpage = page++ % 32;
    ckisa::MicroTlbEntry& e = mtlb.At(cksim::Access::kRead, vpage);
    uint32_t pframe = 0;
    if (e.vpage == vpage && e.asid == 1) {
      const cksim::TlbEntry& t = tlb.EntryAt(e.tlb_index);
      if (t.valid && t.asid == 1 && t.vpage == vpage) {
        tlb.TouchFastHit(e.tlb_index);
        pframe = t.pframe;
      }
    }
    benchmark::DoNotOptimize(pframe);
  }
}
BENCHMARK(BM_MicroTlbHit);

void BM_GuestMips(benchmark::State& state) {
  // End-to-end guest execution throughput through the full simulator stack
  // (scheduler turns, MMU, cost model), in guest instructions per host
  // second. Args are {fastpath, trace_exec}: {0,0} is the slow reference,
  // {1,0} the per-instruction fast path, {1,1} superblock trace execution.
  ck::CacheKernelConfig cfg;
  cfg.fastpath = state.range(0) != 0;
  cfg.trace_exec = state.range(1) != 0;
  // One CPU: every Step is a guest dispatch turn, not an idle-CPU turn, so
  // the measurement is interpreter throughput rather than idle scheduling.
  ckbench::World world(cfg, 16u << 20, /*cpus=*/1);
  ckapp::AppKernelBase app("mips", 64);
  world.Launch(app);
  ck::CkApi api = world.ApiFor(app);

  uint32_t space = app.CreateSpace(api);
  ckisa::AssembleResult assembled = ckisa::Assemble(R"(
      li   t3, 0x00400000
    loop:
      addi t0, t0, 1
      add  t1, t1, t0
      sw   t1, 0(t3)
      lw   t2, 4(t3)
      slt  t4, t2, t1
      bne  t0, r0, loop
      halt
  )", 0x10000);
  app.LoadProgramImage(space, assembled.program, /*writable=*/false);
  app.DefineZeroRegion(space, 0x00400000, 1, /*writable=*/true);
  ckapp::GuestThreadParams params;
  params.space_index = space;
  params.entry = 0x10000;
  app.CreateGuestThread(api, params);

  // Fault the working set in so the measured loop is steady-state execution.
  for (int i = 0; i < 4000; ++i) {
    world.machine().Step();
  }
  uint64_t start = world.ck().stats().guest_instructions;
  for (auto _ : state) {
    world.machine().Step();
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(world.ck().stats().guest_instructions - start));
}
BENCHMARK(BM_GuestMips)->Args({0, 0})->Args({1, 0})->Args({1, 1});

void BM_GuestMipsParallel(benchmark::State& state) {
  // Intra-MPM batch dispatch: four simulated CPUs, each running a guest
  // thread in its own (unshared) space, so every batch collects four
  // independent quanta. Args are {trace_exec, cpu_host_threads}; host
  // threads 0 runs the identical batch protocol inline, which is the
  // determinism reference for the threaded configurations.
  ck::CacheKernelConfig cfg;
  cfg.trace_exec = state.range(0) != 0;
  cfg.cpus_parallel = true;
  cfg.cpu_host_threads = static_cast<uint32_t>(state.range(1));
  ckbench::World world(cfg, 16u << 20, /*cpus=*/4);
  ckapp::AppKernelBase app("mips-par", 64);
  world.Launch(app);
  ck::CkApi api = world.ApiFor(app);

  ckisa::AssembleResult assembled = ckisa::Assemble(R"(
      li   t3, 0x00400000
    loop:
      addi t0, t0, 1
      add  t1, t1, t0
      sw   t1, 0(t3)
      lw   t2, 4(t3)
      slt  t4, t2, t1
      bne  t0, r0, loop
      halt
  )", 0x10000);
  for (uint32_t c = 0; c < 4; ++c) {
    uint32_t space = app.CreateSpace(api);
    app.LoadProgramImage(space, assembled.program, /*writable=*/false);
    app.DefineZeroRegion(space, 0x00400000, 1, /*writable=*/true);
    ckapp::GuestThreadParams params;
    params.space_index = space;
    params.entry = 0x10000;
    params.cpu_hint = static_cast<uint8_t>(c);
    app.CreateGuestThread(api, params);
  }

  for (int i = 0; i < 16000; ++i) {
    world.machine().Step();
  }
  uint64_t start = world.ck().stats().guest_instructions;
  for (auto _ : state) {
    world.machine().Step();
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(world.ck().stats().guest_instructions - start));
}
BENCHMARK(BM_GuestMipsParallel)->Args({1, 0})->Args({1, 4})->Args({0, 0})->Args({0, 4});

void BM_FixedPoolAllocateRelease(benchmark::State& state) {
  struct Item {
    ckbase::ListNode pool_node;
    uint64_t payload[4];
  };
  ckbase::FixedPool<Item> pool(256);
  for (auto _ : state) {
    Item* item = pool.Allocate();
    benchmark::DoNotOptimize(item);
    pool.Release(item);
  }
}
BENCHMARK(BM_FixedPoolAllocateRelease);

void BM_InterpreterDispatch(benchmark::State& state) {
  // Flat-memory bus: measures raw interpreter dispatch throughput.
  class FlatBus : public ckisa::GuestBus {
   public:
    explicit FlatBus(const ckisa::Program& program) : words_(program.words) {}
    MemResult Fetch(uint32_t vaddr) override {
      MemResult r;
      r.ok = true;
      r.value = words_[(vaddr / 4) % words_.size()];
      return r;
    }
    MemResult Load32(uint32_t) override { return Ok(); }
    MemResult Load8(uint32_t) override { return Ok(); }
    MemResult Store32(uint32_t, uint32_t) override { return Ok(); }
    MemResult Store8(uint32_t, uint8_t) override { return Ok(); }
    void ChargeInstruction() override {}
    void OnMessageWrite(uint32_t) override {}

   private:
    static MemResult Ok() {
      MemResult r;
      r.ok = true;
      return r;
    }
    std::vector<uint32_t> words_;
  };

  ckisa::AssembleResult assembled = ckisa::Assemble(R"(
    loop:
      addi t0, t0, 1
      add  t1, t1, t0
      slt  t2, t0, t1
      j loop
  )", 0);
  FlatBus bus(assembled.program);
  ckisa::VmContext ctx;
  for (auto _ : state) {
    ckisa::Run(ctx, bus, 1000);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_InterpreterDispatch);

void BM_AssembleSmallProgram(benchmark::State& state) {
  const char* source = R"(
      li   sp, 0x10000
      addi a0, r0, 20
      call double
      halt
    double:
      add  a0, a0, a0
      ret
  )";
  for (auto _ : state) {
    benchmark::DoNotOptimize(ckisa::Assemble(source, 0x1000));
  }
}
BENCHMARK(BM_AssembleSmallProgram);

}  // namespace

int main(int argc, char** argv) {
  ck::ObsSession obs(argc, argv);
  ckbench::ObsSlot() = &obs;
  // The system libbenchmark may itself be a debug build (its context reports
  // "library_build_type"); what decides whether these numbers are meaningful
  // is the build type of THIS binary, where all measured code and the
  // header-inlined timing loop live. scripts/bench.sh gates recording on it.
#ifdef NDEBUG
  benchmark::AddCustomContext("binary_build_type", "release");
#else
  benchmark::AddCustomContext("binary_build_type", "debug");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// Table 2 reproduction: elapsed time of the basic Cache Kernel operations,
// with and without writeback.
//
// Paper (microseconds on 4x 68040 @25 MHz):
//   Object       load(no wb)  load(wb)  unload
//   Mappings          45         145      160
//   (optimized)       67         167        -
//   Threads          113         489      206
//   AddrSpaces       101         229      152
//   Kernel           244         291       80
//
// We measure the same operations in simulated microseconds: each operation
// is timed by the cycle clock of the CPU executing it, with the pools
// pre-filled ("wb" columns) or kept slack ("no wb"). The shape to check:
// mappings cheapest, kernel load most expensive (it copies the 2 KiB memory
// access array), writeback adds a large constant (the RPC writeback
// channel), thread writeback costliest of the per-object writebacks, kernel
// unload cheap when it owns nothing.

#include "bench/bench_util.h"

namespace {

using ck::CkApi;
using ck::MappingSpec;
using ck::SpaceId;
using ck::ThreadId;
using ck::ThreadSpec;
using ckbench::MeasureCycles;
using ckbench::ToUs;

constexpr int kIterations = 64;

struct OpRow {
  const char* name;
  double paper_load = 0, paper_load_wb = 0, paper_unload = 0;
  double sim_load = 0, sim_load_wb = 0, sim_unload = 0;
};

// A writeback sink that ignores everything (measures pure kernel cost).
class NullKernel : public ck::AppKernel {
 public:
  ck::HandlerAction HandleFault(const ck::FaultForward&, CkApi&) override {
    return ck::HandlerAction::kTerminate;
  }
  ck::TrapAction HandleTrap(const ck::TrapForward&, CkApi&) override { return {}; }
  void OnMappingWriteback(const ck::MappingWriteback&, CkApi&) override {}
  void OnThreadWriteback(const ck::ThreadWriteback&, CkApi&) override {}
  void OnSpaceWriteback(const ck::SpaceWriteback&, CkApi&) override {}
};

}  // namespace

int main(int argc, char** argv) {
  ck::ObsSession obs(argc, argv);
  ckbench::ObsSlot() = &obs;
  OpRow mappings{"Mappings", 45, 145, 160};
  OpRow optimized{"(optimized)", 67, 167, 0};
  OpRow threads{"Threads", 113, 489, 206};
  OpRow spaces{"AddrSpaces", 101, 229, 152};
  OpRow kernels{"Kernel", 244, 291, 80};

  NullKernel null_kernel;

  // ---- mappings ----
  {
    ck::CacheKernelConfig config;
    config.mapping_slots = 512;  // fillable, so the wb case is reachable
    ckbench::World world(config);
    cksim::Cpu& cpu = world.machine().cpu(0);
    CkApi api(world.ck(), world.ck().first_kernel(), cpu);
    SpaceId space = api.LoadSpace(0, false).value();

    // no-writeback loads + unloads
    ckbase::Stats load_stats, unload_stats;
    for (int i = 0; i < kIterations; ++i) {
      MappingSpec spec;
      spec.space = space;
      spec.vaddr = 0x100000 + static_cast<uint32_t>(i) * cksim::kPageSize;
      spec.paddr = 0x100000 + static_cast<uint32_t>(i % 128) * cksim::kPageSize;
      load_stats.Add(ToUs(MeasureCycles(cpu, [&] { api.LoadMapping(spec); })));
      unload_stats.Add(ToUs(MeasureCycles(cpu, [&] { api.UnloadMapping(space, spec.vaddr); })));
    }
    mappings.sim_load = load_stats.Mean();
    mappings.sim_unload = unload_stats.Mean();

    // fill the pool, then loads force reclamation + writeback
    for (uint32_t i = 0; world.ck().loaded_count(ck::ObjectType::kMapping) <
                         world.ck().capacity(ck::ObjectType::kMapping);
         ++i) {
      MappingSpec spec;
      spec.space = space;
      spec.vaddr = 0x04000000 + i * cksim::kPageSize;
      spec.paddr = 0x100000 + (i % 128) * cksim::kPageSize;
      api.LoadMapping(spec);
    }
    ckbase::Stats load_wb_stats;
    for (int i = 0; i < kIterations; ++i) {
      MappingSpec spec;
      spec.space = space;
      spec.vaddr = 0x08000000 + static_cast<uint32_t>(i) * cksim::kPageSize;
      spec.paddr = 0x100000 + static_cast<uint32_t>(i % 128) * cksim::kPageSize;
      load_wb_stats.Add(ToUs(MeasureCycles(cpu, [&] { api.LoadMapping(spec); })));
    }
    mappings.sim_load_wb = load_wb_stats.Mean();

    // optimized combined load+resume: measured against a blocked thread
    ThreadSpec tspec;
    tspec.space = space;
    tspec.start_blocked = true;
    ThreadId blocked = api.LoadThread(tspec).value();
    ckbase::Stats opt_stats, opt_wb_stats;
    for (int i = 0; i < kIterations; ++i) {
      MappingSpec spec;
      spec.space = space;
      spec.vaddr = 0x0c000000 + static_cast<uint32_t>(i) * cksim::kPageSize;
      spec.paddr = 0x100000 + static_cast<uint32_t>(i % 128) * cksim::kPageSize;
      opt_wb_stats.Add(
          ToUs(MeasureCycles(cpu, [&] { api.LoadMappingAndResume(spec, blocked); })));
      api.BlockThread(blocked);
    }
    optimized.sim_load_wb = opt_wb_stats.Mean();  // pool still full: wb case
    // drain the pool back below capacity for the no-wb optimized case
    api.UnloadMappingRange(space, 0x04000000, 256);
    for (int i = 0; i < kIterations; ++i) {
      MappingSpec spec;
      spec.space = space;
      spec.vaddr = 0x10000000 + static_cast<uint32_t>(i) * cksim::kPageSize;
      spec.paddr = 0x100000 + static_cast<uint32_t>(i % 128) * cksim::kPageSize;
      opt_stats.Add(ToUs(MeasureCycles(cpu, [&] { api.LoadMappingAndResume(spec, blocked); })));
      api.BlockThread(blocked);
    }
    optimized.sim_load = opt_stats.Mean();
  }

  // ---- threads ----
  {
    ck::CacheKernelConfig config;
    config.thread_slots = 64;
    ckbench::World world(config);
    cksim::Cpu& cpu = world.machine().cpu(0);
    CkApi api(world.ck(), world.ck().first_kernel(), cpu);
    SpaceId space = api.LoadSpace(0, false).value();

    ckbase::Stats load_stats, unload_stats;
    for (int i = 0; i < kIterations; ++i) {
      ThreadSpec spec;
      spec.space = space;
      spec.cookie = static_cast<uint64_t>(i);
      spec.start_blocked = true;
      ThreadId id{};
      load_stats.Add(ToUs(MeasureCycles(cpu, [&] { id = api.LoadThread(spec).value(); })));
      unload_stats.Add(ToUs(MeasureCycles(cpu, [&] { api.UnloadThread(id); })));
    }
    threads.sim_load = load_stats.Mean();
    threads.sim_unload = unload_stats.Mean();

    while (world.ck().loaded_count(ck::ObjectType::kThread) <
           world.ck().capacity(ck::ObjectType::kThread)) {
      ThreadSpec spec;
      spec.space = space;
      spec.start_blocked = true;
      api.LoadThread(spec);
    }
    ckbase::Stats load_wb_stats;
    for (int i = 0; i < kIterations; ++i) {
      ThreadSpec spec;
      spec.space = space;
      spec.start_blocked = true;
      load_wb_stats.Add(ToUs(MeasureCycles(cpu, [&] { api.LoadThread(spec); })));
    }
    threads.sim_load_wb = load_wb_stats.Mean();
  }

  // ---- address spaces ----
  {
    ck::CacheKernelConfig config;
    config.space_slots = 32;
    ckbench::World world(config);
    cksim::Cpu& cpu = world.machine().cpu(0);
    CkApi api(world.ck(), world.ck().first_kernel(), cpu);

    ckbase::Stats load_stats, unload_stats;
    for (int i = 0; i < kIterations; ++i) {
      SpaceId id{};
      load_stats.Add(ToUs(MeasureCycles(cpu, [&] { id = api.LoadSpace(i, false).value(); })));
      unload_stats.Add(ToUs(MeasureCycles(cpu, [&] { api.UnloadSpace(id); })));
    }
    spaces.sim_load = load_stats.Mean();
    spaces.sim_unload = unload_stats.Mean();

    while (world.ck().loaded_count(ck::ObjectType::kSpace) <
           world.ck().capacity(ck::ObjectType::kSpace)) {
      api.LoadSpace(99, false);
    }
    ckbase::Stats load_wb_stats;
    for (int i = 0; i < kIterations; ++i) {
      load_wb_stats.Add(ToUs(MeasureCycles(cpu, [&] { api.LoadSpace(100 + i, false); })));
    }
    spaces.sim_load_wb = load_wb_stats.Mean();
  }

  // ---- kernels ----
  {
    ck::CacheKernelConfig config;
    config.kernel_slots = 8;
    ckbench::World world(config);
    cksim::Cpu& cpu = world.machine().cpu(0);
    CkApi api(world.ck(), world.ck().first_kernel(), cpu);

    ckbase::Stats load_stats, unload_stats;
    for (int i = 0; i < kIterations; ++i) {
      ck::KernelId id{};
      load_stats.Add(
          ToUs(MeasureCycles(cpu, [&] { id = api.LoadKernel(&null_kernel, i).value(); })));
      unload_stats.Add(ToUs(MeasureCycles(cpu, [&] { api.UnloadKernel(id); })));
    }
    kernels.sim_load = load_stats.Mean();
    kernels.sim_unload = unload_stats.Mean();

    while (world.ck().loaded_count(ck::ObjectType::kKernel) <
           world.ck().capacity(ck::ObjectType::kKernel)) {
      api.LoadKernel(&null_kernel, 99);
    }
    ckbase::Stats load_wb_stats;
    for (int i = 0; i < kIterations; ++i) {
      load_wb_stats.Add(ToUs(MeasureCycles(cpu, [&] { api.LoadKernel(&null_kernel, 100 + i); })));
    }
    kernels.sim_load_wb = load_wb_stats.Mean();
  }

  ckbench::Title("Table 2: basic operations, elapsed microseconds (paper | simulated)");
  std::printf("%-14s | %9s %9s %9s | %9s %9s %9s\n", "Object", "load", "load+wb", "unload",
              "load", "load+wb", "unload");
  std::printf("%-14s | %29s | %29s\n", "", "--- paper @25MHz ---", "--- simulated @25MHz ---");
  ckbench::Rule();
  for (const OpRow* row : {&mappings, &optimized, &threads, &spaces, &kernels}) {
    std::printf("%-14s | %9.0f %9.0f %9.0f | %9.1f %9.1f %9.1f\n", row->name, row->paper_load,
                row->paper_load_wb, row->paper_unload, row->sim_load, row->sim_load_wb,
                row->sim_unload);
  }
  ckbench::Rule();
  ckbench::Note("shape checks:");
  std::printf("  mapping load cheapest of the plain loads:    %s\n",
              (mappings.sim_load < threads.sim_load && mappings.sim_load < spaces.sim_load &&
               mappings.sim_load < kernels.sim_load)
                  ? "yes (matches paper)"
                  : "NO");
  std::printf("  kernel load most expensive (access array):   %s\n",
              (kernels.sim_load > threads.sim_load && kernels.sim_load > spaces.sim_load)
                  ? "yes (matches paper)"
                  : "NO");
  std::printf("  writeback adds a large constant to loads:    %s\n",
              (mappings.sim_load_wb > 1.5 * mappings.sim_load &&
               threads.sim_load_wb > 1.5 * threads.sim_load)
                  ? "yes (matches paper)"
                  : "NO");
  std::printf("  thread writeback costliest per-object wb:    %s\n",
              ((threads.sim_load_wb - threads.sim_load) >
               (spaces.sim_load_wb - spaces.sim_load))
                  ? "yes (matches paper)"
                  : "NO");
  std::printf("  kernel unload cheapest unload (no children): %s\n",
              (kernels.sim_unload < threads.sim_unload && kernels.sim_unload < mappings.sim_unload)
                  ? "yes (matches paper)"
                  : "NO");
  std::printf("  optimized combined call < load + separate resume trap: yes by construction\n");
  obs.Finish();
  return 0;
}

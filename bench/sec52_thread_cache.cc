// Section 5.2 companion: the thread-descriptor cache under timesharing
// pressure. "A system that is actively switching among more than 256 threads
// is incurring a context switching overhead that would dominate the cost of
// loading and unloading thread descriptors from the Cache Kernel."
//
// We sweep the process count across a fixed (scaled-down) thread cache under
// the UNIX emulator: below capacity, descriptor reclamation is zero and
// throughput is flat; above it, every scheduling round trips through
// writeback/reload, and the added cost per process stays bounded by the
// load/unload pair (Table 2), not by anything catastrophic -- the paper's
// claim that the caching model degrades gracefully.

#include "bench/bench_util.h"
#include "src/isa/assembler.h"
#include "src/unixemu/unix_emulator.h"

namespace {

struct Point {
  uint32_t processes;
  double ms_to_finish;
  double ms_per_process;
  uint64_t thread_reclaims;
  uint64_t thread_loads;
};

Point Run(uint32_t processes, uint32_t thread_slots) {
  ck::CacheKernelConfig ck_config;
  ck_config.thread_slots = thread_slots;
  ckbench::World world(ck_config);

  ckunix::UnixConfig config;
  config.sched_interval = 250000;  // 10 ms: prompt reload of reclaimed threads
  ckunix::UnixEmulator emulator(world.ck(), config);
  cksrm::LaunchParams params;
  params.page_groups = 8;
  params.max_priority = 31;
  params.locked_kernel_object = true;
  world.srm().Launch(emulator, params);
  ck::CkApi api = world.ApiFor(emulator);
  emulator.Start(api);

  ckisa::AssembleResult assembled = ckisa::Assemble(R"(
      addi t0, r0, 0
      addi t1, r0, 1
      li   t2, 3000
    loop:
      add  t0, t0, t1
      addi t1, t1, 1
      bge  t2, t1, loop
      mv   a0, t0
      trap 17
  )", 0x10000);

  for (uint32_t i = 0; i < processes; ++i) {
    emulator.Exec(api, assembled.program);
  }
  cksim::Cycles start = world.machine().Now();
  world.RunUntil([&] { return emulator.AllExited(); }, 80000000);
  cksim::Cycles elapsed = world.machine().Now() - start;

  Point point;
  point.processes = processes;
  point.ms_to_finish = ckbench::ToUs(elapsed) / 1000.0;
  point.ms_per_process = point.ms_to_finish / processes;
  point.thread_reclaims =
      world.ck().stats().reclamations[static_cast<int>(ck::ObjectType::kThread)];
  point.thread_loads = world.ck().stats().loads[static_cast<int>(ck::ObjectType::kThread)];
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  ck::ObsSession obs(argc, argv);
  ckbench::ObsSlot() = &obs;
  constexpr uint32_t kSlots = 12;  // 4 scheduler threads + 8 guest slots
  ckbench::Title("Section 5.2 companion: thread-descriptor cache under timesharing");
  ckbench::Note("thread cache: 12 slots (4 pinned scheduler threads + 8 for processes)\n");
  std::printf("%10s %14s %16s %14s %12s\n", "processes", "total ms", "ms/process",
              "thread reloads", "reclaims");
  ckbench::Rule();
  for (uint32_t processes : {2u, 4u, 8u, 12u, 16u, 24u}) {
    Point point = Run(processes, kSlots);
    std::printf("%10u %14.1f %16.2f %14llu %12llu\n", point.processes, point.ms_to_finish,
                point.ms_per_process, static_cast<unsigned long long>(point.thread_loads),
                static_cast<unsigned long long>(point.thread_reclaims));
  }
  ckbench::Rule();
  ckbench::Note("shape checks: below the 8 free slots, zero reclamation and flat ms/process;");
  ckbench::Note("above, each process pays bounded descriptor load/writeback trips (Table 2's");
  ckbench::Note("thread rows) amortized across its run -- graceful degradation, never a hard");
  ckbench::Note("'out of descriptors' failure (section 7).");
  obs.Finish();
  return 0;
}

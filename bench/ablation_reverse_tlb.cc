// Ablation A1: the per-processor reverse-TLB for signal delivery (section
// 4.1). With it on, repeat deliveries to the active thread take the fast
// path; with it off, every delivery pays the two-stage physical-memory-map
// lookup. The paper's design argument: "signal delivery to the active thread
// is fast and the overhead of signal delivery to the non-active thread is
// more".

#include "bench/bench_util.h"

namespace {

class BenchKernel : public ckapp::AppKernelBase {
 public:
  BenchKernel() : ckapp::AppKernelBase("rtlb", 128) {}
};

class NullReceiver : public ck::NativeProgram {
 public:
  ck::NativeOutcome Step(ck::NativeCtx&) override {
    ck::NativeOutcome outcome;
    outcome.action = ck::NativeOutcome::Action::kBlock;
    return outcome;
  }
  void OnSignal(cksim::VirtAddr, ck::NativeCtx&) override { ++received; }
  uint64_t received = 0;
};

struct Row {
  bool enabled;
  double us_per_signal;
  uint64_t fast, slow;
};

Row Run(bool reverse_tlb_enabled, uint32_t signals) {
  ck::CacheKernelConfig config;
  config.reverse_tlb_enabled = reverse_tlb_enabled;
  ckbench::World world(config);
  BenchKernel app;
  world.Launch(app);
  ck::CkApi api = world.ApiFor(app);
  uint32_t space = app.CreateSpace(api);
  cksim::PhysAddr frame = app.frames().Allocate();

  NullReceiver receiver;
  // Same-CPU receiver: delivery happens inline at the Signal call, so the
  // measured cost is pure delivery mechanism.
  uint32_t thread = app.CreateNativeThread(api, space, &receiver, 20, false, /*cpu=*/0);
  app.DefineFrameRegion(space, 0x00800000, 1, frame, true, true);
  app.DefineFrameRegion(space, 0x00900000, 1, frame, false, true, thread);
  app.EnsureMappingLoaded(api, space, 0x00800000);
  app.EnsureMappingLoaded(api, space, 0x00900000);

  ckbase::Stats cost;
  for (uint32_t i = 0; i < signals; ++i) {
    cost.Add(ckbench::ToUs(ckbench::MeasureCycles(
        world.machine().cpu(0), [&] { api.Signal(app.space(space).ck_id, 0x00800000); })));
  }
  Row row;
  row.enabled = reverse_tlb_enabled;
  row.us_per_signal = cost.Mean();
  row.fast = world.ck().stats().signals_delivered_fast;
  row.slow = world.ck().stats().signals_delivered_slow;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  ck::ObsSession obs(argc, argv);
  ckbench::ObsSlot() = &obs;
  constexpr uint32_t kSignals = 200;
  Row with = Run(true, kSignals);
  Row without = Run(false, kSignals);

  ckbench::Title("Ablation A1: reverse-TLB fast path for signal delivery");
  std::printf("%-24s %16s %12s %12s\n", "configuration", "us/signal", "fast path", "slow path");
  ckbench::Rule();
  std::printf("%-24s %16.1f %12llu %12llu\n", "reverse-TLB enabled", with.us_per_signal,
              static_cast<unsigned long long>(with.fast),
              static_cast<unsigned long long>(with.slow));
  std::printf("%-24s %16.1f %12llu %12llu\n", "reverse-TLB disabled", without.us_per_signal,
              static_cast<unsigned long long>(without.fast),
              static_cast<unsigned long long>(without.slow));
  ckbench::Rule();
  std::printf("speedup from the reverse-TLB: %.2fx on repeat deliveries\n",
              without.us_per_signal / with.us_per_signal);
  ckbench::Note("shape check: with the reverse-TLB only the first delivery takes the two-stage");
  ckbench::Note("lookup; disabled, every delivery does (section 4.1's design rationale).");
  obs.Finish();
  return 0;
}

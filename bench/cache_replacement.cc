// Working-set sweep over the mapping cache's replacement policies.
//
// The descriptor caches default to the paper's clock scan; the ObjectCache
// layer (src/ck/object_cache.h) also offers FIFO and second-chance. This
// bench drives the policy that actually has a hardware referenced bit -- the
// mapping cache -- with the canonical workload that separates them: a small
// hot set re-accessed every round plus a cold stream cycling through a
// larger working set, against a fixed mapping-cache capacity.
//
//   hot_miss_pct        % of hot-page accesses that found the mapping evicted
//   writebacks_per_1k   Figure-6 writebacks per 1000 accesses (hot + cold)
//   scan_per_reclaim    mean clock-hand candidates examined per eviction
//
// Shape being demonstrated (recorded in BENCH_cache_replacement.json,
// discussed in docs/PERFORMANCE.md and EXPERIMENTS.md X6): once the working
// set exceeds capacity, FIFO evicts by load age alone and so displaces the
// hot set every cycle, while clock observes the referenced bits the hot
// accesses keep setting and sheds cold stream pages instead. Below capacity
// every policy is equivalent (no reclamation at all) -- policy only matters
// past the capacity cliff, which is the working-set model's claim.
//
// Each round begins by flushing the space's TLB entries, the same
// referenced-bit harvesting a real kernel performs: translations must go
// through the table walk for the MMU to re-set the referenced bits the clock
// hand consumes.

#include <benchmark/benchmark.h>

#include <cstdint>

#include "src/ck/cache_kernel.h"
#include "src/sim/machine.h"

namespace {

using ck::CacheKernel;
using ck::CkApi;
using ck::MappingSpec;
using ckbase::CkStatus;

constexpr uint32_t kMappingSlots = 64;  // cache capacity C
constexpr uint32_t kHotPages = 16;      // re-accessed every round
constexpr uint32_t kColdPerRound = 32;  // cold-stream accesses per round
constexpr uint32_t kRounds = 256;
constexpr uint32_t kVbase = 0x400;                           // hot pages at vpage 0x400..
constexpr uint32_t kFrameBase = 0x100000 / cksim::kPageSize;  // backing frames

// Writeback sink: the bench never faults (residency is checked before every
// access) and mappings carry no thread state, so the handlers are empty.
class SinkKernel : public ck::AppKernel {
 public:
  ck::HandlerAction HandleFault(const ck::FaultForward&, CkApi&) override {
    return ck::HandlerAction::kTerminate;
  }
  ck::TrapAction HandleTrap(const ck::TrapForward&, CkApi&) override { return {}; }
  void OnMappingWriteback(const ck::MappingWriteback&, CkApi&) override {}
  void OnThreadWriteback(const ck::ThreadWriteback&, CkApi&) override {}
  void OnSpaceWriteback(const ck::SpaceWriteback&, CkApi&) override {}
};

struct Totals {
  uint64_t accesses = 0;
  uint64_t hot_accesses = 0;
  uint64_t hot_misses = 0;
  uint64_t writebacks = 0;
  uint64_t reclamations = 0;
  uint64_t scan_steps = 0;
};

// One full run: fixed capacity, `working_set` distinct pages, kRounds rounds
// of (hot sweep + cold stream segment) under `policy`.
Totals Run(ck::ReplacementPolicy policy, uint32_t working_set) {
  cksim::MachineConfig mc;
  mc.memory_bytes = 8u << 20;
  cksim::Machine machine(mc);
  ck::CacheKernelConfig config;
  config.mapping_slots = kMappingSlots;
  config.replacement[static_cast<uint32_t>(ck::ObjectType::kMapping)] = policy;
  CacheKernel ck(machine, config);
  SinkKernel sink;
  ck::KernelId kid = ck.BootFirstKernel(&sink, 0);
  CkApi api(ck, kid, machine.cpu(0));
  ck::SpaceId space = api.LoadSpace(0, false).value();
  ck::ThreadSpec tspec;
  tspec.space = space;
  tspec.start_blocked = true;
  ck::ThreadId thread = api.LoadThread(tspec).value();
  uint16_t asid = static_cast<uint16_t>(space.id.slot);

  Totals totals;
  // Touch one page: reload the mapping if it was evicted, then access it
  // through the real translation path so the MMU sets the referenced bit.
  auto touch = [&](uint32_t vpage, bool hot) {
    ++totals.accesses;
    if (hot) {
      ++totals.hot_accesses;
    }
    cksim::VirtAddr vaddr = vpage * cksim::kPageSize;
    if (!api.QueryMapping(space, vaddr).ok()) {
      if (hot) {
        ++totals.hot_misses;
      }
      MappingSpec spec;
      spec.space = space;
      spec.vaddr = vaddr;
      spec.paddr = (kFrameBase + (vpage - kVbase)) * cksim::kPageSize;
      if (api.LoadMapping(spec) != CkStatus::kOk) {
        return;  // counted as load_failures by the CK; never happens here
      }
    }
    ck.GuestLoad(kid, machine.cpu(0), thread, vaddr);
  };

  uint32_t cold_pages = working_set - kHotPages;
  uint32_t cold_cursor = 0;
  for (uint32_t round = 0; round < kRounds; ++round) {
    // Referenced-bit harvest: force the next accesses through the table walk.
    machine.cpu(0).mmu().tlb().FlushAsid(asid);
    for (uint32_t h = 0; h < kHotPages; ++h) {
      touch(kVbase + h, /*hot=*/true);
    }
    for (uint32_t c = 0; c < kColdPerRound; ++c) {
      touch(kVbase + kHotPages + (cold_cursor++ % cold_pages), /*hot=*/false);
    }
  }

  uint32_t t = static_cast<uint32_t>(ck::ObjectType::kMapping);
  totals.writebacks = ck.stats().writebacks[t];
  totals.reclamations = ck.stats().reclamations[t];
  totals.scan_steps = ck.stats().reclaim_scan_steps[t];
  return totals;
}

void BM_WorkingSet(benchmark::State& state, ck::ReplacementPolicy policy) {
  uint32_t working_set = static_cast<uint32_t>(state.range(0));
  Totals totals;
  for (auto _ : state) {
    totals = Run(policy, working_set);
  }
  state.counters["working_set"] = static_cast<double>(working_set);
  state.counters["capacity"] = static_cast<double>(kMappingSlots);
  state.counters["hot_miss_pct"] =
      100.0 * static_cast<double>(totals.hot_misses) / static_cast<double>(totals.hot_accesses);
  state.counters["writebacks_per_1k"] =
      1000.0 * static_cast<double>(totals.writebacks) / static_cast<double>(totals.accesses);
  state.counters["scan_per_reclaim"] =
      totals.reclamations == 0 ? 0.0
                               : static_cast<double>(totals.scan_steps) /
                                     static_cast<double>(totals.reclamations);
}

// Working sets: comfortably under capacity (48 < 64: no reclamation at all),
// just over (96), and 3x over (192). The hot set is 16 pages throughout.
BENCHMARK_CAPTURE(BM_WorkingSet, clock, ck::ReplacementPolicy::kClock)
    ->Arg(48)
    ->Arg(96)
    ->Arg(192)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_WorkingSet, fifo, ck::ReplacementPolicy::kFifo)
    ->Arg(48)
    ->Arg(96)
    ->Arg(192)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_WorkingSet, second_chance, ck::ReplacementPolicy::kSecondChance)
    ->Arg(48)
    ->Arg(96)
    ->Arg(192)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
#ifdef NDEBUG
  benchmark::AddCustomContext("binary_build_type", "release");
#else
  benchmark::AddCustomContext("binary_build_type", "debug");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

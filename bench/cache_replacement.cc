// Working-set sweep over the mapping cache's replacement policies.
//
// The descriptor caches default to the paper's clock scan; the ObjectCache
// layer (src/ck/object_cache.h) also offers FIFO and second-chance. This
// bench drives the policy that actually has a hardware referenced bit -- the
// mapping cache -- with the canonical workload that separates them: a small
// hot set re-accessed every round plus a cold stream cycling through a
// larger working set, against a fixed mapping-cache capacity.
//
//   hot_miss_pct        % of hot-page accesses that found the mapping evicted
//   writebacks_per_1k   Figure-6 writebacks per 1000 accesses (hot + cold)
//   scan_per_reclaim    mean clock-hand candidates examined per eviction
//
// Shape being demonstrated (recorded in BENCH_cache_replacement.json,
// discussed in docs/PERFORMANCE.md and EXPERIMENTS.md X6): once the working
// set exceeds capacity, FIFO evicts by load age alone and so displaces the
// hot set every cycle, while clock observes the referenced bits the hot
// accesses keep setting and sheds cold stream pages instead. Below capacity
// every policy is equivalent (no reclamation at all) -- policy only matters
// past the capacity cliff, which is the working-set model's claim.
//
// Each round begins by flushing the space's TLB entries, the same
// referenced-bit harvesting a real kernel performs: translations must go
// through the table walk for the MMU to re-set the referenced bits the clock
// hand consumes.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "src/base/rng.h"
#include "src/ck/cache_kernel.h"
#include "src/sim/machine.h"

namespace {

using ck::CacheKernel;
using ck::CkApi;
using ck::MappingSpec;
using ckbase::CkStatus;

constexpr uint32_t kMappingSlots = 64;  // cache capacity C
constexpr uint32_t kHotPages = 16;      // re-accessed every round
constexpr uint32_t kColdPerRound = 32;  // cold-stream accesses per round
constexpr uint32_t kRounds = 256;
constexpr uint32_t kVbase = 0x400;                           // hot pages at vpage 0x400..
constexpr uint32_t kFrameBase = 0x100000 / cksim::kPageSize;  // backing frames

// Writeback sink: the bench never faults (residency is checked before every
// access) and mappings carry no thread state, so the handlers are empty.
class SinkKernel : public ck::AppKernel {
 public:
  ck::HandlerAction HandleFault(const ck::FaultForward&, CkApi&) override {
    return ck::HandlerAction::kTerminate;
  }
  ck::TrapAction HandleTrap(const ck::TrapForward&, CkApi&) override { return {}; }
  void OnMappingWriteback(const ck::MappingWriteback&, CkApi&) override {}
  void OnThreadWriteback(const ck::ThreadWriteback&, CkApi&) override {}
  void OnSpaceWriteback(const ck::SpaceWriteback&, CkApi&) override {}
};

struct Totals {
  uint64_t accesses = 0;
  uint64_t hot_accesses = 0;
  uint64_t hot_misses = 0;
  uint64_t writebacks = 0;
  uint64_t reclamations = 0;
  uint64_t scan_steps = 0;
};

// One full run: fixed capacity, `working_set` distinct pages, kRounds rounds
// of (hot sweep + cold stream segment) under `policy`.
Totals Run(ck::ReplacementPolicy policy, uint32_t working_set) {
  cksim::MachineConfig mc;
  mc.memory_bytes = 8u << 20;
  cksim::Machine machine(mc);
  ck::CacheKernelConfig config;
  config.mapping_slots = kMappingSlots;
  config.replacement[static_cast<uint32_t>(ck::ObjectType::kMapping)] = policy;
  CacheKernel ck(machine, config);
  SinkKernel sink;
  ck::KernelId kid = ck.BootFirstKernel(&sink, 0);
  CkApi api(ck, kid, machine.cpu(0));
  ck::SpaceId space = api.LoadSpace(0, false).value();
  ck::ThreadSpec tspec;
  tspec.space = space;
  tspec.start_blocked = true;
  ck::ThreadId thread = api.LoadThread(tspec).value();
  uint16_t asid = static_cast<uint16_t>(space.id.slot);

  Totals totals;
  // Touch one page: reload the mapping if it was evicted, then access it
  // through the real translation path so the MMU sets the referenced bit.
  auto touch = [&](uint32_t vpage, bool hot) {
    ++totals.accesses;
    if (hot) {
      ++totals.hot_accesses;
    }
    cksim::VirtAddr vaddr = vpage * cksim::kPageSize;
    if (!api.QueryMapping(space, vaddr).ok()) {
      if (hot) {
        ++totals.hot_misses;
      }
      MappingSpec spec;
      spec.space = space;
      spec.vaddr = vaddr;
      spec.paddr = (kFrameBase + (vpage - kVbase)) * cksim::kPageSize;
      if (api.LoadMapping(spec) != CkStatus::kOk) {
        return;  // counted as load_failures by the CK; never happens here
      }
    }
    ck.GuestLoad(kid, machine.cpu(0), thread, vaddr);
  };

  uint32_t cold_pages = working_set - kHotPages;
  uint32_t cold_cursor = 0;
  for (uint32_t round = 0; round < kRounds; ++round) {
    // Referenced-bit harvest: force the next accesses through the table walk.
    machine.cpu(0).mmu().tlb().FlushAsid(asid);
    for (uint32_t h = 0; h < kHotPages; ++h) {
      touch(kVbase + h, /*hot=*/true);
    }
    for (uint32_t c = 0; c < kColdPerRound; ++c) {
      touch(kVbase + kHotPages + (cold_cursor++ % cold_pages), /*hot=*/false);
    }
  }

  uint32_t t = static_cast<uint32_t>(ck::ObjectType::kMapping);
  totals.writebacks = ck.stats().writebacks[t];
  totals.reclamations = ck.stats().reclamations[t];
  totals.scan_steps = ck.stats().reclaim_scan_steps[t];
  return totals;
}

void BM_WorkingSet(benchmark::State& state, ck::ReplacementPolicy policy) {
  uint32_t working_set = static_cast<uint32_t>(state.range(0));
  Totals totals;
  for (auto _ : state) {
    totals = Run(policy, working_set);
  }
  state.counters["working_set"] = static_cast<double>(working_set);
  state.counters["capacity"] = static_cast<double>(kMappingSlots);
  state.counters["hot_miss_pct"] =
      100.0 * static_cast<double>(totals.hot_misses) / static_cast<double>(totals.hot_accesses);
  state.counters["writebacks_per_1k"] =
      1000.0 * static_cast<double>(totals.writebacks) / static_cast<double>(totals.accesses);
  state.counters["scan_per_reclaim"] =
      totals.reclamations == 0 ? 0.0
                               : static_cast<double>(totals.scan_steps) /
                                     static_cast<double>(totals.reclamations);
}

// ---------------------------------------------------------------------------
// Adversarial traces: access patterns chosen to defeat (or flatter) a
// referenced-bit policy, replayed against the same fixed-capacity mapping
// cache. Where BM_WorkingSet demonstrates the capacity cliff, these pin down
// the policies' known failure modes:
//
//   seq_scan       one pass over 4096 distinct pages, never revisited. Pure
//                  pollution: every access misses under EVERY policy, so the
//                  interesting number is scan_per_reclaim (eviction overhead
//                  with nothing worth keeping).
//   loop_over_cap  cyclic loop over capacity + 8 pages. The classic LRU/clock
//                  adversary: the page about to be reused is always the one
//                  the recency heuristic just evicted, so clock degrades to
//                  ~100% miss exactly like FIFO.
//   zipf           Zipf(s=1.0) popularity over 256 pages. Skew is where
//                  referenced bits earn their keep: clock keeps the popular
//                  head resident while FIFO churns it with the tail.
// ---------------------------------------------------------------------------

enum class TraceKind { kSeqScan, kLoopOverCapacity, kZipf };

const char* TraceName(TraceKind kind) {
  switch (kind) {
    case TraceKind::kSeqScan:
      return "seq_scan";
    case TraceKind::kLoopOverCapacity:
      return "loop_over_cap";
    case TraceKind::kZipf:
      return "zipf";
  }
  return "?";
}

// Build the page-index sequence for one trace (deterministic: fixed seed).
std::vector<uint32_t> BuildTrace(TraceKind kind, uint32_t* distinct_pages) {
  std::vector<uint32_t> trace;
  switch (kind) {
    case TraceKind::kSeqScan: {
      *distinct_pages = 4096;
      trace.reserve(*distinct_pages);
      for (uint32_t i = 0; i < *distinct_pages; ++i) {
        trace.push_back(i);
      }
      break;
    }
    case TraceKind::kLoopOverCapacity: {
      *distinct_pages = kMappingSlots + 8;
      trace.reserve(static_cast<size_t>(*distinct_pages) * 96);
      for (uint32_t pass = 0; pass < 96; ++pass) {
        for (uint32_t i = 0; i < *distinct_pages; ++i) {
          trace.push_back(i);
        }
      }
      break;
    }
    case TraceKind::kZipf: {
      *distinct_pages = 256;
      // Inverse-CDF sampling of Zipf(s=1.0): weight of page r is 1/(r+1).
      std::vector<double> cdf(*distinct_pages);
      double sum = 0.0;
      for (uint32_t r = 0; r < *distinct_pages; ++r) {
        sum += 1.0 / static_cast<double>(r + 1);
        cdf[r] = sum;
      }
      ckbase::Rng rng(0xC0FFEE);
      trace.reserve(8192);
      for (uint32_t i = 0; i < 8192; ++i) {
        double u = rng.NextDouble() * sum;
        uint32_t lo = 0, hi = *distinct_pages - 1;
        while (lo < hi) {
          uint32_t mid = (lo + hi) / 2;
          if (cdf[mid] < u) {
            lo = mid + 1;
          } else {
            hi = mid;
          }
        }
        trace.push_back(lo);
      }
      break;
    }
  }
  return trace;
}

// Replay one trace under `policy`. Every access is counted (there is no
// hot/cold split); the TLB is flushed every kMappingSlots accesses so the
// clock hand keeps seeing fresh referenced bits, as in BM_WorkingSet.
Totals RunAdversarial(ck::ReplacementPolicy policy, TraceKind kind) {
  cksim::MachineConfig mc;
  mc.memory_bytes = 32u << 20;
  cksim::Machine machine(mc);
  ck::CacheKernelConfig config;
  config.mapping_slots = kMappingSlots;
  config.replacement[static_cast<uint32_t>(ck::ObjectType::kMapping)] = policy;
  CacheKernel ck(machine, config);
  SinkKernel sink;
  ck::KernelId kid = ck.BootFirstKernel(&sink, 0);
  CkApi api(ck, kid, machine.cpu(0));
  ck::SpaceId space = api.LoadSpace(0, false).value();
  ck::ThreadSpec tspec;
  tspec.space = space;
  tspec.start_blocked = true;
  ck::ThreadId thread = api.LoadThread(tspec).value();
  uint16_t asid = static_cast<uint16_t>(space.id.slot);

  uint32_t distinct_pages = 0;
  std::vector<uint32_t> trace = BuildTrace(kind, &distinct_pages);

  Totals totals;
  for (size_t i = 0; i < trace.size(); ++i) {
    if (i % kMappingSlots == 0) {
      machine.cpu(0).mmu().tlb().FlushAsid(asid);
    }
    uint32_t vpage = kVbase + trace[i];
    ++totals.accesses;
    ++totals.hot_accesses;  // every access counts toward miss_pct
    cksim::VirtAddr vaddr = vpage * cksim::kPageSize;
    if (!api.QueryMapping(space, vaddr).ok()) {
      ++totals.hot_misses;
      MappingSpec spec;
      spec.space = space;
      spec.vaddr = vaddr;
      spec.paddr = (kFrameBase + (vpage - kVbase) % 1024) * cksim::kPageSize;
      if (api.LoadMapping(spec) != CkStatus::kOk) {
        continue;
      }
    }
    ck.GuestLoad(kid, machine.cpu(0), thread, vaddr);
  }

  uint32_t t = static_cast<uint32_t>(ck::ObjectType::kMapping);
  totals.writebacks = ck.stats().writebacks[t];
  totals.reclamations = ck.stats().reclamations[t];
  totals.scan_steps = ck.stats().reclaim_scan_steps[t];
  return totals;
}

void BM_AdversarialTrace(benchmark::State& state, ck::ReplacementPolicy policy, TraceKind kind) {
  Totals totals;
  for (auto _ : state) {
    totals = RunAdversarial(policy, kind);
  }
  state.SetLabel(TraceName(kind));
  state.counters["capacity"] = static_cast<double>(kMappingSlots);
  state.counters["miss_pct"] =
      100.0 * static_cast<double>(totals.hot_misses) / static_cast<double>(totals.hot_accesses);
  state.counters["writebacks_per_1k"] =
      1000.0 * static_cast<double>(totals.writebacks) / static_cast<double>(totals.accesses);
  state.counters["scan_per_reclaim"] =
      totals.reclamations == 0 ? 0.0
                               : static_cast<double>(totals.scan_steps) /
                                     static_cast<double>(totals.reclamations);
}

#define CK_ADVERSARIAL(policy_name, policy)                                            \
  BENCHMARK_CAPTURE(BM_AdversarialTrace, policy_name##_seq_scan, policy,               \
                    TraceKind::kSeqScan)                                               \
      ->Iterations(1)                                                                  \
      ->Unit(benchmark::kMillisecond);                                                 \
  BENCHMARK_CAPTURE(BM_AdversarialTrace, policy_name##_loop_over_cap, policy,          \
                    TraceKind::kLoopOverCapacity)                                      \
      ->Iterations(1)                                                                  \
      ->Unit(benchmark::kMillisecond);                                                 \
  BENCHMARK_CAPTURE(BM_AdversarialTrace, policy_name##_zipf, policy, TraceKind::kZipf) \
      ->Iterations(1)                                                                  \
      ->Unit(benchmark::kMillisecond)

CK_ADVERSARIAL(clock, ck::ReplacementPolicy::kClock);
CK_ADVERSARIAL(fifo, ck::ReplacementPolicy::kFifo);
CK_ADVERSARIAL(second_chance, ck::ReplacementPolicy::kSecondChance);

#undef CK_ADVERSARIAL

// Working sets: comfortably under capacity (48 < 64: no reclamation at all),
// just over (96), and 3x over (192). The hot set is 16 pages throughout.
BENCHMARK_CAPTURE(BM_WorkingSet, clock, ck::ReplacementPolicy::kClock)
    ->Arg(48)
    ->Arg(96)
    ->Arg(192)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_WorkingSet, fifo, ck::ReplacementPolicy::kFifo)
    ->Arg(48)
    ->Arg(96)
    ->Arg(192)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_WorkingSet, second_chance, ck::ReplacementPolicy::kSecondChance)
    ->Arg(48)
    ->Arg(96)
    ->Arg(192)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
#ifdef NDEBUG
  benchmark::AddCustomContext("binary_build_type", "release");
#else
  benchmark::AddCustomContext("binary_build_type", "debug");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// Section 5.3 + Figure 2 reproduction: page fault handling cost and the
// per-step breakdown of the fault path.
//
// Paper: "The basic cost of page fault handling is 99 microseconds, which
// includes 32 microseconds for transfer to the application kernel and 67
// microseconds for the optimized mapping load operation."
//
// A guest touches pages whose frames are already resident in the application
// kernel (no page I/O), so the measurement isolates the fault-path mechanism
// exactly as the paper's number does. The FaultTrace instrumentation gives
// the Figure 2 step timestamps.

#include "bench/bench_util.h"
#include "src/isa/assembler.h"

namespace {

class BenchKernel : public ckapp::AppKernelBase {
 public:
  BenchKernel() : ckapp::AppKernelBase("faultbench", 512) {}
};

}  // namespace

int main(int argc, char** argv) {
  ck::ObsSession obs(argc, argv);
  ckbench::ObsSlot() = &obs;
  ckbench::World world;
  BenchKernel app;
  world.Launch(app);
  ck::CkApi api = world.ApiFor(app);
  uint32_t space = app.CreateSpace(api);

  // Touch 200 pages, one load each. Pages are zero-fill; to isolate the
  // fault path from ZeroPage costs, pre-materialize all frames (so the fault
  // handler finds the page kResident and only loads the mapping).
  constexpr uint32_t kPages = 200;
  app.DefineZeroRegion(space, 0x00400000, kPages, /*writable=*/true);
  for (uint32_t i = 0; i < kPages; ++i) {
    cksim::VirtAddr vaddr = 0x00400000 + i * cksim::kPageSize;
    ckapp::PageRecord* page = app.space(space).FindPage(vaddr);
    app.MaterializePage(api, app.space(space), *page, vaddr);
  }

  ckisa::AssembleResult assembled = ckisa::Assemble(R"(
      li   t0, 0x00400000
      li   t1, 200
      li   t3, 4096
    loop:
      lw   t2, 0(t0)      ; one mapping fault per page
      add  t0, t0, t3
      addi t1, t1, -1
      bne  t1, r0, loop
      halt
  )", 0x10000);
  app.LoadProgramImage(space, assembled.program, /*writable=*/false);

  ckapp::GuestThreadParams params;
  params.space_index = space;
  params.entry = 0x10000;
  params.cpu_hint = 0;
  uint32_t guest = app.CreateGuestThread(api, params);

  // Warm up text/stack faults, then measure across the loop.
  world.RunUntil([&] { return world.ck().stats().faults_forwarded >= 1; });
  uint64_t faults_before = world.ck().stats().faults_forwarded;
  cksim::Cycles start = world.machine().cpu(0).clock();
  world.RunUntil([&] { return app.thread(guest).finished; });
  cksim::Cycles elapsed = world.machine().cpu(0).clock() - start;
  uint64_t faults = world.ck().stats().faults_forwarded - faults_before;

  // Loop overhead: 4 guest instructions + 1 memory access per iteration.
  const cksim::CostModel& cost = world.machine().cost();
  double loop_us = ckbench::ToUs(4 * cost.instruction + cost.mem_word + cost.tlb_hit);
  double per_fault_us =
      ckbench::ToUs(elapsed) / static_cast<double>(faults) - loop_us;

  // Figure 2 step breakdown from the last fault's trace.
  const ck::FaultTrace& trace = world.ck().last_fault_trace();
  double transfer_us = ckbench::ToUs(trace.handler_start - trace.trap_entry);
  double load_resume_us = ckbench::ToUs(trace.resumed - trace.handler_start);

  ckbench::Title("Section 5.3: page fault handling (no page I/O)");
  std::printf("%-56s %10s\n", "", "us");
  ckbench::Rule();
  std::printf("%-56s %10.0f\n", "paper: basic page fault cost", 99.0);
  std::printf("%-56s %10.0f\n", "paper:   transfer to application kernel", 32.0);
  std::printf("%-56s %10.0f\n", "paper:   optimized mapping load + resume", 67.0);
  std::printf("%-56s %10.1f\n", "simulated: end-to-end per fault (steady state)", per_fault_us);
  std::printf("%-56s %10.1f\n", "simulated:   transfer to app kernel (Fig.2 steps 1-2)",
              transfer_us);
  std::printf("%-56s %10.1f\n", "simulated:   handler + combined load/resume (steps 3-6)",
              load_resume_us);
  ckbench::Rule();
  std::printf("faults measured: %llu\n", static_cast<unsigned long long>(faults));
  ckbench::Note("shape checks: total is ~100 us-order; the mapping-load half costs about twice");
  ckbench::Note("the transfer half; both are trivial against a fault that needs page zeroing,");
  ckbench::Note("copying or backing-store I/O (section 5.3).");

  // Demonstrate that claim: faults WITH zero-fill cost much more.
  {
    ckbench::World world2;
    BenchKernel app2;
    world2.Launch(app2);
    ck::CkApi api2 = world2.ApiFor(app2);
    uint32_t space2 = app2.CreateSpace(api2);
    app2.DefineZeroRegion(space2, 0x00400000, kPages, true);
    app2.LoadProgramImage(space2, assembled.program, false);
    ckapp::GuestThreadParams p2;
    p2.space_index = space2;
    p2.entry = 0x10000;
    p2.cpu_hint = 0;
    uint32_t guest2 = app2.CreateGuestThread(api2, p2);
    world2.RunUntil([&] { return world2.ck().stats().faults_forwarded >= 1; });
    cksim::Cycles start2 = world2.machine().cpu(0).clock();
    uint64_t fb2 = world2.ck().stats().faults_forwarded;
    world2.RunUntil([&] { return app2.thread(guest2).finished; });
    double with_zero = ckbench::ToUs(world2.machine().cpu(0).clock() - start2) /
                       static_cast<double>(world2.ck().stats().faults_forwarded - fb2);
    std::printf("\nper-fault cost when the handler must also zero the page: %.1f us "
                "(mechanism share: %.0f%%)\n",
                with_zero, 100.0 * per_fault_us / with_zero);
  }
  obs.Finish();
  return 0;
}

// Section 5.2 reproduction: caching performance of the mapping descriptors.
//
// The paper argues the Cache Kernel performs well for reasonably structured
// programs and is not the bottleneck for the rest: software actively
// accessing more pages than there are mapping descriptors thrashes the
// second-level data cache anyway, and page-I/O dominates when locality is
// worse still. We sweep a guest's active working set across a fixed mapping
// cache and report hit rate, writebacks per access, and where the cost goes.

#include "bench/bench_util.h"
#include "src/isa/assembler.h"

namespace {

class BenchKernel : public ckapp::AppKernelBase {
 public:
  BenchKernel() : ckapp::AppKernelBase("sec52", 2048) {}
};

struct Point {
  uint32_t working_set;
  uint64_t faults;
  uint64_t reclamations;
  double faults_per_access;
  double us_per_access;
};

Point RunWorkingSet(uint32_t pages, uint32_t mapping_slots) {
  ck::CacheKernelConfig config;
  config.mapping_slots = mapping_slots;
  ckbench::World world(config);
  BenchKernel app;
  world.Launch(app, /*page_groups=*/8);
  ck::CkApi api = world.ApiFor(app);
  uint32_t space = app.CreateSpace(api);

  app.DefineZeroRegion(space, 0x00400000, pages, /*writable=*/true);
  // Pre-materialize frames: the sweep measures mapping-cache behavior, not
  // zero-fill costs.
  for (uint32_t i = 0; i < pages; ++i) {
    cksim::VirtAddr vaddr = 0x00400000 + i * cksim::kPageSize;
    app.MaterializePage(api, app.space(space), *app.space(space).FindPage(vaddr), vaddr);
  }

  // Guest loops over its working set, one access per page, 4 rounds.
  ckisa::AssembleResult assembled = ckisa::Assemble(R"(
      addi t4, r0, 4      ; rounds
    round:
      li   t0, 0x00400000
      la   t5, pages
      lw   t1, 0(t5)      ; page count (patched data word)
      li   t3, 4096
    loop:
      lw   t2, 0(t0)
      add  t0, t0, t3
      addi t1, t1, -1
      bne  t1, r0, loop
      addi t4, t4, -1
      bne  t4, r0, round
      halt
    pages:
      .word 0
  )", 0x10000);
  assembled.program.words[assembled.program.words.size() - 1] = pages;
  app.LoadProgramImage(space, assembled.program, /*writable=*/false);

  ckapp::GuestThreadParams params;
  params.space_index = space;
  params.entry = 0x10000;
  params.cpu_hint = 0;
  uint32_t guest = app.CreateGuestThread(api, params);

  cksim::Cycles start = world.machine().cpu(0).clock();
  world.RunUntil([&] { return app.thread(guest).finished; }, 30000000);
  cksim::Cycles elapsed = world.machine().cpu(0).clock() - start;

  Point point;
  point.working_set = pages;
  point.faults = world.ck().stats().faults_forwarded;
  point.reclamations =
      world.ck().stats().reclamations[static_cast<int>(ck::ObjectType::kMapping)];
  uint64_t accesses = static_cast<uint64_t>(pages) * 4;
  point.faults_per_access = static_cast<double>(point.faults) / static_cast<double>(accesses);
  point.us_per_access = ckbench::ToUs(elapsed) / static_cast<double>(accesses);
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  ck::ObsSession obs(argc, argv);
  ckbench::ObsSlot() = &obs;
  constexpr uint32_t kMappingSlots = 128;  // scaled-down cache: sweepable
  ckbench::Title("Section 5.2: working-set sweep across a 128-entry mapping cache");
  std::printf("%12s %10s %14s %16s %14s\n", "working set", "faults", "reclamations",
              "faults/access", "us/access");
  ckbench::Rule();
  for (uint32_t pages : {16u, 32u, 64u, 96u, 120u, 160u, 256u, 512u}) {
    Point point = RunWorkingSet(pages, kMappingSlots);
    std::printf("%12u %10llu %14llu %16.3f %14.2f\n", point.working_set,
                static_cast<unsigned long long>(point.faults),
                static_cast<unsigned long long>(point.reclamations), point.faults_per_access,
                point.us_per_access);
  }
  ckbench::Rule();
  ckbench::Note("shape checks: working sets under the descriptor capacity fault once per page");
  ckbench::Note("(cold) and never again; past capacity, every access round re-faults (the");
  ckbench::Note("mapping cache thrashes) and cost per access jumps by the fault-path cost --");
  ckbench::Note("the same software would also be thrashing a physically-indexed data cache,");
  ckbench::Note("which is the paper's argument that the Cache Kernel is not the limiting");
  ckbench::Note("factor for badly-structured programs (section 5.2).");
  obs.Finish();
  return 0;
}

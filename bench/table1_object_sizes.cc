// Table 1 reproduction: Cache Kernel object sizes and cache capacities.
//
// Paper (Table 1):
//   Object       Size(bytes)  Cache Size
//   Kernel           2160          16
//   AddrSpace          60          64
//   Thread            532         256
//   MemMapEntry        16       65536
//
// Our descriptor sizes are computed from the real structs. MemMapEntry is
// asserted to be exactly 16 bytes (the paper's space argument depends on
// it); the others differ by host padding and by the 132-byte CKVM register
// file vs. the 68040 frame, but stay in the same band. The section 5.2 space
// arithmetic (share of 2 MiB local RAM) is recomputed from our numbers.

#include "bench/bench_util.h"

namespace {

struct Row {
  const char* name;
  uint32_t paper_size;
  uint32_t paper_count;
  uint32_t our_size;
  uint32_t our_count;
};

}  // namespace

int main(int argc, char** argv) {
  ck::ObsSession obs(argc, argv);
  ckbench::ObsSlot() = &obs;
  ckbench::World world;
  ck::CacheKernel& ck = world.ck();

  Row rows[] = {
      {"Kernel", 2160, 16, ck::CacheKernel::kKernelObjectBytes,
       ck.capacity(ck::ObjectType::kKernel)},
      {"AddrSpace", 60, 64, ck::CacheKernel::kSpaceObjectBytes,
       ck.capacity(ck::ObjectType::kSpace)},
      {"Thread", 532, 256, ck::CacheKernel::kThreadObjectBytes,
       ck.capacity(ck::ObjectType::kThread)},
      {"MemMapEntry", 16, 65536, ck::CacheKernel::kMappingEntryBytes,
       ck.capacity(ck::ObjectType::kMapping)},
  };

  ckbench::Title("Table 1: Cache Kernel object sizes (bytes) and cache capacities");
  std::printf("%-14s %12s %12s | %12s %12s\n", "Object", "paper size", "paper count", "our size",
              "our count");
  ckbench::Rule();
  uint64_t paper_total = 0, our_total = 0;
  for (const Row& row : rows) {
    std::printf("%-14s %12u %12u | %12u %12u\n", row.name, row.paper_size, row.paper_count,
                row.our_size, row.our_count);
    paper_total += static_cast<uint64_t>(row.paper_size) * row.paper_count;
    our_total += static_cast<uint64_t>(row.our_size) * row.our_count;
  }
  ckbench::Rule();
  std::printf("%-14s %25llu | %25llu  (descriptor bytes)\n", "total",
              static_cast<unsigned long long>(paper_total),
              static_cast<unsigned long long>(our_total));

  // Section 5.2's arithmetic: 256 thread descriptors ~= 128 KiB; thread +
  // space + kernel descriptors ~= 10% of the 2 MiB local RAM; MemMapEntries
  // ~= 50%.
  double thread_kib = rows[2].our_size * rows[2].our_count / 1024.0;
  uint64_t small_descriptors = static_cast<uint64_t>(rows[0].our_size) * rows[0].our_count +
                               static_cast<uint64_t>(rows[1].our_size) * rows[1].our_count +
                               static_cast<uint64_t>(rows[2].our_size) * rows[2].our_count;
  double mme_mib = static_cast<double>(rows[3].our_size) * rows[3].our_count / (1024.0 * 1024.0);
  std::printf("\nsection 5.2 cross-checks (2 MiB local RAM):\n");
  std::printf("  256 thread descriptors: %.0f KiB (paper: ~128 KiB)\n", thread_kib);
  std::printf("  kernel+space+thread descriptors: %.1f%% of 2 MiB (paper: ~10%%)\n",
              100.0 * static_cast<double>(small_descriptors) / (2.0 * 1024 * 1024));
  std::printf("  65536 MemMapEntries: %.2f MiB = %.0f%% of 2 MiB (paper: ~50%%)\n", mme_mib,
              100.0 * mme_mib / 2.0);
  std::printf("  mapping descriptor overhead on mapped space: %.2f%% (paper: ~0.4%%)\n",
              100.0 * 16.0 / 4096.0);

  // Page-table space (section 5.2): 512-byte L1 per space, 512-byte L2s,
  // 256-byte L3s mapping 64 pages each.
  std::printf("\npage-table geometry (matches the paper exactly):\n");
  std::printf("  L1 %u B, L2 %u B, L3 %u B; one L3 maps %u pages\n", cksim::kL1TableBytes,
              cksim::kL2TableBytes, cksim::kL3TableBytes, cksim::kL3Entries);
  // "Assuming the table is at least half-full, at least two times as much
  // space is used for mapping descriptors as for third-level page tables."
  double half_full_descriptor_bytes = (cksim::kL3Entries / 2) * 16.0;
  std::printf("  descriptor bytes per half-full L3 table: %.0f vs table %u B -> ratio %.1fx "
              "(paper: >= 2x)\n",
              half_full_descriptor_bytes, cksim::kL3TableBytes,
              half_full_descriptor_bytes / cksim::kL3TableBytes);
  obs.Finish();
  return 0;
}

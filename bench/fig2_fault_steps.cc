// Figure 2 reproduction: the six-step page-fault walk, instrumented per step.
//
//   1. hardware traps to the Cache Kernel access error handler
//   2. thread redirected into the application kernel's page fault handler
//   3. handler navigates its virtual memory data structures, finds a frame
//   4. handler loads the new mapping descriptor into the Cache Kernel
//   5. faulting thread informs the Cache Kernel processing is complete
//      (folded into 4 by the optimized combined call)
//   6. the Cache Kernel restores state and resumes the thread
//
// One instrumented fault is reported step by step; a population of faults
// gives the distribution.

#include "bench/bench_util.h"
#include "src/isa/assembler.h"

namespace {

class BenchKernel : public ckapp::AppKernelBase {
 public:
  BenchKernel() : ckapp::AppKernelBase("fig2", 256) {}
};

}  // namespace

int main() {
  ckbench::World world;
  BenchKernel app;
  world.Launch(app);
  ck::CkApi api = world.ApiFor(app);
  uint32_t space = app.CreateSpace(api);

  constexpr uint32_t kPages = 64;
  app.DefineZeroRegion(space, 0x00400000, kPages, /*writable=*/true);
  for (uint32_t i = 0; i < kPages; ++i) {
    cksim::VirtAddr vaddr = 0x00400000 + i * cksim::kPageSize;
    ckapp::PageRecord* page = app.space(space).FindPage(vaddr);
    app.MaterializePage(api, app.space(space), *page, vaddr);
  }

  ckisa::AssembleResult assembled = ckisa::Assemble(R"(
      li   t0, 0x00400000
      li   t1, 64
      li   t3, 4096
    loop:
      lw   t2, 0(t0)
      add  t0, t0, t3
      addi t1, t1, -1
      bne  t1, r0, loop
      halt
  )", 0x10000);
  app.LoadProgramImage(space, assembled.program, /*writable=*/false);
  ckapp::GuestThreadParams params;
  params.space_index = space;
  params.entry = 0x10000;
  params.cpu_hint = 0;
  uint32_t guest = app.CreateGuestThread(api, params);

  ckbase::Stats transfer, handler_to_load, load_to_resume, total;
  uint64_t seen = 0;
  ck::FaultTrace last{};
  world.RunUntil([&] {
    const ck::FaultTrace& trace = world.ck().last_fault_trace();
    if (trace.trap_entry != last.trap_entry && trace.resumed != 0 && trace.mapping_loaded != 0) {
      last = trace;
      ++seen;
      if (seen <= 3) {
        return app.thread(guest).finished;  // skip text/stack warmup faults
      }
      transfer.Add(ckbench::ToUs(trace.handler_start - trace.trap_entry));
      handler_to_load.Add(ckbench::ToUs(trace.mapping_loaded - trace.handler_start));
      load_to_resume.Add(ckbench::ToUs(trace.resumed - trace.mapping_loaded));
      total.Add(ckbench::ToUs(trace.resumed - trace.trap_entry));
    }
    return app.thread(guest).finished;
  });

  ckbench::Title("Figure 2: page fault walk, per-step simulated microseconds");
  std::printf("%-58s %8s %8s\n", "step", "mean us", "p95 us");
  ckbench::Rule();
  std::printf("%-58s %8.1f %8.1f\n",
              "1-2: trap, save state, redirect into app kernel handler", transfer.Mean(),
              transfer.Percentile(95));
  std::printf("%-58s %8.1f %8.1f\n",
              "3-4: handler navigates records, loads mapping descriptor",
              handler_to_load.Mean(), handler_to_load.Percentile(95));
  std::printf("%-58s %8.1f %8.1f\n", "5-6: exception complete, restore state, resume thread",
              load_to_resume.Mean(), load_to_resume.Percentile(95));
  ckbench::Rule();
  std::printf("%-58s %8.1f %8.1f   (%llu faults)\n", "total (paper: 99 us)", total.Mean(),
              total.Percentile(95), static_cast<unsigned long long>(seen));
  ckbench::Note("\nshape checks: steps 3-4 (application-kernel policy + combined load call)");
  ckbench::Note("dominate; steps 1-2 are the fixed hardware/redirect cost the paper prices at");
  ckbench::Note("32 us; step 5 is folded into 4 by the optimized call, leaving resume cheap.");
  return 0;
}

// Figure 2 reproduction: the six-step page-fault walk, instrumented per step.
//
//   1. hardware traps to the Cache Kernel access error handler
//   2. thread redirected into the application kernel's page fault handler
//   3. handler navigates its virtual memory data structures, finds a frame
//   4. handler loads the new mapping descriptor into the Cache Kernel
//   5. faulting thread informs the Cache Kernel processing is complete
//      (folded into 4 by the optimized combined call)
//   6. the Cache Kernel restores state and resumes the thread
//
// The Cache Kernel accumulates every completed fault into per-step latency
// histograms (CacheKernel::fault_step_stats); this bench runs a population of
// faults and reports those distributions. Run with --trace=<file> to also get
// a Chrome trace_event JSON with one nested span per fault (load it in
// chrome://tracing or https://ui.perfetto.dev).

#include "bench/bench_util.h"
#include "src/isa/assembler.h"

namespace {

class BenchKernel : public ckapp::AppKernelBase {
 public:
  BenchKernel() : ckapp::AppKernelBase("fig2", 256) {}
};

}  // namespace

int main(int argc, char** argv) {
  ck::ObsSession obs(argc, argv);
  ckbench::World world;
  obs.Attach(world.machine(), &world.ck());
  BenchKernel app;
  world.Launch(app);
  ck::CkApi api = world.ApiFor(app);
  uint32_t space = app.CreateSpace(api);

  constexpr uint32_t kPages = 64;
  app.DefineZeroRegion(space, 0x00400000, kPages, /*writable=*/true);
  for (uint32_t i = 0; i < kPages; ++i) {
    cksim::VirtAddr vaddr = 0x00400000 + i * cksim::kPageSize;
    ckapp::PageRecord* page = app.space(space).FindPage(vaddr);
    app.MaterializePage(api, app.space(space), *page, vaddr);
  }

  ckisa::AssembleResult assembled = ckisa::Assemble(R"(
      li   t0, 0x00400000
      li   t1, 64
      li   t3, 4096
    loop:
      lw   t2, 0(t0)
      add  t0, t0, t3
      addi t1, t1, -1
      bne  t1, r0, loop
      halt
  )", 0x10000);
  app.LoadProgramImage(space, assembled.program, /*writable=*/false);
  ckapp::GuestThreadParams params;
  params.space_index = space;
  params.entry = 0x10000;
  params.cpu_hint = 0;
  uint32_t guest = app.CreateGuestThread(api, params);

  // Warmup faults (program text, stack) to skip in the reported population:
  // wait until the first mapping-load fault lands, then snapshot the counts.
  world.RunUntil([&] {
    return world.ck().fault_step_stats().handle_load.count() >= 3 ||
           app.thread(guest).finished;
  });
  ckbase::Stats warm_total = world.ck().fault_step_stats().total;
  world.RunUntil([&] { return app.thread(guest).finished; });

  const ck::FaultStepStats& steps = world.ck().fault_step_stats();
  uint64_t faults = world.ck().fault_traces_recorded();

  ckbench::Title("Figure 2: page fault walk, per-step simulated microseconds");
  std::printf("%-58s %8s %8s %8s\n", "step", "mean us", "p95 us", "sd us");
  ckbench::Rule();
  std::printf("%-58s %8.1f %8.1f %8.1f\n",
              "1-2: trap, save state, redirect into app kernel handler",
              steps.transfer.Mean(), steps.transfer.Percentile(95),
              steps.transfer.StdDev());
  std::printf("%-58s %8.1f %8.1f %8.1f\n",
              "3-4: handler navigates records, loads mapping descriptor",
              steps.handle_load.Mean(), steps.handle_load.Percentile(95),
              steps.handle_load.StdDev());
  std::printf("%-58s %8.1f %8.1f %8.1f\n",
              "5-6: exception complete, restore state, resume thread",
              steps.resume.Mean(), steps.resume.Percentile(95), steps.resume.StdDev());
  ckbench::Rule();
  std::printf("%-58s %8.1f %8.1f %8.1f   (%llu faults)\n", "total (paper: 99 us)",
              steps.total.Mean(), steps.total.Percentile(95), steps.total.StdDev(),
              static_cast<unsigned long long>(faults));
  // The warmup deltas show the histograms really accumulate the population
  // (satellite check for the old keep-only-the-last-fault behavior).
  std::printf("%-58s %8llu %8llu\n", "faults recorded (after warmup / total)",
              static_cast<unsigned long long>(steps.total.count() - warm_total.count()),
              static_cast<unsigned long long>(steps.total.count()));

  ckbench::Note("\nlast 4 completed faults (from the fault history ring):");
  std::vector<ck::FaultTrace> history = world.ck().FaultHistory();
  size_t start = history.size() > 4 ? history.size() - 4 : 0;
  for (size_t i = start; i < history.size(); ++i) {
    const ck::FaultTrace& t = history[i];
    std::printf("  fault[%zu]: transfer=%.1f  handle+load=%.1f  resume=%.1f  total=%.1f us\n",
                i, ckbench::ToUs(t.handler_start - t.trap_entry),
                t.mapping_loaded != 0 ? ckbench::ToUs(t.mapping_loaded - t.handler_start) : 0.0,
                t.mapping_loaded != 0 ? ckbench::ToUs(t.resumed - t.mapping_loaded) : 0.0,
                ckbench::ToUs(t.resumed - t.trap_entry));
  }

  ckbench::Note("\nshape checks: steps 3-4 (application-kernel policy + combined load call)");
  ckbench::Note("dominate; steps 1-2 are the fixed hardware/redirect cost the paper prices at");
  ckbench::Note("32 us; step 5 is folded into 4 by the optimized call, leaving resume cheap.");
  obs.Finish();
  return 0;
}

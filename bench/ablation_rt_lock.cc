// Ablation A3: locking real-time objects in the Cache Kernel (sections 2.3,
// 4.3). A periodic control task shares the machine with a batch kernel that
// thrashes a deliberately small mapping cache. With the task's thread,
// space and working-set mappings locked, activation latency is flat; with
// locking off, reclaimed mappings add fault-path latency and deadlines slip.

#include "bench/bench_util.h"
#include "src/rt/rt_kernel.h"

namespace {

class Thrasher : public ck::NativeProgram {
 public:
  ck::NativeOutcome Step(ck::NativeCtx& ctx) override {
    for (int i = 0; i < 16; ++i) {
      ctx.LoadWord(0x70000000 + (cursor_ % 400) * cksim::kPageSize);
      ++cursor_;
    }
    ck::NativeOutcome outcome;
    outcome.action = ck::NativeOutcome::Action::kYield;
    return outcome;
  }
  uint32_t cursor_ = 0;
};

struct Row {
  uint64_t activations;
  uint64_t misses;
  double mean_us, worst_us;
  uint64_t reclamations;
};

Row Run(bool lock_resources) {
  ck::CacheKernelConfig config;
  config.mapping_slots = 64;  // tiny cache: heavy replacement interference
  ckbench::World world(config);

  ckrt::RtConfig rt_config;
  rt_config.lock_resources = lock_resources;
  ckrt::RtKernel rt(world.ck(), rt_config);
  {
    cksrm::LaunchParams params;
    params.page_groups = 2;
    params.max_priority = 30;
    params.locked_kernel_object = lock_resources;
    params.lock_limits[static_cast<int>(ck::ObjectType::kMapping)] = 32;
    params.lock_limits[static_cast<int>(ck::ObjectType::kThread)] = 8;
    params.lock_limits[static_cast<int>(ck::ObjectType::kSpace)] = 2;
    world.srm().Launch(rt, params);
  }
  ck::CkApi rt_api = world.ApiFor(rt);
  ckrt::RtTaskConfig task;
  task.period = 50000;      // 2 ms
  task.deadline = 12500;    // 500 us
  task.working_set_pages = 8;
  task.cpu = 0;
  rt.Setup(rt_api, {task});

  ckapp::AppKernelBase batch("batch", 64);
  cksrm::LaunchParams batch_params;
  batch_params.page_groups = 4;
  world.srm().Launch(batch, batch_params);
  ck::CkApi batch_api = world.ApiFor(batch);
  uint32_t batch_space = batch.CreateSpace(batch_api);
  batch.DefineZeroRegion(batch_space, 0x70000000, 400, /*writable=*/true);
  Thrasher thrasher;
  batch.CreateNativeThread(batch_api, batch_space, &thrasher, 10, false, /*cpu=*/1);

  world.machine().RunFor(100 * task.period);

  const ckrt::RtTaskStats& stats = rt.task_stats(0);
  Row row;
  row.activations = stats.activations;
  row.misses = stats.deadline_misses;
  row.mean_us = stats.activations > 0 ? ckbench::ToUs(stats.total_latency) /
                                            static_cast<double>(stats.activations)
                                      : 0;
  row.worst_us = ckbench::ToUs(stats.worst_latency);
  row.reclamations =
      world.ck().stats().reclamations[static_cast<int>(ck::ObjectType::kMapping)];
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  ck::ObsSession obs(argc, argv);
  ckbench::ObsSlot() = &obs;
  ckbench::Title("Ablation A3: locked real-time objects vs. mapping-cache thrash");
  std::printf("%-18s %12s %10s %12s %12s %14s\n", "configuration", "activations", "misses",
              "mean us", "worst us", "map reclaims");
  ckbench::Rule();
  Row locked = Run(true);
  Row unlocked = Run(false);
  std::printf("%-18s %12llu %10llu %12.1f %12.1f %14llu\n", "locked",
              static_cast<unsigned long long>(locked.activations),
              static_cast<unsigned long long>(locked.misses), locked.mean_us, locked.worst_us,
              static_cast<unsigned long long>(locked.reclamations));
  std::printf("%-18s %12llu %10llu %12.1f %12.1f %14llu\n", "unlocked",
              static_cast<unsigned long long>(unlocked.activations),
              static_cast<unsigned long long>(unlocked.misses), unlocked.mean_us,
              unlocked.worst_us, static_cast<unsigned long long>(unlocked.reclamations));
  ckbench::Rule();
  ckbench::Note("shape checks: both configurations suffer the same mapping-cache churn from");
  ckbench::Note("the batch kernel, but the locked task's working set is exempt from");
  ckbench::Note("reclamation, so its worst-case activation latency stays at the no-load level");
  ckbench::Note("-- the basis for 'real-time processing co-existing with batch application");
  ckbench::Note("kernels' (sections 2.3, 4.3).");
  obs.Finish();
  return 0;
}

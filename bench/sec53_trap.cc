// Section 5.3 reproduction: trap forwarding cost ("the cost of a simple trap
// from a UNIX program to its emulator is 37 microseconds, effectively the
// cost of a getpid operation").
//
// A CKVM guest under the UNIX emulator executes getpid in a tight loop; we
// time the full round trip: trap instruction -> Cache Kernel -> forward to
// the emulator's trap handler -> emulator looks up the pid -> resume with
// the return value.

#include "bench/bench_util.h"
#include "src/isa/assembler.h"
#include "src/unixemu/unix_emulator.h"

int main(int argc, char** argv) {
  ck::ObsSession obs(argc, argv);
  ckbench::ObsSlot() = &obs;
  ckbench::World world;
  ckunix::UnixConfig config;
  config.run_scheduler_thread = false;  // quiet machine for the measurement
  ckunix::UnixEmulator unix_emulator(world.ck(), config);
  {
    cksrm::LaunchParams params;
    params.page_groups = 4;
    params.max_priority = 31;
    world.srm().Launch(unix_emulator, params);
  }
  ck::CkApi api = world.ApiFor(unix_emulator);

  ckisa::AssembleResult assembled = ckisa::Assemble(R"(
      li   t2, 200        ; iterations
    loop:
      trap 16             ; getpid
      addi t2, t2, -1
      bne  t2, r0, loop
      halt
  )", 0x10000);
  if (!assembled.ok) {
    std::printf("asm: %s\n", assembled.error.c_str());
    return 1;
  }
  int pid = unix_emulator.Exec(api, assembled.program);

  // Warm the text page in, then measure the steady-state syscall loop.
  world.RunUntil([&] { return unix_emulator.process(pid).syscalls >= 5; });
  cksim::Cycles start = world.machine().cpu(0).clock();
  uint64_t start_calls = unix_emulator.process(pid).syscalls;
  world.RunUntil([&] {
    return unix_emulator.process(pid).state == ckunix::Process::State::kZombie;
  });
  // The guest thread runs on cpu 0 (first round-robin placement).
  cksim::Cycles elapsed = world.machine().cpu(0).clock() - start;
  uint64_t calls = unix_emulator.process(pid).syscalls - start_calls;

  // Subtract the loop's own instructions (3 per iteration: trap counted in
  // the forward path, addi, bne).
  double per_call_us = ckbench::ToUs(elapsed) / static_cast<double>(calls);
  double loop_overhead_us =
      ckbench::ToUs(2 * world.machine().cost().instruction) / 1.0;  // addi + bne

  ckbench::Title("Section 5.3: getpid via trap forwarding");
  std::printf("%-44s %10s\n", "", "us/call");
  ckbench::Rule();
  std::printf("%-44s %10.0f\n", "paper: UNIX getpid through the emulator", 37.0);
  std::printf("%-44s %10.0f\n", "paper: same operation on Mach 2.5 (NextStation)", 25.0);
  std::printf("%-44s %10.1f\n", "simulated: getpid through our emulator",
              per_call_us - loop_overhead_us);
  ckbench::Rule();
  std::printf("calls measured: %llu, total simulated time %.1f us\n",
              static_cast<unsigned long long>(calls), ckbench::ToUs(elapsed));
  std::printf("traps forwarded by the Cache Kernel: %llu\n",
              static_cast<unsigned long long>(world.ck().stats().traps_forwarded));
  ckbench::Note("shape check: same order of magnitude as the paper; the cost is dominated by");
  ckbench::Note("trap entry/exit and the redirect into the application kernel (Figure 2 path),");
  ckbench::Note("and is insignificant against real system-call processing (section 5.3).");
  obs.Finish();
  return 0;
}

// Extension bench: distributed-shared-memory page migration cost over the
// consistency-fault mechanism (section 2.1 footnote 1).
//
// Measures the full migration path: consistency fault -> forward to the DSM
// kernel -> fetch RPC over the fiber channel (two half-page fragments) ->
// peer invalidation -> install -> faulting thread resumed. Reported against
// the local-access baseline so the cost of sharing is visible, and swept
// over ping-pong round counts to show the steady-state migration rate.

#include "bench/bench_util.h"
#include "src/dsm/dsm_kernel.h"
#include "src/sim/devices.h"

namespace {

class TouchWorker : public ck::NativeProgram {
 public:
  explicit TouchWorker(cksim::VirtAddr addr) : addr_(addr) {}

  ck::NativeOutcome Step(ck::NativeCtx& ctx) override {
    ck::NativeOutcome outcome;
    if (!armed_) {
      outcome.action = ck::NativeOutcome::Action::kBlock;
      return outcome;
    }
    ckbase::Result<uint32_t> value = ctx.LoadWord(addr_);
    if (value.ok()) {
      ctx.StoreWord(addr_, value.value() + 1);
      ++touches;
      armed_ = false;
      outcome.action = ck::NativeOutcome::Action::kBlock;
      return outcome;
    }
    outcome.action = ck::NativeOutcome::Action::kYield;  // fetch in flight
    return outcome;
  }

  void Arm() { armed_ = true; }
  uint64_t touches = 0;

 private:
  cksim::VirtAddr addr_;
  bool armed_ = false;
};

}  // namespace

int main(int argc, char** argv) {
  ck::ObsSession obs(argc, argv);
  ckbench::ObsSlot() = &obs;
  // Two machines, fiber channel, DSM kernel on each (mirrors tests/dsm_test).
  ckbench::World a, b;
  uint32_t group_a = a.srm().ReserveGroups(1).value();
  uint32_t group_b = b.srm().ReserveGroups(1).value();
  cksim::FiberChannelDevice fc_a(a.machine().memory(), &a.ck(),
                                 group_a * cksim::kPageGroupBytes, 4, 4, 2500);
  cksim::FiberChannelDevice fc_b(b.machine().memory(), &b.ck(),
                                 group_b * cksim::kPageGroupBytes, 4, 4, 2500);
  cksim::FiberChannelDevice::Connect(fc_a, fc_b);
  a.machine().AttachDevice(&fc_a);
  b.machine().AttachDevice(&fc_b);

  ckdsm::DsmConfig config_a{2, 0x48000000, true};
  ckdsm::DsmConfig config_b{2, 0x48000000, false};
  ckdsm::DsmKernel dsm_a(a.ck(), config_a), dsm_b(b.ck(), config_b);
  a.Launch(dsm_a, 2);
  b.Launch(dsm_b, 2);
  a.srm().GrantSharedGroups(dsm_a, group_a, 1, ck::GroupAccess::kReadWrite);
  b.srm().GrantSharedGroups(dsm_b, group_b, 1, ck::GroupAccess::kReadWrite);

  ckapp::MessageChannel out_a, in_a, out_b, in_b;
  ck::CkApi api_a = a.ApiFor(dsm_a);
  ck::CkApi api_b = b.ApiFor(dsm_b);
  dsm_a.Setup(api_a, out_a, in_a);
  dsm_b.Setup(api_b, out_b, in_b);
  out_a.ConfigureSender(dsm_a, dsm_a.space_index(), 0x00800000, fc_a.tx_slot(0), 4);
  in_a.ConfigureReceiver(dsm_a, dsm_a.space_index(), 0x00900000, fc_a.rx_slot(0), 4,
                         dsm_a.endpoint_thread());
  out_b.ConfigureSender(dsm_b, dsm_b.space_index(), 0x00800000, fc_b.tx_slot(0), 4);
  in_b.ConfigureReceiver(dsm_b, dsm_b.space_index(), 0x00900000, fc_b.rx_slot(0), 4,
                         dsm_b.endpoint_thread());
  in_a.PrimeReceiver(api_a);
  in_b.PrimeReceiver(api_b);

  TouchWorker worker_a(dsm_a.PageVaddr(0)), worker_b(dsm_b.PageVaddr(0));
  uint32_t thread_a = dsm_a.CreateNativeThread(api_a, dsm_a.space_index(), &worker_a, 12);
  uint32_t thread_b = dsm_b.CreateNativeThread(api_b, dsm_b.space_index(), &worker_b, 12);

  auto run_both = [&](const std::function<bool()>& done) {
    for (uint64_t i = 0; i < 3000000 && !done(); ++i) {
      a.machine().Step();
      b.machine().Step();
    }
  };
  auto touch = [&](ckbench::World& world, ckdsm::DsmKernel& dsm, TouchWorker& worker,
                   uint32_t thread) {
    uint64_t before = worker.touches;
    worker.Arm();
    ck::CkApi api(world.ck(), dsm.self(), world.machine().cpu(0));
    dsm.EnsureThreadLoaded(api, thread);
    api.ResumeThread(dsm.thread(thread).ck_id);
    run_both([&] { return worker.touches > before; });
  };

  // Local baseline: A touches its own page repeatedly.
  ckbase::Stats local;
  for (int i = 0; i < 20; ++i) {
    cksim::Cycles start = a.machine().Now();
    touch(a, dsm_a, worker_a, thread_a);
    local.Add(ckbench::ToUs(a.machine().Now() - start));
  }

  // Migration: alternate A and B so every touch moves the page.
  ckbase::Stats migrate;
  for (int i = 0; i < 20; ++i) {
    cksim::Cycles start = b.machine().Now();
    touch(b, dsm_b, worker_b, thread_b);
    migrate.Add(ckbench::ToUs(b.machine().Now() - start));
    touch(a, dsm_a, worker_a, thread_a);
  }

  ckbench::Title("DSM extension: page migration over consistency faults");
  std::printf("%-44s %12s %12s\n", "access kind", "mean us", "p95 us");
  ckbench::Rule();
  std::printf("%-44s %12.1f %12.1f\n", "owned page (no fault)", local.Mean(),
              local.Percentile(95));
  std::printf("%-44s %12.1f %12.1f\n", "remote page (fault + fetch + migrate)",
              migrate.Mean(), migrate.Percentile(95));
  ckbench::Rule();
  std::printf("migration / local ratio: %.0fx;  fetches A=%llu B=%llu, invalidations A=%llu "
              "B=%llu\n",
              migrate.Mean() / local.Mean(),
              static_cast<unsigned long long>(dsm_a.dsm_stats().fetches_sent),
              static_cast<unsigned long long>(dsm_b.dsm_stats().fetches_sent),
              static_cast<unsigned long long>(dsm_a.dsm_stats().invalidations),
              static_cast<unsigned long long>(dsm_b.dsm_stats().invalidations));
  ckbench::Note("shape checks: owned-page access costs nothing beyond the memory system;");
  ckbench::Note("migration pays fault forwarding + two RPC fragments over the wire (dominated");
  ckbench::Note("by the fiber-channel latency) -- the consistency protocol lives entirely in");
  ckbench::Note("user-level software, with the Cache Kernel providing only the fault.");
  obs.Finish();
  return 0;
}

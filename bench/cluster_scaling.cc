// Host-side scaling of the parallel cluster driver (src/sim/cluster.h).
//
// N MPMs, linked in a chain by fiber channel (lookahead 2500 cycles), each
// running compute-bound native threads, with light cross-machine packet
// traffic injected at barriers. Each measurement runs the identical window
// schedule twice -- single-threaded reference driver, then one host worker
// thread per machine -- and reports:
//
//   serial_ms / parallel_ms   host wall-clock per run
//   speedup                   serial_ms / parallel_ms
//   machines                  N
//
// The run also re-checks determinism: final machine clocks must be identical
// across the two modes (the full bit-exactness proof is tests/cluster_test.cc).
//
// HONEST-NUMBERS NOTE: speedup > 1 requires host cores to run workers on.
// The recorded BENCH_cluster_scaling.json carries the google-benchmark
// context (num_cpus); on a single-core host the parallel driver can only pay
// thread-switch overhead, so speedup ~= 1/(1+overhead) there, and >= 2x at
// 4 MPMs is reachable only with >= 4 host cores (docs/PERFORMANCE.md,
// "Cluster parallelism").

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <vector>

#include "src/appkernel/app_kernel_base.h"
#include "src/ck/observability.h"
#include "src/sim/cluster.h"
#include "src/sim/devices.h"
#include "src/sim/machine.h"
#include "src/srm/srm.h"

namespace {

constexpr cksim::Cycles kSimCycles = 2000000;  // 80 ms of simulated time
constexpr cksim::Cycles kWireLatency = 2500;

// Compute-bound guest work: burns host cycles (the thing worker threads can
// overlap) while advancing the simulated clock deterministically.
class ComputeProgram : public ck::NativeProgram {
 public:
  ck::NativeOutcome Step(ck::NativeCtx& ctx) override {
    uint32_t h = 0x811c9dc5u + seed_;
    for (uint32_t i = 0; i < 2000; ++i) {
      h = (h ^ i) * 16777619u;
    }
    benchmark::DoNotOptimize(h);
    seed_ = h;
    ctx.Charge(500);
    ck::NativeOutcome outcome;
    outcome.action = ck::NativeOutcome::Action::kYield;
    return outcome;
  }

 private:
  uint32_t seed_ = 0;
};

struct Mpm {
  Mpm() : machine(cksim::MachineConfig()), ck(machine, ck::CacheKernelConfig()), srm(ck) {
    srm.Boot();
  }
  cksim::Machine machine;
  ck::CacheKernel ck;
  cksrm::Srm srm;
  std::unique_ptr<cksim::FiberChannelDevice> fc;  // link to the next machine
  std::unique_ptr<cksim::FiberChannelDevice> fc_prev;
  ckapp::AppKernelBase app{"compute", 64};
  ComputeProgram programs[2];
};

struct Run {
  double host_ms = 0;
  std::vector<cksim::Cycles> final_clocks;
};

Run RunOnce(uint32_t machines, bool parallel) {
  std::vector<std::unique_ptr<Mpm>> mpms;
  for (uint32_t i = 0; i < machines; ++i) {
    mpms.push_back(std::make_unique<Mpm>());
  }

  cksim::Cluster cluster;
  for (auto& mpm : mpms) {
    cluster.AddMachine(&mpm->machine);
  }
  // Chain topology: i <-> i+1. Each endpoint's region sits in an SRM-reserved
  // page group of its own machine.
  for (uint32_t i = 0; i + 1 < machines; ++i) {
    Mpm& lo = *mpms[i];
    Mpm& hi = *mpms[i + 1];
    uint32_t group_lo = lo.srm.ReserveGroups(1).value();
    uint32_t group_hi = hi.srm.ReserveGroups(1).value();
    lo.fc = std::make_unique<cksim::FiberChannelDevice>(
        lo.machine.memory(), &lo.ck, group_lo * cksim::kPageGroupBytes, 4, 4, kWireLatency);
    hi.fc_prev = std::make_unique<cksim::FiberChannelDevice>(
        hi.machine.memory(), &hi.ck, group_hi * cksim::kPageGroupBytes, 4, 4, kWireLatency);
    cluster.Link(*lo.fc, *hi.fc_prev);
    lo.machine.AttachDevice(lo.fc.get());
    hi.machine.AttachDevice(hi.fc_prev.get());
  }
  cluster.set_parallel(parallel);

  // Two compute threads per machine.
  for (auto& mpm : mpms) {
    cksrm::LaunchParams params;
    params.page_groups = 2;
    mpm->srm.Launch(mpm->app, params);
    ck::CkApi api(mpm->ck, mpm->app.self(), mpm->machine.cpu(0));
    uint32_t space = mpm->app.CreateSpace(api);
    mpm->app.CreateNativeThread(api, space, &mpm->programs[0], 16);
    mpm->app.CreateNativeThread(api, space, &mpm->programs[1], 16);
  }

  // Light deterministic cross-machine traffic: at each done-predicate check
  // (a barrier), machine 0 rings a packet down its link.
  const cksim::Cycles deadline = cluster.Now() + kSimCycles;
  uint32_t pings = 0;
  auto inject_and_check = [&] {
    if (machines > 1 && mpms[0]->fc != nullptr) {
      cksim::FiberChannelDevice& fc = *mpms[0]->fc;
      uint32_t payload = ++pings;
      mpms[0]->machine.memory().WriteWord(fc.tx_slot(0), 4);
      mpms[0]->machine.memory().WriteWord(fc.tx_slot(0) + 4, payload);
      fc.OnDoorbell(fc.tx_slot(0), mpms[0]->machine.Now());
    }
    return cluster.Now() >= deadline;
  };

  Run run;
  auto start = std::chrono::steady_clock::now();
  cluster.RunUntilDone(inject_and_check, kSimCycles + 10 * kWireLatency);
  auto stop = std::chrono::steady_clock::now();
  run.host_ms = std::chrono::duration<double, std::milli>(stop - start).count();
  for (auto& mpm : mpms) {
    run.final_clocks.push_back(mpm->machine.Now());
  }
  return run;
}

void BM_ClusterScaling(benchmark::State& state) {
  uint32_t machines = static_cast<uint32_t>(state.range(0));
  double serial_ms = 0;
  double parallel_ms = 0;
  for (auto _ : state) {
    Run serial = RunOnce(machines, /*parallel=*/false);
    Run parallel = RunOnce(machines, /*parallel=*/true);
    serial_ms += serial.host_ms;
    parallel_ms += parallel.host_ms;
    if (serial.final_clocks != parallel.final_clocks) {
      state.SkipWithError("parallel diverged from serial reference");
      return;
    }
  }
  double n = static_cast<double>(state.iterations());
  state.counters["machines"] = static_cast<double>(machines);
  state.counters["serial_ms"] = serial_ms / n;
  state.counters["parallel_ms"] = parallel_ms / n;
  state.counters["speedup"] = parallel_ms > 0 ? serial_ms / parallel_ms : 0;
}
BENCHMARK(BM_ClusterScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

}  // namespace

int main(int argc, char** argv) {
  ck::ObsSession obs(argc, argv);
#ifdef NDEBUG
  benchmark::AddCustomContext("binary_build_type", "release");
#else
  benchmark::AddCustomContext("binary_build_type", "debug");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// Tiered physical memory: DRAM:slow split sweep (docs/TIERING.md).
//
// Three legs, all simulated-cycle deterministic:
//
// BM_TieredPaging/<dram_pct>: a Zipf(s=1.0) paging workload over 256 mapped
//   pages, replayed twice at the same DRAM budget -- once with demotion
//   (cold DRAM frames retarget to the slow tier, mappings stay loaded) and
//   once with full eviction (the pre-tiering reclaim: unload + write back
//   every mapping of the victim frame). The mapping cache is sized over the
//   footprint so ONLY the tier layer applies pressure.
//     demote_cycles_per_access / evict_cycles_per_access
//     demote_advantage        evict / demote cycles (acceptance: >= 1.0)
//     demote_writebacks / evict_writebacks (acceptance: demote <= evict)
//     demotions, promotions, evictions
//
// BM_TieredDb/<dram_pct>: the database kernel (src/db) scanning and point-
//   reading a 96-page table under the same demote-vs-evict comparison. Here
//   eviction rips pages out of the DB's buffer behind its back (writeback +
//   re-fault + page-in) while demotion keeps them resident at slow-fill
//   cost, so the buffer hit rate itself becomes tier-sensitive.
//     demote_us / evict_us, demote_advantage (acceptance: >= 1.0)
//     demote_hit_pct / evict_hit_pct (acceptance: demote >= evict)
//
// BM_TieredFsDeterminism: the 2-client file-service cluster with tiering on
//   every client kernel, run serial then host-parallel. Acceptance: final
//   clocks and per-client tier ledgers bit-exact (tier transitions happen
//   only at deterministic serial points), and tier_events > 0 (the run
//   actually exercised the tier machinery).
//
// Any failed acceptance gate marks the run skipped AND makes the binary
// exit nonzero, so the memory_tiers_run ctest fixture and scripts/bench.sh
// both fail loudly. Recorded as BENCH_memory_tiers.json.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "bench/bench_util.h"
#include "src/base/rng.h"
#include "src/ck/cache_kernel.h"
#include "src/db/db_kernel.h"
#include "src/fs/fs_cluster.h"
#include "src/sim/machine.h"

namespace {

using ck::CacheKernel;
using ck::CkApi;
using ck::MappingSpec;
using ckbase::CkStatus;

// Exit status for main(): google-benchmark's SkipWithError does not force a
// nonzero exit on its own, and the ctest fixture keys off the exit code.
bool g_gate_failed = false;

void Gate(benchmark::State& state, bool ok, const char* message) {
  if (!ok) {
    g_gate_failed = true;
    state.SkipWithError(message);
  }
}

// ---------------------------------------------------------------------------
// Leg 1: Zipf paging against a fixed DRAM budget.
// ---------------------------------------------------------------------------

constexpr uint32_t kPagingFootprint = 256;  // distinct pages (= frames)
constexpr uint32_t kPagingAccesses = 8192;
constexpr uint32_t kPagingVbase = 0x400;
constexpr uint32_t kPagingFrameBase = 0x100000 / cksim::kPageSize;
// Referenced-bit harvest + maintenance cadence: flush the TLB and step the
// machine (TierMaintenance runs at the head of turn preparation) every round.
constexpr uint32_t kPagingRound = 64;

// The tier layer reclaims through the mapping writeback path in evict mode;
// this bench never faults, so the handlers are sinks.
class SinkKernel : public ck::AppKernel {
 public:
  ck::HandlerAction HandleFault(const ck::FaultForward&, CkApi&) override {
    return ck::HandlerAction::kTerminate;
  }
  ck::TrapAction HandleTrap(const ck::TrapForward&, CkApi&) override { return {}; }
  void OnMappingWriteback(const ck::MappingWriteback&, CkApi&) override {}
  void OnThreadWriteback(const ck::ThreadWriteback&, CkApi&) override {}
  void OnSpaceWriteback(const ck::SpaceWriteback&, CkApi&) override {}
};

// Inverse-CDF Zipf(s=1.0) trace, fixed seed: identical for both modes.
std::vector<uint32_t> BuildZipfTrace() {
  std::vector<double> cdf(kPagingFootprint);
  double sum = 0.0;
  for (uint32_t r = 0; r < kPagingFootprint; ++r) {
    sum += 1.0 / static_cast<double>(r + 1);
    cdf[r] = sum;
  }
  ckbase::Rng rng(0x7145);
  std::vector<uint32_t> trace;
  trace.reserve(kPagingAccesses);
  for (uint32_t i = 0; i < kPagingAccesses; ++i) {
    double u = rng.NextDouble() * sum;
    uint32_t lo = 0, hi = kPagingFootprint - 1;
    while (lo < hi) {
      uint32_t mid = (lo + hi) / 2;
      if (cdf[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    trace.push_back(lo);
  }
  return trace;
}

struct PagingTotals {
  uint64_t accesses = 0;
  uint64_t reloads = 0;  // mapping gone (evicted) at access time
  cksim::Cycles cycles = 0;
  uint64_t writebacks = 0;
  uint64_t demotions = 0;
  uint64_t promotions = 0;
  uint64_t evictions = 0;
  uint64_t scan_steps = 0;
};

PagingTotals RunPaging(uint32_t dram_frames, bool demote) {
  cksim::MachineConfig mc;
  mc.memory_bytes = 8u << 20;
  // One CPU: Machine::Step drives the lowest-clock CPU, and the trace charges
  // cpu 0 directly -- idle sibling CPUs would capture every maintenance turn
  // at a clock the promotion period never reaches.
  mc.cpu_count = 1;
  cksim::Machine machine(mc);
  ck::CacheKernelConfig config;
  // The mapping cache must never reclaim: tier pressure is the only
  // replacement at work, so the demote-vs-evict delta is pure.
  config.mapping_slots = 2 * kPagingFootprint;
  config.tier_dram_frames = dram_frames;
  config.tier_demote = demote;
  CacheKernel ck(machine, config);
  SinkKernel sink;
  ck::KernelId kid = ck.BootFirstKernel(&sink, 0);
  CkApi api(ck, kid, machine.cpu(0));
  ck::SpaceId space = api.LoadSpace(0, false).value();
  ck::ThreadSpec tspec;
  tspec.space = space;
  tspec.start_blocked = true;
  ck::ThreadId thread = api.LoadThread(tspec).value();
  uint16_t asid = static_cast<uint16_t>(space.id.slot);

  std::vector<uint32_t> trace = BuildZipfTrace();
  PagingTotals totals;
  cksim::Cycles start = machine.cpu(0).clock();
  for (size_t i = 0; i < trace.size(); ++i) {
    if (i % kPagingRound == 0) {
      // Harvest referenced bits (next accesses re-walk the table) and let
      // the promotion scan run.
      machine.cpu(0).mmu().tlb().FlushAsid(asid);
      machine.Step();
    }
    uint32_t vpage = kPagingVbase + trace[i];
    cksim::VirtAddr vaddr = vpage * cksim::kPageSize;
    ++totals.accesses;
    if (!api.QueryMapping(space, vaddr).ok()) {
      // Full eviction unloaded this mapping; pay the reload.
      ++totals.reloads;
      MappingSpec spec;
      spec.space = space;
      spec.vaddr = vaddr;
      spec.paddr = (kPagingFrameBase + (vpage - kPagingVbase)) * cksim::kPageSize;
      if (api.LoadMapping(spec) != CkStatus::kOk) {
        continue;
      }
    }
    ck.GuestLoad(kid, machine.cpu(0), thread, vaddr);
  }
  totals.cycles = machine.cpu(0).clock() - start;
  totals.writebacks = ck.stats().writebacks[static_cast<uint32_t>(ck::ObjectType::kMapping)];
  totals.demotions = ck.stats().tier_demotions;
  totals.promotions = ck.stats().tier_promotions;
  totals.evictions = ck.stats().tier_evictions;
  totals.scan_steps = ck.stats().tier_scan_steps;
  return totals;
}

void BM_TieredPaging(benchmark::State& state) {
  uint32_t pct = static_cast<uint32_t>(state.range(0));
  uint32_t dram_frames = kPagingFootprint * pct / 100;
  PagingTotals d, e;
  for (auto _ : state) {
    d = RunPaging(dram_frames, /*demote=*/true);
    e = RunPaging(dram_frames, /*demote=*/false);
  }
  double accesses = static_cast<double>(d.accesses);
  double d_cpa = static_cast<double>(d.cycles) / accesses;
  double e_cpa = static_cast<double>(e.cycles) / accesses;
  state.counters["dram_frames"] = static_cast<double>(dram_frames);
  state.counters["footprint"] = static_cast<double>(kPagingFootprint);
  state.counters["demote_cycles_per_access"] = d_cpa;
  state.counters["evict_cycles_per_access"] = e_cpa;
  state.counters["demote_advantage"] = e_cpa / d_cpa;
  state.counters["demote_writebacks"] = static_cast<double>(d.writebacks);
  state.counters["evict_writebacks"] = static_cast<double>(e.writebacks);
  state.counters["demotions"] = static_cast<double>(d.demotions);
  state.counters["promotions"] = static_cast<double>(d.promotions);
  state.counters["evictions"] = static_cast<double>(e.evictions);
  if (pct < 100) {
    // Under pressure the whole point of the tier is that demoting a cold
    // frame (and paying slow fills on its stragglers) undercuts unloading
    // and writing back every mapping of the victim.
    Gate(state, d.demotions > 0, "no demotions at a pressured DRAM budget");
    Gate(state, e.evictions > 0, "no evictions at a pressured DRAM budget");
    Gate(state, d.promotions > 0, "promotion loop never fired");
    Gate(state, d_cpa <= e_cpa, "demotion did not beat eviction on cycles/access");
    Gate(state, d.writebacks <= e.writebacks, "demotion wrote back more than eviction");
  } else {
    // At or over the footprint there is no pressure and the modes agree.
    Gate(state, d.demotions == 0 && e.evictions == 0,
         "tier reclaim ran without DRAM pressure");
  }
}
BENCHMARK(BM_TieredPaging)
    ->Arg(25)
    ->Arg(50)
    ->Arg(75)
    ->Arg(100)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Leg 2: database buffer under tier pressure.
// ---------------------------------------------------------------------------

constexpr uint32_t kDbTablePages = 96;

struct DbTotals {
  cksim::Cycles cycles = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t demotions = 0;
  uint64_t promotions = 0;
  uint64_t evictions = 0;
  uint64_t writebacks = 0;
};

DbTotals RunDb(uint32_t dram_frames, bool demote) {
  ck::CacheKernelConfig ck_config;
  ck_config.tier_dram_frames = dram_frames;
  ck_config.tier_demote = demote;
  ckbench::World world(ck_config);
  ckdb::DbConfig config;
  config.table_pages = kDbTablePages;
  // Pool >= table: the DB's own ChooseVictim never fires, so all buffer
  // pressure comes from the tier layer underneath it.
  config.buffer_pages = kDbTablePages;
  config.policy = ckdb::Replacement::kLru;
  ckdb::DbKernel db(world.ck(), config);
  world.Launch(db, /*page_groups=*/1);
  ck::CkApi api = world.ApiFor(db);
  db.Setup(api);

  db.RunScan();  // cold: populate the buffer
  uint64_t hits0 = db.query_stats().buffer_hits;
  uint64_t miss0 = db.query_stats().buffer_misses;
  cksim::Cycles start = world.machine().Now();
  db.RunScan();
  db.RunScan();
  db.RunPointLookups(512);
  DbTotals totals;
  totals.cycles = world.machine().Now() - start;
  totals.hits = db.query_stats().buffer_hits - hits0;
  totals.misses = db.query_stats().buffer_misses - miss0;
  const ck::CkStats& stats = world.ck().stats();
  totals.demotions = stats.tier_demotions;
  totals.promotions = stats.tier_promotions;
  totals.evictions = stats.tier_evictions;
  totals.writebacks = stats.writebacks[static_cast<uint32_t>(ck::ObjectType::kMapping)];
  return totals;
}

void BM_TieredDb(benchmark::State& state) {
  uint32_t pct = static_cast<uint32_t>(state.range(0));
  uint32_t dram_frames = kDbTablePages * pct / 100;
  DbTotals d, e;
  for (auto _ : state) {
    d = RunDb(dram_frames, /*demote=*/true);
    e = RunDb(dram_frames, /*demote=*/false);
  }
  auto hit_pct = [](const DbTotals& t) {
    return 100.0 * static_cast<double>(t.hits) / static_cast<double>(t.hits + t.misses);
  };
  double d_us = ckbench::ToUs(d.cycles);
  double e_us = ckbench::ToUs(e.cycles);
  state.counters["dram_frames"] = static_cast<double>(dram_frames);
  state.counters["table_pages"] = static_cast<double>(kDbTablePages);
  state.counters["demote_us"] = d_us;
  state.counters["evict_us"] = e_us;
  state.counters["demote_advantage"] = e_us / d_us;
  state.counters["demote_hit_pct"] = hit_pct(d);
  state.counters["evict_hit_pct"] = hit_pct(e);
  state.counters["demotions"] = static_cast<double>(d.demotions);
  state.counters["promotions"] = static_cast<double>(d.promotions);
  state.counters["evictions"] = static_cast<double>(e.evictions);
  state.counters["demote_writebacks"] = static_cast<double>(d.writebacks);
  state.counters["evict_writebacks"] = static_cast<double>(e.writebacks);
  if (pct < 100) {
    Gate(state, d.demotions > 0, "no demotions at a pressured DRAM budget");
    Gate(state, d_us <= e_us, "demotion did not beat eviction on query cycles");
    Gate(state, d.writebacks <= e.writebacks, "demotion wrote back more than eviction");
    Gate(state, hit_pct(d) >= hit_pct(e), "demotion lost buffer hits to eviction");
  }
}
BENCHMARK(BM_TieredDb)
    ->Arg(25)
    ->Arg(50)
    ->Arg(75)
    ->Arg(100)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Leg 3: serial vs host-parallel cluster determinism with tiering on.
// ---------------------------------------------------------------------------

struct ClusterRun {
  std::vector<cksim::Cycles> clocks;
  std::vector<uint64_t> tier_events;
  bool ok = false;
};

ClusterRun RunTieredCluster(bool parallel) {
  ClusterRun run;
  ckfs::FsClusterConfig config;
  config.clients = 2;
  config.files = 4;
  config.file_pages = 8;
  config.scan_rounds = 2;
  config.parallel = parallel;
  config.tier_dram_frames = 24;  // below each client's working set
  ckfs::FsCluster world(config);
  if (!world.Run()) {
    return run;
  }
  for (uint32_t c = 0; c < config.clients; ++c) {
    if (!world.workload(c).done() || world.workload(c).failed()) {
      return run;
    }
    const ck::CkStats& stats = world.client_ck(c).stats();
    run.tier_events.push_back(stats.tier_demotions + stats.tier_promotions +
                              stats.tier_evictions + stats.tier_admissions);
  }
  run.clocks = world.FinalClocks();
  run.ok = true;
  return run;
}

void BM_TieredFsDeterminism(benchmark::State& state) {
  ClusterRun serial, par;
  for (auto _ : state) {
    serial = RunTieredCluster(/*parallel=*/false);
    par = RunTieredCluster(/*parallel=*/true);
  }
  Gate(state, serial.ok && par.ok, "tiered file-service cluster run failed");
  if (!serial.ok || !par.ok) {
    return;
  }
  Gate(state, serial.clocks == par.clocks,
       "tiering broke serial-vs-parallel clock determinism");
  Gate(state, serial.tier_events == par.tier_events,
       "tiering broke serial-vs-parallel tier-ledger determinism");
  uint64_t events = 0;
  for (uint64_t e : serial.tier_events) {
    events += e;
  }
  Gate(state, events > 0, "tiered cluster run produced no tier events");
  state.counters["clients"] = 2.0;
  state.counters["tier_events"] = static_cast<double>(events);
}
BENCHMARK(BM_TieredFsDeterminism)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
#ifdef NDEBUG
  benchmark::AddCustomContext("binary_build_type", "release");
#else
  benchmark::AddCustomContext("binary_build_type", "debug");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return g_gate_failed ? 1 : 0;
}

// Validates a Chrome trace_event JSON file produced by --trace=<file>:
// syntactically valid JSON with a traceEvents array and at least one event.
// Used by the bench_trace_smoke ctest/target; also handy standalone:
//
//   $ ./fig2_fault_steps --trace=/tmp/fig2.json && ./trace_check /tmp/fig2.json

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/obs/json_lint.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <trace.json>\n", argv[0]);
    return 2;
  }
  std::ifstream in(argv[1], std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "trace_check: cannot open %s\n", argv[1]);
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string text = buffer.str();

  std::string error;
  if (!obs::JsonLint(text, &error)) {
    std::fprintf(stderr, "trace_check: %s: invalid JSON: %s\n", argv[1], error.c_str());
    return 1;
  }
  if (text.find("\"traceEvents\"") == std::string::npos) {
    std::fprintf(stderr, "trace_check: %s: no traceEvents key\n", argv[1]);
    return 1;
  }
  if (text.find("\"ph\"") == std::string::npos) {
    std::fprintf(stderr, "trace_check: %s: traceEvents array has no events\n", argv[1]);
    return 1;
  }
  std::printf("trace_check: %s OK (%zu bytes)\n", argv[1], text.size());
  return 0;
}

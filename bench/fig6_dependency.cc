// Figure 6 reproduction: dependency-ordered writeback.
//
// Unloading an object first writes back everything that depends on it:
// signal mappings -> threads -> address spaces -> kernel. This bench (a)
// verifies the cascade order on an instrumented unload and (b) sweeps the
// dependent-object population to show unload cost scaling -- the "worst
// case ... writeback of all the address spaces, threads and mappings
// associated with the kernel ... can take several milliseconds" claim of
// section 5.2.

#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace {

class OrderRecorder : public ck::AppKernel {
 public:
  ck::HandlerAction HandleFault(const ck::FaultForward&, ck::CkApi&) override {
    return ck::HandlerAction::kTerminate;
  }
  ck::TrapAction HandleTrap(const ck::TrapForward&, ck::CkApi&) override { return {}; }
  void OnMappingWriteback(const ck::MappingWriteback&, ck::CkApi&) override {
    order.push_back('M');
  }
  void OnThreadWriteback(const ck::ThreadWriteback&, ck::CkApi&) override {
    order.push_back('T');
  }
  void OnSpaceWriteback(const ck::SpaceWriteback&, ck::CkApi&) override {
    order.push_back('S');
  }
  void OnKernelWriteback(const ck::KernelWriteback&, ck::CkApi&) override {
    order.push_back('K');
  }
  std::string order;
};

}  // namespace

int main(int argc, char** argv) {
  ck::ObsSession obs(argc, argv);
  ckbench::ObsSlot() = &obs;
  // (a) cascade order on one kernel unload.
  {
    ckbench::World world;
    OrderRecorder recorder;
    ck::CkApi srm_api(world.ck(), world.ck().first_kernel(), world.machine().cpu(0));
    ck::KernelId kid = srm_api.LoadKernel(&recorder, 1).value();
    uint32_t group = 0x100000 / cksim::kPageGroupBytes;
    srm_api.GrantPageGroups(kid, group, 2, ck::GroupAccess::kReadWrite);

    ck::CkApi api(world.ck(), kid, world.machine().cpu(0));
    ck::SpaceId space = api.LoadSpace(0, false).value();
    ck::ThreadSpec tspec;
    tspec.space = space;
    tspec.start_blocked = true;
    ck::ThreadId signal_thread = api.LoadThread(tspec).value();
    api.LoadThread(tspec);
    // Two plain mappings and one signal mapping.
    for (uint32_t i = 0; i < 3; ++i) {
      ck::MappingSpec mspec;
      mspec.space = space;
      mspec.vaddr = 0x4000 + i * cksim::kPageSize;
      mspec.paddr = 0x100000 + i * cksim::kPageSize;
      if (i == 2) {
        mspec.flags.message = true;
        mspec.signal_thread = signal_thread;
      }
      api.LoadMapping(mspec);
    }

    // SRM writeback recorder for the kernel object itself goes to the SRM,
    // so the kernel's own 'K' is not visible to `recorder`; the order within
    // the app kernel's objects is what Figure 6 specifies.
    srm_api.UnloadKernel(kid);
    ckbench::Title("Figure 6: writeback cascade order on kernel unload");
    std::printf("observed order (T=thread, M=mapping, S=space): %s\n", recorder.order.c_str());
    bool threads_first = recorder.order.find_first_of('T') < recorder.order.find_first_of('M');
    bool space_last = recorder.order.back() == 'S';
    std::printf("threads before this space's mappings: %s; space written back last: %s\n",
                threads_first ? "yes" : "NO", space_last ? "yes" : "NO");
  }

  // (b) unload cost vs. dependent population.
  ckbench::Title("Figure 6: kernel unload cost vs. dependent object population");
  std::printf("%10s %10s %10s | %14s %14s\n", "spaces", "threads", "mappings", "unload (us)",
              "per object");
  ckbench::Rule();
  for (uint32_t scale : {1u, 2u, 4u, 8u, 16u}) {
    ckbench::World world;
    OrderRecorder recorder;
    ck::CkApi srm_api(world.ck(), world.ck().first_kernel(), world.machine().cpu(0));
    ck::KernelId kid = srm_api.LoadKernel(&recorder, 1).value();
    uint32_t group = 0x100000 / cksim::kPageGroupBytes;
    srm_api.GrantPageGroups(kid, group, 4, ck::GroupAccess::kReadWrite);
    ck::CkApi api(world.ck(), kid, world.machine().cpu(0));

    uint32_t spaces = scale;
    uint32_t threads_per_space = 2;
    uint32_t mappings_per_space = 8 * scale;
    for (uint32_t s = 0; s < spaces; ++s) {
      ck::SpaceId space = api.LoadSpace(s, false).value();
      for (uint32_t t = 0; t < threads_per_space; ++t) {
        ck::ThreadSpec tspec;
        tspec.space = space;
        tspec.start_blocked = true;
        api.LoadThread(tspec);
      }
      for (uint32_t m = 0; m < mappings_per_space; ++m) {
        ck::MappingSpec mspec;
        mspec.space = space;
        mspec.vaddr = 0x100000 + m * cksim::kPageSize;
        mspec.paddr = 0x100000 + (m % 256) * cksim::kPageSize;
        api.LoadMapping(mspec);
      }
    }
    uint32_t total = spaces * (1 + threads_per_space + mappings_per_space);
    cksim::Cycles cycles = ckbench::MeasureCycles(world.machine().cpu(0),
                                                  [&] { srm_api.UnloadKernel(kid); });
    std::printf("%10u %10u %10u | %14.1f %14.2f\n", spaces, spaces * threads_per_space,
                spaces * mappings_per_space, ckbench::ToUs(cycles),
                ckbench::ToUs(cycles) / total);
  }
  ckbench::Rule();
  ckbench::Note("shape checks: cost scales linearly with the dependent population; the");
  ckbench::Note("largest configurations take milliseconds, matching 'while this operation can");
  ckbench::Note("take several milliseconds, it is performed with interrupts enabled and very");
  ckbench::Note("infrequently' (section 5.2).");
  obs.Finish();
  return 0;
}

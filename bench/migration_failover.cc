// X4: checkpoint, migration and failover cost vs working-set size
// (docs/CHECKPOINT.md; EXPERIMENTS.md row X4).
//
// The quiesce step is the Figure 6 dependency-ordered writeback cascade (the
// kernel-object unload walks every space, thread and mapping -- the same
// cascade measured by `fig6_dependency`), so checkpoint latency has a fixed
// cascade component plus a per-resident-page capture component. This bench
// sweeps the working set and reports, per size:
//   * image size (what migration ships / the stable store holds),
//   * quiesce+reload alone (SwapOut+SwapIn, no capture),
//   * full checkpoint (quiesce + capture + reload) in simulated us and in
//     host wall ns (the implementation's own cost),
//   * restore on a fresh machine,
//   * live migration end-to-end over the 266 Mb/s fiber-channel bulk path,
//   * failover (checkpoint-to-store, restore-from-store).

#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/ckpt/checkpoint.h"
#include "src/ckpt/image.h"
#include "src/sim/cluster.h"
#include "src/sim/devices.h"

namespace {

constexpr cksim::VirtAddr kBase = 0x40000000;

// Launch `app` and make `pages` resident dirty pages.
void BuildWorkingSet(ckbench::World& world, ckapp::AppKernelBase& app, uint32_t pages) {
  world.Launch(app, /*page_groups=*/4);
  ck::CkApi api = world.ApiFor(app);
  uint32_t sp = app.CreateSpace(api);
  app.DefineZeroRegion(sp, kBase, pages, /*writable=*/true);
  for (uint32_t p = 0; p < pages; ++p) {
    uint32_t value = 0x1000 + p;
    app.WriteGuest(api, sp, kBase + p * cksim::kPageSize, &value, 4);
  }
}

struct Row {
  uint32_t pages = 0;
  size_t image_bytes = 0;
  double quiesce_us = 0;
  double checkpoint_us = 0;
  double restore_us = 0;
  double migrate_us = 0;
  double failover_us = 0;
  double checkpoint_host_ns = 0;
};

Row Run(uint32_t pages) {
  Row row;
  row.pages = pages;

  // Source kernel.
  ckbench::World a;
  ckapp::AppKernelBase app_a("ws", 512);
  BuildWorkingSet(a, app_a, pages);

  // Quiesce + reload alone: the Fig. 6 unload cascade and the grant re-apply,
  // without any capture I/O.
  row.quiesce_us = ckbench::ToUs(ckbench::MeasureCycles(a.machine().cpu(0), [&] {
    a.srm().SwapOut(app_a);
    a.srm().SwapIn(app_a);
  }));

  // Full checkpoint.
  ckckpt::CkptImage image;
  row.checkpoint_host_ns = ckbench::MeasureHostNs([&] {
    row.checkpoint_us = ckbench::ToUs(ckbench::MeasureCycles(a.machine().cpu(0), [&] {
      a.srm().Checkpoint(app_a, &image);
    }));
  });
  row.image_bytes = image.SizeBytes();

  // Failover, capture side (adds the stable-store transfer to a checkpoint).
  cksim::StableStore store;
  ckbench::MeasureCycles(a.machine().cpu(0), [&] {
    a.srm().CheckpointToStore(app_a, store, "ws");
  });

  // Restore on a fresh machine.
  {
    ckbench::World b;
    ckapp::AppKernelBase app_b("ws", 512);
    std::string error;
    row.restore_us = ckbench::ToUs(ckbench::MeasureCycles(b.machine().cpu(0), [&] {
      if (b.srm().Restore(app_b, image, ckckpt::RestoreOptions{}, &error) !=
          ckbase::CkStatus::kOk) {
        ckbench::Note("restore FAILED: " + error);
      }
    }));
  }

  // Failover, recovery side.
  {
    ckbench::World c;
    ckapp::AppKernelBase app_c("ws", 512);
    std::string error;
    row.failover_us = ckbench::ToUs(ckbench::MeasureCycles(c.machine().cpu(0), [&] {
      if (c.srm().RestoreFromStore(app_c, store, "ws", ckckpt::RestoreOptions{}, &error) !=
          ckbase::CkStatus::kOk) {
        ckbench::Note("failover restore FAILED: " + error);
      }
    }));
  }

  // Live migration end-to-end: quiesce + capture + 266 Mb/s bulk transfer +
  // restore + resume on the peer, measured on the target machine's clock.
  // Both machines run under the conservative cluster driver; AcceptMigration
  // is polled at window barriers, where cross-machine state is quiescent.
  {
    ckbench::World src, dst;
    uint32_t group_s = src.srm().ReserveGroups(1).value();
    uint32_t group_d = dst.srm().ReserveGroups(1).value();
    cksim::FiberChannelDevice fc_s(src.machine().memory(), &src.ck(),
                                   group_s * cksim::kPageGroupBytes, 4, 4, 2500);
    cksim::FiberChannelDevice fc_d(dst.machine().memory(), &dst.ck(),
                                   group_d * cksim::kPageGroupBytes, 4, 4, 2500);
    cksim::Cluster cluster;
    cluster.AddMachine(&src.machine());
    cluster.AddMachine(&dst.machine());
    cluster.Link(fc_s, fc_d);
    src.machine().AttachDevice(&fc_s);
    dst.machine().AttachDevice(&fc_d);

    ckapp::AppKernelBase app_s("ws", 512), app_d("ws", 512);
    BuildWorkingSet(src, app_s, pages);
    // Bring the target's clock up to the source's before the transfer starts
    // (the bulk due-time is stamped with the source's send time; the cluster
    // keeps the clocks within a window of each other from here on).
    while (dst.machine().Now() < src.machine().Now()) {
      dst.machine().Step();
    }

    cksim::Cycles start = dst.machine().Now();
    src.srm().Migrate(app_s, fc_s);
    std::string error;
    ckbase::CkStatus accepted = ckbase::CkStatus::kRetry;
    cluster.RunUntilDone(
        [&] {
          accepted = dst.srm().AcceptMigration(fc_d, app_d, ckckpt::RestoreOptions{}, &error);
          return accepted != ckbase::CkStatus::kRetry;
        },
        cksim::Cycles{500000000});
    if (accepted != ckbase::CkStatus::kOk) {
      ckbench::Note("migration FAILED: " + error);
    }
    row.migrate_us = ckbench::ToUs(dst.machine().Now() - start);
  }

  return row;
}

}  // namespace

int main(int argc, char** argv) {
  ck::ObsSession obs(argc, argv);
  ckbench::ObsSlot() = &obs;

  ckbench::Title("X4: checkpoint / migration / failover vs working set");
  ckbench::Note("quiesce = SwapOut+SwapIn (the Fig. 6 writeback cascade, no capture);");
  ckbench::Note("migrate = Migrate() to AcceptMigration()==kOk on the target machine's clock");
  ckbench::Note("          (266 Mb/s bulk-wire dominated; capture bills the source CPU).");
  ckbench::Rule();
  std::printf("  %-8s %10s %10s %12s %10s %10s %10s %14s\n", "pages", "image KB", "quiesce",
              "checkpoint", "restore", "migrate", "failover", "chkpt host ns");
  for (uint32_t pages : {16u, 64u, 128u, 256u}) {
    Row row = Run(pages);
    std::printf("  %-8u %10.1f %10.1f %12.1f %10.1f %10.1f %10.1f %14.0f\n", row.pages,
                row.image_bytes / 1024.0, row.quiesce_us, row.checkpoint_us, row.restore_us,
                row.migrate_us, row.failover_us, row.checkpoint_host_ns);
  }
  ckbench::Rule();
  ckbench::Note("all simulated columns in us; host column is wall-clock ns of Checkpoint().");
  return 0;
}

// Ablation A2: processor quota enforcement (section 4.3).
//
// A rogue compute-bound kernel shares a processor with an interactive
// kernel. With enforcement on, the rogue is degraded once it exceeds its
// percentage and the interactive kernel's wakeup latency stays flat; with
// enforcement off, equal priorities split the processor and interactive
// latency balloons. This is the "prevents a rogue application kernel running
// a large simulation from disrupting ... timesharing services" claim.

#include "bench/bench_util.h"

namespace {

class Spinner : public ck::NativeProgram {
 public:
  ck::NativeOutcome Step(ck::NativeCtx& ctx) override {
    ctx.Charge(2000);  // a long compute chunk (hogs its slice)
    ++steps;
    ck::NativeOutcome outcome;
    outcome.action = ck::NativeOutcome::Action::kYield;
    return outcome;
  }
  uint64_t steps = 0;
};

// Interactive worker: sleeps, wakes, does a tiny unit of work, records the
// latency from its scheduled wake time to actually running.
class Interactive : public ck::NativeProgram {
 public:
  ck::NativeOutcome Step(ck::NativeCtx& ctx) override {
    if (armed_at != 0) {
      cksim::Cycles latency = ctx.api().now() - armed_at;
      stats.Add(ckbench::ToUs(latency));
      armed_at = 0;
    }
    ctx.Charge(200);  // the interactive work unit
    // Sleep 2 ms, then wake.
    ck::ThreadId self = ctx.self_thread();
    Interactive* me = this;
    ctx.api().ScheduleAfter(50000, [self, me](ck::CkApi& later) {
      me->armed_at = later.now();
      later.ResumeThread(self);
    });
    ck::NativeOutcome outcome;
    outcome.action = ck::NativeOutcome::Action::kBlock;
    return outcome;
  }
  cksim::Cycles armed_at = 0;
  ckbase::Stats stats;
};

struct Row {
  double rogue_share;
  double interactive_mean_us;
  double interactive_p95_us;
  uint64_t degradations;
};

Row Run(bool enforce, uint8_t rogue_percent) {
  ck::CacheKernelConfig config;
  config.enforce_quotas = enforce;
  ckbench::World world(config);

  ckapp::AppKernelBase rogue("rogue", 32), interactive("interactive", 32);
  {
    cksrm::LaunchParams params;
    params.page_groups = 1;
    params.cpu_percent[1] = rogue_percent;
    world.srm().Launch(rogue, params);
  }
  {
    cksrm::LaunchParams params;
    params.page_groups = 1;
    world.srm().Launch(interactive, params);
  }
  ck::CkApi rogue_api = world.ApiFor(rogue);
  ck::CkApi inter_api = world.ApiFor(interactive);

  Spinner spinner;
  Spinner victim_batch;  // the well-behaved kernel's own background work
  Interactive worker;
  // Same priority, same processor: only the quota can separate them.
  uint32_t rogue_space = rogue.CreateSpace(rogue_api);
  uint32_t inter_space = interactive.CreateSpace(inter_api);
  rogue.CreateNativeThread(rogue_api, rogue_space, &spinner, 10, false, 1);
  interactive.CreateNativeThread(inter_api, inter_space, &victim_batch, 10, false, 1);
  interactive.CreateNativeThread(inter_api, inter_space, &worker, 10, false, 1);

  world.machine().RunFor(12 * world.ck().config().quota_window);

  Row row;
  // Share of the contended compute time (both spinners want 100%).
  row.rogue_share = static_cast<double>(spinner.steps) /
                    static_cast<double>(spinner.steps + victim_batch.steps);
  row.interactive_mean_us = worker.stats.Mean();
  row.interactive_p95_us = worker.stats.Percentile(95);
  row.degradations = world.ck().stats().quota_degradations;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  ck::ObsSession obs(argc, argv);
  ckbench::ObsSlot() = &obs;
  ckbench::Title("Ablation A2: processor quota enforcement (rogue 20% grant on cpu 1)");
  std::printf("%-22s %12s %18s %14s %14s\n", "configuration", "rogue share",
              "interactive mean us", "p95 us", "degradations");
  ckbench::Rule();
  Row off = Run(false, 20);
  Row on = Run(true, 20);
  std::printf("%-22s %11.0f%% %18.1f %14.1f %14llu\n", "quotas OFF", 100 * off.rogue_share,
              off.interactive_mean_us, off.interactive_p95_us,
              static_cast<unsigned long long>(off.degradations));
  std::printf("%-22s %11.0f%% %18.1f %14.1f %14llu\n", "quotas ON", 100 * on.rogue_share,
              on.interactive_mean_us, on.interactive_p95_us,
              static_cast<unsigned long long>(on.degradations));
  ckbench::Rule();
  ckbench::Note("shape checks: with enforcement the rogue's share of the contended processor");
  ckbench::Note("falls toward its 20% grant and the other kernel's interactive wakeup latency");
  ckbench::Note("improves; without it, equal priorities split the processor 50/50 regardless");
  ckbench::Note("of the grant (section 4.3).");
  obs.Finish();
  return 0;
}

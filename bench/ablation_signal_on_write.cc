// Ablation: ParaDiGM's signal-on-write hardware assist (section 2.2,
// footnote 2). With the assist, a guest STORE to a message-mode page
// generates the address-valued signal itself; without it (the prototype's
// actual state, and our default), the sender issues an explicit signal trap
// after writing. The assist removes one trap per message from the send path.

#include "bench/bench_util.h"
#include "src/isa/assembler.h"

namespace {

class BenchKernel : public ckapp::AppKernelBase {
 public:
  BenchKernel() : ckapp::AppKernelBase("sow", 128) {}
};

class CountingReceiver : public ck::NativeProgram {
 public:
  ck::NativeOutcome Step(ck::NativeCtx&) override {
    ck::NativeOutcome outcome;
    outcome.action = ck::NativeOutcome::Action::kBlock;
    return outcome;
  }
  void OnSignal(cksim::VirtAddr, ck::NativeCtx&) override { ++received; }
  uint64_t received = 0;
};

struct Row {
  double us_per_message;
  uint64_t signals;
  uint64_t dropped;
};

// A guest sender writes `messages` words into a message page. With the
// assist, the store signals; without, it issues trap 2 after each write.
Row Run(bool signal_on_write, uint32_t messages) {
  ck::CacheKernelConfig config;
  config.signal_on_write = signal_on_write;
  ckbench::World world(config);
  BenchKernel app;
  world.Launch(app);
  ck::CkApi api = world.ApiFor(app);
  uint32_t space = app.CreateSpace(api);
  cksim::PhysAddr frame = app.frames().Allocate();

  CountingReceiver receiver;
  uint32_t receiver_thread = app.CreateNativeThread(api, space, &receiver, 20, false, 1);
  app.DefineFrameRegion(space, 0x00800000, 1, frame, true, true);
  app.DefineFrameRegion(space, 0x00900000, 1, frame, false, true, receiver_thread);
  app.EnsureMappingLoaded(api, space, 0x00800000);
  app.EnsureMappingLoaded(api, space, 0x00900000);

  const char* source = signal_on_write ? R"(
      li   t0, 0x00800000
      la   t4, count
      lw   t1, 0(t4)
    loop:
      sw   t1, 0(t0)      ; store generates the signal (hardware assist)
      addi t1, t1, -1
      bne  t1, r0, loop
      halt
    count:
      .word 0
  )"
                                       : R"(
      li   t0, 0x00800000
      la   t4, count
      lw   t1, 0(t4)
    loop:
      sw   t1, 0(t0)
      mv   a0, t0
      trap 2              ; explicit signal trap (software path)
      addi t1, t1, -1
      bne  t1, r0, loop
      halt
    count:
      .word 0
  )";
  ckisa::AssembleResult assembled = ckisa::Assemble(source, 0x10000);
  assembled.program.words[assembled.program.words.size() - 1] = messages;
  app.LoadProgramImage(space, assembled.program, /*writable=*/false);

  ckapp::GuestThreadParams params;
  params.space_index = space;
  params.entry = 0x10000;
  params.cpu_hint = 0;
  uint32_t guest = app.CreateGuestThread(api, params);

  cksim::Cycles start = world.machine().cpu(0).clock();
  world.RunUntil([&] { return app.thread(guest).finished; }, 5000000);
  cksim::Cycles elapsed = world.machine().cpu(0).clock() - start;

  Row row;
  row.us_per_message = ckbench::ToUs(elapsed) / messages;
  row.signals = world.ck().stats().signals_delivered_fast +
                world.ck().stats().signals_delivered_slow;
  row.dropped = world.ck().stats().signals_dropped;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  ck::ObsSession obs(argc, argv);
  ckbench::ObsSlot() = &obs;
  constexpr uint32_t kMessages = 200;
  Row software = Run(false, kMessages);
  Row hardware = Run(true, kMessages);

  ckbench::Title("Ablation: signal-on-write hardware assist (ParaDiGM, section 2.2)");
  std::printf("%-40s %16s %12s %10s\n", "configuration", "us/message (send)", "delivered",
              "dropped");
  ckbench::Rule();
  std::printf("%-40s %16.1f %12llu %10llu\n", "software (explicit signal trap)",
              software.us_per_message, static_cast<unsigned long long>(software.signals),
              static_cast<unsigned long long>(software.dropped));
  std::printf("%-40s %16.1f %12llu %10llu\n", "hardware assist (signal on store)",
              hardware.us_per_message, static_cast<unsigned long long>(hardware.signals),
              static_cast<unsigned long long>(hardware.dropped));
  ckbench::Rule();
  std::printf("assist speedup on the send path: %.2fx\n",
              software.us_per_message / hardware.us_per_message);
  ckbench::Note("shape checks: the assist removes one supervisor trap per message ('with");
  ckbench::Note("suitable hardware support, there is no software intervention even for signal");
  ckbench::Note("delivery', section 2.2). Side effect of the faster send path: the sender can");
  ckbench::Note("outrun the receiver's signal queue and drop -- flow control is left to the");
  ckbench::Note("communication protocol, as in the paper's channel library.");
  obs.Finish();
  return 0;
}

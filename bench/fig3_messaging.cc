// Figure 3 reproduction: one-to-many memory-based messaging.
//
// The figure shows one sender's message region mapped into several
// receivers' address spaces, each receiving the address-valued signal. We
// sweep the receiver count and report per-message delivery cost at the
// sender plus the fan-out latency to the last receiver -- the Cache Kernel
// is only involved in signal delivery, so cost grows with the signal
// registrations, not with message size (data moves through memory).

#include "bench/bench_util.h"

namespace {

class BenchKernel : public ckapp::AppKernelBase {
 public:
  BenchKernel() : ckapp::AppKernelBase("fig3", 128) {}
};

class CountingReceiver : public ck::NativeProgram {
 public:
  ck::NativeOutcome Step(ck::NativeCtx&) override {
    ck::NativeOutcome outcome;
    outcome.action = ck::NativeOutcome::Action::kBlock;
    return outcome;
  }
  void OnSignal(cksim::VirtAddr, ck::NativeCtx& ctx) override {
    ctx.Charge(50);  // read the message header
    ++received;
  }
  uint64_t received = 0;
};

struct SweepPoint {
  uint32_t receivers;
  double sender_us;   // sender-side cost of one Signal call
  double fanout_us;   // until the last receiver's handler ran
  uint64_t fast, slow;
};

SweepPoint RunFanOut(uint32_t receivers, uint32_t messages) {
  ckbench::World world;
  BenchKernel app;
  world.Launch(app);
  ck::CkApi api = world.ApiFor(app);
  uint32_t space = app.CreateSpace(api);
  cksim::PhysAddr frame = app.frames().Allocate();

  app.DefineFrameRegion(space, 0x00800000, 1, frame, /*writable=*/true, /*message=*/true);
  app.EnsureMappingLoaded(api, space, 0x00800000);

  std::vector<std::unique_ptr<CountingReceiver>> programs;
  for (uint32_t r = 0; r < receivers; ++r) {
    programs.push_back(std::make_unique<CountingReceiver>());
    uint32_t thread = app.CreateNativeThread(api, space, programs.back().get(), 15, false,
                                             static_cast<uint8_t>(1 + r % 3));
    cksim::VirtAddr view = 0x00900000 + r * 0x10000;
    app.DefineFrameRegion(space, view, 1, frame, /*writable=*/false, /*message=*/true, thread);
    app.EnsureMappingLoaded(api, space, view);
  }

  ckbase::Stats sender_cost, fanout;
  uint64_t target = 0;
  for (uint32_t m = 0; m < messages; ++m) {
    target += receivers;
    cksim::Cycles sent_at = world.machine().Now();
    sender_cost.Add(ckbench::ToUs(ckbench::MeasureCycles(
        world.machine().cpu(0), [&] { api.Signal(app.space(space).ck_id, 0x00800000); })));
    world.RunUntil([&] {
      uint64_t got = 0;
      for (auto& p : programs) {
        got += p->received;
      }
      return got >= target;
    });
    fanout.Add(ckbench::ToUs(world.machine().Now() - sent_at));
  }

  SweepPoint point;
  point.receivers = receivers;
  point.sender_us = sender_cost.Mean();
  point.fanout_us = fanout.Mean();
  point.fast = world.ck().stats().signals_delivered_fast;
  point.slow = world.ck().stats().signals_delivered_slow;
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  ck::ObsSession obs(argc, argv);
  ckbench::ObsSlot() = &obs;
  ckbench::Title("Figure 3: one-to-many memory-based messaging (receiver sweep)");
  std::printf("%10s %16s %18s %10s %10s\n", "receivers", "sender us/msg", "fan-out us (last)",
              "rTLB fast", "slow");
  ckbench::Rule();
  for (uint32_t receivers : {1u, 2u, 3u, 4u, 6u, 8u}) {
    SweepPoint point = RunFanOut(receivers, 20);
    std::printf("%10u %16.1f %18.1f %10llu %10llu\n", point.receivers, point.sender_us,
                point.fanout_us, static_cast<unsigned long long>(point.fast),
                static_cast<unsigned long long>(point.slow));
  }
  ckbench::Rule();
  ckbench::Note("shape checks: sender cost grows mildly with registrations (one pmap walk, one");
  ckbench::Note("IPI per remote receiver); data transfer itself costs nothing here because the");
  ckbench::Note("message already lives in the shared physical page -- 'communication");
  ckbench::Note("performance is limited primarily by the raw performance of the memory");
  ckbench::Note("system' (section 2.2).");
  obs.Finish();
  return 0;
}

# Empty compiler generated dependencies file for sec53_trap.
# This may be replaced when dependencies are built.

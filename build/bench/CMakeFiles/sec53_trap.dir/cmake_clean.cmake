file(REMOVE_RECURSE
  "CMakeFiles/sec53_trap.dir/sec53_trap.cc.o"
  "CMakeFiles/sec53_trap.dir/sec53_trap.cc.o.d"
  "sec53_trap"
  "sec53_trap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec53_trap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for sec53_pagefault.
# This may be replaced when dependencies are built.

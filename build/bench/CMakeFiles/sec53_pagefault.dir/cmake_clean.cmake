file(REMOVE_RECURSE
  "CMakeFiles/sec53_pagefault.dir/sec53_pagefault.cc.o"
  "CMakeFiles/sec53_pagefault.dir/sec53_pagefault.cc.o.d"
  "sec53_pagefault"
  "sec53_pagefault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec53_pagefault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

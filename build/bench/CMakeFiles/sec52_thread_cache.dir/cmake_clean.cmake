file(REMOVE_RECURSE
  "CMakeFiles/sec52_thread_cache.dir/sec52_thread_cache.cc.o"
  "CMakeFiles/sec52_thread_cache.dir/sec52_thread_cache.cc.o.d"
  "sec52_thread_cache"
  "sec52_thread_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec52_thread_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for sec52_thread_cache.
# This may be replaced when dependencies are built.

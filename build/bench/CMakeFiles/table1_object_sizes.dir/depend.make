# Empty dependencies file for table1_object_sizes.
# This may be replaced when dependencies are built.

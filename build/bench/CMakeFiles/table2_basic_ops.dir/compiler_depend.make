# Empty compiler generated dependencies file for table2_basic_ops.
# This may be replaced when dependencies are built.

# Empty dependencies file for sec52_caching.
# This may be replaced when dependencies are built.

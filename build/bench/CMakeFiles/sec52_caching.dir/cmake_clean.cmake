file(REMOVE_RECURSE
  "CMakeFiles/sec52_caching.dir/sec52_caching.cc.o"
  "CMakeFiles/sec52_caching.dir/sec52_caching.cc.o.d"
  "sec52_caching"
  "sec52_caching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec52_caching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig6_dependency.
# This may be replaced when dependencies are built.

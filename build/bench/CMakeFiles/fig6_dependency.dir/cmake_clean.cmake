file(REMOVE_RECURSE
  "CMakeFiles/fig6_dependency.dir/fig6_dependency.cc.o"
  "CMakeFiles/fig6_dependency.dir/fig6_dependency.cc.o.d"
  "fig6_dependency"
  "fig6_dependency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_dependency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

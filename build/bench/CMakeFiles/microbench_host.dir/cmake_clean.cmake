file(REMOVE_RECURSE
  "CMakeFiles/microbench_host.dir/microbench_host.cc.o"
  "CMakeFiles/microbench_host.dir/microbench_host.cc.o.d"
  "microbench_host"
  "microbench_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microbench_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/sec51_code_size.dir/sec51_code_size.cc.o"
  "CMakeFiles/sec51_code_size.dir/sec51_code_size.cc.o.d"
  "sec51_code_size"
  "sec51_code_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec51_code_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

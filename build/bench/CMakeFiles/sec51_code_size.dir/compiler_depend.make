# Empty compiler generated dependencies file for sec51_code_size.
# This may be replaced when dependencies are built.

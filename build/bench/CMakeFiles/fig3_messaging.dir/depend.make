# Empty dependencies file for fig3_messaging.
# This may be replaced when dependencies are built.

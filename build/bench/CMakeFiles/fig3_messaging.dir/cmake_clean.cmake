file(REMOVE_RECURSE
  "CMakeFiles/fig3_messaging.dir/fig3_messaging.cc.o"
  "CMakeFiles/fig3_messaging.dir/fig3_messaging.cc.o.d"
  "fig3_messaging"
  "fig3_messaging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_messaging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

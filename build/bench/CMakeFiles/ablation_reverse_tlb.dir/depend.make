# Empty dependencies file for ablation_reverse_tlb.
# This may be replaced when dependencies are built.

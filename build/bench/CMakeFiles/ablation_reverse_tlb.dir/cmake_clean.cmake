file(REMOVE_RECURSE
  "CMakeFiles/ablation_reverse_tlb.dir/ablation_reverse_tlb.cc.o"
  "CMakeFiles/ablation_reverse_tlb.dir/ablation_reverse_tlb.cc.o.d"
  "ablation_reverse_tlb"
  "ablation_reverse_tlb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_reverse_tlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for sec53_signal.
# This may be replaced when dependencies are built.

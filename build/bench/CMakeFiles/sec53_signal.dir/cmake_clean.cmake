file(REMOVE_RECURSE
  "CMakeFiles/sec53_signal.dir/sec53_signal.cc.o"
  "CMakeFiles/sec53_signal.dir/sec53_signal.cc.o.d"
  "sec53_signal"
  "sec53_signal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec53_signal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

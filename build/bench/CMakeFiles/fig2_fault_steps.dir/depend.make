# Empty dependencies file for fig2_fault_steps.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig2_fault_steps.dir/fig2_fault_steps.cc.o"
  "CMakeFiles/fig2_fault_steps.dir/fig2_fault_steps.cc.o.d"
  "fig2_fault_steps"
  "fig2_fault_steps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_fault_steps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

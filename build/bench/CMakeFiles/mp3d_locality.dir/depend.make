# Empty dependencies file for mp3d_locality.
# This may be replaced when dependencies are built.

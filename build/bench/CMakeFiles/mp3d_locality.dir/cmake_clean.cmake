file(REMOVE_RECURSE
  "CMakeFiles/mp3d_locality.dir/mp3d_locality.cc.o"
  "CMakeFiles/mp3d_locality.dir/mp3d_locality.cc.o.d"
  "mp3d_locality"
  "mp3d_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp3d_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/dsm_migration.dir/dsm_migration.cc.o"
  "CMakeFiles/dsm_migration.dir/dsm_migration.cc.o.d"
  "dsm_migration"
  "dsm_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

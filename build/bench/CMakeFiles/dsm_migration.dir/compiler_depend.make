# Empty compiler generated dependencies file for dsm_migration.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for ablation_rt_lock.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_rt_lock.dir/ablation_rt_lock.cc.o"
  "CMakeFiles/ablation_rt_lock.dir/ablation_rt_lock.cc.o.d"
  "ablation_rt_lock"
  "ablation_rt_lock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rt_lock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/ablation_signal_on_write.dir/ablation_signal_on_write.cc.o"
  "CMakeFiles/ablation_signal_on_write.dir/ablation_signal_on_write.cc.o.d"
  "ablation_signal_on_write"
  "ablation_signal_on_write.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_signal_on_write.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

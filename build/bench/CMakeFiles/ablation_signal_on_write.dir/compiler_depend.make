# Empty compiler generated dependencies file for ablation_signal_on_write.
# This may be replaced when dependencies are built.

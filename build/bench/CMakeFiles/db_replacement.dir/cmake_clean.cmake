file(REMOVE_RECURSE
  "CMakeFiles/db_replacement.dir/db_replacement.cc.o"
  "CMakeFiles/db_replacement.dir/db_replacement.cc.o.d"
  "db_replacement"
  "db_replacement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_replacement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

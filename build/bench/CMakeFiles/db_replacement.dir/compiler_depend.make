# Empty compiler generated dependencies file for db_replacement.
# This may be replaced when dependencies are built.

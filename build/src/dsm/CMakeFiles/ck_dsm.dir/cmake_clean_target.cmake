file(REMOVE_RECURSE
  "libck_dsm.a"
)

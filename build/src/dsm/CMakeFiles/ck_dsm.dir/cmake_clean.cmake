file(REMOVE_RECURSE
  "CMakeFiles/ck_dsm.dir/dsm_kernel.cc.o"
  "CMakeFiles/ck_dsm.dir/dsm_kernel.cc.o.d"
  "libck_dsm.a"
  "libck_dsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ck_dsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

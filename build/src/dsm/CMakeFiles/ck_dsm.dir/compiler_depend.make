# Empty compiler generated dependencies file for ck_dsm.
# This may be replaced when dependencies are built.

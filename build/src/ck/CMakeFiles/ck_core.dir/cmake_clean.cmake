file(REMOVE_RECURSE
  "CMakeFiles/ck_core.dir/cache_kernel.cc.o"
  "CMakeFiles/ck_core.dir/cache_kernel.cc.o.d"
  "CMakeFiles/ck_core.dir/ck_sched.cc.o"
  "CMakeFiles/ck_core.dir/ck_sched.cc.o.d"
  "CMakeFiles/ck_core.dir/ck_signal.cc.o"
  "CMakeFiles/ck_core.dir/ck_signal.cc.o.d"
  "CMakeFiles/ck_core.dir/ck_validate.cc.o"
  "CMakeFiles/ck_core.dir/ck_validate.cc.o.d"
  "CMakeFiles/ck_core.dir/physmap.cc.o"
  "CMakeFiles/ck_core.dir/physmap.cc.o.d"
  "CMakeFiles/ck_core.dir/table_arena.cc.o"
  "CMakeFiles/ck_core.dir/table_arena.cc.o.d"
  "libck_core.a"
  "libck_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ck_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ck_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libck_core.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ck/cache_kernel.cc" "src/ck/CMakeFiles/ck_core.dir/cache_kernel.cc.o" "gcc" "src/ck/CMakeFiles/ck_core.dir/cache_kernel.cc.o.d"
  "/root/repo/src/ck/ck_sched.cc" "src/ck/CMakeFiles/ck_core.dir/ck_sched.cc.o" "gcc" "src/ck/CMakeFiles/ck_core.dir/ck_sched.cc.o.d"
  "/root/repo/src/ck/ck_signal.cc" "src/ck/CMakeFiles/ck_core.dir/ck_signal.cc.o" "gcc" "src/ck/CMakeFiles/ck_core.dir/ck_signal.cc.o.d"
  "/root/repo/src/ck/ck_validate.cc" "src/ck/CMakeFiles/ck_core.dir/ck_validate.cc.o" "gcc" "src/ck/CMakeFiles/ck_core.dir/ck_validate.cc.o.d"
  "/root/repo/src/ck/physmap.cc" "src/ck/CMakeFiles/ck_core.dir/physmap.cc.o" "gcc" "src/ck/CMakeFiles/ck_core.dir/physmap.cc.o.d"
  "/root/repo/src/ck/table_arena.cc" "src/ck/CMakeFiles/ck_core.dir/table_arena.cc.o" "gcc" "src/ck/CMakeFiles/ck_core.dir/table_arena.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/ck_base.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ck_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/ck_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

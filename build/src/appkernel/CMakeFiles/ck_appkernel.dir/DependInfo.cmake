
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/appkernel/app_kernel_base.cc" "src/appkernel/CMakeFiles/ck_appkernel.dir/app_kernel_base.cc.o" "gcc" "src/appkernel/CMakeFiles/ck_appkernel.dir/app_kernel_base.cc.o.d"
  "/root/repo/src/appkernel/channel.cc" "src/appkernel/CMakeFiles/ck_appkernel.dir/channel.cc.o" "gcc" "src/appkernel/CMakeFiles/ck_appkernel.dir/channel.cc.o.d"
  "/root/repo/src/appkernel/debugger.cc" "src/appkernel/CMakeFiles/ck_appkernel.dir/debugger.cc.o" "gcc" "src/appkernel/CMakeFiles/ck_appkernel.dir/debugger.cc.o.d"
  "/root/repo/src/appkernel/signal_redirect.cc" "src/appkernel/CMakeFiles/ck_appkernel.dir/signal_redirect.cc.o" "gcc" "src/appkernel/CMakeFiles/ck_appkernel.dir/signal_redirect.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ck/CMakeFiles/ck_core.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/ck_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ck_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/ck_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/ck_appkernel.dir/app_kernel_base.cc.o"
  "CMakeFiles/ck_appkernel.dir/app_kernel_base.cc.o.d"
  "CMakeFiles/ck_appkernel.dir/channel.cc.o"
  "CMakeFiles/ck_appkernel.dir/channel.cc.o.d"
  "CMakeFiles/ck_appkernel.dir/debugger.cc.o"
  "CMakeFiles/ck_appkernel.dir/debugger.cc.o.d"
  "CMakeFiles/ck_appkernel.dir/signal_redirect.cc.o"
  "CMakeFiles/ck_appkernel.dir/signal_redirect.cc.o.d"
  "libck_appkernel.a"
  "libck_appkernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ck_appkernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

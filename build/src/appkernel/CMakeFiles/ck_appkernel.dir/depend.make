# Empty dependencies file for ck_appkernel.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libck_appkernel.a"
)

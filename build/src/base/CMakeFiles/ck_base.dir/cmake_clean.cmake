file(REMOVE_RECURSE
  "CMakeFiles/ck_base.dir/log.cc.o"
  "CMakeFiles/ck_base.dir/log.cc.o.d"
  "CMakeFiles/ck_base.dir/status.cc.o"
  "CMakeFiles/ck_base.dir/status.cc.o.d"
  "libck_base.a"
  "libck_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ck_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

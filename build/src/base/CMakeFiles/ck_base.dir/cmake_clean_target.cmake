file(REMOVE_RECURSE
  "libck_base.a"
)

# Empty compiler generated dependencies file for ck_base.
# This may be replaced when dependencies are built.

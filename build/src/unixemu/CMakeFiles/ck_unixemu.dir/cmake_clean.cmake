file(REMOVE_RECURSE
  "CMakeFiles/ck_unixemu.dir/unix_emulator.cc.o"
  "CMakeFiles/ck_unixemu.dir/unix_emulator.cc.o.d"
  "libck_unixemu.a"
  "libck_unixemu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ck_unixemu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

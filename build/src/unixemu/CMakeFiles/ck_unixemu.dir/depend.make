# Empty dependencies file for ck_unixemu.
# This may be replaced when dependencies are built.

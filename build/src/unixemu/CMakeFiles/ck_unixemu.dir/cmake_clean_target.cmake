file(REMOVE_RECURSE
  "libck_unixemu.a"
)

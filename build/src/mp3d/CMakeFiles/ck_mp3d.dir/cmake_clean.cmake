file(REMOVE_RECURSE
  "CMakeFiles/ck_mp3d.dir/mp3d_kernel.cc.o"
  "CMakeFiles/ck_mp3d.dir/mp3d_kernel.cc.o.d"
  "libck_mp3d.a"
  "libck_mp3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ck_mp3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

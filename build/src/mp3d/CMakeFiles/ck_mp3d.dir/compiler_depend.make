# Empty compiler generated dependencies file for ck_mp3d.
# This may be replaced when dependencies are built.

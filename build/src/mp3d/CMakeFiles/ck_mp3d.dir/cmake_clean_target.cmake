file(REMOVE_RECURSE
  "libck_mp3d.a"
)

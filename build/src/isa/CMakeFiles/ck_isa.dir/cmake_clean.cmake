file(REMOVE_RECURSE
  "CMakeFiles/ck_isa.dir/assembler.cc.o"
  "CMakeFiles/ck_isa.dir/assembler.cc.o.d"
  "CMakeFiles/ck_isa.dir/interpreter.cc.o"
  "CMakeFiles/ck_isa.dir/interpreter.cc.o.d"
  "libck_isa.a"
  "libck_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ck_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

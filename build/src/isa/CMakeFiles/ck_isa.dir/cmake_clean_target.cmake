file(REMOVE_RECURSE
  "libck_isa.a"
)

# Empty compiler generated dependencies file for ck_isa.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for ck_prom.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libck_prom.a"
)

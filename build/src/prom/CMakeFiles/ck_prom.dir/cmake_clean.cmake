file(REMOVE_RECURSE
  "CMakeFiles/ck_prom.dir/netboot.cc.o"
  "CMakeFiles/ck_prom.dir/netboot.cc.o.d"
  "libck_prom.a"
  "libck_prom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ck_prom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

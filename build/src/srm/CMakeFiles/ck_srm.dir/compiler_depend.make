# Empty compiler generated dependencies file for ck_srm.
# This may be replaced when dependencies are built.

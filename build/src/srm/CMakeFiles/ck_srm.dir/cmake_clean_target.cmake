file(REMOVE_RECURSE
  "libck_srm.a"
)

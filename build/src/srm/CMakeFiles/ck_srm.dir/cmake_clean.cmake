file(REMOVE_RECURSE
  "CMakeFiles/ck_srm.dir/srm.cc.o"
  "CMakeFiles/ck_srm.dir/srm.cc.o.d"
  "libck_srm.a"
  "libck_srm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ck_srm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

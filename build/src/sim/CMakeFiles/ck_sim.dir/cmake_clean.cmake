file(REMOVE_RECURSE
  "CMakeFiles/ck_sim.dir/devices.cc.o"
  "CMakeFiles/ck_sim.dir/devices.cc.o.d"
  "CMakeFiles/ck_sim.dir/machine.cc.o"
  "CMakeFiles/ck_sim.dir/machine.cc.o.d"
  "CMakeFiles/ck_sim.dir/mmu.cc.o"
  "CMakeFiles/ck_sim.dir/mmu.cc.o.d"
  "CMakeFiles/ck_sim.dir/physmem.cc.o"
  "CMakeFiles/ck_sim.dir/physmem.cc.o.d"
  "CMakeFiles/ck_sim.dir/tlb.cc.o"
  "CMakeFiles/ck_sim.dir/tlb.cc.o.d"
  "libck_sim.a"
  "libck_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ck_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ck_sim.
# This may be replaced when dependencies are built.

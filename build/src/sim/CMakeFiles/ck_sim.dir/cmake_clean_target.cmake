file(REMOVE_RECURSE
  "libck_sim.a"
)

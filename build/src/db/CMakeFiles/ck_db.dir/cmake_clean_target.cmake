file(REMOVE_RECURSE
  "libck_db.a"
)

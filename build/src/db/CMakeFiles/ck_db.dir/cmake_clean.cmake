file(REMOVE_RECURSE
  "CMakeFiles/ck_db.dir/db_kernel.cc.o"
  "CMakeFiles/ck_db.dir/db_kernel.cc.o.d"
  "libck_db.a"
  "libck_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ck_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ck_db.
# This may be replaced when dependencies are built.

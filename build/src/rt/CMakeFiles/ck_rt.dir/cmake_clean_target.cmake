file(REMOVE_RECURSE
  "libck_rt.a"
)

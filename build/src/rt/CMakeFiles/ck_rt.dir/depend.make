# Empty dependencies file for ck_rt.
# This may be replaced when dependencies are built.

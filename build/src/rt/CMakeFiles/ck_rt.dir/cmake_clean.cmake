file(REMOVE_RECURSE
  "CMakeFiles/ck_rt.dir/rt_kernel.cc.o"
  "CMakeFiles/ck_rt.dir/rt_kernel.cc.o.d"
  "libck_rt.a"
  "libck_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ck_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for unix_emulator.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/unix_emulator.dir/unix_emulator.cc.o"
  "CMakeFiles/unix_emulator.dir/unix_emulator.cc.o.d"
  "unix_emulator"
  "unix_emulator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unix_emulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

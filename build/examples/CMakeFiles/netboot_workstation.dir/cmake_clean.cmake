file(REMOVE_RECURSE
  "CMakeFiles/netboot_workstation.dir/netboot_workstation.cc.o"
  "CMakeFiles/netboot_workstation.dir/netboot_workstation.cc.o.d"
  "netboot_workstation"
  "netboot_workstation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netboot_workstation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for netboot_workstation.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/mp3d_sim.dir/mp3d_sim.cc.o"
  "CMakeFiles/mp3d_sim.dir/mp3d_sim.cc.o.d"
  "mp3d_sim"
  "mp3d_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp3d_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

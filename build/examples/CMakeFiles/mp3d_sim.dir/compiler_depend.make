# Empty compiler generated dependencies file for mp3d_sim.
# This may be replaced when dependencies are built.

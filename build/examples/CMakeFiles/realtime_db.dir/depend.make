# Empty dependencies file for realtime_db.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/realtime_db.dir/realtime_db.cc.o"
  "CMakeFiles/realtime_db.dir/realtime_db.cc.o.d"
  "realtime_db"
  "realtime_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/realtime_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

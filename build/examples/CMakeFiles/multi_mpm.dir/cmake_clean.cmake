file(REMOVE_RECURSE
  "CMakeFiles/multi_mpm.dir/multi_mpm.cc.o"
  "CMakeFiles/multi_mpm.dir/multi_mpm.cc.o.d"
  "multi_mpm"
  "multi_mpm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_mpm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

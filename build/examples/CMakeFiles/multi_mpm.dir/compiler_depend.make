# Empty compiler generated dependencies file for multi_mpm.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_unix_emulator "/root/repo/build/examples/unix_emulator")
set_tests_properties(example_unix_emulator PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_mp3d_sim "/root/repo/build/examples/mp3d_sim")
set_tests_properties(example_mp3d_sim PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_realtime_db "/root/repo/build/examples/realtime_db")
set_tests_properties(example_realtime_db PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multi_mpm "/root/repo/build/examples/multi_mpm")
set_tests_properties(example_multi_mpm PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_netboot_workstation "/root/repo/build/examples/netboot_workstation")
set_tests_properties(example_netboot_workstation PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")

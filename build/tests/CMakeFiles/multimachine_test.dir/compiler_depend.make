# Empty compiler generated dependencies file for multimachine_test.
# This may be replaced when dependencies are built.

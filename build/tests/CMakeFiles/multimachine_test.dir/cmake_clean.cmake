file(REMOVE_RECURSE
  "CMakeFiles/multimachine_test.dir/multimachine_test.cc.o"
  "CMakeFiles/multimachine_test.dir/multimachine_test.cc.o.d"
  "multimachine_test"
  "multimachine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multimachine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/mmu_oracle_test.dir/mmu_oracle_test.cc.o"
  "CMakeFiles/mmu_oracle_test.dir/mmu_oracle_test.cc.o.d"
  "mmu_oracle_test"
  "mmu_oracle_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmu_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for mmu_oracle_test.
# This may be replaced when dependencies are built.

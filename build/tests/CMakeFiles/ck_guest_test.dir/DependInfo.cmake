
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ck_guest_test.cc" "tests/CMakeFiles/ck_guest_test.dir/ck_guest_test.cc.o" "gcc" "tests/CMakeFiles/ck_guest_test.dir/ck_guest_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/prom/CMakeFiles/ck_prom.dir/DependInfo.cmake"
  "/root/repo/build/src/dsm/CMakeFiles/ck_dsm.dir/DependInfo.cmake"
  "/root/repo/build/src/srm/CMakeFiles/ck_srm.dir/DependInfo.cmake"
  "/root/repo/build/src/unixemu/CMakeFiles/ck_unixemu.dir/DependInfo.cmake"
  "/root/repo/build/src/mp3d/CMakeFiles/ck_mp3d.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/ck_db.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/ck_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/appkernel/CMakeFiles/ck_appkernel.dir/DependInfo.cmake"
  "/root/repo/build/src/ck/CMakeFiles/ck_core.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/ck_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ck_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/ck_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

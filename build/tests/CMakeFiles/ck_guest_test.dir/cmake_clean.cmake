file(REMOVE_RECURSE
  "CMakeFiles/ck_guest_test.dir/ck_guest_test.cc.o"
  "CMakeFiles/ck_guest_test.dir/ck_guest_test.cc.o.d"
  "ck_guest_test"
  "ck_guest_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ck_guest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

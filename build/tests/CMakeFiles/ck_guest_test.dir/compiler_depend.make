# Empty compiler generated dependencies file for ck_guest_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/appkernels_test.dir/appkernels_test.cc.o"
  "CMakeFiles/appkernels_test.dir/appkernels_test.cc.o.d"
  "appkernels_test"
  "appkernels_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appkernels_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

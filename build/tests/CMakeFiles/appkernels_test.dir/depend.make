# Empty dependencies file for appkernels_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ck_objects_test.dir/ck_objects_test.cc.o"
  "CMakeFiles/ck_objects_test.dir/ck_objects_test.cc.o.d"
  "ck_objects_test"
  "ck_objects_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ck_objects_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ck_objects_test.
# This may be replaced when dependencies are built.

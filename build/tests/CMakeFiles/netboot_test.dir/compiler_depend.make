# Empty compiler generated dependencies file for netboot_test.
# This may be replaced when dependencies are built.

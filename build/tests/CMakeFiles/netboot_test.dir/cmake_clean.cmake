file(REMOVE_RECURSE
  "CMakeFiles/netboot_test.dir/netboot_test.cc.o"
  "CMakeFiles/netboot_test.dir/netboot_test.cc.o.d"
  "netboot_test"
  "netboot_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netboot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/ck_datastructures_test.dir/ck_datastructures_test.cc.o"
  "CMakeFiles/ck_datastructures_test.dir/ck_datastructures_test.cc.o.d"
  "ck_datastructures_test"
  "ck_datastructures_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ck_datastructures_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

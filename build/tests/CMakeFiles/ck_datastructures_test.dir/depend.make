# Empty dependencies file for ck_datastructures_test.
# This may be replaced when dependencies are built.

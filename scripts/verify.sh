#!/usr/bin/env bash
# Tier-1 verify flow:
#   1. default build + full ctest (the seed gate), and
#   2. a Release (-O2 -DNDEBUG) build + ctest leg, because the guest-execution
#      fast path is only meaningfully exercised at -O2 and the differential
#      suite (fastpath_test) must hold under the optimizer too.
#
# Usage: scripts/verify.sh [--release-only]

set -euo pipefail
cd "$(dirname "$0")/.."

release_only=false
if [[ "${1:-}" == "--release-only" ]]; then
  release_only=true
fi

if ! $release_only; then
  echo "== tier-1: default build + ctest =="
  cmake -B build -S .
  cmake --build build -j
  ctest --test-dir build --output-on-failure -j "$(nproc)"
fi

echo "== tier-1: Release (-O2 -DNDEBUG) build + ctest =="
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-release -j
ctest --test-dir build-release --output-on-failure -j "$(nproc)"

echo "== fast-path speedup (Release) =="
./build-release/bench/microbench_host --benchmark_filter='BM_GuestMips' \
    --benchmark_min_time=0.5

echo "verify: OK"

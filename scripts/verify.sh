#!/usr/bin/env bash
# Tier-1 verify flow:
#   1. default build + full ctest (the seed gate), and
#   2. a Release (-O2 -DNDEBUG) build + ctest leg, because the guest-execution
#      fast path is only meaningfully exercised at -O2 and the differential
#      suite (fastpath_test) must hold under the optimizer too, and
#   3. an ASan+UBSan build + ctest leg — the checkpoint/restore paths move
#      raw byte buffers across kernels and must be clean under both
#      sanitizers, and
#   4. a ThreadSanitizer build running the cluster suite — the parallel
#      cluster driver (src/sim/cluster.h) runs machines on host worker
#      threads, and its isolation contract (machines share nothing during a
#      window; exchanges happen only at barriers) must be clean under TSan —
#      plus the intra-MPM worker-pool suites (fastpath_test, cluster_test,
#      tenant_test) re-run with CK_CPUS_PARALLEL=1, which routes every guest
#      quantum through the batched dispatch protocol on one host worker
#      thread per simulated CPU (see tests/test_harness.h), and
#   5. a formatting lint (clang-format --dry-run --Werror against the
#      repo-root .clang-format) over src/, tests/ and bench/ — skipped with
#      a warning when clang-format is not installed.
#
# Usage: scripts/verify.sh [--release-only] [--san-only] [--tsan-only] [--lint-only]

set -euo pipefail
cd "$(dirname "$0")/.."

run_default=true
run_release=true
run_san=true
run_tsan=true
run_lint=true
case "${1:-}" in
  --release-only) run_default=false; run_san=false; run_tsan=false; run_lint=false ;;
  --san-only)     run_default=false; run_release=false; run_tsan=false; run_lint=false ;;
  --tsan-only)    run_default=false; run_release=false; run_san=false; run_lint=false ;;
  --lint-only)    run_default=false; run_release=false; run_san=false; run_tsan=false ;;
  "") ;;
  *) echo "usage: scripts/verify.sh [--release-only|--san-only|--tsan-only|--lint-only]" >&2; exit 2 ;;
esac

# Files held to the .clang-format contract. Grow this list with each change
# that formats a file cleanly; the goal is eventually `git ls-files '*.cc'
# '*.h'`.
LINT_FILES=(
  bench/cache_replacement.cc
  src/base/bitmap.h
  src/ck/cache_kernel.h
  src/ck/config.h
  src/ck/object_cache.h
  src/ck/physmap.h
  tests/base_test.cc
  tests/object_cache_test.cc
  tests/property_test.cc
)

if $run_lint; then
  if command -v clang-format >/dev/null 2>&1; then
    echo "== lint: clang-format --dry-run --Werror (${#LINT_FILES[@]} files) =="
    clang-format --dry-run --Werror "${LINT_FILES[@]}"
  else
    echo "== lint: clang-format not installed; skipping format check ==" >&2
  fi
fi

if $run_default; then
  echo "== tier-1: default build + ctest =="
  cmake -B build -S .
  cmake --build build -j
  ctest --test-dir build --output-on-failure -j "$(nproc)"

  # Explicit re-run of the cluster-trace fixture (also part of the full ctest
  # above): multi-MPM with tracing + profiler + flight recorder, then the
  # causal-span/flight-record checker. Kept visible here because it is the
  # end-to-end gate on the observability pipeline.
  echo "== cluster trace fixture (multi-MPM causal trace + flight recorder) =="
  ctest --test-dir build -R 'cluster_trace' --output-on-failure
fi

if $run_release; then
  echo "== tier-1: Release (-O2 -DNDEBUG) build + ctest =="
  cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build-release -j
  ctest --test-dir build-release --output-on-failure -j "$(nproc)"

  echo "== fast-path speedup (Release) =="
  ./build-release/bench/microbench_host --benchmark_filter='BM_GuestMips' \
      --benchmark_min_time=0.5
fi

if $run_san; then
  echo "== tier-1: ASan+UBSan build + ctest =="
  cmake -B build-san -S . \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer" \
      -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
  cmake --build build-san -j
  ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=print_stacktrace=1 \
      ctest --test-dir build-san --output-on-failure -j "$(nproc)"
fi

if $run_tsan; then
  echo "== ThreadSanitizer build + cluster suite =="
  cmake -B build-tsan -S . \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
      -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
  cmake --build build-tsan -j --target cluster_test sim_test cluster_scaling \
      fastpath_test tenant_test fs_test property_test memory_tiers
  # property_test carries the tiered conservation storms, fs_test the tiered
  # netboot serial-vs-parallel differential, and the memory_tiers fixture the
  # tiered cluster-determinism gate (docs/TIERING.md) -- all must be clean
  # under TSan with tiering enabled.
  TSAN_OPTIONS=halt_on_error=1 \
      ctest --test-dir build-tsan \
      -R 'cluster_test|sim_test|cluster_scaling|fs_test|property_test|memory_tiers' \
      --output-on-failure

  echo "== TSan: intra-MPM worker pool (CK_CPUS_PARALLEL=1) =="
  CK_CPUS_PARALLEL=1 TSAN_OPTIONS=halt_on_error=1 \
      ctest --test-dir build-tsan -R 'fastpath_test|cluster_test|tenant_test' \
      --output-on-failure
fi

echo "verify: OK"

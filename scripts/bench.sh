#!/usr/bin/env bash
# Record the repo-root BENCH_*.json files from a Release build.
#
#   scripts/bench.sh [host_mips] [cluster_scaling] [cache_replacement] [file_service] [memory_tiers]   # default: all
#
# Guarantees enforced here (scripts/bench_json.py does the checking):
#   * Bench binaries are built with CMAKE_BUILD_TYPE=Release. If google-
#     benchmark sources are available (env BENCHMARK_SRC, third_party/
#     benchmark, or /usr/src/benchmark), the library itself is also rebuilt
#     in Release and used instead of the system one -- Debian's libbenchmark
#     is a debug build, which is why the originally recorded
#     BENCH_host_mips.json said "library_build_type": "debug". Without
#     sources, the system library is still only measurement scaffolding: all
#     measured code and the header-inlined timing loop live in our Release
#     binary, which attests itself via the custom context key
#     binary_build_type (see bench/microbench_host.cc).
#   * No BENCH_*.json is written unless the run's context passes the release
#     gate (library_build_type == release OR binary_build_type == release).
#   * Runs are APPENDED to the recorded file (schema ck-bench-runs-v1), never
#     silently overwritten; previously recorded runs that fail the gate are
#     dropped with a warning.

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=build-release
PREFIX_ARGS=()

# Rebuild google-benchmark in Release when its sources are reachable.
BENCHMARK_SRC="${BENCHMARK_SRC:-}"
for candidate in "$BENCHMARK_SRC" third_party/benchmark /usr/src/benchmark; do
  if [ -n "$candidate" ] && [ -f "$candidate/CMakeLists.txt" ]; then
    echo "== building google-benchmark (Release) from $candidate"
    cmake -S "$candidate" -B "$BUILD/benchmark-build" \
        -DCMAKE_BUILD_TYPE=Release \
        -DBENCHMARK_ENABLE_TESTING=OFF \
        -DBENCHMARK_ENABLE_GTEST_TESTS=OFF \
        -DCMAKE_INSTALL_PREFIX="$PWD/$BUILD/benchmark-prefix" >/dev/null
    cmake --build "$BUILD/benchmark-build" -j "$(nproc)" >/dev/null
    cmake --install "$BUILD/benchmark-build" >/dev/null
    PREFIX_ARGS=(-DCMAKE_PREFIX_PATH="$PWD/$BUILD/benchmark-prefix")
    break
  fi
done
if [ ${#PREFIX_ARGS[@]} -eq 0 ]; then
  echo "== google-benchmark sources not found; using the system library" \
       "(binary_build_type gates the recording instead)"
fi

echo "== configuring $BUILD (CMAKE_BUILD_TYPE=Release)"
cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release "${PREFIX_ARGS[@]}" >/dev/null

record() {
  local file="$1" binary="$2"
  shift 2
  echo "== $binary -> $file"
  cmake --build "$BUILD" -j "$(nproc)" --target "$binary" >/dev/null
  local tmp
  tmp="$BUILD/bench/$binary.run.json"
  "$BUILD/bench/$binary" --benchmark_out="$tmp" --benchmark_out_format=json "$@"
  python3 scripts/bench_json.py append "$file" "$tmp" --require-release
}

want() {
  [ $# -eq 0 ] && return 1
  local name
  for name in "${TARGETS[@]}"; do
    if [ "$name" = "$1" ] || [ "$name" = all ]; then
      return 0
    fi
  done
  return 1
}

TARGETS=("${@:-all}")
# host_mips includes the guest-throughput benches (BM_GuestMips: slow
# reference / fast path / superblock traces, and BM_GuestMipsParallel: the
# batched intra-MPM configurations); min_time is raised so the recorded
# MIPS figures are steady-state, not warm-up.
want host_mips && record BENCH_host_mips.json microbench_host --benchmark_min_time=2.0
want cluster_scaling && record BENCH_cluster_scaling.json cluster_scaling
want cache_replacement && record BENCH_cache_replacement.json cache_replacement
# file_service self-checks zero-wire warm hits, the >= 10x warm speedup and
# the serial-vs-parallel differential on every measurement.
want file_service && record BENCH_file_service.json file_service
# memory_tiers sweeps the DRAM:slow split over the paging and DB workloads
# and self-checks the demotion-beats-eviction gates plus the tiered
# serial-vs-parallel cluster differential (docs/TIERING.md).
want memory_tiers && record BENCH_memory_tiers.json memory_tiers
echo "== done"

#!/usr/bin/env python3
"""Validate and record google-benchmark JSON results.

Recorded BENCH_*.json files at the repo root use an append-only wrapper:

    {"schema": "ck-bench-runs-v1", "runs": [<google-benchmark output>, ...]}

so re-recording keeps history instead of silently replacing numbers whose
context (host, build type, load) differed.

Subcommands:
  check  <file> [--require-release] [--require-counter NAME]...
         [--require-benchmark NAME]...
      Validate one google-benchmark JSON output (or every run of a recorded
      wrapper file). --require-benchmark fails unless a benchmark whose name
      starts with NAME is present (google-benchmark suffixes names with
      /iterations:N etc., so prefix match). --require-release fails unless
      the run was built for release: either the benchmark library itself reports
      context.library_build_type == "release", or the benchmark binary was
      compiled with NDEBUG and says so via the custom context key
      binary_build_type (all measured code lives in the binary; see
      bench/microbench_host.cc).

  append <file> <run.json> [--require-release]
      Validate run.json, then append it to the wrapper file <file>.
      A legacy single-run file is converted to the wrapper format first;
      legacy runs that fail validation are dropped with a warning (that is
      the point: they were recorded without the gate).
"""

import argparse
import json
import sys

SCHEMA = "ck-bench-runs-v1"


def is_release(run):
    ctx = run.get("context", {})
    if ctx.get("library_build_type") == "release":
        return True
    # google-benchmark >= 1.6 merges AddCustomContext entries into context.
    return ctx.get("binary_build_type") == "release"


def validate_run(run, require_release, require_counters, label,
                 require_benchmarks=()):
    errors = []
    ctx = run.get("context")
    if not isinstance(ctx, dict):
        errors.append(f"{label}: missing context object")
        ctx = {}
    benches = run.get("benchmarks")
    if not isinstance(benches, list) or not benches:
        errors.append(f"{label}: missing or empty benchmarks array")
        benches = []
    for b in benches:
        if "error_occurred" in b and b["error_occurred"]:
            errors.append(f"{label}: benchmark {b.get('name')} reported an error: "
                          f"{b.get('error_message')}")
        if "name" not in b:
            errors.append(f"{label}: benchmark entry without a name")
    for counter in require_counters:
        present = [b for b in benches if counter in b]
        if not present:
            errors.append(f"{label}: no benchmark carries required counter '{counter}'")
    for name in require_benchmarks:
        if not any(b.get("name", "").startswith(name) for b in benches):
            errors.append(f"{label}: required benchmark '{name}' not present")
    if require_release and not is_release(run):
        errors.append(
            f"{label}: context is not a release build "
            f"(library_build_type={ctx.get('library_build_type')!r}, "
            f"binary_build_type={ctx.get('binary_build_type')!r}); refusing")
    return errors


def load_runs(path):
    with open(path) as f:
        doc = json.load(f)
    if isinstance(doc, dict) and doc.get("schema") == SCHEMA:
        return doc.get("runs", []), True
    # Legacy: a bare google-benchmark output object.
    return [doc], False


def cmd_check(args):
    runs, _ = load_runs(args.file)
    errors = []
    for i, run in enumerate(runs):
        errors += validate_run(run, args.require_release, args.require_counter,
                               f"{args.file} run[{i}]", args.require_benchmark)
    for e in errors:
        print(f"FAIL: {e}", file=sys.stderr)
    if not errors:
        print(f"OK: {args.file}: {len(runs)} valid run(s)")
    return 1 if errors else 0


def cmd_append(args):
    with open(args.run) as f:
        new_run = json.load(f)
    errors = validate_run(new_run, args.require_release, [], args.run)
    if errors:
        for e in errors:
            print(f"FAIL: {e}", file=sys.stderr)
        print(f"FAIL: {args.run} NOT recorded into {args.file}", file=sys.stderr)
        return 1

    runs = []
    try:
        old_runs, wrapped = load_runs(args.file)
    except FileNotFoundError:
        old_runs, wrapped = [], True
    for i, run in enumerate(old_runs):
        old_errors = validate_run(run, args.require_release, [], f"existing run[{i}]")
        if old_errors:
            kind = "recorded" if wrapped else "legacy"
            print(f"WARN: dropping {kind} run[{i}] from {args.file}:", file=sys.stderr)
            for e in old_errors:
                print(f"WARN:   {e}", file=sys.stderr)
        else:
            runs.append(run)
    runs.append(new_run)
    with open(args.file, "w") as f:
        json.dump({"schema": SCHEMA, "runs": runs}, f, indent=1)
        f.write("\n")
    print(f"OK: {args.file}: now {len(runs)} run(s)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="cmd", required=True)

    p_check = sub.add_parser("check")
    p_check.add_argument("file")
    p_check.add_argument("--require-release", action="store_true")
    p_check.add_argument("--require-counter", action="append", default=[])
    p_check.add_argument("--require-benchmark", action="append", default=[])
    p_check.set_defaults(func=cmd_check)

    p_append = sub.add_parser("append")
    p_append.add_argument("file")
    p_append.add_argument("run")
    p_append.add_argument("--require-release", action="store_true")
    p_append.set_defaults(func=cmd_append)

    args = parser.parse_args()
    sys.exit(args.func(args))


if __name__ == "__main__":
    main()

// Fixed-capacity object pool with stable slots and generation-tagged ids.
//
// Every Cache Kernel descriptor cache (kernels, address spaces, threads,
// MemMapEntries) is a fixed array sized at boot -- the defining property of
// the caching model: the kernel never allocates, it reclaims. Slots carry a
// generation counter so that an object identifier returned at load time
// becomes stale the moment the slot is reclaimed and reloaded, which is
// exactly the paper's "a new identifier is assigned each time an object is
// loaded" rule.

#ifndef SRC_BASE_FIXED_POOL_H_
#define SRC_BASE_FIXED_POOL_H_

#include <cstdint>
#include <vector>

#include "src/base/intrusive_list.h"

namespace ckbase {

// An identifier for a pooled object: slot index plus the slot generation at
// allocation time. Value 0 is never a valid id (generation starts at 1).
struct PoolId {
  uint32_t slot = 0;
  uint32_t generation = 0;

  bool valid() const { return generation != 0; }
  bool operator==(const PoolId&) const = default;

  // Packs into a single opaque 64-bit value, the form application kernels see.
  uint64_t Packed() const { return (uint64_t{generation} << 32) | slot; }
  static PoolId FromPacked(uint64_t packed) {
    return PoolId{static_cast<uint32_t>(packed & 0xffffffffu),
                  static_cast<uint32_t>(packed >> 32)};
  }
};

// Pool of T. T must embed `ckbase::ListNode pool_node;` used for the free
// list (and reusable by the owner for an allocated-objects list, since an
// object is never on both).
template <typename T>
class FixedPool {
 public:
  explicit FixedPool(uint32_t capacity)
      : slots_(capacity), generations_(capacity, 1), allocated_(capacity, false) {
    for (uint32_t i = 0; i < capacity; ++i) {
      free_list_.PushBack(&slots_[i]);
    }
  }

  uint32_t capacity() const { return static_cast<uint32_t>(slots_.size()); }
  uint32_t in_use() const { return in_use_; }
  bool full() const { return in_use_ == capacity(); }

  // Allocate a slot; returns nullptr when the pool is exhausted (the caller
  // then runs reclamation). The object is NOT reconstructed; the caller
  // resets fields (descriptors are POD-ish by design).
  T* Allocate() {
    T* item = free_list_.PopFront();
    if (item == nullptr) {
      return nullptr;
    }
    allocated_[SlotOf(item)] = true;
    ++in_use_;
    return item;
  }

  // Return a slot to the pool, bumping its generation so outstanding ids go
  // stale.
  void Release(T* item) {
    uint32_t slot = SlotOf(item);
    ++generations_[slot];
    allocated_[slot] = false;
    --in_use_;
    free_list_.PushBack(item);
  }

  // Whether a slot currently holds a live object (reclamation scans iterate
  // slots directly).
  bool IsAllocated(uint32_t slot) const { return allocated_[slot]; }

  // Identifier for a currently allocated object.
  PoolId IdOf(const T* item) const {
    uint32_t slot = SlotOf(item);
    return PoolId{slot, generations_[slot]};
  }

  // Resolve an id to the object, or nullptr if the id is stale/invalid.
  T* Lookup(PoolId id) {
    if (id.slot >= capacity() || generations_[id.slot] != id.generation) {
      return nullptr;
    }
    return &slots_[id.slot];
  }

  // Direct slot access for iteration by owners (e.g. replacement scans).
  T* SlotAt(uint32_t slot) { return &slots_[slot]; }

  uint32_t SlotOf(const T* item) const { return static_cast<uint32_t>(item - slots_.data()); }

 private:
  std::vector<T> slots_;
  std::vector<uint32_t> generations_;
  std::vector<bool> allocated_;
  IntrusiveList<T, &T::pool_node> free_list_;
  uint32_t in_use_ = 0;
};

}  // namespace ckbase

#endif  // SRC_BASE_FIXED_POOL_H_

// Version-based non-blocking synchronization.
//
// Section 4.2: "The Cache Kernel data structures use non-blocking
// synchronization techniques so that potentially long unload operations are
// performed without disabling interrupts or incurring long lock hold times.
// The version support ... allows a processor to determine whether a data
// structure has been modified ... concurrently with its execution of a Cache
// Kernel operation. If it has been modified, the processor retries."
//
// The simulator executes the machine deterministically on one host thread, so
// these primitives do not need host atomics; what they preserve is the
// *protocol*: readers snapshot a version, validate it after the traversal and
// retry on mismatch, and writers bump the version around every mutation. The
// retry paths are real and exercised by tests that interleave mutations at
// simulated preemption points.

#ifndef SRC_BASE_VERSION_LOCK_H_
#define SRC_BASE_VERSION_LOCK_H_

#include <cstdint>

namespace ckbase {

// A version counter protecting one structure (e.g. the physical memory map).
// Even value = stable; odd = a writer is mid-mutation.
class VersionLock {
 public:
  // Begin a read-side critical section: returns the version to validate
  // against. If a write is in progress the reader spins (in simulation, a
  // write never yields mid-section, so this returns a stable version).
  uint64_t ReadBegin() const { return version_; }

  // True if the structure was NOT modified since `version` was observed.
  bool ReadValidate(uint64_t version) const { return version_ == version && (version & 1) == 0; }

  // Writer entry/exit. WriteBegin marks the structure unstable; WriteEnd
  // publishes the mutation. Nesting is a bug and is asserted by tests.
  void WriteBegin() { ++version_; }
  void WriteEnd() { ++version_; }

  // Total number of published mutations (for tests and stats).
  uint64_t mutation_count() const { return version_ / 2; }

 private:
  uint64_t version_ = 0;
};

// RAII writer section.
class VersionWriteScope {
 public:
  explicit VersionWriteScope(VersionLock& lock) : lock_(lock) { lock_.WriteBegin(); }
  ~VersionWriteScope() { lock_.WriteEnd(); }
  VersionWriteScope(const VersionWriteScope&) = delete;
  VersionWriteScope& operator=(const VersionWriteScope&) = delete;

 private:
  VersionLock& lock_;
};

}  // namespace ckbase

#endif  // SRC_BASE_VERSION_LOCK_H_

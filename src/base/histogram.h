// Bounded streaming latency/statistics accumulator.
//
// The paper reports single elapsed-time numbers; we report mean plus spread
// so measurement quality is visible. Count, sum, min, max and the second
// moment stream exactly in O(1) space regardless of how many samples are
// added; percentiles come from a bounded reservoir (deterministic stride
// decimation), so a Stats can sit on a kernel hot path for an arbitrarily
// long run without growing.

#ifndef SRC_BASE_HISTOGRAM_H_
#define SRC_BASE_HISTOGRAM_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace ckbase {

class Stats {
 public:
  // Upper bound on retained samples for percentile estimation.
  static constexpr size_t kReservoirCap = 2048;

  void Add(double sample) {
    count_++;
    sum_ += sample;
    sumsq_ += sample * sample;
    if (count_ == 1) {
      min_ = max_ = sample;
    } else {
      min_ = std::min(min_, sample);
      max_ = std::max(max_, sample);
    }
    // Keep every stride_-th sample; when the reservoir fills, drop every
    // other retained sample and double the stride. Deterministic, and the
    // survivors stay uniformly spread over the whole stream.
    if (admit_countdown_ == 0) {
      if (reservoir_.size() >= kReservoirCap) {
        Decimate();
      }
      reservoir_.push_back(sample);
      admit_countdown_ = stride_ - 1;
    } else {
      admit_countdown_--;
    }
  }

  size_t count() const { return count_; }
  size_t reservoir_size() const { return reservoir_.size(); }

  double Mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  double Min() const { return count_ == 0 ? 0.0 : min_; }
  double Max() const { return count_ == 0 ? 0.0 : max_; }
  double Sum() const { return sum_; }

  // p in [0,100]. Linear interpolation over the sorted reservoir; exact while
  // the sample count is within kReservoirCap, an even-stride estimate beyond.
  double Percentile(double p) const {
    if (reservoir_.empty()) {
      return 0.0;
    }
    std::vector<double> sorted = reservoir_;
    std::sort(sorted.begin(), sorted.end());
    double rank = (p / 100.0) * static_cast<double>(sorted.size() - 1);
    size_t lo = static_cast<size_t>(rank);
    size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1 - frac) + sorted[hi] * frac;
  }

  // Sample standard deviation (n-1 denominator), streamed from the moments.
  double StdDev() const {
    if (count_ < 2) {
      return 0.0;
    }
    double n = static_cast<double>(count_);
    double var = (sumsq_ - sum_ * sum_ / n) / (n - 1);
    return var > 0 ? std::sqrt(var) : 0.0;
  }

  // Fold another accumulator into this one. Moments merge exactly; the
  // reservoirs concatenate and re-decimate to stay within the bound.
  void Merge(const Stats& other) {
    if (other.count_ == 0) {
      return;
    }
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    sum_ += other.sum_;
    sumsq_ += other.sumsq_;
    reservoir_.insert(reservoir_.end(), other.reservoir_.begin(), other.reservoir_.end());
    while (reservoir_.size() > kReservoirCap) {
      Decimate();
    }
  }

 private:
  void Decimate() {
    size_t keep = 0;
    for (size_t i = 0; i < reservoir_.size(); i += 2) {
      reservoir_[keep++] = reservoir_[i];
    }
    reservoir_.resize(keep);
    stride_ *= 2;
  }

  size_t count_ = 0;
  double sum_ = 0;
  double sumsq_ = 0;
  double min_ = 0;
  double max_ = 0;
  std::vector<double> reservoir_;
  uint64_t stride_ = 1;
  uint64_t admit_countdown_ = 0;
};

}  // namespace ckbase

#endif  // SRC_BASE_HISTOGRAM_H_

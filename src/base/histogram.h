// Streaming latency/statistics accumulator for the benchmark harnesses.
//
// The paper reports single elapsed-time numbers; we report mean plus spread so
// the bench output makes the measurement quality visible.

#ifndef SRC_BASE_HISTOGRAM_H_
#define SRC_BASE_HISTOGRAM_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace ckbase {

class Stats {
 public:
  void Add(double sample) { samples_.push_back(sample); }

  size_t count() const { return samples_.size(); }

  double Mean() const {
    if (samples_.empty()) {
      return 0.0;
    }
    double sum = 0;
    for (double s : samples_) {
      sum += s;
    }
    return sum / static_cast<double>(samples_.size());
  }

  double Min() const {
    return samples_.empty() ? 0.0 : *std::min_element(samples_.begin(), samples_.end());
  }

  double Max() const {
    return samples_.empty() ? 0.0 : *std::max_element(samples_.begin(), samples_.end());
  }

  // p in [0,100]. Sorts a copy; bench-path only.
  double Percentile(double p) const {
    if (samples_.empty()) {
      return 0.0;
    }
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    double rank = (p / 100.0) * static_cast<double>(sorted.size() - 1);
    size_t lo = static_cast<size_t>(rank);
    size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1 - frac) + sorted[hi] * frac;
  }

  double StdDev() const {
    if (samples_.size() < 2) {
      return 0.0;
    }
    double mean = Mean();
    double acc = 0;
    for (double s : samples_) {
      acc += (s - mean) * (s - mean);
    }
    return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
  }

 private:
  std::vector<double> samples_;
};

}  // namespace ckbase

#endif  // SRC_BASE_HISTOGRAM_H_

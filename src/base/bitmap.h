// Iterable membership bitmap with an O(1) dense probe.
//
// Built for the Cache Kernel's remote-frame set: the guest memory hot paths
// (including the fast-path interpreter, which captures a raw pointer to the
// dense region) probe a byte per index, while failure injection and the
// validator need insertion, removal, counting and ordered iteration. Indices
// below the dense limit live in a byte vector whose storage never moves;
// indices at or above it (a peer node's frames -- markable but never
// reachable by a local translation) spill into a small sorted vector.

#ifndef SRC_BASE_BITMAP_H_
#define SRC_BASE_BITMAP_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace ckbase {

class IterableBitmap {
 public:
  explicit IterableBitmap(uint32_t dense_limit) : dense_(dense_limit, 0) {}

  // O(1) for indices below the dense limit (the hot-path case); O(log n) in
  // the sparse overflow otherwise.
  bool Test(uint32_t index) const {
    if (index < dense_.size()) {
      return dense_[index] != 0;
    }
    auto it = std::lower_bound(sparse_.begin(), sparse_.end(), index);
    return it != sparse_.end() && *it == index;
  }

  void Assign(uint32_t index, bool value) {
    if (index < dense_.size()) {
      if ((dense_[index] != 0) != value) {
        dense_[index] = value ? 1 : 0;
        count_ += value ? 1 : -1;
      }
      return;
    }
    auto it = std::lower_bound(sparse_.begin(), sparse_.end(), index);
    bool present = it != sparse_.end() && *it == index;
    if (value && !present) {
      sparse_.insert(it, index);
      ++count_;
    } else if (!value && present) {
      sparse_.erase(it);
      --count_;
    }
  }

  uint32_t count() const { return count_; }
  bool empty() const { return count_ == 0; }

  // Visit every set index in ascending order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (uint32_t i = 0; i < dense_.size(); ++i) {
      if (dense_[i] != 0) {
        fn(i);
      }
    }
    for (uint32_t i : sparse_) {
      fn(i);
    }
  }

  // The dense probe region, for consumers that test membership without a
  // function call (the fast-path interpreter). The pointer is stable for the
  // bitmap's lifetime; indices >= dense_limit() must fall back to Test().
  const uint8_t* dense_data() const { return dense_.data(); }
  uint32_t dense_limit() const { return static_cast<uint32_t>(dense_.size()); }

 private:
  std::vector<uint8_t> dense_;     // [index] -> 0/1, storage never reallocates
  std::vector<uint32_t> sparse_;   // sorted indices >= dense_.size()
  uint32_t count_ = 0;
};

}  // namespace ckbase

#endif  // SRC_BASE_BITMAP_H_

// Intrusive doubly-linked list.
//
// The Cache Kernel keeps all of its descriptors in fixed-capacity pools and
// threads them onto free lists, per-priority ready queues, per-space thread
// lists and hash chains without any dynamic allocation, exactly as a PROM
// resident kernel must. An intrusive list gives O(1) unlink of an element
// whose address is known, which the dependency-ordered unloader relies on.

#ifndef SRC_BASE_INTRUSIVE_LIST_H_
#define SRC_BASE_INTRUSIVE_LIST_H_

#include <cstddef>

namespace ckbase {

// Embed one ListNode per list an object can be on. A node is "linked" when it
// is on some list; unlinking is idempotent.
struct ListNode {
  ListNode* prev = nullptr;
  ListNode* next = nullptr;

  bool linked() const { return prev != nullptr; }

  // Remove from whatever list this node is on. Safe to call when unlinked.
  void Unlink() {
    if (!linked()) {
      return;
    }
    prev->next = next;
    next->prev = prev;
    prev = nullptr;
    next = nullptr;
  }
};

// A list of T where T embeds a ListNode reachable via the NodeMember pointer.
// Example:
//   struct Thread { ListNode ready_node; ... };
//   IntrusiveList<Thread, &Thread::ready_node> ready_queue;
template <typename T, ListNode T::* NodeMember>
class IntrusiveList {
 public:
  IntrusiveList() {
    head_.prev = &head_;
    head_.next = &head_;
  }

  // Lists hold no ownership; destroying a non-empty list leaves elements
  // linked to a dead head, so callers clear first. Guarded in tests.
  ~IntrusiveList() = default;

  IntrusiveList(const IntrusiveList&) = delete;
  IntrusiveList& operator=(const IntrusiveList&) = delete;

  bool empty() const { return head_.next == &head_; }

  void PushBack(T* item) {
    ListNode* node = &(item->*NodeMember);
    node->prev = head_.prev;
    node->next = &head_;
    head_.prev->next = node;
    head_.prev = node;
  }

  void PushFront(T* item) {
    ListNode* node = &(item->*NodeMember);
    node->next = head_.next;
    node->prev = &head_;
    head_.next->prev = node;
    head_.next = node;
  }

  // Front element or nullptr when empty.
  T* Front() const { return empty() ? nullptr : FromNode(head_.next); }

  // Pop and return the front element, or nullptr when empty.
  T* PopFront() {
    if (empty()) {
      return nullptr;
    }
    T* item = FromNode(head_.next);
    head_.next->Unlink();
    return item;
  }

  void Remove(T* item) { (item->*NodeMember).Unlink(); }

  // Number of elements; O(n), used by tests and capacity accounting only.
  size_t Size() const {
    size_t n = 0;
    for (ListNode* node = head_.next; node != &head_; node = node->next) {
      ++n;
    }
    return n;
  }

  // Iteration support (forward only; removal of the current element during
  // iteration is allowed if the caller saves `next` first, as the unloader
  // does).
  class Iterator {
   public:
    Iterator(ListNode* node, const ListNode* head) : node_(node), head_(head) {}
    T* operator*() const { return FromNode(node_); }
    Iterator& operator++() {
      node_ = node_->next;
      return *this;
    }
    bool operator!=(const Iterator& other) const { return node_ != other.node_; }

   private:
    ListNode* node_;
    const ListNode* head_;
  };

  Iterator begin() { return Iterator(head_.next, &head_); }
  Iterator end() { return Iterator(&head_, &head_); }

 private:
  static T* FromNode(ListNode* node) {
    // Recover the enclosing object from the embedded node. NodeMember is a
    // compile-time member pointer, so the offset is known to the compiler.
    static const T* const probe = nullptr;
    const auto offset =
        reinterpret_cast<const char*>(&(probe->*NodeMember)) - reinterpret_cast<const char*>(probe);
    return reinterpret_cast<T*>(reinterpret_cast<char*>(node) - offset);
  }

  ListNode head_;  // sentinel; prev = tail, next = front
};

}  // namespace ckbase

#endif  // SRC_BASE_INTRUSIVE_LIST_H_

// Deterministic PRNG for workload generators and property tests.
//
// The whole reproduction is deterministic: a given seed replays the same
// machine execution, which is what makes the failure-injection and property
// tests debuggable. xoshiro256** -- small, fast, good enough for workload
// shaping (we are not doing cryptography).

#ifndef SRC_BASE_RNG_H_
#define SRC_BASE_RNG_H_

#include <cstdint>

namespace ckbase {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 seeding to spread a small seed over the full state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      s = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  // Uniform in [lo, hi] inclusive.
  uint64_t Range(uint64_t lo, uint64_t hi) { return lo + Below(hi - lo + 1); }

  // Bernoulli with probability num/den.
  bool Chance(uint64_t num, uint64_t den) { return Below(den) < num; }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0); }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace ckbase

#endif  // SRC_BASE_RNG_H_

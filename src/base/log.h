// Minimal leveled logging to stderr.
//
// Used by examples and by the failure-injection tests; the kernel paths
// themselves never log on the hot path (a PROM kernel would not either).

#ifndef SRC_BASE_LOG_H_
#define SRC_BASE_LOG_H_

#include <sstream>
#include <string>

namespace ckbase {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Global threshold; messages below it are dropped. Defaults to kWarn so tests
// and benches stay quiet.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Emits one formatted line: "[LEVEL] message".
void LogLine(LogLevel level, const std::string& message);

// Stream-style helper: CKLOG(kInfo) << "loaded " << n << " mappings";
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { LogLine(level_, stream_.str()); }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace ckbase

#define CKLOG(level) ::ckbase::LogMessage(::ckbase::LogLevel::level).stream()

#endif  // SRC_BASE_LOG_H_

// Status and Result types used across the Cache Kernel reproduction.
//
// The Cache Kernel interface is deliberately small and its calls fail in a
// small number of well-defined ways (most importantly kStale: an object
// identifier no longer names a loaded object because the object was written
// back concurrently -- the caller reloads the dependency and retries, per
// section 2 of the paper). We model those outcomes with CkStatus rather than
// exceptions so that the simulated supervisor path never unwinds.

#ifndef SRC_BASE_STATUS_H_
#define SRC_BASE_STATUS_H_

#include <cstdint>
#include <string_view>
#include <utility>

namespace ckbase {

// Outcome of a Cache Kernel call or an internal operation.
enum class CkStatus : uint8_t {
  kOk = 0,
  // The identifier does not name a currently loaded object (it was written
  // back, possibly concurrently). The application kernel must reload the
  // dependency and retry the operation.
  kStale,
  // The calling kernel is not authorized for the requested resource (for
  // example a physical page outside its memory access array, or a priority
  // above its cap).
  kDenied,
  // A fixed-capacity structure is exhausted and nothing can be reclaimed
  // (every candidate is locked). The paper treats this as an application
  // error: locked-object limits exist precisely to prevent it.
  kNoResources,
  // Arguments are malformed (unaligned address, bad priority, null handler).
  kInvalidArgument,
  // The object exists but is in a state that forbids the operation (for
  // example unloading a thread that is mid-exception on another CPU).
  kBusy,
  // The operation raced with a concurrent modification and should be retried
  // (surfaced by the version-based non-blocking synchronization).
  kRetry,
  // Object not found where one was required (e.g. no mapping for a flush).
  kNotFound,
};

// Human-readable name for a status value, for logs and test failures.
std::string_view CkStatusName(CkStatus status);

inline bool IsOk(CkStatus status) { return status == CkStatus::kOk; }

// A value-or-status pair. Minimal by design: the simulated kernel paths only
// need "did it work, and if so what is the identifier".
template <typename T>
class Result {
 public:
  // Implicit construction from a value or from an error status keeps call
  // sites readable: `return id;` or `return CkStatus::kStale;`.
  Result(T value) : status_(CkStatus::kOk), value_(std::move(value)) {}
  Result(CkStatus status) : status_(status) {}

  bool ok() const { return status_ == CkStatus::kOk; }
  CkStatus status() const { return status_; }

  // Precondition: ok(). Checked in debug builds via the caller's tests; the
  // value is default-constructed (not UB) when not ok.
  const T& value() const { return value_; }
  T& value() { return value_; }

 private:
  CkStatus status_;
  T value_{};
};

}  // namespace ckbase

#endif  // SRC_BASE_STATUS_H_

#include "src/base/status.h"

namespace ckbase {

std::string_view CkStatusName(CkStatus status) {
  switch (status) {
    case CkStatus::kOk:
      return "OK";
    case CkStatus::kStale:
      return "STALE";
    case CkStatus::kDenied:
      return "DENIED";
    case CkStatus::kNoResources:
      return "NO_RESOURCES";
    case CkStatus::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case CkStatus::kBusy:
      return "BUSY";
    case CkStatus::kRetry:
      return "RETRY";
    case CkStatus::kNotFound:
      return "NOT_FOUND";
  }
  return "UNKNOWN";
}

}  // namespace ckbase

#include "src/mp3d/mp3d_kernel.h"

#include <algorithm>
#include <array>

namespace ckmp3d {

using ck::CkApi;
using ckbase::CkStatus;
using cksim::VirtAddr;

namespace {
// Fixed-point space: each cell is 4096 position units wide.
constexpr uint32_t kCellWidth = 4096;
constexpr int32_t kMaxSpeed = 700;
constexpr uint32_t kFreeSlot = ~0u;
}  // namespace

// Worker: sweeps its share of the cell grid, one cell per Step (a bounded
// chunk, so scheduling and preemption stay live during the simulation).
class Mp3dKernel::WorkerProgram : public ck::NativeProgram {
 public:
  WorkerProgram(Mp3dKernel& kernel, uint32_t first_cell, uint32_t last_cell)
      : kernel_(kernel), first_(first_cell), last_(last_cell), cursor_(last_cell) {}

  ck::NativeOutcome Step(ck::NativeCtx& ctx) override {
    ck::NativeOutcome outcome;
    Mp3dKernel& k = kernel_;
    if (k.steps_completed_ >= k.step_target_) {
      outcome.action = ck::NativeOutcome::Action::kBlock;
      return outcome;
    }
    if (my_step_ != k.steps_completed_) {
      // Barrier: finished this step already; wait for the others.
      ctx.Charge(4);
      outcome.action = ck::NativeOutcome::Action::kYield;
      return outcome;
    }
    if (cursor_ >= last_) {
      cursor_ = first_;  // starting a new step
    }
    k.stats_.particle_updates += k.SweepCells(ctx, cursor_, cursor_ + 1);
    ++cursor_;
    if (cursor_ == last_) {
      ++my_step_;
      if (++k.workers_done_this_step_ == k.workers_.size()) {
        k.workers_done_this_step_ = 0;
        k.steps_completed_++;
      }
    }
    outcome.action = ck::NativeOutcome::Action::kYield;
    return outcome;
  }

 private:
  Mp3dKernel& kernel_;
  uint32_t first_;
  uint32_t last_;
  uint32_t cursor_;
  uint32_t my_step_ = 0;
};

Mp3dKernel::Mp3dKernel(ck::CacheKernel& ck, const Mp3dConfig& config)
    : ckapp::AppKernelBase("mp3d", /*backing_pages=*/64),
      ck_(ck),
      config_(config),
      rng_(config.seed) {}

Mp3dKernel::~Mp3dKernel() = default;

void Mp3dKernel::Setup(CkApi& api) {
  space_index_ = CreateSpace(api, /*locked=*/true);
  uint32_t region_pages =
      (slot_capacity() * kParticleBytes + cksim::kPageSize - 1) / cksim::kPageSize;
  DefineZeroRegion(space_index_, config_.region_base, region_pages, /*writable=*/true);

  slot_cell_.assign(slot_capacity(), kFreeSlot);
  slot_stamp_.assign(slot_capacity(), ~0u);
  cell_slots_.assign(config_.cells, {});
  cell_free_.assign(config_.cells, {});

  // Initialize particles: random position (hence random cell) and velocity.
  // Scattered: slot = particle index, so cell membership is dispersed over
  // the whole region. Locality-aware: slots grouped per cell with slack.
  std::vector<uint32_t> next_in_cell(config_.cells, 0);
  for (uint32_t p = 0; p < config_.particles; ++p) {
    uint32_t x = static_cast<uint32_t>(rng_.Below(config_.cells * kCellWidth));
    int32_t v = static_cast<int32_t>(rng_.Range(0, 2 * kMaxSpeed)) - kMaxSpeed;
    uint32_t cell = x / kCellWidth;

    uint32_t slot;
    if (config_.placement == Placement::kLocalityAware) {
      slot = cell * cell_region_slots() + next_in_cell[cell]++;
    } else {
      slot = p;
    }
    uint32_t record[kParticleWords] = {x, static_cast<uint32_t>(v), cell, 0, 0, 0, 0, 0};
    WriteGuest(api, space_index_, ParticleAddr(slot), record, sizeof(record));
    slot_cell_[slot] = cell;
    cell_slots_[cell].push_back(slot);
  }
  if (config_.placement == Placement::kLocalityAware) {
    for (uint32_t cell = 0; cell < config_.cells; ++cell) {
      for (uint32_t i = next_in_cell[cell]; i < cell_region_slots(); ++i) {
        cell_free_[cell].push_back(cell * cell_region_slots() + i);
      }
    }
  }

  // One worker per requested processor, splitting the grid evenly.
  uint32_t per_worker = config_.cells / config_.workers;
  for (uint32_t w = 0; w < config_.workers; ++w) {
    uint32_t first = w * per_worker;
    uint32_t last = (w + 1 == config_.workers) ? config_.cells : first + per_worker;
    auto program = std::make_unique<WorkerProgram>(*this, first, last);
    uint32_t index = CreateNativeThread(api, space_index_, program.get(), /*priority=*/10,
                                        /*locked=*/false,
                                        static_cast<uint8_t>(w % ck_.machine().cpu_count()));
    workers_.push_back(std::move(program));
    worker_threads_.push_back(index);
  }
}

uint32_t Mp3dKernel::CopyToCellRegion(ck::NativeCtx& ctx, uint32_t slot, uint32_t new_cell) {
  if (cell_free_[new_cell].empty()) {
    // Region overflow: a full rebalance re-sorts everything. Rare with
    // reasonable slack; counted so benches can see it.
    stats_.rebalances++;
    Rebalance(ctx.api());
    if (cell_free_[new_cell].empty()) {
      return slot;  // cell genuinely over capacity; leave the record in place
    }
  }
  uint32_t dest = cell_free_[new_cell].back();
  cell_free_[new_cell].pop_back();

  // Copy the record through translated accesses -- this is the "copying
  // particles as they moved" cost the paper paid for locality.
  VirtAddr from = ParticleAddr(slot);
  VirtAddr to = ParticleAddr(dest);
  for (uint32_t w = 0; w < kParticleWords; ++w) {
    ckbase::Result<uint32_t> value = ctx.LoadWord(from + w * 4);
    if (value.ok()) {
      ctx.StoreWord(to + w * 4, value.value());
    }
  }
  stats_.locality_copies++;

  // Free the old slot back to ITS cell's region.
  uint32_t old_region_cell = slot / cell_region_slots();
  cell_free_[old_region_cell].push_back(slot);
  slot_cell_[slot] = kFreeSlot;
  slot_cell_[dest] = new_cell;
  slot_stamp_[dest] = slot_stamp_[slot];
  return dest;
}

uint64_t Mp3dKernel::SweepCells(ck::NativeCtx& ctx, uint32_t first_cell, uint32_t last_cell) {
  uint64_t updates = 0;
  for (uint32_t cell = first_cell; cell < last_cell; ++cell) {
    // Cell list is copied because particle motion edits it in place.
    std::vector<uint32_t> slots = cell_slots_[cell];
    for (uint32_t slot : slots) {
      // A particle that migrated into a later cell this step is not
      // re-updated (one move per particle per step).
      if (slot_cell_[slot] == kFreeSlot || slot_stamp_[slot] == steps_completed_) {
        continue;
      }
      slot_stamp_[slot] = steps_completed_;
      VirtAddr addr = ParticleAddr(slot);
      ckbase::Result<uint32_t> x = ctx.LoadWord(addr);
      ckbase::Result<uint32_t> v = ctx.LoadWord(addr + 4);
      if (!x.ok() || !v.ok()) {
        continue;
      }
      // Move, bounce at the tunnel ends, count a "collision" per update.
      int64_t nx = static_cast<int64_t>(x.value()) + static_cast<int32_t>(v.value());
      uint32_t limit = config_.cells * kCellWidth;
      uint32_t vel = v.value();
      if (nx < 0 || nx >= limit) {
        vel = static_cast<uint32_t>(-static_cast<int32_t>(v.value()));
        nx = nx < 0 ? -nx : 2 * static_cast<int64_t>(limit) - nx - 1;
      }
      uint32_t new_x = static_cast<uint32_t>(nx);
      uint32_t new_cell = new_x / kCellWidth;
      ctx.StoreWord(addr, new_x);
      ctx.StoreWord(addr + 4, vel);
      ctx.StoreWord(addr + 8, new_cell);
      ctx.Charge(12);  // collision physics arithmetic
      ++updates;

      if (new_cell != cell) {
        ++stats_.moves;
        uint32_t final_slot = slot;
        if (config_.placement == Placement::kLocalityAware) {
          final_slot = CopyToCellRegion(ctx, slot, new_cell);
          if (final_slot != slot) {
            slot_stamp_[final_slot] = steps_completed_;
          }
        } else {
          slot_cell_[slot] = new_cell;
        }
        auto& from = cell_slots_[cell];
        from.erase(std::find(from.begin(), from.end(), slot));
        cell_slots_[new_cell].push_back(final_slot);
      }
    }
  }
  return updates;
}

void Mp3dKernel::Rebalance(CkApi& api) {
  // Read every live record, re-sort into fresh per-cell regions, write back.
  std::vector<std::pair<uint32_t, std::array<uint32_t, kParticleWords>>> live;
  live.reserve(config_.particles);
  for (uint32_t slot = 0; slot < slot_capacity(); ++slot) {
    if (slot_cell_[slot] == kFreeSlot) {
      continue;
    }
    std::array<uint32_t, kParticleWords> record;
    ReadGuest(api, space_index_, ParticleAddr(slot), record.data(), kParticleBytes);
    live.emplace_back(slot_cell_[slot], record);
  }
  std::stable_sort(live.begin(), live.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });

  slot_cell_.assign(slot_capacity(), kFreeSlot);
  cell_slots_.assign(config_.cells, {});
  cell_free_.assign(config_.cells, {});
  std::vector<uint32_t> next_in_cell(config_.cells, 0);
  for (auto& [cell, record] : live) {
    uint32_t within = next_in_cell[cell]++;
    uint32_t slot = cell * cell_region_slots() + std::min(within, cell_region_slots() - 1);
    WriteGuest(api, space_index_, ParticleAddr(slot), record.data(), kParticleBytes);
    slot_cell_[slot] = cell;
    cell_slots_[cell].push_back(slot);
  }
  for (uint32_t cell = 0; cell < config_.cells; ++cell) {
    for (uint32_t i = next_in_cell[cell]; i < cell_region_slots(); ++i) {
      cell_free_[cell].push_back(cell * cell_region_slots() + i);
    }
  }
}

cksim::Cycles Mp3dKernel::RunSteps(uint32_t steps) {
  step_target_ = steps_completed_ + steps;
  CkApi api(ck_, self(), ck_.machine().cpu(0));
  for (uint32_t index : worker_threads_) {
    ckapp::ThreadRec& rec = thread(index);
    EnsureThreadLoaded(api, index);
    api.ResumeThread(rec.ck_id);  // kBusy if already runnable; harmless
  }
  cksim::Cycles start = ck_.machine().Now();
  // Generous safety bound: each step is finite work.
  uint64_t turn_limit = static_cast<uint64_t>(steps + 1) *
                        (static_cast<uint64_t>(config_.particles) * 64 + 100000);
  uint64_t turns = 0;
  while (steps_completed_ < step_target_ && turns < turn_limit) {
    ck_.machine().Step();
    ++turns;
  }
  return ck_.machine().Now() - start;
}

}  // namespace ckmp3d

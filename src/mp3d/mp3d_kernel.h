// Mini-MP3D: a particle-in-cell wind-tunnel simulation as an application
// kernel (sections 3 and 5.2).
//
// The paper used MP3D to show why sophisticated applications want their own
// kernel: application-specific physical memory management and page locality.
// "We measured up to a 25 percent degradation in performance in the MP3D
// program ... from processors accessing particles scattered across too many
// pages. The solution ... was to enforce page locality as well as cache line
// locality by copying particles in some cases as they moved between
// processors during the computation."
//
// This reproduction keeps the particle-in-cell skeleton: particles move
// through a 1-D cell ring; each step, worker threads sweep the grid
// cell-by-cell and update every particle in the cell through *translated*
// memory accesses (NativeCtx::LoadWord/StoreWord), so TLB and Cache Kernel
// mapping behavior is real. Two placement policies:
//   * kScattered -- particles stay at their allocation slots forever; cell
//     membership disperses across the whole particle region, so a cell sweep
//     touches many pages (the paper's slow case);
//   * kLocalityAware -- storage is partitioned into per-cell regions (with
//     slack); when a particle migrates, the kernel copies its record into
//     the destination cell's region, exactly the paper's fix. A full
//     rebalance runs only if a region overflows.

#ifndef SRC_MP3D_MP3D_KERNEL_H_
#define SRC_MP3D_MP3D_KERNEL_H_

#include <memory>
#include <vector>

#include "src/appkernel/app_kernel_base.h"
#include "src/base/rng.h"

namespace ckmp3d {

enum class Placement : uint8_t { kScattered, kLocalityAware };

struct Mp3dConfig {
  uint32_t particles = 4096;
  uint32_t cells = 64;   // 1-D ring of cells (flow direction)
  uint32_t workers = 2;  // worker threads (one per processor ideally)
  Placement placement = Placement::kScattered;
  uint32_t slack_factor = 2;  // per-cell region capacity multiplier
  uint32_t seed = 42;
  cksim::VirtAddr region_base = 0x40000000;
};

// Particle record layout in guest memory: 8 words (32 bytes).
//   [0] x position (fixed point)   [1] velocity
//   [2] cell index                 [3] collision counter
//   [4..7] padding / scratch
inline constexpr uint32_t kParticleWords = 8;
inline constexpr uint32_t kParticleBytes = kParticleWords * 4;

struct Mp3dStats {
  uint64_t particle_updates = 0;
  uint64_t moves = 0;           // cell migrations
  uint64_t locality_copies = 0; // records copied to preserve locality
  uint64_t rebalances = 0;      // full re-sorts after region overflow
};

class Mp3dKernel : public ckapp::AppKernelBase {
 public:
  Mp3dKernel(ck::CacheKernel& ck, const Mp3dConfig& config);
  ~Mp3dKernel() override;

  // Create the simulation space, initialize particles, start workers.
  void Setup(ck::CkApi& api);

  // Run `steps` simulation steps to completion; returns simulated cycles
  // consumed (wall time of the machine).
  cksim::Cycles RunSteps(uint32_t steps);

  uint32_t steps_completed() const { return steps_completed_; }
  uint64_t particle_updates() const { return stats_.particle_updates; }
  uint64_t moves() const { return stats_.moves; }
  const Mp3dStats& sim_stats() const { return stats_; }

 private:
  class WorkerProgram;
  friend class WorkerProgram;

  uint32_t slot_capacity() const {
    return config_.placement == Placement::kLocalityAware
               ? config_.particles * config_.slack_factor
               : config_.particles;
  }
  uint32_t cell_region_slots() const { return slot_capacity() / config_.cells; }

  cksim::VirtAddr ParticleAddr(uint32_t slot) const {
    return config_.region_base + slot * kParticleBytes;
  }

  // One worker processes cells [first, last) for the current step.
  uint64_t SweepCells(ck::NativeCtx& ctx, uint32_t first_cell, uint32_t last_cell);

  // Locality maintenance: copy a migrating particle's record into the
  // destination cell's storage region (charged through translated accesses).
  // Returns the new slot, or the old one if the destination is full.
  uint32_t CopyToCellRegion(ck::NativeCtx& ctx, uint32_t slot, uint32_t new_cell);

  // Full re-sort into cell order (runs at setup and on region overflow).
  void Rebalance(ck::CkApi& api);

  ck::CacheKernel& ck_;
  Mp3dConfig config_;
  ckbase::Rng rng_;
  uint32_t space_index_ = 0;

  // App-kernel metadata (not guest data).
  std::vector<std::vector<uint32_t>> cell_slots_;   // [cell] -> occupied slots
  std::vector<uint32_t> slot_cell_;                 // [slot] -> cell (~0u = free)
  std::vector<std::vector<uint32_t>> cell_free_;    // [cell] -> free slots (locality)
  std::vector<uint32_t> slot_stamp_;                // last step a slot was updated

  std::vector<std::unique_ptr<WorkerProgram>> workers_;
  std::vector<uint32_t> worker_threads_;

  uint32_t steps_completed_ = 0;
  uint32_t step_target_ = 0;
  uint32_t workers_done_this_step_ = 0;
  Mp3dStats stats_;
};

}  // namespace ckmp3d

#endif  // SRC_MP3D_MP3D_KERNEL_H_

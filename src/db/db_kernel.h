// Database server application kernel (section 3).
//
// "A database server can be implemented directly on top of the Cache Kernel
// to allow careful management of physical memory for caching, optimizing
// page replacement to minimize the query processing costs." The standard
// policies of UNIX-like systems "perform poorly for applications with random
// or sequential access" [Kearns & DeFazio] -- this kernel demonstrates the
// fix: the buffer-pool replacement policy is the application kernel's own
// code (a ChooseVictim override), selectable per workload:
//   * kLru  -- default OS-like policy; pathological for repeated sequential
//              scans larger than the pool (every page evicted right before
//              its next use);
//   * kMru  -- the classic scan-resistant choice; keeps a stable prefix of
//              the table resident across scans;
//   * kFifo -- the base library default, for reference.

#ifndef SRC_DB_DB_KERNEL_H_
#define SRC_DB_DB_KERNEL_H_

#include <deque>
#include <memory>
#include <vector>

#include "src/appkernel/app_kernel_base.h"
#include "src/base/rng.h"

namespace ckdb {

enum class Replacement : uint8_t { kLru, kMru, kFifo };

struct DbConfig {
  uint32_t table_pages = 96;    // table size (rows packed 64 per page)
  uint32_t buffer_pages = 32;   // frames the SRM grants (pool smaller than table)
  Replacement policy = Replacement::kLru;
  uint32_t seed = 7;
  cksim::VirtAddr table_base = 0x50000000;
};

struct DbQueryStats {
  uint64_t rows_read = 0;
  uint64_t queries = 0;
  uint64_t buffer_hits = 0;    // page already resident
  uint64_t buffer_misses = 0;  // page-in required
};

class DbKernel : public ckapp::AppKernelBase {
 public:
  DbKernel(ck::CacheKernel& ck, const DbConfig& config);
  ~DbKernel() override;

  // Create the space, populate the table in backing store, start the query
  // engine thread.
  void Setup(ck::CkApi& api);

  // Synchronous query execution (driven by the bench/test harness; runs the
  // machine until the query engine finishes the batch).
  // A full table scan summing one column of every row.
  uint64_t RunScan();
  // `count` point lookups at uniformly random rows.
  uint64_t RunPointLookups(uint32_t count);

  const DbQueryStats& query_stats() const { return stats_; }
  uint32_t table_pages() const { return config_.table_pages; }

 protected:
  // The application-controlled replacement policy.
  cksim::VirtAddr ChooseVictim(ckapp::VSpace& sp) override;

  // ---- checkpoint hooks (docs/CHECKPOINT.md) ----
  // Query state, the access-recency list (the replacement policy's input)
  // and the engine's mid-job progress ride in the kAppExtra record. The rng
  // stream position is not captured: restored point lookups draw from a
  // fresh seed-determined stream.
  void CaptureExtra(ckckpt::Writer& w, ck::CkApi& api) override;
  void RestoreExtra(ckckpt::Reader& r, ck::CkApi& api) override;

 private:
  class EngineProgram;
  friend class EngineProgram;

  struct Job {
    enum class Kind : uint8_t { kScan, kPoint } kind = Kind::kScan;
    uint32_t count = 0;  // lookups for kPoint
  };

  cksim::VirtAddr PageAddr(uint32_t table_page) const {
    return config_.table_base + table_page * cksim::kPageSize;
  }
  uint64_t RunJob(const Job& job);
  void FinishJob(uint64_t result);
  // Track an access for the LRU/MRU orderings.
  void Touch(cksim::VirtAddr page_vaddr);

  ck::CacheKernel& ck_;
  DbConfig config_;
  ckbase::Rng rng_;
  uint32_t space_index_ = 0;
  uint32_t engine_thread_ = 0;
  std::unique_ptr<EngineProgram> engine_;

  std::deque<Job> jobs_;
  uint64_t job_result_ = 0;
  bool job_done_ = false;

  // Access-recency list (front = least recently used).
  std::deque<cksim::VirtAddr> recency_;
  DbQueryStats stats_;
};

}  // namespace ckdb

#endif  // SRC_DB_DB_KERNEL_H_

#include "src/db/db_kernel.h"

#include <algorithm>

#include "src/ckpt/serializer.h"

namespace ckdb {

using ck::CkApi;
using cksim::VirtAddr;

namespace {
constexpr uint32_t kRowsPerPage = 64;
constexpr uint32_t kRowBytes = cksim::kPageSize / kRowsPerPage;  // 64 bytes
}  // namespace

// Query engine: a native thread that drains the job queue. One page of rows
// per Step keeps chunks bounded.
class DbKernel::EngineProgram : public ck::NativeProgram {
 public:
  explicit EngineProgram(DbKernel& kernel) : kernel_(kernel) {}

  ck::NativeOutcome Step(ck::NativeCtx& ctx) override {
    ck::NativeOutcome outcome;
    DbKernel& db = kernel_;
    if (db.jobs_.empty()) {
      outcome.action = ck::NativeOutcome::Action::kBlock;
      return outcome;
    }
    Job& job = db.jobs_.front();

    if (job.kind == Job::Kind::kScan) {
      if (cursor_ >= db.config_.table_pages) {
        cursor_ = 0;
      }
      // Scan one page: read the first column of every row.
      VirtAddr page = db.PageAddr(cursor_);
      db.Touch(page);
      for (uint32_t row = 0; row < kRowsPerPage; ++row) {
        ckbase::Result<uint32_t> value = ctx.LoadWord(page + row * kRowBytes);
        if (value.ok()) {
          sum_ += value.value();
          db.stats_.rows_read++;
        }
        ctx.Charge(3);  // predicate evaluation
      }
      ++cursor_;
      if (cursor_ == db.config_.table_pages) {
        db.FinishJob(sum_);
        sum_ = 0;
        cursor_ = 0;
      }
    } else {
      // Point lookups: a handful per step.
      for (uint32_t i = 0; i < 8 && job.count > 0; ++i, --job.count) {
        uint32_t row = static_cast<uint32_t>(
            db.rng_.Below(static_cast<uint64_t>(db.config_.table_pages) * kRowsPerPage));
        VirtAddr addr = db.PageAddr(row / kRowsPerPage) + (row % kRowsPerPage) * kRowBytes;
        db.Touch(addr & ~static_cast<VirtAddr>(cksim::kPageOffsetMask));
        ckbase::Result<uint32_t> value = ctx.LoadWord(addr);
        if (value.ok()) {
          sum_ += value.value();
          db.stats_.rows_read++;
        }
        ctx.Charge(20);  // index probe
      }
      if (job.count == 0) {
        db.FinishJob(sum_);
        sum_ = 0;
      }
    }
    outcome.action = ck::NativeOutcome::Action::kYield;
    return outcome;
  }

  // Mid-job progress, externalized for checkpointing.
  uint32_t cursor() const { return cursor_; }
  uint64_t sum() const { return sum_; }
  void RestoreProgress(uint32_t cursor, uint64_t sum) {
    cursor_ = cursor;
    sum_ = sum;
  }

 private:
  DbKernel& kernel_;
  uint32_t cursor_ = 0;
  uint64_t sum_ = 0;
};

DbKernel::DbKernel(ck::CacheKernel& ck, const DbConfig& config)
    : ckapp::AppKernelBase("database", config.table_pages + 64),
      ck_(ck),
      config_(config),
      rng_(config.seed) {}

DbKernel::~DbKernel() = default;

void DbKernel::Setup(CkApi& api) {
  space_index_ = CreateSpace(api, /*locked=*/true);

  // Populate the table in the backing store: row r's first column = r.
  for (uint32_t page = 0; page < config_.table_pages; ++page) {
    for (uint32_t row = 0; row < kRowsPerPage; ++row) {
      uint32_t value = page * kRowsPerPage + row;
      backing_.WriteBytes(page, row * kRowBytes, &value, 4);
    }
  }
  DefineBackedRegion(space_index_, config_.table_base, config_.table_pages,
                     /*first_backing_page=*/0, /*writable=*/false);
  image_next_ = config_.table_pages;  // table occupies the low backing pages

  engine_ = std::make_unique<EngineProgram>(*this);
  engine_thread_ = CreateNativeThread(api, space_index_, engine_.get(), /*priority=*/10);
}

void DbKernel::Touch(VirtAddr page_vaddr) {
  ckapp::VSpace& sp = space(space_index_);
  ckapp::PageRecord* page = sp.FindPage(page_vaddr);
  if (page != nullptr && page->where == ckapp::PageRecord::Where::kResident) {
    stats_.buffer_hits++;
  } else {
    stats_.buffer_misses++;
  }
  auto it = std::find(recency_.begin(), recency_.end(), page_vaddr);
  if (it != recency_.end()) {
    recency_.erase(it);
  }
  recency_.push_back(page_vaddr);  // back = most recently used
}

VirtAddr DbKernel::ChooseVictim(ckapp::VSpace& sp) {
  auto evictable = [&](VirtAddr vaddr) {
    ckapp::PageRecord* page = sp.FindPage(vaddr);
    return page != nullptr && page->where == ckapp::PageRecord::Where::kResident &&
           page->frame_owned && !page->locked && !page->message;
  };
  switch (config_.policy) {
    case Replacement::kLru:
      for (VirtAddr vaddr : recency_) {
        if (evictable(vaddr)) {
          return vaddr;
        }
      }
      break;
    case Replacement::kMru:
      for (auto it = recency_.rbegin(); it != recency_.rend(); ++it) {
        // Skip the page being touched right now (back of the list): evicting
        // the page we are about to read would livelock.
        if (it == recency_.rbegin()) {
          continue;
        }
        if (evictable(*it)) {
          return *it;
        }
      }
      break;
    case Replacement::kFifo:
      break;
  }
  return AppKernelBase::ChooseVictim(sp);  // FIFO fallback
}

void DbKernel::CaptureExtra(ckckpt::Writer& w, CkApi& api) {
  (void)api;
  w.U32(config_.table_pages);
  w.U32(config_.buffer_pages);
  w.U8(static_cast<uint8_t>(config_.policy));
  w.U32(config_.seed);
  w.U32(config_.table_base);
  w.U32(space_index_);
  w.U32(engine_thread_);
  w.U32(engine_ != nullptr ? engine_->cursor() : 0);
  w.U64(engine_ != nullptr ? engine_->sum() : 0);
  w.U32(static_cast<uint32_t>(jobs_.size()));
  for (const Job& job : jobs_) {
    w.U8(static_cast<uint8_t>(job.kind));
    w.U32(job.count);
  }
  w.U64(job_result_);
  w.Bool(job_done_);
  w.U32(static_cast<uint32_t>(recency_.size()));
  for (VirtAddr vaddr : recency_) {
    w.U32(vaddr);
  }
  w.U64(stats_.rows_read);
  w.U64(stats_.queries);
  w.U64(stats_.buffer_hits);
  w.U64(stats_.buffer_misses);
}

void DbKernel::RestoreExtra(ckckpt::Reader& r, CkApi& api) {
  (void)api;
  if (r.U32() != config_.table_pages || r.U32() != config_.buffer_pages ||
      r.U8() != static_cast<uint8_t>(config_.policy) || r.U32() != config_.seed ||
      r.U32() != config_.table_base) {
    r.Fail("db config mismatch between image and target instance");
    return;
  }
  if (engine_ != nullptr) {
    r.Fail("db target is not a fresh instance");
    return;
  }
  space_index_ = r.U32();
  engine_thread_ = r.U32();
  uint32_t cursor = r.U32();
  uint64_t sum = r.U64();
  jobs_.clear();
  uint32_t job_count = r.U32();
  for (uint32_t i = 0; i < job_count && r.ok(); ++i) {
    Job job;
    job.kind = static_cast<Job::Kind>(r.U8());
    job.count = r.U32();
    jobs_.push_back(job);
  }
  job_result_ = r.U64();
  job_done_ = r.Bool();
  recency_.clear();
  uint32_t recency_count = r.U32();
  for (uint32_t i = 0; i < recency_count && r.ok(); ++i) {
    recency_.push_back(r.U32());
  }
  stats_.rows_read = r.U64();
  stats_.queries = r.U64();
  stats_.buffer_hits = r.U64();
  stats_.buffer_misses = r.U64();
  if (!r.ok()) {
    return;
  }
  if (engine_thread_ >= thread_count() || space_index_ >= space_count()) {
    r.Fail("db engine thread or space not in the image");
    return;
  }
  engine_ = std::make_unique<EngineProgram>(*this);
  engine_->RestoreProgress(cursor, sum);
  RebindNativeProgram(engine_thread_, engine_.get());
}

void DbKernel::FinishJob(uint64_t result) {
  jobs_.pop_front();
  job_result_ = result;
  job_done_ = true;
  stats_.queries++;
}

uint64_t DbKernel::RunJob(const Job& job) {
  jobs_.push_back(job);
  job_done_ = false;
  CkApi api(ck_, self(), ck_.machine().cpu(0));
  ckapp::ThreadRec& rec = thread(engine_thread_);
  EnsureThreadLoaded(api, engine_thread_);
  api.ResumeThread(rec.ck_id);
  uint64_t turns = 0;
  const uint64_t kTurnLimit = 50u * 1000 * 1000;
  while (!job_done_ && turns < kTurnLimit) {
    ck_.machine().Step();
    ++turns;
  }
  return job_result_;
}

uint64_t DbKernel::RunScan() { return RunJob(Job{Job::Kind::kScan, 0}); }

uint64_t DbKernel::RunPointLookups(uint32_t count) {
  return RunJob(Job{Job::Kind::kPoint, count});
}

}  // namespace ckdb

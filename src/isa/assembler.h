// Two-pass assembler for CKVM guest programs.
//
// The benchmark guests and the example applications are written in this
// assembly (see tests/ and examples/ for programs). Syntax, one statement per
// line:
//
//   ; comment          # comment
//   label:
//   .org 0x1000        ; set location counter (absolute virtual address)
//   .word 42           ; emit a literal word
//   .space 64          ; emit n zero bytes (word-aligned)
//   add  rd, rs1, rs2
//   addi rd, rs1, imm
//   lw   rd, imm(rs1)
//   sw   rs, imm(rs1)
//   beq  r1, r2, label
//   jal  rd, label
//   trap imm
//
// Pseudo-instructions: li rd, imm32 (2 words) / la rd, label (2 words) /
// mv rd, rs / j label / call label / ret / nop / halt.
// Register names: r0..r31 and aliases zero, ra, sp, gp, a0..a5, t0..t7,
// s0..s7, k0..k5.

#ifndef SRC_ISA_ASSEMBLER_H_
#define SRC_ISA_ASSEMBLER_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace ckisa {

struct Program {
  uint32_t base = 0;                       // virtual address of words[0]
  std::vector<uint32_t> words;             // assembled image
  std::map<std::string, uint32_t> labels;  // label -> virtual address

  uint32_t SizeBytes() const { return static_cast<uint32_t>(words.size()) * 4; }
  uint32_t LabelOr(const std::string& name, uint32_t fallback) const {
    auto it = labels.find(name);
    return it == labels.end() ? fallback : it->second;
  }
};

struct AssembleResult {
  bool ok = false;
  Program program;
  std::string error;  // first error with line number, when !ok
};

AssembleResult Assemble(std::string_view source, uint32_t base);

// Disassemble one instruction word (for debugging and the disassembler test).
std::string Disassemble(uint32_t word);

}  // namespace ckisa

#endif  // SRC_ISA_ASSEMBLER_H_

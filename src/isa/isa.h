// CKVM: the guest instruction set.
//
// User-level programs in this reproduction execute as real instruction
// streams through the simulated MMU, so traps, page faults and the
// memory-based-messaging fast path are driven by actual loads, stores and
// trap instructions -- not by host function calls. The ISA is a minimal
// 32-bit load/store machine (32 registers, fixed 32-bit encoding), small
// enough to interpret quickly but rich enough to write the benchmark guests
// (getpid loops, page touchers, message senders) and example programs.
//
// Encoding (fields from the high bits down):
//   R-type:  op[31:26] rd[25:21] rs1[20:16] rs2[15:11] zeros
//   I-type:  op[31:26] rd[25:21] rs1[20:16] imm16[15:0]   (imm sign-extended)
//   B-type:  op[31:26] r1[25:21] r2[20:16]  off16[15:0]   (word offset from
//                                                          the next pc)

#ifndef SRC_ISA_ISA_H_
#define SRC_ISA_ISA_H_

#include <cstdint>

namespace ckisa {

enum class Op : uint8_t {
  kNop = 0,
  kHalt = 1,
  // R-type arithmetic: rd = rs1 <op> rs2
  kAdd = 2,
  kSub = 3,
  kAnd = 4,
  kOr = 5,
  kXor = 6,
  kSll = 7,
  kSrl = 8,
  kSra = 9,
  kMul = 10,
  kSlt = 11,   // signed set-less-than
  kSltu = 12,  // unsigned
  // I-type arithmetic: rd = rs1 <op> imm
  kAddi = 13,
  kAndi = 14,
  kOri = 15,
  kXori = 16,
  kLui = 17,  // rd = imm << 16
  kSlti = 18,
  // Memory: I-type, address = rs1 + imm
  kLw = 19,  // rd = mem32[addr]
  kSw = 20,  // mem32[addr] = rd  (rd field holds the source register)
  kLb = 21,  // rd = zero-extended mem8[addr]
  kSb = 22,
  // Control: B-type compares r1, r2; branch target = pc + 4 + off*4
  kBeq = 23,
  kBne = 24,
  kBlt = 25,  // signed
  kBge = 26,
  // Jumps
  kJal = 27,   // I-type: rd = pc + 4; pc += 4 + imm*4
  kJalr = 28,  // I-type: rd = pc + 4; pc = rs1 + imm
  // Supervisor entry: I-type, imm = trap number. Traps to the Cache Kernel,
  // which forwards to the owning application kernel (section 2.3).
  kTrap = 29,
  kDiv = 30,  // rd = rs1 / rs2 (signed; x/0 = 0, matching no-fault hardware)
  kRem = 31,
};

inline constexpr uint32_t Encode(Op op, uint32_t a, uint32_t b, uint32_t c_or_imm16) {
  return (static_cast<uint32_t>(op) << 26) | ((a & 31u) << 21) | ((b & 31u) << 16) |
         (c_or_imm16 & 0xffffu);
}

inline constexpr uint32_t EncodeR(Op op, uint32_t rd, uint32_t rs1, uint32_t rs2) {
  return (static_cast<uint32_t>(op) << 26) | ((rd & 31u) << 21) | ((rs1 & 31u) << 16) |
         ((rs2 & 31u) << 11);
}

struct Decoded {
  Op op;
  uint8_t rd;   // or r1 for branches
  uint8_t rs1;  // or r2 for branches
  uint8_t rs2;
  int32_t imm;  // sign-extended 16-bit immediate
};

inline Decoded Decode(uint32_t word) {
  Decoded d;
  d.op = static_cast<Op>(word >> 26);
  d.rd = static_cast<uint8_t>((word >> 21) & 31u);
  d.rs1 = static_cast<uint8_t>((word >> 16) & 31u);
  d.rs2 = static_cast<uint8_t>((word >> 11) & 31u);
  d.imm = static_cast<int16_t>(word & 0xffffu);
  return d;
}

// Conventional register roles used by the assembler and the application
// kernels' syscall ABI:
//   r0  zero    hardwired zero
//   r1  ra      return address
//   r2  sp      stack pointer / syscall return value register
//   r3  gp      global pointer
//   r4..r9   a0..a5   arguments (a0 also = syscall number result space)
//   r10..r17 t0..t7   temporaries
//   r18..r25 s0..s7   saved
//   r26..r31 k0..k5   reserved for handler glue
inline constexpr uint8_t kRegZero = 0;
inline constexpr uint8_t kRegRa = 1;
inline constexpr uint8_t kRegSp = 2;
inline constexpr uint8_t kRegGp = 3;
inline constexpr uint8_t kRegA0 = 4;
inline constexpr uint8_t kRegT0 = 10;
inline constexpr uint8_t kRegS0 = 18;
inline constexpr uint8_t kRegK0 = 26;

}  // namespace ckisa

#endif  // SRC_ISA_ISA_H_

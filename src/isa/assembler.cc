#include "src/isa/assembler.h"

#include <array>
#include <cctype>
#include <cstdio>
#include <optional>

#include "src/isa/isa.h"

namespace ckisa {
namespace {

struct Token {
  std::string text;
};

// Strip comments, split a line into a label (optional) and operands.
std::string StripComment(std::string_view line) {
  size_t pos = line.find_first_of(";#");
  std::string s(pos == std::string_view::npos ? line : line.substr(0, pos));
  return s;
}

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::string cur;
  for (char c : line) {
    if (std::isspace(static_cast<unsigned char>(c)) || c == ',' || c == '(' || c == ')') {
      if (!cur.empty()) {
        tokens.push_back(cur);
        cur.clear();
      }
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) {
    tokens.push_back(cur);
  }
  return tokens;
}

std::optional<uint8_t> ParseRegister(const std::string& name) {
  static const std::map<std::string, uint8_t> kAliases = [] {
    std::map<std::string, uint8_t> m;
    m["zero"] = 0;
    m["ra"] = 1;
    m["sp"] = 2;
    m["gp"] = 3;
    for (int i = 0; i < 6; ++i) {
      m["a" + std::to_string(i)] = static_cast<uint8_t>(4 + i);
    }
    for (int i = 0; i < 8; ++i) {
      m["t" + std::to_string(i)] = static_cast<uint8_t>(10 + i);
    }
    for (int i = 0; i < 8; ++i) {
      m["s" + std::to_string(i)] = static_cast<uint8_t>(18 + i);
    }
    for (int i = 0; i < 6; ++i) {
      m["k" + std::to_string(i)] = static_cast<uint8_t>(26 + i);
    }
    return m;
  }();

  auto it = kAliases.find(name);
  if (it != kAliases.end()) {
    return it->second;
  }
  if (name.size() >= 2 && name[0] == 'r') {
    int n = 0;
    for (size_t i = 1; i < name.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(name[i]))) {
        return std::nullopt;
      }
      n = n * 10 + (name[i] - '0');
    }
    if (n < 32) {
      return std::optional<uint8_t>(static_cast<uint8_t>(n));
    }
  }
  return std::nullopt;
}

std::optional<int64_t> ParseNumber(const std::string& text) {
  if (text.empty()) {
    return std::nullopt;
  }
  size_t i = 0;
  bool negative = false;
  if (text[0] == '-') {
    negative = true;
    i = 1;
  }
  if (i >= text.size()) {
    return std::nullopt;
  }
  int base = 10;
  if (text.size() > i + 2 && text[i] == '0' && (text[i + 1] == 'x' || text[i + 1] == 'X')) {
    base = 16;
    i += 2;
  }
  int64_t value = 0;
  for (; i < text.size(); ++i) {
    char c = static_cast<char>(std::tolower(static_cast<unsigned char>(text[i])));
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (base == 16 && c >= 'a' && c <= 'f') {
      digit = 10 + (c - 'a');
    } else {
      return std::nullopt;
    }
    value = value * base + digit;
  }
  return negative ? -value : value;
}

struct LineStatement {
  std::vector<std::string> labels;
  std::vector<std::string> tokens;  // [0] = mnemonic
  int line_number = 0;
};

// Number of words a statement expands to (pass 1 needs exact sizes).
int WordCount(const std::vector<std::string>& tokens) {
  const std::string& m = tokens[0];
  if (m == ".org" || m == ".space" || m == ".word") {
    return 0;  // handled specially
  }
  if (m == "li" || m == "la") {
    return 2;
  }
  return 1;
}

struct OpInfo {
  Op op;
  enum Kind { kR3, kI2, kMem, kBranch, kJal, kJalr, kTrapImm, kBare, kLuiKind } kind;
};

const std::map<std::string, OpInfo>& OpTable() {
  static const std::map<std::string, OpInfo> table = {
      {"nop", {Op::kNop, OpInfo::kBare}},       {"halt", {Op::kHalt, OpInfo::kBare}},
      {"add", {Op::kAdd, OpInfo::kR3}},         {"sub", {Op::kSub, OpInfo::kR3}},
      {"and", {Op::kAnd, OpInfo::kR3}},         {"or", {Op::kOr, OpInfo::kR3}},
      {"xor", {Op::kXor, OpInfo::kR3}},         {"sll", {Op::kSll, OpInfo::kR3}},
      {"srl", {Op::kSrl, OpInfo::kR3}},         {"sra", {Op::kSra, OpInfo::kR3}},
      {"mul", {Op::kMul, OpInfo::kR3}},         {"div", {Op::kDiv, OpInfo::kR3}},
      {"rem", {Op::kRem, OpInfo::kR3}},         {"slt", {Op::kSlt, OpInfo::kR3}},
      {"sltu", {Op::kSltu, OpInfo::kR3}},       {"addi", {Op::kAddi, OpInfo::kI2}},
      {"andi", {Op::kAndi, OpInfo::kI2}},       {"ori", {Op::kOri, OpInfo::kI2}},
      {"xori", {Op::kXori, OpInfo::kI2}},       {"slti", {Op::kSlti, OpInfo::kI2}},
      {"lui", {Op::kLui, OpInfo::kLuiKind}},    {"lw", {Op::kLw, OpInfo::kMem}},
      {"sw", {Op::kSw, OpInfo::kMem}},          {"lb", {Op::kLb, OpInfo::kMem}},
      {"sb", {Op::kSb, OpInfo::kMem}},          {"beq", {Op::kBeq, OpInfo::kBranch}},
      {"bne", {Op::kBne, OpInfo::kBranch}},     {"blt", {Op::kBlt, OpInfo::kBranch}},
      {"bge", {Op::kBge, OpInfo::kBranch}},     {"jal", {Op::kJal, OpInfo::kJal}},
      {"jalr", {Op::kJalr, OpInfo::kJalr}},     {"trap", {Op::kTrap, OpInfo::kTrapImm}},
  };
  return table;
}

}  // namespace

AssembleResult Assemble(std::string_view source, uint32_t base) {
  AssembleResult result;
  Program& prog = result.program;
  prog.base = base;

  auto fail = [&](int line, const std::string& message) {
    result.ok = false;
    result.error = "line " + std::to_string(line) + ": " + message;
    return result;
  };

  // Split lines, collect statements.
  std::vector<LineStatement> statements;
  {
    int line_number = 0;
    size_t start = 0;
    while (start <= source.size()) {
      size_t end = source.find('\n', start);
      std::string_view raw =
          source.substr(start, end == std::string_view::npos ? std::string_view::npos : end - start);
      start = (end == std::string_view::npos) ? source.size() + 1 : end + 1;
      ++line_number;

      std::string line = StripComment(raw);
      LineStatement st;
      st.line_number = line_number;

      // Peel leading labels ("name:").
      for (;;) {
        size_t nonspace = line.find_first_not_of(" \t");
        if (nonspace == std::string::npos) {
          break;
        }
        size_t colon = line.find(':');
        size_t first_space = line.find_first_of(" \t", nonspace);
        if (colon != std::string::npos && (first_space == std::string::npos || colon < first_space)) {
          st.labels.push_back(line.substr(nonspace, colon - nonspace));
          line = line.substr(colon + 1);
        } else {
          break;
        }
      }

      st.tokens = Tokenize(line);
      if (!st.labels.empty() || !st.tokens.empty()) {
        statements.push_back(std::move(st));
      }
    }
  }

  // Pass 1: assign addresses to labels.
  {
    uint32_t loc = base;
    for (const LineStatement& st : statements) {
      for (const std::string& label : st.labels) {
        if (prog.labels.count(label) != 0) {
          return fail(st.line_number, "duplicate label '" + label + "'");
        }
        prog.labels[label] = loc;
      }
      if (st.tokens.empty()) {
        continue;
      }
      const std::string& m = st.tokens[0];
      if (m == ".org") {
        if (st.tokens.size() != 2) {
          return fail(st.line_number, ".org needs an address");
        }
        auto addr = ParseNumber(st.tokens[1]);
        if (!addr || *addr < base) {
          return fail(st.line_number, ".org address invalid or before base");
        }
        loc = static_cast<uint32_t>(*addr);
        // Re-bind labels on this line to the new location.
        for (const std::string& label : st.labels) {
          prog.labels[label] = loc;
        }
      } else if (m == ".word") {
        loc += 4;
      } else if (m == ".space") {
        auto n = ParseNumber(st.tokens.size() == 2 ? st.tokens[1] : "");
        if (!n || *n < 0) {
          return fail(st.line_number, ".space needs a byte count");
        }
        loc += static_cast<uint32_t>((*n + 3) & ~int64_t{3});
      } else {
        if (OpTable().count(m) == 0 && m != "li" && m != "la" && m != "mv" && m != "j" &&
            m != "call" && m != "ret") {
          return fail(st.line_number, "unknown mnemonic '" + m + "'");
        }
        loc += static_cast<uint32_t>(WordCount(st.tokens)) * 4;
      }
    }
  }

  // Pass 2: encode.
  auto resolve = [&](const std::string& text, int line, bool& ok) -> int64_t {
    auto num = ParseNumber(text);
    if (num) {
      ok = true;
      return *num;
    }
    auto it = prog.labels.find(text);
    if (it != prog.labels.end()) {
      ok = true;
      return it->second;
    }
    ok = false;
    (void)line;
    return 0;
  };

  auto emit_at = [&](uint32_t loc, uint32_t word) {
    uint32_t index = (loc - base) / 4;
    if (index >= prog.words.size()) {
      prog.words.resize(index + 1, 0);
    }
    prog.words[index] = word;
  };

  uint32_t loc = base;
  for (const LineStatement& st : statements) {
    if (st.tokens.empty()) {
      continue;
    }
    const std::string& m = st.tokens[0];
    const int line = st.line_number;
    const auto& toks = st.tokens;

    auto reg = [&](size_t i, bool& ok) -> uint8_t {
      if (i >= toks.size()) {
        ok = false;
        return 0;
      }
      auto r = ParseRegister(toks[i]);
      ok = r.has_value();
      return r.value_or(0);
    };

    if (m == ".org") {
      loc = static_cast<uint32_t>(*ParseNumber(toks[1]));
      continue;
    }
    if (m == ".word") {
      bool ok = false;
      int64_t v = resolve(toks.size() == 2 ? toks[1] : "", line, ok);
      if (!ok) {
        return fail(line, ".word operand invalid");
      }
      emit_at(loc, static_cast<uint32_t>(v));
      loc += 4;
      continue;
    }
    if (m == ".space") {
      int64_t n = *ParseNumber(toks[1]);
      uint32_t padded = static_cast<uint32_t>((n + 3) & ~int64_t{3});
      for (uint32_t i = 0; i < padded; i += 4) {
        emit_at(loc + i, 0);
      }
      loc += padded;
      continue;
    }

    // Pseudo-instructions.
    if (m == "li" || m == "la") {
      bool rok = false, vok = false;
      uint8_t rd = reg(1, rok);
      int64_t value = resolve(toks.size() >= 3 ? toks[2] : "", line, vok);
      if (!rok || !vok) {
        return fail(line, m + " needs register, value");
      }
      uint32_t v = static_cast<uint32_t>(value);
      emit_at(loc, Encode(Op::kLui, rd, 0, v >> 16));
      emit_at(loc + 4, Encode(Op::kOri, rd, rd, v & 0xffff));
      loc += 8;
      continue;
    }
    if (m == "mv") {
      bool aok = false, bok = false;
      uint8_t rd = reg(1, aok), rs = reg(2, bok);
      if (!aok || !bok) {
        return fail(line, "mv needs two registers");
      }
      emit_at(loc, Encode(Op::kAddi, rd, rs, 0));
      loc += 4;
      continue;
    }
    if (m == "j" || m == "call") {
      bool ok = false;
      int64_t target = resolve(toks.size() >= 2 ? toks[1] : "", line, ok);
      if (!ok) {
        return fail(line, m + " needs a target");
      }
      int64_t off = (target - (static_cast<int64_t>(loc) + 4)) / 4;
      if (off < -32768 || off > 32767) {
        return fail(line, "jump target out of range");
      }
      emit_at(loc, Encode(Op::kJal, m == "call" ? kRegRa : kRegZero, 0,
                          static_cast<uint32_t>(off) & 0xffff));
      loc += 4;
      continue;
    }
    if (m == "ret") {
      emit_at(loc, Encode(Op::kJalr, kRegZero, kRegRa, 0));
      loc += 4;
      continue;
    }

    auto it = OpTable().find(m);
    if (it == OpTable().end()) {
      return fail(line, "unknown mnemonic '" + m + "'");
    }
    const OpInfo& info = it->second;
    uint32_t word = 0;
    bool ok1 = true, ok2 = true, ok3 = true;

    switch (info.kind) {
      case OpInfo::kBare:
        word = Encode(info.op, 0, 0, 0);
        break;
      case OpInfo::kR3: {
        uint8_t rd = reg(1, ok1), rs1 = reg(2, ok2), rs2 = reg(3, ok3);
        if (!ok1 || !ok2 || !ok3) {
          return fail(line, m + " needs three registers");
        }
        word = EncodeR(info.op, rd, rs1, rs2);
        break;
      }
      case OpInfo::kI2: {
        uint8_t rd = reg(1, ok1), rs1 = reg(2, ok2);
        bool vok = false;
        int64_t imm = resolve(toks.size() >= 4 ? toks[3] : "", line, vok);
        if (!ok1 || !ok2 || !vok || imm < -32768 || imm > 65535) {
          return fail(line, m + " needs rd, rs, imm16");
        }
        word = Encode(info.op, rd, rs1, static_cast<uint32_t>(imm) & 0xffff);
        break;
      }
      case OpInfo::kLuiKind: {
        uint8_t rd = reg(1, ok1);
        bool vok = false;
        int64_t imm = resolve(toks.size() >= 3 ? toks[2] : "", line, vok);
        if (!ok1 || !vok) {
          return fail(line, "lui needs rd, imm16");
        }
        word = Encode(info.op, rd, 0, static_cast<uint32_t>(imm) & 0xffff);
        break;
      }
      case OpInfo::kMem: {
        // "lw rd, imm(rs1)" tokenizes to [lw, rd, imm, rs1].
        uint8_t rd = reg(1, ok1);
        bool vok = false;
        int64_t imm = resolve(toks.size() >= 3 ? toks[2] : "", line, vok);
        uint8_t rs1 = reg(3, ok2);
        if (!ok1 || !ok2 || !vok || imm < -32768 || imm > 32767) {
          return fail(line, m + " needs rd, imm(rs)");
        }
        word = Encode(info.op, rd, rs1, static_cast<uint32_t>(imm) & 0xffff);
        break;
      }
      case OpInfo::kBranch: {
        uint8_t r1 = reg(1, ok1), r2 = reg(2, ok2);
        bool vok = false;
        int64_t target = resolve(toks.size() >= 4 ? toks[3] : "", line, vok);
        if (!ok1 || !ok2 || !vok) {
          return fail(line, m + " needs r1, r2, target");
        }
        int64_t off = (target - (static_cast<int64_t>(loc) + 4)) / 4;
        if (off < -32768 || off > 32767) {
          return fail(line, "branch target out of range");
        }
        word = Encode(info.op, r1, r2, static_cast<uint32_t>(off) & 0xffff);
        break;
      }
      case OpInfo::kJal: {
        uint8_t rd = reg(1, ok1);
        bool vok = false;
        int64_t target = resolve(toks.size() >= 3 ? toks[2] : "", line, vok);
        if (!ok1 || !vok) {
          return fail(line, "jal needs rd, target");
        }
        int64_t off = (target - (static_cast<int64_t>(loc) + 4)) / 4;
        if (off < -32768 || off > 32767) {
          return fail(line, "jump target out of range");
        }
        word = Encode(info.op, rd, 0, static_cast<uint32_t>(off) & 0xffff);
        break;
      }
      case OpInfo::kJalr: {
        uint8_t rd = reg(1, ok1), rs1 = reg(2, ok2);
        bool vok = false;
        int64_t imm = toks.size() >= 4 ? resolve(toks[3], line, vok) : (vok = true, 0);
        if (!ok1 || !ok2 || !vok) {
          return fail(line, "jalr needs rd, rs[, imm]");
        }
        word = Encode(info.op, rd, rs1, static_cast<uint32_t>(imm) & 0xffff);
        break;
      }
      case OpInfo::kTrapImm: {
        bool vok = false;
        int64_t imm = resolve(toks.size() >= 2 ? toks[1] : "", line, vok);
        if (!vok) {
          return fail(line, "trap needs a number");
        }
        word = Encode(info.op, 0, 0, static_cast<uint32_t>(imm) & 0xffff);
        break;
      }
    }

    emit_at(loc, word);
    loc += 4;
  }

  result.ok = true;
  return result;
}

std::string Disassemble(uint32_t word) {
  Decoded d = Decode(word);
  char buf[96];
  auto r = [](uint8_t n) { return "r" + std::to_string(n); };

  switch (d.op) {
    case Op::kNop:
      return "nop";
    case Op::kHalt:
      return "halt";
    case Op::kAdd:
    case Op::kSub:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kSll:
    case Op::kSrl:
    case Op::kSra:
    case Op::kMul:
    case Op::kDiv:
    case Op::kRem:
    case Op::kSlt:
    case Op::kSltu: {
      static const std::map<Op, const char*> names = {
          {Op::kAdd, "add"}, {Op::kSub, "sub"}, {Op::kAnd, "and"}, {Op::kOr, "or"},
          {Op::kXor, "xor"}, {Op::kSll, "sll"}, {Op::kSrl, "srl"}, {Op::kSra, "sra"},
          {Op::kMul, "mul"}, {Op::kDiv, "div"}, {Op::kRem, "rem"}, {Op::kSlt, "slt"},
          {Op::kSltu, "sltu"}};
      std::snprintf(buf, sizeof(buf), "%s %s, %s, %s", names.at(d.op), r(d.rd).c_str(),
                    r(d.rs1).c_str(), r(d.rs2).c_str());
      return buf;
    }
    case Op::kAddi:
    case Op::kAndi:
    case Op::kOri:
    case Op::kXori:
    case Op::kSlti: {
      static const std::map<Op, const char*> names = {{Op::kAddi, "addi"},
                                                      {Op::kAndi, "andi"},
                                                      {Op::kOri, "ori"},
                                                      {Op::kXori, "xori"},
                                                      {Op::kSlti, "slti"}};
      std::snprintf(buf, sizeof(buf), "%s %s, %s, %d", names.at(d.op), r(d.rd).c_str(),
                    r(d.rs1).c_str(), d.imm);
      return buf;
    }
    case Op::kLui:
      std::snprintf(buf, sizeof(buf), "lui %s, %d", r(d.rd).c_str(), d.imm & 0xffff);
      return buf;
    case Op::kLw:
    case Op::kSw:
    case Op::kLb:
    case Op::kSb: {
      static const std::map<Op, const char*> names = {
          {Op::kLw, "lw"}, {Op::kSw, "sw"}, {Op::kLb, "lb"}, {Op::kSb, "sb"}};
      std::snprintf(buf, sizeof(buf), "%s %s, %d(%s)", names.at(d.op), r(d.rd).c_str(), d.imm,
                    r(d.rs1).c_str());
      return buf;
    }
    case Op::kBeq:
    case Op::kBne:
    case Op::kBlt:
    case Op::kBge: {
      static const std::map<Op, const char*> names = {
          {Op::kBeq, "beq"}, {Op::kBne, "bne"}, {Op::kBlt, "blt"}, {Op::kBge, "bge"}};
      std::snprintf(buf, sizeof(buf), "%s %s, %s, %+d", names.at(d.op), r(d.rd).c_str(),
                    r(d.rs1).c_str(), d.imm);
      return buf;
    }
    case Op::kJal:
      std::snprintf(buf, sizeof(buf), "jal %s, %+d", r(d.rd).c_str(), d.imm);
      return buf;
    case Op::kJalr:
      std::snprintf(buf, sizeof(buf), "jalr %s, %s, %d", r(d.rd).c_str(), r(d.rs1).c_str(), d.imm);
      return buf;
    case Op::kTrap:
      std::snprintf(buf, sizeof(buf), "trap %d", d.imm & 0xffff);
      return buf;
  }
  std::snprintf(buf, sizeof(buf), ".word 0x%08x", word);
  return buf;
}

}  // namespace ckisa

#include "src/isa/fastpath.h"

#include <cstring>

namespace ckisa {

void ExecCache::Refill(DecodedPage& page, uint32_t frame, uint64_t generation) {
  const uint8_t* base = mem_.raw() + cksim::FrameBase(frame);
  for (uint32_t i = 0; i < cksim::kPageSize / 4; ++i) {
    uint32_t word;
    std::memcpy(&word, base + i * 4, 4);
    page.insns[i] = Decode(word);
  }
  page.generation = generation;
}

}  // namespace ckisa

#include "src/isa/fastpath.h"

#include <cstring>

namespace ckisa {

void ExecCache::Refill(DecodedPage& page, uint32_t frame, uint64_t generation) {
  const uint8_t* base = mem_.raw() + cksim::FrameBase(frame);
  for (uint32_t i = 0; i < cksim::kPageSize / 4; ++i) {
    uint32_t word;
    std::memcpy(&word, base + i * 4, 4);
    page.insns[i] = Decode(word);
  }
  page.generation = generation;
}

namespace {

bool IsMemOp(Op op) { return op == Op::kLw || op == Op::kSw || op == Op::kLb || op == Op::kSb; }

bool IsBranchOp(Op op) {
  return op == Op::kBeq || op == Op::kBne || op == Op::kBlt || op == Op::kBge;
}

// Ops that write a destination register (the executor clears r0 after a step
// only when the step can dirty it; see the kWritesR0 flag).
bool WritesRd(Op op) {
  if (IsBranchOp(op) || op == Op::kSw || op == Op::kSb || op == Op::kTrap || op == Op::kHalt ||
      op == Op::kNop) {
    return false;
  }
  return static_cast<uint8_t>(op) <= static_cast<uint8_t>(Op::kRem);
}

}  // namespace

uint32_t BuildTrace(const FastPath& fp, uint16_t asid, uint32_t head_vpc, Trace& t) {
  t.head_vpc = head_vpc;
  t.asid = asid;
  t.step_count = 0;
  t.page_count = 0;
  t.acc_prefix[0] = 0;
  t.touch_prefix[0] = 0;
  for (uint32_t p = 0; p < Trace::kMaxPages; ++p) {
    t.last_fetch[0][p] = Trace::kNoFetch;
  }

  const uint32_t step_cost =
      static_cast<uint32_t>(fp.cost_tlb_hit + fp.cost_mem_word + fp.cost_instruction);
  const uint32_t data_cost = static_cast<uint32_t>(fp.cost_tlb_hit + fp.cost_mem_word);

  uint32_t pc = head_vpc;
  uint32_t count = 0;
  while (count < Trace::kMaxSteps) {
    if ((pc & 3u) != 0) {
      break;
    }
    uint32_t vpage = pc >> cksim::kPageShift;
    // Resolve the fetch page: reuse a recorded slot or validate a new one
    // against the live TLB. Probe has no simulated side effects, so an
    // abandoned build commits nothing.
    uint32_t slot = Trace::kMaxPages;
    for (uint32_t p = 0; p < t.page_count; ++p) {
      if (t.pages[p].vpage == vpage) {
        slot = p;
        break;
      }
    }
    if (slot == Trace::kMaxPages) {
      if (t.page_count == Trace::kMaxPages) {
        break;
      }
      int32_t idx = fp.tlb->Probe(asid, vpage);
      if (idx < 0) {
        break;
      }
      const cksim::TlbEntry& e = fp.tlb->EntryAt(static_cast<uint32_t>(idx));
      if (e.pframe >= fp.frame_count || fp.remote_frame_bits[e.pframe] != 0) {
        break;
      }
      slot = t.page_count++;
      t.pages[slot].vpage = vpage;
      t.pages[slot].pframe = e.pframe;
      t.pages[slot].generation = fp.mem->frame_generation(e.pframe);
    }

    const DecodedPage* page = fp.exec_cache->Get(t.pages[slot].pframe);
    Decoded d = page->insns[(pc & cksim::kPageOffsetMask) >> 2];

    TraceStep& s = t.steps[count];
    s.d = d;
    s.vpc = pc;
    s.page_slot = static_cast<uint8_t>(slot);
    s.flags = 0;

    uint32_t next = pc + 4;
    bool terminal = false;
    if (static_cast<uint8_t>(d.op) > static_cast<uint8_t>(Op::kRem)) {
      terminal = true;  // undecodable: executor raises BadInstruction
    } else if (d.op == Op::kTrap || d.op == Op::kHalt || d.op == Op::kJalr) {
      terminal = true;  // executor computes the jalr target / trap resume pc
    } else if (IsBranchOp(d.op)) {
      // Static prediction: backward taken (loop closing, unrolls the loop
      // into the trace), forward not-taken.
      if (d.imm < 0) {
        s.flags |= TraceStep::kPredictedTaken;
        next = pc + 4 + static_cast<uint32_t>(d.imm) * 4;
      }
    } else if (d.op == Op::kJal) {
      next = pc + 4 + static_cast<uint32_t>(d.imm) * 4;
    }
    if (WritesRd(d.op) && d.rd == 0) {
      s.flags |= TraceStep::kWritesR0;
    }
    s.next_vpc = next;

    uint32_t data = IsMemOp(d.op) ? 1u : 0u;
    t.acc_prefix[count + 1] = t.acc_prefix[count] + step_cost + data * data_cost;
    t.touch_prefix[count + 1] = t.touch_prefix[count] + 1 + data;
    for (uint32_t p = 0; p < Trace::kMaxPages; ++p) {
      t.last_fetch[count + 1][p] = t.last_fetch[count][p];
    }
    t.last_fetch[count + 1][slot] = static_cast<uint8_t>(count);

    ++count;
    if (terminal) {
      break;
    }
    pc = next;
  }

  t.step_count = static_cast<uint16_t>(count);
  return count;
}

}  // namespace ckisa

#include "src/isa/interpreter.h"

#include <algorithm>
#include <cstring>

#include "src/isa/fastpath.h"
#include "src/sim/cpu.h"
#include "src/sim/pagetable.h"

namespace ckisa {
namespace {

// Outcome of a superblock-trace execution attempt at the current pc.
enum class TraceOutcome : uint8_t {
  kNone,      // no usable trace; single-step this instruction
  kAdvanced,  // executed >= 1 step; ctx.pc and the instruction count advanced
  kTerminal,  // run-terminating event (trap/fault/halt); result is filled
};

cksim::Fault BadInstruction(uint32_t pc) {
  cksim::Fault f;
  f.type = cksim::FaultType::kBadInstruction;
  f.address = pc;
  f.access = cksim::Access::kExecute;
  return f;
}

cksim::Fault Misaligned(uint32_t addr, cksim::Access access) {
  cksim::Fault f;
  f.type = cksim::FaultType::kBadAlignment;
  f.address = addr;
  f.access = access;
  return f;
}

// Slow policy: every access goes through the virtual GuestBus and charges the
// CPU clock immediately. This is exactly the pre-fast-path interpreter and
// the reference behavior the differential tests compare against
// (--fastpath=off selects it).
struct SlowPolicy {
  GuestBus& bus;

  bool FetchDecoded(uint32_t pc, Decoded& d, GuestBus::MemResult& fail) {
    GuestBus::MemResult fetch = bus.Fetch(pc);
    if (!fetch.ok) {
      fail = fetch;
      return false;
    }
    d = Decode(fetch.value);
    return true;
  }
  GuestBus::MemResult Load32(uint32_t vaddr) { return bus.Load32(vaddr); }
  GuestBus::MemResult Load8(uint32_t vaddr) { return bus.Load8(vaddr); }
  GuestBus::MemResult Store32(uint32_t vaddr, uint32_t value) {
    return bus.Store32(vaddr, value);
  }
  GuestBus::MemResult Store8(uint32_t vaddr, uint8_t value) { return bus.Store8(vaddr, value); }
  void ChargeInstruction() { bus.ChargeInstruction(); }
  void OnMessageWrite(uint32_t vaddr) { bus.OnMessageWrite(vaddr); }
  void Flush() {}
  // The slow path charges cycles immediately, so run-loop exits have nothing
  // to flush and take no profiler samples either: keeping this a no-op keeps
  // the reference interpreter at exactly zero profiling overhead.
  void FlushAt(uint32_t /*pc*/) {}
  // Superblock traces are a fast-path-only acceleration.
  TraceOutcome TryTrace(VmContext& /*ctx*/, uint32_t /*budget*/, uint32_t& /*n*/,
                        RunResult& /*result*/) {
    return TraceOutcome::kNone;
  }
};

// Fast policy: accesses whose translation hits the micro-TLB (and whose
// target frame is local and needs no PTE side effects) are served straight
// from host memory, with their cycle charges accumulated in `acc` and flushed
// to Cpu::Advance in batches. Anything unusual falls back to the virtual bus.
//
// Cycle-exactness rules (see docs/PERFORMANCE.md):
//  * A fast hit performs exactly the simulated-state updates the slow path
//    would: Tlb::TouchFastHit mirrors the Lookup hit bookkeeping (LRU age,
//    hit counter), and the charges added to `acc` are the same tlb_hit /
//    mem_word / instruction costs the bus would have charged.
//  * `acc` is flushed before ANY virtual bus call, so every point that can
//    observe the CPU clock (signal delivery, trace stamping inside the MMU,
//    run termination) sees the fully charged clock.
//  * The precondition checks commit no state: only when an access is known
//    to stay on the fast path does it touch the TLB or the accumulator, so a
//    fallback replays through the bus exactly once.
struct FastPolicy {
  GuestBus& bus;
  FastPath& fp;
  cksim::Cycles acc = 0;

  void Flush() {
    if (acc != 0) {
      fp.cpu->Advance(acc);
      acc = 0;
    }
  }

  // Run-loop exit flush: also the profiler's sampling point. The clock is
  // fully charged after Flush(), so the sample timestamp compare is exact;
  // the whole addition is one branch on an already-cold edge.
  void FlushAt(uint32_t pc) {
    Flush();
    if (fp.sampler != nullptr) {
      fp.sampler->MaybeSample(fp.cpu->clock(), pc);
    }
  }

  // Translate `vaddr` for `kind` via the micro-TLB without falling back.
  // On success commits the TLB hit (LRU + counter), returns the physical
  // address and the live PTE flags. Fails -- with no simulated side effects --
  // whenever the slow path would do anything beyond "hit, charge, access":
  // TLB miss, fault, remote frame, first write / COW / read-only write.
  bool TryTranslate(cksim::Access kind, uint32_t vaddr, uint32_t* paddr, uint8_t* flags) {
    uint32_t vpage = vaddr >> cksim::kPageShift;
    const MicroTlbEntry& hint = fp.mtlb->At(kind, vpage);
    if (hint.vpage != vpage || hint.asid != fp.asid) {
      return false;
    }
    const cksim::TlbEntry& t = fp.tlb->EntryAt(hint.tlb_index);
    // Re-validate against the live TLB entry: flushes and LRU evictions make
    // this compare fail, which is how micro-TLB invalidation works.
    if (!t.valid || t.asid != fp.asid || t.vpage != vpage) {
      return false;
    }
    if (kind == cksim::Access::kWrite) {
      // The slow path write also checks COW, write protection and the
      // modified bit (with a PTE write-through on first store). Require the
      // exact flag state where it does none of that.
      constexpr uint8_t kWriteMask =
          cksim::kPteWritable | cksim::kPteModified | cksim::kPteCopyOnWrite;
      constexpr uint8_t kWriteReady = cksim::kPteWritable | cksim::kPteModified;
      if ((t.flags & kWriteMask) != kWriteReady) {
        return false;
      }
    }
    if (t.pframe >= fp.frame_count || fp.remote_frame_bits[t.pframe] != 0) {
      return false;  // consistency fault territory: let the bus handle it
    }
    // Committed: from here the access completes on the fast path.
    fp.tlb->TouchFastHit(hint.tlb_index);
    acc += fp.cost_tlb_hit;
    *paddr = cksim::FrameBase(t.pframe) | (vaddr & cksim::kPageOffsetMask);
    *flags = t.flags;
    return true;
  }

  bool FetchDecoded(uint32_t pc, Decoded& d, GuestBus::MemResult& fail) {
    uint32_t paddr;
    uint8_t flags;
    if ((pc & 3u) == 0 && TryTranslate(cksim::Access::kExecute, pc, &paddr, &flags)) {
      acc += fp.cost_mem_word;
      const DecodedPage* page = fp.exec_cache->Get(paddr >> cksim::kPageShift);
      d = page->insns[(paddr & cksim::kPageOffsetMask) >> 2];
      return true;
    }
    Flush();
    GuestBus::MemResult fetch = bus.Fetch(pc);
    if (!fetch.ok) {
      fail = fetch;
      return false;
    }
    d = Decode(fetch.value);
    return true;
  }

  GuestBus::MemResult Load32(uint32_t vaddr) {
    uint32_t paddr;
    uint8_t flags;
    // The interpreter already rejected misaligned word loads.
    if (TryTranslate(cksim::Access::kRead, vaddr, &paddr, &flags)) {
      acc += fp.cost_mem_word;
      GuestBus::MemResult m;
      m.ok = true;
      std::memcpy(&m.value, fp.mem->raw() + paddr, 4);
      return m;
    }
    Flush();
    return bus.Load32(vaddr);
  }

  GuestBus::MemResult Load8(uint32_t vaddr) {
    uint32_t paddr;
    uint8_t flags;
    if (TryTranslate(cksim::Access::kRead, vaddr, &paddr, &flags)) {
      acc += fp.cost_mem_word;
      GuestBus::MemResult m;
      m.ok = true;
      m.value = fp.mem->raw()[paddr];
      return m;
    }
    Flush();
    return bus.Load8(vaddr);
  }

  GuestBus::MemResult Store32(uint32_t vaddr, uint32_t value) {
    uint32_t paddr;
    uint8_t flags;
    if (TryTranslate(cksim::Access::kWrite, vaddr, &paddr, &flags)) {
      acc += fp.cost_mem_word;
      std::memcpy(fp.mem->raw() + paddr, &value, 4);
      fp.mem->BumpFrameGeneration(paddr);  // keep the decoded cache honest
      GuestBus::MemResult m;
      m.ok = true;
      m.message_write = (flags & cksim::kPteMessage) != 0;
      return m;
    }
    Flush();
    return bus.Store32(vaddr, value);
  }

  GuestBus::MemResult Store8(uint32_t vaddr, uint8_t value) {
    uint32_t paddr;
    uint8_t flags;
    if (TryTranslate(cksim::Access::kWrite, vaddr, &paddr, &flags)) {
      acc += fp.cost_mem_word;
      fp.mem->raw()[paddr] = value;
      fp.mem->BumpFrameGeneration(paddr);
      GuestBus::MemResult m;
      m.ok = true;
      m.message_write = (flags & cksim::kPteMessage) != 0;
      return m;
    }
    Flush();
    return bus.Store8(vaddr, value);
  }

  void ChargeInstruction() { acc += fp.cost_instruction; }

  void OnMessageWrite(uint32_t vaddr) {
    // Signal delivery stamps the CPU clock; it must see all batched charges.
    Flush();
    bus.OnMessageWrite(vaddr);
  }

  // ---- superblock trace execution ----
  //
  // Entry protocol: look up a trace at (asid, pc); validate every recorded
  // page against the live TLB (side-effect-free Probe) and its recorded
  // frame generation; rebuild on generation/frame mismatch (= the trace was
  // invalidated by a store or remap); run it. Counters are staged into
  // fp.trace_stats and folded into CkStats/tenant accounts at quantum commit.
  TraceOutcome TryTrace(VmContext& ctx, uint32_t budget, uint32_t& n, RunResult& result) {
    if (fp.tcache == nullptr || (ctx.pc & 3u) != 0) {
      return TraceOutcome::kNone;
    }
    uint16_t fetch_idx[Trace::kMaxPages];
    Trace* t = fp.tcache->Lookup(fp.asid, ctx.pc);
    if (t != nullptr) {
      bool stale = false;
      bool cold = false;
      for (uint32_t p = 0; p < t->page_count; ++p) {
        int32_t idx = fp.tlb->Probe(fp.asid, t->pages[p].vpage);
        if (idx < 0) {
          cold = true;  // page no longer TLB-resident: not entryable, not stale
          break;
        }
        const cksim::TlbEntry& e = fp.tlb->EntryAt(static_cast<uint32_t>(idx));
        if (e.pframe != t->pages[p].pframe ||
            fp.mem->frame_generation(e.pframe) != t->pages[p].generation) {
          stale = true;  // self-modifying code or remap: decoded steps invalid
          break;
        }
        if (fp.remote_frame_bits[e.pframe] != 0) {
          cold = true;  // consistency-fault territory: leave it to the bus
          break;
        }
        fetch_idx[p] = static_cast<uint16_t>(idx);
      }
      if (cold) {
        ++fp.trace_stats->misses;
        return TraceOutcome::kNone;
      }
      if (stale) {
        ++fp.trace_stats->invalidations;
        t = nullptr;
      } else {
        ++fp.trace_stats->hits;
      }
    } else {
      ++fp.trace_stats->misses;
    }
    if (t == nullptr) {
      Trace& slot = fp.tcache->SlotFor(fp.asid, ctx.pc);
      if (BuildTrace(fp, fp.asid, ctx.pc, slot) == 0) {
        return TraceOutcome::kNone;
      }
      ++fp.trace_stats->builds;
      t = &slot;
      for (uint32_t p = 0; p < t->page_count; ++p) {
        int32_t idx = fp.tlb->Probe(fp.asid, t->pages[p].vpage);
        if (idx < 0) {
          return TraceOutcome::kNone;  // cannot happen: built from live TLB
        }
        fetch_idx[p] = static_cast<uint16_t>(idx);
      }
    }
    return ExecuteTrace(ctx, *t, fetch_idx, budget, n, result);
  }

  TraceOutcome ExecuteTrace(VmContext& ctx, const Trace& t, const uint16_t* fetch_idx,
                            uint32_t budget, uint32_t& n, RunResult& result) {
    const uint32_t limit = std::min<uint32_t>(t.step_count, budget - n);
    const uint64_t tick_base = fp.tlb->tick();
    const uint32_t step_cost =
        static_cast<uint32_t>(fp.cost_tlb_hit + fp.cost_mem_word + fp.cost_instruction);
    uint32_t* r = ctx.regs;
    r[0] = 0;  // the single-step loop clears r0 before every op; see below

    // Per-execution data-translation cache. Within a pure-fast trace run no
    // TLB entry can be inserted, evicted or flushed (those all require a bus
    // call, which exits the trace), so a translation validated once stays
    // valid for the rest of this execution.
    constexpr uint32_t kDc = 8;
    uint32_t dc_vpage[kDc];
    uint32_t dc_pbase[kDc];
    uint16_t dc_idx[kDc];
    uint8_t dc_flags[kDc];
    uint8_t dc_own[kDc];
    for (uint32_t i = 0; i < kDc; ++i) {
      dc_vpage[i] = 0xffffffffu;
    }

    // Commit the batched TLB bookkeeping for an execution prefix:
    // `lf_bound` selects the last-fetch table row (how many fetches
    // happened), `touches` the total tick/hit increments, `acc_add` the
    // batched cycle charges.
    //
    // A touch-by-touch run leaves each entry's lru at the tick of its LAST
    // touch. Data touches write their lru immediately in dtranslate (per
    // entry they arrive in ascending ordinal order, so last-write-wins gives
    // exactly that); here the fetch pages fold in with a max against any
    // later data touch of the same entry. Every pre-existing lru is
    // <= tick_base, so the max never resurrects stale recency.
    auto commit = [&](uint32_t lf_bound, uint64_t touches, uint64_t acc_add) {
      for (uint32_t p = 0; p < t.page_count; ++p) {
        uint8_t j = t.last_fetch[lf_bound][p];
        if (j != Trace::kNoFetch) {
          uint64_t v = tick_base + t.touch_prefix[j] + 1;
          const cksim::TlbEntry& e = fp.tlb->EntryAt(fetch_idx[p]);
          fp.tlb->SetLruAt(fetch_idx[p], e.lru > v ? e.lru : v);
        }
      }
      fp.tlb->CommitFastHits(touches);
      acc += acc_add;
    };
    // Step `s` completed fully on the fast path (data access, if any,
    // included); everything through s is committed.
    auto commit_through = [&](uint32_t s) {
      commit(s + 1, t.touch_prefix[s + 1], t.acc_prefix[s + 1]);
    };
    // Step `s` fetched and charged its instruction cost but its data access
    // is about to leave the fast path (fallback or fault): commit the fetch
    // half only. Must run before any bus call so the bus-side TLB touch gets
    // the next ordinal.
    auto commit_partial = [&](uint32_t s) {
      commit(s + 1, t.touch_prefix[s] + 1, t.acc_prefix[s] + step_cost);
    };

    // Translate a data access, deferring the TLB touch into the log. Serving
    // rules are the single-access TryTranslate preconditions; a miss here
    // means the access must replay through the bus (after which the trace
    // exits, since the bus may move TLB state under our fetch indices).
    auto dtranslate = [&](cksim::Access kind, uint32_t addr, uint32_t si, uint32_t* paddr,
                          uint8_t* flags, bool* own) -> bool {
      constexpr uint8_t kWriteMask =
          cksim::kPteWritable | cksim::kPteModified | cksim::kPteCopyOnWrite;
      constexpr uint8_t kWriteReady = cksim::kPteWritable | cksim::kPteModified;
      uint32_t vpage = addr >> cksim::kPageShift;
      uint32_t h = vpage & (kDc - 1);
      if (dc_vpage[h] != vpage) {
        const MicroTlbEntry& hint = fp.mtlb->At(kind, vpage);
        if (hint.vpage != vpage || hint.asid != fp.asid) {
          return false;
        }
        const cksim::TlbEntry& e = fp.tlb->EntryAt(hint.tlb_index);
        if (!e.valid || e.asid != fp.asid || e.vpage != vpage) {
          return false;
        }
        if (e.pframe >= fp.frame_count || fp.remote_frame_bits[e.pframe] != 0) {
          return false;
        }
        bool own_page = false;
        for (uint32_t p = 0; p < t.page_count; ++p) {
          own_page = own_page || t.pages[p].pframe == e.pframe;
        }
        dc_vpage[h] = vpage;
        dc_pbase[h] = cksim::FrameBase(e.pframe);
        dc_idx[h] = hint.tlb_index;
        dc_flags[h] = e.flags;
        dc_own[h] = own_page ? 1 : 0;
      }
      if (kind == cksim::Access::kWrite && (dc_flags[h] & kWriteMask) != kWriteReady) {
        return false;  // first write / COW / read-only: PTE side effects due
      }
      *paddr = dc_pbase[h] | (addr & cksim::kPageOffsetMask);
      *flags = dc_flags[h];
      *own = dc_own[h] != 0;
      // Immediate lru write: per entry these arrive in ascending ordinal
      // order, so the final value is the last touch, as in a step-by-step
      // run. Fetch-page ordinals fold in at commit (see `commit` above).
      fp.tlb->SetLruAt(dc_idx[h], tick_base + t.touch_prefix[si] + 2);
      return true;
    };

    // Threaded dispatch (computed goto): every handler ends with its own
    // indirect jump to the next step's handler, so each op->op edge in the
    // trace gets its own branch-prediction site. A central switch would make
    // one indirect branch carry the whole opcode sequence, which mispredicts
    // far more -- dispatch cost is most of a trace step.
    static const void* const kOpTargets[64] = {
        &&h_nop,  &&h_halt, &&h_add,  &&h_sub,  &&h_and,  &&h_or,   &&h_xor,  &&h_sll,
        &&h_srl,  &&h_sra,  &&h_mul,  &&h_slt,  &&h_sltu, &&h_addi, &&h_andi, &&h_ori,
        &&h_xori, &&h_lui,  &&h_slti, &&h_lw,   &&h_sw,   &&h_lb,   &&h_sb,   &&h_beq,
        &&h_bne,  &&h_blt,  &&h_bge,  &&h_jal,  &&h_jalr, &&h_trap, &&h_div,  &&h_rem,
        &&h_bad,  &&h_bad,  &&h_bad,  &&h_bad,  &&h_bad,  &&h_bad,  &&h_bad,  &&h_bad,
        &&h_bad,  &&h_bad,  &&h_bad,  &&h_bad,  &&h_bad,  &&h_bad,  &&h_bad,  &&h_bad,
        &&h_bad,  &&h_bad,  &&h_bad,  &&h_bad,  &&h_bad,  &&h_bad,  &&h_bad,  &&h_bad,
        &&h_bad,  &&h_bad,  &&h_bad,  &&h_bad,  &&h_bad,  &&h_bad,  &&h_bad,  &&h_bad};

#define CK_DISPATCH() goto* kOpTargets[static_cast<uint8_t>(sp->d.op)]
#define CK_NEXT()                                  \
  do {                                             \
    if ((sp->flags & TraceStep::kWritesR0) != 0) { \
      r[0] = 0;                                    \
    }                                              \
    if (++si >= limit) {                           \
      goto trace_end;                              \
    }                                              \
    ++sp;                                          \
    CK_DISPATCH();                                 \
  } while (0)

    uint32_t si = 0;
    const TraceStep* sp = &t.steps[0];
    CK_DISPATCH();

  h_nop:
    CK_NEXT();
  h_halt:
    commit_through(si);
    ctx.pc = sp->vpc + 4;
    result.event = RunEvent::kHalt;
    result.instructions = n + si + 1;
    FlushAt(ctx.pc);
    return TraceOutcome::kTerminal;

  h_add: {
    const Decoded& d = sp->d;
    r[d.rd] = r[d.rs1] + r[d.rs2];
    CK_NEXT();
  }
  h_sub: {
    const Decoded& d = sp->d;
    r[d.rd] = r[d.rs1] - r[d.rs2];
    CK_NEXT();
  }
  h_and: {
    const Decoded& d = sp->d;
    r[d.rd] = r[d.rs1] & r[d.rs2];
    CK_NEXT();
  }
  h_or: {
    const Decoded& d = sp->d;
    r[d.rd] = r[d.rs1] | r[d.rs2];
    CK_NEXT();
  }
  h_xor: {
    const Decoded& d = sp->d;
    r[d.rd] = r[d.rs1] ^ r[d.rs2];
    CK_NEXT();
  }
  h_sll: {
    const Decoded& d = sp->d;
    r[d.rd] = r[d.rs1] << (r[d.rs2] & 31u);
    CK_NEXT();
  }
  h_srl: {
    const Decoded& d = sp->d;
    r[d.rd] = r[d.rs1] >> (r[d.rs2] & 31u);
    CK_NEXT();
  }
  h_sra: {
    const Decoded& d = sp->d;
    r[d.rd] = static_cast<uint32_t>(static_cast<int32_t>(r[d.rs1]) >> (r[d.rs2] & 31u));
    CK_NEXT();
  }
  h_mul: {
    const Decoded& d = sp->d;
    r[d.rd] = r[d.rs1] * r[d.rs2];
    CK_NEXT();
  }
  h_div: {
    const Decoded& d = sp->d;
    int32_t va = static_cast<int32_t>(r[d.rs1]);
    int32_t vb = static_cast<int32_t>(r[d.rs2]);
    r[d.rd] = (vb == 0) ? 0 : static_cast<uint32_t>(va / vb);
    CK_NEXT();
  }
  h_rem: {
    const Decoded& d = sp->d;
    int32_t va = static_cast<int32_t>(r[d.rs1]);
    int32_t vb = static_cast<int32_t>(r[d.rs2]);
    r[d.rd] = (vb == 0) ? 0 : static_cast<uint32_t>(va % vb);
    CK_NEXT();
  }
  h_slt: {
    const Decoded& d = sp->d;
    r[d.rd] = static_cast<int32_t>(r[d.rs1]) < static_cast<int32_t>(r[d.rs2]) ? 1 : 0;
    CK_NEXT();
  }
  h_sltu: {
    const Decoded& d = sp->d;
    r[d.rd] = r[d.rs1] < r[d.rs2] ? 1 : 0;
    CK_NEXT();
  }

  h_addi: {
    const Decoded& d = sp->d;
    r[d.rd] = r[d.rs1] + static_cast<uint32_t>(d.imm);
    CK_NEXT();
  }
  h_andi: {
    const Decoded& d = sp->d;
    r[d.rd] = r[d.rs1] & static_cast<uint32_t>(d.imm & 0xffff);
    CK_NEXT();
  }
  h_ori: {
    const Decoded& d = sp->d;
    r[d.rd] = r[d.rs1] | static_cast<uint32_t>(d.imm & 0xffff);
    CK_NEXT();
  }
  h_xori: {
    const Decoded& d = sp->d;
    r[d.rd] = r[d.rs1] ^ static_cast<uint32_t>(d.imm & 0xffff);
    CK_NEXT();
  }
  h_lui: {
    const Decoded& d = sp->d;
    r[d.rd] = static_cast<uint32_t>(d.imm & 0xffff) << 16;
    CK_NEXT();
  }
  h_slti: {
    const Decoded& d = sp->d;
    r[d.rd] = static_cast<int32_t>(r[d.rs1]) < d.imm ? 1 : 0;
    CK_NEXT();
  }

  h_lw: {
    const Decoded& d = sp->d;
    uint32_t addr = r[d.rs1] + static_cast<uint32_t>(d.imm);
    if ((addr & 3u) != 0) {
      commit_partial(si);
      ctx.pc = sp->vpc;
      result.event = RunEvent::kFault;
      result.fault = Misaligned(addr, cksim::Access::kRead);
      result.instructions = n + si + 1;
      FlushAt(ctx.pc);
      return TraceOutcome::kTerminal;
    }
    uint32_t paddr;
    uint8_t flags;
    bool own;
    if (dtranslate(cksim::Access::kRead, addr, si, &paddr, &flags, &own)) {
      std::memcpy(&r[d.rd], fp.mem->raw() + paddr, 4);
      CK_NEXT();
    }
    commit_partial(si);
    Flush();
    GuestBus::MemResult m = bus.Load32(addr);
    if (!m.ok) {
      ctx.pc = sp->vpc;
      result.event = RunEvent::kFault;
      result.fault = m.fault;
      result.instructions = n + si + 1;
      FlushAt(ctx.pc);
      return TraceOutcome::kTerminal;
    }
    r[d.rd] = m.value;
    if ((sp->flags & TraceStep::kWritesR0) != 0) {
      r[0] = 0;
    }
    n += si + 1;
    ctx.pc = sp->next_vpc;
    return TraceOutcome::kAdvanced;
  }
  h_lb: {
    const Decoded& d = sp->d;
    uint32_t addr = r[d.rs1] + static_cast<uint32_t>(d.imm);
    uint32_t paddr;
    uint8_t flags;
    bool own;
    if (dtranslate(cksim::Access::kRead, addr, si, &paddr, &flags, &own)) {
      r[d.rd] = fp.mem->raw()[paddr];
      CK_NEXT();
    }
    commit_partial(si);
    Flush();
    GuestBus::MemResult m = bus.Load8(addr);
    if (!m.ok) {
      ctx.pc = sp->vpc;
      result.event = RunEvent::kFault;
      result.fault = m.fault;
      result.instructions = n + si + 1;
      FlushAt(ctx.pc);
      return TraceOutcome::kTerminal;
    }
    r[d.rd] = m.value;
    if ((sp->flags & TraceStep::kWritesR0) != 0) {
      r[0] = 0;
    }
    n += si + 1;
    ctx.pc = sp->next_vpc;
    return TraceOutcome::kAdvanced;
  }
  h_sw: {
    const Decoded& d = sp->d;
    uint32_t addr = r[d.rs1] + static_cast<uint32_t>(d.imm);
    if ((addr & 3u) != 0) {
      commit_partial(si);
      ctx.pc = sp->vpc;
      result.event = RunEvent::kFault;
      result.fault = Misaligned(addr, cksim::Access::kWrite);
      result.instructions = n + si + 1;
      FlushAt(ctx.pc);
      return TraceOutcome::kTerminal;
    }
    uint32_t paddr;
    uint8_t flags;
    bool own;
    if (dtranslate(cksim::Access::kWrite, addr, si, &paddr, &flags, &own)) {
      std::memcpy(fp.mem->raw() + paddr, &r[d.rd], 4);
      fp.mem->BumpFrameGeneration(paddr);
      if ((flags & cksim::kPteMessage) != 0) {
        // Store completed fast; signal delivery goes through the bus
        // (which observes the clock), then the trace exits.
        commit_through(si);
        OnMessageWrite(addr);
        n += si + 1;
        ctx.pc = sp->next_vpc;
        return TraceOutcome::kAdvanced;
      }
      if (own) {
        // Wrote into one of this trace's own frames: the remaining
        // decoded steps may now be stale. Exit after the store.
        commit_through(si);
        n += si + 1;
        ctx.pc = sp->next_vpc;
        return TraceOutcome::kAdvanced;
      }
      CK_NEXT();
    }
    goto store_slow;
  }
  h_sb: {
    const Decoded& d = sp->d;
    uint32_t addr = r[d.rs1] + static_cast<uint32_t>(d.imm);
    uint32_t paddr;
    uint8_t flags;
    bool own;
    if (dtranslate(cksim::Access::kWrite, addr, si, &paddr, &flags, &own)) {
      fp.mem->raw()[paddr] = static_cast<uint8_t>(r[d.rd]);
      fp.mem->BumpFrameGeneration(paddr);
      if ((flags & cksim::kPteMessage) != 0) {
        commit_through(si);
        OnMessageWrite(addr);
        n += si + 1;
        ctx.pc = sp->next_vpc;
        return TraceOutcome::kAdvanced;
      }
      if (own) {
        commit_through(si);
        n += si + 1;
        ctx.pc = sp->next_vpc;
        return TraceOutcome::kAdvanced;
      }
      CK_NEXT();
    }
    goto store_slow;
  }
  store_slow: {
    const TraceStep& s = *sp;
    const Decoded& d = s.d;
    uint32_t addr = r[d.rs1] + static_cast<uint32_t>(d.imm);
    commit_partial(si);
    Flush();
    GuestBus::MemResult m = d.op == Op::kSw ? bus.Store32(addr, r[d.rd])
                                            : bus.Store8(addr, static_cast<uint8_t>(r[d.rd]));
    if (!m.ok) {
      ctx.pc = s.vpc;
      result.event = RunEvent::kFault;
      result.fault = m.fault;
      result.instructions = n + si + 1;
      FlushAt(ctx.pc);
      return TraceOutcome::kTerminal;
    }
    if (m.message_write) {
      OnMessageWrite(addr);
    }
    n += si + 1;
    ctx.pc = s.next_vpc;
    return TraceOutcome::kAdvanced;
  }

  h_beq: {
    const Decoded& d = sp->d;
    bool taken = r[d.rd] == r[d.rs1];
    if (taken != ((sp->flags & TraceStep::kPredictedTaken) != 0)) {
      goto branch_mispredict;
    }
    CK_NEXT();  // prediction held: the next step is the target
  }
  h_bne: {
    const Decoded& d = sp->d;
    bool taken = r[d.rd] != r[d.rs1];
    if (taken != ((sp->flags & TraceStep::kPredictedTaken) != 0)) {
      goto branch_mispredict;
    }
    CK_NEXT();
  }
  h_blt: {
    const Decoded& d = sp->d;
    bool taken = static_cast<int32_t>(r[d.rd]) < static_cast<int32_t>(r[d.rs1]);
    if (taken != ((sp->flags & TraceStep::kPredictedTaken) != 0)) {
      goto branch_mispredict;
    }
    CK_NEXT();
  }
  h_bge: {
    const Decoded& d = sp->d;
    bool taken = static_cast<int32_t>(r[d.rd]) >= static_cast<int32_t>(r[d.rs1]);
    if (taken != ((sp->flags & TraceStep::kPredictedTaken) != 0)) {
      goto branch_mispredict;
    }
    CK_NEXT();
  }
  branch_mispredict: {
    // The build-time prediction failed: exit to the actual successor. The
    // branch itself completed, so the full step commits.
    const TraceStep& s = *sp;
    bool predicted = (s.flags & TraceStep::kPredictedTaken) != 0;
    commit_through(si);
    n += si + 1;
    // taken != predicted here, so the actual direction is !predicted.
    ctx.pc = !predicted ? s.vpc + 4 + static_cast<uint32_t>(s.d.imm) * 4 : s.vpc + 4;
    return TraceOutcome::kAdvanced;
  }

  h_jal: {
    const Decoded& d = sp->d;
    r[d.rd] = sp->vpc + 4;
    CK_NEXT();  // next step is at the jump target
  }
  h_jalr: {
    const Decoded& d = sp->d;
    uint32_t target = r[d.rs1] + static_cast<uint32_t>(d.imm);
    r[d.rd] = sp->vpc + 4;
    if ((sp->flags & TraceStep::kWritesR0) != 0) {
      r[0] = 0;
    }
    commit_through(si);
    n += si + 1;
    ctx.pc = target;
    return TraceOutcome::kAdvanced;
  }

  h_trap:
    commit_through(si);
    ctx.pc = sp->vpc + 4;  // resume after the trap instruction
    result.event = RunEvent::kTrap;
    result.trap_number = static_cast<uint16_t>(sp->d.imm & 0xffff);
    result.instructions = n + si + 1;
    FlushAt(ctx.pc);
    return TraceOutcome::kTerminal;

  h_bad:
    commit_through(si);
    ctx.pc = sp->vpc;
    result.event = RunEvent::kFault;
    result.fault = BadInstruction(sp->vpc);
    result.instructions = n + si + 1;
    FlushAt(ctx.pc);
    return TraceOutcome::kTerminal;

  trace_end:
    // Ran to the end of the trace (or out of budget) fully on the fast path.
    commit(si, t.touch_prefix[si], t.acc_prefix[si]);
    n += si;
    ctx.pc = sp->next_vpc;
    return TraceOutcome::kAdvanced;
#undef CK_NEXT
#undef CK_DISPATCH
  }
};

// The interpreter core, shared by both policies. Instruction semantics and
// the fault/trap/halt protocol are policy-independent; the policy only decides
// how fetches, loads, stores and cycle charges are performed. Policy::Flush()
// runs before every return so batched charges always land on the CPU clock
// before the caller (the dispatch loop) reads it.
template <typename Policy>
RunResult RunLoop(VmContext& ctx, Policy& p, uint32_t budget) {
  RunResult result;

  uint32_t n = 0;
  // Superblock traces are dispatched only at basic-block heads (quantum
  // entry, or the target of a taken branch / jump / trace exit). Sequential
  // fall-through pcs never probe the trace cache: that keeps the single-step
  // path free of per-instruction lookup overhead and keeps trace-cache
  // contents (and so the staged hit/miss counters) deterministic.
  bool at_head = true;
  while (n < budget) {
    if (at_head) {
      TraceOutcome to = p.TryTrace(ctx, budget, n, result);
      if (to == TraceOutcome::kTerminal) {
        return result;
      }
      if (to == TraceOutcome::kAdvanced) {
        continue;  // every trace exit point is again a dispatch point
      }
      at_head = false;
    }
    Decoded d;
    GuestBus::MemResult fetch_fail;
    if (!p.FetchDecoded(ctx.pc, d, fetch_fail)) {
      result.event = RunEvent::kFault;
      result.fault = fetch_fail.fault;
      result.instructions = n;
      p.FlushAt(ctx.pc);
      return result;
    }
    p.ChargeInstruction();

    uint32_t* r = ctx.regs;
    r[0] = 0;
    uint32_t next_pc = ctx.pc + 4;

    switch (d.op) {
      case Op::kNop:
        break;
      case Op::kHalt:
        ctx.pc = next_pc;
        result.event = RunEvent::kHalt;
        result.instructions = n + 1;
        p.FlushAt(ctx.pc);
        return result;

      case Op::kAdd:
        r[d.rd] = r[d.rs1] + r[d.rs2];
        break;
      case Op::kSub:
        r[d.rd] = r[d.rs1] - r[d.rs2];
        break;
      case Op::kAnd:
        r[d.rd] = r[d.rs1] & r[d.rs2];
        break;
      case Op::kOr:
        r[d.rd] = r[d.rs1] | r[d.rs2];
        break;
      case Op::kXor:
        r[d.rd] = r[d.rs1] ^ r[d.rs2];
        break;
      case Op::kSll:
        r[d.rd] = r[d.rs1] << (r[d.rs2] & 31u);
        break;
      case Op::kSrl:
        r[d.rd] = r[d.rs1] >> (r[d.rs2] & 31u);
        break;
      case Op::kSra:
        r[d.rd] = static_cast<uint32_t>(static_cast<int32_t>(r[d.rs1]) >> (r[d.rs2] & 31u));
        break;
      case Op::kMul:
        r[d.rd] = r[d.rs1] * r[d.rs2];
        break;
      case Op::kDiv: {
        int32_t a = static_cast<int32_t>(r[d.rs1]);
        int32_t b = static_cast<int32_t>(r[d.rs2]);
        r[d.rd] = (b == 0) ? 0 : static_cast<uint32_t>(a / b);
        break;
      }
      case Op::kRem: {
        int32_t a = static_cast<int32_t>(r[d.rs1]);
        int32_t b = static_cast<int32_t>(r[d.rs2]);
        r[d.rd] = (b == 0) ? 0 : static_cast<uint32_t>(a % b);
        break;
      }
      case Op::kSlt:
        r[d.rd] = static_cast<int32_t>(r[d.rs1]) < static_cast<int32_t>(r[d.rs2]) ? 1 : 0;
        break;
      case Op::kSltu:
        r[d.rd] = r[d.rs1] < r[d.rs2] ? 1 : 0;
        break;

      case Op::kAddi:
        r[d.rd] = r[d.rs1] + static_cast<uint32_t>(d.imm);
        break;
      case Op::kAndi:
        r[d.rd] = r[d.rs1] & static_cast<uint32_t>(d.imm & 0xffff);
        break;
      case Op::kOri:
        r[d.rd] = r[d.rs1] | static_cast<uint32_t>(d.imm & 0xffff);
        break;
      case Op::kXori:
        r[d.rd] = r[d.rs1] ^ static_cast<uint32_t>(d.imm & 0xffff);
        break;
      case Op::kLui:
        r[d.rd] = static_cast<uint32_t>(d.imm & 0xffff) << 16;
        break;
      case Op::kSlti:
        r[d.rd] = static_cast<int32_t>(r[d.rs1]) < d.imm ? 1 : 0;
        break;

      case Op::kLw: {
        uint32_t addr = r[d.rs1] + static_cast<uint32_t>(d.imm);
        if ((addr & 3u) != 0) {
          result.event = RunEvent::kFault;
          result.fault = Misaligned(addr, cksim::Access::kRead);
          result.instructions = n + 1;
          p.FlushAt(ctx.pc);
          return result;
        }
        GuestBus::MemResult m = p.Load32(addr);
        if (!m.ok) {
          result.event = RunEvent::kFault;
          result.fault = m.fault;
          result.instructions = n + 1;
          p.FlushAt(ctx.pc);
          return result;
        }
        r[d.rd] = m.value;
        break;
      }
      case Op::kLb: {
        GuestBus::MemResult m = p.Load8(r[d.rs1] + static_cast<uint32_t>(d.imm));
        if (!m.ok) {
          result.event = RunEvent::kFault;
          result.fault = m.fault;
          result.instructions = n + 1;
          p.FlushAt(ctx.pc);
          return result;
        }
        r[d.rd] = m.value;
        break;
      }
      case Op::kSw: {
        uint32_t addr = r[d.rs1] + static_cast<uint32_t>(d.imm);
        if ((addr & 3u) != 0) {
          result.event = RunEvent::kFault;
          result.fault = Misaligned(addr, cksim::Access::kWrite);
          result.instructions = n + 1;
          p.FlushAt(ctx.pc);
          return result;
        }
        GuestBus::MemResult m = p.Store32(addr, r[d.rd]);
        if (!m.ok) {
          result.event = RunEvent::kFault;
          result.fault = m.fault;
          result.instructions = n + 1;
          p.FlushAt(ctx.pc);
          return result;
        }
        if (m.message_write) {
          p.OnMessageWrite(addr);
        }
        break;
      }
      case Op::kSb: {
        uint32_t addr = r[d.rs1] + static_cast<uint32_t>(d.imm);
        GuestBus::MemResult m = p.Store8(addr, static_cast<uint8_t>(r[d.rd]));
        if (!m.ok) {
          result.event = RunEvent::kFault;
          result.fault = m.fault;
          result.instructions = n + 1;
          p.FlushAt(ctx.pc);
          return result;
        }
        if (m.message_write) {
          p.OnMessageWrite(addr);
        }
        break;
      }

      case Op::kBeq:
        if (r[d.rd] == r[d.rs1]) {
          next_pc = ctx.pc + 4 + static_cast<uint32_t>(d.imm) * 4;
        }
        break;
      case Op::kBne:
        if (r[d.rd] != r[d.rs1]) {
          next_pc = ctx.pc + 4 + static_cast<uint32_t>(d.imm) * 4;
        }
        break;
      case Op::kBlt:
        if (static_cast<int32_t>(r[d.rd]) < static_cast<int32_t>(r[d.rs1])) {
          next_pc = ctx.pc + 4 + static_cast<uint32_t>(d.imm) * 4;
        }
        break;
      case Op::kBge:
        if (static_cast<int32_t>(r[d.rd]) >= static_cast<int32_t>(r[d.rs1])) {
          next_pc = ctx.pc + 4 + static_cast<uint32_t>(d.imm) * 4;
        }
        break;

      case Op::kJal:
        r[d.rd] = ctx.pc + 4;
        next_pc = ctx.pc + 4 + static_cast<uint32_t>(d.imm) * 4;
        break;
      case Op::kJalr: {
        uint32_t target = r[d.rs1] + static_cast<uint32_t>(d.imm);
        r[d.rd] = ctx.pc + 4;
        next_pc = target;
        break;
      }

      case Op::kTrap:
        ctx.pc = next_pc;  // resume after the trap instruction
        result.event = RunEvent::kTrap;
        result.trap_number = static_cast<uint16_t>(d.imm & 0xffff);
        result.instructions = n + 1;
        p.FlushAt(ctx.pc);
        return result;

      default:
        result.event = RunEvent::kFault;
        result.fault = BadInstruction(ctx.pc);
        result.instructions = n + 1;
        p.FlushAt(ctx.pc);
        return result;
    }

    r[0] = 0;
    at_head = next_pc != ctx.pc + 4;
    ctx.pc = next_pc;
    ++n;
  }

  result.event = RunEvent::kBudgetExhausted;
  result.instructions = budget;
  p.FlushAt(ctx.pc);
  return result;
}

}  // namespace

RunResult Run(VmContext& ctx, GuestBus& bus, uint32_t budget) {
  FastPath* fp = bus.fast_path();
  if (fp != nullptr) {
    FastPolicy p{bus, *fp};
    return RunLoop(ctx, p, budget);
  }
  SlowPolicy p{bus};
  return RunLoop(ctx, p, budget);
}

}  // namespace ckisa

#include "src/isa/interpreter.h"

#include <cstring>

#include "src/isa/fastpath.h"
#include "src/sim/cpu.h"
#include "src/sim/pagetable.h"

namespace ckisa {
namespace {

cksim::Fault BadInstruction(uint32_t pc) {
  cksim::Fault f;
  f.type = cksim::FaultType::kBadInstruction;
  f.address = pc;
  f.access = cksim::Access::kExecute;
  return f;
}

cksim::Fault Misaligned(uint32_t addr, cksim::Access access) {
  cksim::Fault f;
  f.type = cksim::FaultType::kBadAlignment;
  f.address = addr;
  f.access = access;
  return f;
}

// Slow policy: every access goes through the virtual GuestBus and charges the
// CPU clock immediately. This is exactly the pre-fast-path interpreter and
// the reference behavior the differential tests compare against
// (--fastpath=off selects it).
struct SlowPolicy {
  GuestBus& bus;

  bool FetchDecoded(uint32_t pc, Decoded& d, GuestBus::MemResult& fail) {
    GuestBus::MemResult fetch = bus.Fetch(pc);
    if (!fetch.ok) {
      fail = fetch;
      return false;
    }
    d = Decode(fetch.value);
    return true;
  }
  GuestBus::MemResult Load32(uint32_t vaddr) { return bus.Load32(vaddr); }
  GuestBus::MemResult Load8(uint32_t vaddr) { return bus.Load8(vaddr); }
  GuestBus::MemResult Store32(uint32_t vaddr, uint32_t value) {
    return bus.Store32(vaddr, value);
  }
  GuestBus::MemResult Store8(uint32_t vaddr, uint8_t value) { return bus.Store8(vaddr, value); }
  void ChargeInstruction() { bus.ChargeInstruction(); }
  void OnMessageWrite(uint32_t vaddr) { bus.OnMessageWrite(vaddr); }
  void Flush() {}
  // The slow path charges cycles immediately, so run-loop exits have nothing
  // to flush and take no profiler samples either: keeping this a no-op keeps
  // the reference interpreter at exactly zero profiling overhead.
  void FlushAt(uint32_t /*pc*/) {}
};

// Fast policy: accesses whose translation hits the micro-TLB (and whose
// target frame is local and needs no PTE side effects) are served straight
// from host memory, with their cycle charges accumulated in `acc` and flushed
// to Cpu::Advance in batches. Anything unusual falls back to the virtual bus.
//
// Cycle-exactness rules (see docs/PERFORMANCE.md):
//  * A fast hit performs exactly the simulated-state updates the slow path
//    would: Tlb::TouchFastHit mirrors the Lookup hit bookkeeping (LRU age,
//    hit counter), and the charges added to `acc` are the same tlb_hit /
//    mem_word / instruction costs the bus would have charged.
//  * `acc` is flushed before ANY virtual bus call, so every point that can
//    observe the CPU clock (signal delivery, trace stamping inside the MMU,
//    run termination) sees the fully charged clock.
//  * The precondition checks commit no state: only when an access is known
//    to stay on the fast path does it touch the TLB or the accumulator, so a
//    fallback replays through the bus exactly once.
struct FastPolicy {
  GuestBus& bus;
  FastPath& fp;
  cksim::Cycles acc = 0;

  void Flush() {
    if (acc != 0) {
      fp.cpu->Advance(acc);
      acc = 0;
    }
  }

  // Run-loop exit flush: also the profiler's sampling point. The clock is
  // fully charged after Flush(), so the sample timestamp compare is exact;
  // the whole addition is one branch on an already-cold edge.
  void FlushAt(uint32_t pc) {
    Flush();
    if (fp.sampler != nullptr) {
      fp.sampler->MaybeSample(fp.cpu->clock(), pc);
    }
  }

  // Translate `vaddr` for `kind` via the micro-TLB without falling back.
  // On success commits the TLB hit (LRU + counter), returns the physical
  // address and the live PTE flags. Fails -- with no simulated side effects --
  // whenever the slow path would do anything beyond "hit, charge, access":
  // TLB miss, fault, remote frame, first write / COW / read-only write.
  bool TryTranslate(cksim::Access kind, uint32_t vaddr, uint32_t* paddr, uint8_t* flags) {
    uint32_t vpage = vaddr >> cksim::kPageShift;
    const MicroTlbEntry& hint = fp.mtlb->At(kind, vpage);
    if (hint.vpage != vpage || hint.asid != fp.asid) {
      return false;
    }
    const cksim::TlbEntry& t = fp.tlb->EntryAt(hint.tlb_index);
    // Re-validate against the live TLB entry: flushes and LRU evictions make
    // this compare fail, which is how micro-TLB invalidation works.
    if (!t.valid || t.asid != fp.asid || t.vpage != vpage) {
      return false;
    }
    if (kind == cksim::Access::kWrite) {
      // The slow path write also checks COW, write protection and the
      // modified bit (with a PTE write-through on first store). Require the
      // exact flag state where it does none of that.
      constexpr uint8_t kWriteMask =
          cksim::kPteWritable | cksim::kPteModified | cksim::kPteCopyOnWrite;
      constexpr uint8_t kWriteReady = cksim::kPteWritable | cksim::kPteModified;
      if ((t.flags & kWriteMask) != kWriteReady) {
        return false;
      }
    }
    if (t.pframe >= fp.frame_count || fp.remote_frame_bits[t.pframe] != 0) {
      return false;  // consistency fault territory: let the bus handle it
    }
    // Committed: from here the access completes on the fast path.
    fp.tlb->TouchFastHit(hint.tlb_index);
    acc += fp.cost_tlb_hit;
    *paddr = cksim::FrameBase(t.pframe) | (vaddr & cksim::kPageOffsetMask);
    *flags = t.flags;
    return true;
  }

  bool FetchDecoded(uint32_t pc, Decoded& d, GuestBus::MemResult& fail) {
    uint32_t paddr;
    uint8_t flags;
    if ((pc & 3u) == 0 && TryTranslate(cksim::Access::kExecute, pc, &paddr, &flags)) {
      acc += fp.cost_mem_word;
      const DecodedPage* page = fp.exec_cache->Get(paddr >> cksim::kPageShift);
      d = page->insns[(paddr & cksim::kPageOffsetMask) >> 2];
      return true;
    }
    Flush();
    GuestBus::MemResult fetch = bus.Fetch(pc);
    if (!fetch.ok) {
      fail = fetch;
      return false;
    }
    d = Decode(fetch.value);
    return true;
  }

  GuestBus::MemResult Load32(uint32_t vaddr) {
    uint32_t paddr;
    uint8_t flags;
    // The interpreter already rejected misaligned word loads.
    if (TryTranslate(cksim::Access::kRead, vaddr, &paddr, &flags)) {
      acc += fp.cost_mem_word;
      GuestBus::MemResult m;
      m.ok = true;
      std::memcpy(&m.value, fp.mem->raw() + paddr, 4);
      return m;
    }
    Flush();
    return bus.Load32(vaddr);
  }

  GuestBus::MemResult Load8(uint32_t vaddr) {
    uint32_t paddr;
    uint8_t flags;
    if (TryTranslate(cksim::Access::kRead, vaddr, &paddr, &flags)) {
      acc += fp.cost_mem_word;
      GuestBus::MemResult m;
      m.ok = true;
      m.value = fp.mem->raw()[paddr];
      return m;
    }
    Flush();
    return bus.Load8(vaddr);
  }

  GuestBus::MemResult Store32(uint32_t vaddr, uint32_t value) {
    uint32_t paddr;
    uint8_t flags;
    if (TryTranslate(cksim::Access::kWrite, vaddr, &paddr, &flags)) {
      acc += fp.cost_mem_word;
      std::memcpy(fp.mem->raw() + paddr, &value, 4);
      fp.mem->BumpFrameGeneration(paddr);  // keep the decoded cache honest
      GuestBus::MemResult m;
      m.ok = true;
      m.message_write = (flags & cksim::kPteMessage) != 0;
      return m;
    }
    Flush();
    return bus.Store32(vaddr, value);
  }

  GuestBus::MemResult Store8(uint32_t vaddr, uint8_t value) {
    uint32_t paddr;
    uint8_t flags;
    if (TryTranslate(cksim::Access::kWrite, vaddr, &paddr, &flags)) {
      acc += fp.cost_mem_word;
      fp.mem->raw()[paddr] = value;
      fp.mem->BumpFrameGeneration(paddr);
      GuestBus::MemResult m;
      m.ok = true;
      m.message_write = (flags & cksim::kPteMessage) != 0;
      return m;
    }
    Flush();
    return bus.Store8(vaddr, value);
  }

  void ChargeInstruction() { acc += fp.cost_instruction; }

  void OnMessageWrite(uint32_t vaddr) {
    // Signal delivery stamps the CPU clock; it must see all batched charges.
    Flush();
    bus.OnMessageWrite(vaddr);
  }
};

// The interpreter core, shared by both policies. Instruction semantics and
// the fault/trap/halt protocol are policy-independent; the policy only decides
// how fetches, loads, stores and cycle charges are performed. Policy::Flush()
// runs before every return so batched charges always land on the CPU clock
// before the caller (the dispatch loop) reads it.
template <typename Policy>
RunResult RunLoop(VmContext& ctx, Policy& p, uint32_t budget) {
  RunResult result;

  for (uint32_t n = 0; n < budget; ++n) {
    Decoded d;
    GuestBus::MemResult fetch_fail;
    if (!p.FetchDecoded(ctx.pc, d, fetch_fail)) {
      result.event = RunEvent::kFault;
      result.fault = fetch_fail.fault;
      result.instructions = n;
      p.FlushAt(ctx.pc);
      return result;
    }
    p.ChargeInstruction();

    uint32_t* r = ctx.regs;
    r[0] = 0;
    uint32_t next_pc = ctx.pc + 4;

    switch (d.op) {
      case Op::kNop:
        break;
      case Op::kHalt:
        ctx.pc = next_pc;
        result.event = RunEvent::kHalt;
        result.instructions = n + 1;
        p.FlushAt(ctx.pc);
        return result;

      case Op::kAdd:
        r[d.rd] = r[d.rs1] + r[d.rs2];
        break;
      case Op::kSub:
        r[d.rd] = r[d.rs1] - r[d.rs2];
        break;
      case Op::kAnd:
        r[d.rd] = r[d.rs1] & r[d.rs2];
        break;
      case Op::kOr:
        r[d.rd] = r[d.rs1] | r[d.rs2];
        break;
      case Op::kXor:
        r[d.rd] = r[d.rs1] ^ r[d.rs2];
        break;
      case Op::kSll:
        r[d.rd] = r[d.rs1] << (r[d.rs2] & 31u);
        break;
      case Op::kSrl:
        r[d.rd] = r[d.rs1] >> (r[d.rs2] & 31u);
        break;
      case Op::kSra:
        r[d.rd] = static_cast<uint32_t>(static_cast<int32_t>(r[d.rs1]) >> (r[d.rs2] & 31u));
        break;
      case Op::kMul:
        r[d.rd] = r[d.rs1] * r[d.rs2];
        break;
      case Op::kDiv: {
        int32_t a = static_cast<int32_t>(r[d.rs1]);
        int32_t b = static_cast<int32_t>(r[d.rs2]);
        r[d.rd] = (b == 0) ? 0 : static_cast<uint32_t>(a / b);
        break;
      }
      case Op::kRem: {
        int32_t a = static_cast<int32_t>(r[d.rs1]);
        int32_t b = static_cast<int32_t>(r[d.rs2]);
        r[d.rd] = (b == 0) ? 0 : static_cast<uint32_t>(a % b);
        break;
      }
      case Op::kSlt:
        r[d.rd] = static_cast<int32_t>(r[d.rs1]) < static_cast<int32_t>(r[d.rs2]) ? 1 : 0;
        break;
      case Op::kSltu:
        r[d.rd] = r[d.rs1] < r[d.rs2] ? 1 : 0;
        break;

      case Op::kAddi:
        r[d.rd] = r[d.rs1] + static_cast<uint32_t>(d.imm);
        break;
      case Op::kAndi:
        r[d.rd] = r[d.rs1] & static_cast<uint32_t>(d.imm & 0xffff);
        break;
      case Op::kOri:
        r[d.rd] = r[d.rs1] | static_cast<uint32_t>(d.imm & 0xffff);
        break;
      case Op::kXori:
        r[d.rd] = r[d.rs1] ^ static_cast<uint32_t>(d.imm & 0xffff);
        break;
      case Op::kLui:
        r[d.rd] = static_cast<uint32_t>(d.imm & 0xffff) << 16;
        break;
      case Op::kSlti:
        r[d.rd] = static_cast<int32_t>(r[d.rs1]) < d.imm ? 1 : 0;
        break;

      case Op::kLw: {
        uint32_t addr = r[d.rs1] + static_cast<uint32_t>(d.imm);
        if ((addr & 3u) != 0) {
          result.event = RunEvent::kFault;
          result.fault = Misaligned(addr, cksim::Access::kRead);
          result.instructions = n + 1;
          p.FlushAt(ctx.pc);
          return result;
        }
        GuestBus::MemResult m = p.Load32(addr);
        if (!m.ok) {
          result.event = RunEvent::kFault;
          result.fault = m.fault;
          result.instructions = n + 1;
          p.FlushAt(ctx.pc);
          return result;
        }
        r[d.rd] = m.value;
        break;
      }
      case Op::kLb: {
        GuestBus::MemResult m = p.Load8(r[d.rs1] + static_cast<uint32_t>(d.imm));
        if (!m.ok) {
          result.event = RunEvent::kFault;
          result.fault = m.fault;
          result.instructions = n + 1;
          p.FlushAt(ctx.pc);
          return result;
        }
        r[d.rd] = m.value;
        break;
      }
      case Op::kSw: {
        uint32_t addr = r[d.rs1] + static_cast<uint32_t>(d.imm);
        if ((addr & 3u) != 0) {
          result.event = RunEvent::kFault;
          result.fault = Misaligned(addr, cksim::Access::kWrite);
          result.instructions = n + 1;
          p.FlushAt(ctx.pc);
          return result;
        }
        GuestBus::MemResult m = p.Store32(addr, r[d.rd]);
        if (!m.ok) {
          result.event = RunEvent::kFault;
          result.fault = m.fault;
          result.instructions = n + 1;
          p.FlushAt(ctx.pc);
          return result;
        }
        if (m.message_write) {
          p.OnMessageWrite(addr);
        }
        break;
      }
      case Op::kSb: {
        uint32_t addr = r[d.rs1] + static_cast<uint32_t>(d.imm);
        GuestBus::MemResult m = p.Store8(addr, static_cast<uint8_t>(r[d.rd]));
        if (!m.ok) {
          result.event = RunEvent::kFault;
          result.fault = m.fault;
          result.instructions = n + 1;
          p.FlushAt(ctx.pc);
          return result;
        }
        if (m.message_write) {
          p.OnMessageWrite(addr);
        }
        break;
      }

      case Op::kBeq:
        if (r[d.rd] == r[d.rs1]) {
          next_pc = ctx.pc + 4 + static_cast<uint32_t>(d.imm) * 4;
        }
        break;
      case Op::kBne:
        if (r[d.rd] != r[d.rs1]) {
          next_pc = ctx.pc + 4 + static_cast<uint32_t>(d.imm) * 4;
        }
        break;
      case Op::kBlt:
        if (static_cast<int32_t>(r[d.rd]) < static_cast<int32_t>(r[d.rs1])) {
          next_pc = ctx.pc + 4 + static_cast<uint32_t>(d.imm) * 4;
        }
        break;
      case Op::kBge:
        if (static_cast<int32_t>(r[d.rd]) >= static_cast<int32_t>(r[d.rs1])) {
          next_pc = ctx.pc + 4 + static_cast<uint32_t>(d.imm) * 4;
        }
        break;

      case Op::kJal:
        r[d.rd] = ctx.pc + 4;
        next_pc = ctx.pc + 4 + static_cast<uint32_t>(d.imm) * 4;
        break;
      case Op::kJalr: {
        uint32_t target = r[d.rs1] + static_cast<uint32_t>(d.imm);
        r[d.rd] = ctx.pc + 4;
        next_pc = target;
        break;
      }

      case Op::kTrap:
        ctx.pc = next_pc;  // resume after the trap instruction
        result.event = RunEvent::kTrap;
        result.trap_number = static_cast<uint16_t>(d.imm & 0xffff);
        result.instructions = n + 1;
        p.FlushAt(ctx.pc);
        return result;

      default:
        result.event = RunEvent::kFault;
        result.fault = BadInstruction(ctx.pc);
        result.instructions = n + 1;
        p.FlushAt(ctx.pc);
        return result;
    }

    r[0] = 0;
    ctx.pc = next_pc;
  }

  result.event = RunEvent::kBudgetExhausted;
  result.instructions = budget;
  p.FlushAt(ctx.pc);
  return result;
}

}  // namespace

RunResult Run(VmContext& ctx, GuestBus& bus, uint32_t budget) {
  FastPath* fp = bus.fast_path();
  if (fp != nullptr) {
    FastPolicy p{bus, *fp};
    return RunLoop(ctx, p, budget);
  }
  SlowPolicy p{bus};
  return RunLoop(ctx, p, budget);
}

}  // namespace ckisa

#include "src/isa/interpreter.h"

namespace ckisa {
namespace {

cksim::Fault BadInstruction(uint32_t pc) {
  cksim::Fault f;
  f.type = cksim::FaultType::kBadInstruction;
  f.address = pc;
  f.access = cksim::Access::kExecute;
  return f;
}

cksim::Fault Misaligned(uint32_t addr, cksim::Access access) {
  cksim::Fault f;
  f.type = cksim::FaultType::kBadAlignment;
  f.address = addr;
  f.access = access;
  return f;
}

}  // namespace

RunResult Run(VmContext& ctx, GuestBus& bus, uint32_t budget) {
  RunResult result;

  for (uint32_t n = 0; n < budget; ++n) {
    GuestBus::MemResult fetch = bus.Fetch(ctx.pc);
    if (!fetch.ok) {
      result.event = RunEvent::kFault;
      result.fault = fetch.fault;
      result.instructions = n;
      return result;
    }
    bus.ChargeInstruction();

    Decoded d = Decode(fetch.value);
    uint32_t* r = ctx.regs;
    r[0] = 0;
    uint32_t next_pc = ctx.pc + 4;

    switch (d.op) {
      case Op::kNop:
        break;
      case Op::kHalt:
        ctx.pc = next_pc;
        result.event = RunEvent::kHalt;
        result.instructions = n + 1;
        return result;

      case Op::kAdd:
        r[d.rd] = r[d.rs1] + r[d.rs2];
        break;
      case Op::kSub:
        r[d.rd] = r[d.rs1] - r[d.rs2];
        break;
      case Op::kAnd:
        r[d.rd] = r[d.rs1] & r[d.rs2];
        break;
      case Op::kOr:
        r[d.rd] = r[d.rs1] | r[d.rs2];
        break;
      case Op::kXor:
        r[d.rd] = r[d.rs1] ^ r[d.rs2];
        break;
      case Op::kSll:
        r[d.rd] = r[d.rs1] << (r[d.rs2] & 31u);
        break;
      case Op::kSrl:
        r[d.rd] = r[d.rs1] >> (r[d.rs2] & 31u);
        break;
      case Op::kSra:
        r[d.rd] = static_cast<uint32_t>(static_cast<int32_t>(r[d.rs1]) >> (r[d.rs2] & 31u));
        break;
      case Op::kMul:
        r[d.rd] = r[d.rs1] * r[d.rs2];
        break;
      case Op::kDiv: {
        int32_t a = static_cast<int32_t>(r[d.rs1]);
        int32_t b = static_cast<int32_t>(r[d.rs2]);
        r[d.rd] = (b == 0) ? 0 : static_cast<uint32_t>(a / b);
        break;
      }
      case Op::kRem: {
        int32_t a = static_cast<int32_t>(r[d.rs1]);
        int32_t b = static_cast<int32_t>(r[d.rs2]);
        r[d.rd] = (b == 0) ? 0 : static_cast<uint32_t>(a % b);
        break;
      }
      case Op::kSlt:
        r[d.rd] = static_cast<int32_t>(r[d.rs1]) < static_cast<int32_t>(r[d.rs2]) ? 1 : 0;
        break;
      case Op::kSltu:
        r[d.rd] = r[d.rs1] < r[d.rs2] ? 1 : 0;
        break;

      case Op::kAddi:
        r[d.rd] = r[d.rs1] + static_cast<uint32_t>(d.imm);
        break;
      case Op::kAndi:
        r[d.rd] = r[d.rs1] & static_cast<uint32_t>(d.imm & 0xffff);
        break;
      case Op::kOri:
        r[d.rd] = r[d.rs1] | static_cast<uint32_t>(d.imm & 0xffff);
        break;
      case Op::kXori:
        r[d.rd] = r[d.rs1] ^ static_cast<uint32_t>(d.imm & 0xffff);
        break;
      case Op::kLui:
        r[d.rd] = static_cast<uint32_t>(d.imm & 0xffff) << 16;
        break;
      case Op::kSlti:
        r[d.rd] = static_cast<int32_t>(r[d.rs1]) < d.imm ? 1 : 0;
        break;

      case Op::kLw: {
        uint32_t addr = r[d.rs1] + static_cast<uint32_t>(d.imm);
        if ((addr & 3u) != 0) {
          result.event = RunEvent::kFault;
          result.fault = Misaligned(addr, cksim::Access::kRead);
          result.instructions = n + 1;
          return result;
        }
        GuestBus::MemResult m = bus.Load32(addr);
        if (!m.ok) {
          result.event = RunEvent::kFault;
          result.fault = m.fault;
          result.instructions = n + 1;
          return result;
        }
        r[d.rd] = m.value;
        break;
      }
      case Op::kLb: {
        GuestBus::MemResult m = bus.Load8(r[d.rs1] + static_cast<uint32_t>(d.imm));
        if (!m.ok) {
          result.event = RunEvent::kFault;
          result.fault = m.fault;
          result.instructions = n + 1;
          return result;
        }
        r[d.rd] = m.value;
        break;
      }
      case Op::kSw: {
        uint32_t addr = r[d.rs1] + static_cast<uint32_t>(d.imm);
        if ((addr & 3u) != 0) {
          result.event = RunEvent::kFault;
          result.fault = Misaligned(addr, cksim::Access::kWrite);
          result.instructions = n + 1;
          return result;
        }
        GuestBus::MemResult m = bus.Store32(addr, r[d.rd]);
        if (!m.ok) {
          result.event = RunEvent::kFault;
          result.fault = m.fault;
          result.instructions = n + 1;
          return result;
        }
        if (m.message_write) {
          bus.OnMessageWrite(addr);
        }
        break;
      }
      case Op::kSb: {
        uint32_t addr = r[d.rs1] + static_cast<uint32_t>(d.imm);
        GuestBus::MemResult m = bus.Store8(addr, static_cast<uint8_t>(r[d.rd]));
        if (!m.ok) {
          result.event = RunEvent::kFault;
          result.fault = m.fault;
          result.instructions = n + 1;
          return result;
        }
        if (m.message_write) {
          bus.OnMessageWrite(addr);
        }
        break;
      }

      case Op::kBeq:
        if (r[d.rd] == r[d.rs1]) {
          next_pc = ctx.pc + 4 + static_cast<uint32_t>(d.imm) * 4;
        }
        break;
      case Op::kBne:
        if (r[d.rd] != r[d.rs1]) {
          next_pc = ctx.pc + 4 + static_cast<uint32_t>(d.imm) * 4;
        }
        break;
      case Op::kBlt:
        if (static_cast<int32_t>(r[d.rd]) < static_cast<int32_t>(r[d.rs1])) {
          next_pc = ctx.pc + 4 + static_cast<uint32_t>(d.imm) * 4;
        }
        break;
      case Op::kBge:
        if (static_cast<int32_t>(r[d.rd]) >= static_cast<int32_t>(r[d.rs1])) {
          next_pc = ctx.pc + 4 + static_cast<uint32_t>(d.imm) * 4;
        }
        break;

      case Op::kJal:
        r[d.rd] = ctx.pc + 4;
        next_pc = ctx.pc + 4 + static_cast<uint32_t>(d.imm) * 4;
        break;
      case Op::kJalr: {
        uint32_t target = r[d.rs1] + static_cast<uint32_t>(d.imm);
        r[d.rd] = ctx.pc + 4;
        next_pc = target;
        break;
      }

      case Op::kTrap:
        ctx.pc = next_pc;  // resume after the trap instruction
        result.event = RunEvent::kTrap;
        result.trap_number = static_cast<uint16_t>(d.imm & 0xffff);
        result.instructions = n + 1;
        return result;

      default:
        result.event = RunEvent::kFault;
        result.fault = BadInstruction(ctx.pc);
        result.instructions = n + 1;
        return result;
    }

    r[0] = 0;
    ctx.pc = next_pc;
  }

  result.event = RunEvent::kBudgetExhausted;
  result.instructions = budget;
  return result;
}

}  // namespace ckisa

// Host-side guest-execution fast path: per-CPU micro-TLB and per-frame
// decoded-instruction cache.
//
// These structures make the simulator execute guest instructions several
// times faster on the host WITHOUT changing a single simulated cycle count
// (the cycle-exactness invariant; see docs/PERFORMANCE.md). They are pure
// host-side acceleration: nothing here charges or observes simulated time.
//
// The micro-TLB is a small direct-mapped hint cache over the simulated
// hardware TLB, one entry array per access kind (read/write/execute). An
// entry names a resident cksim::TlbEntry by index; the interpreter
// re-validates that entry on every use (valid + asid + vpage compare), so the
// existing TLB invalidation surface -- FlushPage/FlushAsid/FlushFrame/
// FlushAll and LRU eviction by Insert -- invalidates micro-TLB state
// implicitly and strictly. A hit is an index, a compare and an array read:
// no virtual dispatch, no set scan, no hash probe.
//
// The decoded-instruction cache is keyed by physical page frame with a
// per-frame generation (PhysicalMemory::frame_generation) bumped on any
// store to that frame, so Decode runs once per resident instruction page
// instead of once per executed instruction. Self-modifying code bumps the
// generation and falls back to a re-decode of the frame.

#ifndef SRC_ISA_FASTPATH_H_
#define SRC_ISA_FASTPATH_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/isa/isa.h"
#include "src/sim/physmem.h"
#include "src/sim/tlb.h"
#include "src/sim/types.h"

namespace cksim {
class Cpu;
}

namespace ckisa {

// One micro-TLB hint: (asid, vpage) resolved to a hardware-TLB entry index.
// The payload (frame, flags) is always read from the named TlbEntry after
// re-validation, never cached here, so a stale hint is harmless -- it either
// re-validates against live state or misses.
struct MicroTlbEntry {
  static constexpr uint32_t kInvalidVpage = 0xffffffffu;

  uint32_t vpage = kInvalidVpage;
  uint16_t asid = 0;
  uint16_t tlb_index = 0;
};

// Per-CPU. Direct-mapped by virtual page, one array per access kind, so the
// hot lookup is a single indexed load and two compares.
class MicroTlb {
 public:
  static constexpr uint32_t kEntriesPerKind = 64;

  MicroTlbEntry& At(cksim::Access kind, uint32_t vpage) {
    return entries_[static_cast<uint32_t>(kind)][vpage & (kEntriesPerKind - 1)];
  }

  // Record a hint after a successful slow-path translation. tlb_index < 0
  // (entry not resident, e.g. raced out) leaves the hint untouched.
  void Fill(cksim::Access kind, uint16_t asid, uint32_t vpage, int32_t tlb_index) {
    if (tlb_index < 0) {
      return;
    }
    MicroTlbEntry& e = At(kind, vpage);
    e.vpage = vpage;
    e.asid = asid;
    e.tlb_index = static_cast<uint16_t>(tlb_index);
  }

  void InvalidateAll() {
    for (auto& kind : entries_) {
      for (MicroTlbEntry& e : kind) {
        e.vpage = MicroTlbEntry::kInvalidVpage;
      }
    }
  }

 private:
  MicroTlbEntry entries_[3][kEntriesPerKind];  // indexed by cksim::Access
};

// Decoded image of one physical page frame.
struct DecodedPage {
  uint64_t generation = ~0ull;
  Decoded insns[cksim::kPageSize / 4];
};

// Per-machine cache of decoded page frames, allocated lazily per executed
// frame and refreshed when the frame's store generation moves.
class ExecCache {
 public:
  explicit ExecCache(cksim::PhysicalMemory& mem) : mem_(mem), pages_(mem.page_count()) {}

  // Decoded instructions for `frame`. The caller guarantees
  // frame < mem.page_count() (the fast path checks this before committing).
  const DecodedPage* Get(uint32_t frame) {
    DecodedPage* page = pages_[frame].get();
    uint64_t generation = mem_.frame_generation(frame);
    if (page == nullptr) {
      pages_[frame] = std::make_unique<DecodedPage>();
      page = pages_[frame].get();
      Refill(*page, frame, generation);
    } else if (page->generation != generation) {
      Refill(*page, frame, generation);
    }
    return page;
  }

 private:
  void Refill(DecodedPage& page, uint32_t frame, uint64_t generation);

  cksim::PhysicalMemory& mem_;
  std::vector<std::unique_ptr<DecodedPage>> pages_;
};

// ---------------------------------------------------------------------------
// Superblock trace cache.
//
// A trace is a superblock: a straight-line sequence of decoded instructions
// chained across basic-block boundaries following a build-time predicted path
// (backward conditional branches predicted taken, forward predicted
// not-taken, direct jumps followed). Loops unroll naturally into the trace
// body up to kMaxSteps. Execution replays the steps with ZERO per-step
// decode, micro-TLB probing or dispatch-table lookup; any deviation from the
// predicted pure-fast path (guard mismatch, bus fallback, store into one of
// the trace's own frames, message write) exits the trace after completing the
// current step exactly as the single-step interpreter would have.
//
// Validity is keyed on ALL touched physical frames: per fetched page the
// trace records (vpage, pframe, frame_generation); entry revalidates each
// against the live TLB (side-effect-free Tlb::Probe) and
// PhysicalMemory::frame_generation, so self-modifying code, page remaps and
// frame reuse invalidate traces exactly as they invalidate decoded frames.
//
// Cycle-exactness: per-step cycle charges and TLB touch ordinals are
// precomputed as prefix sums at build time and committed wholesale at trace
// exit (or before any bus call), reproducing the exact accumulator and
// Tlb lru/tick/hit state a step-by-step run would leave. See
// docs/PERFORMANCE.md ("Superblock traces & intra-MPM parallelism").

struct TraceStep {
  Decoded d;
  uint32_t vpc = 0;       // virtual pc of this step
  uint32_t next_vpc = 0;  // build-time successor on the predicted path
  uint8_t page_slot = 0;  // index into Trace::pages for the fetch
  // Build-time classification flags.
  static constexpr uint8_t kPredictedTaken = 1;  // branch: trace continues at target
  static constexpr uint8_t kWritesR0 = 2;        // needs the post-op r0 clear
  uint8_t flags = 0;
};

struct TracePage {
  uint32_t vpage = 0;
  uint32_t pframe = 0;
  uint64_t generation = 0;
};

struct Trace {
  static constexpr uint32_t kMaxSteps = 64;
  static constexpr uint32_t kMaxPages = 4;
  static constexpr uint8_t kNoFetch = 0xff;

  uint32_t head_vpc = 0;
  uint16_t asid = 0;
  uint16_t step_count = 0;  // 0 = invalid slot
  uint16_t page_count = 0;
  TraceStep steps[kMaxSteps];
  TracePage pages[kMaxPages];
  // Prefix sums over fully-fast steps 0..i-1: batched cycle charges and TLB
  // touch counts (one fetch touch per step, plus one data touch per memory
  // step). The fetch touch of step i has ordinal touch_prefix[i] + 1, its
  // data touch (if any) ordinal touch_prefix[i] + 2.
  uint32_t acc_prefix[kMaxSteps + 1];
  uint32_t touch_prefix[kMaxSteps + 1];
  // last_fetch[i][p]: last step index < i that fetched from page slot p, or
  // kNoFetch. Lets the exit commit reconstruct each page's final lru value.
  uint8_t last_fetch[kMaxSteps + 1][kMaxPages];
};

// Per-CPU direct-mapped cache of built traces, keyed (asid, head pc).
// Per-CPU so that intra-MPM parallel execution shares no trace state across
// host threads; contents are a deterministic function of the owning CPU's
// own execution history, which keeps hit/miss/build counts bit-identical
// between serial and parallel runs.
class TraceCache {
 public:
  static constexpr uint32_t kSlots = 2048;

  Trace* Lookup(uint16_t asid, uint32_t vpc) {
    Trace* t = slots_[SlotIndex(asid, vpc)].get();
    if (t == nullptr || t->step_count == 0 || t->head_vpc != vpc || t->asid != asid) {
      return nullptr;
    }
    return t;
  }

  // The (allocated) slot a trace for (asid, vpc) would occupy; collisions
  // overwrite deterministically.
  Trace& SlotFor(uint16_t asid, uint32_t vpc) {
    std::unique_ptr<Trace>& slot = slots_[SlotIndex(asid, vpc)];
    if (slot == nullptr) {
      slot = std::make_unique<Trace>();
    }
    return *slot;
  }

 private:
  static uint32_t SlotIndex(uint16_t asid, uint32_t vpc) {
    return ((vpc >> 2) ^ (vpc >> 13) ^ asid) & (kSlots - 1);
  }

  std::vector<std::unique_ptr<Trace>> slots_{kSlots};
};

// Staged trace-cache statistics, accumulated per dispatch quantum and folded
// into CkStats / the owning tenant's CostAccount at quantum commit (so the
// intra-MPM parallel executor never touches shared counters mid-run).
struct TraceStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t invalidations = 0;
  uint64_t builds = 0;
};

struct FastPath;

// Build a superblock starting at (asid, head_vpc) into `t`, following the
// predicted path through TLB-resident, local, non-remote pages. Returns the
// number of steps built (0 = nothing buildable: first page not resident).
// Side-effect-free on simulated state (Tlb::Probe + ExecCache::Get only).
uint32_t BuildTrace(const FastPath& fp, uint16_t asid, uint32_t head_vpc, Trace& t);

// Periodic guest-PC sampler for the profiler. Samples are taken only at the
// interpreter's run-loop exit points -- the places the fast path flushes its
// batched cycle accumulator anyway -- so arming it costs one compare on that
// already-cold edge and nothing per instruction. The sampler never touches
// simulated state: it reads the (fully flushed) CPU clock and latches a PC
// for the kernel to harvest after ckisa::Run returns.
struct PcSampler {
  cksim::Cycles next_due = ~cksim::Cycles{0};
  cksim::Cycles period = 0;
  uint32_t last_pc = 0;
  bool pending = false;

  // (Re)arm with sampling period `p` starting from `now`; 0 disarms.
  void Arm(cksim::Cycles now, cksim::Cycles p) {
    period = p;
    next_due = (p == 0) ? ~cksim::Cycles{0} : now + p;
  }

  void MaybeSample(cksim::Cycles now, uint32_t pc) {
    if (now >= next_due) {
      last_pc = pc;
      pending = true;
      next_due = now + period;
    }
  }
};

// Everything the interpreter needs to serve a hot access inline. A GuestBus
// that can expose one returns it from fast_path(); the interpreter then
// bypasses the virtual interface for clean hits and falls back to the bus
// for anything unusual (TLB miss, fault, remote frame, message write, first
// write to a page, misalignment).
struct FastPath {
  MicroTlb* mtlb = nullptr;
  cksim::Tlb* tlb = nullptr;
  ExecCache* exec_cache = nullptr;
  cksim::PhysicalMemory* mem = nullptr;
  // Per-frame remote/failed bit (CacheKernel::remote_frame_bits_), checked
  // live on every fast access, so MarkFrameRemote needs no invalidation hook.
  const uint8_t* remote_frame_bits = nullptr;
  uint32_t frame_count = 0;
  cksim::Cpu* cpu = nullptr;  // flush target for batched cycle charges
  // Optional profiler hook, consulted at run-loop exit points only.
  PcSampler* sampler = nullptr;
  // Superblock trace execution (null = disabled): the owning CPU's trace
  // cache and the quantum's staged counters. Always both set or both null.
  TraceCache* tcache = nullptr;
  TraceStats* trace_stats = nullptr;
  uint16_t asid = 0;
  // Cycle charges of a clean hit, accumulated locally and flushed to
  // Cpu::Advance at block boundaries (see interpreter.cc).
  cksim::Cycles cost_tlb_hit = 0;
  cksim::Cycles cost_mem_word = 0;
  cksim::Cycles cost_instruction = 0;
};

}  // namespace ckisa

#endif  // SRC_ISA_FASTPATH_H_

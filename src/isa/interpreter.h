// CKVM interpreter.
//
// Executes guest instructions against a GuestBus, which the Cache Kernel
// implements by binding the running thread's address space to the CPU's MMU.
// Every instruction and memory access is charged simulated cycles through the
// bus; faults and traps terminate the run and are reported to the caller (the
// Cache Kernel dispatch loop), which forwards them per Figure 2.

#ifndef SRC_ISA_INTERPRETER_H_
#define SRC_ISA_INTERPRETER_H_

#include <cstdint>

#include "src/isa/isa.h"
#include "src/sim/types.h"

namespace ckisa {

struct FastPath;

// Architectural state of one guest thread (lives inside the Cache Kernel's
// thread descriptor; loaded/saved on thread load/writeback).
struct VmContext {
  uint32_t regs[32] = {0};
  uint32_t pc = 0;
};

// Memory interface the interpreter drives. Implementations translate through
// the simulated MMU and charge cycles to the executing CPU.
class GuestBus {
 public:
  virtual ~GuestBus() = default;

  struct MemResult {
    bool ok = false;
    uint32_t value = 0;       // for loads/fetches
    cksim::Fault fault;       // set when !ok
    bool message_write = false;  // store hit a message-mode page
  };

  virtual MemResult Fetch(uint32_t vaddr) = 0;
  virtual MemResult Load32(uint32_t vaddr) = 0;
  virtual MemResult Load8(uint32_t vaddr) = 0;
  virtual MemResult Store32(uint32_t vaddr, uint32_t value) = 0;
  virtual MemResult Store8(uint32_t vaddr, uint8_t value) = 0;

  // Charge non-memory execution cost (per instruction).
  virtual void ChargeInstruction() = 0;

  // A store hit a message-mode page: with the signal-on-write hardware
  // assist enabled, the kernel generates the address-valued signal here.
  virtual void OnMessageWrite(uint32_t vaddr) = 0;

  // Optional host-side acceleration (src/isa/fastpath.h). When non-null the
  // interpreter serves micro-TLB hits inline and batches their cycle charges;
  // simulated results (cycle counts, TLB state, faults, signals) are
  // guaranteed identical to running everything through the virtual methods.
  virtual FastPath* fast_path() { return nullptr; }
};

enum class RunEvent : uint8_t {
  kBudgetExhausted = 0,  // ran the full instruction budget, thread still runnable
  kTrap,                 // executed a trap instruction (trap number reported)
  kFault,                // memory/instruction fault (fault reported)
  kHalt,                 // executed halt
};

struct RunResult {
  RunEvent event = RunEvent::kBudgetExhausted;
  uint32_t instructions = 0;
  uint16_t trap_number = 0;
  cksim::Fault fault;
};

// Run up to `budget` instructions. On kTrap, pc has been advanced past the
// trap instruction (the handler resumes after it). On kFault, pc still points
// at the faulting instruction so it re-executes after the mapping is loaded.
RunResult Run(VmContext& ctx, GuestBus& bus, uint32_t budget);

}  // namespace ckisa

#endif  // SRC_ISA_INTERPRETER_H_

// Capture and restore of application-kernel state (the tentpole of
// docs/CHECKPOINT.md).
//
// The caching model makes this almost free conceptually: once a kernel is
// quiesced (its kernel object unloaded, which cascades the dependency-ordered
// writeback of Figure 6 over every space, thread and mapping), the
// application kernel's own records ARE its complete state -- "writeback
// completeness". Capture therefore serializes:
//   * the VSpace / PageRecord / ThreadRec tables (including saved register
//     contexts written back by the Cache Kernel),
//   * the backing store (non-zero pages only),
//   * the contents of every resident owned frame (read out of physical
//     memory) plus any referenced shared frames (deferred-copy sources),
//   * the paging statistics and a subclass blob (CaptureExtra).
//
// Restore rebuilds the records in a fresh kernel instance, drawing new
// physical frames from the target's pool and translating every captured
// frame address through old->new remaps; fixed frames (devices, message
// channels) translate through caller-supplied RestoreOptions so channel
// bindings survive migration to a machine with a different device placement.
// Restore never loads a Cache Kernel object, so a failed restore cannot leave
// a partially-loaded kernel: Resume() is the separate step that reloads
// threads and lets execution continue.

#ifndef SRC_CKPT_CHECKPOINT_H_
#define SRC_CKPT_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/appkernel/app_kernel_base.h"
#include "src/ckpt/image.h"
#include "src/ckpt/serializer.h"

namespace ckckpt {

// Translate a contiguous run of captured frame addresses to the target
// machine (fixed device/channel regions that live at a different physical
// base there). Frames not covered by any remap translate identically.
struct FrameRemap {
  cksim::PhysAddr old_base = 0;
  cksim::PhysAddr new_base = 0;
  uint32_t pages = 0;
};

struct RestoreOptions {
  std::vector<FrameRemap> frame_remaps;
};

class AppKernelState {
 public:
  // Serialize the complete written-back state of `app` into `image`. The
  // kernel must be quiesced first (SRM SwapOut / UnloadKernel); `api` needs
  // physical read access to the app's frames (the SRM's api qualifies).
  static void Capture(ckapp::AppKernelBase& app, ck::CkApi& api, CkptImage* image);

  // Rebuild `app`'s records from `image`. `app` must be a freshly
  // constructed instance of the same kernel type (no spaces or threads yet),
  // already launched and granted memory; new frames come from its pool.
  // Returns false with `error` set on any mismatch; no Cache Kernel objects
  // have been loaded in that case and the target must be discarded.
  static bool Restore(ckapp::AppKernelBase& app, ck::CkApi& api, const CkptImage& image,
                      const RestoreOptions& options, std::string* error);

  // Reload the restored threads into the Cache Kernel (skipping finished
  // ones and those the subclass vetoes) so execution resumes. Threads that
  // were blocked on an in-flight page-in restart runnable: their saved PC
  // re-executes the faulting access, which simply re-faults.
  static bool Resume(ckapp::AppKernelBase& app, ck::CkApi& api, std::string* error);

  // Named observables over the record state: every space, page, thread and
  // counter, with page/backing contents folded in as CRCs. Physical frame
  // addresses are deliberately excluded -- they legitimately differ across
  // machines; everything observable through them (contents, flags, order)
  // is included. This is the differential comparator's input (the
  // fastpath_test.cc pattern).
  static std::vector<std::pair<std::string, uint64_t>> Digest(ckapp::AppKernelBase& app,
                                                              ck::CkApi& api);
};

}  // namespace ckckpt

#endif  // SRC_CKPT_CHECKPOINT_H_

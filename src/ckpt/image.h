// CkptImage: the versioned on-wire/on-store container for one checkpointed
// application kernel.
//
// Layout (all little-endian):
//   u32 magic "CKPT"   u32 version   u32 record_count
//   record_count x { u16 type, u16 flags, u32 length, length bytes payload,
//                    u32 crc32(type|flags|length|payload) }
//
// Each record carries its own CRC so a single flipped byte anywhere --
// header, framing, or payload -- fails Parse() before any state is applied
// to a target kernel ("never load a partial kernel").

#ifndef SRC_CKPT_IMAGE_H_
#define SRC_CKPT_IMAGE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ckckpt {

enum class RecordType : uint16_t {
  kHeader = 1,         // kernel name, capture time, quiesce writeback counts
  kLaunchParams = 2,   // SRM resource grant needed to relaunch (srm.cc)
  kBackingMeta = 3,    // backing store geometry + allocators
  kBackingPage = 4,    // one non-zero backing-store page
  kSpace = 5,          // one VSpace: flags + every page record
  kPageContents = 6,   // contents of one resident owned frame
  kSharedFrame = 7,    // contents of a referenced non-owned frame (cow source)
  kThread = 8,         // one ThreadRec incl. saved register context
  kPagingStats = 9,    // cumulative paging counters
  kAppExtra = 10,      // subclass blob (process tables, query state, ...)
  kEnd = 11,           // explicit terminator (truncation detector)
};

struct CkptRecord {
  RecordType type = RecordType::kEnd;
  std::vector<uint8_t> payload;
};

class CkptImage {
 public:
  static constexpr uint32_t kMagic = 0x54504b43u;  // "CKPT"
  static constexpr uint32_t kVersion = 1;

  void Append(RecordType type, std::vector<uint8_t> payload) {
    records_.push_back(CkptRecord{type, std::move(payload)});
  }
  const std::vector<CkptRecord>& records() const { return records_; }
  // First record of `type`, or nullptr.
  const CkptRecord* Find(RecordType type) const;

  // Encode with framing and per-record CRCs.
  std::vector<uint8_t> Serialize() const;
  // Decode and verify every CRC. Returns false (with `error` set) on any
  // corruption; `out` is untouched on failure.
  static bool Parse(const std::vector<uint8_t>& bytes, CkptImage* out, std::string* error);

  // Serialized size in bytes (what migration ships / the store holds).
  size_t SizeBytes() const;

 private:
  std::vector<CkptRecord> records_;
};

}  // namespace ckckpt

#endif  // SRC_CKPT_IMAGE_H_

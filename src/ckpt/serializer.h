// Deterministic binary serialization for checkpoint images.
//
// The writeback protocol externalizes kernel state into application-kernel
// records ("writeback completeness", docs/CHECKPOINT.md); this Writer/Reader
// pair turns those records into a byte stream that is identical for identical
// state: fixed little-endian encoding, no padding, no pointers, no host
// addresses. Every record in a CkptImage is framed and CRC-protected so a
// corrupted image fails loudly at parse time instead of loading a partial
// kernel.

#ifndef SRC_CKPT_SERIALIZER_H_
#define SRC_CKPT_SERIALIZER_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace ckckpt {

// CRC-32 (IEEE 802.3 polynomial, reflected) over `data`. `seed` chains calls.
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

// Append-only little-endian encoder.
class Writer {
 public:
  void U8(uint8_t v) { buf_.push_back(v); }
  void U16(uint16_t v) {
    U8(static_cast<uint8_t>(v));
    U8(static_cast<uint8_t>(v >> 8));
  }
  void U32(uint32_t v) {
    U16(static_cast<uint16_t>(v));
    U16(static_cast<uint16_t>(v >> 16));
  }
  void U64(uint64_t v) {
    U32(static_cast<uint32_t>(v));
    U32(static_cast<uint32_t>(v >> 32));
  }
  void Bool(bool v) { U8(v ? 1 : 0); }
  void Bytes(const void* data, size_t len) {
    if (len == 0) {
      return;  // data may be null (e.g. an empty record payload)
    }
    const uint8_t* p = static_cast<const uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + len);
  }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    Bytes(s.data(), s.size());
  }

  size_t size() const { return buf_.size(); }
  const std::vector<uint8_t>& data() const { return buf_; }
  std::vector<uint8_t> Take() { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

// Bounds-checked decoder. Any overrun (or an explicit Fail() from a semantic
// check) makes the reader sticky-bad; reads after that return zeros, so
// callers can decode a whole record and check ok() once at the end.
class Reader {
 public:
  Reader(const uint8_t* data, size_t len) : data_(data), len_(len) {}
  explicit Reader(const std::vector<uint8_t>& buf) : Reader(buf.data(), buf.size()) {}

  uint8_t U8() {
    if (!Need(1)) {
      return 0;
    }
    return data_[pos_++];
  }
  uint16_t U16() {
    uint16_t lo = U8();
    return static_cast<uint16_t>(lo | (static_cast<uint16_t>(U8()) << 8));
  }
  uint32_t U32() {
    uint32_t lo = U16();
    return lo | (static_cast<uint32_t>(U16()) << 16);
  }
  uint64_t U64() {
    uint64_t lo = U32();
    return lo | (static_cast<uint64_t>(U32()) << 32);
  }
  bool Bool() { return U8() != 0; }
  void Bytes(void* out, size_t n) {
    if (n == 0) {
      return;  // out may be null (e.g. an empty record payload)
    }
    if (!Need(n)) {
      std::memset(out, 0, n);
      return;
    }
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
  }
  std::string Str() {
    uint32_t n = U32();
    if (!Need(n)) {
      return std::string();
    }
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  void Fail(const std::string& why) {
    ok_ = false;
    if (error_.empty()) {
      error_ = why;
    }
  }
  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }
  size_t remaining() const { return len_ - pos_; }
  // A fully-consumed record with no decode errors.
  bool Done() const { return ok_ && pos_ == len_; }

 private:
  bool Need(size_t n) {
    if (!ok_ || len_ - pos_ < n) {
      Fail("record truncated");
      return false;
    }
    return true;
  }

  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
  bool ok_ = true;
  std::string error_;
};

}  // namespace ckckpt

#endif  // SRC_CKPT_SERIALIZER_H_

#include "src/ckpt/serializer.h"

namespace ckckpt {

namespace {

struct CrcTable {
  uint32_t entries[256];
  CrcTable() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
      }
      entries[i] = c;
    }
  }
};

const CrcTable& Table() {
  static const CrcTable table;
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t len, uint32_t seed) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  const CrcTable& table = Table();
  uint32_t c = seed ^ 0xffffffffu;
  for (size_t i = 0; i < len; ++i) {
    c = table.entries[(c ^ p[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

}  // namespace ckckpt

#include "src/ckpt/checkpoint.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace ckckpt {

using ckapp::AppKernelBase;
using ckapp::PageRecord;
using ckapp::ThreadRec;
using ckapp::VSpace;
using cksim::kPageSize;
using cksim::PhysAddr;
using cksim::VirtAddr;

namespace {

bool PageIsZero(const uint8_t* data) {
  for (uint32_t i = 0; i < kPageSize; ++i) {
    if (data[i] != 0) {
      return false;
    }
  }
  return true;
}

void WritePageRecord(Writer& w, VirtAddr vaddr, const PageRecord& page) {
  w.U32(vaddr);
  w.U8(static_cast<uint8_t>(page.where));
  w.Bool(page.writable);
  w.Bool(page.message);
  w.Bool(page.locked);
  w.Bool(page.dirty);
  w.Bool(page.frame_owned);
  w.Bool(page.mapping_loaded);
  w.U32(page.backing_page);
  w.U32(page.frame);
  w.U32(page.fixed_frame);
  w.U32(page.signal_thread);
  w.U32(page.cow_source);
}

struct DecodedPage {
  VirtAddr vaddr = 0;
  PageRecord page;
};

struct DecodedSpace {
  bool locked = false;
  std::vector<DecodedPage> pages;
  std::vector<VirtAddr> resident_fifo;
};

void ReadPageRecord(Reader& r, DecodedPage* out) {
  out->vaddr = r.U32();
  uint8_t where = r.U8();
  if (where > static_cast<uint8_t>(PageRecord::Where::kResident)) {
    r.Fail("page record with invalid residency state");
    return;
  }
  out->page.where = static_cast<PageRecord::Where>(where);
  out->page.writable = r.Bool();
  out->page.message = r.Bool();
  out->page.locked = r.Bool();
  out->page.dirty = r.Bool();
  out->page.frame_owned = r.Bool();
  out->page.mapping_loaded = r.Bool();
  out->page.backing_page = r.U32();
  out->page.frame = r.U32();
  out->page.fixed_frame = r.U32();
  out->page.signal_thread = r.U32();
  out->page.cow_source = r.U32();
}

}  // namespace

void AppKernelState::Capture(AppKernelBase& app, ck::CkApi& api, CkptImage* image) {
  // Header: identity and capture time (informational; restore keys off the
  // typed records, not the header).
  {
    Writer w;
    w.Str(app.name_);
    w.U64(api.now());
    w.U32(static_cast<uint32_t>(app.spaces_.size()));
    w.U32(static_cast<uint32_t>(app.threads_.size()));
    image->Append(RecordType::kHeader, w.Take());
  }

  // Backing store: geometry, allocators, then every non-zero page (restore
  // starts from a zeroed store, so zero pages need no record).
  {
    Writer w;
    w.U32(app.backing_.page_count());
    w.U64(app.backing_.latency());
    w.U32(app.image_next_);
    w.U32(app.swap_next_);
    image->Append(RecordType::kBackingMeta, w.Take());
  }
  for (uint32_t p = 0; p < app.backing_.page_count(); ++p) {
    const uint8_t* data = app.backing_.PageData(p);
    if (PageIsZero(data)) {
      continue;
    }
    Writer w;
    w.U32(p);
    w.Bytes(data, kPageSize);
    image->Append(RecordType::kBackingPage, w.Take());
  }

  // Spaces: every page record plus the FIFO replacement order (part of the
  // observable state -- it decides future victim choice).
  std::set<PhysAddr> owned_frames;
  for (const auto& sp : app.spaces_) {
    Writer w;
    w.Bool(sp->locked);
    w.U32(static_cast<uint32_t>(sp->pages.size()));
    for (const auto& [vaddr, page] : sp->pages) {
      WritePageRecord(w, vaddr, page);
      if (page.where == PageRecord::Where::kResident && page.frame_owned && page.frame != 0) {
        owned_frames.insert(page.frame);
      }
    }
    w.U32(static_cast<uint32_t>(sp->resident_fifo.size()));
    for (VirtAddr vaddr : sp->resident_fifo) {
      w.U32(vaddr);
    }
    image->Append(RecordType::kSpace, w.Take());
  }

  // Contents of every resident frame: owned frames (the app's working set)
  // and fixed frames alike -- message-channel pages carry in-flight payloads
  // that must follow the kernel to the target machine.
  std::vector<uint8_t> buf(kPageSize);
  for (uint32_t s = 0; s < app.spaces_.size(); ++s) {
    for (const auto& [vaddr, page] : app.spaces_[s]->pages) {
      if (page.where != PageRecord::Where::kResident || page.frame == 0) {
        continue;
      }
      api.ReadPhys(page.frame, buf.data(), kPageSize);
      Writer w;
      w.U32(s);
      w.U32(vaddr);
      // Tier placement (docs/TIERING.md) is observable state: it decides the
      // frame's access cost and future victim choice, so it migrates with
      // the contents.
      w.U8(api.FrameTier(page.frame));
      w.Bytes(buf.data(), kPageSize);
      image->Append(RecordType::kPageContents, w.Take());
    }
  }

  // Deferred-copy source frames that are not owned by any page record (e.g.
  // a template frame the app mapped copy-on-write): capture their contents
  // keyed by the old frame address so restore can rebuild the sharing.
  std::set<PhysAddr> shared_done;
  for (const auto& sp : app.spaces_) {
    for (const auto& [vaddr, page] : sp->pages) {
      PhysAddr source = page.cow_source;
      if (source == 0 || owned_frames.count(source) != 0 || shared_done.count(source) != 0) {
        continue;
      }
      shared_done.insert(source);
      api.ReadPhys(source, buf.data(), kPageSize);
      Writer w;
      w.U32(source);
      w.U8(api.FrameTier(source));
      w.Bytes(buf.data(), kPageSize);
      image->Append(RecordType::kSharedFrame, w.Take());
    }
  }

  // Threads: the saved contexts are exactly what the writeback protocol
  // deposited in the records.
  for (const auto& rec : app.threads_) {
    Writer w;
    w.U32(rec->space_index);
    w.U8(rec->priority);
    w.U8(rec->cpu_hint);
    w.Bool(rec->locked);
    w.Bool(rec->finished);
    w.Bool(rec->was_blocked);
    w.Bool(rec->paging_blocked);
    w.Bool(rec->native_record);
    w.U32(rec->signal_handler);
    w.U32(rec->exception_stack);
    w.U64(rec->total_consumed);
    for (uint32_t reg : rec->saved.regs) {
      w.U32(reg);
    }
    w.U32(rec->saved.pc);
    image->Append(RecordType::kThread, w.Take());
  }

  {
    Writer w;
    w.U64(app.paging_stats_.faults);
    w.U64(app.paging_stats_.zero_fills);
    w.U64(app.paging_stats_.pages_in);
    w.U64(app.paging_stats_.pages_out);
    w.U64(app.paging_stats_.evictions);
    w.U64(app.paging_stats_.illegal_accesses);
    w.U64(app.paging_stats_.cow_copies);
    w.U64(app.paging_stats_.stale_retries);
    image->Append(RecordType::kPagingStats, w.Take());
  }

  {
    Writer w;
    app.CaptureExtra(w, api);
    image->Append(RecordType::kAppExtra, w.Take());
  }

  image->Append(RecordType::kEnd, {});
}

bool AppKernelState::Restore(AppKernelBase& app, ck::CkApi& api, const CkptImage& image,
                             const RestoreOptions& options, std::string* error) {
  auto fail = [&](const std::string& why) {
    if (error != nullptr) {
      *error = "restore: " + why;
    }
    return false;
  };
  if (!app.spaces_.empty() || !app.threads_.empty()) {
    return fail("target kernel is not a fresh instance");
  }

  // ---- decode everything before touching the target ----
  const CkptRecord* meta = image.Find(RecordType::kBackingMeta);
  if (meta == nullptr || image.Find(RecordType::kEnd) == nullptr) {
    return fail("image missing required records");
  }
  uint32_t backing_pages = 0;
  uint32_t image_next = 0;
  uint32_t swap_next = 0;
  {
    Reader r(meta->payload);
    backing_pages = r.U32();
    r.U64();  // latency: the target instance's own configuration governs
    image_next = r.U32();
    swap_next = r.U32();
    if (!r.ok()) {
      return fail("bad backing metadata: " + r.error());
    }
  }
  if (backing_pages != app.backing_.page_count()) {
    std::ostringstream os;
    os << "backing store geometry mismatch (image " << backing_pages << " pages, target "
       << app.backing_.page_count() << ")";
    return fail(os.str());
  }

  std::vector<DecodedSpace> spaces;
  std::vector<ThreadRec> threads;
  // (space, vaddr) -> contents + captured tier of the captured owned frame.
  struct CapturedFrame {
    const uint8_t* data = nullptr;
    uint8_t tier = 0;
  };
  std::map<std::pair<uint32_t, VirtAddr>, CapturedFrame> contents;
  struct SharedFrame {
    PhysAddr old_frame = 0;
    CapturedFrame captured;
  };
  std::vector<SharedFrame> shared_frames;
  std::vector<std::pair<uint32_t, const uint8_t*>> backing_writes;

  for (const CkptRecord& rec : image.records()) {
    Reader r(rec.payload);
    switch (rec.type) {
      case RecordType::kSpace: {
        DecodedSpace sp;
        sp.locked = r.Bool();
        uint32_t pages = r.U32();
        for (uint32_t i = 0; i < pages && r.ok(); ++i) {
          DecodedPage dp;
          ReadPageRecord(r, &dp);
          sp.pages.push_back(dp);
        }
        uint32_t fifo = r.U32();
        for (uint32_t i = 0; i < fifo && r.ok(); ++i) {
          sp.resident_fifo.push_back(r.U32());
        }
        if (!r.Done()) {
          return fail("bad space record: " + r.error());
        }
        spaces.push_back(std::move(sp));
        break;
      }
      case RecordType::kThread: {
        ThreadRec t;
        t.space_index = r.U32();
        t.priority = r.U8();
        t.cpu_hint = r.U8();
        t.locked = r.Bool();
        t.finished = r.Bool();
        t.was_blocked = r.Bool();
        t.paging_blocked = r.Bool();
        t.native_record = r.Bool();
        t.signal_handler = r.U32();
        t.exception_stack = r.U32();
        t.total_consumed = r.U64();
        for (uint32_t& reg : t.saved.regs) {
          reg = r.U32();
        }
        t.saved.pc = r.U32();
        if (!r.Done()) {
          return fail("bad thread record: " + r.error());
        }
        threads.push_back(t);
        break;
      }
      case RecordType::kPageContents: {
        uint32_t space = r.U32();
        VirtAddr vaddr = r.U32();
        uint8_t tier = r.U8();
        if (!r.ok() || r.remaining() != kPageSize || tier >= cksim::kMemTierCount) {
          return fail("bad page-contents record");
        }
        contents[{space, vaddr}] = CapturedFrame{rec.payload.data() + 9, tier};
        break;
      }
      case RecordType::kSharedFrame: {
        PhysAddr old_frame = r.U32();
        uint8_t tier = r.U8();
        if (!r.ok() || r.remaining() != kPageSize || tier >= cksim::kMemTierCount) {
          return fail("bad shared-frame record");
        }
        shared_frames.push_back(SharedFrame{old_frame, {rec.payload.data() + 5, tier}});
        break;
      }
      case RecordType::kBackingPage: {
        uint32_t index = r.U32();
        if (!r.ok() || r.remaining() != kPageSize || index >= backing_pages) {
          return fail("bad backing-page record");
        }
        backing_writes.emplace_back(index, rec.payload.data() + 4);
        break;
      }
      default:
        break;  // header/meta/stats/extra handled elsewhere
    }
  }

  for (const DecodedSpace& sp : spaces) {
    for (const DecodedPage& dp : sp.pages) {
      if (dp.page.signal_thread != ckapp::kNoThread && dp.page.signal_thread >= threads.size()) {
        return fail("page record names a signal thread beyond the thread table");
      }
    }
  }
  for (const ThreadRec& t : threads) {
    if (t.space_index >= spaces.size()) {
      return fail("thread record names a space beyond the space table");
    }
  }

  // Every owned resident page must come with its captured contents, and the
  // target pool must be able to materialize all of them (plus the shared
  // deferred-copy sources). Checked before any mutation.
  uint32_t owned_resident = 0;
  for (uint32_t s = 0; s < spaces.size(); ++s) {
    for (const DecodedPage& dp : spaces[s].pages) {
      if (dp.page.where != PageRecord::Where::kResident || !dp.page.frame_owned) {
        continue;
      }
      if (contents.find({s, dp.vaddr}) == contents.end()) {
        return fail("resident page without captured contents");
      }
      ++owned_resident;
    }
  }
  uint32_t frames_needed = owned_resident + static_cast<uint32_t>(shared_frames.size());
  if (app.frames_.free_count() < frames_needed) {
    std::ostringstream os;
    os << "target frame pool too small (" << app.frames_.free_count() << " free, need "
       << frames_needed << ")";
    return fail(os.str());
  }

  // ---- apply ----
  for (auto [index, data] : backing_writes) {
    std::memcpy(app.backing_.PageData(index), data, kPageSize);
  }
  app.image_next_ = image_next;
  app.swap_next_ = swap_next;

  // Frame translation: explicit remaps first (device/channel regions), then
  // freshly allocated frames for owned contents and shared sources.
  std::map<PhysAddr, PhysAddr> xlat;
  for (const FrameRemap& remap : options.frame_remaps) {
    for (uint32_t i = 0; i < remap.pages; ++i) {
      xlat[remap.old_base + i * kPageSize] = remap.new_base + i * kPageSize;
    }
  }
  auto translate = [&xlat](PhysAddr old_frame) {
    auto it = xlat.find(old_frame);
    return it == xlat.end() ? old_frame : it->second;
  };
  // Old owned frame (per space/vaddr) -> freshly allocated frame, filled
  // with the captured contents. Owned frames enter the translation map too:
  // a cow_source may point at another page's owned frame.
  std::map<std::pair<uint32_t, VirtAddr>, PhysAddr> new_frame_of;
  for (uint32_t s = 0; s < spaces.size(); ++s) {
    for (const DecodedPage& dp : spaces[s].pages) {
      if (dp.page.where != PageRecord::Where::kResident || !dp.page.frame_owned) {
        continue;
      }
      PhysAddr frame = app.frames_.Allocate();
      const CapturedFrame& captured = contents.at({s, dp.vaddr});
      api.WritePhys(frame, captured.data, kPageSize);
      api.SetFrameTier(frame, captured.tier);
      new_frame_of[{s, dp.vaddr}] = frame;
      if (dp.page.frame != 0) {
        xlat[dp.page.frame] = frame;
      }
    }
  }
  for (const SharedFrame& shared : shared_frames) {
    PhysAddr frame = app.frames_.Allocate();
    api.WritePhys(frame, shared.captured.data, kPageSize);
    api.SetFrameTier(frame, shared.captured.tier);
    xlat[shared.old_frame] = frame;
  }

  for (uint32_t s = 0; s < spaces.size(); ++s) {
    auto vs = std::make_unique<VSpace>();
    vs->cookie = s;
    vs->locked = spaces[s].locked;
    vs->loaded = false;
    for (const DecodedPage& dp : spaces[s].pages) {
      PageRecord page = dp.page;
      page.mapping_loaded = false;  // mappings fault back in on the target
      if (page.cow_source != 0) {
        page.cow_source = translate(page.cow_source);
      }
      if (page.fixed_frame != 0) {
        page.fixed_frame = translate(page.fixed_frame);
      }
      if (page.where == PageRecord::Where::kResident) {
        if (page.frame_owned) {
          page.frame = new_frame_of.at({s, dp.vaddr});
        } else {
          // Fixed frame (device region, message channel): translate through
          // the caller's remaps and carry the captured payload across.
          page.frame = translate(page.frame);
          auto it = contents.find({s, dp.vaddr});
          if (it != contents.end() && page.frame != 0) {
            if (api.WritePhys(page.frame, it->second.data, kPageSize) != ckbase::CkStatus::kOk) {
              *error = "no write access to restored fixed frame (missing remap or grant?)";
              return false;
            }
          }
        }
      } else {
        page.frame = 0;
      }
      vs->pages[dp.vaddr] = page;
    }
    vs->resident_fifo.assign(spaces[s].resident_fifo.begin(), spaces[s].resident_fifo.end());
    app.spaces_.push_back(std::move(vs));
  }

  app.halted_threads_ = 0;
  for (uint32_t i = 0; i < threads.size(); ++i) {
    auto rec = std::make_unique<ThreadRec>(threads[i]);
    rec->cookie = i;
    rec->loaded = false;
    rec->native = nullptr;
    if (rec->finished) {
      ++app.halted_threads_;
    }
    app.threads_.push_back(std::move(rec));
  }

  if (const CkptRecord* stats = image.Find(RecordType::kPagingStats)) {
    Reader r(stats->payload);
    app.paging_stats_.faults = r.U64();
    app.paging_stats_.zero_fills = r.U64();
    app.paging_stats_.pages_in = r.U64();
    app.paging_stats_.pages_out = r.U64();
    app.paging_stats_.evictions = r.U64();
    app.paging_stats_.illegal_accesses = r.U64();
    app.paging_stats_.cow_copies = r.U64();
    app.paging_stats_.stale_retries = r.U64();
    if (!r.Done()) {
      return fail("bad paging-stats record: " + r.error());
    }
  }

  if (const CkptRecord* extra = image.Find(RecordType::kAppExtra)) {
    Reader r(extra->payload);
    app.RestoreExtra(r, api);
    if (!r.ok()) {
      return fail("subclass state: " + r.error());
    }
  }
  return true;
}

bool AppKernelState::Resume(AppKernelBase& app, ck::CkApi& api, std::string* error) {
  auto fail = [&](const std::string& why) {
    if (error != nullptr) {
      *error = "resume: " + why;
    }
    return false;
  };
  for (uint32_t i = 0; i < app.threads_.size(); ++i) {
    ThreadRec& rec = *app.threads_[i];
    if (rec.finished || !app.ShouldReloadOnRestore(i)) {
      continue;
    }
    if (rec.native_record && rec.native == nullptr) {
      return fail("native thread " + std::to_string(i) + " was not rebound by RestoreExtra");
    }
    if (rec.paging_blocked) {
      // The page-in this thread was waiting for died with the source MPM;
      // run it again from the faulting instruction.
      rec.paging_blocked = false;
      rec.was_blocked = false;
    }
    ckbase::CkStatus status = app.EnsureThreadLoaded(api, i);
    if (status != ckbase::CkStatus::kOk) {
      return fail("thread " + std::to_string(i) + " failed to reload");
    }
  }
  return true;
}

std::vector<std::pair<std::string, uint64_t>> AppKernelState::Digest(AppKernelBase& app,
                                                                     ck::CkApi& api) {
  std::vector<std::pair<std::string, uint64_t>> out;
  auto add = [&out](const std::string& name, uint64_t value) { out.emplace_back(name, value); };

  add("space_count", app.spaces_.size());
  add("thread_count", app.threads_.size());
  add("image_next", app.image_next_);
  add("swap_next", app.swap_next_);
  add("halted_threads", app.halted_threads_);

  std::vector<uint8_t> buf(kPageSize);
  for (uint32_t s = 0; s < app.spaces_.size(); ++s) {
    VSpace& sp = *app.spaces_[s];
    std::ostringstream sb;
    sb << "space" << s << ".";
    std::string prefix = sb.str();
    add(prefix + "locked", sp.locked ? 1 : 0);
    add(prefix + "pages", sp.pages.size());
    // FIFO order matters for future replacement; fold it into one CRC.
    uint32_t fifo_crc = 0;
    for (VirtAddr vaddr : sp.resident_fifo) {
      fifo_crc = Crc32(&vaddr, sizeof(vaddr), fifo_crc);
    }
    add(prefix + "fifo_crc", fifo_crc);
    for (auto& [vaddr, page] : sp.pages) {
      std::ostringstream pb;
      pb << prefix << "page" << std::hex << vaddr << ".";
      std::string pp = pb.str();
      add(pp + "where", static_cast<uint64_t>(page.where));
      add(pp + "flags", (page.writable ? 1u : 0u) | (page.message ? 2u : 0u) |
                            (page.locked ? 4u : 0u) | (page.dirty ? 8u : 0u) |
                            (page.frame_owned ? 16u : 0u) | (page.fixed_frame != 0 ? 32u : 0u) |
                            (page.cow_source != 0 ? 64u : 0u));
      add(pp + "backing_page", page.backing_page);
      add(pp + "signal_thread", page.signal_thread);
      if (page.where == PageRecord::Where::kResident && page.frame != 0) {
        api.ReadPhys(page.frame, buf.data(), kPageSize);
        add(pp + "contents_crc", Crc32(buf.data(), kPageSize));
        if (page.frame_owned) {
          // Tier placement is part of the observable state for frames the
          // restore rebuilds (fixed frames keep the target's placement).
          add(pp + "tier", api.FrameTier(page.frame));
        }
      }
      if (page.backing_page != ckapp::kNoBackingPage &&
          page.backing_page < app.backing_.page_count()) {
        add(pp + "backing_crc", Crc32(app.backing_.PageData(page.backing_page), kPageSize));
      }
    }
  }

  for (uint32_t i = 0; i < app.threads_.size(); ++i) {
    ThreadRec& rec = *app.threads_[i];
    std::ostringstream tb;
    tb << "thread" << i << ".";
    std::string tp = tb.str();
    add(tp + "space", rec.space_index);
    add(tp + "priority", rec.priority);
    add(tp + "cpu_hint", rec.cpu_hint);
    add(tp + "flags", (rec.locked ? 1u : 0u) | (rec.finished ? 2u : 0u) |
                          (rec.was_blocked ? 4u : 0u) | (rec.paging_blocked ? 8u : 0u) |
                          (rec.native_record ? 16u : 0u));
    add(tp + "signal_handler", rec.signal_handler);
    add(tp + "exception_stack", rec.exception_stack);
    add(tp + "total_consumed", rec.total_consumed);
    uint32_t ctx_crc = Crc32(rec.saved.regs, sizeof(rec.saved.regs));
    ctx_crc = Crc32(&rec.saved.pc, sizeof(rec.saved.pc), ctx_crc);
    add(tp + "context_crc", ctx_crc);
  }

  add("stats.faults", app.paging_stats_.faults);
  add("stats.zero_fills", app.paging_stats_.zero_fills);
  add("stats.pages_in", app.paging_stats_.pages_in);
  add("stats.pages_out", app.paging_stats_.pages_out);
  add("stats.evictions", app.paging_stats_.evictions);
  add("stats.illegal_accesses", app.paging_stats_.illegal_accesses);
  add("stats.cow_copies", app.paging_stats_.cow_copies);
  add("stats.stale_retries", app.paging_stats_.stale_retries);
  return out;
}

}  // namespace ckckpt

#include "src/ckpt/image.h"

#include "src/ckpt/serializer.h"

namespace ckckpt {

const CkptRecord* CkptImage::Find(RecordType type) const {
  for (const CkptRecord& rec : records_) {
    if (rec.type == type) {
      return &rec;
    }
  }
  return nullptr;
}

std::vector<uint8_t> CkptImage::Serialize() const {
  Writer w;
  w.U32(kMagic);
  w.U32(kVersion);
  w.U32(static_cast<uint32_t>(records_.size()));
  for (const CkptRecord& rec : records_) {
    Writer frame;
    frame.U16(static_cast<uint16_t>(rec.type));
    frame.U16(0);  // flags, reserved
    frame.U32(static_cast<uint32_t>(rec.payload.size()));
    frame.Bytes(rec.payload.data(), rec.payload.size());
    uint32_t crc = Crc32(frame.data().data(), frame.size());
    w.Bytes(frame.data().data(), frame.size());
    w.U32(crc);
  }
  return w.Take();
}

size_t CkptImage::SizeBytes() const {
  size_t total = 12;  // magic + version + count
  for (const CkptRecord& rec : records_) {
    total += 8 + rec.payload.size() + 4;  // frame + payload + crc
  }
  return total;
}

bool CkptImage::Parse(const std::vector<uint8_t>& bytes, CkptImage* out, std::string* error) {
  auto fail = [&](const std::string& why) {
    if (error != nullptr) {
      *error = why;
    }
    return false;
  };
  Reader r(bytes);
  if (r.U32() != kMagic) {
    return fail("bad magic (not a checkpoint image)");
  }
  uint32_t version = r.U32();
  if (version != kVersion) {
    return fail("unsupported image version " + std::to_string(version));
  }
  uint32_t count = r.U32();
  CkptImage image;
  bool saw_end = false;
  for (uint32_t i = 0; i < count; ++i) {
    uint16_t type = r.U16();
    uint16_t flags = r.U16();
    uint32_t length = r.U32();
    if (!r.ok() || r.remaining() < static_cast<size_t>(length) + 4) {
      return fail("image truncated in record " + std::to_string(i));
    }
    CkptRecord rec;
    rec.type = static_cast<RecordType>(type);
    rec.payload.resize(length);
    r.Bytes(rec.payload.data(), length);
    uint32_t stored_crc = r.U32();

    Writer frame;
    frame.U16(type);
    frame.U16(flags);
    frame.U32(length);
    frame.Bytes(rec.payload.data(), rec.payload.size());
    uint32_t computed = Crc32(frame.data().data(), frame.size());
    if (computed != stored_crc) {
      return fail("CRC mismatch in record " + std::to_string(i) + " (type " +
                  std::to_string(type) + ")");
    }
    saw_end = saw_end || rec.type == RecordType::kEnd;
    image.records_.push_back(std::move(rec));
  }
  if (!r.ok()) {
    return fail("image truncated");
  }
  if (!saw_end) {
    return fail("image missing end record (truncated record list)");
  }
  *out = std::move(image);
  return true;
}

}  // namespace ckckpt

#include "src/sim/machine.h"

namespace cksim {

Machine::Machine(const MachineConfig& config) : config_(config), memory_(config.memory_bytes) {
  for (uint32_t i = 0; i < config.cpu_count; ++i) {
    cpus_.push_back(std::make_unique<Cpu>(i, memory_, config_.cost));
  }
}

void Machine::EnableTracing(uint32_t capacity_per_cpu) {
  if (tracer_ != nullptr) {
    return;
  }
  tracer_ = std::make_unique<obs::Tracer>(cpu_count(), capacity_per_cpu);
  for (uint32_t i = 0; i < cpu_count(); ++i) {
    cpus_[i]->AttachTrace(&tracer_->ring(i));
  }
}

bool Machine::DeliverDoorbell(PhysAddr addr, Cycles when) {
  for (Device* device : devices_) {
    if (addr >= device->region_base() && addr < device->region_base() + device->region_size()) {
      device->OnDoorbell(addr, when);
      return true;
    }
  }
  return false;
}

Cycles Machine::Now() const {
  Cycles now = ~Cycles{0};
  for (const auto& cpu : cpus_) {
    if (cpu->clock() < now) {
      now = cpu->clock();
    }
  }
  return now;
}

bool Machine::Step() {
  if (client_ == nullptr || halted_) {
    return false;
  }

  // Earliest device event vs. earliest CPU.
  Cycles device_at = Device::kNoEvent;
  Device* due_device = nullptr;
  for (Device* device : devices_) {
    Cycles at = device->NextEventAt();
    if (at < device_at) {
      device_at = at;
      due_device = device;
    }
  }

  Cpu* next_cpu = cpus_[0].get();
  for (auto& cpu : cpus_) {
    if (cpu->clock() < next_cpu->clock()) {
      next_cpu = cpu.get();
    }
  }

  if (due_device != nullptr && device_at <= next_cpu->clock()) {
    due_device->Run(device_at);
    return true;
  }

  Cycles before = next_cpu->clock();
  client_->OnCpuTurn(*next_cpu);
  if (next_cpu->clock() == before) {
    // The kernel made no progress (should not happen; idle advances). Force
    // time forward so the simulation cannot livelock.
    next_cpu->Advance(config_.cost.idle_tick);
  }
  return true;
}

void Machine::RunUntil(Cycles deadline) {
  while (!halted_ && Now() < deadline) {
    if (!Step()) {
      return;
    }
  }
}

}  // namespace cksim

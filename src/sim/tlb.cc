#include "src/sim/tlb.h"

namespace cksim {

Tlb::Tlb(uint32_t entries, uint32_t ways) : entries_(entries), sets_(entries / ways), ways_(ways) {}

uint32_t Tlb::SetOf(uint16_t asid, uint32_t vpage) const {
  // Mix asid and page so different spaces do not collide on the same sets.
  uint32_t h = vpage ^ (static_cast<uint32_t>(asid) * 0x9e3779b1u);
  return (h % sets_) * ways_;
}

Tlb::LookupResult Tlb::Lookup(uint16_t asid, uint32_t vpage) {
  uint32_t base = SetOf(asid, vpage);
  for (uint32_t w = 0; w < ways_; ++w) {
    TlbEntry& e = entries_[base + w];
    if (e.valid && e.asid == asid && e.vpage == vpage) {
      e.lru = ++tick_;
      ++hits_;
      return LookupResult{true, e.pframe, e.flags};
    }
  }
  ++misses_;
  return LookupResult{};
}

void Tlb::Insert(uint16_t asid, uint32_t vpage, uint32_t pframe, uint8_t flags) {
  uint32_t base = SetOf(asid, vpage);
  // Reuse an existing entry for this page if present, else the LRU way.
  TlbEntry* victim = &entries_[base];
  for (uint32_t w = 0; w < ways_; ++w) {
    TlbEntry& e = entries_[base + w];
    if (e.valid && e.asid == asid && e.vpage == vpage) {
      victim = &e;
      break;
    }
    if (!e.valid) {
      victim = &e;
      break;
    }
    if (e.lru < victim->lru) {
      victim = &e;
    }
  }
  *victim = TlbEntry{true, asid, vpage, pframe, flags, ++tick_};
}

int32_t Tlb::Probe(uint16_t asid, uint32_t vpage) const {
  uint32_t base = SetOf(asid, vpage);
  for (uint32_t w = 0; w < ways_; ++w) {
    const TlbEntry& e = entries_[base + w];
    if (e.valid && e.asid == asid && e.vpage == vpage) {
      return static_cast<int32_t>(base + w);
    }
  }
  return -1;
}

void Tlb::FlushPage(uint16_t asid, uint32_t vpage) {
  uint32_t base = SetOf(asid, vpage);
  for (uint32_t w = 0; w < ways_; ++w) {
    TlbEntry& e = entries_[base + w];
    if (e.valid && e.asid == asid && e.vpage == vpage) {
      e.valid = false;
    }
  }
}

void Tlb::FlushAsid(uint16_t asid) {
  for (TlbEntry& e : entries_) {
    if (e.valid && e.asid == asid) {
      e.valid = false;
    }
  }
}

void Tlb::FlushFrame(uint32_t pframe) {
  for (TlbEntry& e : entries_) {
    if (e.valid && e.pframe == pframe) {
      e.valid = false;
    }
  }
}

void Tlb::FlushAll() {
  for (TlbEntry& e : entries_) {
    e.valid = false;
  }
}

}  // namespace cksim

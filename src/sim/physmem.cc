#include "src/sim/physmem.h"

#include <cstdio>
#include <cstdlib>

namespace cksim {

PhysicalMemory::PhysicalMemory(uint32_t size_bytes) {
  // Round up to a whole number of page groups.
  uint32_t rounded = ((size_bytes + kPageGroupBytes - 1) / kPageGroupBytes) * kPageGroupBytes;
  bytes_.assign(rounded, 0);
  frame_gen_.assign(rounded / kPageSize, 0);
  frame_tier_.assign(rounded / kPageSize, static_cast<uint8_t>(MemTier::kNone));
  tier_count_[static_cast<uint8_t>(MemTier::kNone)] = rounded / kPageSize;
}

void PhysicalMemory::Check(PhysAddr addr, uint32_t len) const {
  if (!Contains(addr, len)) {
    std::fprintf(stderr, "physmem: access [%#x, +%u) outside %#x bytes\n", addr, len, size());
    std::abort();
  }
}

uint32_t PhysicalMemory::ReadWord(PhysAddr addr) const {
  Check(addr, 4);
  uint32_t value;
  std::memcpy(&value, bytes_.data() + addr, 4);
  return value;
}

void PhysicalMemory::WriteWord(PhysAddr addr, uint32_t value) {
  Check(addr, 4);
  std::memcpy(bytes_.data() + addr, &value, 4);
  BumpFrameGeneration(addr);
}

uint8_t PhysicalMemory::ReadByte(PhysAddr addr) const {
  Check(addr, 1);
  return bytes_[addr];
}

void PhysicalMemory::WriteByte(PhysAddr addr, uint8_t value) {
  Check(addr, 1);
  bytes_[addr] = value;
  BumpFrameGeneration(addr);
}

void PhysicalMemory::Read(PhysAddr addr, void* out, uint32_t len) const {
  Check(addr, len);
  std::memcpy(out, bytes_.data() + addr, len);
}

void PhysicalMemory::Write(PhysAddr addr, const void* data, uint32_t len) {
  Check(addr, len);
  std::memcpy(bytes_.data() + addr, data, len);
  BumpFrameGenerationRange(addr, len);
}

void PhysicalMemory::Zero(PhysAddr addr, uint32_t len) {
  Check(addr, len);
  std::memset(bytes_.data() + addr, 0, len);
  BumpFrameGenerationRange(addr, len);
}

}  // namespace cksim

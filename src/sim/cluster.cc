#include "src/sim/cluster.h"

#include <algorithm>
#include <cassert>

namespace cksim {

Cluster::~Cluster() { StopWorkers(); }

uint32_t Cluster::AddMachine(Machine* machine) {
  // Workers are indexed 1:1 with machines; adding after a parallel run
  // started would desynchronize them, so tear the pool down and let the next
  // run rebuild it.
  StopWorkers();
  machines_.push_back(machine);
  uint32_t index = static_cast<uint32_t>(machines_.size() - 1);
  // Stamp the node id used in causal span ids; index order is already part
  // of the determinism contract, so span sequences match serial/parallel.
  machine->set_node_id(static_cast<uint8_t>(index));
  return index;
}

void Cluster::Link(FiberChannelDevice& a, FiberChannelDevice& b) {
  assert(a.wire_latency() > 0 && b.wire_latency() > 0 &&
         "zero wire latency admits no conservative window");
  FiberChannelDevice::Connect(a, b);
  a.set_deferred_delivery(true);
  b.set_deferred_delivery(true);
  links_.push_back(LinkRec{&a, &b});
}

Cycles Cluster::lookahead() const {
  Cycles lookahead = kNoLookahead;
  for (const LinkRec& link : links_) {
    lookahead = std::min(lookahead, link.a->wire_latency());
    lookahead = std::min(lookahead, link.b->wire_latency());
  }
  return lookahead;
}

Cycles Cluster::window() const {
  Cycles bound = lookahead();
  if (bound == kNoLookahead) {
    // No links: the machines share nothing, any window is safe. Keep
    // barriers sparse but the done-predicate responsive.
    bound = 1u << 20;
  }
  if (window_override_ > 0) {
    bound = std::min(bound, window_override_);
  }
  return std::max<Cycles>(bound, 1);
}

Cycles Cluster::Now() const {
  Cycles live_min = kNoLookahead;
  Cycles all_max = 0;
  for (const Machine* machine : machines_) {
    Cycles now = machine->Now();
    all_max = std::max(all_max, now);
    if (!machine->halted()) {
      live_min = std::min(live_min, now);
    }
  }
  return live_min != kNoLookahead ? live_min : all_max;
}

size_t Cluster::RunWindow(Cycles window_end) {
  if (parallel_ && machines_.size() > 1) {
    StartWorkers();
    std::unique_lock<std::mutex> lock(mu_);
    window_end_ = window_end;
    unfinished_ = static_cast<uint32_t>(machines_.size());
    ++start_generation_;
    start_cv_.notify_all();
    done_cv_.wait(lock, [this] { return unfinished_ == 0; });
  } else {
    for (Machine* machine : machines_) {
      if (!machine->halted()) {
        machine->RunUntil(window_end);
      }
    }
  }

  // Barrier: exchange cross-machine deliveries in deterministic link order.
  // Every staged due time is >= window_end (send time >= window start, plus
  // at least the link's wire latency >= window size), so no receiver has run
  // past an exchanged event.
  size_t delivered = 0;
  for (const LinkRec& link : links_) {
    delivered += link.a->FlushOutbox();
    delivered += link.b->FlushOutbox();
  }
  ++windows_run_;
  return delivered;
}

void Cluster::RunUntil(Cycles deadline) {
  const Cycles window_size = window();
  while (true) {
    Cycles now = Now();
    if (now >= deadline) {
      return;
    }
    bool any_live = false;
    for (const Machine* machine : machines_) {
      any_live = any_live || !machine->halted();
    }
    if (!any_live) {
      return;
    }
    Cycles window_end = deadline - now < window_size ? deadline : now + window_size;
    size_t delivered = RunWindow(window_end);
    if (Now() == now && delivered == 0) {
      // No clock advanced and nothing crossed a link: no machine can make
      // progress (typically no kernel attached). Bail instead of spinning.
      return;
    }
  }
}

bool Cluster::RunUntilDone(const std::function<bool()>& done, Cycles max_duration) {
  const Cycles window_size = window();
  const Cycles start = Now();
  while (!done()) {
    Cycles now = Now();
    if (now - start >= max_duration) {
      return done();
    }
    bool any_live = false;
    for (const Machine* machine : machines_) {
      any_live = any_live || !machine->halted();
    }
    if (!any_live) {
      return done();
    }
    size_t delivered = RunWindow(now + window_size);
    if (Now() == now && delivered == 0) {
      return done();
    }
  }
  return true;
}

void Cluster::StartWorkers() {
  if (workers_.size() == machines_.size()) {
    return;
  }
  StopWorkers();
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = false;
    unfinished_ = 0;
  }
  workers_.reserve(machines_.size());
  for (uint32_t i = 0; i < machines_.size(); ++i) {
    workers_.emplace_back([this, i] { WorkerMain(i); });
  }
}

void Cluster::StopWorkers() {
  if (workers_.empty()) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
  workers_.clear();
}

void Cluster::WorkerMain(uint32_t index) {
  uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    start_cv_.wait(lock,
                   [&] { return shutdown_ || start_generation_ != seen_generation; });
    if (shutdown_) {
      return;
    }
    seen_generation = start_generation_;
    Cycles window_end = window_end_;
    lock.unlock();

    Machine* machine = machines_[index];
    if (!machine->halted()) {
      machine->RunUntil(window_end);
    }

    lock.lock();
    if (--unfinished_ == 0) {
      done_cv_.notify_one();
    }
  }
}

}  // namespace cksim

#include "src/sim/devices.h"

namespace cksim {

// --- ClockDevice ---

void ClockDevice::Run(Cycles now) {
  if (next_tick_ == kNoEvent || now < next_tick_) {
    return;
  }
  sink_->SignalPhysical(tick_page_, next_tick_);
  ++ticks_;
  next_tick_ += period_;
}

void ClockDevice::OnDoorbell(PhysAddr /*addr*/, Cycles /*when*/) {
  // The clock has no doorbell protocol; writes to the tick page are ignored.
}

// --- PacketDevice ---

PacketDevice::PacketDevice(PhysicalMemory& memory, SignalSink* sink, PhysAddr base,
                           uint32_t tx_slots, uint32_t rx_slots, Cycles wire_latency)
    : memory_(memory),
      sink_(sink),
      wire_latency_(wire_latency),
      base_(base),
      tx_slots_(tx_slots),
      rx_slots_(rx_slots) {}

uint32_t PacketDevice::AllocSpan() {
  return machine_ != nullptr ? machine_->AllocSpanId() : 0;
}

obs::TraceRing* PacketDevice::TraceRing() const {
  // Device events are not CPU-bound; they land on CPU 0's ring.
  return machine_ != nullptr ? machine_->trace_ring(0) : nullptr;
}

Cycles PacketDevice::NextEventAt() const {
  return inbound_.empty() ? kNoEvent : inbound_.front().due;
}

void PacketDevice::Run(Cycles now) {
  while (!inbound_.empty() && inbound_.front().due <= now) {
    Inbound in = std::move(inbound_.front());
    inbound_.pop_front();
    if (in.payload.size() + 4 > kPageSize) {
      ++dropped_;
      continue;
    }
    // Copy into the next receive slot and signal its address. A slot is
    // reused round-robin; an unconsumed packet is simply overwritten, which
    // models a NIC ring overrun (counted as received -- flow control is the
    // client protocol's job, as on the real device).
    uint32_t slot_index = next_rx_;
    PhysAddr slot = rx_slot(next_rx_);
    next_rx_ = (next_rx_ + 1) % rx_slots_;
    uint32_t len = static_cast<uint32_t>(in.payload.size());
    memory_.WriteWord(slot, len);
    if (len > 0) {
      memory_.Write(slot + 4, in.payload.data(), len);
    }
    ++received_;
    CK_TRACE(TraceRing(), obs::EventType::kIpcRecv, in.due, slot_index, in.span);
    sink_->SignalPhysical(slot, in.due);
  }
}

void PacketDevice::OnDoorbell(PhysAddr addr, Cycles when) {
  // The doorbell address identifies the transmit slot holding the packet.
  if (addr < base_ || addr >= base_ + tx_slots_ * kPageSize) {
    return;  // signal on an rx page: a client-side notification, not for us
  }
  PhysAddr slot = addr & ~static_cast<PhysAddr>(kPageOffsetMask);
  uint32_t len = memory_.ReadWord(slot);
  if (len + 4 > kPageSize) {
    ++dropped_;
    return;
  }
  std::vector<uint8_t> payload(len);
  if (len > 0) {
    memory_.Read(slot + 4, payload.data(), len);
  }
  ++sent_;
  // Every send gets a causal span id; the receiver's kIpcRecv carries the
  // same id, linking the two machines' traces into one flow.
  uint32_t span = AllocSpan();
  CK_TRACE(TraceRing(), obs::EventType::kIpcSend, when,
           static_cast<uint16_t>((slot - base_) / kPageSize), span);
  Transmit(std::move(payload), when, span);
}

void PacketDevice::EnqueueInbound(std::vector<uint8_t> payload, Cycles when, uint32_t span) {
  // Keep the queue ordered by due time (senders' clocks can be skewed).
  Inbound in{std::move(payload), when, span};
  auto it = inbound_.end();
  while (it != inbound_.begin() && (it - 1)->due > in.due) {
    --it;
  }
  inbound_.insert(it, std::move(in));
}

// --- FiberChannelDevice ---

void FiberChannelDevice::Transmit(std::vector<uint8_t> payload, Cycles when, uint32_t span) {
  if (peer_ == nullptr) {
    return;
  }
  Cycles due = when + wire_latency_;
  if (deferred_) {
    outbox_.push_back(Outbound{std::move(payload), due, /*bulk=*/false, span});
    return;
  }
  peer_->EnqueueInbound(std::move(payload), due, span);
}

void FiberChannelDevice::SendBulk(std::vector<uint8_t> payload, Cycles when, uint32_t span) {
  if (peer_ == nullptr) {
    return;
  }
  if (span == 0) {
    span = AllocSpan();
  }
  // FIFO serialization: this transfer starts once the wire has finished
  // shipping every earlier bulk payload, so a short page sent after a long
  // one cannot overtake it. A lone transfer (wire idle) keeps the classic
  // when + latency + serialization timing.
  Cycles start = when > bulk_wire_busy_until_ ? when : bulk_wire_busy_until_;
  bulk_wire_busy_until_ = start + BulkWireCycles(payload.size());
  Cycles due = bulk_wire_busy_until_ + wire_latency_;
  ++bulk_sent_;
  size_t kib = payload.size() / 1024;
  CK_TRACE(TraceRing(), obs::EventType::kBulkSend, when,
           static_cast<uint16_t>(kib < 0xffff ? kib : 0xffff), span);
  if (deferred_) {
    outbox_.push_back(Outbound{std::move(payload), due, /*bulk=*/true, span});
    return;
  }
  peer_->EnqueueBulkInbound(std::move(payload), due, span);
}

void FiberChannelDevice::EnqueueBulkInbound(std::vector<uint8_t> payload, Cycles due,
                                            uint32_t span) {
  // Keep the bulk queue ordered by due time (clock skew between the
  // connected machines).
  BulkInbound in{std::move(payload), due, span};
  auto it = bulk_inbound_.end();
  while (it != bulk_inbound_.begin() && (it - 1)->due > in.due) {
    --it;
  }
  bulk_inbound_.insert(it, std::move(in));
}

size_t FiberChannelDevice::FlushOutbox() {
  size_t flushed = outbox_.size();
  for (Outbound& out : outbox_) {
    if (out.bulk) {
      peer_->EnqueueBulkInbound(std::move(out.payload), out.due, out.span);
    } else {
      peer_->EnqueueInbound(std::move(out.payload), out.due, out.span);
    }
  }
  outbox_.clear();
  return flushed;
}

bool FiberChannelDevice::PollBulk(std::vector<uint8_t>* out, Cycles now, uint32_t* span) {
  if (bulk_inbound_.empty() || bulk_inbound_.front().due > now) {
    return false;
  }
  BulkInbound& front = bulk_inbound_.front();
  *out = std::move(front.payload);
  if (span != nullptr) {
    *span = front.span;
  }
  size_t kib = out->size() / 1024;
  CK_TRACE(TraceRing(), obs::EventType::kBulkRecv, front.due,
           static_cast<uint16_t>(kib < 0xffff ? kib : 0xffff), front.span);
  bulk_inbound_.pop_front();
  ++bulk_received_;
  bulk_bytes_received_ += out->size();
  return true;
}

// --- EthernetDevice / EthernetHub ---

void EthernetDevice::Transmit(std::vector<uint8_t> payload, Cycles when, uint32_t span) {
  if (hub_ != nullptr) {
    hub_->Route(std::move(payload), when + wire_latency_, station_, span);
  }
}

void EthernetHub::Route(std::vector<uint8_t> payload, Cycles when, uint8_t from_station,
                        uint32_t span) {
  if (payload.empty()) {
    return;
  }
  uint8_t dest = payload[0];
  for (EthernetDevice* device : stations_) {
    if (device->station() == from_station) {
      continue;
    }
    if (dest == 0xff || device->station() == dest) {
      device->EnqueueInbound(payload, when, span);
    }
  }
}

// --- StableStore ---

Cycles StableStore::Put(const std::string& key, std::vector<uint8_t> blob) {
  Cycles cost = TransferCost(blob.size());
  bytes_written_ += blob.size();
  ++puts_;
  blobs_[key] = std::move(blob);
  return cost;
}

bool StableStore::Get(const std::string& key, std::vector<uint8_t>* out, Cycles* cost) const {
  auto it = blobs_.find(key);
  if (it == blobs_.end()) {
    return false;
  }
  ++gets_;
  *out = it->second;
  if (cost != nullptr) {
    *cost = TransferCost(it->second.size());
  }
  return true;
}

}  // namespace cksim

// Per-processor reverse TLB for memory-based-messaging signal delivery.
//
// Section 4.1: "a per-processor reverse-TLB is provided that maps physical
// addresses to the corresponding virtual address and signal handler function
// pairs. When the Cache Kernel receives a signal on a given physical address,
// each processor that receives the signal checks whether the physical address
// 'reverse translates' according to this reverse TLB. If so, the signal is
// delivered immediately to the active thread. Otherwise, it uses the
// two-stage lookup." The prototype implemented it in software inside the
// Cache Kernel; we model it as a small per-CPU direct-mapped table the Cache
// Kernel fills and invalidates.

#ifndef SRC_SIM_REVERSE_TLB_H_
#define SRC_SIM_REVERSE_TLB_H_

#include <cstdint>
#include <vector>

#include "src/sim/types.h"

namespace cksim {

class ReverseTlb {
 public:
  explicit ReverseTlb(uint32_t entries = 32) : entries_(entries) {}

  struct Entry {
    bool valid = false;
    uint32_t pframe = 0;
    VirtAddr vbase = 0;          // receiver's virtual base of the frame
    uint64_t thread_id = 0;      // packed id of the signal thread on this CPU
    VirtAddr handler = 0;        // guest signal-handler entry (0 for native)
    uint64_t map_version = 0;    // pmap version at insert time (section 4.2:
                                 // re-validate before trusting the entry)
  };

  // Fast path lookup by physical frame.
  const Entry* Lookup(uint32_t pframe) const {
    const Entry& e = entries_[pframe % entries_.size()];
    if (e.valid && e.pframe == pframe) {
      ++hits_;
      return &e;
    }
    ++misses_;
    return nullptr;
  }

  void Insert(const Entry& entry) { entries_[entry.pframe % entries_.size()] = entry; }

  void InvalidateFrame(uint32_t pframe) {
    Entry& e = entries_[pframe % entries_.size()];
    if (e.valid && e.pframe == pframe) {
      e.valid = false;
    }
  }

  void InvalidateThread(uint64_t thread_id) {
    for (Entry& e : entries_) {
      if (e.valid && e.thread_id == thread_id) {
        e.valid = false;
      }
    }
  }

  void InvalidateAll() {
    for (Entry& e : entries_) {
      e.valid = false;
    }
  }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  std::vector<Entry> entries_;
  mutable uint64_t hits_ = 0;
  mutable uint64_t misses_ = 0;
};

}  // namespace cksim

#endif  // SRC_SIM_REVERSE_TLB_H_

// Simulated devices, all speaking memory-based messaging (section 2.2).
//
// Devices expose memory regions in physical memory. To transmit, a client
// thread writes a packet into a transmit slot and signals the slot's address
// (the doorbell). On reception the device copies the packet into a receive
// slot and generates a signal on that physical address, which the Cache
// Kernel routes to whichever thread registered a signal mapping for it --
// "data transfer and signaling is then handled using the general Cache Kernel
// memory-based messaging mechanism".
//
//   * ClockDevice        -- periodic timer signal on its tick page.
//   * FiberChannelDevice -- the 266 Mb point-to-point interconnect; the
//                           paper's driver was 276 lines because the device
//                           fits the messaging model directly.
//   * EthernetDevice     -- a hub-connected NIC with one-byte destination
//                           addressing; the "non-trivial driver" case.
//
// Packet wire format inside a slot: u32 length, then payload bytes.

#ifndef SRC_SIM_DEVICES_H_
#define SRC_SIM_DEVICES_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "src/sim/machine.h"
#include "src/sim/types.h"

namespace cksim {

// Periodic timer. Generates a signal on its single tick page every
// `period` cycles once started.
class ClockDevice : public Device {
 public:
  ClockDevice(PhysAddr tick_page, SignalSink* sink) : tick_page_(tick_page), sink_(sink) {}

  void Start(Cycles first_tick, Cycles period) {
    next_tick_ = first_tick;
    period_ = period;
  }
  void Stop() { next_tick_ = kNoEvent; }

  PhysAddr tick_page() const { return tick_page_; }

  PhysAddr region_base() const override { return tick_page_; }
  uint32_t region_size() const override { return kPageSize; }
  Cycles NextEventAt() const override { return next_tick_; }
  void Run(Cycles now) override;
  void OnDoorbell(PhysAddr addr, Cycles when) override;

  uint64_t ticks_delivered() const { return ticks_; }

 private:
  PhysAddr tick_page_;
  SignalSink* sink_;
  Cycles next_tick_ = kNoEvent;
  Cycles period_ = 0;
  uint64_t ticks_ = 0;
};

// Shared plumbing for packet devices: slot management and delivery queues.
class PacketDevice : public Device {
 public:
  // Region layout: tx_slots pages of transmit buffers followed by rx_slots
  // pages of receive buffers, starting at `base` in this machine's memory.
  PacketDevice(PhysicalMemory& memory, SignalSink* sink, PhysAddr base, uint32_t tx_slots,
               uint32_t rx_slots, Cycles wire_latency);

  // Keeps the machine pointer for causal tracing: sends allocate span ids
  // from the machine's deterministic counter and deliveries land kIpcRecv
  // events on the machine's trace ring. Unattached devices (unit tests)
  // simply emit span id 0 and no events.
  void OnAttached(Machine& machine) override { machine_ = &machine; }

  PhysAddr region_base() const override { return base_; }
  uint32_t region_size() const override { return (tx_slots_ + rx_slots_) * kPageSize; }

  PhysAddr tx_slot(uint32_t i) const { return base_ + i * kPageSize; }
  PhysAddr rx_slot(uint32_t i) const { return base_ + (tx_slots_ + i) * kPageSize; }
  uint32_t tx_slot_count() const { return tx_slots_; }
  uint32_t rx_slot_count() const { return rx_slots_; }

  Cycles NextEventAt() const override;
  void Run(Cycles now) override;
  void OnDoorbell(PhysAddr addr, Cycles when) override;

  // Base latency a packet spends on the wire. For cross-machine links this is
  // the conservative-PDES lookahead: no send made at time t can be observed
  // by the peer before t + wire_latency().
  Cycles wire_latency() const { return wire_latency_; }

  uint64_t packets_sent() const { return sent_; }
  uint64_t packets_received() const { return received_; }
  uint64_t packets_dropped() const { return dropped_; }

  // Inject a packet for local delivery at `when` (called by the peer device
  // or the hub). `span` is the sender-allocated causal span id (0 = none);
  // it travels out-of-band beside the payload -- a trace header that costs
  // no simulated wire bytes, so enabling tracing cannot shift packet timing.
  void EnqueueInbound(std::vector<uint8_t> payload, Cycles when, uint32_t span = 0);

 protected:
  // Transmit a packet read out of a tx slot; implemented by the subclass
  // (point-to-point forward, or hub routing). `span` is the causal span id
  // OnDoorbell allocated for this send (0 when no machine is attached).
  virtual void Transmit(std::vector<uint8_t> payload, Cycles when, uint32_t span) = 0;

  // Allocate a span id from the attached machine (0 if unattached).
  uint32_t AllocSpan();
  // The attached machine's trace ring for device events (CPU 0's ring), or
  // nullptr when unattached / tracing disabled.
  obs::TraceRing* TraceRing() const;

  PhysicalMemory& memory_;
  SignalSink* sink_;
  Cycles wire_latency_;
  Machine* machine_ = nullptr;

 private:
  struct Inbound {
    std::vector<uint8_t> payload;
    Cycles due;
    uint32_t span = 0;
  };

  PhysAddr base_;
  uint32_t tx_slots_;
  uint32_t rx_slots_;
  uint32_t next_rx_ = 0;
  std::deque<Inbound> inbound_;
  uint64_t sent_ = 0;
  uint64_t received_ = 0;
  uint64_t dropped_ = 0;
};

// Point-to-point fiber channel link. Connect() wires two endpoints (usually
// on different machines).
class FiberChannelDevice : public PacketDevice {
 public:
  using PacketDevice::PacketDevice;

  static void Connect(FiberChannelDevice& a, FiberChannelDevice& b) {
    a.peer_ = &b;
    b.peer_ = &a;
  }

  // ---- deferred cross-machine delivery (cluster mode) ----
  // When deferred (set by Cluster::Link), Transmit/SendBulk stage deliveries
  // in a local outbox instead of touching the peer's queues, so the two
  // endpoint machines can run on different host threads without sharing any
  // mutable state mid-window. Due times are computed at send time, so
  // delivery timing in simulated cycles is unchanged; Cluster drains the
  // outboxes at window barriers, always before the peer's clock can reach
  // the earliest staged due time (window <= lookahead).
  void set_deferred_delivery(bool on) { deferred_ = on; }
  bool deferred_delivery() const { return deferred_; }

  // Move staged entries into the peer's inbound queues, preserving their
  // send-time-stamped due times. Call only while neither endpoint's machine
  // is running (a window barrier). Returns the number of entries delivered.
  size_t FlushOutbox();

  // Insert a bulk payload into this device's inbound bulk queue, ordered by
  // due time (senders' clocks can be skewed). `span` as in EnqueueInbound.
  void EnqueueBulkInbound(std::vector<uint8_t> payload, Cycles due, uint32_t span = 0);

  // ---- bulk streaming (checkpoint migration, file service) ----
  // Ship an arbitrary-size payload to the peer, bypassing the page-sized
  // packet slots: models the driver's scatter-gather streaming mode for
  // whole-image transfers. The blob becomes available to the peer's
  // PollBulk once the wire latency plus serialization time (the 266 Mb/s
  // link moves ~4/3 bytes per 25 MHz cycle) has elapsed. Transfers
  // serialize on the link FIFO: a bulk send issued while an earlier one is
  // still on the wire starts serializing only when the wire frees up, so
  // deliveries always arrive in send order -- a short payload can never
  // overtake a long one sent before it (zero-length payloads are legal and
  // occupy the wire for zero cycles). `span` carries an existing causal
  // span id (an SRM migration span); 0 allocates a fresh one.
  void SendBulk(std::vector<uint8_t> payload, Cycles when, uint32_t span = 0);
  // Claim the oldest delivered bulk payload, if one is due by `now`. `span`
  // (if non-null) receives the sender's causal span id.
  bool PollBulk(std::vector<uint8_t>* out, Cycles now, uint32_t* span = nullptr);

  // Cycles a payload of `bytes` occupies the wire (excludes base latency).
  static Cycles BulkWireCycles(size_t bytes) {
    return static_cast<Cycles>((bytes * 3 + 3) / 4);
  }

  uint64_t bulk_sent() const { return bulk_sent_; }
  uint64_t bulk_received() const { return bulk_received_; }
  uint64_t bulk_bytes_received() const { return bulk_bytes_received_; }

 protected:
  void Transmit(std::vector<uint8_t> payload, Cycles when, uint32_t span) override;

 private:
  struct BulkInbound {
    std::vector<uint8_t> payload;
    Cycles due;
    uint32_t span = 0;
  };
  struct Outbound {
    std::vector<uint8_t> payload;
    Cycles due;
    bool bulk;
    uint32_t span = 0;
  };

  FiberChannelDevice* peer_ = nullptr;
  std::deque<BulkInbound> bulk_inbound_;
  std::deque<Outbound> outbox_;
  // Send-side link FIFO: simulated time until which the outbound wire is
  // occupied serializing earlier bulk payloads. Updated at SendBulk time
  // (sender-local, single-threaded within a window), so deferred and
  // immediate delivery compute identical due times.
  Cycles bulk_wire_busy_until_ = 0;
  bool deferred_ = false;
  uint64_t bulk_sent_ = 0;
  uint64_t bulk_received_ = 0;
  uint64_t bulk_bytes_received_ = 0;
};

// Hub connecting any number of EthernetDevices. Destination is the first
// payload byte (0xff broadcasts).
class EthernetHub;

class EthernetDevice : public PacketDevice {
 public:
  EthernetDevice(PhysicalMemory& memory, SignalSink* sink, PhysAddr base, uint32_t tx_slots,
                 uint32_t rx_slots, Cycles wire_latency, uint8_t station)
      : PacketDevice(memory, sink, base, tx_slots, rx_slots, wire_latency), station_(station) {}

  uint8_t station() const { return station_; }

 protected:
  void Transmit(std::vector<uint8_t> payload, Cycles when, uint32_t span) override;

 private:
  friend class EthernetHub;
  EthernetHub* hub_ = nullptr;
  uint8_t station_;
};

class EthernetHub {
 public:
  void Attach(EthernetDevice* device) {
    device->hub_ = this;
    stations_.push_back(device);
  }

  void Route(std::vector<uint8_t> payload, Cycles when, uint8_t from_station,
             uint32_t span = 0);

 private:
  std::vector<EthernetDevice*> stations_;
};

// Simulated stable store: a dual-ported NVRAM module on the interconnect
// that survives MPM failures (the crash-failover substrate). Keyed blobs
// with size-proportional access cost; the caller charges the returned cycles
// to whichever CPU drives the transfer. Deliberately not a Device: it has no
// event loop or doorbell protocol, and -- the point -- it is shared between
// machines, so a surviving SRM can read checkpoints a dead MPM wrote.
class StableStore {
 public:
  explicit StableStore(Cycles base_latency = 2500 /* 100 us */)
      : base_latency_(base_latency) {}

  // Overwrites any previous blob under `key`. Returns the simulated cost.
  Cycles Put(const std::string& key, std::vector<uint8_t> blob);
  // Copies the blob under `key` into `out`; false if absent. `cost` (if
  // non-null) receives the simulated read cost.
  bool Get(const std::string& key, std::vector<uint8_t>* out, Cycles* cost = nullptr) const;
  bool Contains(const std::string& key) const { return blobs_.count(key) != 0; }

  uint64_t puts() const { return puts_; }
  uint64_t gets() const { return gets_; }
  uint64_t bytes_written() const { return bytes_written_; }

 private:
  Cycles TransferCost(size_t bytes) const {
    // Same 266 Mb/s interconnect model as the fiber channel bulk path.
    return base_latency_ + static_cast<Cycles>((bytes * 3 + 3) / 4);
  }

  Cycles base_latency_;
  std::map<std::string, std::vector<uint8_t>> blobs_;
  uint64_t puts_ = 0;
  mutable uint64_t gets_ = 0;
  uint64_t bytes_written_ = 0;
};

}  // namespace cksim

#endif  // SRC_SIM_DEVICES_H_

// Conservative parallel-discrete-event driver for multi-MPM configurations.
//
// The paper's multi-MPM systems (Figures 4 and 5) are several self-contained
// modules, each running its own Cache Kernel, connected by fiber channel.
// Each Machine is already a sequential discrete-event simulation; the fiber
// channel's non-zero wire latency is exactly the lookahead a conservative
// parallel scheme needs: a packet sent at simulated time t cannot be observed
// by the peer before t + wire_latency. So the cluster runs every machine in
// bounded windows of at most `lookahead = min over links of wire_latency`
// cycles:
//
//   window k:   every machine runs RunUntil(window_end) independently
//               (parallel mode: one host worker thread per machine)
//   barrier:    cross-machine deliveries staged in per-link outboxes are
//               exchanged, carrying their send-time-stamped due times
//   advance:    window_end += window
//
// No machine ever observes an event before its simulated time, so the
// parallel execution is bit-exact against the single-threaded reference mode
// (set_parallel(false)), which runs the identical window protocol on the
// calling thread. tests/cluster_test.cc enforces this differentially over
// messaging, migration and failover; docs/PERFORMANCE.md derives the window
// bound.
//
// Thread-safety contract: during a window, a machine (and everything hanging
// off it: its Cache Kernel, app kernels, devices) is touched only by its
// worker thread; cluster-level state (outbox exchange, Now(), the caller's
// done-predicates, SRM calls such as Migrate/AcceptMigration/Checkpoint) is
// touched only between windows, on the coordinating thread. The barrier's
// mutex hand-off orders the two.

#ifndef SRC_SIM_CLUSTER_H_
#define SRC_SIM_CLUSTER_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "src/sim/devices.h"
#include "src/sim/machine.h"
#include "src/sim/types.h"

namespace cksim {

class Cluster {
 public:
  Cluster() = default;
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // Register a machine. Index order fixes the serial reference execution
  // order (and is therefore part of the determinism contract). Machines are
  // owned by the caller and must outlive the cluster.
  uint32_t AddMachine(Machine* machine);

  // Wire a <-> b (FiberChannelDevice::Connect), switch both endpoints to
  // deferred delivery and register the link for barrier exchange. Both
  // devices must have non-zero wire latency (zero lookahead admits no
  // conservative window). Call before running.
  void Link(FiberChannelDevice& a, FiberChannelDevice& b);

  // Host-parallel (default) vs single-threaded reference execution of the
  // identical window protocol. Switchable between runs, not mid-run.
  void set_parallel(bool on) { parallel_ = on; }
  bool parallel() const { return parallel_; }

  // Cap the window below the lookahead (diagnostics, the differential test's
  // window sweep). 0 restores the default (= lookahead). Values above the
  // lookahead are clamped: running past it would break conservativeness.
  void set_window(Cycles window) { window_override_ = window; }

  // Global lookahead: the minimum wire latency over all registered links
  // (kNoLookahead when no links are registered -- the machines are then
  // independent and windows are unbounded).
  static constexpr Cycles kNoLookahead = ~Cycles{0};
  Cycles lookahead() const;
  // Effective window actually used per round.
  Cycles window() const;

  // Earliest clock over non-halted machines ("now" for the cluster); the
  // latest clock if every machine has halted.
  Cycles Now() const;

  // Run windows until Now() >= deadline. Returns early if no machine can
  // make progress (all halted, or none has an attached kernel).
  void RunUntil(Cycles deadline);
  void RunFor(Cycles duration) { RunUntil(Now() + duration); }

  // Run windows until done() holds, checking at each barrier (where SRM
  // calls and guest-state reads are safe), for at most `max_duration`
  // simulated cycles. Returns done()'s final value.
  bool RunUntilDone(const std::function<bool()>& done, Cycles max_duration);

  uint32_t machine_count() const { return static_cast<uint32_t>(machines_.size()); }
  Machine& machine(uint32_t i) { return *machines_[i]; }
  uint64_t windows_run() const { return windows_run_; }

 private:
  struct LinkRec {
    FiberChannelDevice* a;
    FiberChannelDevice* b;
  };

  // One window: run every machine to `window_end` (worker threads or, in
  // reference mode, in machine order on the calling thread), then exchange
  // outboxes in link order. Returns the number of cross-machine deliveries.
  size_t RunWindow(Cycles window_end);
  void StartWorkers();
  void StopWorkers();
  void WorkerMain(uint32_t index);

  std::vector<Machine*> machines_;
  std::vector<LinkRec> links_;
  bool parallel_ = true;
  Cycles window_override_ = 0;
  uint64_t windows_run_ = 0;

  // Worker pool, created lazily at the first parallel window. The barrier is
  // a generation-counted mutex/condvar pair: the coordinator publishes
  // window_end_ and bumps start_generation_; workers run their machine and
  // decrement unfinished_; the coordinator proceeds at zero.
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  uint64_t start_generation_ = 0;
  uint32_t unfinished_ = 0;
  Cycles window_end_ = 0;
  bool shutdown_ = false;
};

}  // namespace cksim

#endif  // SRC_SIM_CLUSTER_H_

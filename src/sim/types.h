// Shared basic types for the simulated ParaDiGM-like hardware.
//
// The original prototype: a Multiprocessor Module (MPM) with four 25 MHz
// Motorola 68040s, 2 MiB local RAM, a software-controlled second-level cache,
// and a 32-bit (4 GiB) physical address space carved into 128-page "page
// groups" for protection. We keep the same geometry so the paper's space
// arithmetic (Table 1, section 4.3, section 5.2) reproduces.

#ifndef SRC_SIM_TYPES_H_
#define SRC_SIM_TYPES_H_

#include <cstdint>

namespace cksim {

using PhysAddr = uint32_t;  // 32-bit physical addresses, as on the 68040
using VirtAddr = uint32_t;  // 32-bit virtual addresses
using Cycles = uint64_t;    // simulated CPU cycles

// 25 MHz clock: 25 cycles per microsecond. All paper numbers are in
// microseconds at this clock rate.
inline constexpr uint64_t kCyclesPerMicrosecond = 25;

inline constexpr uint32_t kPageShift = 12;
inline constexpr uint32_t kPageSize = 1u << kPageShift;  // 4 KiB
inline constexpr uint32_t kPageOffsetMask = kPageSize - 1;

// Section 4.3: "a set of contiguous physical pages starting on a boundary
// that is aligned modulo the number of pages in the group (currently 128 4k
// pages)".
inline constexpr uint32_t kPagesPerGroup = 128;
inline constexpr uint32_t kPageGroupBytes = kPagesPerGroup * kPageSize;  // 512 KiB

// "a two-kilobyte memory access array in each kernel object records access to
// the current four-gigabyte physical address space" -- 2 bits per page group.
inline constexpr uint32_t kPhysAddressSpaceBytes4G = 0xffffffffu;  // nominal 4 GiB
inline constexpr uint32_t kAccessArrayBytes = 2048;

inline constexpr uint32_t PageFrame(PhysAddr addr) { return addr >> kPageShift; }
inline constexpr PhysAddr FrameBase(uint32_t frame) { return frame << kPageShift; }
inline constexpr uint32_t PageGroupOf(PhysAddr addr) { return addr / kPageGroupBytes; }

// Kind of memory access, as seen by the MMU.
enum class Access : uint8_t { kRead = 0, kWrite = 1, kExecute = 2 };

// Hardware exception classes forwarded by the Cache Kernel to application
// kernels (section 2.1).
enum class FaultType : uint8_t {
  kNone = 0,
  kNoMapping,    // no valid translation: the "mapping fault" / page fault
  kProtection,   // write to read-only page
  kPrivilege,    // privileged instruction in user mode
  kConsistency,  // access to a line held on a remote node / failed module
  kBadAlignment, // unaligned word access (the interpreter raises this)
  kBadInstruction,
};

// Per-access fault report produced by the MMU or the interpreter.
struct Fault {
  FaultType type = FaultType::kNone;
  VirtAddr address = 0;
  Access access = Access::kRead;

  bool pending() const { return type != FaultType::kNone; }
};

}  // namespace cksim

#endif  // SRC_SIM_TYPES_H_

#include "src/sim/mmu.h"

namespace cksim {
namespace {

Fault MakeFault(FaultType type, VirtAddr vaddr, Access access) {
  Fault f;
  f.type = type;
  f.address = vaddr;
  f.access = access;
  return f;
}

}  // namespace

Mmu::TranslateResult Mmu::Translate(PhysAddr root_paddr, uint16_t asid, VirtAddr vaddr,
                                    Access access) {
  TranslateResult result;
  uint32_t vpage = vaddr >> kPageShift;

  // Fast path: TLB hit.
  Tlb::LookupResult hit = tlb_.Lookup(asid, vpage);
  uint32_t flags = 0;
  uint32_t pframe = 0;
  if (hit.hit) {
    result.cycles += cost_.tlb_hit;
    flags = hit.flags;
    pframe = hit.pframe;
  } else {
    CK_TRACE(trace_ring_, obs::EventType::kTlbMiss,
             trace_clock_ != nullptr ? *trace_clock_ : 0, asid, vaddr);
    // Hardware table walk. No root table means no space is active.
    if (root_paddr == 0) {
      result.fault = MakeFault(FaultType::kNoMapping, vaddr, access);
      return result;
    }
    result.cycles += cost_.table_walk_level;
    uint32_t l1 = memory_.ReadWord(root_paddr + L1Index(vaddr) * 4);
    if (!PteValid(l1)) {
      result.fault = MakeFault(FaultType::kNoMapping, vaddr, access);
      return result;
    }
    result.cycles += cost_.table_walk_level;
    uint32_t l2 = memory_.ReadWord(PteAddress(l1) + L2Index(vaddr) * 4);
    if (!PteValid(l2)) {
      result.fault = MakeFault(FaultType::kNoMapping, vaddr, access);
      return result;
    }
    result.cycles += cost_.table_walk_level;
    PhysAddr leaf_addr = PteAddress(l2) + L3Index(vaddr) * 4;
    uint32_t leaf = memory_.ReadWord(leaf_addr);
    if (!PteValid(leaf)) {
      result.fault = MakeFault(FaultType::kNoMapping, vaddr, access);
      return result;
    }
    // Hardware sets the referenced bit on the walk (and modified below).
    if ((leaf & kPteReferenced) == 0) {
      memory_.WriteWord(leaf_addr, leaf | kPteReferenced);
      leaf |= kPteReferenced;
      result.cycles += cost_.pte_write;
    }
    flags = leaf & kPteFlagsMask;
    pframe = PageFrame(PteAddress(leaf));
    tlb_.Insert(asid, vpage, pframe, static_cast<uint8_t>(flags));
    result.cycles += cost_.tlb_fill;
    // Tiered memory: a demand fill from a slow-tier frame pays the slow
    // medium's latency here, at TLB-fill time. The fast guest path never
    // fills the TLB (its micro-TLB only caches entries this walk installed),
    // so charging at fill time keeps fast and slow paths cycle-exact.
    if (memory_.tier_of(pframe) == MemTier::kSlow) {
      result.cycles += cost_.tier_slow_fill;
    }
  }

  if (access == Access::kWrite) {
    if ((flags & kPteCopyOnWrite) != 0) {
      // Copy-on-write pages are mapped read-only until the owning application
      // kernel resolves the fault (section 4.1).
      result.fault = MakeFault(FaultType::kProtection, vaddr, access);
      return result;
    }
    if ((flags & kPteWritable) == 0) {
      result.fault = MakeFault(FaultType::kProtection, vaddr, access);
      return result;
    }
    // The TLB caches the modified bit; the first write to a page during a
    // TLB residence writes the bit through to the leaf PTE (this is what the
    // 68040 does), so the Cache Kernel's writeback report of "modified" is
    // exact.
    if ((flags & kPteModified) == 0) {
      uint32_t l1 = memory_.ReadWord(root_paddr + L1Index(vaddr) * 4);
      PhysAddr leaf_addr = PteAddress(memory_.ReadWord(PteAddress(l1) + L2Index(vaddr) * 4)) +
                           L3Index(vaddr) * 4;
      uint32_t leaf = memory_.ReadWord(leaf_addr);
      if ((leaf & kPteModified) == 0) {
        memory_.WriteWord(leaf_addr, leaf | kPteModified);
        result.cycles += cost_.pte_write;
      }
      flags |= kPteModified;
      tlb_.Insert(asid, vpage, pframe, static_cast<uint8_t>(flags));
    }
    if ((flags & kPteMessage) != 0) {
      result.message_write = true;
    }
  }

  result.ok = true;
  result.paddr = FrameBase(pframe) | (vaddr & kPageOffsetMask);
  return result;
}

}  // namespace cksim

// Simulated cycle cost model.
//
// Table 2 and section 5.3 of the paper report elapsed microseconds on a
// 25 MHz 68040. We cannot rerun that hardware, so every primitive the kernel
// and the simulated hardware execute charges cycles from this table, and the
// benchmarks report simulated microseconds (cycles / 25). The *shape* of the
// results -- which operations are cheap, what writeback adds, why a kernel
// unload is the worst case -- emerges from the number of primitives each code
// path actually executes, not from per-operation constants. The calibration
// of the primitives themselves (one table below) is documented in
// EXPERIMENTS.md.
//
// The values approximate a 25 MHz 68040 with local RAM: several-cycle memory
// touches, expensive trap entry/exit (the 68040 exception stack frame), and
// triple-digit-cycle context switches.

#ifndef SRC_SIM_COST_H_
#define SRC_SIM_COST_H_

#include <cstdint>

#include "src/sim/types.h"

namespace cksim {

struct CostModel {
  // --- raw hardware ---
  Cycles mem_word = 4;          // one 32-bit access to local RAM
  Cycles cache_line_fill = 20;  // second-level cache miss to memory
  Cycles tlb_hit = 1;           // address translation on a TLB hit
  Cycles tlb_fill = 12;         // insert a translation into the TLB
  Cycles table_walk_level = 18; // one level of hardware table walk (read PTE)
  Cycles tlb_flush_entry = 6;   // invalidate one TLB entry
  Cycles tlb_flush_asid = 40;   // invalidate all entries of one space
  Cycles ipi = 120;             // cross-processor interrupt, send side
  Cycles instruction = 2;       // average non-memory CKVM instruction

  // --- supervisor entry/exit ---
  Cycles trap_entry = 180;      // user -> supervisor: exception frame + vector
  Cycles trap_exit = 140;       // supervisor -> user: restore frame, rte
  Cycles call_gate = 90;        // argument copy + validation for one CK call

  // --- kernel primitives ---
  Cycles descriptor_init = 60;     // clear/fill one small descriptor
  Cycles hash_op = 35;             // one physical-memory-map hash probe/insert
  Cycles list_op = 12;             // queue/dequeue on an intrusive list
  Cycles pte_write = 10;           // write one page-table entry
  Cycles table_alloc = 80;         // allocate + zero one page-table block
  Cycles context_save = 260;       // save full register context of a thread
  Cycles context_restore = 240;    // load full register context
  Cycles handler_dispatch = 150;   // redirect thread into app-kernel handler
                                   // (switch space, stack, pc -- Fig. 2 step 2)
  Cycles writeback_record = 1200;  // deliver one object's state over the
                                   // writeback channel to its app kernel; the
                                   // channel is an RPC over memory-based
                                   // messaging (section 2.2), so this is of
                                   // the same order as a signal round trip
  Cycles signal_deliver_fast = 300;   // reverse-TLB hit, deliver to active thread
  Cycles signal_deliver_slow = 650;   // two-stage pmap lookup + reschedule
  Cycles signal_return = 250;         // return-from-signal-handler path
  Cycles quota_account = 25;          // per-dispatch consumption accounting

  // --- devices / interconnect ---
  Cycles device_doorbell = 200;      // device notices a signal on its region
  Cycles wire_latency = 2500;        // fiber channel one-way (~100 us)
  Cycles idle_tick = 100;            // clock advance for an idle CPU turn

  // --- tiered physical memory (docs/TIERING.md) ---
  // The slow tier models CXL/NVM-like capacity memory: same address space,
  // several-times-DRAM access latency. The penalty surfaces where the
  // hardware would feel it: demand fills (TLB fill of a slow frame, bulk
  // page copies touching slow frames), not on every cached access -- once a
  // translation and the lines are resident, the access path is unchanged,
  // which keeps the fast guest path cycle-exact with the slow path.
  Cycles tier_slow_fill = 600;   // demand fill from the slow tier (~24 us)
  Cycles tier_demote = 400;      // retarget one frame DRAM -> slow (remap +
                                 // migration issue; data moves off-critical-path)
  Cycles tier_promote = 900;     // migrate one hot frame slow -> DRAM

  // Application-kernel (user mode) policy work, charged when an app kernel
  // handler runs on the faulting thread. These model user-mode instructions.
  Cycles app_handler_base = 200;   // entry/bookkeeping of a user-level handler
  Cycles app_policy_lookup = 150;  // one segment/page-record lookup

  // Convert to the paper's reporting unit.
  static double ToMicroseconds(Cycles c) {
    return static_cast<double>(c) / static_cast<double>(kCyclesPerMicrosecond);
  }
};

}  // namespace cksim

#endif  // SRC_SIM_COST_H_

// Per-CPU translation lookaside buffer.
//
// Small set-associative TLB keyed by (address-space id, virtual page). The
// Cache Kernel must flush entries when it unloads mappings or address spaces
// ("when unloading an address space, the mappings associated with that
// address space must be removed from the hardware TLB and/or page tables",
// section 4.2) -- the flush interfaces here are what that code calls.

#ifndef SRC_SIM_TLB_H_
#define SRC_SIM_TLB_H_

#include <cstdint>
#include <vector>

#include "src/sim/pagetable.h"
#include "src/sim/types.h"

namespace cksim {

struct TlbEntry {
  bool valid = false;
  uint16_t asid = 0;
  uint32_t vpage = 0;   // virtual page number
  uint32_t pframe = 0;  // physical page frame number
  uint8_t flags = 0;    // PTE flag bits (writable/message/cow/cache-inhibit)
  // Replacement timestamp. 64-bit: a 32-bit tick wraps after ~4B lookups,
  // which silently corrupts victim selection on long runs (freshly touched
  // entries look ancient and get evicted first).
  uint64_t lru = 0;
};

class Tlb {
 public:
  // 64 entries, 4-way set associative by default (roughly 68040-class: the
  // real part had a 64-entry ATC).
  explicit Tlb(uint32_t entries = 64, uint32_t ways = 4);

  struct LookupResult {
    bool hit = false;
    uint32_t pframe = 0;
    uint8_t flags = 0;
  };

  LookupResult Lookup(uint16_t asid, uint32_t vpage);
  void Insert(uint16_t asid, uint32_t vpage, uint32_t pframe, uint8_t flags);

  // Invalidate a single page of a space, every entry of a space, entries
  // mapping a physical frame (for frame reclamation and multi-mapping
  // consistency), or everything.
  void FlushPage(uint16_t asid, uint32_t vpage);
  void FlushAsid(uint16_t asid);
  void FlushFrame(uint32_t pframe);
  void FlushAll();

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  void ResetStats() { hits_ = misses_ = 0; }

  // ---- micro-TLB (host fast path) support ----
  // A micro-TLB entry is a verified hint naming a resident TlbEntry by index
  // (entries_ never reallocates). The fast path re-validates the entry on
  // every use, so TLB flushes and LRU evictions invalidate micro-TLB state
  // implicitly; see docs/PERFORMANCE.md.
  //
  // Index of the resident entry for (asid, vpage), or -1. Unlike Lookup this
  // has no side effects on the LRU clock or the hit/miss counters.
  int32_t Probe(uint16_t asid, uint32_t vpage) const;
  const TlbEntry& EntryAt(uint32_t index) const { return entries_[index]; }
  // Bookkeeping for an access served by the micro-TLB: exactly what a
  // Lookup hit does, so fast-path and slow-path runs age entries (and count
  // hits) identically.
  void TouchFastHit(uint32_t index) {
    entries_[index].lru = ++tick_;
    ++hits_;
  }

  // Batched fast-hit bookkeeping for the superblock trace executor: a trace
  // defers its TouchFastHit calls and commits them in one shot before any
  // point that could observe TLB state (a virtual bus call, an eviction, the
  // run-loop exit). The commit must reproduce EXACTLY the state a touch-by-
  // touch run would leave: `touches` total tick/hit increments, and each
  // touched entry's lru set to the tick value of its LAST touch (callers
  // ensure per-entry writes land in ascending ordinal order; writes to
  // different entries may land in any order).
  void CommitFastHits(uint64_t touches) {
    tick_ += touches;
    hits_ += touches;
  }
  void SetLruAt(uint32_t index, uint64_t lru) { entries_[index].lru = lru; }

  // Test hook: place the LRU clock near a chosen value (e.g. just below
  // 2^32) to exercise wraparound behavior without 4B warm-up lookups.
  void SetTickForTesting(uint64_t tick) { tick_ = tick; }
  uint64_t tick() const { return tick_; }

 private:
  uint32_t SetOf(uint16_t asid, uint32_t vpage) const;

  std::vector<TlbEntry> entries_;
  uint32_t sets_;
  uint32_t ways_;
  uint64_t tick_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace cksim

#endif  // SRC_SIM_TLB_H_

// Per-CPU translation lookaside buffer.
//
// Small set-associative TLB keyed by (address-space id, virtual page). The
// Cache Kernel must flush entries when it unloads mappings or address spaces
// ("when unloading an address space, the mappings associated with that
// address space must be removed from the hardware TLB and/or page tables",
// section 4.2) -- the flush interfaces here are what that code calls.

#ifndef SRC_SIM_TLB_H_
#define SRC_SIM_TLB_H_

#include <cstdint>
#include <vector>

#include "src/sim/pagetable.h"
#include "src/sim/types.h"

namespace cksim {

struct TlbEntry {
  bool valid = false;
  uint16_t asid = 0;
  uint32_t vpage = 0;   // virtual page number
  uint32_t pframe = 0;  // physical page frame number
  uint8_t flags = 0;    // PTE flag bits (writable/message/cow/cache-inhibit)
  uint32_t lru = 0;     // replacement timestamp
};

class Tlb {
 public:
  // 64 entries, 4-way set associative by default (roughly 68040-class: the
  // real part had a 64-entry ATC).
  explicit Tlb(uint32_t entries = 64, uint32_t ways = 4);

  struct LookupResult {
    bool hit = false;
    uint32_t pframe = 0;
    uint8_t flags = 0;
  };

  LookupResult Lookup(uint16_t asid, uint32_t vpage);
  void Insert(uint16_t asid, uint32_t vpage, uint32_t pframe, uint8_t flags);

  // Invalidate a single page of a space, every entry of a space, entries
  // mapping a physical frame (for frame reclamation and multi-mapping
  // consistency), or everything.
  void FlushPage(uint16_t asid, uint32_t vpage);
  void FlushAsid(uint16_t asid);
  void FlushFrame(uint32_t pframe);
  void FlushAll();

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  void ResetStats() { hits_ = misses_ = 0; }

 private:
  uint32_t SetOf(uint16_t asid, uint32_t vpage) const;

  std::vector<TlbEntry> entries_;
  uint32_t sets_;
  uint32_t ways_;
  uint32_t tick_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace cksim

#endif  // SRC_SIM_TLB_H_

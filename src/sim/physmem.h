// Simulated physical memory.
//
// One contiguous physical address range per machine (the MPM's view of
// memory: local RAM plus the bus-attached memory modules). The Cache Kernel
// allocates its page tables here, application kernels map page frames from
// here, and memory-based messaging moves bytes through here. Byte-addressable
// with typed word helpers; all addresses are machine-checked.

#ifndef SRC_SIM_PHYSMEM_H_
#define SRC_SIM_PHYSMEM_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <vector>

#include "src/sim/types.h"

namespace cksim {

// Physical-memory tier of a page frame (docs/TIERING.md). The frame's
// physical address never changes with its tier -- a tier is a residency
// attribute (which medium backs the frame), not a location. kNone means the
// frame is not tracked by the tiering machinery (tiering disabled, or the
// frame was released back untracked); untracked frames behave like DRAM.
// StableStore remains the conceptual coldest tier below kSlow.
enum class MemTier : uint8_t {
  kNone = 0,
  kDram = 1,
  kSlow = 2,  // CXL/NVM-like: cheap capacity, expensive fills
};
inline constexpr uint32_t kMemTierCount = 3;

class PhysicalMemory {
 public:
  // size must be page-group aligned so that the protection arithmetic of
  // section 4.3 is exact.
  explicit PhysicalMemory(uint32_t size_bytes);

  uint32_t size() const { return static_cast<uint32_t>(bytes_.size()); }
  uint32_t page_count() const { return size() / kPageSize; }
  uint32_t page_group_count() const { return size() / kPageGroupBytes; }

  bool Contains(PhysAddr addr, uint32_t len = 1) const {
    return addr < size() && size() - addr >= len;
  }

  // 32-bit word access. Addr must be word-aligned and in range; violations
  // indicate a kernel bug and abort the simulation (a real 68040 would raise
  // a bus error inside the supervisor, which the paper's kernel treats as
  // fatal to the MPM).
  uint32_t ReadWord(PhysAddr addr) const;
  void WriteWord(PhysAddr addr, uint32_t value);

  uint8_t ReadByte(PhysAddr addr) const;
  void WriteByte(PhysAddr addr, uint8_t value);

  // Bulk copies for devices, loaders and page zero/copy operations.
  void Read(PhysAddr addr, void* out, uint32_t len) const;
  void Write(PhysAddr addr, const void* data, uint32_t len);
  void Zero(PhysAddr addr, uint32_t len);

  // Raw view for the interpreter's fast path (bounds already translated).
  // Writers through this pointer must call BumpFrameGeneration themselves.
  const uint8_t* raw() const { return bytes_.data(); }
  uint8_t* raw() { return bytes_.data(); }

  // Per-frame store generation, bumped by every write path (word, byte,
  // bulk, zero). The decoded-instruction cache keys its validity on this, so
  // self-modifying code, page copies/zeroing and device writes all force a
  // re-decode of the affected frame.
  //
  // Accesses go through relaxed std::atomic_ref (plain load/store cost, no
  // read-modify-write), because under batched intra-MPM dispatch two host
  // worker threads can bump the same counter concurrently: page tables are
  // 256-byte blocks packed into shared TableArena frames, so two spaces'
  // referenced/modified PTE updates during a table walk land in one frame.
  // A lost increment there is benign — the exec/trace caches only key on
  // frames they decoded guest code from, which batch eligibility guarantees
  // are never written by another worker concurrently (disjoint mapped
  // frames), and nothing ever reads a page-table frame's generation.
  uint64_t frame_generation(uint32_t frame) const {
    return std::atomic_ref<const uint64_t>(frame_gen_[frame]).load(std::memory_order_relaxed);
  }
  void BumpFrameGeneration(PhysAddr addr) {
    std::atomic_ref<uint64_t> g(frame_gen_[addr >> kPageShift]);
    g.store(g.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
  }

  // Per-frame memory tier. Ground truth lives here (the hardware knows which
  // medium backs a frame); policy -- budgets, demotion, promotion -- lives in
  // the Cache Kernel. Tier writes happen only at deterministic serial points
  // (CK calls, turn preparation, restore); reads may come from worker threads
  // during batched guest execution, which is race-free because no writer runs
  // concurrently with the workers.
  MemTier tier_of(uint32_t frame) const { return static_cast<MemTier>(frame_tier_[frame]); }
  void SetFrameTier(uint32_t frame, MemTier tier) {
    --tier_count_[frame_tier_[frame]];
    frame_tier_[frame] = static_cast<uint8_t>(tier);
    ++tier_count_[frame_tier_[frame]];
  }
  uint32_t tier_count(MemTier tier) const { return tier_count_[static_cast<uint8_t>(tier)]; }

 private:
  void Check(PhysAddr addr, uint32_t len) const;
  void BumpFrameGenerationRange(PhysAddr addr, uint32_t len) {
    if (len == 0) {
      return;
    }
    for (uint32_t f = addr >> kPageShift; f <= (addr + len - 1) >> kPageShift; ++f) {
      std::atomic_ref<uint64_t> g(frame_gen_[f]);
      g.store(g.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
    }
  }

  std::vector<uint8_t> bytes_;
  std::vector<uint64_t> frame_gen_;
  std::vector<uint8_t> frame_tier_;        // MemTier per frame
  uint32_t tier_count_[kMemTierCount] = {};  // frames per tier; kNone counted too
};

}  // namespace cksim

#endif  // SRC_SIM_PHYSMEM_H_

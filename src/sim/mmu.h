// Per-CPU memory management unit.
//
// Translates virtual accesses through the TLB and, on a miss, performs the
// 68040-style hardware table walk over the three-level tables that the Cache
// Kernel maintains in physical memory. Sets referenced/modified bits in leaf
// PTEs (the state the Cache Kernel reports on mapping writeback, section
// 2.1), raises mapping/protection/consistency faults, and flags stores to
// message-mode pages so the machine can generate address-valued signals
// (ParaDiGM's signal-on-write assist, section 2.2 footnote).

#ifndef SRC_SIM_MMU_H_
#define SRC_SIM_MMU_H_

#include <cstdint>

#include "src/obs/trace.h"
#include "src/sim/cost.h"
#include "src/sim/pagetable.h"
#include "src/sim/physmem.h"
#include "src/sim/tlb.h"
#include "src/sim/types.h"

namespace cksim {

class Mmu {
 public:
  Mmu(PhysicalMemory& memory, const CostModel& cost) : memory_(memory), cost_(cost) {}

  struct TranslateResult {
    bool ok = false;
    PhysAddr paddr = 0;
    Fault fault;              // set when !ok
    bool message_write = false;  // store hit a message-mode page
    Cycles cycles = 0;           // cost of this translation
  };

  // Translate one access in the space whose root table is at root_paddr
  // (0 means "no address space loaded" -> mapping fault). asid tags TLB
  // entries and must correspond 1:1 with root_paddr.
  TranslateResult Translate(PhysAddr root_paddr, uint16_t asid, VirtAddr vaddr, Access access);

  Tlb& tlb() { return tlb_; }
  const Tlb& tlb() const { return tlb_; }

  // Tracing: misses that start a hardware table walk emit kTlbMiss stamped
  // off the owning CPU's clock. Wired by Cpu::AttachTrace.
  void AttachTrace(obs::TraceRing* ring, const Cycles* clock) {
    trace_ring_ = ring;
    trace_clock_ = clock;
  }

 private:
  PhysicalMemory& memory_;
  const CostModel& cost_;
  Tlb tlb_;
  obs::TraceRing* trace_ring_ = nullptr;
  const Cycles* trace_clock_ = nullptr;
};

}  // namespace cksim

#endif  // SRC_SIM_MMU_H_

// 68040-style three-level page-table format.
//
// Section 5.2 gives the geometry the Cache Kernel used and that we replicate
// exactly:
//   * 512-byte top-level table   (128 x 4-byte entries, 32 MiB per entry)
//   * 512-byte second-level table(128 x 4-byte entries, 256 KiB per entry)
//   * 256-byte third-level table ( 64 x 4-byte entries, one 4 KiB page each)
// 7 + 7 + 6 index bits + 12 offset bits = 32-bit virtual addresses.
//
// The table *format* is hardware architecture (the 68040 walks these tables
// itself), so it lives in the sim layer; the Cache Kernel allocates and fills
// the tables (src/ck/pagetable_allocator and address-space code).

#ifndef SRC_SIM_PAGETABLE_H_
#define SRC_SIM_PAGETABLE_H_

#include <cstdint>

#include "src/sim/types.h"

namespace cksim {

inline constexpr uint32_t kL1Entries = 128;  // 512-byte root table
inline constexpr uint32_t kL2Entries = 128;  // 512-byte mid table
inline constexpr uint32_t kL3Entries = 64;   // 256-byte leaf table
inline constexpr uint32_t kL1TableBytes = kL1Entries * 4;
inline constexpr uint32_t kL2TableBytes = kL2Entries * 4;
inline constexpr uint32_t kL3TableBytes = kL3Entries * 4;

// Virtual address decomposition.
inline constexpr uint32_t L1Index(VirtAddr v) { return v >> 25; }                 // top 7 bits
inline constexpr uint32_t L2Index(VirtAddr v) { return (v >> 18) & 0x7f; }        // next 7
inline constexpr uint32_t L3Index(VirtAddr v) { return (v >> kPageShift) & 0x3f; }  // next 6

// Page-table entry layout (both table pointers and leaf descriptors):
//   bits 31..8  address >> 8 (tables are 256-byte aligned; pages 4 KiB aligned)
//   bit  0      valid
//   bit  1      writable          (leaf only)
//   bit  2      message mode      (leaf only -- memory-based messaging)
//   bit  3      referenced        (set by the MMU on any access)
//   bit  4      modified          (set by the MMU on write)
//   bit  5      copy-on-write     (leaf only; write raises protection fault)
//   bit  6      cache-inhibited   (leaf only; device regions)
inline constexpr uint32_t kPteValid = 1u << 0;
inline constexpr uint32_t kPteWritable = 1u << 1;
inline constexpr uint32_t kPteMessage = 1u << 2;
inline constexpr uint32_t kPteReferenced = 1u << 3;
inline constexpr uint32_t kPteModified = 1u << 4;
inline constexpr uint32_t kPteCopyOnWrite = 1u << 5;
inline constexpr uint32_t kPteCacheInhibit = 1u << 6;
inline constexpr uint32_t kPteFlagsMask = 0xff;

inline constexpr uint32_t MakePte(PhysAddr target, uint32_t flags) {
  return ((target >> 8) << 8) | (flags & kPteFlagsMask);
}

inline constexpr PhysAddr PteAddress(uint32_t pte) { return pte & ~kPteFlagsMask; }
inline constexpr bool PteValid(uint32_t pte) { return (pte & kPteValid) != 0; }

// Flag bits carried by a mapping as the application kernel specifies them and
// as the TLB caches them.
struct MapFlags {
  bool writable = false;
  bool message = false;
  bool copy_on_write = false;
  bool cache_inhibit = false;

  uint32_t ToPteBits() const {
    return (writable ? kPteWritable : 0) | (message ? kPteMessage : 0) |
           (copy_on_write ? kPteCopyOnWrite : 0) | (cache_inhibit ? kPteCacheInhibit : 0);
  }

  static MapFlags FromPteBits(uint32_t pte) {
    MapFlags f;
    f.writable = (pte & kPteWritable) != 0;
    f.message = (pte & kPteMessage) != 0;
    f.copy_on_write = (pte & kPteCopyOnWrite) != 0;
    f.cache_inhibit = (pte & kPteCacheInhibit) != 0;
    return f;
  }
};

}  // namespace cksim

#endif  // SRC_SIM_PAGETABLE_H_

// One simulated processor of the multiprocessor module.
//
// A Cpu owns its MMU (TLB) and reverse-TLB and a local cycle clock. The
// machine always runs the CPU with the smallest clock, which gives a
// deterministic, causally consistent interleaving of the four processors --
// the property the non-blocking synchronization tests rely on.

#ifndef SRC_SIM_CPU_H_
#define SRC_SIM_CPU_H_

#include <cstdint>

#include "src/obs/trace.h"
#include "src/sim/cost.h"
#include "src/sim/mmu.h"
#include "src/sim/reverse_tlb.h"
#include "src/sim/types.h"

namespace cksim {

class Cpu {
 public:
  Cpu(uint32_t id, PhysicalMemory& memory, const CostModel& cost)
      : id_(id), mmu_(memory, cost) {}

  uint32_t id() const { return id_; }

  Cycles clock() const { return clock_; }
  void Advance(Cycles cycles) { clock_ += cycles; }
  // Used when another agent (a device, a peer CPU's IPI) hands this CPU work
  // stamped later than its local clock: time cannot run backwards.
  void AdvanceTo(Cycles at_least) {
    if (clock_ < at_least) {
      clock_ = at_least;
    }
  }

  Mmu& mmu() { return mmu_; }
  ReverseTlb& reverse_tlb() { return reverse_tlb_; }

  // Tracing: the machine hands each CPU its ring when tracing is enabled;
  // the MMU stamps its events off this CPU's clock.
  void AttachTrace(obs::TraceRing* ring) {
    trace_ring_ = ring;
    mmu_.AttachTrace(ring, &clock_);
  }
  obs::TraceRing* trace_ring() { return trace_ring_; }

  // Scratch slot for the kernel: which thread descriptor currently runs here.
  // Opaque to the sim layer.
  void* current_thread = nullptr;

  // Cumulative busy (non-idle) cycles, for utilization reporting.
  Cycles busy_cycles = 0;

 private:
  uint32_t id_;
  Cycles clock_ = 0;
  Mmu mmu_;
  ReverseTlb reverse_tlb_;
  obs::TraceRing* trace_ring_ = nullptr;
};

}  // namespace cksim

#endif  // SRC_SIM_CPU_H_

// The simulated multiprocessor module (MPM) and its run loop.
//
// A Machine is one ParaDiGM MPM: a small number of CPUs, local physical
// memory, and devices, executing one Cache Kernel (section 3: "Each
// multiprocessor module is a self-contained unit ... executing its own copy
// of the Cache Kernel"). Multiple Machines connected by the simulated fiber
// channel model the multi-MPM configurations of Figures 4 and 5.
//
// Execution model: the machine repeatedly gives a turn to the CPU with the
// smallest local clock (or services the earliest-due device). The attached
// kernel decides what that CPU does with its turn and advances its clock.
// This is a conservative discrete-event simulation: cross-CPU interactions
// are timestamped and never observed before their time.

#ifndef SRC_SIM_MACHINE_H_
#define SRC_SIM_MACHINE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/obs/trace.h"
#include "src/sim/cost.h"
#include "src/sim/cpu.h"
#include "src/sim/physmem.h"
#include "src/sim/types.h"

namespace cksim {

// Implemented by the Cache Kernel: the machine calls this when a CPU gets a
// turn. The implementation must advance cpu.clock() (dispatch a thread, run a
// quantum, handle a fault, or idle).
class MachineClient {
 public:
  virtual ~MachineClient() = default;
  virtual void OnCpuTurn(Cpu& cpu) = 0;
};

// Implemented by the Cache Kernel: devices deliver inbound data by signaling
// a physical address (memory-based messaging, section 2.2).
class SignalSink {
 public:
  virtual ~SignalSink() = default;
  virtual void SignalPhysical(PhysAddr addr, Cycles when) = 0;
};

class Machine;

// A device mapped into physical memory and driven by the machine clock.
class Device {
 public:
  virtual ~Device() = default;

  // Called by Machine::AttachDevice. Devices that emit trace events or
  // allocate causal span ids keep the pointer; the default ignores it.
  virtual void OnAttached(Machine& /*machine*/) {}

  // Physical range of the device's transmission (doorbell) region; a signal
  // delivered inside it is routed to OnDoorbell.
  virtual PhysAddr region_base() const = 0;
  virtual uint32_t region_size() const = 0;

  // Earliest pending internal event, or kNoEvent.
  static constexpr Cycles kNoEvent = ~Cycles{0};
  virtual Cycles NextEventAt() const = 0;

  // Process internal events due at or before `now`.
  virtual void Run(Cycles now) = 0;

  // A signal landed on `addr` inside the device region at time `when`.
  virtual void OnDoorbell(PhysAddr addr, Cycles when) = 0;
};

struct MachineConfig {
  uint32_t cpu_count = 4;                       // the MPM had four 68040s
  uint32_t memory_bytes = 16u << 20;            // local RAM + nearby memory module
  CostModel cost;
};

class Machine {
 public:
  explicit Machine(const MachineConfig& config);

  PhysicalMemory& memory() { return memory_; }
  const CostModel& cost() const { return config_.cost; }
  uint32_t cpu_count() const { return static_cast<uint32_t>(cpus_.size()); }
  Cpu& cpu(uint32_t i) { return *cpus_[i]; }

  void AttachKernel(MachineClient* client) { client_ = client; }

  // Devices are owned by the caller (examples own them; tests stack-allocate)
  // and must outlive the machine's run loop.
  void AttachDevice(Device* device) {
    devices_.push_back(device);
    device->OnAttached(*this);
  }

  // Route a signal on a device doorbell page. Returns true if a device
  // claimed the address.
  bool DeliverDoorbell(PhysAddr addr, Cycles when);

  // Earliest time across CPUs -- "now" for external observers.
  Cycles Now() const;

  // Run one turn (one CPU quantum or one device service). Returns false if
  // there is no attached kernel.
  bool Step();

  // Run until Now() >= deadline.
  void RunUntil(Cycles deadline);

  // Run for `duration` cycles past the current Now().
  void RunFor(Cycles duration) { RunUntil(Now() + duration); }

  // Halted machines refuse turns; models an MPM hardware failure for the
  // fault-containment experiments.
  void Halt() { halted_ = true; }
  bool halted() const { return halted_; }

  // ---- causal span ids ----
  // Deterministic 32-bit span identifiers for causal tracing: the top byte is
  // this machine's node id (assigned by Cluster::AddMachine in cluster runs,
  // 0 otherwise), the low 24 bits a per-machine counter. Allocation order is
  // part of machine-local state, so serial and parallel cluster executions
  // allocate identical id sequences (the differential suite memcmp-checks
  // this). Id 0 is reserved for "no span".
  void set_node_id(uint8_t id) { node_id_ = id; }
  uint8_t node_id() const { return node_id_; }
  uint32_t AllocSpanId() {
    ++spans_allocated_;
    span_counter_ = (span_counter_ + 1) & 0x00ffffffu;
    if (span_counter_ == 0) {
      span_counter_ = 1;  // skip the reserved "no span" encoding on wrap
    }
    return (static_cast<uint32_t>(node_id_) << 24) | span_counter_;
  }
  uint64_t spans_allocated() const { return spans_allocated_; }

  // ---- tracing ----
  // Allocate one trace ring per CPU and start recording. Idempotent; until
  // called, trace_ring() returns nullptr and CK_TRACE emission is one null
  // test. `capacity_per_cpu` events are retained per CPU (oldest dropped).
  void EnableTracing(uint32_t capacity_per_cpu = 1u << 16);
  obs::Tracer* tracer() { return tracer_.get(); }
  obs::TraceRing* trace_ring(uint32_t cpu) {
    return tracer_ != nullptr ? &tracer_->ring(cpu) : nullptr;
  }

 private:
  MachineConfig config_;
  PhysicalMemory memory_;
  std::vector<std::unique_ptr<Cpu>> cpus_;
  std::vector<Device*> devices_;
  MachineClient* client_ = nullptr;
  bool halted_ = false;
  uint8_t node_id_ = 0;
  uint32_t span_counter_ = 0;
  uint64_t spans_allocated_ = 0;
  std::unique_ptr<obs::Tracer> tracer_;
};

}  // namespace cksim

#endif  // SRC_SIM_MACHINE_H_

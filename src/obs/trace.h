// Per-CPU trace event ring buffers.
//
// The Cache Kernel, the scheduler, the signal-delivery path and the simulated
// MMU all emit compact cycle-stamped events through the CK_TRACE macro. Each
// CPU owns one fixed-capacity ring, so recording is a bump-and-store with no
// allocation and no cross-CPU interference; when a ring fills, the oldest
// events are overwritten (newest data wins, like a flight recorder).
//
// Tracing has two off switches:
//   * compile time: build with -DCK_TRACE_ENABLED=0 and CK_TRACE(...) expands
//     to nothing -- arguments are not even evaluated;
//   * run time: rings exist only after Machine::EnableTracing(); the macro's
//     only cost on an untraced run is one null-pointer test.
//
// Events carry a type, the emitting CPU, a 16-bit and a 32-bit argument whose
// meaning depends on the type (see docs/OBSERVABILITY.md for the taxonomy).

#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace obs {

enum class EventType : uint8_t {
  // Object lifecycle. arg16 = ObjectType index, arg32 = descriptor id/slot.
  kObjectLoad = 0,
  kObjectWriteback,
  kObjectReclaim,
  // Figure 2 fault-forwarding steps. arg16 = fault type, arg32 = fault vaddr.
  kFaultTrapEntry,     // step 1: hardware trap into the Cache Kernel
  kFaultHandlerStart,  // step 2: thread redirected into the app kernel
  kFaultMappingLoaded, // step 4: new mapping descriptor loaded
  kFaultResumed,       // step 6: faulting thread resumed
  // Trap forwarding. arg16 = trap number.
  kTrapForward,
  // Signal delivery. arg32 = message vaddr (or pframe for drops).
  kSignalFast,    // reverse-TLB hit to the active thread
  kSignalSlow,    // two-stage pmap lookup
  kSignalQueued,  // receiver already in its signal function
  kSignalDropped, // per-thread queue overflow
  // Scheduling. arg32 = thread id (when known).
  kContextSwitch,
  kPreemption,
  kQuotaDegrade,  // arg32 = kernel slot driven over quota
  // Simulated hardware. arg16 = asid, arg32 = vaddr.
  kTlbMiss,
  // Causal spans. arg32 = span id (top byte: originating machine's node id,
  // low 24 bits: that machine's deterministic allocation counter).
  kSpanBegin,   // a new span was allocated; arg16 = kind (fault type, op, ...)
  kIpcSend,     // packet left a device tx slot; arg16 = tx slot index
  kIpcRecv,     // packet landed in a device rx slot; arg16 = rx slot index
  kBulkSend,    // bulk payload entered the wire; arg16 = size in KiB (capped)
  kBulkRecv,    // bulk payload claimed by PollBulk; arg16 = size in KiB
  kSrmOp,       // system-resource-manager operation; arg16 = SrmOpCode
  // Sampling profiler. arg16 = owning kernel slot, arg32 = guest PC.
  kProfSample,
  // Tiered physical memory (docs/TIERING.md). arg16 = owning/requesting
  // kernel slot, arg32 = physical frame number.
  kTierAdmit,    // untracked frame admitted to the DRAM tier
  kTierDemote,   // cold DRAM frame demoted to the slow tier
  kTierPromote,  // hot slow-tier frame migrated back to DRAM
  kTierEvict,    // DRAM frame fully evicted (mappings unloaded)
  kCount,
};

// Stable short names for exporters and dumps.
const char* EventTypeName(EventType type);

struct TraceEvent {
  uint64_t when = 0;  // simulated cycles on the emitting CPU
  uint8_t type = 0;   // EventType
  uint8_t cpu = 0;
  uint16_t arg16 = 0;
  uint32_t arg32 = 0;
};
static_assert(sizeof(TraceEvent) == 16, "trace events must stay compact");

// Fixed-capacity overwrite-oldest ring of TraceEvents for one CPU.
class TraceRing {
 public:
  TraceRing(uint32_t capacity, uint8_t cpu);

  void Push(EventType type, uint64_t when, uint16_t arg16, uint32_t arg32);

  uint32_t capacity() const { return capacity_; }
  uint8_t cpu() const { return cpu_; }
  // Events currently retained (<= capacity).
  size_t size() const;
  // Total events ever pushed / overwritten since construction or Clear().
  uint64_t pushed() const { return pushed_; }
  uint64_t dropped() const { return pushed_ > capacity_ ? pushed_ - capacity_ : 0; }

  // i-th retained event, oldest first (0 <= i < size()).
  const TraceEvent& at(size_t i) const;

  void Clear();

 private:
  std::vector<TraceEvent> events_;
  uint32_t capacity_;
  uint8_t cpu_;
  uint64_t pushed_ = 0;
};

// One ring per CPU of a machine.
class Tracer {
 public:
  Tracer(uint32_t cpu_count, uint32_t capacity_per_cpu);

  uint32_t cpu_count() const { return static_cast<uint32_t>(rings_.size()); }
  TraceRing& ring(uint32_t cpu) { return rings_[cpu]; }
  const TraceRing& ring(uint32_t cpu) const { return rings_[cpu]; }

  uint64_t total_pushed() const;

 private:
  std::vector<TraceRing> rings_;
};

}  // namespace obs

// CK_TRACE(ring_ptr, type, when, arg16, arg32): record one event if tracing
// is compiled in and `ring_ptr` is non-null. With CK_TRACE_ENABLED=0 the
// macro expands to nothing and its arguments are never evaluated, so hot
// paths carry zero cost.
#ifndef CK_TRACE_ENABLED
#define CK_TRACE_ENABLED 1
#endif

#if CK_TRACE_ENABLED
#define CK_TRACE(ring_ptr, type, when, arg16, arg32)                          \
  do {                                                                        \
    obs::TraceRing* ck_trace_ring_ = (ring_ptr);                              \
    if (ck_trace_ring_ != nullptr) {                                          \
      ck_trace_ring_->Push((type), (when), static_cast<uint16_t>(arg16),      \
                           static_cast<uint32_t>(arg32));                     \
    }                                                                         \
  } while (0)
#else
#define CK_TRACE(ring_ptr, type, when, arg16, arg32) \
  do {                                               \
  } while (0)
#endif

#endif  // SRC_OBS_TRACE_H_

#include "src/obs/metrics.h"

#include <cinttypes>

namespace obs {
namespace {

// Minimal JSON string escaping; metric names are ASCII identifiers but a
// stray quote or backslash must not corrupt the document.
void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out->append(buf);
    } else {
      out->push_back(c);
    }
  }
  out->push_back('"');
}

void AppendDouble(std::string* out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out->append(buf);
}

}  // namespace

void Registry::DumpText(std::FILE* out) const {
  size_t width = 0;
  for (const Counter& c : counters_) {
    width = std::max(width, c.name.size());
  }
  for (const Histogram& h : histograms_) {
    width = std::max(width, h.name.size());
  }
  int w = static_cast<int>(width);
  for (const Counter& c : counters_) {
    std::fprintf(out, "%-*s %12" PRIu64 "\n", w, c.name.c_str(), c.value());
  }
  for (const Histogram& h : histograms_) {
    ckbase::Stats s = h.snapshot();
    std::fprintf(out, "%-*s count=%zu mean=%.2f p50=%.2f p95=%.2f max=%.2f\n", w,
                 h.name.c_str(), s.count(), s.Mean(), s.Percentile(50), s.Percentile(95),
                 s.Max());
  }
}

namespace {

// Prometheus metric names allow [a-zA-Z0-9_:]; fold everything else to '_'.
std::string PromName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
              c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') {
    out.insert(out.begin(), '_');
  }
  return out;
}

}  // namespace

void Registry::WriteText(std::FILE* out) const {
  for (const Counter& c : counters_) {
    std::string name = PromName(c.name);
    std::fprintf(out, "# TYPE %s counter\n%s %" PRIu64 "\n", name.c_str(), name.c_str(),
                 c.value());
  }
  for (const Histogram& h : histograms_) {
    std::string name = PromName(h.name);
    ckbase::Stats s = h.snapshot();
    std::fprintf(out, "# TYPE %s summary\n", name.c_str());
    std::fprintf(out, "%s_count %zu\n", name.c_str(), s.count());
    std::fprintf(out, "%s_sum %.6g\n", name.c_str(), s.Sum());
    std::fprintf(out, "%s{quantile=\"0.5\"} %.6g\n", name.c_str(), s.Percentile(50));
    std::fprintf(out, "%s{quantile=\"0.95\"} %.6g\n", name.c_str(), s.Percentile(95));
    std::fprintf(out, "%s{quantile=\"1\"} %.6g\n", name.c_str(), s.Max());
  }
}

std::string Registry::DumpJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const Counter& c : counters_) {
    if (!first) {
      out.push_back(',');
    }
    first = false;
    AppendEscaped(&out, c.name);
    out.push_back(':');
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, c.value());
    out.append(buf);
  }
  out.append("},\"histograms\":{");
  first = true;
  for (const Histogram& h : histograms_) {
    if (!first) {
      out.push_back(',');
    }
    first = false;
    ckbase::Stats s = h.snapshot();
    AppendEscaped(&out, h.name);
    out.append(":{\"count\":");
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%zu", s.count());
    out.append(buf);
    out.append(",\"mean\":");
    AppendDouble(&out, s.Mean());
    out.append(",\"p50\":");
    AppendDouble(&out, s.Percentile(50));
    out.append(",\"p95\":");
    AppendDouble(&out, s.Percentile(95));
    out.append(",\"min\":");
    AppendDouble(&out, s.Min());
    out.append(",\"max\":");
    AppendDouble(&out, s.Max());
    out.append(",\"stddev\":");
    AppendDouble(&out, s.StdDev());
    out.push_back('}');
  }
  out.append("}}");
  return out;
}

}  // namespace obs

#include "src/obs/json_lint.h"

#include <cctype>
#include <cstdio>

namespace obs {
namespace {

class Lint {
 public:
  explicit Lint(const std::string& text) : text_(text) {}

  bool Run(std::string* error) {
    SkipWs();
    if (!Value()) {
      Fail(error);
      return false;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      message_ = "trailing data after document";
      Fail(error);
      return false;
    }
    return true;
  }

 private:
  void Fail(std::string* error) {
    if (error != nullptr) {
      char buf[160];
      std::snprintf(buf, sizeof(buf), "%s at offset %zu",
                    message_.empty() ? "parse error" : message_.c_str(), pos_);
      *error = buf;
    }
  }

  void SkipWs() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      pos_++;
    }
  }

  bool Literal(const char* word) {
    size_t len = 0;
    while (word[len] != '\0') {
      len++;
    }
    if (text_.compare(pos_, len, word) != 0) {
      message_ = "bad literal";
      return false;
    }
    pos_ += len;
    return true;
  }

  bool String() {
    pos_++;  // opening quote
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        pos_++;
        return true;
      }
      if (c == '\\') {
        pos_++;
        if (pos_ >= text_.size()) {
          break;
        }
        char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            pos_++;
            if (pos_ >= text_.size() || !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              message_ = "bad \\u escape";
              return false;
            }
          }
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' && esc != 'f' &&
                   esc != 'n' && esc != 'r' && esc != 't') {
          message_ = "bad escape";
          return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        message_ = "control character in string";
        return false;
      }
      pos_++;
    }
    message_ = "unterminated string";
    return false;
  }

  bool Number() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      pos_++;
    }
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      pos_++;
    }
    if (pos_ == start || (text_[start] == '-' && pos_ == start + 1)) {
      message_ = "bad number";
      return false;
    }
    size_t int_start = text_[start] == '-' ? start + 1 : start;
    if (pos_ - int_start > 1 && text_[int_start] == '0') {
      message_ = "leading zero";
      return false;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      pos_++;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        message_ = "bad fraction";
        return false;
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        pos_++;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      pos_++;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        pos_++;
      }
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        message_ = "bad exponent";
        return false;
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        pos_++;
      }
    }
    return true;
  }

  bool Array() {
    pos_++;  // '['
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      pos_++;
      return true;
    }
    while (true) {
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (pos_ >= text_.size()) {
        message_ = "unterminated array";
        return false;
      }
      if (text_[pos_] == ']') {
        pos_++;
        return true;
      }
      if (text_[pos_] != ',') {
        message_ = "expected ',' or ']'";
        return false;
      }
      pos_++;
      SkipWs();
    }
  }

  bool Object() {
    pos_++;  // '{'
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      pos_++;
      return true;
    }
    while (true) {
      if (pos_ >= text_.size() || text_[pos_] != '"' || !String()) {
        message_ = message_.empty() ? "expected object key" : message_;
        return false;
      }
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        message_ = "expected ':'";
        return false;
      }
      pos_++;
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (pos_ >= text_.size()) {
        message_ = "unterminated object";
        return false;
      }
      if (text_[pos_] == '}') {
        pos_++;
        return true;
      }
      if (text_[pos_] != ',') {
        message_ = "expected ',' or '}'";
        return false;
      }
      pos_++;
      SkipWs();
    }
  }

  bool Value() {
    SkipWs();
    if (pos_ >= text_.size()) {
      message_ = "unexpected end of input";
      return false;
    }
    char c = text_[pos_];
    if (c == '{') {
      return Object();
    }
    if (c == '[') {
      return Array();
    }
    if (c == '"') {
      return String();
    }
    if (c == 't') {
      return Literal("true");
    }
    if (c == 'f') {
      return Literal("false");
    }
    if (c == 'n') {
      return Literal("null");
    }
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      return Number();
    }
    message_ = "unexpected character";
    return false;
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::string message_;
};

}  // namespace

bool JsonLint(const std::string& text, std::string* error) {
  return Lint(text).Run(error);
}

}  // namespace obs

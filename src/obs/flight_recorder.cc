#include "src/obs/flight_recorder.h"

#include <cstdio>

#include "src/ckpt/serializer.h"

namespace obs {
namespace {

using ckckpt::Crc32;
using ckckpt::Reader;
using ckckpt::Writer;

enum SectionType : uint16_t {
  kSectionHeader = 1,
  kSectionMetrics = 2,
  kSectionStats = 3,
  kSectionTrace = 4,
  kSectionEnd = 0xffff,
};

void AppendSection(Writer* out, uint16_t type, const std::vector<uint8_t>& payload) {
  out->U16(type);
  out->U16(0);  // flags, reserved
  out->U32(static_cast<uint32_t>(payload.size()));
  out->Bytes(payload.data(), payload.size());
  out->U32(Crc32(payload.data(), payload.size()));
}

}  // namespace

std::vector<uint8_t> EncodeFlightRecord(const std::string& reason, uint64_t when,
                                        const Tracer* tracer, size_t last_n_per_cpu,
                                        const std::string& metrics_text,
                                        const std::vector<uint8_t>& stats_blob) {
  Writer out;
  out.U32(kFlightRecordMagic);
  out.U32(kFlightRecordVersion);

  {
    Writer header;
    header.Str(reason);
    header.U64(when);
    AppendSection(&out, kSectionHeader, header.data());
  }
  if (!metrics_text.empty()) {
    Writer metrics;
    metrics.Str(metrics_text);
    AppendSection(&out, kSectionMetrics, metrics.data());
  }
  if (!stats_blob.empty()) {
    AppendSection(&out, kSectionStats, stats_blob);
  }
  if (tracer != nullptr) {
    Writer trace;
    trace.U32(tracer->cpu_count());
    for (uint32_t c = 0; c < tracer->cpu_count(); ++c) {
      const TraceRing& ring = tracer->ring(c);
      size_t n = ring.size() < last_n_per_cpu ? ring.size() : last_n_per_cpu;
      size_t start = ring.size() - n;  // newest n, oldest first
      trace.U32(static_cast<uint32_t>(n));
      for (size_t i = 0; i < n; ++i) {
        const TraceEvent& e = ring.at(start + i);
        trace.U64(e.when);
        trace.U8(e.type);
        trace.U8(e.cpu);
        trace.U16(e.arg16);
        trace.U32(e.arg32);
      }
    }
    AppendSection(&out, kSectionTrace, trace.data());
  }
  out.U16(kSectionEnd);
  return out.Take();
}

bool DecodeFlightRecord(const std::vector<uint8_t>& bytes, FlightRecordData* out,
                        std::string* error) {
  auto fail = [error](const std::string& why) {
    if (error != nullptr) {
      *error = why;
    }
    return false;
  };
  *out = FlightRecordData();  // absent sections must not leave stale data
  Reader r(bytes);
  if (r.U32() != kFlightRecordMagic) {
    return fail("bad magic");
  }
  if (r.U32() != kFlightRecordVersion) {
    return fail("unsupported version");
  }
  bool saw_header = false;
  while (true) {
    uint16_t type = r.U16();
    if (!r.ok()) {
      return fail("truncated section header");
    }
    if (type == kSectionEnd) {
      break;
    }
    r.U16();  // flags
    uint32_t length = r.U32();
    if (!r.ok() || r.remaining() < static_cast<size_t>(length) + 4) {
      return fail("truncated section");
    }
    std::vector<uint8_t> payload(length);
    r.Bytes(payload.data(), length);
    uint32_t crc = r.U32();
    if (crc != Crc32(payload.data(), payload.size())) {
      return fail("section crc mismatch");
    }
    Reader section(payload);
    switch (type) {
      case kSectionHeader:
        out->reason = section.Str();
        out->when = section.U64();
        if (!section.Done()) {
          return fail("malformed header section");
        }
        saw_header = true;
        break;
      case kSectionMetrics:
        out->metrics_text = section.Str();
        if (!section.Done()) {
          return fail("malformed metrics section");
        }
        break;
      case kSectionStats:
        out->stats_blob = std::move(payload);
        break;
      case kSectionTrace: {
        uint32_t cpus = section.U32();
        for (uint32_t c = 0; c < cpus && section.ok(); ++c) {
          uint32_t count = section.U32();
          for (uint32_t i = 0; i < count && section.ok(); ++i) {
            TraceEvent e;
            e.when = section.U64();
            e.type = section.U8();
            e.cpu = section.U8();
            e.arg16 = section.U16();
            e.arg32 = section.U32();
            out->events.push_back(e);
          }
        }
        if (!section.Done()) {
          return fail("malformed trace section");
        }
        break;
      }
      default:
        break;  // unknown sections are skipped (forward compatibility)
    }
  }
  if (!saw_header) {
    return fail("missing header section");
  }
  return true;
}

bool WriteFlightRecordFile(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return false;
  }
  size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  bool ok = written == bytes.size();
  return std::fclose(f) == 0 && ok;
}

bool ReadFlightRecordFile(const std::string& path, std::vector<uint8_t>* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return false;
  }
  out->clear();
  uint8_t buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->insert(out->end(), buf, buf + n);
  }
  std::fclose(f);
  return true;
}

}  // namespace obs

// Metrics registry: one enumerable namespace for every counter and latency
// histogram the system maintains, dumpable as aligned text or JSON.
//
// The registry does not own any state and never polls: producers register a
// name plus a closure that reads the live value (a CkStats field, a TLB
// hit counter, a fault-step Stats). Dumps snapshot through the closures at
// call time, so one registry can be dumped repeatedly as a run progresses.

#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "src/base/histogram.h"

namespace obs {

class Registry {
 public:
  using CounterFn = std::function<uint64_t()>;
  using HistogramFn = std::function<ckbase::Stats()>;

  void AddCounter(std::string name, CounterFn value) {
    counters_.push_back({std::move(name), std::move(value)});
  }
  void AddHistogram(std::string name, HistogramFn snapshot) {
    histograms_.push_back({std::move(name), std::move(snapshot)});
  }

  size_t counter_count() const { return counters_.size(); }
  size_t histogram_count() const { return histograms_.size(); }

  // Aligned "name value" lines; histograms report count/mean/p50/p95/max.
  void DumpText(std::FILE* out) const;

  // {"counters": {name: value, ...}, "histograms": {name: {...}, ...}}
  std::string DumpJson() const;

  // Prometheus-style exposition: one `name value` line per counter plus
  // `_count`/`_sum` and quantile lines per histogram, each preceded by a
  // `# TYPE` comment. Dots (and any other non-identifier characters) in
  // registered names become underscores, so `ck.tenant.3.loads` exposes as
  // `ck_tenant_3_loads`. Lines are diffable between runs without JSON
  // tooling (the --metrics-out=<file> path in ck::ObsSession).
  void WriteText(std::FILE* out) const;

 private:
  struct Counter {
    std::string name;
    CounterFn value;
  };
  struct Histogram {
    std::string name;
    HistogramFn snapshot;
  };

  std::vector<Counter> counters_;
  std::vector<Histogram> histograms_;
};

}  // namespace obs

#endif  // SRC_OBS_METRICS_H_

// Chrome trace_event JSON exporter.
//
// Serializes per-CPU trace rings into the Trace Event Format understood by
// chrome://tracing and ui.perfetto.dev. Single-machine exports use one
// process with one track (tid) per CPU; the cluster overload merges several
// machines into one document, one process (pid) per machine. Most events
// export as instants; the four Figure 2 fault-forwarding steps are paired
// into nested duration spans ("fault", "fault.redirect", "fault.handle+load",
// "fault.resume") so a whole run's fault activity reads as a flame chart, and
// the causal ipc/bulk span events (kIpcSend/kIpcRecv/kBulkSend/kBulkRecv)
// additionally emit flow events ("ph":"s" at the sender, "ph":"f" at the
// receiver, bound by the 32-bit span id) so a cross-machine RPC or migration
// renders as one causally-linked arrow between processes.

#ifndef SRC_OBS_CHROME_TRACE_H_
#define SRC_OBS_CHROME_TRACE_H_

#include <cstdio>
#include <string>
#include <vector>

#include "src/obs/trace.h"

namespace obs {

// One machine's contribution to a merged cluster trace.
struct MachineTrace {
  const Tracer* tracer = nullptr;
  uint32_t pid = 0;   // exported process id (conventionally the node id)
  std::string name;   // process_name metadata, e.g. "machine 0"
};

// Serialize to a string. `cycles_per_us` converts cycle stamps to the
// microsecond timestamps the format requires (25 for the simulated 25 MHz
// machine). `extra_top_level`, if non-empty, must be a complete JSON
// key-value fragment (e.g. "\"ckProfile\":{...}") and is spliced in as an
// additional top-level member -- Chrome ignores unknown keys, so the trace
// file can carry the aggregated profiler histograms alongside the events.
std::string ChromeTraceJson(const std::vector<MachineTrace>& machines, double cycles_per_us,
                            const std::string& extra_top_level = std::string());

// Single-machine convenience (pid 0), the PR-1 interface.
std::string ChromeTraceJson(const Tracer& tracer, double cycles_per_us);

// Write to `path`. Returns false if the file cannot be written.
bool WriteChromeTrace(const std::vector<MachineTrace>& machines, double cycles_per_us,
                      const std::string& path,
                      const std::string& extra_top_level = std::string());
bool WriteChromeTrace(const Tracer& tracer, double cycles_per_us, const std::string& path);

}  // namespace obs

#endif  // SRC_OBS_CHROME_TRACE_H_

// Chrome trace_event JSON exporter.
//
// Serializes a Tracer's per-CPU rings into the Trace Event Format understood
// by chrome://tracing and ui.perfetto.dev: one process, one track (tid) per
// CPU. Most events export as instants; the four Figure 2 fault-forwarding
// steps are paired into nested duration spans ("fault", "fault.redirect",
// "fault.handle+load", "fault.resume") so a whole run's fault activity reads
// as a flame chart.

#ifndef SRC_OBS_CHROME_TRACE_H_
#define SRC_OBS_CHROME_TRACE_H_

#include <cstdio>
#include <string>

#include "src/obs/trace.h"

namespace obs {

// Serialize to a string. `cycles_per_us` converts cycle stamps to the
// microsecond timestamps the format requires (25 for the simulated 25 MHz
// machine).
std::string ChromeTraceJson(const Tracer& tracer, double cycles_per_us);

// Write to `path`. Returns false if the file cannot be written.
bool WriteChromeTrace(const Tracer& tracer, double cycles_per_us, const std::string& path);

}  // namespace obs

#endif  // SRC_OBS_CHROME_TRACE_H_

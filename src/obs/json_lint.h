// Minimal JSON syntax validator.
//
// Used by tests and the bench smoke target to verify that emitted Chrome
// traces and metric dumps are well-formed without pulling in a JSON library.
// Checks structure only (braces, strings, numbers, literals); it does not
// build a document.

#ifndef SRC_OBS_JSON_LINT_H_
#define SRC_OBS_JSON_LINT_H_

#include <string>

namespace obs {

// Returns true iff `text` is one complete, syntactically valid JSON value.
// On failure, *error (if non-null) describes the first problem and its
// byte offset.
bool JsonLint(const std::string& text, std::string* error = nullptr);

}  // namespace obs

#endif  // SRC_OBS_JSON_LINT_H_

#include "src/obs/trace.h"

namespace obs {

const char* EventTypeName(EventType type) {
  switch (type) {
    case EventType::kObjectLoad:
      return "object.load";
    case EventType::kObjectWriteback:
      return "object.writeback";
    case EventType::kObjectReclaim:
      return "object.reclaim";
    case EventType::kFaultTrapEntry:
      return "fault.trap_entry";
    case EventType::kFaultHandlerStart:
      return "fault.handler_start";
    case EventType::kFaultMappingLoaded:
      return "fault.mapping_loaded";
    case EventType::kFaultResumed:
      return "fault.resumed";
    case EventType::kTrapForward:
      return "trap.forward";
    case EventType::kSignalFast:
      return "signal.fast";
    case EventType::kSignalSlow:
      return "signal.slow";
    case EventType::kSignalQueued:
      return "signal.queued";
    case EventType::kSignalDropped:
      return "signal.dropped";
    case EventType::kContextSwitch:
      return "sched.context_switch";
    case EventType::kPreemption:
      return "sched.preemption";
    case EventType::kQuotaDegrade:
      return "sched.quota_degrade";
    case EventType::kTlbMiss:
      return "hw.tlb_miss";
    case EventType::kSpanBegin:
      return "span.begin";
    case EventType::kIpcSend:
      return "ipc.send";
    case EventType::kIpcRecv:
      return "ipc.recv";
    case EventType::kBulkSend:
      return "bulk.send";
    case EventType::kBulkRecv:
      return "bulk.recv";
    case EventType::kSrmOp:
      return "srm.op";
    case EventType::kProfSample:
      return "prof.sample";
    case EventType::kTierAdmit:
      return "tier.admit";
    case EventType::kTierDemote:
      return "tier.demote";
    case EventType::kTierPromote:
      return "tier.promote";
    case EventType::kTierEvict:
      return "tier.evict";
    case EventType::kCount:
      break;
  }
  return "unknown";
}

TraceRing::TraceRing(uint32_t capacity, uint8_t cpu)
    : capacity_(capacity == 0 ? 1 : capacity), cpu_(cpu) {
  events_.resize(capacity_);
}

void TraceRing::Push(EventType type, uint64_t when, uint16_t arg16, uint32_t arg32) {
  TraceEvent& slot = events_[pushed_ % capacity_];
  slot.when = when;
  slot.type = static_cast<uint8_t>(type);
  slot.cpu = cpu_;
  slot.arg16 = arg16;
  slot.arg32 = arg32;
  pushed_++;
}

size_t TraceRing::size() const {
  return pushed_ < capacity_ ? static_cast<size_t>(pushed_) : capacity_;
}

const TraceEvent& TraceRing::at(size_t i) const {
  size_t oldest = pushed_ <= capacity_ ? 0 : static_cast<size_t>(pushed_ % capacity_);
  return events_[(oldest + i) % capacity_];
}

void TraceRing::Clear() { pushed_ = 0; }

Tracer::Tracer(uint32_t cpu_count, uint32_t capacity_per_cpu) {
  rings_.reserve(cpu_count);
  for (uint32_t i = 0; i < cpu_count; ++i) {
    rings_.emplace_back(capacity_per_cpu, static_cast<uint8_t>(i));
  }
}

uint64_t Tracer::total_pushed() const {
  uint64_t total = 0;
  for (const TraceRing& ring : rings_) {
    total += ring.pushed();
  }
  return total;
}

}  // namespace obs

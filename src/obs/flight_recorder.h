// Crash flight recorder: post-mortem capture of the observability state.
//
// On a fatal fault, a failed restore preflight, or a crash failover, the
// system dumps what a post-mortem needs into one CRC-framed file: the last-N
// trace-ring events per CPU (the ring already overwrites oldest, flight-
// recorder style), a plain-text metrics snapshot, and an opaque stats blob
// supplied by the caller (the Cache Kernel serializes its CkStats into it).
//
// The container reuses the ckckpt Writer/Reader/Crc32 machinery and the
// checkpoint image's record framing so the same tooling disciplines apply:
// little-endian, no padding, every section CRC-protected, parse fails loudly
// on corruption.
//
// File layout:
//   u32 magic "CKFR", u32 version
//   sections, each: u16 type, u16 flags(0), u32 length, payload, u32 crc32
//     1 header   { Str reason, U64 when_cycles }
//     2 metrics  { Str text }               (Registry::WriteText output)
//     3 stats    { raw bytes }              (opaque to this layer)
//     4 trace    { U32 cpu_count, per cpu: U32 count,
//                  count x { U64 when, U8 type, U8 cpu, U16 arg16, U32 arg32 } }
//   u16 0xffff end marker

#ifndef SRC_OBS_FLIGHT_RECORDER_H_
#define SRC_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/trace.h"

namespace obs {

inline constexpr uint32_t kFlightRecordMagic = 0x52464b43;  // "CKFR"
inline constexpr uint32_t kFlightRecordVersion = 1;

// A decoded flight record (see DecodeFlightRecord).
struct FlightRecordData {
  std::string reason;
  uint64_t when = 0;              // simulated cycles at capture
  std::string metrics_text;
  std::vector<uint8_t> stats_blob;
  std::vector<TraceEvent> events;  // all CPUs, ring order per CPU
};

// Encode a flight record. `tracer` may be null (no trace section); at most
// `last_n_per_cpu` of the newest retained events per CPU are captured.
std::vector<uint8_t> EncodeFlightRecord(const std::string& reason, uint64_t when,
                                        const Tracer* tracer, size_t last_n_per_cpu,
                                        const std::string& metrics_text,
                                        const std::vector<uint8_t>& stats_blob);

// Decode and CRC-verify. Returns false (with *error set) on any framing or
// checksum problem.
bool DecodeFlightRecord(const std::vector<uint8_t>& bytes, FlightRecordData* out,
                        std::string* error);

// Write `bytes` to `path`. Returns false if the file cannot be written.
bool WriteFlightRecordFile(const std::string& path, const std::vector<uint8_t>& bytes);

// Read a whole file into `out`. Returns false if unreadable.
bool ReadFlightRecordFile(const std::string& path, std::vector<uint8_t>* out);

}  // namespace obs

#endif  // SRC_OBS_FLIGHT_RECORDER_H_

#include "src/obs/chrome_trace.h"

#include <cinttypes>

namespace obs {
namespace {

void AppendEvent(std::string* out, const char* name, const char* ph, double ts_us,
                 double dur_us, uint32_t pid, uint8_t cpu, const TraceEvent* args,
                 bool* first) {
  if (!*first) {
    out->push_back(',');
  }
  *first = false;
  char buf[256];
  if (ph[0] == 'X') {
    std::snprintf(buf, sizeof(buf),
                  "\n{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%u,"
                  "\"tid\":%u",
                  name, ts_us, dur_us, pid, cpu);
  } else {
    std::snprintf(buf, sizeof(buf),
                  "\n{\"name\":\"%s\",\"ph\":\"%s\",\"ts\":%.3f,\"s\":\"t\",\"pid\":%u,"
                  "\"tid\":%u",
                  name, ph, ts_us, pid, cpu);
  }
  out->append(buf);
  if (args != nullptr) {
    std::snprintf(buf, sizeof(buf), ",\"args\":{\"arg16\":%u,\"arg32\":%" PRIu32 "}",
                  args->arg16, args->arg32);
    out->append(buf);
  }
  out->push_back('}');
}

// Flow events bind the sender's "s" to the receiver's "f" by id, drawing the
// causal arrow across process (machine) boundaries.
void AppendFlow(std::string* out, const char* name, bool start, double ts_us, uint32_t pid,
                uint8_t cpu, uint32_t span, bool* first) {
  if (!*first) {
    out->push_back(',');
  }
  *first = false;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "\n{\"name\":\"%s\",\"cat\":\"span\",\"ph\":\"%s\"%s,\"id\":%" PRIu32
                ",\"ts\":%.3f,\"pid\":%u,\"tid\":%u}",
                name, start ? "s" : "f", start ? "" : ",\"bp\":\"e\"", span, ts_us, pid, cpu);
  out->append(buf);
}

// Pairs the four fault-step instants on one CPU track into duration spans.
struct FaultSpan {
  bool open = false;
  double trap = 0, handler = 0, loaded = 0;
  uint32_t vaddr = 0;
  uint16_t fault_type = 0;
};

}  // namespace

std::string ChromeTraceJson(const std::vector<MachineTrace>& machines, double cycles_per_us,
                            const std::string& extra_top_level) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  char buf[160];

  for (const MachineTrace& m : machines) {
    if (m.tracer == nullptr) {
      continue;
    }
    const Tracer& tracer = *m.tracer;
    uint32_t pid = m.pid;
    if (!m.name.empty()) {
      if (!first) {
        out.push_back(',');
      }
      first = false;
      std::snprintf(buf, sizeof(buf),
                    "\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%u,"
                    "\"args\":{\"name\":\"%s\"}}",
                    pid, m.name.c_str());
      out.append(buf);
    }
    for (uint32_t c = 0; c < tracer.cpu_count(); ++c) {
      // Name the track.
      if (!first) {
        out.push_back(',');
      }
      first = false;
      std::snprintf(buf, sizeof(buf),
                    "\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%u,\"tid\":%u,"
                    "\"args\":{\"name\":\"cpu %u\"}}",
                    pid, c, c);
      out.append(buf);

      const TraceRing& ring = tracer.ring(c);
      FaultSpan span;
      for (size_t i = 0; i < ring.size(); ++i) {
        const TraceEvent& e = ring.at(i);
        EventType type = static_cast<EventType>(e.type);
        double ts = static_cast<double>(e.when) / cycles_per_us;
        switch (type) {
          case EventType::kFaultTrapEntry:
            span.open = true;
            span.trap = ts;
            span.handler = span.loaded = 0;
            span.vaddr = e.arg32;
            span.fault_type = e.arg16;
            break;
          case EventType::kFaultHandlerStart:
            if (span.open) {
              span.handler = ts;
            }
            break;
          case EventType::kFaultMappingLoaded:
            if (span.open) {
              span.loaded = ts;
            }
            break;
          case EventType::kFaultResumed:
            if (span.open) {
              TraceEvent args = e;
              args.arg16 = span.fault_type;
              args.arg32 = span.vaddr;
              AppendEvent(&out, "fault", "X", span.trap, ts - span.trap, pid, e.cpu, &args,
                          &first);
              if (span.handler > 0) {
                AppendEvent(&out, "fault.redirect", "X", span.trap, span.handler - span.trap,
                            pid, e.cpu, nullptr, &first);
                if (span.loaded > 0) {
                  AppendEvent(&out, "fault.handle+load", "X", span.handler,
                              span.loaded - span.handler, pid, e.cpu, nullptr, &first);
                  AppendEvent(&out, "fault.resume", "X", span.loaded, ts - span.loaded, pid,
                              e.cpu, nullptr, &first);
                } else {
                  AppendEvent(&out, "fault.handle", "X", span.handler, ts - span.handler, pid,
                              e.cpu, nullptr, &first);
                }
              }
              span.open = false;
            } else {
              AppendEvent(&out, EventTypeName(type), "i", ts, 0, pid, e.cpu, &e, &first);
            }
            break;
          case EventType::kIpcSend:
          case EventType::kBulkSend:
            AppendEvent(&out, EventTypeName(type), "i", ts, 0, pid, e.cpu, &e, &first);
            if (e.arg32 != 0) {
              AppendFlow(&out, type == EventType::kIpcSend ? "ipc" : "bulk", /*start=*/true,
                         ts, pid, e.cpu, e.arg32, &first);
            }
            break;
          case EventType::kIpcRecv:
          case EventType::kBulkRecv:
            AppendEvent(&out, EventTypeName(type), "i", ts, 0, pid, e.cpu, &e, &first);
            if (e.arg32 != 0) {
              AppendFlow(&out, type == EventType::kIpcRecv ? "ipc" : "bulk", /*start=*/false,
                         ts, pid, e.cpu, e.arg32, &first);
            }
            break;
          default:
            AppendEvent(&out, EventTypeName(type), "i", ts, 0, pid, e.cpu, &e, &first);
            break;
        }
      }
      // A fault still open at the end of the ring (blocked/terminated thread
      // or truncated capture) exports as an instant so nothing is silently
      // lost.
      if (span.open) {
        TraceEvent args;
        args.arg16 = span.fault_type;
        args.arg32 = span.vaddr;
        AppendEvent(&out, "fault.unfinished", "i", span.trap, 0, pid, static_cast<uint8_t>(c),
                    &args, &first);
      }
    }
  }

  out.append("\n]");
  if (!extra_top_level.empty()) {
    out.push_back(',');
    out.append(extra_top_level);
  }
  out.push_back('}');
  return out;
}

std::string ChromeTraceJson(const Tracer& tracer, double cycles_per_us) {
  return ChromeTraceJson({MachineTrace{&tracer, 0, std::string()}}, cycles_per_us);
}

bool WriteChromeTrace(const std::vector<MachineTrace>& machines, double cycles_per_us,
                      const std::string& path, const std::string& extra_top_level) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  std::string json = ChromeTraceJson(machines, cycles_per_us, extra_top_level);
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  bool ok = written == json.size();
  return std::fclose(f) == 0 && ok;
}

bool WriteChromeTrace(const Tracer& tracer, double cycles_per_us, const std::string& path) {
  return WriteChromeTrace({MachineTrace{&tracer, 0, std::string()}}, cycles_per_us, path);
}

}  // namespace obs

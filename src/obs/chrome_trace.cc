#include "src/obs/chrome_trace.h"

#include <cinttypes>

namespace obs {
namespace {

void AppendEvent(std::string* out, const char* name, const char* ph, double ts_us,
                 double dur_us, uint8_t cpu, const TraceEvent* args, bool* first) {
  if (!*first) {
    out->push_back(',');
  }
  *first = false;
  char buf[256];
  if (ph[0] == 'X') {
    std::snprintf(buf, sizeof(buf),
                  "\n{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":0,"
                  "\"tid\":%u",
                  name, ts_us, dur_us, cpu);
  } else {
    std::snprintf(buf, sizeof(buf),
                  "\n{\"name\":\"%s\",\"ph\":\"%s\",\"ts\":%.3f,\"s\":\"t\",\"pid\":0,"
                  "\"tid\":%u",
                  name, ph, ts_us, cpu);
  }
  out->append(buf);
  if (args != nullptr) {
    std::snprintf(buf, sizeof(buf), ",\"args\":{\"arg16\":%u,\"arg32\":%" PRIu32 "}",
                  args->arg16, args->arg32);
    out->append(buf);
  }
  out->push_back('}');
}

// Pairs the four fault-step instants on one CPU track into duration spans.
struct FaultSpan {
  bool open = false;
  double trap = 0, handler = 0, loaded = 0;
  uint32_t vaddr = 0;
  uint16_t fault_type = 0;
};

}  // namespace

std::string ChromeTraceJson(const Tracer& tracer, double cycles_per_us) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  char buf[128];

  for (uint32_t c = 0; c < tracer.cpu_count(); ++c) {
    // Name the track.
    if (!first) {
      out.push_back(',');
    }
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%u,"
                  "\"args\":{\"name\":\"cpu %u\"}}",
                  c, c);
    out.append(buf);

    const TraceRing& ring = tracer.ring(c);
    FaultSpan span;
    for (size_t i = 0; i < ring.size(); ++i) {
      const TraceEvent& e = ring.at(i);
      EventType type = static_cast<EventType>(e.type);
      double ts = static_cast<double>(e.when) / cycles_per_us;
      switch (type) {
        case EventType::kFaultTrapEntry:
          span.open = true;
          span.trap = ts;
          span.handler = span.loaded = 0;
          span.vaddr = e.arg32;
          span.fault_type = e.arg16;
          break;
        case EventType::kFaultHandlerStart:
          if (span.open) {
            span.handler = ts;
          }
          break;
        case EventType::kFaultMappingLoaded:
          if (span.open) {
            span.loaded = ts;
          }
          break;
        case EventType::kFaultResumed:
          if (span.open) {
            TraceEvent args = e;
            args.arg16 = span.fault_type;
            args.arg32 = span.vaddr;
            AppendEvent(&out, "fault", "X", span.trap, ts - span.trap, e.cpu, &args, &first);
            if (span.handler > 0) {
              AppendEvent(&out, "fault.redirect", "X", span.trap, span.handler - span.trap,
                          e.cpu, nullptr, &first);
              if (span.loaded > 0) {
                AppendEvent(&out, "fault.handle+load", "X", span.handler,
                            span.loaded - span.handler, e.cpu, nullptr, &first);
                AppendEvent(&out, "fault.resume", "X", span.loaded, ts - span.loaded, e.cpu,
                            nullptr, &first);
              } else {
                AppendEvent(&out, "fault.handle", "X", span.handler, ts - span.handler, e.cpu,
                            nullptr, &first);
              }
            }
            span.open = false;
          } else {
            AppendEvent(&out, EventTypeName(type), "i", ts, 0, e.cpu, &e, &first);
          }
          break;
        default:
          AppendEvent(&out, EventTypeName(type), "i", ts, 0, e.cpu, &e, &first);
          break;
      }
    }
    // A fault still open at the end of the ring (blocked/terminated thread or
    // truncated capture) exports as an instant so nothing is silently lost.
    if (span.open) {
      TraceEvent args;
      args.arg16 = span.fault_type;
      args.arg32 = span.vaddr;
      AppendEvent(&out, "fault.unfinished", "i", span.trap, 0, static_cast<uint8_t>(c), &args,
                  &first);
    }
  }

  out.append("\n]}");
  return out;
}

bool WriteChromeTrace(const Tracer& tracer, double cycles_per_us, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  std::string json = ChromeTraceJson(tracer, cycles_per_us);
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  bool ok = written == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace obs

#include "src/rt/rt_kernel.h"

#include <algorithm>

namespace ckrt {

using ck::CkApi;
using cksim::Cycles;
using cksim::VirtAddr;

// A periodic task: blocked until activated, then sweeps its working set and
// reports completion latency.
class RtKernel::TaskProgram : public ck::NativeProgram {
 public:
  TaskProgram(RtKernel& kernel, uint32_t index) : kernel_(kernel), index_(index) {}

  ck::NativeOutcome Step(ck::NativeCtx& ctx) override {
    ck::NativeOutcome outcome;
    RtKernel& rt = kernel_;
    const RtTaskConfig& cfg = rt.tasks_[index_];
    if (!pending_) {
      outcome.action = ck::NativeOutcome::Action::kBlock;
      return outcome;
    }
    pending_ = false;

    // The control-loop body: touch every page of the working set.
    VirtAddr base = rt.config_.region_base + index_ * (cfg.working_set_pages + 4) *
                                                 cksim::kPageSize;
    for (uint32_t page = 0; page < cfg.working_set_pages; ++page) {
      VirtAddr addr = base + page * cksim::kPageSize;
      ckbase::Result<uint32_t> value = ctx.LoadWord(addr);
      if (value.ok()) {
        ctx.StoreWord(addr, value.value() + 1);
      }
      ctx.Charge(25);  // control computation per page
    }

    Cycles latency = ctx.api().now() - rt.activation_time_[index_];
    RtTaskStats& stats = rt.stats_[index_];
    stats.activations++;
    stats.total_latency += latency;
    if (latency > stats.worst_latency) {
      stats.worst_latency = latency;
    }
    if (latency > cfg.deadline) {
      stats.deadline_misses++;
    }

    outcome.action = ck::NativeOutcome::Action::kBlock;
    return outcome;
  }

  void Arm() { pending_ = true; }

 private:
  RtKernel& kernel_;
  uint32_t index_;
  bool pending_ = false;
};

RtKernel::RtKernel(ck::CacheKernel& ck, const RtConfig& config)
    : ckapp::AppKernelBase("realtime", /*backing_pages=*/32), ck_(ck), config_(config) {}

RtKernel::~RtKernel() = default;

void RtKernel::Setup(CkApi& api, const std::vector<RtTaskConfig>& tasks) {
  tasks_ = tasks;
  stats_.assign(tasks.size(), RtTaskStats{});
  activation_time_.assign(tasks.size(), 0);
  space_index_ = CreateSpace(api, config_.lock_resources);

  for (uint32_t i = 0; i < tasks_.size(); ++i) {
    const RtTaskConfig& cfg = tasks_[i];
    VirtAddr base = config_.region_base + i * (cfg.working_set_pages + 4) * cksim::kPageSize;
    DefineZeroRegion(space_index_, base, cfg.working_set_pages, /*writable=*/true);

    auto program = std::make_unique<TaskProgram>(*this, i);
    uint32_t thread_index = CreateNativeThread(api, space_index_, program.get(), cfg.priority,
                                               config_.lock_resources, cfg.cpu);
    programs_.push_back(std::move(program));
    task_threads_.push_back(thread_index);

    if (config_.lock_resources) {
      // Pre-fault and lock the working-set mappings so activation never
      // takes a mapping reload (section 2.3: "lock a small number of
      // real-time threads in the Cache Kernel"; mappings likewise).
      for (uint32_t page = 0; page < cfg.working_set_pages; ++page) {
        VirtAddr addr = base + page * cksim::kPageSize;
        ckapp::PageRecord* rec = space(space_index_).FindPage(addr);
        if (rec != nullptr) {
          rec->locked = true;
        }
        EnsureMappingLoaded(api, space_index_, addr);
      }
    }
    Activate(api, i);  // schedule the first period
  }
}

void RtKernel::Activate(CkApi& api, uint32_t task_index) {
  const RtTaskConfig& cfg = tasks_[task_index];
  api.ScheduleAfter(cfg.period, [this, task_index](CkApi& later) {
    // The event may fire on a lagging CPU; the task could not have started
    // before its own processor's current time, so stamp against that.
    const RtTaskConfig& task_cfg = tasks_[task_index];
    cksim::Cycles task_cpu_now = ck_.machine().cpu(task_cfg.cpu).clock();
    activation_time_[task_index] = std::max(later.now(), task_cpu_now);
    programs_[task_index]->Arm();
    ckapp::ThreadRec& rec = thread(task_threads_[task_index]);
    if (!rec.loaded) {
      EnsureThreadLoaded(later, task_threads_[task_index]);
    }
    later.ResumeThread(rec.ck_id);
    Activate(later, task_index);  // arm the next period
  });
}

}  // namespace ckrt

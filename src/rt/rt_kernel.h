// Real-time embedded application kernel (sections 2, 3, 4.3).
//
// "A real-time embedded system can be realized as an application kernel,
// controlling the locking of threads, address spaces and mappings into the
// Cache Kernel, and managing resources to meet response requirements."
//
// This kernel runs periodic tasks: each period the task is activated, walks
// its working set (translated accesses) and records its activation latency
// against a deadline. With `lock_resources` set, the task thread, its space
// and its working-set mappings are locked in the Cache Kernel, so a batch
// kernel thrashing the mapping cache cannot add reload latency -- the A3
// ablation measures exactly that protection.

#ifndef SRC_RT_RT_KERNEL_H_
#define SRC_RT_RT_KERNEL_H_

#include <memory>
#include <vector>

#include "src/appkernel/app_kernel_base.h"

namespace ckrt {

struct RtTaskConfig {
  cksim::Cycles period = 50000;        // 2 ms
  cksim::Cycles deadline = 12500;      // 500 us from activation to completion
  uint32_t working_set_pages = 8;
  uint8_t priority = 28;
  uint8_t cpu = 0;
};

struct RtTaskStats {
  uint64_t activations = 0;
  uint64_t deadline_misses = 0;
  cksim::Cycles worst_latency = 0;
  cksim::Cycles total_latency = 0;
};

struct RtConfig {
  bool lock_resources = true;  // lock thread/space/mappings in the Cache Kernel
  cksim::VirtAddr region_base = 0x60000000;
};

class RtKernel : public ckapp::AppKernelBase {
 public:
  RtKernel(ck::CacheKernel& ck, const RtConfig& config);
  ~RtKernel() override;

  // Create the space and the periodic tasks; arms the first activations.
  void Setup(ck::CkApi& api, const std::vector<RtTaskConfig>& tasks);

  const RtTaskStats& task_stats(uint32_t task) const { return stats_[task]; }
  uint32_t task_count() const { return static_cast<uint32_t>(tasks_.size()); }

 private:
  class TaskProgram;
  friend class TaskProgram;

  void Activate(ck::CkApi& api, uint32_t task_index);

  ck::CacheKernel& ck_;
  RtConfig config_;
  uint32_t space_index_ = 0;
  std::vector<RtTaskConfig> tasks_;
  std::vector<std::unique_ptr<TaskProgram>> programs_;
  std::vector<uint32_t> task_threads_;
  std::vector<RtTaskStats> stats_;
  std::vector<cksim::Cycles> activation_time_;
};

}  // namespace ckrt

#endif  // SRC_RT_RT_KERNEL_H_

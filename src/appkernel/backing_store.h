// Per-application-kernel backing store ("disk").
//
// "The application kernel also provides backing store for the object state
// when it is unloaded from the Cache Kernel" (section 2) -- and for page
// contents under demand paging. This simulated store is page-granular with a
// configurable access latency; the default (5 ms at 25 MHz) makes page I/O
// dominate fault cost exactly as section 5.2 argues it should.

#ifndef SRC_APPKERNEL_BACKING_STORE_H_
#define SRC_APPKERNEL_BACKING_STORE_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "src/ck/cache_kernel.h"
#include "src/sim/types.h"

namespace ckapp {

class BackingStore {
 public:
  explicit BackingStore(uint32_t pages, cksim::Cycles latency = 125000 /* 5 ms */)
      : data_(static_cast<size_t>(pages) * cksim::kPageSize, 0), latency_(latency) {}

  uint32_t page_count() const {
    return static_cast<uint32_t>(data_.size() / cksim::kPageSize);
  }
  cksim::Cycles latency() const { return latency_; }

  // Transfer one page store->frame. I/O latency is charged to the calling
  // CPU; callers modeling asynchronous I/O instead block the faulting thread
  // and schedule the resume after latency() (see the UNIX emulator pager).
  void ReadPage(ck::CkApi& api, uint32_t store_page, cksim::PhysAddr frame,
                bool charge_latency = true) {
    api.WritePhys(frame, data_.data() + static_cast<size_t>(store_page) * cksim::kPageSize,
                  cksim::kPageSize);
    if (charge_latency) {
      api.Charge(latency_);
    }
  }

  void WritePage(ck::CkApi& api, cksim::PhysAddr frame, uint32_t store_page,
                 bool charge_latency = true) {
    api.ReadPhys(frame, data_.data() + static_cast<size_t>(store_page) * cksim::kPageSize,
                 cksim::kPageSize);
    if (charge_latency) {
      api.Charge(latency_);
    }
  }

  // Direct host-side access for program loading and test verification.
  uint8_t* PageData(uint32_t store_page) {
    return data_.data() + static_cast<size_t>(store_page) * cksim::kPageSize;
  }

  void WriteBytes(uint32_t store_page, uint32_t offset, const void* src, uint32_t len) {
    std::memcpy(PageData(store_page) + offset, src, len);
  }

 private:
  std::vector<uint8_t> data_;
  cksim::Cycles latency_;
};

}  // namespace ckapp

#endif  // SRC_APPKERNEL_BACKING_STORE_H_

// Co-scheduling of parallel applications (section 2.3).
//
// "Co-scheduling of large parallel applications can be supported by
// assigning a thread per processor and raising all the threads to the
// appropriate priority at the same time, possibly across multiple Cache
// Kernel instances." The mechanism is nothing but the SetThreadPriority
// modify call applied to the gang at once -- this helper packages it with a
// timed drop back to the background priority, so a gang alternates between
// "owns every processor" and "yields to other kernels".

#ifndef SRC_APPKERNEL_COSCHEDULE_H_
#define SRC_APPKERNEL_COSCHEDULE_H_

#include <vector>

#include "src/appkernel/app_kernel_base.h"

namespace ckapp {

class CoScheduler {
 public:
  CoScheduler(AppKernelBase& kernel, std::vector<uint32_t> gang_threads)
      : kernel_(kernel), gang_(std::move(gang_threads)) {}

  // Raise the whole gang to `priority` now; drop to `background` after
  // `window` cycles. Re-arms itself every `period` cycles while running.
  void Start(ck::CkApi& api, uint8_t priority, uint8_t background, cksim::Cycles window,
             cksim::Cycles period) {
    priority_ = priority;
    background_ = background;
    window_ = window;
    period_ = period;
    running_ = true;
    Raise(api);
  }

  void Stop() { running_ = false; }

  uint64_t windows() const { return windows_; }

 private:
  void SetAll(ck::CkApi& api, uint8_t priority) {
    for (uint32_t index : gang_) {
      ThreadRec& rec = kernel_.thread(index);
      if (rec.loaded) {
        rec.priority = priority;
        api.SetThreadPriority(rec.ck_id, priority);
      }
    }
  }

  void Raise(ck::CkApi& api) {
    if (!running_) {
      return;
    }
    // "raising all the threads to the appropriate priority at the same time"
    SetAll(api, priority_);
    ++windows_;
    api.ScheduleAfter(window_, [this](ck::CkApi& later) {
      SetAll(later, background_);
      later.ScheduleAfter(period_ > window_ ? period_ - window_ : 1,
                          [this](ck::CkApi& next) { Raise(next); });
    });
  }

  AppKernelBase& kernel_;
  std::vector<uint32_t> gang_;
  uint8_t priority_ = 20;
  uint8_t background_ = 2;
  cksim::Cycles window_ = 0;
  cksim::Cycles period_ = 0;
  bool running_ = false;
  uint64_t windows_ = 0;
};

}  // namespace ckapp

#endif  // SRC_APPKERNEL_COSCHEDULE_H_

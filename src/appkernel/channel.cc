#include "src/appkernel/channel.h"

#include <cstring>

namespace ckapp {

using ck::CkApi;
using ckbase::CkStatus;
using cksim::PhysAddr;
using cksim::VirtAddr;

void MessageChannel::ConfigureSender(AppKernelBase& kernel, uint32_t space_index, VirtAddr vbase,
                                     PhysAddr frame_base, uint32_t slots) {
  sender_ = End{&kernel, space_index, vbase, frame_base, slots};
  kernel.DefineFrameRegion(space_index, vbase, slots, frame_base, /*writable=*/true,
                           /*message=*/true);
}

void MessageChannel::ConfigureReceiver(AppKernelBase& kernel, uint32_t space_index,
                                       VirtAddr vbase, PhysAddr frame_base, uint32_t slots,
                                       uint32_t signal_thread, bool locked) {
  receiver_ = End{&kernel, space_index, vbase, frame_base, slots};
  kernel.DefineFrameRegion(space_index, vbase, slots, frame_base, /*writable=*/false,
                           /*message=*/true, signal_thread, locked);
}

CkStatus MessageChannel::PrimeSender(CkApi& api) {
  for (uint32_t i = 0; i < sender_.slots; ++i) {
    CkStatus status = sender_.kernel->EnsureMappingLoaded(api, sender_.space_index,
                                                          sender_.vbase + i * cksim::kPageSize);
    if (status != CkStatus::kOk) {
      return status;
    }
  }
  return CkStatus::kOk;
}

CkStatus MessageChannel::PrimeReceiver(CkApi& api) {
  for (uint32_t i = 0; i < receiver_.slots; ++i) {
    CkStatus status = receiver_.kernel->EnsureMappingLoaded(
        api, receiver_.space_index, receiver_.vbase + i * cksim::kPageSize);
    if (status != CkStatus::kOk) {
      return status;
    }
  }
  return CkStatus::kOk;
}

CkStatus MessageChannel::Send(CkApi& api, const void* data, uint32_t len) {
  if (len > kMaxMessage || sender_.kernel == nullptr) {
    return CkStatus::kInvalidArgument;
  }
  uint32_t slot = static_cast<uint32_t>(sent_ % sender_.slots);
  PhysAddr frame = sender_.frame_base + slot * cksim::kPageSize;
  VirtAddr slot_vaddr = sender_.vbase + slot * cksim::kPageSize;

  // The data transfer goes directly through the memory system.
  api.WritePhys(frame, &len, 4);
  if (len > 0) {
    api.WritePhys(frame + 4, data, len);
  }

  // The sender's mapping must be loaded for the signal's address translation
  // (a guest sender would take a mapping fault here instead).
  CkStatus status = sender_.kernel->EnsureMappingLoaded(api, sender_.space_index, slot_vaddr);
  if (status != CkStatus::kOk) {
    return status;
  }
  status = api.Signal(sender_.kernel->space(sender_.space_index).ck_id, slot_vaddr);
  if (status == CkStatus::kOk) {
    ++sent_;
  }
  return status;
}

uint32_t MessageChannel::Read(CkApi& api, VirtAddr signal_addr, void* out, uint32_t max_len) {
  if (receiver_.kernel == nullptr || signal_addr < receiver_.vbase) {
    return 0;
  }
  uint32_t slot = (signal_addr - receiver_.vbase) / cksim::kPageSize;
  if (slot >= receiver_.slots) {
    return 0;
  }
  PhysAddr frame = receiver_.frame_base + slot * cksim::kPageSize;
  uint32_t len = 0;
  api.ReadPhys(frame, &len, 4);
  if (len > kMaxMessage) {
    return 0;  // corrupt slot
  }
  uint32_t take = len < max_len ? len : max_len;
  if (take > 0) {
    api.ReadPhys(frame + 4, out, take);
  }
  return take;
}

// ---------------------------------------------------------------------------
// RPC
// ---------------------------------------------------------------------------

void RpcServer::OnSignal(VirtAddr message_addr, ck::NativeCtx& ctx) {
  uint8_t buffer[MessageChannel::kMaxMessage];
  uint32_t got = requests_.Read(ctx.api(), message_addr, buffer, sizeof(buffer));
  if (got < sizeof(RpcHeader)) {
    return;
  }
  RpcHeader header;
  std::memcpy(&header, buffer, sizeof(header));
  if (sizeof(RpcHeader) + header.len > got) {
    return;
  }
  std::vector<uint8_t> request(buffer + sizeof(RpcHeader),
                               buffer + sizeof(RpcHeader) + header.len);
  std::vector<uint8_t> reply = serve_(header.op, request, ctx.api());
  ++served_;

  std::vector<uint8_t> wire(sizeof(RpcHeader) + reply.size());
  RpcHeader reply_header{header.seq, header.op, static_cast<uint32_t>(reply.size())};
  std::memcpy(wire.data(), &reply_header, sizeof(reply_header));
  if (!reply.empty()) {
    std::memcpy(wire.data() + sizeof(RpcHeader), reply.data(), reply.size());
  }
  replies_.Send(ctx.api(), wire.data(), static_cast<uint32_t>(wire.size()));
}

CkStatus RpcClient::Call(CkApi& api, uint32_t op, const std::vector<uint8_t>& payload,
                         Completion done) {
  uint32_t seq = next_seq_++;
  std::vector<uint8_t> wire(sizeof(RpcHeader) + payload.size());
  RpcHeader header{seq, op, static_cast<uint32_t>(payload.size())};
  std::memcpy(wire.data(), &header, sizeof(header));
  if (!payload.empty()) {
    std::memcpy(wire.data() + sizeof(RpcHeader), payload.data(), payload.size());
  }
  CkStatus status = requests_.Send(api, wire.data(), static_cast<uint32_t>(wire.size()));
  if (status == CkStatus::kOk) {
    pending_[seq] = std::move(done);
  }
  return status;
}

void RpcClient::OnSignal(VirtAddr message_addr, ck::NativeCtx& ctx) {
  uint8_t buffer[MessageChannel::kMaxMessage];
  uint32_t got = replies_.Read(ctx.api(), message_addr, buffer, sizeof(buffer));
  if (got < sizeof(RpcHeader)) {
    return;
  }
  RpcHeader header;
  std::memcpy(&header, buffer, sizeof(header));
  auto it = pending_.find(header.seq);
  if (it == pending_.end() || sizeof(RpcHeader) + header.len > got) {
    return;
  }
  Completion done = std::move(it->second);
  pending_.erase(it);
  ++replies_in_;
  std::vector<uint8_t> reply(buffer + sizeof(RpcHeader), buffer + sizeof(RpcHeader) + header.len);
  done(reply, ctx.api());
}

CkStatus RpcEndpoint::Call(CkApi& api, uint32_t op, const std::vector<uint8_t>& payload,
                           Completion done) {
  uint32_t seq = next_seq_++;
  std::vector<uint8_t> wire(sizeof(RpcHeader) + payload.size());
  RpcHeader header{seq, op & ~kRpcReplyFlag, static_cast<uint32_t>(payload.size())};
  std::memcpy(wire.data(), &header, sizeof(header));
  if (!payload.empty()) {
    std::memcpy(wire.data() + sizeof(RpcHeader), payload.data(), payload.size());
  }
  CkStatus status = out_.Send(api, wire.data(), static_cast<uint32_t>(wire.size()));
  if (status == CkStatus::kOk) {
    pending_[seq] = std::move(done);
  }
  return status;
}

void RpcEndpoint::OnSignal(VirtAddr message_addr, ck::NativeCtx& ctx) {
  uint8_t buffer[MessageChannel::kMaxMessage];
  uint32_t got = in_.Read(ctx.api(), message_addr, buffer, sizeof(buffer));
  if (got < sizeof(RpcHeader)) {
    return;
  }
  RpcHeader header;
  std::memcpy(&header, buffer, sizeof(header));
  if (sizeof(RpcHeader) + header.len > got) {
    return;
  }
  if ((header.op & kRpcReplyFlag) != 0) {
    // A reply to one of our calls.
    auto it = pending_.find(header.seq);
    if (it == pending_.end()) {
      return;
    }
    Completion done = std::move(it->second);
    pending_.erase(it);
    ++replies_in_;
    std::vector<uint8_t> reply(buffer + sizeof(RpcHeader),
                               buffer + sizeof(RpcHeader) + header.len);
    done(reply, ctx.api());
    return;
  }
  // A request from the peer: serve it and reply with the flag set.
  std::vector<uint8_t> request(buffer + sizeof(RpcHeader),
                               buffer + sizeof(RpcHeader) + header.len);
  std::vector<uint8_t> reply = serve_(header.op, request, ctx.api());
  ++served_;
  std::vector<uint8_t> wire(sizeof(RpcHeader) + reply.size());
  RpcHeader reply_header{header.seq, header.op | kRpcReplyFlag,
                         static_cast<uint32_t>(reply.size())};
  std::memcpy(wire.data(), &reply_header, sizeof(reply_header));
  if (!reply.empty()) {
    std::memcpy(wire.data() + sizeof(RpcHeader), reply.data(), reply.size());
  }
  out_.Send(ctx.api(), wire.data(), static_cast<uint32_t>(wire.size()));
}

}  // namespace ckapp

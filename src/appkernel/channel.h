// Communication library: channels and object-oriented RPC over memory-based
// messaging (sections 2.2 and 3).
//
// A MessageChannel is a one-way stream of fixed-slot messages. The sender
// maps the slot pages writable + message-mode; each receiver maps the same
// physical pages (or, for a device-bridged channel, its device's reception
// slots) with a signal thread registered. Send = write the message into the
// next slot, then deliver the slot's address as an address-valued signal.
// "The performance-critical data transfer aspect of interprocess
// communication is performed directly through the memory system."
//
// The same channel works unchanged across machines: configure the sender
// over the local fiber-channel/Ethernet transmit slots and the receiver over
// the remote device's reception slots -- the doorbell signal makes the
// device move the bytes. This is the unification the paper's device model is
// about.
//
// The RPC facility ("an object-oriented RPC facility implemented on top of
// the memory-based messaging as a user-space communication library") runs a
// request channel and a reply channel; servers are native threads woken by
// signals, clients issue asynchronous calls with completion callbacks.

#ifndef SRC_APPKERNEL_CHANNEL_H_
#define SRC_APPKERNEL_CHANNEL_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "src/appkernel/app_kernel_base.h"

namespace ckapp {

class MessageChannel {
 public:
  // Maximum payload per message (slot page minus the length word).
  static constexpr uint32_t kMaxMessage = cksim::kPageSize - 8;

  // Sender-side setup: map `slots` pages starting at physical `frame_base`
  // into the sender kernel's space at `vbase`, writable + message mode.
  void ConfigureSender(AppKernelBase& kernel, uint32_t space_index, cksim::VirtAddr vbase,
                       cksim::PhysAddr frame_base, uint32_t slots);

  // Receiver-side setup: same pages (or the bridged device's reception
  // pages), read-only + message mode, signals to `signal_thread` (an
  // app-kernel thread index). Mappings are locked by default so a waiting
  // server never misses a signal to an unmapped page.
  void ConfigureReceiver(AppKernelBase& kernel, uint32_t space_index, cksim::VirtAddr vbase,
                         cksim::PhysAddr frame_base, uint32_t slots, uint32_t signal_thread,
                         bool locked = true);

  // Prefault all sender-side slot mappings (multi-mapping rule).
  ckbase::CkStatus PrimeSender(ck::CkApi& api);
  ckbase::CkStatus PrimeReceiver(ck::CkApi& api);

  // Write one message into the next slot and signal it. Native-sender path.
  ckbase::CkStatus Send(ck::CkApi& api, const void* data, uint32_t len);

  // Receiver: read the message at the signaled address.
  uint32_t Read(ck::CkApi& api, cksim::VirtAddr signal_addr, void* out, uint32_t max_len);

  uint64_t messages_sent() const { return sent_; }

 private:
  struct End {
    AppKernelBase* kernel = nullptr;
    uint32_t space_index = 0;
    cksim::VirtAddr vbase = 0;
    cksim::PhysAddr frame_base = 0;
    uint32_t slots = 0;
  };

  End sender_;
  End receiver_;
  uint64_t sent_ = 0;
};

// Wire header of one RPC message.
struct RpcHeader {
  uint32_t seq = 0;
  uint32_t op = 0;
  uint32_t len = 0;
};

using RpcServeFn = std::function<std::vector<uint8_t>(
    uint32_t op, const std::vector<uint8_t>& request, ck::CkApi& api)>;

// Server: a native thread blocked on its request channel; each request signal
// runs the service function and sends the reply.
class RpcServer : public ck::NativeProgram {
 public:
  RpcServer(MessageChannel& requests, MessageChannel& replies, RpcServeFn serve)
      : requests_(requests), replies_(replies), serve_(std::move(serve)) {}

  ck::NativeOutcome Step(ck::NativeCtx& ctx) override {
    (void)ctx;
    ck::NativeOutcome outcome;
    outcome.action = ck::NativeOutcome::Action::kBlock;  // signal-driven
    return outcome;
  }

  void OnSignal(cksim::VirtAddr message_addr, ck::NativeCtx& ctx) override;

  uint64_t requests_served() const { return served_; }

 private:
  MessageChannel& requests_;
  MessageChannel& replies_;
  RpcServeFn serve_;
  uint64_t served_ = 0;
};

// Client: Call() sends asynchronously; the completion callback runs when the
// matching reply signal arrives on the client's reply-channel thread.
class RpcClient : public ck::NativeProgram {
 public:
  using Completion = std::function<void(const std::vector<uint8_t>& reply, ck::CkApi& api)>;

  explicit RpcClient(MessageChannel& requests, MessageChannel& replies)
      : requests_(requests), replies_(replies) {}

  ckbase::CkStatus Call(ck::CkApi& api, uint32_t op, const std::vector<uint8_t>& payload,
                        Completion done);

  ck::NativeOutcome Step(ck::NativeCtx& ctx) override {
    (void)ctx;
    ck::NativeOutcome outcome;
    outcome.action = ck::NativeOutcome::Action::kBlock;
    return outcome;
  }

  void OnSignal(cksim::VirtAddr message_addr, ck::NativeCtx& ctx) override;

  uint32_t outstanding() const { return static_cast<uint32_t>(pending_.size()); }
  uint64_t replies_received() const { return replies_in_; }

 private:
  MessageChannel& requests_;
  MessageChannel& replies_;
  std::map<uint32_t, Completion> pending_;
  uint32_t next_seq_ = 1;
  uint64_t replies_in_ = 0;
};

// Symmetric endpoint: both caller and callee over ONE channel pair, for
// peers whose device reception ring carries interleaved requests and
// replies. The endpoint thread demultiplexes by the reply bit in the op
// word -- the per-stream dispatch the paper assigns to the receiving thread
// (section 2.2). Used by the DSM kernel, where both nodes fetch from each
// other over the same fiber-channel link.
inline constexpr uint32_t kRpcReplyFlag = 0x80000000u;

class RpcEndpoint : public ck::NativeProgram {
 public:
  using Completion = std::function<void(const std::vector<uint8_t>& reply, ck::CkApi& api)>;

  RpcEndpoint(MessageChannel& out, MessageChannel& in, RpcServeFn serve)
      : out_(out), in_(in), serve_(std::move(serve)) {}

  ckbase::CkStatus Call(ck::CkApi& api, uint32_t op, const std::vector<uint8_t>& payload,
                        Completion done);

  ck::NativeOutcome Step(ck::NativeCtx& ctx) override {
    (void)ctx;
    ck::NativeOutcome outcome;
    outcome.action = ck::NativeOutcome::Action::kBlock;
    return outcome;
  }

  void OnSignal(cksim::VirtAddr message_addr, ck::NativeCtx& ctx) override;

  uint64_t requests_served() const { return served_; }
  uint64_t replies_received() const { return replies_in_; }

 private:
  MessageChannel& out_;
  MessageChannel& in_;
  RpcServeFn serve_;
  std::map<uint32_t, Completion> pending_;
  uint32_t next_seq_ = 1;
  uint64_t served_ = 0;
  uint64_t replies_in_ = 0;
};

}  // namespace ckapp

#endif  // SRC_APPKERNEL_CHANNEL_H_
